#include "control/campaign.h"

#include <atomic>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "control/control_plane.h"
#include "guest/workload.h"
#include "sedspec/pipeline.h"
#include "spec/serial.h"

namespace sedspec::control {

namespace {

using faultinject::ControlFaultKind;
using faultinject::SpecFaultKind;

/// Enforcement-liveness probe: the currently active spec, deployed fresh,
/// must still veto an access no training ever produced (conditional-jump
/// "untrained I/O access"). This is the difference between "the rollout
/// rolled back" and "the rollout rolled back AND the fleet is still
/// protected" — a fail-open escape fails here even if every state looks
/// right on paper.
bool enforcement_alive(spec::SpecStore& active, const std::string& device) {
  const spec::SnapshotRef snap = active.current(device);
  if (snap == nullptr) {
    return false;
  }
  std::unique_ptr<guest::DeviceWorkload> w = guest::make_workload(device);
  checker::EsChecker probe(snap, &w->device(), checker::CheckerConfig{});
  const sedspec::IoAccess untrained{sedspec::IoSpace::kPio, 0x51ED, 1, 0,
                                    true};
  const bool allowed = probe.before_access(w->device(), untrained);
  return !allowed && !probe.last_result().clean();
}

}  // namespace

std::string control_outcome_name(ControlOutcome o) {
  switch (o) {
    case ControlOutcome::kRejectedAtStaging:
      return "rejected-at-staging";
    case ControlOutcome::kRolledBack:
      return "rolled-back";
    case ControlOutcome::kRecovered:
      return "recovered";
    case ControlOutcome::kPromotedClean:
      return "promoted-clean";
    case ControlOutcome::kPromotedEquivalent:
      return "promoted-equivalent";
    case ControlOutcome::kEscaped:
      return "ESCAPED";
  }
  return "?";
}

std::string ControlCampaignResult::describe() const {
  std::ostringstream out;
  out << "control campaign: " << injected << " faults injected\n";
  out << "  by kind:";
  for (size_t i = 0; i < faultinject::kControlFaultKinds; ++i) {
    out << " " << faultinject::control_fault_name(
                      static_cast<ControlFaultKind>(i))
        << "=" << by_kind[i];
  }
  out << "\n  by outcome:";
  for (size_t i = 0; i < kControlOutcomeCount; ++i) {
    out << " " << control_outcome_name(static_cast<ControlOutcome>(i)) << "="
        << by_outcome[i];
  }
  out << "\n  staging rejections:";
  for (size_t i = 0; i < 8; ++i) {
    if (staging_rejections_by_status[i] != 0) {
      out << " " << spec::load_status_name(static_cast<spec::LoadStatus>(i))
          << "=" << staging_rejections_by_status[i];
    }
  }
  out << "\n  invariants: shadow_blocks=" << shadow_blocks
      << " stuck_rollouts=" << stuck_rollouts
      << " liveness_failures=" << liveness_failures
      << " baseline_divergence=" << baseline_divergence << "\n";
  return out.str();
}

ControlCampaignResult run_control_campaign(
    const ControlCampaignConfig& config) {
  ControlCampaignResult res;
  Rng rng(config.seed);

  // Phase 1+2 once: the baseline ES-CFG every per-fault store starts from,
  // and the byte image a good candidate (and every rollback check) uses.
  std::unique_ptr<guest::DeviceWorkload> trainer =
      guest::make_workload(config.device);
  const spec::EsCfg base_cfg =
      pipeline::build_spec(trainer->device(), [&] { trainer->training(); });
  const std::vector<uint8_t> baseline_bytes = spec::serialize(base_cfg);

  std::vector<enforce::ShardSpec> fleet(config.shards);
  for (size_t i = 0; i < fleet.size(); ++i) {
    fleet[i].device = config.device;
    fleet[i].seed = config.seed * 977 + i;
  }

  RolloutConfig rcfg;
  rcfg.stage_fractions = {0.5, 1.0};
  rcfg.observe_ops = config.observe_ops;
  rcfg.max_stage_retries = 2;

  auto run_fault = [&](ControlFaultKind kind) {
    ++res.injected;
    ++res.by_kind[static_cast<size_t>(kind)];

    spec::SpecStore active;
    active.publish(spec::EsCfg(base_cfg));

    enforce::ServiceConfig svc;
    svc.spec_poll_ops = config.spec_poll_ops;
    svc.redeploy_backoff_base_us = 5;  // keep 1000 faults fast
    svc.redeploy_backoff_max_us = 50;

    if (kind == ControlFaultKind::kFetchOutage) {
      svc.spec_fetch = [](const std::string&, spec::SnapshotRef&) {
        spec::LoadError e;
        e.status = spec::LoadStatus::kCrcMismatch;
        e.detail = "distribution channel down (injected)";
        return e;
      };
    }
    if (kind == ControlFaultKind::kFetchTransient) {
      // A handful of failures, never more than one shard could absorb on
      // its own — bounded retry must ride through without a rollback.
      auto budget = std::make_shared<std::atomic<int64_t>>(
          1 + static_cast<int64_t>(rng.below(svc.redeploy_max_retries)));
      spec::SpecStore* store = &active;
      svc.spec_fetch = [budget, store](const std::string& device,
                                       spec::SnapshotRef& out) {
        if (budget->fetch_sub(1, std::memory_order_relaxed) > 0) {
          spec::LoadError e;
          e.status = spec::LoadStatus::kCrcMismatch;
          e.detail = "transient distribution glitch (injected)";
          return e;
        }
        out = store->current(device);
        spec::LoadError ok;
        return ok;
      };
    }

    ControlPlane cp(&active, svc);

    std::vector<enforce::ShardSpec> run_fleet = fleet;
    if (kind == ControlFaultKind::kShardCrash) {
      const size_t victim = rng.below(run_fleet.size());
      const uint64_t crash_at = rng.below(config.observe_ops);
      run_fleet[victim].op_hook = [crash_at](uint64_t op) {
        if (op == crash_at) {
          throw std::runtime_error("injected shard crash");
        }
      };
    }

    uint64_t delay_budget = 0;
    auto delayed = std::make_shared<uint64_t>(0);
    if (kind == ControlFaultKind::kMetricDelay) {
      delay_budget = 1 + rng.below(4);  // 1..4 windows starved
      cp.observe_filter = [delayed, delay_budget](StageObservation& o) {
        if (*delayed < delay_budget) {
          ++*delayed;
          o.shadow_rounds = 0;  // the feed has not arrived yet
        }
      };
    }

    ControlOutcome outcome = ControlOutcome::kEscaped;
    // Most endings must leave the baseline spec (byte-identical) active;
    // a proven-equivalent garbled promotion is the one exception.
    bool expect_baseline_active = true;

    bool staged_ok = true;
    if (kind == ControlFaultKind::kCorruptCandidate) {
      std::vector<uint8_t> bytes = baseline_bytes;
      const auto sfk = static_cast<SpecFaultKind>(
          rng.below(faultinject::kSpecFaultKinds));
      faultinject::corrupt_spec(bytes, sfk, rng);
      const spec::LoadError err = cp.stage_candidate_serialized(bytes);
      if (!err.ok()) {
        ++res.staging_rejections_by_status[static_cast<size_t>(err.status)];
        outcome = ControlOutcome::kRejectedAtStaging;
        staged_ok = false;
      }
      // else: the corruption survived the envelope (resealed garble) —
      // the rollout itself must catch or prove it equivalent.
    } else {
      cp.stage_candidate(spec::EsCfg(base_cfg));
    }

    if (staged_ok) {
      const RolloutOutcome ro = cp.run_rollout(config.device, run_fleet, rcfg);
      for (const WindowRecord& w : ro.windows) {
        res.shadow_blocks += w.observation.candidate_blocked;
      }
      if (!rollout_terminal(ro.record.state)) {
        ++res.stuck_rollouts;
      }
      const bool promoted = ro.promoted();
      switch (kind) {
        case ControlFaultKind::kCorruptCandidate:
          // A staged-through candidate either trips a guardrail or proves
          // byte-for-byte-equivalent behavior across every window.
          outcome = promoted ? ControlOutcome::kPromotedEquivalent
                             : ControlOutcome::kRolledBack;
          expect_baseline_active = !promoted;
          break;
        case ControlFaultKind::kFetchOutage:
        case ControlFaultKind::kShardCrash:
          outcome = promoted ? ControlOutcome::kEscaped
                             : ControlOutcome::kRolledBack;
          break;
        case ControlFaultKind::kFetchTransient:
          outcome = promoted ? ControlOutcome::kPromotedClean
                             : ControlOutcome::kEscaped;
          break;
        case ControlFaultKind::kMetricDelay: {
          const bool should_promote = delay_budget <= rcfg.max_stage_retries;
          outcome = promoted == should_promote
                        ? (promoted ? ControlOutcome::kPromotedClean
                                    : ControlOutcome::kRolledBack)
                        : ControlOutcome::kEscaped;
          break;
        }
        case ControlFaultKind::kRecordCorrupt: {
          if (!promoted) {
            outcome = ControlOutcome::kEscaped;  // fault-free run must pass
            break;
          }
          // Damage a random persisted record and crash-restart on it.
          std::vector<uint8_t> rec = cp.journal()[rng.below(
              cp.journal().size())];
          faultinject::corrupt_spec(
              rec,
              static_cast<SpecFaultKind>(
                  rng.below(faultinject::kSpecFaultKinds)),
              rng);
          const ResumeResult rr = cp.resume(rec);
          if (rr.load_error.ok() && !rollout_terminal(rr.record.state)) {
            ++res.stuck_rollouts;
            outcome = ControlOutcome::kEscaped;
          } else {
            outcome = ControlOutcome::kRecovered;
          }
          break;
        }
        case ControlFaultKind::kCrashPromoting: {
          if (!promoted) {
            outcome = ControlOutcome::kEscaped;
            break;
          }
          // Replay the journal exactly as a restarted control plane would
          // find it after dying between Promoting and the terminal write.
          std::vector<uint8_t> promoting_rec;
          for (const std::vector<uint8_t>& entry : cp.journal()) {
            RolloutRecord r;
            if (RolloutRecord::load(entry, r).ok() &&
                r.state == RolloutState::kPromoting) {
              promoting_rec = entry;
            }
          }
          const ResumeResult rr = cp.resume(promoting_rec);
          outcome = rr.load_error.ok() && rr.republished_baseline &&
                            rr.record.state == RolloutState::kRolledBack
                        ? ControlOutcome::kRecovered
                        : ControlOutcome::kEscaped;
          break;
        }
      }
    }

    if (expect_baseline_active) {
      const spec::SnapshotRef snap = active.current(config.device);
      if (snap == nullptr || spec::serialize(snap->cfg) != baseline_bytes) {
        ++res.baseline_divergence;
      }
    }
    if (!enforcement_alive(active, config.device)) {
      ++res.liveness_failures;
    }
    ++res.by_outcome[static_cast<size_t>(outcome)];
  };

  // Corruption family: candidate images, the distribution channel, and the
  // persisted record.
  for (size_t i = 0; i < config.corruption_faults; ++i) {
    switch (i % 4) {
      case 0:
      case 1:
        run_fault(ControlFaultKind::kCorruptCandidate);
        break;
      case 2:
        run_fault(ControlFaultKind::kFetchOutage);
        break;
      default:
        run_fault(ControlFaultKind::kRecordCorrupt);
        break;
    }
  }
  // Crash family: shard threads mid-window and the control plane itself
  // mid-promotion.
  for (size_t i = 0; i < config.crash_faults; ++i) {
    run_fault(i % 3 < 2 ? ControlFaultKind::kShardCrash
                        : ControlFaultKind::kCrashPromoting);
  }
  // Delay family: starved metric feeds and transient fetch glitches.
  for (size_t i = 0; i < config.delay_faults; ++i) {
    run_fault(i % 3 < 2 ? ControlFaultKind::kMetricDelay
                        : ControlFaultKind::kFetchTransient);
  }
  return res;
}

}  // namespace sedspec::control
