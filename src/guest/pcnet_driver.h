// Guest-side PCNet driver model.
//
// Owns the guest-memory layout a real lance/pcnet32 driver would set up:
// the init block, TX/RX descriptor rings, and frame buffers. Mirrors the
// device's ring cursors so chained sends land on the descriptors the device
// will look at.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "devices/pcnet.h"
#include "vdev/bus.h"
#include "vdev/memory.h"

namespace sedspec::guest {

class PcnetDriver {
 public:
  struct Config {
    uint16_t tx_ring_len = 16;
    uint16_t rx_ring_len = 16;
    bool loopback = false;
    bool append_fcs = false;  // CSR15.DXMTFCS clear when true
  };

  PcnetDriver(sedspec::IoBus* bus, sedspec::GuestMemory* mem)
      : bus_(bus), mem_(mem) {}

  void wcsr(uint16_t n, uint16_t v);
  [[nodiscard]] uint16_t rcsr(uint16_t n);
  void soft_reset();

  /// Full bring-up: reset, init block, ring programming, INIT|STRT.
  void setup(const Config& config);

  /// Posts (or reposts) every RX descriptor with a fresh guest buffer.
  void post_rx_buffers();
  /// Marks every RX descriptor guest-owned (device cannot deliver).
  void revoke_rx_buffers();

  /// Queues `frame` across `chunks` chained TX descriptors and rings TDMD.
  void send(std::span<const uint8_t> frame, int chunks = 1);

  /// Reaps the next delivered RX frame, if any, reposting its buffer.
  std::optional<std::vector<uint8_t>> poll_rx();

  /// Acknowledges TINT/RINT/IDON/MISS.
  void ack_irq();

  /// Writes a CSR outside the trained set (FP source).
  void write_rare_csr();

  [[nodiscard]] uint64_t io_count() const { return io_count_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  static constexpr uint64_t kInitBlock = 0x1000;
  static constexpr uint64_t kTxRing = 0x2000;
  static constexpr uint64_t kRxRing = 0x4000;
  static constexpr uint64_t kTxBuf = 0x10000;
  static constexpr uint64_t kRxBuf = 0x40000;
  static constexpr uint32_t kRxBufLen = 4200;

  [[nodiscard]] uint64_t tx_desc(uint16_t idx) const {
    return kTxRing + devices::PcnetDevice::kDescSize * idx;
  }
  [[nodiscard]] uint64_t rx_desc(uint16_t idx) const {
    return kRxRing + devices::PcnetDevice::kDescSize * idx;
  }

  sedspec::IoBus* bus_;
  sedspec::GuestMemory* mem_;
  Config config_;
  uint16_t tx_idx_ = 0;
  uint16_t rx_idx_ = 0;
  uint64_t io_count_ = 0;
};

}  // namespace sedspec::guest
