#include "guest/pcnet_driver.h"

#include <algorithm>

#include "common/assert.h"

namespace sedspec::guest {

namespace {
using sedspec::devices::PcnetDevice;
constexpr uint64_t kBase = PcnetDevice::kBasePort;
}  // namespace

void PcnetDriver::wcsr(uint16_t n, uint16_t v) {
  io_count_ += 2;
  bus_->write(IoSpace::kPio, kBase + PcnetDevice::kRegRap, 2, n);
  bus_->write(IoSpace::kPio, kBase + PcnetDevice::kRegRdp, 2, v);
}

uint16_t PcnetDriver::rcsr(uint16_t n) {
  io_count_ += 2;
  bus_->write(IoSpace::kPio, kBase + PcnetDevice::kRegRap, 2, n);
  return static_cast<uint16_t>(
      bus_->read(IoSpace::kPio, kBase + PcnetDevice::kRegRdp, 2));
}

void PcnetDriver::soft_reset() {
  ++io_count_;
  (void)bus_->read(IoSpace::kPio, kBase + PcnetDevice::kRegReset, 2);
}

void PcnetDriver::setup(const Config& config) {
  config_ = config;
  tx_idx_ = 0;
  rx_idx_ = 0;
  soft_reset();

  // Init block: {u32 rdra, u32 tdra}.
  mem_->w32(kInitBlock, static_cast<uint32_t>(kRxRing));
  mem_->w32(kInitBlock + 4, static_cast<uint32_t>(kTxRing));
  for (uint16_t i = 0; i < config.tx_ring_len; ++i) {
    mem_->w32(tx_desc(i) + 4, 0);  // not owned
  }
  post_rx_buffers();

  wcsr(1, static_cast<uint16_t>(kInitBlock & 0xffff));
  wcsr(2, static_cast<uint16_t>(kInitBlock >> 16));
  uint16_t mode = 0;
  if (config.loopback) {
    mode |= PcnetDevice::kModeLoop;
  }
  if (!config.append_fcs) {
    mode |= PcnetDevice::kModeDxmtfcs;
  }
  wcsr(15, mode);
  wcsr(3, 0);
  wcsr(4, 0x0915);
  wcsr(76, static_cast<uint16_t>(0x10000 - config.rx_ring_len));
  wcsr(78, static_cast<uint16_t>(0x10000 - config.tx_ring_len));
  wcsr(0, PcnetDevice::kCsr0Init | PcnetDevice::kCsr0Strt |
              PcnetDevice::kCsr0Iena);
  (void)rcsr(0);  // poll IDON
}

void PcnetDriver::post_rx_buffers() {
  for (uint16_t i = 0; i < config_.rx_ring_len; ++i) {
    const uint64_t buf = kRxBuf + uint64_t{i} * kRxBufLen;
    mem_->w32(rx_desc(i), static_cast<uint32_t>(buf));
    mem_->w32(rx_desc(i) + 8, kRxBufLen);
    mem_->w32(rx_desc(i) + 12, 0);
    mem_->w32(rx_desc(i) + 4, PcnetDevice::kDescOwn);
  }
}

void PcnetDriver::revoke_rx_buffers() {
  for (uint16_t i = 0; i < config_.rx_ring_len; ++i) {
    mem_->w32(rx_desc(i) + 4, 0);
  }
}

void PcnetDriver::send(std::span<const uint8_t> frame, int chunks) {
  SEDSPEC_REQUIRE(chunks >= 1 &&
                  chunks <= static_cast<int>(config_.tx_ring_len));
  const size_t chunk_size = (frame.size() + chunks - 1) / chunks;
  size_t off = 0;
  for (int k = 0; k < chunks; ++k) {
    const size_t n = std::min(chunk_size, frame.size() - off);
    const uint64_t payload = kTxBuf + uint64_t{tx_idx_} * 4200;
    mem_->write(payload, frame.subspan(off, n));
    uint32_t flags = PcnetDevice::kDescOwn;
    if (k == 0) {
      flags |= PcnetDevice::kDescStp;
    }
    if (k == chunks - 1) {
      flags |= PcnetDevice::kDescEnp;
    }
    mem_->w32(tx_desc(tx_idx_), static_cast<uint32_t>(payload));
    mem_->w32(tx_desc(tx_idx_) + 8, static_cast<uint32_t>(n));
    mem_->w32(tx_desc(tx_idx_) + 4, flags);
    tx_idx_ = static_cast<uint16_t>((tx_idx_ + 1) % config_.tx_ring_len);
    off += n;
  }
  wcsr(0, PcnetDevice::kCsr0Tdmd | PcnetDevice::kCsr0Iena);
}

std::optional<std::vector<uint8_t>> PcnetDriver::poll_rx() {
  const uint64_t desc = rx_desc(rx_idx_);
  const uint32_t flags = mem_->r32(desc + 4);
  if ((flags & PcnetDevice::kDescOwn) != 0) {
    return std::nullopt;  // still device-owned... i.e. not yet delivered
  }
  const uint32_t msg_len = mem_->r32(desc + 12);
  const uint64_t buf = mem_->r32(desc);
  std::vector<uint8_t> frame(msg_len);
  mem_->read(buf, frame);
  // Repost the buffer.
  mem_->w32(desc + 12, 0);
  mem_->w32(desc + 4, PcnetDevice::kDescOwn);
  rx_idx_ = static_cast<uint16_t>((rx_idx_ + 1) % config_.rx_ring_len);
  return frame;
}

void PcnetDriver::ack_irq() {
  wcsr(0, PcnetDevice::kCsr0Tint | PcnetDevice::kCsr0Rint |
              PcnetDevice::kCsr0Idon | PcnetDevice::kCsr0Miss |
              PcnetDevice::kCsr0Iena);
}

void PcnetDriver::write_rare_csr() { wcsr(47, 0); }

}  // namespace sedspec::guest
