file(REMOVE_RECURSE
  "CMakeFiles/qtest_replay.dir/qtest_replay.cpp.o"
  "CMakeFiles/qtest_replay.dir/qtest_replay.cpp.o.d"
  "qtest_replay"
  "qtest_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtest_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
