// qtest_replay: run a QTest-style script against a protected device.
//
// The paper sources training samples from QTest (§IV-C); this tool closes
// the loop: scripts are plain text, the device is trained on its standard
// benign mix, and the script runs against the deployed checker.
//
// Usage: qtest_replay <device> <script-file> [--unprotected]
//        qtest_replay fdc examples/scripts/fdc_smoke.qtest
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/log.h"
#include "guest/qtest.h"
#include "guest/workload.h"

using namespace sedspec;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <fdc|usb-ehci|pcnet|sdhci|scsi-esp> "
                 "<script.qtest> [--unprotected]\n",
                 argv[0]);
    return 2;
  }
  const std::string device = argv[1];
  std::ifstream file(argv[2]);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 2;
  }
  std::stringstream script;
  script << file.rdbuf();
  const bool unprotected = argc > 3 && std::string(argv[3]) == "--unprotected";

  auto wl = guest::make_workload(device);
  if (!unprotected) {
    checker::CheckerConfig config;
    config.mode = checker::Mode::kEnhancement;
    wl->build_and_deploy(config);
    std::printf("trained + deployed SEDSpec (%zu blocks)\n",
                wl->spec().blocks.size());
  }

  GuestMemory script_mem(1 << 20);
  VirtualClock clock;
  guest::QtestRunner runner(&wl->bus(), &script_mem, &clock);
  try {
    const auto result = runner.run(script.str());
    std::printf("script ok: %llu commands, %zu values read\n",
                (unsigned long long)result.commands, result.in_values.size());
  } catch (const guest::QtestError& e) {
    std::fprintf(stderr, "script failed: %s\n", e.what());
    return 1;
  }
  if (wl->deployed()) {
    const auto& s = wl->checker()->stats();
    std::printf("checker: %llu rounds, %llu warnings, %llu blocked\n",
                (unsigned long long)s.rounds, (unsigned long long)s.warnings,
                (unsigned long long)s.blocked);
  }
  return 0;
}
