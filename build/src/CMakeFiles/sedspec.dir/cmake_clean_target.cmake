file(REMOVE_RECURSE
  "libsedspec.a"
)
