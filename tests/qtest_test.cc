// Unit tests for the QTest-style scripted I/O harness.
#include <gtest/gtest.h>

#include "devices/fdc.h"
#include "guest/qtest.h"

namespace sedspec {
namespace {

using devices::FdcDevice;
using guest::QtestError;
using guest::QtestRunner;

struct QtestEnv {
  FdcDevice fdc;
  IoBus bus;
  GuestMemory mem{4096};
  VirtualClock clock;
  QtestRunner runner{&bus, &mem, &clock};
  QtestEnv() {
    bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan, &fdc);
  }
};

TEST(Qtest, DrivesARealDevice) {
  QtestEnv env;
  // Reset the FDC, issue VERSION through the FIFO, expect the 82078 id.
  const auto result = env.runner.run(R"(
# floppy controller smoke test
outb 0x3f2 0x00
outb 0x3f2 0x0c
inb 0x3f4          # MSR: RQM set after reset
outb 0x3f5 0x10    # VERSION
inb 0x3f5
expect 0x90
)");
  EXPECT_EQ(result.commands, 6u);
  ASSERT_EQ(result.in_values.size(), 2u);
  EXPECT_EQ(result.in_values[0] & FdcDevice::kMsrRqm, FdcDevice::kMsrRqm);
  EXPECT_EQ(result.in_values[1], 0x90u);
}

TEST(Qtest, MemoryAndClockCommands) {
  QtestEnv env;
  const auto result = env.runner.run(R"(
memwrite 0x100 deadbeef
memset 0x200 4 0x41
clock_step 2500
)");
  EXPECT_EQ(result.commands, 3u);
  EXPECT_EQ(env.mem.r32(0x100), 0xefbeadde);  // little-endian bytes
  EXPECT_EQ(env.mem.r8(0x203), 0x41);
  EXPECT_EQ(env.clock.now(), 2500u);
}

TEST(Qtest, ExpectFailureReportsLine) {
  QtestEnv env;
  try {
    env.runner.run("outb 0x3f2 0x0c\ninb 0x3f4\nexpect 0x00\n");
    FAIL() << "expect should have thrown";
  } catch (const QtestError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Qtest, ParseErrors) {
  QtestEnv env;
  EXPECT_THROW((void)env.runner.run("frobnicate 1 2\n"), QtestError);
  EXPECT_THROW((void)env.runner.run("outb 0x3f2\n"), QtestError);
  EXPECT_THROW((void)env.runner.run("outb zzz 1\n"), QtestError);
  EXPECT_THROW((void)env.runner.run("memwrite 0x0 xyz\n"), QtestError);
  EXPECT_THROW((void)env.runner.run("expect 1\n"), QtestError);
}

TEST(Qtest, NoAttachmentsRejectUse) {
  IoBus bus;
  QtestRunner bare(&bus);
  EXPECT_THROW((void)bare.run("memset 0 1 0\n"), QtestError);
  EXPECT_THROW((void)bare.run("clock_step 1\n"), QtestError);
}

TEST(Qtest, CommentsAndBlankLinesIgnored) {
  QtestEnv env;
  const auto result = env.runner.run(
      "\n   \n# full comment line\n"
      "outb 0x3f2 0x0c   # trailing comment\n");
  EXPECT_EQ(result.commands, 1u);
}

}  // namespace
}  // namespace sedspec
