// Device base class.
//
// A device owns its control-structure arena, its instrumentation context,
// an IRQ line, and a ground-truth incident log. Concrete devices
// (src/devices) implement io_read/io_write against their register maps and,
// where the dataflow analyzer planted sync points, resolve_sync (paper
// §V-D: "synchronizing variable values from the sync point function").
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "expr/io.h"
#include "program/arena.h"
#include "program/incident.h"
#include "program/program.h"
#include "vdev/instr.h"
#include "vdev/irq.h"

namespace sedspec {

class DmaEngine;

class Device {
 public:
  /// The device keeps a non-owning pointer to `program`; the caller (usually
  /// the concrete device, which builds its program first) guarantees it
  /// outlives the device.
  explicit Device(const DeviceProgram* program);
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& name() const {
    return program_->device_name();
  }

  /// Resets device state to power-on values. Subclasses override
  /// reset_device(); the base clears the arena and the halted flag first.
  void reset();

  /// Bus entry points. `io.addr` is the absolute port/physical address.
  virtual uint64_t io_read(const IoAccess& io) = 0;
  virtual void io_write(const IoAccess& io) = 0;

  /// Sync-point resolution for the ES-Checker (paper §V-D): the value a
  /// local variable would take at this point of the simulated execution.
  /// `view` is the checker's *shadow* device state — resolution must read
  /// device-state parameters through it (not through the live arena), so a
  /// local that depends on loop-carried state (e.g. the current descriptor
  /// index) resolves correctly on every encounter. Implementations may read
  /// guest memory; they must be side-effect-free. Default: unresolvable.
  virtual std::optional<uint64_t> resolve_sync(LocalId local,
                                               const IoAccess& io,
                                               const StateAccess& view);

  [[nodiscard]] const DeviceProgram& program() const { return *program_; }
  [[nodiscard]] StateArena& state() { return arena_; }
  [[nodiscard]] const StateArena& state() const { return arena_; }
  [[nodiscard]] InstrumentationContext& ictx() { return ictx_; }
  [[nodiscard]] IrqLine& irq_line() { return irq_; }

  /// The device's DMA engine, if it masters the bus (fault-injection and
  /// instrumentation entry point). nullptr for PIO/MMIO-only devices.
  [[nodiscard]] virtual DmaEngine* dma_engine() { return nullptr; }

  [[nodiscard]] const IncidentLog& incidents() const { return incidents_; }
  void clear_incidents() { incidents_.clear(); }
  [[nodiscard]] bool has_incident(IncidentKind kind) const;

  /// Protection mode halts a compromised device; the bus then refuses
  /// further accesses to it.
  [[nodiscard]] bool halted() const { return halted_; }
  void set_halted(bool halted) { halted_ = halted; }

  /// Hook invoked after device-INTERNAL activity that mutates the control
  /// structure outside any guest I/O round (e.g. host-side frame delivery
  /// on a NIC). Guest I/O is the paper's threat surface; internal activity
  /// is trusted, but a deployed ES-Checker must resynchronize its shadow
  /// state afterwards — pipeline::deploy installs exactly that.
  void set_internal_activity_hook(std::function<void()> hook) {
    internal_activity_hook_ = std::move(hook);
  }

  /// Backend cost model for the performance benchmarks: each backing-store
  /// / wire operation busy-waits this long, standing in for the host
  /// syscalls (preadv on the disk image, tap writes) the real device's
  /// backend pays. Zero (the default) disables it. See DESIGN.md §1.
  void set_backend_latency_ns(uint64_t ns) { backend_latency_ns_ = ns; }
  [[nodiscard]] uint64_t backend_latency_ns() const {
    return backend_latency_ns_;
  }

 protected:
  virtual void reset_device() = 0;

  void record_incident(const Incident& incident) {
    incidents_.push_back(incident);
  }

  /// Pays one backend operation's worth of the latency model.
  void backend_delay() const;

  /// Concrete devices call this after internal (non-guest-I/O) rounds.
  void notify_internal_activity() {
    if (internal_activity_hook_) {
      internal_activity_hook_();
    }
  }

 private:
  const DeviceProgram* program_;
  StateArena arena_;
  InstrumentationContext ictx_;
  IrqLine irq_;
  IncidentLog incidents_;
  bool halted_ = false;
  uint64_t backend_latency_ns_ = 0;
  std::function<void()> internal_activity_hook_;
};

}  // namespace sedspec
