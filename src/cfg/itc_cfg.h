// ITC-CFG: Indirect Targets Connected Control Flow Graph.
//
// Built from the decoded IPT-style event stream following FlowGuard's
// approach (paper §IV-A): nodes are traced code addresses; edges connect
// consecutively observed addresses and are labeled sequential, taken, or
// not-taken; indirect-jump targets (function addresses reached through
// pointer calls) are connected into the same graph — hence "ITC".
//
// The builder is program-agnostic: it only sees addresses and TNT bits.
// The CFG analyzer (cfg/analyzer.h) later overlays the DeviceProgram to
// classify nodes and select device-state parameters.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "trace/packets.h"

namespace sedspec::cfg {

using sedspec::FuncAddr;

enum class EdgeLabel : uint8_t { kSeq = 0, kTaken, kNotTaken };

struct ItcNode {
  FuncAddr addr = 0;
  uint64_t visits = 0;
  // Successor address -> traversal count, per edge label.
  std::map<FuncAddr, uint64_t> succ_seq;
  std::map<FuncAddr, uint64_t> succ_taken;
  std::map<FuncAddr, uint64_t> succ_not_taken;
  uint64_t window_ends = 0;  // times this node closed a trace window (PGD)
};

class ItcCfg {
 public:
  [[nodiscard]] const std::map<FuncAddr, ItcNode>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const ItcNode* node(FuncAddr addr) const;
  [[nodiscard]] size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] size_t edge_count() const;
  [[nodiscard]] uint64_t window_count() const { return windows_; }

  /// Addresses that opened a trace window (first TIP after PGE).
  [[nodiscard]] const std::set<FuncAddr>& window_heads() const {
    return heads_;
  }

 private:
  friend class ItcCfgBuilder;
  std::map<FuncAddr, ItcNode> nodes_;
  std::set<FuncAddr> heads_;
  uint64_t windows_ = 0;
};

/// Streaming builder: feed decoded events (possibly across many I/O
/// rounds); take() the finished graph.
class ItcCfgBuilder {
 public:
  void feed(const trace::TraceEvent& event);
  void feed_all(const std::vector<trace::TraceEvent>& events);

  [[nodiscard]] ItcCfg take();
  [[nodiscard]] const ItcCfg& cfg() const { return cfg_; }

 private:
  ItcCfg cfg_;
  bool in_window_ = false;
  bool window_fresh_ = false;             // next TIP is the window head
  std::optional<FuncAddr> prev_;          // previous TIP in this window
  std::optional<bool> pending_tnt_;       // direction awaiting its target
};

}  // namespace sedspec::cfg
