// Unit tests for the expression language and its checked/unchecked
// evaluator — the foundation of both device execution and the parameter
// check strategy.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "expr/eval.h"
#include "program/arena.h"
#include "program/layout.h"

namespace sedspec {
namespace {

struct Env {
  StateLayout layout{"TestStruct"};
  ParamId a, b, buf;
  std::unique_ptr<StateArena> arena;
  IoAccess io;

  Env() {
    a = layout.add_scalar("a", FieldKind::kRegister, IntType::kU32);
    b = layout.add_scalar("b", FieldKind::kRegister, IntType::kI16);
    buf = layout.add_buffer("buf", 1, 8);
    arena = std::make_unique<StateArena>(&layout);
  }

  uint64_t eval(const ExprRef& e, bool checked, EvalDiag* diag) {
    EvalCtx ctx;
    ctx.state = arena.get();
    ctx.io = &io;
    ctx.checked = checked;
    ctx.diag = diag;
    return eval_expr(*e, ctx);
  }
};

TEST(ExprEval, ConstantsAndParams) {
  Env env;
  env.arena->set_param(env.a, 41);
  EXPECT_EQ(env.eval(eb::c(7, IntType::kU8), false, nullptr), 7u);
  EXPECT_EQ(env.eval(eb::param(env.a, IntType::kU32), false, nullptr), 41u);
  EXPECT_EQ(env.eval(eb::add(eb::param(env.a, IntType::kU32),
                             eb::c(1, IntType::kU32), IntType::kU32),
                     false, nullptr),
            42u);
}

TEST(ExprEval, IoFields) {
  Env env;
  env.io.addr = 0x3f5;
  env.io.value = 0xbeef;
  env.io.is_write = true;
  EXPECT_EQ(env.eval(eb::io(IoField::kAddr), false, nullptr), 0x3f5u);
  EXPECT_EQ(env.eval(eb::io_value(IntType::kU8), false, nullptr), 0xefu);
  EXPECT_EQ(env.eval(eb::io(IoField::kIsWrite), false, nullptr), 1u);
}

TEST(ExprEval, UncheckedArithmeticWraps) {
  Env env;
  auto sum = eb::add(eb::c(0xffffffff, IntType::kU32),
                     eb::c(1, IntType::kU32), IntType::kU32);
  EXPECT_EQ(env.eval(sum, false, nullptr), 0u);  // silent wrap, like C
}

TEST(ExprEval, CheckedAdditionOverflowFlagged) {
  Env env;
  EvalDiag diag;
  auto sum = eb::add(eb::c(0xffffffff, IntType::kU32),
                     eb::c(1, IntType::kU32), IntType::kU32);
  EXPECT_EQ(env.eval(sum, true, &diag), 0u);
  EXPECT_EQ(diag.kind, EvalDiag::Kind::kIntegerOverflow);
  EXPECT_EQ(diag.type, IntType::kU32);
}

TEST(ExprEval, CheckedUnsignedUnderflowFlagged) {
  // The CVE-2021-3409 signature: blksize - data_count in u32.
  Env env;
  EvalDiag diag;
  auto diff = eb::sub(eb::c(16, IntType::kU32), eb::c(64, IntType::kU32),
                      IntType::kU32);
  (void)env.eval(diff, true, &diag);
  EXPECT_EQ(diag.kind, EvalDiag::Kind::kIntegerOverflow);
}

TEST(ExprEval, SignedComparisonIsMathematical) {
  Env env;
  env.arena->set_param(env.b, static_cast<uint64_t>(-5) & 0xffff);
  auto cmp = eb::lt(eb::param(env.b, IntType::kI16), eb::c(0, IntType::kI32));
  EXPECT_EQ(env.eval(cmp, false, nullptr), 1u);
}

TEST(ExprEval, DivisionByZeroFlaggedChecked) {
  Env env;
  EvalDiag diag;
  auto div = eb::bin(BinaryOp::kDiv, eb::c(10, IntType::kU32),
                     eb::c(0, IntType::kU32), IntType::kU32);
  EXPECT_EQ(env.eval(div, true, &diag), 0u);
  EXPECT_EQ(diag.kind, EvalDiag::Kind::kDivByZero);
}

TEST(ExprEval, CastsWrapSilentlyEvenChecked) {
  Env env;
  EvalDiag diag;
  auto cast = eb::cast(eb::c(0x12345, IntType::kU32), IntType::kU8);
  EXPECT_EQ(env.eval(cast, true, &diag), 0x45u);
  EXPECT_FALSE(diag.any());
}

TEST(ExprEval, ShiftOutOfRangeFlagged) {
  Env env;
  EvalDiag diag;
  auto shl = eb::shl(eb::c(1, IntType::kU16), eb::c(20, IntType::kU16),
                     IntType::kU16);
  (void)env.eval(shl, true, &diag);
  EXPECT_NE(diag.kind, EvalDiag::Kind::kNone);
}

TEST(ExprEval, BufferLoadInBounds) {
  Env env;
  EvalDiag diag;
  env.arena->buf_store(env.buf, 3, 0x5a, nullptr);
  auto load = eb::buf_load(env.buf, eb::c(3, IntType::kU32), IntType::kU8);
  EXPECT_EQ(env.eval(load, true, &diag), 0x5au);
  EXPECT_FALSE(diag.any());
}

TEST(ExprEval, BufferLoadOutOfBoundsFlagged) {
  Env env;
  EvalDiag diag;
  auto load = eb::buf_load(env.buf, eb::c(8, IntType::kU32), IntType::kU8);
  (void)env.eval(load, true, &diag);
  EXPECT_EQ(diag.kind, EvalDiag::Kind::kBufferOob);
  EXPECT_FALSE(diag.oob_is_write);
}

TEST(ExprEval, MissingLocalFlaggedChecked) {
  Env env;
  EvalDiag diag;
  auto l = eb::local(5, IntType::kU32);
  EXPECT_EQ(env.eval(l, true, &diag), 0u);
  EXPECT_EQ(diag.kind, EvalDiag::Kind::kMissingLocal);
  EXPECT_EQ(diag.local, 5);
}

TEST(ExprEval, MissingLocalThrowsUnchecked) {
  // Device-side read of an unset local is a programming error.
  Env env;
  auto l = eb::local(6, IntType::kU32);
  EXPECT_THROW((void)env.eval(l, false, nullptr), std::logic_error);
}

TEST(ExprEval, LogicalOps) {
  Env env;
  EXPECT_EQ(env.eval(eb::land(eb::c(1, IntType::kU8), eb::c(2, IntType::kU8)),
                     false, nullptr),
            1u);
  EXPECT_EQ(env.eval(eb::lor(eb::c(0, IntType::kU8), eb::c(0, IntType::kU8)),
                     false, nullptr),
            0u);
  EXPECT_EQ(env.eval(eb::lnot(eb::c(0, IntType::kU8)), false, nullptr), 1u);
}

TEST(ExprEval, StatementsExecuteAgainstState) {
  Env env;
  EvalCtx ctx;
  ctx.state = env.arena.get();
  ctx.io = &env.io;
  env.io.value = 0x77;
  exec_stmt(sb::assign(env.a, eb::io_value(IntType::kU32)), ctx);
  EXPECT_EQ(env.arena->param(env.a), 0x77u);
  exec_stmt(sb::assign_local(3, eb::c(9, IntType::kU32)), ctx);
  uint64_t v = 0;
  EXPECT_TRUE(env.arena->local(3, &v));
  EXPECT_EQ(v, 9u);
  exec_stmt(sb::buf_store(env.buf, eb::c(2, IntType::kU32),
                          eb::c(0xab, IntType::kU8)),
            ctx);
  EXPECT_EQ(env.arena->buf_peek(env.buf, 2), 0xabu);
}

// Property sweep: for every integer type, checked evaluation flags exactly
// the results that do not fit, and the wrapped value always equals the
// unchecked (C semantics) value.
class EvalTypeSweep : public ::testing::TestWithParam<IntType> {};

INSTANTIATE_TEST_SUITE_P(AllTypes, EvalTypeSweep,
                         ::testing::Values(IntType::kU8, IntType::kU16,
                                           IntType::kU32, IntType::kU64,
                                           IntType::kI8, IntType::kI16,
                                           IntType::kI32, IntType::kI64),
                         [](const auto& info) {
                           return type_name(info.param);
                         });

TEST_P(EvalTypeSweep, WrapMatchesUncheckedAndFlagMatchesRange) {
  const IntType t = GetParam();
  Env env;
  Rng rng(1234 + static_cast<uint64_t>(t));
  for (int i = 0; i < 2000; ++i) {
    const uint64_t ra = truncate_to(t, rng.next_u64());
    const uint64_t rb = truncate_to(t, rng.next_u64());
    const BinaryOp op = i % 3 == 0   ? BinaryOp::kAdd
                        : i % 3 == 1 ? BinaryOp::kSub
                                     : BinaryOp::kMul;
    auto e = eb::bin(op, eb::c(ra, t), eb::c(rb, t), t);
    EvalDiag diag;
    const uint64_t checked = env.eval(e, true, &diag);
    const uint64_t unchecked = env.eval(e, false, nullptr);
    EXPECT_EQ(checked, unchecked);
    const __int128 va = interpret(t, ra);
    const __int128 vb = interpret(t, rb);
    const __int128 truth = op == BinaryOp::kAdd   ? va + vb
                           : op == BinaryOp::kSub ? va - vb
                                                  : va * vb;
    EXPECT_EQ(diag.kind == EvalDiag::Kind::kIntegerOverflow,
              !representable(t, truth))
        << type_name(t) << " " << ra << " op " << rb;
    // The wrapped result re-interpreted must be congruent to the truth
    // modulo 2^bits.
    EXPECT_EQ(wrap_to(t, truth), checked);
  }
}

}  // namespace
}  // namespace sedspec
