#include "benchsim/perf.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/assert.h"
#include "devices/pcnet.h"
#include "guest/pcnet_driver.h"

namespace sedspec::benchsim {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void apply_latency_model(guest::DeviceWorkload& workload) {
  workload.bus().set_access_latency_ns(kVmExitNs);
  workload.device().set_backend_latency_ns(
      workload.is_storage() ? kStorageBackendNs : kNetBackendNs);
}

StoragePoint measure_storage(guest::DeviceWorkload& workload,
                             size_t block_bytes, size_t budget_bytes) {
  SEDSPEC_REQUIRE(workload.is_storage());
  SEDSPEC_REQUIRE(block_bytes % 512 == 0 && block_bytes > 0);
  const uint64_t capacity = workload.storage_capacity();
  SEDSPEC_REQUIRE(block_bytes <= capacity);
  // Keep the touched range inside the medium and the run time bounded.
  const size_t ops = std::max<size_t>(
      3, std::min<size_t>(budget_bytes / block_bytes,
                          (capacity - block_bytes) / block_bytes));
  std::vector<uint8_t> buf(block_bytes);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i * 13 + 7);
  }

  StoragePoint point;
  point.block_bytes = block_bytes;

  // Each operation's cost is deterministic work plus fixed latency-model
  // waits, so the per-operation MINIMUM is the noise-robust estimate on a
  // shared machine.
  double w_min = 1e18;
  for (size_t i = 0; i < ops; ++i) {
    const auto start = Clock::now();
    workload.bulk_write(static_cast<uint32_t>(i * (block_bytes / 512)), buf);
    w_min = std::min(w_min, seconds_since(start));
  }
  point.write_mbps = static_cast<double>(block_bytes) / (w_min * 1e6);
  point.write_latency_us = w_min * 1e6;

  double r_min = 1e18;
  for (size_t i = 0; i < ops; ++i) {
    const auto start = Clock::now();
    workload.bulk_read(static_cast<uint32_t>(i * (block_bytes / 512)), buf);
    r_min = std::min(r_min, seconds_since(start));
  }
  point.read_mbps = static_cast<double>(block_bytes) / (r_min * 1e6);
  point.read_latency_us = r_min * 1e6;
  return point;
}

namespace {

/// Self-contained PCNet bench harness (wire or loopback mode).
struct PcnetBench {
  GuestMemory mem{1 << 20};
  devices::PcnetDevice device{&mem};
  IoBus bus;
  guest::PcnetDriver driver{&bus, &mem};
  spec::EsCfg cfg;
  std::unique_ptr<checker::EsChecker> checker;

  explicit PcnetBench(bool with_checker) {
    bus.map(IoSpace::kPio, devices::PcnetDevice::kBasePort,
            devices::PcnetDevice::kPortSpan, &device);
    if (with_checker) {
      cfg = pipeline::build_spec(device, [this] { train_body(); });
      checker = pipeline::deploy(cfg, device, bus, {});
    }
    // Latency model is enabled only for the measured streams, not training.
    bus.set_access_latency_ns(kVmExitNs);
    device.set_backend_latency_ns(kNetBackendNs);
  }

  void train_body() {
    guest::PcnetDriver drv(&bus, &mem);
    auto pattern = [](size_t n, uint64_t seed) {
      std::vector<uint8_t> out(n);
      for (size_t i = 0; i < n; ++i) {
        out[i] = static_cast<uint8_t>(seed * 31 + i * 7);
      }
      return out;
    };
    drv.setup({.tx_ring_len = 16,
               .rx_ring_len = 16,
               .loopback = true,
               .append_fcs = true});
    for (int chunks : {1, 2}) {
      for (size_t size : {60u, 1460u}) {
        drv.send(pattern(size, size), chunks);
        (void)drv.poll_rx();
        drv.ack_irq();
      }
    }
    drv.setup({.tx_ring_len = 16,
               .rx_ring_len = 16,
               .loopback = false,
               .append_fcs = false});
    // Enough traffic to wrap both descriptor rings.
    for (int i = 0; i < 20; ++i) {
      drv.send(pattern(1460, static_cast<uint64_t>(i)), 1);
      drv.ack_irq();
      device.clear_tx_log();
      (void)device.receive_frame(pattern(1460, static_cast<uint64_t>(i)));
      (void)drv.poll_rx();
      drv.ack_irq();
    }
    drv.setup({.tx_ring_len = 16,
               .rx_ring_len = 16,
               .loopback = true,
               .append_fcs = true});
    for (int i = 0; i < 20; ++i) {
      drv.send(pattern(64, static_cast<uint64_t>(i)), 1);
      (void)drv.poll_rx();
      drv.ack_irq();
    }
  }

  void wire_mode() {
    driver.setup({.tx_ring_len = 16,
                  .rx_ring_len = 16,
                  .loopback = false,
                  .append_fcs = false});
  }
  void loop_mode() {
    driver.setup({.tx_ring_len = 16,
                  .rx_ring_len = 16,
                  .loopback = true,
                  .append_fcs = true});
  }
};

constexpr size_t kFrameSize = 1460;

double stream_up(PcnetBench& b, int frames, bool tcp) {
  const std::vector<uint8_t> frame(kFrameSize, 0x55);
  const std::vector<uint8_t> ack(64, 0x11);
  const auto start = Clock::now();
  for (int i = 0; i < frames; ++i) {
    b.driver.send(frame, 1);
    b.device.clear_tx_log();
    if (tcp && i % 4 == 3) {
      // Reverse ACK segment from the peer.
      (void)b.device.receive_frame(ack);
      (void)b.driver.poll_rx();
      b.driver.ack_irq();
    } else if (i % 8 == 7) {
      b.driver.ack_irq();
    }
  }
  return seconds_since(start);
}

double stream_down(PcnetBench& b, int frames, bool tcp) {
  const std::vector<uint8_t> frame(kFrameSize, 0xaa);
  const std::vector<uint8_t> ack(64, 0x22);
  const auto start = Clock::now();
  for (int i = 0; i < frames; ++i) {
    (void)b.device.receive_frame(frame);
    (void)b.driver.rcsr(0);  // ISR reads the status register first
    (void)b.driver.poll_rx();
    b.driver.ack_irq();
    if (tcp && i % 4 == 3) {
      b.driver.send(ack, 1);
      b.device.clear_tx_log();
    }
  }
  return seconds_since(start);
}

double to_mbps(int frames, double secs) {
  return static_cast<double>(frames) * kFrameSize * 8.0 / (secs * 1e6);
}

}  // namespace

PcnetBandwidth measure_pcnet_bandwidth(bool with_checker,
                                       int frames_per_run) {
  // Deterministic work + fixed busy-waits: the minimum over repeats is the
  // noise-robust estimate on a shared machine.
  PcnetBench bench(with_checker);
  bench.wire_mode();
  constexpr int kRepeats = 5;
  double tcp_up = 1e9, udp_up = 1e9, tcp_down = 1e9, udp_down = 1e9;
  for (int r = 0; r < kRepeats; ++r) {
    tcp_up = std::min(tcp_up, stream_up(bench, frames_per_run, true));
    udp_up = std::min(udp_up, stream_up(bench, frames_per_run, false));
    tcp_down = std::min(tcp_down, stream_down(bench, frames_per_run, true));
    udp_down = std::min(udp_down, stream_down(bench, frames_per_run, false));
  }
  PcnetBandwidth out;
  out.tcp_up_mbps = to_mbps(frames_per_run, tcp_up);
  out.udp_up_mbps = to_mbps(frames_per_run, udp_up);
  out.tcp_down_mbps = to_mbps(frames_per_run, tcp_down);
  out.udp_down_mbps = to_mbps(frames_per_run, udp_down);
  return out;
}

double measure_pcnet_ping(bool with_checker, int pings) {
  PcnetBench bench(with_checker);
  bench.loop_mode();
  const std::vector<uint8_t> echo(64, 0x33);
  double secs = 1e9;
  for (int r = 0; r < 5; ++r) {
    const auto start = Clock::now();
    for (int i = 0; i < pings; ++i) {
      bench.driver.send(echo, 1);    // ICMP echo request...
      (void)bench.driver.poll_rx();  // ...looped back as the reply
      bench.driver.ack_irq();
    }
    secs = std::min(secs, seconds_since(start));
  }
  // Raw per-echo cost of the emulated path. The paper's guest-visible RTT
  // (~0.65 ms) is dominated by guest scheduling and the NAT stack, which
  // SEDSpec does not touch; the Figure 5 bench adds that fixed component
  // when reporting RTTs so the overhead ratio is comparable.
  return secs * 1e3 / pings;
}

}  // namespace sedspec::benchsim
