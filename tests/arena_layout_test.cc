// Unit tests for the control-structure layout and the state arena — the
// adjacent-field-corruption semantics every exploit model relies on.
#include <gtest/gtest.h>

#include "program/arena.h"
#include "program/layout.h"

namespace sedspec {
namespace {

TEST(Layout, NaturalAlignmentLikeAStruct) {
  StateLayout layout("S");
  const ParamId a = layout.add_scalar("a", FieldKind::kRegister, IntType::kU8);
  const ParamId b = layout.add_scalar("b", FieldKind::kRegister, IntType::kU32);
  const ParamId c = layout.add_scalar("c", FieldKind::kRegister, IntType::kU16);
  const ParamId fp = layout.add_funcptr("fp");
  EXPECT_EQ(layout.field(a).offset, 0u);
  EXPECT_EQ(layout.field(b).offset, 4u);  // padded to 4
  EXPECT_EQ(layout.field(c).offset, 8u);
  EXPECT_EQ(layout.field(fp).offset, 16u);  // padded to 8
  EXPECT_EQ(layout.arena_size(), 24u);
}

TEST(Layout, FindAndOffsetLookup) {
  StateLayout layout("S");
  (void)layout.add_scalar("x", FieldKind::kRegister, IntType::kU32);
  const ParamId buf = layout.add_buffer("buf", 1, 16);
  EXPECT_EQ(layout.find("buf"), buf);
  EXPECT_FALSE(layout.find("nope").has_value());
  EXPECT_EQ(layout.field_at_offset(layout.field(buf).offset + 5), buf);
}

TEST(Layout, DuplicateNameRejected) {
  StateLayout layout("S");
  (void)layout.add_scalar("x", FieldKind::kRegister, IntType::kU8);
  EXPECT_THROW(
      (void)layout.add_scalar("x", FieldKind::kRegister, IntType::kU8),
      std::logic_error);
}

struct ArenaEnv {
  StateLayout layout{"S"};
  ParamId before, buf, after, fp;
  std::unique_ptr<StateArena> arena;
  IncidentLog incidents;

  ArenaEnv() {
    before = layout.add_scalar("before", FieldKind::kRegister, IntType::kU32);
    buf = layout.add_buffer("buf", 1, 8);
    after = layout.add_scalar("after", FieldKind::kIndex, IntType::kU32);
    fp = layout.add_funcptr("fp");
    arena = std::make_unique<StateArena>(&layout);
    arena->set_incident_fn(
        [this](const Incident& i) { incidents.push_back(i); });
  }
};

TEST(Arena, ScalarRoundTripTruncatesToFieldType) {
  ArenaEnv env;
  env.arena->set_param(env.before, 0x123456789abcdefULL);
  EXPECT_EQ(env.arena->param(env.before), 0x89abcdefu);
}

TEST(Arena, InBoundsBufferOps) {
  ArenaEnv env;
  EvalDiag diag;
  env.arena->buf_store(env.buf, 7, 0x5a, &diag);
  EXPECT_FALSE(diag.any());
  EXPECT_EQ(env.arena->buf_load(env.buf, 7, &diag), 0x5au);
  EXPECT_FALSE(diag.any());
  EXPECT_TRUE(env.incidents.empty());
}

TEST(Arena, OobStoreCorruptsAdjacentField) {
  ArenaEnv env;
  env.arena->set_param(env.after, 0);
  // buf has 8 elements; index 8..11 land on the 'after' u32.
  env.arena->buf_store(env.buf, 8, 0x44, nullptr);
  EXPECT_EQ(env.arena->param(env.after) & 0xff, 0x44u);
  ASSERT_FALSE(env.incidents.empty());
  EXPECT_EQ(env.incidents.front().kind, IncidentKind::kOobWrite);
}

TEST(Arena, OobStoreCanClobberFunctionPointer) {
  ArenaEnv env;
  env.arena->set_param(env.fp, 0xdeadbeefcafef00dULL);
  const auto& f = env.layout.field(env.fp);
  const auto& b = env.layout.field(env.buf);
  const uint64_t idx = f.offset - b.offset;  // first byte of fp
  env.arena->buf_store(env.buf, idx, 0x41, nullptr);
  EXPECT_NE(env.arena->param(env.fp), 0xdeadbeefcafef00dULL);
}

TEST(Arena, NegativeIndexReachesEarlierFields) {
  ArenaEnv env;
  env.arena->set_param(env.before, 0);
  const auto& b = env.layout.field(env.buf);
  const int64_t idx = -static_cast<int64_t>(b.offset);  // start of arena
  EvalDiag diag;
  env.arena->buf_store(env.buf, static_cast<uint64_t>(idx), 0x99, &diag);
  EXPECT_EQ(diag.kind, EvalDiag::Kind::kBufferOob);
  EXPECT_TRUE(diag.oob_is_write);
  EXPECT_EQ(env.arena->param(env.before) & 0xff, 0x99u);
}

TEST(Arena, EscapeBeyondStructDropped) {
  ArenaEnv env;
  env.arena->buf_store(env.buf, 4096, 0x41, nullptr);
  ASSERT_FALSE(env.incidents.empty());
  EXPECT_EQ(env.incidents.front().kind, IncidentKind::kStructEscape);
}

TEST(Arena, FillZeroesOnlyOutOfFieldBytes) {
  ArenaEnv env;
  env.arena->set_param(env.after, 0x11223344);
  auto span = env.arena->buffer_span(env.buf);
  std::fill(span.begin(), span.end(), 0xee);
  // In-bounds fill: buffer contents untouched by the shadow-side zeroing.
  env.arena->buf_fill(env.buf, 0, 8, nullptr);
  EXPECT_EQ(env.arena->buf_peek(env.buf, 0), 0xeeu);
  EXPECT_EQ(env.arena->param(env.after), 0x11223344u);
  // Overflowing fill: the out-of-field slice (the adjacent u32) is zeroed.
  env.arena->buf_fill(env.buf, 0, 12, nullptr);
  EXPECT_EQ(env.arena->param(env.after), 0u);
}

TEST(Arena, LocalsLifecycle) {
  ArenaEnv env;
  uint64_t v = 0;
  EXPECT_FALSE(env.arena->local(3, &v));
  env.arena->set_local(3, 42);
  EXPECT_TRUE(env.arena->local(3, &v));
  EXPECT_EQ(v, 42u);
  env.arena->clear_locals();
  EXPECT_FALSE(env.arena->local(3, &v));
}

TEST(Arena, CopyFromMirrorsBytes) {
  ArenaEnv a;
  ArenaEnv b;
  a.arena->set_param(a.before, 7);
  a.arena->buf_store(a.buf, 2, 0x33, nullptr);
  b.arena->copy_from(*a.arena);
  EXPECT_EQ(b.arena->param(b.before), 7u);
  EXPECT_EQ(b.arena->buf_peek(b.buf, 2), 0x33u);
}

TEST(Arena, PeekIsSilentOnOob) {
  ArenaEnv env;
  EXPECT_EQ(env.arena->buf_peek(env.buf, 123456), 0u);
  EXPECT_TRUE(env.incidents.empty());
}

}  // namespace
}  // namespace sedspec
