// Guest-side EHCI driver model: queues simplified qTDs and performs vendor
// control transfers against the attached USB storage device.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "devices/ehci.h"
#include "vdev/bus.h"
#include "vdev/memory.h"

namespace sedspec::guest {

class EhciDriver {
 public:
  EhciDriver(sedspec::IoBus* bus, sedspec::GuestMemory* mem)
      : bus_(bus), mem_(mem) {}

  void w32(uint64_t reg, uint32_t v);
  [[nodiscard]] uint32_t r32(uint64_t reg);

  /// RUN + port check.
  void start_controller();

  /// Queues one qTD and rings the doorbell.
  void token(uint32_t pid, uint32_t len, uint64_t buf_addr);
  void setup_packet(uint8_t bm_request_type, uint8_t b_request,
                    uint16_t w_value, uint16_t w_length);

  /// Interrupt-endpoint poll: an IN token while no control transfer is
  /// active (part of the benign vocabulary).
  void interrupt_poll();

  /// Vendor storage protocol.
  void read_block(uint16_t block, std::span<uint8_t> out,
                  uint32_t chunk = 512);
  void write_block(uint16_t block, std::span<const uint8_t> data,
                   uint32_t chunk = 512);
  /// A read that requests more than it consumes, ending with a short
  /// (clamped) IN — trains the clamp direction.
  void read_block_short(uint16_t block, std::span<uint8_t> out);
  /// A write whose final OUT is longer than the declared wLength — the
  /// device clamps it (trains the OUT clamp direction).
  void write_block_short(uint16_t block, std::span<const uint8_t> data);
  void status_out();

  [[nodiscard]] uint64_t io_count() const { return io_count_; }

 private:
  static constexpr uint64_t kQtdAddr = 0x1000;
  static constexpr uint64_t kSetupAddr = 0x2000;
  static constexpr uint64_t kDataAddr = 0x10000;

  sedspec::IoBus* bus_;
  sedspec::GuestMemory* mem_;
  uint64_t io_count_ = 0;
};

}  // namespace sedspec::guest
