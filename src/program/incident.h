// Ground-truth security incidents.
//
// When a vulnerable device executes an exploit *without* SEDSpec protection,
// the damage it would do in a real hypervisor (heap corruption, control-flow
// hijack, unbounded loop, use-after-free) is recorded here instead of
// crashing the process. The incident log is the ground truth against which
// SEDSpec's detection accuracy is measured (paper §VII-B: "comparing its
// execution outcome with the ground truth").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expr/ids.h"

namespace sedspec {

enum class IncidentKind : uint8_t {
  kOobWrite,        // buffer store outside its extent (hit a neighbor field)
  kOobRead,         // buffer load outside its extent
  kStructEscape,    // access landed outside the whole control structure
                    // (real QEMU: heap corruption / crash)
  kHijackedCall,    // indirect call through a pointer not in the function
                    // table (real QEMU: arbitrary code execution)
  kUseAfterFree,    // access to a freed/uninitialized object
  kRunawayLoop,     // loop aborted by the watchdog (real QEMU: infinite
                    // loop / DoS, e.g. CVE-2016-7909)
  kDivByZero,
};

[[nodiscard]] std::string incident_kind_name(IncidentKind k);

struct Incident {
  IncidentKind kind = IncidentKind::kOobWrite;
  ParamId field = kInvalidParam;  // buffer / pointer field involved
  uint64_t detail = 0;            // index, address, or loop count
  std::string note;
};

using IncidentLog = std::vector<Incident>;

}  // namespace sedspec
