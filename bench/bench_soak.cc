// Long-haul soak: a multi-device enforcement fleet under continuous
// telemetry, live spec redeploys, and scheduled fault bursts.
//
// Two phases:
//
//   benign  — N shards cycling every device type drive >= 1M checked I/O
//             operations (full mode) while the collector thread ticks the
//             telemetry stack: MemoryProbe -> TimeSeries window -> SLO
//             evaluation -> flight-recorder epoch. Specs are live-
//             republished on a window cadence (checker swaps mid-soak) and
//             a deterministic BurstSchedule arms internal checker faults —
//             containment must absorb them without an SLO breach.
//   breach  — a small fleet runs with a latency fault (a busy-spin inside
//             the checker's internal-fault seam, i.e. inside the timed
//             check region) that blows the windowed p99 past the latency
//             objective. The burn-rate engine must breach, and the breach
//             must freeze a flight bundle whose JSON parses back with the
//             breaching window's metrics embedded.
//
// Exit status is the soak verdict: non-zero when any phase assertion
// fails (benign breach, report loss, missing induced breach or bundle,
// malformed bundle JSON). The telemetry export lands in BENCH_soak.json:
// flat metrics plus per-window series, gated by scripts/bench_gate.py
// against bench/baselines/BENCH_soak.json.
//
// `--smoke` shrinks the op counts to a seconds-long run with the same
// structure (the soak_smoke_lane ctest entry, plain + ASan/UBSan builds).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "faultinject/faultinject.h"
#include "guest/workload.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/memprobe.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "report.h"
#include "sedspec/enforcement.h"
#include "spec/spec_store.h"

namespace {

using namespace sedspec;

struct SoakParams {
  bool smoke = false;
  size_t shards = 8;
  uint64_t ops_per_shard = 131072;  // 8 x 131072 = 1,048,576 checked ops
  size_t breach_shards = 2;
  uint64_t breach_ops_per_shard = 96;
  uint64_t sample_interval_ms = 25;
  uint64_t republish_every_windows = 4;
  /// Breach-phase latency fault: every `spin_stride`-th checked round eats
  /// a `spin_ns` busy-wait inside the timed check region. 1-in-24 at 4 ms
  /// puts >4% of rounds far beyond the p99 objective without stretching
  /// the phase to minutes (devices run hundreds of rounds per guest op).
  uint64_t spin_ns = 4'000'000;
  uint64_t spin_stride = 24;
  double p99_objective_ns = 2'000'000;  // generous: holds under sanitizers
};

SoakParams params_for(bool smoke) {
  SoakParams p;
  p.smoke = smoke;
  if (smoke) {
    p.shards = 4;
    p.ops_per_shard = 3072;  // seconds-long even under ASan
    p.sample_interval_ms = 10;
    p.republish_every_windows = 3;
  }
  return p;
}

// Collector -> shard-thread signalling. The collector publishes the
// current window; shard threads read it at their checker_hook cadence.
std::atomic<uint64_t> g_window{0};

/// Per-shard hook bookkeeping, touched only by that shard's thread.
struct HookState {
  uint64_t window = ~uint64_t{0};
  checker::EsChecker* armed = nullptr;
};

obs::SloEngine make_slo_engine(const SoakParams& p) {
  obs::SloEngine engine;
  {
    obs::SloSpec s;
    s.name = "check-latency-p99";
    s.kind = obs::SloKind::kHistogramQuantileMax;
    s.metric = "checker_check_latency_ns";  // empty labels: fleet merge
    s.quantile = 0.99;
    s.threshold = p.p99_objective_ns;
    s.fast_windows = 1;
    s.slow_windows = 4;
    s.budget = 0.25;  // one bad window in four sustains a breach
    engine.add(s);
  }
  {
    obs::SloSpec s;
    s.name = "zero-report-loss";
    s.kind = obs::SloKind::kCounterRateMax;
    s.metric = "report_queue_dropped_total";
    s.threshold = 0.0;
    s.fast_windows = 1;
    s.slow_windows = 4;
    s.budget = 0.25;
    engine.add(s);
  }
  {
    obs::SloSpec s;
    s.name = "zero-violations";
    s.kind = obs::SloKind::kCounterRateMax;
    s.metric = "checker_violations_total";
    s.threshold = 0.0;
    s.fast_windows = 1;
    s.slow_windows = 4;
    s.budget = 0.25;
    engine.add(s);
  }
  {
    obs::SloSpec s;
    s.name = "rss-growth";
    s.kind = obs::SloKind::kGaugeGrowthMax;
    s.metric = "rss_bytes";
    s.threshold = 64.0 * (1 << 20);  // bytes per window
    s.fast_windows = 1;
    s.slow_windows = 4;
    s.budget = 0.25;
    engine.add(s);
  }
  return engine;
}

struct PhaseResult {
  enforce::RunReport report;
  uint64_t windows = 0;
  uint64_t breaches = 0;
  uint64_t violating_windows = 0;
  uint64_t redeploys_published = 0;
  uint64_t bursts_armed = 0;
};

/// Runs one enforcement phase with the collector loop ticking alongside.
/// `slo` accumulates this phase's verdicts; `ts` keeps this phase's
/// windows (primed once before the fleet starts so window deltas never
/// include the previous phase's cumulative totals).
PhaseResult run_phase(const SoakParams& p, spec::SpecStore& store,
                      std::vector<enforce::ShardSpec> fleet,
                      obs::FlightRecorder& flight, obs::MemoryProbe& probe,
                      obs::TimeSeries& ts, obs::SloEngine& slo,
                      std::mutex& ctx_mu, std::string& ctx_json,
                      bool live_republish,
                      std::atomic<uint64_t>* bursts_armed) {
  PhaseResult out;

  enforce::ServiceConfig svc;
  svc.report_queue_capacity = 4096;
  svc.spec_poll_ops = 64;
  svc.flight = &flight;
  enforce::EnforcementService service(&store, svc);

  // Prime the window base: the first real window deltas against "now",
  // not against process start.
  probe.sample();
  ts.sample(obs::now_ns());

  std::atomic<bool> done{false};
  std::thread runner([&] {
    out.report = service.run(fleet);
    done.store(true, std::memory_order_release);
  });

  const std::vector<std::string>& devices = guest::workload_names();
  size_t republish_next = 0;
  auto close_window = [&] {
    probe.sample();
    const obs::WindowSample& w = ts.sample(obs::now_ns());
    g_window.store(w.index, std::memory_order_relaxed);
    flight.set_epoch(w.index);
    const std::vector<obs::SloVerdict> verdicts = slo.evaluate(w);
    // Publish the window context the flight recorder embeds in bundles.
    std::ostringstream ctx;
    ctx << "{\"window\": " << w.index << ", \"t_end_ns\": " << w.t_end_ns
        << ", \"verdicts\": [";
    bool first = true;
    for (const obs::SloVerdict& v : verdicts) {
      ctx << (first ? "" : ", ") << "{\"slo\": \"" << obs::json_escape(v.slo)
          << "\", \"value\": " << v.value
          << ", \"violating\": " << (v.violating ? "true" : "false")
          << ", \"breach\": " << (v.breach ? "true" : "false") << "}";
      first = false;
    }
    ctx << "]}";
    {
      std::lock_guard<std::mutex> lock(ctx_mu);
      ctx_json = ctx.str();
    }
    // An SLO breach is an incident: freeze a bundle carrying the breaching
    // window (dedup keeps a sustained breach at one bundle per window).
    for (const obs::SloVerdict& v : verdicts) {
      if (v.breach) {
        flight.dump(obs::FlightTrigger::kSloBreach, 0, v.slo);
      }
    }
    ++out.windows;
    // Live redeploy: republish the current spec for one device (version
    // bump, same CFG); shards swap checkers at their next poll boundary.
    if (live_republish && p.republish_every_windows > 0 &&
        out.windows % p.republish_every_windows == 0) {
      const std::string& dev = devices[republish_next++ % devices.size()];
      store.publish(store.current(dev)->cfg);
      ++out.redeploys_published;
    }
  };

  while (!done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(p.sample_interval_ms));
    close_window();
  }
  runner.join();
  close_window();  // tail window: whatever landed after the last tick

  out.breaches = slo.breaches();
  out.violating_windows = slo.violating_windows();
  if (bursts_armed != nullptr) {
    out.bursts_armed = bursts_armed->load(std::memory_order_relaxed);
  }
  return out;
}

double series_median(std::vector<double> v) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

bool write_soak_json(const SoakParams& p, const PhaseResult& benign,
                     const PhaseResult& breach,
                     const obs::TimeSeries& benign_ts,
                     const obs::FlightRecorder& flight,
                     const obs::MemoryProbe& probe) {
  // Per-window series over the benign phase (window 0 is the priming
  // sample and carries no traffic; it is skipped).
  std::vector<double> p50, p99, p999, rounds, rss;
  for (size_t i = 0; i < benign_ts.size(); ++i) {
    const obs::WindowSample& w = benign_ts.window(i);
    if (w.index == 0) {
      continue;
    }
    const std::optional<obs::WindowHistogram> lat =
        w.merged_histogram("checker_check_latency_ns");
    p50.push_back(lat ? static_cast<double>(lat->p50) : 0.0);
    p99.push_back(lat ? static_cast<double>(lat->p99) : 0.0);
    p999.push_back(lat ? static_cast<double>(lat->p999) : 0.0);
    rounds.push_back(lat ? static_cast<double>(lat->count) : 0.0);
    const obs::WindowGauge* g = w.find_gauge("rss_bytes", "");
    rss.push_back(g != nullptr ? static_cast<double>(g->value) : 0.0);
  }

  std::map<std::string, double> metrics;
  metrics["soak_total_ops"] = static_cast<double>(
      benign.report.total_ops + breach.report.total_ops);
  metrics["soak_benign_ops"] = static_cast<double>(benign.report.total_ops);
  metrics["soak_shards"] = static_cast<double>(p.shards);
  metrics["soak_windows_benign"] = static_cast<double>(benign.windows);
  metrics["check_latency_p99_ns_max"] =
      p99.empty() ? 0.0 : *std::max_element(p99.begin(), p99.end());
  metrics["check_latency_p99_ns_median"] = series_median(p99);
  metrics["check_latency_p999_ns_max"] =
      p999.empty() ? 0.0 : *std::max_element(p999.begin(), p999.end());
  metrics["report_dropped_total"] =
      static_cast<double>(benign.report.reports_dropped +
                          breach.report.reports_dropped);
  metrics["slo_breaches_benign"] = static_cast<double>(benign.breaches);
  metrics["slo_breaches_induced"] = static_cast<double>(breach.breaches);
  metrics["live_redeploys_published"] =
      static_cast<double>(benign.redeploys_published);
  metrics["checker_redeploys_total"] = static_cast<double>(
      benign.report.total_redeploys + breach.report.total_redeploys);
  metrics["fault_bursts_armed"] = static_cast<double>(benign.bursts_armed);
  metrics["contained_faults_total"] = static_cast<double>(
      benign.report.fleet.contained_faults +
      benign.report.fleet.fail_closed_faults +
      benign.report.fleet.fail_open_faults);
  metrics["flight_bundles_total"] = static_cast<double>(flight.dumps());
  metrics["rss_peak_bytes"] = static_cast<double>(probe.rss_peak_bytes());

  std::FILE* f = std::fopen("BENCH_soak.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_soak: cannot write BENCH_soak.json\n");
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"soak\",\n  \"mode\": \"%s\",\n",
               p.smoke ? "smoke" : "full");
  std::fprintf(f, "  \"metrics\": {");
  bool first = true;
  for (const auto& [name, value] : metrics) {
    std::fprintf(f, "%s\n    \"%s\": %.17g", first ? "" : ",", name.c_str(),
                 value);
    first = false;
  }
  std::fprintf(f, "\n  },\n  \"series\": {");
  auto emit_series = [&](const char* name, const std::vector<double>& v,
                         bool last) {
    std::fprintf(f, "\n    \"%s\": [", name);
    for (size_t i = 0; i < v.size(); ++i) {
      std::fprintf(f, "%s%.17g", i == 0 ? "" : ", ", v[i]);
    }
    std::fprintf(f, "]%s", last ? "" : ",");
  };
  emit_series("check_latency_p50_ns", p50, false);
  emit_series("check_latency_p99_ns", p99, false);
  emit_series("check_latency_p999_ns", p999, false);
  emit_series("rounds_per_window", rounds, false);
  emit_series("rss_bytes", rss, true);
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench_report] wrote BENCH_soak.json (%zu metrics, "
               "5 series x %zu windows)\n", metrics.size(), p99.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  const SoakParams p = params_for(smoke);
  set_log_level(LogLevel::kWarn);
  obs::set_timing_enabled(true);

  bench_report::title(smoke ? "Long-haul soak (smoke)" : "Long-haul soak");

  spec::SpecStore store;
  enforce::publish_device_specs(store, guest::workload_names());

  obs::FlightConfig fcfg;
  fcfg.shard_ring_capacity = 256;
  fcfg.max_bundles = 32;
  obs::FlightRecorder flight(p.shards, fcfg);
  std::mutex ctx_mu;
  std::string ctx_json;
  flight.set_context_provider([&ctx_mu, &ctx_json] {
    std::lock_guard<std::mutex> lock(ctx_mu);
    return ctx_json;
  });

  obs::MemoryProbe probe(obs::metrics());
  obs::TimeSeriesConfig tscfg;
  tscfg.window_capacity = 4096;  // retain the full soak for the export
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "bench_soak: FAIL %s\n", what);
      ++failures;
    }
  };

  // Phase 1: benign mixed traffic + live redeploys + contained fault
  // bursts. Zero SLO breaches expected.
  const std::vector<std::string>& devices = guest::workload_names();
  std::vector<enforce::ShardSpec> fleet(p.shards);
  std::vector<HookState> hooks(p.shards);
  std::atomic<uint64_t> bursts_armed{0};
  // Windows 2, 6, 10, ... carry two internal checker faults each. The
  // burst kind is pinned to kThrow: a thrown traversal fault is contained
  // at the proxy boundary and (under fail-open) healed by a full shadow
  // resync, so benign traffic stays violation-free. Shadow-corruption
  // bursts would make the checker itself flag false violations, and
  // fail-closed containment quarantine-resets the device mid-protocol —
  // both poison the zero-violation objective by design, so they stay in
  // the fault campaign (tests/faultinject) rather than the benign soak.
  const faultinject::BurstSchedule bursts(2, 4, 2, /*seed=*/0x50a4);
  for (size_t i = 0; i < p.shards; ++i) {
    fleet[i].device = devices[i % devices.size()];
    fleet[i].ops = p.ops_per_shard;
    fleet[i].seed = 7000 + i;
    // Sequential common ops: the trained-spec-clean traffic class (random
    // interaction order has a nonzero false-positive expectation — see
    // bench_table2 — which would poison the zero-violation SLO). The mix
    // comes from five device types and per-shard seeds.
    fleet[i].mode = guest::InteractionMode::kSequential;
    // Fail-open containment: a contained fault degrades one round and
    // self-heals (resync), instead of quarantine-resetting the device out
    // from under the in-flight driver protocol.
    fleet[i].checker.failure_policy = checker::FailurePolicy::kFailOpen;
    HookState* st = &hooks[i];
    fleet[i].checker_hook = [st, &bursts, &bursts_armed](
                                uint64_t, checker::EsChecker& active) {
      const uint64_t w = g_window.load(std::memory_order_relaxed);
      if (st->window == w && st->armed == &active) {
        return;  // nothing changed since the last poll boundary
      }
      st->window = w;
      st->armed = &active;
      faultinject::disarm_checker_faults(active);
      faultinject::BurstSchedule::Burst b;
      if (bursts.at(w, b)) {
        faultinject::arm_checker_faults(
            active, faultinject::CheckerFaultKind::kThrow, b.count, b.seed);
        bursts_armed.fetch_add(1, std::memory_order_relaxed);
      }
    };
  }

  obs::TimeSeries benign_ts(&obs::metrics(), tscfg);
  obs::SloEngine benign_slo = make_slo_engine(p);
  g_window.store(0, std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  PhaseResult benign =
      run_phase(p, store, fleet, flight, probe, benign_ts, benign_slo,
                ctx_mu, ctx_json, /*live_republish=*/true, &bursts_armed);
  const double benign_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  expect(benign.report.ok(), "benign phase: every shard finished clean");
  expect(benign.report.total_ops == p.shards * p.ops_per_shard,
         "benign phase: drove the full op budget");
  expect(benign.breaches == 0, "benign phase: zero SLO breaches");
  expect(benign.report.reports_dropped == 0, "benign phase: zero report loss");
  const uint64_t benign_violations =
      benign.report.fleet.violations_by_strategy[0] +
      benign.report.fleet.violations_by_strategy[1] +
      benign.report.fleet.violations_by_strategy[2];
  expect(benign_violations == 0,
         "benign phase: zero violations on the benign mix");
  expect(benign.redeploys_published >= 1,
         "benign phase: live redeploys were exercised");
  // Republishes late in the phase can land after a shard's last poll, so
  // pickup is >= 1, not >= published.
  expect(benign.report.total_redeploys >= 1,
         "benign phase: shards picked republished specs up mid-soak");

  std::printf("benign: %llu ops / %zu shards in %.1fs, %llu windows, "
              "%llu redeploys, %llu bursts armed, %llu contained faults, "
              "%llu breaches\n",
              static_cast<unsigned long long>(benign.report.total_ops),
              p.shards, benign_secs,
              static_cast<unsigned long long>(benign.windows),
              static_cast<unsigned long long>(benign.report.total_redeploys),
              static_cast<unsigned long long>(benign.bursts_armed),
              static_cast<unsigned long long>(
                  benign.report.fleet.contained_faults),
              static_cast<unsigned long long>(benign.breaches));

  // Phase 2: induced latency regression. The busy-spin rides the checker's
  // internal-fault seam, which runs inside the timed check region — the
  // windowed p99 must blow the objective and the burn-rate engine must
  // breach, freezing a flight bundle.
  std::vector<enforce::ShardSpec> breach_fleet(p.breach_shards);
  std::vector<HookState> breach_hooks(p.breach_shards);
  for (size_t i = 0; i < p.breach_shards; ++i) {
    breach_fleet[i].device = devices[i % devices.size()];
    breach_fleet[i].ops = p.breach_ops_per_shard;
    breach_fleet[i].seed = 9000 + i;
    HookState* st = &breach_hooks[i];
    const uint64_t spin_ns = p.spin_ns;
    const uint64_t spin_stride = p.spin_stride;
    breach_fleet[i].checker_hook = [st, spin_ns, spin_stride](
                                       uint64_t, checker::EsChecker& active) {
      if (st->armed == &active) {
        return;
      }
      st->armed = &active;
      // Spin on a stride of checked rounds, not every round: devices run
      // hundreds of rounds per guest op, so an every-round 4 ms stall
      // stretches the phase to minutes. 1-in-N still lands >1% of rounds
      // far past the p99 objective. All flags false: pure latency, no
      // injected checker fault.
      active.set_fault_hook(
          [spin_ns, spin_stride, n = uint64_t{0}](StateArena&) mutable {
            if (++n % spin_stride == 0) {
              const auto spin_until = std::chrono::steady_clock::now() +
                                      std::chrono::nanoseconds(spin_ns);
              while (std::chrono::steady_clock::now() < spin_until) {
              }
            }
            return checker::EsChecker::InternalFault{};
          });
    };
  }

  obs::TimeSeries breach_ts(&obs::metrics(), tscfg);
  obs::SloEngine breach_slo = make_slo_engine(p);
  PhaseResult breach =
      run_phase(p, store, breach_fleet, flight, probe, breach_ts, breach_slo,
                ctx_mu, ctx_json, /*live_republish=*/false, nullptr);

  expect(breach.report.ok(), "breach phase: every shard finished clean");
  expect(breach.breaches >= 1,
         "breach phase: latency fault burst breached the p99 SLO");

  // The breach must have frozen a self-contained flight bundle whose JSON
  // parses back and carries the breaching window's context.
  bool bundle_ok = false;
  for (const obs::FlightBundle& b : flight.bundles()) {
    if (b.trigger != obs::FlightTrigger::kSloBreach) {
      continue;
    }
    try {
      const obs::JsonValue doc = obs::json_parse(b.to_json());
      const obs::JsonValue* ctx = doc.find("context");
      const obs::JsonValue* met = doc.find("metrics");
      bundle_ok = ctx != nullptr && ctx->is_object() &&
                  ctx->find("verdicts") != nullptr && met != nullptr &&
                  met->is_object() && met->find("histograms") != nullptr;
    } catch (const DecodeError&) {
      bundle_ok = false;
    }
    if (bundle_ok) {
      break;
    }
  }
  expect(bundle_ok,
         "breach phase: SLO-breach flight bundle parses back with window "
         "context and metrics");

  std::printf("breach: %llu ops, %llu windows, %llu breaches, "
              "%llu flight bundles (%llu suppressed)\n",
              static_cast<unsigned long long>(breach.report.total_ops),
              static_cast<unsigned long long>(breach.windows),
              static_cast<unsigned long long>(breach.breaches),
              static_cast<unsigned long long>(flight.dumps()),
              static_cast<unsigned long long>(flight.suppressed()));

  write_soak_json(p, benign, breach, benign_ts, flight, probe);

  if (failures != 0) {
    std::fprintf(stderr, "bench_soak: %d assertion(s) failed\n", failures);
    return 1;
  }
  std::printf("\nsoak verdict: clean (%s mode)\n", smoke ? "smoke" : "full");
  return 0;
}
