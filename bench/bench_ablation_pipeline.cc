// Ablation B: offline pipeline costs and the effect of control-flow
// reduction (DESIGN.md design choice #3/#5).
//
// - trace decode throughput (IPT-style packet stream -> event stream)
// - ITC-CFG construction throughput
// - ES-CFG construction (Algorithm 1 + reduction) per device
// - reduction statistics: blocks before/after, merged conditionals,
//   spliced blocks, serialized spec size
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cfg/itc_cfg.h"
#include "gbench_json.h"
#include "guest/workload.h"
#include "sedspec/pipeline.h"
#include "spec/builder.h"
#include "spec/serial.h"
#include "trace/encoder.h"

namespace {

using namespace sedspec;

std::vector<uint8_t> synthetic_packets(size_t rounds) {
  trace::PacketEncoder encoder;
  Rng rng(5);
  for (size_t r = 0; r < rounds; ++r) {
    encoder.pge(0x400000);
    const int blocks = static_cast<int>(rng.range(3, 12));
    for (int b = 0; b < blocks; ++b) {
      encoder.tip(0x400000 + 16 * rng.below(64));
      if (rng.chance(0.5)) {
        encoder.tnt(rng.chance(0.5));
      }
    }
    encoder.pgd();
  }
  return encoder.finish();
}

void BM_TraceDecode(benchmark::State& state) {
  const auto packets = synthetic_packets(1000);
  for (auto _ : state) {
    auto events = trace::decode(packets);
    benchmark::DoNotOptimize(events);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packets.size()));
}
BENCHMARK(BM_TraceDecode)->Unit(benchmark::kMicrosecond)->MinTime(0.05);

void BM_ItcCfgBuild(benchmark::State& state) {
  const auto events = trace::decode(synthetic_packets(1000));
  for (auto _ : state) {
    cfg::ItcCfgBuilder builder;
    builder.feed_all(events);
    auto graph = builder.take();
    benchmark::DoNotOptimize(graph);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_ItcCfgBuild)->Unit(benchmark::kMicrosecond)->MinTime(0.05);

void BM_EsCfgConstruction(benchmark::State& state,
                          const std::string& device) {
  auto wl = guest::make_workload(device);
  const pipeline::CollectionResult collected =
      pipeline::collect(wl->device(), [&] { wl->training(); });
  for (auto _ : state) {
    spec::EsCfg cfg = pipeline::construct(wl->device(), collected);
    benchmark::DoNotOptimize(cfg);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(collected.log.round_count()));
}

void print_reduction_stats(bench_report::MetricSink& sink) {
  std::printf(
      "\nControl-flow reduction / spec size per device.\n"
      "Reduction part 1 (paper §IV-A/§V-C) happens at collection time: only\n"
      "observation-plan sites enter the log, so 'sites' -> 'blocks' is the\n"
      "filtering reduction; 'merged'/'spliced' count the part-2 rewrites.\n");
  std::printf("%-10s %8s %8s %8s %8s %8s %10s %8s\n", "device", "sites",
              "blocks", "filtered", "merged", "spliced", "specbytes",
              "rounds");
  for (const std::string& device : guest::workload_names()) {
    auto wl = guest::make_workload(device);
    spec::EsCfg cfg =
        pipeline::build_spec(wl->device(), [&] { wl->training(); });
    const size_t sites = wl->device().program().site_count();
    const size_t spec_bytes = spec::serialize(cfg).size();
    std::printf("%-10s %8zu %8zu %8zu %8llu %8llu %10zu %8llu\n",
                device.c_str(), sites, cfg.blocks.size(),
                sites - cfg.blocks.size(),
                (unsigned long long)cfg.merged_conditionals,
                (unsigned long long)cfg.spliced_blocks, spec_bytes,
                (unsigned long long)cfg.trained_rounds);
    sink.put("reduction/" + device + "/blocks",
             static_cast<double>(cfg.blocks.size()));
    sink.put("reduction/" + device + "/filtered",
             static_cast<double>(sites - cfg.blocks.size()));
    sink.put("reduction/" + device + "/spec_bytes",
             static_cast<double>(spec_bytes));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& device : guest::workload_names()) {
    const std::string name = "BM_EsCfgConstruction/" + device;
    benchmark::RegisterBenchmark(name.c_str(),
                                 [device](benchmark::State& state) {
                                   BM_EsCfgConstruction(state, device);
                                 })
        ->Unit(benchmark::kMicrosecond)
        ->MinTime(0.05);
  }
  bench_report::MetricSink sink("ablation_pipeline");
  const bool format_overridden =
      bench_report::format_flag_present(argc, argv);
  benchmark::Initialize(&argc, argv);
  bench_report::run_with_capture(format_overridden, &sink);
  print_reduction_stats(sink);
  benchmark::Shutdown();
  sink.write_json();
  return 0;
}
