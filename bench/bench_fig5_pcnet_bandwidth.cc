// Figure 5 reproduction: PCNet bandwidth benchmark + ping latency.
//
// iperf-style TCP/UDP frame streams in both directions through the PCNet
// device, without and with SEDSpec; the paper reports bandwidth reductions
// of 6.9% / 7.3% / 5.7% / 6.6% (TCP up / TCP down / UDP up / UDP down) and
// a ping RTT increase of 9.2% (0.65 ms -> 0.71 ms). The RTT the guest
// observes is dominated by its own network stack and NAT, which SEDSpec
// never touches — we add that fixed component (0.6 ms) to the measured
// device-path echo cost so the reported ratio is comparable.
#include <cstdio>

#include "benchsim/perf.h"
#include "common/log.h"
#include "report.h"

int main() {
  using namespace sedspec;
  set_log_level(LogLevel::kError);
  bench_report::title("Figure 5 — PCNet bandwidth benchmark");
  bench_report::MetricSink sink("fig5_pcnet_bandwidth");

  const int kFrames = 4000;
  const auto base = benchsim::measure_pcnet_bandwidth(false, kFrames);
  const auto sed = benchsim::measure_pcnet_bandwidth(true, kFrames);

  auto row = [&sink](const char* label, double b, double s,
                     double paper_loss) {
    std::printf("%-16s | %10.1f %10.1f | %9.1f%% | %9.1f%%\n", label, b, s,
                (1.0 - s / b) * 100.0, paper_loss);
    sink.put(std::string(label) + "/sed_mbps", s);
    sink.put(std::string(label) + "/loss_percent", (1.0 - s / b) * 100.0);
  };
  std::printf("%-16s | %10s %10s | %10s | %10s\n", "Stream", "base Mb/s",
              "sed Mb/s", "loss", "paper");
  bench_report::rule(66);
  row("TCP upstream", base.tcp_up_mbps, sed.tcp_up_mbps, 6.9);
  row("TCP downstream", base.tcp_down_mbps, sed.tcp_down_mbps, 7.3);
  row("UDP upstream", base.udp_up_mbps, sed.udp_up_mbps, 5.7);
  row("UDP downstream", base.udp_down_mbps, sed.udp_down_mbps, 6.6);
  bench_report::rule(66);

  bench_report::title("Figure 5 (cont.) — ping latency (100 echoes)");
  const double base_ms = benchsim::measure_pcnet_ping(false, 100);
  const double sed_ms = benchsim::measure_pcnet_ping(true, 100);
  std::printf("device-path RTT: %.4f ms   with SEDSpec: %.4f ms   overhead: "
              "%.1f%% (paper: 0.650 -> 0.710 ms, 9.2%%)\n",
              base_ms, sed_ms, (sed_ms / base_ms - 1.0) * 100.0);
  std::printf(
      "(absolute RTTs differ — the paper's RTT includes the guest network\n"
      "stack — but the ratio shows the checker's relative device-path "
      "cost)\n");
  std::printf(
      "\nShape check: upstream/downstream and TCP/UDP losses stay in the\n"
      "single-digit percent range; ping overhead stays near 10%%.\n");
  sink.put("ping/base_ms", base_ms);
  sink.put("ping/sed_ms", sed_ms);
  sink.put("ping/overhead_percent", (sed_ms / base_ms - 1.0) * 100.0);
  sink.write_json();
  return 0;
}
