file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_param_selection.dir/bench_table1_param_selection.cc.o"
  "CMakeFiles/bench_table1_param_selection.dir/bench_table1_param_selection.cc.o.d"
  "bench_table1_param_selection"
  "bench_table1_param_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_param_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
