// Control-structure layout.
//
// Every emulated device has a control structure (paper §III-C: FDCtrl,
// USBDevice, PCNetState, ...). A StateLayout describes that structure as a
// flat byte arena: each field has a byte offset, a size, a declared integer
// type, and a *kind* used by the CFG analyzer's selection rules (paper
// Table I / §IV-B):
//   kRegister — mirrors a physical device register           (Rule 1)
//   kBuffer   — fixed-length data buffer                     (Rule 2)
//   kLength   — counts valid data in a buffer                (Rule 2)
//   kIndex    — indexes into a buffer                        (Rule 2)
//   kFuncPtr  — function pointer (interrupt callback, ...)   (Rule 2)
//   kFlag     — internal mode/phase flag (not auto-selected)
//   kOther    — anything else
//
// The layout is shared between the live device (its arena IS the control
// structure, so an out-of-bounds buffer write corrupts adjacent fields
// exactly as in the real struct) and the ES-Checker's shadow device state.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "expr/ids.h"
#include "expr/type.h"

namespace sedspec {

enum class FieldKind : uint8_t {
  kRegister,
  kBuffer,
  kLength,
  kIndex,
  kFuncPtr,
  kFlag,
  kOther,
};

[[nodiscard]] std::string field_kind_name(FieldKind k);

struct FieldDesc {
  std::string name;
  FieldKind kind = FieldKind::kOther;
  IntType type = IntType::kU8;  // scalar type, or buffer element type
  uint32_t offset = 0;          // byte offset within the arena
  uint32_t size = 0;            // total bytes
  uint32_t elem_size = 0;       // buffers: bytes per element
  uint32_t count = 0;           // buffers: element count

  [[nodiscard]] bool is_buffer() const { return kind == FieldKind::kBuffer; }
};

class StateLayout {
 public:
  explicit StateLayout(std::string struct_name)
      : struct_name_(std::move(struct_name)) {}

  /// Appends a scalar field; returns its ParamId. Fields are laid out in
  /// declaration order with natural alignment, mirroring a C struct.
  ParamId add_scalar(std::string name, FieldKind kind, IntType type);

  /// Appends a fixed-length buffer of `count` elements of `elem_size` bytes.
  ParamId add_buffer(std::string name, uint32_t elem_size, uint32_t count);

  /// Appends a function-pointer field (8 bytes, kind kFuncPtr).
  ParamId add_funcptr(std::string name);

  [[nodiscard]] const FieldDesc& field(ParamId id) const;
  [[nodiscard]] size_t field_count() const { return fields_.size(); }
  [[nodiscard]] uint32_t arena_size() const { return arena_size_; }
  [[nodiscard]] const std::string& struct_name() const { return struct_name_; }

  [[nodiscard]] std::optional<ParamId> find(const std::string& name) const;

  /// The field whose byte range contains `offset`, if any. Used to report
  /// which neighbor an out-of-bounds write corrupted.
  [[nodiscard]] std::optional<ParamId> field_at_offset(uint32_t offset) const;

 private:
  ParamId append(FieldDesc desc, uint32_t align);

  std::string struct_name_;
  std::vector<FieldDesc> fields_;
  uint32_t arena_size_ = 0;
};

}  // namespace sedspec
