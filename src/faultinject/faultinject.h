// Deterministic fault-injection harness (robustness layer).
//
// SEDSpec inserts itself into the I/O fast path of a VMM, so its own
// failure behavior is part of the attack surface: a corrupt specification,
// a lossy trace transport, a failing DMA transfer, or a bug inside the
// checker must degrade the deployment predictably (see FailurePolicy in
// checker/checker.h), never crash the hypervisor or silently disable
// protection. This module injects faults at the four seams where those
// failures enter:
//
//   Layer kSpec    — serialized-specification persistence: bit flips,
//                    truncations, version skew, and resealed payload
//                    garbling (corruption under a valid CRC, exercising
//                    the structural decoder rather than the envelope).
//   Layer kTrace   — trace collection transport: dropped, duplicated, and
//                    garbled IPT-style packets between the tracer and the
//                    ITC-CFG builder (pipeline::CollectOptions::packet_tap).
//   Layer kDma     — guest-RAM transfers: failed or short DMA reads/writes
//                    (DmaEngine::set_fault_hook).
//   Layer kChecker — checker-internal malfunction: forced traversal
//                    exceptions, mid-round shadow-state corruption, and
//                    suppressed termination logic (EsChecker::set_fault_hook).
//
// Everything is seed-driven: the same seed reproduces the same fault
// sequence bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "checker/checker.h"
#include "common/rng.h"
#include "vdev/device.h"

namespace sedspec::faultinject {

enum class Layer : uint8_t {
  kSpec = 0,
  kTrace = 1,
  kDma = 2,
  kChecker = 3,
  kControl = 4,  // control-plane rollout machinery (control/campaign.h)
};
inline constexpr size_t kLayerCount = 5;

[[nodiscard]] std::string layer_name(Layer layer);

// Layer kSpec ---------------------------------------------------------------

enum class SpecFaultKind : uint8_t {
  kBitFlip = 0,       // flip one random bit anywhere in the artifact
  kTruncate = 1,      // cut the artifact at a random length
  kVersionSkew = 2,   // rewrite the envelope's format-version field
  kPayloadGarble = 3, // corrupt payload bytes, then reseal length + CRC
};
inline constexpr size_t kSpecFaultKinds = 4;

/// Mutates a serialized spec in place; returns a description of the fault.
std::string corrupt_spec(std::vector<uint8_t>& bytes, SpecFaultKind kind,
                         Rng& rng);

// Layer kTrace --------------------------------------------------------------

enum class TraceFaultKind : uint8_t {
  kDropPacket = 0,
  kDuplicatePacket = 1,
  kGarbleByte = 2,
};
inline constexpr size_t kTraceFaultKinds = 3;

/// Applies `count` faults of `kind` at packet granularity (the buffer is
/// scanned for packet boundaries using the wire format in trace/packets.h).
/// Returns the number of faults actually applied (0 on an empty buffer).
size_t corrupt_packets(std::vector<uint8_t>& bytes, TraceFaultKind kind,
                       size_t count, Rng& rng);

// Layer kDma ----------------------------------------------------------------

enum class DmaFaultKind : uint8_t {
  kFailTransfer = 0,   // the transfer fails outright (guest page fault model)
  kShortTransfer = 1,  // only a random prefix completes; reads zero-fill
};
inline constexpr size_t kDmaFaultKinds = 2;

/// Arms `count` one-shot faults of `kind` on the device's DMA engine (each
/// subsequent transfer consumes one). Returns false if the device has no
/// DMA engine (PIO/MMIO-only devices).
bool arm_dma_faults(Device& device, DmaFaultKind kind, size_t count,
                    uint64_t seed);
void disarm_dma_faults(Device& device);

// Layer kChecker ------------------------------------------------------------

enum class CheckerFaultKind : uint8_t {
  kThrow = 0,          // forced exception mid-traversal
  kShadowCorrupt = 1,  // random scalar shadow field overwritten mid-round
  kRunaway = 2,        // termination checks suppressed; only the watchdog
                       // can end the round
};
inline constexpr size_t kCheckerFaultKinds = 3;

/// Arms `count` one-shot internal faults (each checked round consumes one).
void arm_checker_faults(checker::EsChecker& checker, CheckerFaultKind kind,
                        size_t count, uint64_t seed);
void disarm_checker_faults(checker::EsChecker& checker);

/// Deterministic window → checker-fault-burst mapping for long-haul soaks
/// (bench/bench_soak.cc). Windows `first, first + period, first + 2*period,
/// ...` carry a burst; the fault kind cycles through kCheckerFaultKinds so
/// a soak exercises every internal-fault path, and the per-burst RNG seed
/// is derived from (seed, window) so the same (schedule, window) always
/// reproduces the same faults regardless of evaluation order.
class BurstSchedule {
 public:
  struct Burst {
    CheckerFaultKind kind = CheckerFaultKind::kThrow;
    size_t count = 0;
    uint64_t seed = 0;
  };

  BurstSchedule(uint64_t first_window, uint64_t period,
                size_t faults_per_burst, uint64_t seed)
      : first_(first_window),
        period_(period == 0 ? 1 : period),
        faults_(faults_per_burst),
        seed_(seed) {}

  /// Burst scheduled for `window`, if any. Pure function of the ctor args.
  [[nodiscard]] bool at(uint64_t window, Burst& out) const {
    if (window < first_ || (window - first_) % period_ != 0 || faults_ == 0) {
      return false;
    }
    const uint64_t index = (window - first_) / period_;
    out.kind = static_cast<CheckerFaultKind>(index % kCheckerFaultKinds);
    out.count = faults_;
    // splitmix-style stir so adjacent windows get unrelated fault RNGs.
    uint64_t s = seed_ ^ (window * 0x9e3779b97f4a7c15ULL);
    s ^= s >> 30;
    s *= 0xbf58476d1ce4e5b9ULL;
    out.seed = s;
    return true;
  }

  /// Arms this window's burst on `checker` (no-op when the window carries
  /// none). Returns true when a burst was armed.
  bool arm(uint64_t window, checker::EsChecker& checker) const {
    Burst b;
    if (!at(window, b)) {
      return false;
    }
    arm_checker_faults(checker, b.kind, b.count, b.seed);
    return true;
  }

 private:
  uint64_t first_;
  uint64_t period_;
  size_t faults_;
  uint64_t seed_;
};

// Layer kControl ------------------------------------------------------------
//
// Faults against the rollout control plane (control/control_plane.h). These
// are injected through the plane's dedicated seams — candidate staging,
// the spec-distribution fetcher, shard op hooks, the observation filter,
// and the persisted-record journal — by control::run_control_campaign
// (control/campaign.h), which owns the end-to-end accounting.

enum class ControlFaultKind : uint8_t {
  kCorruptCandidate = 0,  // corrupt the serialized candidate before staging
  kFetchOutage = 1,       // spec-distribution channel hard-down (LoadError
                          // on every fetch; retries must exhaust safely)
  kFetchTransient = 2,    // a few fetch failures, then healthy (bounded
                          // retry/backoff must absorb without a rollback)
  kShardCrash = 3,        // canary shard thread dies mid-window
  kMetricDelay = 4,       // observation feed delayed/blinded for N windows
  kRecordCorrupt = 5,     // persisted rollout record damaged, then resumed
  kCrashPromoting = 6,    // control plane killed mid-Promoting, then resumed
};
inline constexpr size_t kControlFaultKinds = 7;

[[nodiscard]] std::string control_fault_name(ControlFaultKind kind);

}  // namespace sedspec::faultinject
