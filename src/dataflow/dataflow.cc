#include "dataflow/dataflow.h"

#include <vector>

#include "common/log.h"

namespace sedspec::dataflow {

namespace {

using sedspec::Expr;
using sedspec::ExprKind;
using sedspec::Stmt;
using sedspec::StmtKind;

constexpr int kMaxInlineDepth = 8;

/// Collects every distinct defining RHS per local across the program.
std::map<LocalId, std::vector<ExprRef>> collect_defs(
    const DeviceProgram& program) {
  std::map<LocalId, std::vector<ExprRef>> defs;
  for (size_t i = 0; i < program.site_count(); ++i) {
    const auto& site = program.site(static_cast<SiteId>(i));
    for (const Stmt& s : site.dsod) {
      if (s.kind == StmtKind::kAssignLocal) {
        defs[s.local].push_back(s.value);
      }
    }
  }
  return defs;
}

void collect_locals(const ExprRef& e, std::set<LocalId>* out) {
  if (e == nullptr) {
    return;
  }
  sedspec::visit(*e, [&](const Expr& n) {
    if (n.kind == ExprKind::kLocal) {
      out->insert(n.local);
    }
  });
}

/// Structural equality of expressions (for merging identical definitions
/// reaching from different sites).
bool equal(const ExprRef& a, const ExprRef& b) {
  if (a == b) {
    return true;
  }
  if (a == nullptr || b == nullptr) {
    return false;
  }
  if (a->kind != b->kind || a->type != b->type) {
    return false;
  }
  switch (a->kind) {
    case ExprKind::kConst:
      return a->const_value == b->const_value;
    case ExprKind::kParam:
      return a->param == b->param;
    case ExprKind::kLocal:
      return a->local == b->local;
    case ExprKind::kIoField:
      return a->io_field == b->io_field;
    case ExprKind::kBufLoad:
      return a->param == b->param && equal(a->lhs, b->lhs);
    case ExprKind::kUnary:
      return a->un_op == b->un_op && equal(a->lhs, b->lhs);
    case ExprKind::kBinary:
      return a->bin_op == b->bin_op && equal(a->lhs, b->lhs) &&
             equal(a->rhs, b->rhs);
    case ExprKind::kCast:
      return equal(a->lhs, b->lhs);
  }
  return false;
}

struct Analyzer {
  const DeviceProgram& program;
  std::map<LocalId, std::vector<ExprRef>> defs;
  RecoveryPlan plan;
  std::set<LocalId> in_progress;

  /// Resolves one local; records the result in the plan. Returns true if
  /// the local is computable.
  bool resolve(LocalId id, int depth) {
    if (plan.inline_defs.contains(id)) {
      return true;
    }
    if (plan.sync_points.contains(id)) {
      return false;
    }
    if (depth > kMaxInlineDepth || in_progress.contains(id)) {
      plan.sync_points.insert(id);
      return false;
    }
    auto it = defs.find(id);
    if (it == defs.end() || it->second.empty()) {
      // Natively set by the device (no DSOD definition): sync point.
      plan.sync_points.insert(id);
      return false;
    }
    // Multiple definitions are fine only if structurally identical
    // (a full path-sensitive analysis is what angr brings; identical-def
    // merging covers the patterns our devices exhibit and anything else is
    // conservatively a sync point).
    const ExprRef& first = it->second.front();
    for (const ExprRef& other : it->second) {
      if (!equal(first, other)) {
        plan.sync_points.insert(id);
        return false;
      }
    }
    // Every local the definition references must itself resolve.
    in_progress.insert(id);
    std::set<LocalId> nested;
    collect_locals(first, &nested);
    bool ok = true;
    for (LocalId dep : nested) {
      if (dep == id || !resolve(dep, depth + 1)) {
        ok = false;
        break;
      }
    }
    in_progress.erase(id);
    if (!ok) {
      plan.sync_points.insert(id);
      return false;
    }
    plan.inline_defs[id] = inline_expr(first);
    return true;
  }

  /// Substitutes already-resolved inline defs inside `e`.
  ExprRef inline_expr(const ExprRef& e) {
    if (e == nullptr) {
      return e;
    }
    if (e->kind == ExprKind::kLocal) {
      auto it = plan.inline_defs.find(e->local);
      if (it != plan.inline_defs.end()) {
        // Preserve the declared type of the use site via a cast when the
        // definition's type differs.
        if (it->second->type == e->type) {
          return it->second;
        }
        return sedspec::eb::cast(it->second, e->type);
      }
      return e;
    }
    ExprRef new_lhs = inline_expr(e->lhs);
    ExprRef new_rhs = inline_expr(e->rhs);
    if (new_lhs == e->lhs && new_rhs == e->rhs) {
      return e;
    }
    Expr copy = *e;
    copy.lhs = std::move(new_lhs);
    copy.rhs = std::move(new_rhs);
    return std::make_shared<const Expr>(std::move(copy));
  }
};

}  // namespace

RecoveryPlan analyze_dependencies(const DeviceProgram& program) {
  Analyzer a{program, collect_defs(program), {}, {}};

  // Every local referenced anywhere (guards, command expressions, DSOD).
  std::set<LocalId> referenced;
  for (size_t i = 0; i < program.site_count(); ++i) {
    const auto& site = program.site(static_cast<SiteId>(i));
    collect_locals(site.guard, &referenced);
    collect_locals(site.cmd_expr, &referenced);
    for (const Stmt& s : site.dsod) {
      collect_locals(s.value, &referenced);
      collect_locals(s.index, &referenced);
      collect_locals(s.count, &referenced);
    }
  }
  for (LocalId id : referenced) {
    a.resolve(id, 0);
  }
  log_info("dataflow") << program.device_name() << ": "
                       << a.plan.inline_defs.size() << " locals inlined, "
                       << a.plan.sync_points.size() << " sync points";
  return std::move(a.plan);
}

ExprRef rewrite(const ExprRef& expr, const RecoveryPlan& plan) {
  if (expr == nullptr) {
    return expr;
  }
  if (expr->kind == ExprKind::kLocal) {
    auto it = plan.inline_defs.find(expr->local);
    if (it != plan.inline_defs.end()) {
      if (it->second->type == expr->type) {
        return it->second;
      }
      return sedspec::eb::cast(it->second, expr->type);
    }
    return expr;
  }
  ExprRef new_lhs = rewrite(expr->lhs, plan);
  ExprRef new_rhs = rewrite(expr->rhs, plan);
  if (new_lhs == expr->lhs && new_rhs == expr->rhs) {
    return expr;
  }
  Expr copy = *expr;
  copy.lhs = std::move(new_lhs);
  copy.rhs = std::move(new_rhs);
  return std::make_shared<const Expr>(std::move(copy));
}

std::set<LocalId> referenced_locals(const ExprRef& expr) {
  std::set<LocalId> out;
  collect_locals(expr, &out);
  return out;
}

}  // namespace sedspec::dataflow
