// IPT-style trace packets.
//
// The paper collects device control flow with Intel Processor Trace
// (§IV-A). We reproduce the packet-level interface in software: the
// instrumented device emits PGE/PGD (trace on/off at I/O entry/exit), TIP
// (block entry / indirect target addresses) and TNT (conditional branch
// direction) packets. TNT bits are packed up to six per packet as in real
// IPT short-TNT encoding. The decoder recovers the exact event stream an
// IPT decoder would hand to FlowGuard's ITC-CFG construction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "expr/ids.h"

namespace sedspec::trace {

enum class EventKind : uint8_t {
  kPge = 1,  // packet generation enable: trace window opens (I/O entry)
  kPgd = 2,  // packet generation disable: window closes (I/O exit)
  kTip = 3,  // target instruction pointer: block entry or indirect target
  kTnt = 4,  // taken/not-taken conditional bit
};

struct TraceEvent {
  EventKind kind = EventKind::kTip;
  FuncAddr addr = 0;  // kPge / kTip
  bool taken = false;  // kTnt

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Address-range / privilege filter, mirroring the paper's IPT
/// configuration: "the IPT module calculates the range of the emulated
/// device code ... and sets it as the range of addresses that can be
/// collected"; "tracing of kernel space control flow is disabled".
struct TraceFilter {
  FuncAddr range_lo = 0;
  FuncAddr range_hi = ~FuncAddr{0};
  bool trace_kernel = false;

  static constexpr FuncAddr kKernelBase = 0xffff'8000'0000'0000ULL;

  [[nodiscard]] bool pass(FuncAddr addr) const {
    if (!trace_kernel && addr >= kKernelBase) {
      return false;
    }
    return addr >= range_lo && addr < range_hi;
  }
};

// Wire format (little-endian):
//   0x01 <u64 addr>       PGE
//   0x02                  PGD
//   0x03 <u64 addr>       TIP
//   0x04 <u8 header>      short TNT: header = (1 << (n)) | bits, n in [1,6]
//                         (stop-bit encoding: the highest set bit marks the
//                         end; lower bits are branch outcomes, LSB first)
inline constexpr uint8_t kOpPge = 0x01;
inline constexpr uint8_t kOpPgd = 0x02;
inline constexpr uint8_t kOpTip = 0x03;
inline constexpr uint8_t kOpTnt = 0x04;

/// Decodes a packet buffer into the event stream. Throws DecodeError on
/// malformed input (truncated buffer, unknown opcode, empty TNT header) —
/// a garbled trace is untrusted data, recoverable by the collection
/// pipeline, not a programming error.
std::vector<TraceEvent> decode(std::span<const uint8_t> bytes);

}  // namespace sedspec::trace
