#include "program/arena.h"

#include <algorithm>
#include <cstring>

#include "common/assert.h"

namespace sedspec {

std::string incident_kind_name(IncidentKind k) {
  switch (k) {
    case IncidentKind::kOobWrite:
      return "oob-write";
    case IncidentKind::kOobRead:
      return "oob-read";
    case IncidentKind::kStructEscape:
      return "struct-escape";
    case IncidentKind::kHijackedCall:
      return "hijacked-call";
    case IncidentKind::kUseAfterFree:
      return "use-after-free";
    case IncidentKind::kRunawayLoop:
      return "runaway-loop";
    case IncidentKind::kDivByZero:
      return "div-by-zero";
  }
  return "?";
}

StateArena::StateArena(const StateLayout* layout)
    : layout_(layout),
      bytes_(layout->arena_size(), 0),
      local_values_(256, 0),
      local_set_(256, false) {
  SEDSPEC_REQUIRE(layout != nullptr);
}

uint64_t StateArena::load_raw(uint32_t offset, uint32_t size) const {
  uint64_t v = 0;
  std::memcpy(&v, bytes_.data() + offset, size);  // little-endian host
  return v;
}

void StateArena::store_raw(uint32_t offset, uint32_t size, uint64_t raw) {
  std::memcpy(bytes_.data() + offset, &raw, size);
}

uint64_t StateArena::param(ParamId id) const {
  const FieldDesc& f = layout_->field(id);
  SEDSPEC_REQUIRE_MSG(!f.is_buffer(), "param() on buffer field " + f.name);
  return load_raw(f.offset, f.size);
}

void StateArena::set_param(ParamId id, uint64_t raw) {
  const FieldDesc& f = layout_->field(id);
  SEDSPEC_REQUIRE_MSG(!f.is_buffer(), "set_param() on buffer field " + f.name);
  store_raw(f.offset, f.size, truncate_to(f.type, raw));
}

StateArena::Resolved StateArena::resolve(ParamId id, uint64_t index,
                                         uint64_t count) const {
  const FieldDesc& f = layout_->field(id);
  SEDSPEC_REQUIRE_MSG(f.is_buffer(), "buffer access to scalar field " + f.name);
  Resolved r;
  const auto sindex = static_cast<int64_t>(index);
  const auto scount = static_cast<int64_t>(count);
  r.byte_offset = static_cast<int64_t>(f.offset) + sindex * f.elem_size;
  r.byte_len = count * f.elem_size;
  r.in_bounds = sindex >= 0 && scount >= 0 &&
                sindex <= static_cast<int64_t>(f.count) &&
                sindex + scount <= static_cast<int64_t>(f.count) &&
                (count == 0 || sindex < static_cast<int64_t>(f.count));
  r.in_arena = r.byte_offset >= 0 &&
               r.byte_offset + static_cast<int64_t>(r.byte_len) <=
                   static_cast<int64_t>(bytes_.size());
  return r;
}

void StateArena::report(IncidentKind kind, ParamId field, uint64_t detail,
                        const std::string& note) const {
  if (incident_fn_) {
    incident_fn_(Incident{kind, field, detail, note});
  }
}

uint64_t StateArena::buf_load(ParamId id, uint64_t index, EvalDiag* diag) {
  const FieldDesc& f = layout_->field(id);
  const Resolved r = resolve(id, index, 1);
  if (!r.in_bounds) {
    if (diag != nullptr) {
      diag->record(EvalDiag::Kind::kBufferOob);
      if (diag->kind == EvalDiag::Kind::kBufferOob &&
          diag->buffer == kInvalidParam) {
        diag->buffer = id;
        diag->index = index;
        diag->oob_is_write = false;
      }
    }
    report(r.in_arena ? IncidentKind::kOobRead : IncidentKind::kStructEscape,
           id, index, "load " + f.name);
    if (!r.in_arena) {
      return 0;  // escaped the structure: real QEMU reads foreign heap
    }
  }
  return load_raw(static_cast<uint32_t>(r.byte_offset), f.elem_size);
}

void StateArena::buf_store(ParamId id, uint64_t index, uint64_t raw,
                           EvalDiag* diag) {
  const FieldDesc& f = layout_->field(id);
  const Resolved r = resolve(id, index, 1);
  if (!r.in_bounds) {
    if (diag != nullptr) {
      diag->record(EvalDiag::Kind::kBufferOob);
      if (diag->kind == EvalDiag::Kind::kBufferOob &&
          diag->buffer == kInvalidParam) {
        diag->buffer = id;
        diag->index = index;
        diag->oob_is_write = true;
      }
    }
    report(r.in_arena ? IncidentKind::kOobWrite : IncidentKind::kStructEscape,
           id, index, "store " + f.name);
    if (!r.in_arena) {
      return;  // escaped the structure: dropped (real QEMU: heap corruption)
    }
  }
  // In-arena stores are applied even when out of the field's own bounds —
  // this is the adjacent-field corruption that exploits rely on.
  store_raw(static_cast<uint32_t>(r.byte_offset), f.elem_size,
            truncate_to(f.type, raw));
}

void StateArena::buf_fill(ParamId id, uint64_t index, uint64_t count,
                          EvalDiag* diag) {
  const FieldDesc& f = layout_->field(id);
  const Resolved r = resolve(id, index, count);
  if (!r.in_bounds) {
    if (diag != nullptr) {
      diag->record(EvalDiag::Kind::kBufferOob);
      if (diag->kind == EvalDiag::Kind::kBufferOob &&
          diag->buffer == kInvalidParam) {
        diag->buffer = id;
        diag->index = index + (count > 0 ? count - 1 : 0);
        diag->oob_is_write = true;
      }
    }
    report(r.in_arena ? IncidentKind::kOobWrite : IncidentKind::kStructEscape,
           id, index, "fill " + f.name);
  }
  // Only the bytes landing OUTSIDE the buffer field's own extent matter to
  // the simulation (they overlay adjacent fields — the corruption exploits
  // rely on); zero exactly those. In-bounds payload bytes are data, never
  // control, so the common benign case costs nothing here. The device side
  // overwrites the real region with actual data via fill_region() anyway.
  const Resolved clamped = r;
  int64_t begin = std::max<int64_t>(clamped.byte_offset, 0);
  int64_t end =
      std::min<int64_t>(clamped.byte_offset + static_cast<int64_t>(r.byte_len),
                        static_cast<int64_t>(bytes_.size()));
  if (begin >= end) {
    return;
  }
  const auto field_begin = static_cast<int64_t>(f.offset);
  const auto field_end = static_cast<int64_t>(f.offset) + f.size;
  if (begin < field_begin) {
    const int64_t n = std::min(end, field_begin) - begin;
    std::memset(bytes_.data() + begin, 0, static_cast<size_t>(n));
  }
  if (end > field_end) {
    const int64_t lo = std::max(begin, field_end);
    std::memset(bytes_.data() + lo, 0, static_cast<size_t>(end - lo));
  }
}

std::span<uint8_t> StateArena::fill_region(ParamId id, uint64_t index,
                                           uint64_t count) {
  const Resolved r = resolve(id, index, count);
  int64_t begin = r.byte_offset;
  int64_t end = r.byte_offset + static_cast<int64_t>(r.byte_len);
  begin = std::max<int64_t>(begin, 0);
  end = std::min<int64_t>(end, static_cast<int64_t>(bytes_.size()));
  if (begin >= end) {
    return {};
  }
  return {bytes_.data() + begin, static_cast<size_t>(end - begin)};
}

uint64_t StateArena::buf_peek(ParamId id, uint64_t index) const {
  const FieldDesc& f = layout_->field(id);
  const Resolved r = resolve(id, index, 1);
  if (!r.in_bounds || !r.in_arena) {
    return 0;
  }
  return load_raw(static_cast<uint32_t>(r.byte_offset), f.elem_size);
}

bool StateArena::local(LocalId id, uint64_t* out) const {
  if (id >= local_set_.size() || !local_set_[id]) {
    return false;
  }
  *out = local_values_[id];
  return true;
}

void StateArena::set_local(LocalId id, uint64_t raw) {
  SEDSPEC_REQUIRE(id < local_values_.size());
  local_values_[id] = raw;
  local_set_[id] = true;
}

void StateArena::reset() {
  std::fill(bytes_.begin(), bytes_.end(), 0);
  clear_locals();
}

void StateArena::clear_locals() {
  std::fill(local_set_.begin(), local_set_.end(), false);
}

void StateArena::copy_from(const StateArena& other) {
  SEDSPEC_REQUIRE(other.bytes_.size() == bytes_.size());
  bytes_ = other.bytes_;
}

std::span<uint8_t> StateArena::buffer_span(ParamId id) {
  const FieldDesc& f = layout_->field(id);
  SEDSPEC_REQUIRE(f.is_buffer());
  return {bytes_.data() + f.offset, f.size};
}

std::span<const uint8_t> StateArena::buffer_span(ParamId id) const {
  const FieldDesc& f = layout_->field(id);
  SEDSPEC_REQUIRE(f.is_buffer());
  return {bytes_.data() + f.offset, f.size};
}

}  // namespace sedspec
