// Untrusted-input validation.
//
// SEDSPEC_REQUIRE (common/assert.h) flags programmer errors — broken
// invariants, API misuse — and throws std::logic_error. Deserializers,
// however, consume *untrusted* bytes: a persisted specification, a trace
// packet buffer, or a state log may be corrupt, truncated, or stale, and
// that must surface as a recoverable input error distinct from a bug.
// SEDSPEC_CHECK_DECODE throws DecodeError (a std::runtime_error), so
// loaders can catch decode failures specifically and convert them into
// structured results (e.g. spec::load) instead of aborting the deployment.
#pragma once

#include <stdexcept>
#include <string>

namespace sedspec {

/// Malformed untrusted input (corrupt bytes, bad format, failed integrity
/// check). Recoverable by the caller; never indicates API misuse.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void decode_failed(const char* file, int line,
                                       const std::string& msg) {
  throw DecodeError("malformed input: " + msg + " (" + file + ":" +
                    std::to_string(line) + ")");
}

}  // namespace sedspec

#define SEDSPEC_CHECK_DECODE(cond, msg)                    \
  do {                                                     \
    if (!(cond)) {                                         \
      ::sedspec::decode_failed(__FILE__, __LINE__, (msg)); \
    }                                                      \
  } while (0)
