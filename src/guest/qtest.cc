#include "guest/qtest.h"

#include <charconv>
#include <optional>
#include <sstream>

namespace sedspec::guest {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::istringstream in{std::string(line)};
  std::string token;
  while (in >> token) {
    if (token[0] == '#') {
      break;  // comment to end of line
    }
    out.push_back(token);
  }
  return out;
}

std::optional<uint64_t> parse_number(const std::string& token) {
  int base = 10;
  size_t offset = 0;
  if (token.size() > 2 && token[0] == '0' &&
      (token[1] == 'x' || token[1] == 'X')) {
    base = 16;
    offset = 2;
  }
  uint64_t value = 0;
  const char* first = token.data() + offset;
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(first, last, value, base);
  if (ec != std::errc() || ptr != last || first == last) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::vector<uint8_t>> parse_hex_bytes(const std::string& token) {
  if (token.size() % 2 != 0) {
    return std::nullopt;
  }
  std::vector<uint8_t> out;
  out.reserve(token.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (size_t i = 0; i < token.size(); i += 2) {
    const int hi = nibble(token[i]);
    const int lo = nibble(token[i + 1]);
    if (hi < 0 || lo < 0) {
      return std::nullopt;
    }
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return out;
}

}  // namespace

QtestRunner::Result QtestRunner::run(std::string_view script) {
  Result result;
  std::optional<uint64_t> last_in;

  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= script.size()) {
    const size_t eol = script.find('\n', pos);
    const std::string_view line =
        script.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                         : eol - pos);
    pos = eol == std::string_view::npos ? script.size() + 1 : eol + 1;
    ++line_no;

    const auto tokens = tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& op = tokens[0];
    auto need = [&](size_t n) {
      if (tokens.size() != n + 1) {
        throw QtestError(line_no, op + " expects " + std::to_string(n) +
                                      " operand(s)");
      }
    };
    auto num = [&](size_t i) {
      auto v = parse_number(tokens[i]);
      if (!v.has_value()) {
        throw QtestError(line_no, "bad number: " + tokens[i]);
      }
      return *v;
    };

    auto io_write = [&](IoSpace space, uint8_t size) {
      need(2);
      bus_->write(space, num(1), size, num(2));
      ++result.commands;
    };
    auto io_read = [&](IoSpace space, uint8_t size) {
      need(1);
      last_in = bus_->read(space, num(1), size);
      result.in_values.push_back(*last_in);
      ++result.commands;
    };

    if (op == "outb") {
      io_write(IoSpace::kPio, 1);
    } else if (op == "outw") {
      io_write(IoSpace::kPio, 2);
    } else if (op == "outl") {
      io_write(IoSpace::kPio, 4);
    } else if (op == "inb") {
      io_read(IoSpace::kPio, 1);
    } else if (op == "inw") {
      io_read(IoSpace::kPio, 2);
    } else if (op == "inl") {
      io_read(IoSpace::kPio, 4);
    } else if (op == "writeb") {
      io_write(IoSpace::kMmio, 1);
    } else if (op == "writew") {
      io_write(IoSpace::kMmio, 2);
    } else if (op == "writel") {
      io_write(IoSpace::kMmio, 4);
    } else if (op == "writeq") {
      io_write(IoSpace::kMmio, 8);
    } else if (op == "readb") {
      io_read(IoSpace::kMmio, 1);
    } else if (op == "readw") {
      io_read(IoSpace::kMmio, 2);
    } else if (op == "readl") {
      io_read(IoSpace::kMmio, 4);
    } else if (op == "readq") {
      io_read(IoSpace::kMmio, 8);
    } else if (op == "memwrite") {
      need(2);
      if (mem_ == nullptr) {
        throw QtestError(line_no, "no guest memory attached");
      }
      auto bytes = parse_hex_bytes(tokens[2]);
      if (!bytes.has_value()) {
        throw QtestError(line_no, "bad hex byte string");
      }
      mem_->write(num(1), *bytes);
      ++result.commands;
    } else if (op == "memset") {
      need(3);
      if (mem_ == nullptr) {
        throw QtestError(line_no, "no guest memory attached");
      }
      mem_->fill(num(1), num(2), static_cast<uint8_t>(num(3)));
      ++result.commands;
    } else if (op == "expect") {
      need(1);
      if (!last_in.has_value()) {
        throw QtestError(line_no, "expect before any in/read");
      }
      if (*last_in != num(1)) {
        std::ostringstream msg;
        msg << "expected 0x" << std::hex << num(1) << ", got 0x" << *last_in;
        throw QtestError(line_no, msg.str());
      }
      ++result.commands;
    } else if (op == "clock_step") {
      need(1);
      if (clock_ == nullptr) {
        throw QtestError(line_no, "no virtual clock attached");
      }
      clock_->advance(num(1));
      ++result.commands;
    } else {
      throw QtestError(line_no, "unknown command: " + op);
    }
  }
  return result;
}

}  // namespace sedspec::guest
