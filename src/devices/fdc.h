// FDC — floppy disk controller (Intel 82078 style, after QEMU's fdc.c).
//
// PMIO register block at 0x3f0: DOR (+2), TDR (+3), MSR/DSR (+4), FIFO (+5),
// DIR/CCR (+7). The controller implements the classic three-phase command
// protocol (command bytes -> optional execution/data phase -> result bytes)
// over a 512-byte FIFO, PIO mode (no DMA), with an interrupt callback held
// as a function pointer in the control structure (FDCtrl.irq_fn).
//
// Commands implemented: SPECIFY, SENSE DRIVE STATUS, RECALIBRATE,
// SENSE INTERRUPT, SEEK, VERSION, CONFIGURE, READ, WRITE — plus the rare
// READ ID, DUMPREG and PERPENDICULAR commands (legal, but excluded from the
// training mix; they are the device's false-positive source), and DRIVE
// SPECIFICATION (0x8e), the command whose unpatched parameter loop is
// CVE-2015-3456 "Venom": parameter bytes are accumulated into
// fifo[data_pos++] and, as long as the terminator bit is absent, the
// expected length keeps growing — so a guest can push data_pos past the
// FIFO and overwrite adjacent control-structure state. The patched variant
// (QEMU >= 2.3.1) bails out of the command instead of extending it.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>

#include "program/program.h"
#include "vdev/device.h"

namespace sedspec::devices {

class FdcDevice final : public sedspec::Device {
 public:
  struct Vulns {
    bool cve_2015_3456 = false;  // Venom: unbounded DRIVE SPEC parameters
  };

  static constexpr uint64_t kBasePort = 0x3f0;
  static constexpr uint64_t kPortSpan = 8;
  static constexpr uint32_t kFifoSize = 512;
  static constexpr uint32_t kSectorSize = 512;
  // 2.88 MB: 80 tracks x 2 heads x 36 sectors x 512 bytes.
  static constexpr uint32_t kTracks = 80;
  static constexpr uint32_t kHeads = 2;
  static constexpr uint32_t kSectorsPerTrack = 36;
  static constexpr size_t kDiskSize =
      size_t{kTracks} * kHeads * kSectorsPerTrack * kSectorSize;

  // Command opcodes (as written to the FIFO).
  static constexpr uint8_t kCmdSpecify = 0x03;
  static constexpr uint8_t kCmdSenseDrive = 0x04;
  static constexpr uint8_t kCmdRecalibrate = 0x07;
  static constexpr uint8_t kCmdSenseInt = 0x08;
  static constexpr uint8_t kCmdSeek = 0x0f;
  static constexpr uint8_t kCmdVersion = 0x10;
  static constexpr uint8_t kCmdConfigure = 0x13;
  static constexpr uint8_t kCmdRead = 0x46;   // MFM read
  static constexpr uint8_t kCmdWrite = 0x45;  // MFM write
  static constexpr uint8_t kCmdReadId = 0x4a;        // rare
  static constexpr uint8_t kCmdDumpReg = 0x0e;       // rare
  static constexpr uint8_t kCmdPerpendicular = 0x12;  // rare
  static constexpr uint8_t kCmdDriveSpec = 0x8e;      // CVE-2015-3456

  // MSR bits.
  static constexpr uint8_t kMsrRqm = 0x80;
  static constexpr uint8_t kMsrDio = 0x40;
  static constexpr uint8_t kMsrBusy = 0x10;

  FdcDevice() : FdcDevice(Vulns{}) {}
  explicit FdcDevice(Vulns vulns);
  ~FdcDevice() override;

  uint64_t io_read(const sedspec::IoAccess& io) override;
  void io_write(const sedspec::IoAccess& io) override;

  [[nodiscard]] std::span<uint8_t> disk() { return disk_; }
  [[nodiscard]] const Vulns& vulns() const { return vulns_; }

  /// Named program handles, exposed for tests and the guest driver model.
  struct Blueprint;
  [[nodiscard]] const Blueprint& blueprint() const { return *bp_; }

 protected:
  void reset_device() override;

 private:
  explicit FdcDevice(std::unique_ptr<Blueprint> bp, Vulns vulns);

  void fifo_write(const sedspec::IoAccess& io);
  uint64_t fifo_read(const sedspec::IoAccess& io);
  void run_command(uint8_t cmd);
  void exec_after_params(uint8_t cmd);
  [[nodiscard]] size_t chs_offset() const;

  std::unique_ptr<Blueprint> bp_;
  Vulns vulns_;
  std::vector<uint8_t> disk_;
};

/// The FDC's "compiled source": control-structure layout handles, site ids,
/// and the interrupt-callback function address.
struct FdcDevice::Blueprint {
  std::unique_ptr<sedspec::DeviceProgram> program;

  // FDCtrl fields.
  sedspec::ParamId msr, dor, tdr, dsr;
  sedspec::ParamId phase;  // 0 command, 1 result, 2 exec-write, 3 exec-read
  sedspec::ParamId cur_cmd, st0, st1, st2, track, head, sector;
  sedspec::ParamId irq_fn;
  sedspec::ParamId fifo, data_pos, data_len;

  // Register access sites.
  sedspec::SiteId s_dor_write, s_dor_reset, s_dor_set;
  sedspec::SiteId s_dsr_write, s_dsr_reset, s_dsr_set;
  sedspec::SiteId s_tdr_set, s_msr_read, s_dir_read, s_dor_read, s_tdr_read;

  // FIFO write path.
  sedspec::SiteId s_fifo_w_phase, s_fifo_w_cmdq, s_cmd_decode;
  sedspec::SiteId s_fifo_w_param, s_fifo_w_pdone, s_exec_dispatch;
  sedspec::SiteId s_fifo_w_xferq, s_fifo_w_xfer, s_fifo_w_xdone;

  // Command setup/exec blocks.
  sedspec::SiteId s_setup_specify, s_setup_sensed, s_setup_recal;
  sedspec::SiteId s_setup_seek, s_setup_configure, s_setup_perp;
  sedspec::SiteId s_setup_read, s_setup_write, s_setup_dspec;
  sedspec::SiteId s_exec_sensei, s_exec_version, s_exec_readid;
  sedspec::SiteId s_exec_dumpreg, s_exec_invalid;
  sedspec::SiteId s_exec_specify, s_exec_sensed, s_exec_recal, s_exec_seek;
  sedspec::SiteId s_exec_configure, s_exec_read, s_exec_writesetup;
  sedspec::SiteId s_exec_writedone, s_exec_readdone;
  sedspec::SiteId s_exec_dspec, s_dspec_more;

  // FIFO read path.
  sedspec::SiteId s_fifo_r_phase3, s_fifo_r_data, s_fifo_r_ddone;
  sedspec::SiteId s_fifo_r_phase1, s_fifo_r_res, s_fifo_r_rdone;

  // Interrupt call sites and command ends.
  sedspec::SiteId s_irq_recal, s_irq_seek, s_irq_read, s_irq_write,
      s_irq_wdone;
  sedspec::SiteId s_cmd_end_imm, s_cmd_end_res;

  sedspec::FuncAddr f_irq;
};

}  // namespace sedspec::devices
