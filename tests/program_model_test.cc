// Unit tests for the DeviceProgram model (the "compiled source" the
// analyses consume), the expression pretty-printer, specification
// determinism, and deserializer robustness.
#include <gtest/gtest.h>

#include "guest/workload.h"
#include "program/program.h"
#include "spec/serial.h"

namespace sedspec {
namespace {

TEST(DeviceProgram, SiteAddressesAreUniqueAndInRange) {
  StateLayout layout("S");
  (void)layout.add_scalar("x", FieldKind::kRegister, IntType::kU32);
  DeviceProgram program("t", std::move(layout), 0x4000);
  const SiteId a = program.add_plain("a", {});
  const FuncAddr f = program.add_function("handler");
  const SiteId b = program.add_plain("b", {});

  EXPECT_EQ(program.site(a).addr, 0x4000u);
  EXPECT_EQ(f, 0x4010u);
  EXPECT_EQ(program.site(b).addr, 0x4020u);
  EXPECT_EQ(program.code_base(), 0x4000u);
  EXPECT_EQ(program.code_end(), 0x4030u);

  EXPECT_EQ(program.site_by_addr(0x4000), a);
  EXPECT_EQ(program.site_by_addr(0x4020), b);
  EXPECT_FALSE(program.site_by_addr(0x4010).has_value());  // a function
  EXPECT_FALSE(program.site_by_addr(0x9999).has_value());
  EXPECT_TRUE(program.is_function(f));
  EXPECT_EQ(program.site_by_name("b"), b);
  EXPECT_FALSE(program.site_by_name("nope").has_value());
}

TEST(DeviceProgram, IndirectSiteRequiresFuncPtrField) {
  StateLayout layout("S");
  const ParamId notfp =
      layout.add_scalar("notfp", FieldKind::kRegister, IntType::kU64);
  DeviceProgram program("t", std::move(layout), 0x4000);
  EXPECT_THROW((void)program.add_indirect("bad", notfp), std::logic_error);
}

TEST(ExprPrinter, ReadableOutput) {
  using namespace eb;
  auto e = lor(eq(param(3, IntType::kU8), c(1, IntType::kU8)),
               lt(buf_load(4, local(2, IntType::kU32), IntType::kU8),
                  c(0x80, IntType::kU8)));
  EXPECT_EQ(to_string(*e), "((p3 == 1) || (p4[local2] < 128))");
  auto s = sb::assign(7, cast(io_value(IntType::kU32), IntType::kU16),
                      "reg = value");
  EXPECT_EQ(to_string(s), "p7 = (u16)(io.value)  // reg = value");
}

TEST(SpecDeterminism, SameTrainingSameBytesForEveryDevice) {
  for (const std::string& name : guest::workload_names()) {
    auto wl1 = guest::make_workload(name);
    const auto spec1 = spec::serialize(
        pipeline::build_spec(wl1->device(), [&] { wl1->training(); }));
    auto wl2 = guest::make_workload(name);
    const auto spec2 = spec::serialize(
        pipeline::build_spec(wl2->device(), [&] { wl2->training(); }));
    EXPECT_EQ(spec1, spec2) << name << ": specification not deterministic";
  }
}

TEST(SpecDeserializer, EveryTruncationFailsCleanly) {
  auto wl = guest::make_workload("scsi-esp");
  const auto bytes = spec::serialize(
      pipeline::build_spec(wl->device(), [&] { wl->training(); }));
  ASSERT_GT(bytes.size(), 64u);
  // Any strict prefix must throw (fail-fast), never crash or return junk.
  for (size_t cut = 0; cut < bytes.size();
       cut += std::max<size_t>(1, bytes.size() / 97)) {
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_THROW((void)spec::deserialize(prefix), sedspec::DecodeError)
        << "prefix length " << cut;
  }
  // Trailing garbage is rejected too.
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_THROW((void)spec::deserialize(padded), sedspec::DecodeError);
}

}  // namespace
}  // namespace sedspec
