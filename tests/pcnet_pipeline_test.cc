// PCNet end-to-end: benign traffic (loopback with/without FCS, wire TX/RX,
// chained descriptors, ring wrap, RX drop) stays clean; the three CVEs are
// detected by exactly the strategies Table III reports:
//   CVE-2015-7504 — indirect jump check (parameter check blind: temp ptr)
//   CVE-2015-7512 — parameter check + indirect jump check
//   CVE-2016-7909 — conditional jump check (trained loop bound)
#include <gtest/gtest.h>

#include "checker/checker.h"
#include "devices/pcnet.h"
#include "guest/pcnet_driver.h"
#include "sedspec/pipeline.h"
#include "vdev/bus.h"
#include "vdev/memory.h"

namespace sedspec {
namespace {

using checker::CheckerConfig;
using checker::EsChecker;
using checker::Mode;
using checker::Strategy;
using devices::PcnetDevice;
using guest::PcnetDriver;

std::vector<uint8_t> frame_of(size_t n, uint8_t seed) {
  std::vector<uint8_t> f(n);
  for (size_t i = 0; i < n; ++i) {
    f[i] = static_cast<uint8_t>(seed + i * 3);
  }
  return f;
}

void benign_training(PcnetDriver& drv, PcnetDevice& device) {
  // Session 1: loopback with FCS appending.
  drv.setup({.tx_ring_len = 16,
             .rx_ring_len = 16,
             .loopback = true,
             .append_fcs = true});
  for (int chunks : {1, 2, 3}) {
    for (size_t size : {60u, 300u, 1514u}) {
      drv.send(frame_of(size, static_cast<uint8_t>(chunks)), chunks);
      auto rx = drv.poll_rx();
      ASSERT_TRUE(rx.has_value());
      drv.ack_irq();
    }
  }
  // RX drop: no buffers posted.
  drv.revoke_rx_buffers();
  drv.send(frame_of(128, 9), 1);
  drv.ack_irq();
  drv.post_rx_buffers();

  // Session 2: loopback without FCS, small ring (wrap exercised).
  drv.setup({.tx_ring_len = 4,
             .rx_ring_len = 4,
             .loopback = true,
             .append_fcs = false});
  for (int i = 0; i < 10; ++i) {
    drv.send(frame_of(200 + 10 * i, static_cast<uint8_t>(i)), 1);
    ASSERT_TRUE(drv.poll_rx().has_value());
    drv.ack_irq();
  }

  // Session 3: wire mode — transmit to the wire, receive from the wire.
  drv.setup({.tx_ring_len = 16,
             .rx_ring_len = 16,
             .loopback = false,
             .append_fcs = false});
  for (int i = 0; i < 6; ++i) {
    drv.send(frame_of(400 + 100 * i, static_cast<uint8_t>(i)), (i % 3) + 1);
    drv.ack_irq();
  }
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(device.receive_frame(frame_of(256 + 64 * i, 0x40)));
    ASSERT_TRUE(drv.poll_rx().has_value());
    drv.ack_irq();
  }
  (void)drv.rcsr(4);
  (void)drv.rcsr(76);
}

struct Harness {
  GuestMemory mem{1 << 20};
  PcnetDevice device;
  IoBus bus;
  PcnetDriver driver;
  spec::EsCfg cfg;
  std::unique_ptr<EsChecker> checker;

  explicit Harness(PcnetDevice::Vulns vulns = {}, CheckerConfig config = {})
      : device(&mem, vulns), driver(&bus, &mem) {
    bus.map(IoSpace::kPio, PcnetDevice::kBasePort, PcnetDevice::kPortSpan,
            &device);
    cfg = pipeline::build_spec(device, [this] {
      PcnetDriver train(&bus, &mem);
      benign_training(train, device);
    });
    checker = pipeline::deploy(cfg, device, bus, config);
  }
};

TEST(PcnetPipeline, BenignWorkloadIsClean) {
  Harness h;
  benign_training(h.driver, h.device);
  EXPECT_EQ(h.checker->stats().blocked, 0u);
  EXPECT_EQ(h.checker->stats().warnings, 0u);
  EXPECT_TRUE(h.device.incidents().empty());
}

TEST(PcnetPipeline, LayoutPlacesIrqAfterBuffer) {
  GuestMemory mem(1 << 20);
  PcnetDevice device(&mem);
  const auto& layout = device.program().layout();
  const auto& buf = layout.field(device.blueprint().buffer);
  const auto& irq = layout.field(device.blueprint().irq_fn);
  // The CRC-past-the-buffer corruption must land on irq_fn, as in the real
  // PCNetState heap layout the paper's exploits rely on.
  EXPECT_EQ(buf.offset + buf.size, irq.offset);
}

// --- CVE-2015-7504: loopback CRC store through a temp pointer ------------

void exploit_7504(PcnetDriver& drv) {
  drv.setup({.tx_ring_len = 16,
             .rx_ring_len = 16,
             .loopback = true,
             .append_fcs = true});
  drv.send(frame_of(PcnetDevice::kBufferSize, 0x41), 1);  // exactly 4096
}

TEST(PcnetPipeline, Cve7504CorruptsUnprotectedDevice) {
  GuestMemory mem(1 << 20);
  PcnetDevice device(&mem, PcnetDevice::Vulns{.cve_2015_7504 = true});
  IoBus bus;
  bus.map(IoSpace::kPio, PcnetDevice::kBasePort, PcnetDevice::kPortSpan,
          &device);
  PcnetDriver drv(&bus, &mem);
  exploit_7504(drv);
  EXPECT_TRUE(device.has_incident(IncidentKind::kOobWrite));
  EXPECT_TRUE(device.has_incident(IncidentKind::kHijackedCall));
}

TEST(PcnetPipeline, Cve7504DetectedByIndirectCheckAlone) {
  CheckerConfig config;
  config.enable_parameter = false;
  config.enable_conditional = false;
  Harness h(PcnetDevice::Vulns{.cve_2015_7504 = true}, config);
  exploit_7504(h.driver);
  EXPECT_GT(h.checker->stats().violations_by_strategy[1], 0u);
  EXPECT_TRUE(h.device.halted());
  // Caught before the hijacked pointer was invoked.
  EXPECT_FALSE(h.device.has_incident(IncidentKind::kHijackedCall));
}

TEST(PcnetPipeline, Cve7504BlindSpots) {
  // Parameter + conditional enabled, indirect disabled: the paper's blind
  // spot — the OOB store goes through a non-state temporary.
  CheckerConfig config;
  config.enable_indirect = false;
  Harness h(PcnetDevice::Vulns{.cve_2015_7504 = true}, config);
  exploit_7504(h.driver);
  EXPECT_EQ(h.checker->stats().violations_by_strategy[0], 0u);
  EXPECT_EQ(h.checker->stats().violations_by_strategy[2], 0u);
  EXPECT_FALSE(h.device.halted());
  EXPECT_TRUE(h.device.has_incident(IncidentKind::kOobWrite));
}

// --- CVE-2015-7512: unchecked TX append ----------------------------------

void exploit_7512(PcnetDriver& drv) {
  drv.setup({.tx_ring_len = 16,
             .rx_ring_len = 16,
             .loopback = true,
             .append_fcs = false});
  drv.send(frame_of(6000, 0x42), 2);  // 2 x 3000: second append overflows
}

TEST(PcnetPipeline, Cve7512DetectedByParameterCheckAlone) {
  CheckerConfig config;
  config.enable_indirect = false;
  config.enable_conditional = false;
  Harness h(PcnetDevice::Vulns{.cve_2015_7512 = true}, config);
  exploit_7512(h.driver);
  EXPECT_GT(h.checker->stats().violations_by_strategy[0], 0u);
  EXPECT_TRUE(h.device.halted());
  EXPECT_FALSE(h.device.has_incident(IncidentKind::kOobWrite));
}

TEST(PcnetPipeline, Cve7512DetectedByIndirectCheckAlone) {
  CheckerConfig config;
  config.enable_parameter = false;
  config.enable_conditional = false;
  Harness h(PcnetDevice::Vulns{.cve_2015_7512 = true}, config);
  exploit_7512(h.driver);
  EXPECT_GT(h.checker->stats().violations_by_strategy[1], 0u);
  EXPECT_TRUE(h.device.halted());
}

TEST(PcnetPipeline, Cve7512NotDetectedByConditionalCheckAlone) {
  CheckerConfig config;
  config.enable_parameter = false;
  config.enable_indirect = false;
  Harness h(PcnetDevice::Vulns{.cve_2015_7512 = true}, config);
  exploit_7512(h.driver);
  EXPECT_EQ(h.checker->stats().violations_by_strategy[2], 0u);
  // The unchecked append runs off the end of the control structure.
  EXPECT_TRUE(h.device.has_incident(IncidentKind::kStructEscape));
}

// --- CVE-2016-7909: RX ring length 0 -> 65536-descriptor scan ------------

void exploit_7909(PcnetDriver& drv) {
  drv.setup({.tx_ring_len = 16,
             .rx_ring_len = 16,
             .loopback = true,
             .append_fcs = false});
  drv.revoke_rx_buffers();  // nothing owned: the scan never finds a buffer
  drv.wcsr(76, 0);          // ring length becomes 0x10000
  // All-zero payload, so the bogus 65536-descriptor "ring" the device scans
  // (which overlaps arbitrary guest memory) never looks owned.
  drv.send(std::vector<uint8_t>(100, 0), 1);
}

TEST(PcnetPipeline, Cve7909SpinsUnprotectedDevice) {
  GuestMemory mem(1 << 20);
  PcnetDevice device(&mem, PcnetDevice::Vulns{.cve_2016_7909 = true});
  IoBus bus;
  bus.map(IoSpace::kPio, PcnetDevice::kBasePort, PcnetDevice::kPortSpan,
          &device);
  PcnetDriver drv(&bus, &mem);
  exploit_7909(drv);
  EXPECT_TRUE(device.has_incident(IncidentKind::kRunawayLoop));
}

TEST(PcnetPipeline, Cve7909DetectedByConditionalCheckAlone) {
  CheckerConfig config;
  config.enable_parameter = false;
  config.enable_indirect = false;
  Harness h(PcnetDevice::Vulns{.cve_2016_7909 = true}, config);
  exploit_7909(h.driver);
  EXPECT_GT(h.checker->stats().violations_by_strategy[2], 0u);
  EXPECT_TRUE(h.device.halted());
  EXPECT_FALSE(h.device.has_incident(IncidentKind::kRunawayLoop));
}

TEST(PcnetPipeline, Cve7909NotDetectedByOtherStrategies) {
  CheckerConfig config;
  config.enable_conditional = false;
  Harness h(PcnetDevice::Vulns{.cve_2016_7909 = true}, config);
  // Clear training leftovers so the bogus ring scan sees no "owned" bits.
  h.mem.fill(0, h.mem.size(), 0);
  exploit_7909(h.driver);
  EXPECT_EQ(h.checker->stats().violations_by_strategy[0], 0u);
  EXPECT_EQ(h.checker->stats().violations_by_strategy[1], 0u);
  EXPECT_TRUE(h.device.has_incident(IncidentKind::kRunawayLoop));
}

TEST(PcnetPipeline, RareCsrWriteIsAFalsePositive) {
  CheckerConfig config;
  config.mode = Mode::kEnhancement;
  Harness h({}, config);
  h.driver.setup({.tx_ring_len = 16,
                  .rx_ring_len = 16,
                  .loopback = true,
                  .append_fcs = true});
  h.driver.write_rare_csr();
  EXPECT_GT(h.checker->stats().warnings, 0u);
  EXPECT_FALSE(h.device.halted());
  // Still functional afterwards.
  h.driver.send(frame_of(500, 0x77), 1);
  EXPECT_TRUE(h.driver.poll_rx().has_value());
}

}  // namespace
}  // namespace sedspec
