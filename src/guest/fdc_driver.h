// Guest-side floppy driver model.
//
// Issues the same PMIO sequences a real guest floppy driver would: MSR
// polling before every FIFO byte, three-phase command protocol, DOR reset
// on initialization. Drivers talk to the device only through the IoBus, so
// every access passes through the deployed ES-Checker like real guest I/O.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "devices/fdc.h"
#include "vdev/bus.h"

namespace sedspec::guest {

class FdcDriver {
 public:
  explicit FdcDriver(sedspec::IoBus* bus) : bus_(bus) {}

  // Register-level primitives.
  [[nodiscard]] uint8_t read_msr();
  void write_dor(uint8_t value);
  void write_fifo(uint8_t value);
  [[nodiscard]] uint8_t read_fifo();

  /// DOR-toggle controller reset.
  void reset();

  /// Sends command + parameter bytes, polling MSR before each byte.
  void send_command(std::span<const uint8_t> bytes);
  /// Reads `n` result bytes.
  std::vector<uint8_t> read_result(size_t n);

  // Command wrappers (the benign training/workload vocabulary).
  void specify();
  void configure();
  [[nodiscard]] uint8_t version();
  [[nodiscard]] uint8_t sense_drive_status();
  void recalibrate();
  void seek(uint8_t track);
  /// ST0/track pair from SENSE INTERRUPT.
  std::pair<uint8_t, uint8_t> sense_interrupt();
  void read_sector(uint8_t track, uint8_t head, uint8_t sector,
                   std::span<uint8_t> out);  // out.size() == 512
  void write_sector(uint8_t track, uint8_t head, uint8_t sector,
                    std::span<const uint8_t> data);

  // Rare-but-legal commands (excluded from training; the FP source).
  std::vector<uint8_t> read_id();
  std::vector<uint8_t> dumpreg();
  void perpendicular();

  [[nodiscard]] uint64_t io_count() const { return io_count_; }

 private:
  sedspec::IoBus* bus_;
  uint64_t io_count_ = 0;
};

}  // namespace sedspec::guest
