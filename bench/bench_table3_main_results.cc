// Table III reproduction: the main SEDSpec results.
//
// Left half: the CVE case studies — for each vulnerability, each check
// strategy is activated alone (as in §VII-B2) and the matrix of which
// strategies detect the exploit is printed next to the paper's, together
// with the ground truth (unprotected compromise) and whether protection
// stopped the damage.
//
// Right half: per-device false-positive rate (10-virtual-hour campaign) and
// effective coverage (training spec vs a one-virtual-hour benign fuzz).
#include <cstdio>
#include <map>

#include "benchsim/campaign.h"
#include "guest/exploits.h"
#include "guest/workload.h"
#include "common/log.h"
#include "report.h"

namespace {

struct PaperDeviceRow {
  const char* device;
  double fpr_percent;
  double coverage_percent;
};

constexpr PaperDeviceRow kPaperDevice[] = {
    {"fdc", 0.14, 95.9},   {"usb-ehci", 0.10, 97.3}, {"pcnet", 0.11, 96.2},
    {"sdhci", 0.09, 93.5}, {"scsi-esp", 0.17, 93.8},
};

}  // namespace

int main() {
  using namespace sedspec;
  set_log_level(LogLevel::kError);
  using bench_report::mark;

  bench_report::title("Table III — Main results: CVE detection matrix");
  bench_report::MetricSink sink("table3_main_results");
  std::printf("%-15s %-9s %-8s | %5s %5s %5s | %-8s | %-7s %-9s\n", "CVE",
              "Device", "QEMU", "Param", "Indir", "Cond", "paper", "detect",
              "prevented");
  bench_report::rule();
  for (const auto& scenario : guest::exploit_scenarios()) {
    const auto& info = scenario.info();
    const auto m = scenario.evaluate();
    char paper[16];
    std::snprintf(paper, sizeof(paper), "%c%c%c",
                  info.expect_parameter ? 'P' : '.',
                  info.expect_indirect ? 'I' : '.',
                  info.expect_conditional ? 'C' : '.');
    std::printf("%-15s %-9s %-8s | %5s %5s %5s | %-8s | %-7s %-9s\n",
                info.cve.c_str(), info.device.c_str(),
                info.qemu_version.c_str(), mark(m.parameter),
                mark(m.indirect), mark(m.conditional), paper,
                mark(m.detected), mark(!m.protected_compromised));
    sink.put(info.cve + "/parameter", m.parameter ? 1 : 0);
    sink.put(info.cve + "/indirect", m.indirect ? 1 : 0);
    sink.put(info.cve + "/conditional", m.conditional ? 1 : 0);
    sink.put(info.cve + "/detected", m.detected ? 1 : 0);
    sink.put(info.cve + "/prevented", m.protected_compromised ? 0 : 1);
  }
  bench_report::rule();
  std::printf(
      "P/I/C = strategies the paper reports. CVE-2016-1568 is the paper's\n"
      "(and our) known miss: a use-after-free with no device-state "
      "transition.\n");

  bench_report::title(
      "Table III — Per-device false-positive rate and effective coverage");
  std::printf("%-10s | %9s %9s | %9s %9s\n", "Device", "FPR", "paper",
              "coverage", "paper");
  bench_report::rule(58);
  uint64_t seed = 7;
  for (const auto& row : kPaperDevice) {
    auto wl = guest::make_workload(row.device);
    const double coverage = benchsim::run_effective_coverage(*wl, seed++);

    auto wl2 = guest::make_workload(row.device);
    checker::CheckerConfig config;
    config.mode = checker::Mode::kEnhancement;
    wl2->build_and_deploy(config);
    const auto fp = benchsim::run_fp_campaign(
        *wl2, /*total_hours=*/10.0, benchsim::default_rare_prob(row.device),
        seed++, {10.0});
    std::printf("%-10s | %8.3f%% %8.2f%% | %8.1f%% %8.1f%%\n", row.device,
                fp.fpr() * 100.0, row.fpr_percent, coverage * 100.0,
                row.coverage_percent);
    sink.put(std::string(row.device) + "/fpr_percent", fp.fpr() * 100.0);
    sink.put(std::string(row.device) + "/coverage_percent", coverage * 100.0);
  }
  bench_report::rule(58);
  sink.write_json();
  return 0;
}
