# Empty compiler generated dependencies file for bench_ablation_checker_cost.
# This may be replaced when dependencies are built.
