// Staged spec rollout: state machine, stage-observation verdicts, and the
// crash-consistent rollout record (fleet control plane).
//
// A candidate specification reaches the fleet in stages:
//
//       stage_candidate()        run stage 0..n-1          promote
//   ┌─────────┐   ok   ┌────────────┐  all stages ok  ┌───────────┐  ok
//   │ Staging ├───────►│ Shadow(N%) ├────────────────►│ Promoting ├──────► Active
//   └────┬────┘        └─────┬──────┘                 └─────┬─────┘
//        │ bad candidate     │ bad metrics / crash spike    │ bad confirm
//        ▼                   ▼                              ▼
//                        RolledBack  (baseline spec still enforcing)
//
// In Shadow, N% of shards evaluate the candidate ALONGSIDE the active spec
// (monitor-only: candidate verdicts are recorded, never block), and the
// engine watches the per-window observation — candidate-only violation
// delta, would-be-false-positive rate, check-latency ratio, shard
// crash/quarantine spikes from the PR-1 failure-domain counters, and
// report-queue loss. Promoting publishes the candidate to the active store
// and confirms on live traffic; a bad confirmation republishes the
// baseline (auto-rollback of an active spec).
//
// Crash consistency: every transition serializes a RolloutRecord behind
// the same magic/version/CRC envelope discipline as the spec artifacts.
// The record carries the serialized *baseline* spec (last-known-good), so
// a control plane restarted mid-Promoting can always restore enforcement
// to the baseline without any other state surviving the crash.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "spec/serial.h"

namespace sedspec::control {

enum class RolloutState : uint8_t {
  kStaging = 0,
  kShadow = 1,
  kPromoting = 2,
  kActive = 3,
  kRolledBack = 4,
};
inline constexpr size_t kRolloutStateCount = 5;

[[nodiscard]] std::string rollout_state_name(RolloutState s);

/// Is the state machine finished? A rollout must always end here — a
/// non-terminal record found at restart means the control plane crashed
/// mid-rollout and recovery runs (see ControlPlane::resume).
[[nodiscard]] inline bool rollout_terminal(RolloutState s) {
  return s == RolloutState::kActive || s == RolloutState::kRolledBack;
}

/// Rollback / promotion guardrails for one observation window.
struct RolloutThresholds {
  /// Candidate-only would-be blocks (candidate flags a round the active
  /// spec passed — the false-positive signature) per shadow round.
  double max_would_block_rate = 0.0;
  /// Candidate violation surplus over the active spec, per shadow round.
  double max_violation_delta_rate = 0.0;
  /// Candidate mean-check-latency over active (per-round check_ns) and
  /// candidate p99 over active p99 from the per-stage histograms. 0
  /// disables the ratio checks (e.g. when timing sampling is off).
  double max_latency_ratio = 4.0;
  /// Shard crashes tolerated inside one window (failure-domain feed).
  uint64_t max_shard_failures = 0;
  /// Quarantine (fail-closed containment) spike tolerated per window.
  uint64_t max_quarantines = 0;
  /// Report-queue drops tolerated per window (report loss blinds the
  /// monitors, so by default any loss pauses promotion via retry).
  uint64_t max_report_drops = 0;
  /// SLO burn-rate breaches (obs::SloEngine, fed via ControlPlane::
  /// slo_feed) tolerated per window. Default 0: one breach during a live
  /// rollout window rolls the candidate back.
  uint64_t max_slo_breaches = 0;
  /// Observation completeness: fewer shadow rounds than this means the
  /// metric feed is delayed/stale — the stage is inconclusive and is
  /// retried, never promoted (and rolled back after max retries).
  uint64_t min_shadow_rounds = 1;
};

/// What one observation window saw (aggregated from the enforcement run
/// plus the obs registry; see ControlPlane::observe_stage).
struct StageObservation {
  uint64_t shadow_shards = 0;
  uint64_t shadow_rounds = 0;          // candidate-checked rounds
  uint64_t candidate_violations = 0;   // all strategies, shadow checkers
  uint64_t active_violations = 0;      // same shards, active checkers
  uint64_t would_block = 0;            // candidate-only findings
  uint64_t candidate_blocked = 0;      // MUST stay 0 (shadow never blocks)
  uint64_t shard_failures = 0;         // crashed shard threads
  uint64_t quarantines = 0;            // fail-closed containments
  uint64_t contained_faults = 0;
  uint64_t report_drops = 0;
  uint64_t slo_breaches = 0;           // SLO engine breaches in this window
  uint64_t active_check_ns = 0;        // accumulated, active checkers
  uint64_t candidate_check_ns = 0;     // accumulated, shadow checkers
  uint64_t active_rounds = 0;
  uint64_t active_latency_p99_ns = 0;  // per-stage histogram p99s
  uint64_t candidate_latency_p99_ns = 0;
};

enum class StageVerdict : uint8_t {
  kPromote = 0,  // window clean: advance to the next stage
  kRetry = 1,    // window inconclusive (delayed/incomplete metrics)
  kRollback = 2, // guardrail tripped: abort to baseline
};

struct StageDecision {
  StageVerdict verdict = StageVerdict::kRollback;
  std::string reason;
};

/// Pure decision function: one observation window against the thresholds.
/// Deterministic and side-effect free so the fault campaign can sweep it.
[[nodiscard]] StageDecision evaluate_stage(const RolloutThresholds& t,
                                           const StageObservation& o);

/// Stage plan + guardrails for one rollout.
struct RolloutConfig {
  /// Fraction of shards shadowing the candidate per stage (last stage is
  /// typically 1.0). ceil(fraction * shard_count), at least one shard.
  std::vector<double> stage_fractions = {0.25, 1.0};
  /// Benign operations each shard drives per observation window.
  uint64_t observe_ops = 32;
  /// Inconclusive-window retries per stage before giving up (rollback).
  uint32_t max_stage_retries = 2;
  RolloutThresholds thresholds;
  /// Run a confirmation window after publishing the candidate as active
  /// (Promoting); a dirty confirmation rolls back to the baseline.
  bool confirm_after_promote = true;
};

/// Persisted rollout state. Serialized behind a magic/version/CRC envelope
/// (same discipline as spec::serialize); load() rejects any corruption
/// with a structured LoadError — a control plane that cannot trust its
/// record falls back to baseline-only operation.
struct RolloutRecord {
  std::string device;
  uint64_t candidate_version = 0;  // candidate-store version under rollout
  uint64_t baseline_version = 0;   // active-store last-known-good version
  RolloutState state = RolloutState::kStaging;
  uint32_t stage_index = 0;
  std::string reason;  // rollback reason / promotion note
  /// Serialized last-known-good spec (own nested envelope): what recovery
  /// republishes if a crash interrupted Promoting.
  std::vector<uint8_t> baseline_spec;

  [[nodiscard]] std::vector<uint8_t> serialize() const;
  /// Validates the record envelope, every field range, and the nested
  /// baseline-spec envelope. Corrupt input yields an error, never throws.
  [[nodiscard]] static spec::LoadError load(std::span<const uint8_t> bytes,
                                            RolloutRecord& out);
};

/// Rollout-record envelope format version.
inline constexpr uint32_t kRolloutFormatVersion = 1;

}  // namespace sedspec::control
