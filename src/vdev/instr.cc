#include "vdev/instr.h"

#include "common/assert.h"
#include "common/log.h"

namespace sedspec {

InstrumentationContext::InstrumentationContext(
    const DeviceProgram* program, StateArena* arena,
    std::function<void(const Incident&)> incident_fn)
    : program_(program),
      arena_(arena),
      incident_fn_(std::move(incident_fn)) {
  SEDSPEC_REQUIRE(program != nullptr && arena != nullptr);
}

void InstrumentationContext::bind_function(FuncAddr addr,
                                           std::function<void()> fn) {
  SEDSPEC_REQUIRE_MSG(program_->is_function(addr),
                      "binding a function address unknown to the program");
  functions_[addr] = std::move(fn);
}

void InstrumentationContext::begin_round(const IoAccess& io) {
  SEDSPEC_REQUIRE_MSG(!io_.has_value(), "nested I/O round");
  io_ = io;
  arena_->clear_locals();
  if (trace_ != nullptr) {
    trace_->pge(program_->code_base());
  }
  if (observer_ != nullptr) {
    observer_->round_start(io);
    snapshot_scalars();
  }
}

void InstrumentationContext::end_round() {
  SEDSPEC_REQUIRE(io_.has_value());
  if (trace_ != nullptr) {
    trace_->pgd();
  }
  if (observer_ != nullptr) {
    observer_->round_end();
  }
  io_.reset();
}

const IoAccess& InstrumentationContext::io() const {
  SEDSPEC_REQUIRE_MSG(io_.has_value(), "io() outside a round");
  return *io_;
}

void InstrumentationContext::snapshot_scalars() {
  const StateLayout& layout = program_->layout();
  scalar_snapshot_.resize(layout.field_count());
  for (size_t i = 0; i < layout.field_count(); ++i) {
    const FieldDesc& f = layout.field(static_cast<ParamId>(i));
    scalar_snapshot_[i] = f.is_buffer() ? 0 : arena_->param(static_cast<ParamId>(i));
  }
}

void InstrumentationContext::diff_scalars() {
  const StateLayout& layout = program_->layout();
  for (size_t i = 0; i < layout.field_count(); ++i) {
    const FieldDesc& f = layout.field(static_cast<ParamId>(i));
    if (f.is_buffer()) {
      continue;
    }
    const uint64_t now = arena_->param(static_cast<ParamId>(i));
    if (now != scalar_snapshot_[i]) {
      observer_->param_change(static_cast<ParamId>(i), scalar_snapshot_[i],
                              now);
      scalar_snapshot_[i] = now;
    }
  }
}

void InstrumentationContext::exec_dsod(
    const SiteDesc& site,
    const std::function<void(std::span<uint8_t>)>* fill) {
  EvalCtx ctx;
  ctx.state = arena_;
  ctx.io = io_.has_value() ? &*io_ : nullptr;
  ctx.checked = false;
  ctx.diag = nullptr;
  for (const Stmt& s : site.dsod) {
    if (s.kind == StmtKind::kBufFill) {
      // Validate/clamp through the arena, then hand the real region to the
      // device's data source.
      const uint64_t idx = eval_expr(*s.index, ctx);
      const uint64_t count = eval_expr(*s.count, ctx);
      arena_->buf_fill(s.param, idx, count, nullptr);
      if (fill != nullptr && *fill) {
        (*fill)(arena_->fill_region(s.param, idx, count));
      }
    } else {
      exec_stmt(s, ctx);
    }
  }
  if (observer_ != nullptr) {
    diff_scalars();
  }
}

void InstrumentationContext::enter_site(const SiteDesc& site) {
  SEDSPEC_REQUIRE_MSG(io_.has_value(),
                      "site executed outside an I/O round: " + site.name);
  if (trace_ != nullptr) {
    trace_->tip(site.addr);
  }
  if (observer_ != nullptr) {
    observer_->site_enter(site.id, site.kind);
  }
}

void InstrumentationContext::block(SiteId id) {
  const SiteDesc& site = program_->site(id);
  enter_site(site);
  exec_dsod(site, nullptr);
}

void InstrumentationContext::block(
    SiteId id, const std::function<void(std::span<uint8_t>)>& fill) {
  const SiteDesc& site = program_->site(id);
  enter_site(site);
  exec_dsod(site, &fill);
}

bool InstrumentationContext::branch(SiteId id) {
  const SiteDesc& site = program_->site(id);
  SEDSPEC_REQUIRE_MSG(site.kind == BlockKind::kConditional,
                      "branch() on non-conditional site " + site.name);
  enter_site(site);
  exec_dsod(site, nullptr);
  EvalCtx ctx;
  ctx.state = arena_;
  ctx.io = &*io_;
  const bool taken = eval_expr(*site.guard, ctx) != 0;
  if (trace_ != nullptr) {
    trace_->tnt(taken);
  }
  if (observer_ != nullptr) {
    observer_->branch(id, taken);
  }
  return taken;
}

void InstrumentationContext::indirect(SiteId id) {
  const SiteDesc& site = program_->site(id);
  SEDSPEC_REQUIRE_MSG(site.kind == BlockKind::kIndirect,
                      "indirect() on non-indirect site " + site.name);
  enter_site(site);
  exec_dsod(site, nullptr);
  const FuncAddr target = arena_->param(site.fp_param);
  if (trace_ != nullptr) {
    trace_->tip(target);
  }
  if (observer_ != nullptr) {
    observer_->indirect(id, target);
  }
  auto it = functions_.find(target);
  if (it == functions_.end()) {
    // A corrupted function pointer: in real QEMU this is the moment an
    // attacker gains control. Record ground truth and skip the call.
    if (incident_fn_) {
      incident_fn_(Incident{IncidentKind::kHijackedCall, site.fp_param, target,
                            "indirect call at " + site.name});
    }
    return;
  }
  it->second();
}

uint64_t InstrumentationContext::command(SiteId id) {
  const SiteDesc& site = program_->site(id);
  SEDSPEC_REQUIRE_MSG(site.kind == BlockKind::kCmdDecision,
                      "command() on non-cmd-decision site " + site.name);
  enter_site(site);
  exec_dsod(site, nullptr);
  EvalCtx ctx;
  ctx.state = arena_;
  ctx.io = &*io_;
  const uint64_t cmd = eval_expr(*site.cmd_expr, ctx);
  if (observer_ != nullptr) {
    observer_->command(id, cmd);
  }
  return cmd;
}

void InstrumentationContext::command_end(SiteId id) {
  const SiteDesc& site = program_->site(id);
  SEDSPEC_REQUIRE_MSG(site.kind == BlockKind::kCmdEnd,
                      "command_end() on non-cmd-end site " + site.name);
  enter_site(site);
  exec_dsod(site, nullptr);
  if (observer_ != nullptr) {
    observer_->command_end(id);
  }
}

void InstrumentationContext::set_local(LocalId id, uint64_t value) {
  arena_->set_local(id, value);
}

bool InstrumentationContext::watchdog(uint32_t& counter, uint32_t limit,
                                      const char* note) {
  if (++counter < limit) {
    return false;
  }
  if (incident_fn_) {
    incident_fn_(
        Incident{IncidentKind::kRunawayLoop, kInvalidParam, counter, note});
  }
  log_warn("vdev") << "watchdog tripped (" << note << ") after " << counter
                   << " iterations";
  return true;
}

}  // namespace sedspec
