#include "vdev/device.h"

#include "vdev/bus.h"

namespace sedspec {

void Device::backend_delay() const { spin_wait_ns(backend_latency_ns_); }

Device::Device(const DeviceProgram* program)
    : program_(program),
      arena_(&program->layout()),
      ictx_(program, &arena_, [this](const Incident& i) { record_incident(i); }) {
  arena_.set_incident_fn([this](const Incident& i) { record_incident(i); });
}

void Device::reset() {
  arena_.reset();
  halted_ = false;
  reset_device();
}

std::optional<uint64_t> Device::resolve_sync(LocalId /*local*/,
                                             const IoAccess& /*io*/,
                                             const StateAccess& /*view*/) {
  return std::nullopt;
}

bool Device::has_incident(IncidentKind kind) const {
  for (const Incident& i : incidents_) {
    if (i.kind == kind) {
      return true;
    }
  }
  return false;
}

}  // namespace sedspec
