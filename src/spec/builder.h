// ES-CFG construction — Algorithm 1 of the paper, plus control-flow
// reduction (§V-C) and data-dependency recovery application (§V-D).
//
// Inputs: the device-state-change logs (ds_logs), the device "source"
// (DeviceProgram, standing in for ed_sc), the CFG analyzer's parameter
// selection, and the dataflow recovery plan. Output: the ES-CFG and the
// command access control table (embedded in the EsCfg).
//
// Construction is observational: blocks and edges are added exactly as the
// logs traverse them. A BuildError signals an inconsistency that indicates
// a device instrumentation bug (e.g. the same plain block observed with two
// different successors — state-dependent branching that was not expressed
// through a conditional site).
#pragma once

#include <stdexcept>

#include "cfg/analyzer.h"
#include "dataflow/dataflow.h"
#include "spec/es_cfg.h"
#include "statelog/statelog.h"

namespace sedspec::spec {

class BuildError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class EsCfgBuilder {
 public:
  EsCfgBuilder(const sedspec::DeviceProgram* program,
               cfg::ParamSelection selection,
               dataflow::RecoveryPlan recovery);

  /// Feeds one training log (may be called many times; logs merge).
  void add_log(const statelog::DeviceStateLog& log);

  /// Applies control-flow reduction, validates, and returns the final
  /// ES-CFG. The builder is spent afterwards.
  [[nodiscard]] EsCfg finalize();

  /// Convenience: full pipeline over a single merged log.
  [[nodiscard]] static EsCfg build(const sedspec::DeviceProgram& program,
                                   const cfg::ParamSelection& selection,
                                   const dataflow::RecoveryPlan& recovery,
                                   const statelog::DeviceStateLog& log);

 private:
  struct PendingEdge {
    enum class Kind : uint8_t { kNone, kSeq, kBranch, kCmd } kind = Kind::kNone;
    SiteId from = sedspec::kInvalidSite;
    bool taken = false;
    uint64_t cmd = 0;
  };

  EsBlock& ensure_block(SiteId site);
  void connect(const PendingEdge& edge, SiteId to);
  void finish_round(const PendingEdge& edge);
  [[nodiscard]] StmtList filter_dsod(const sedspec::StmtList& dsod);

  void reduce(EsCfg* out);

  const sedspec::DeviceProgram* program_;
  cfg::ParamSelection selection_;
  dataflow::RecoveryPlan recovery_;
  EsCfg cfg_;
  bool finalized_ = false;
};

}  // namespace sedspec::spec
