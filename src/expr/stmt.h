// Statements: the Device State Operation Data (DSOD) vocabulary.
//
// A device program block's DSOD is a list of these statements (paper §V-A:
// "DSOD comprises source code statements that manipulate the device
// state"). Four forms suffice for the five devices:
//   assign        field  = expr
//   assign_local  local  = expr           (dataflow-recovery subject)
//   buf_store     field[index] = expr     (single element)
//   buf_fill      field[index .. index+count) = <native data>  (bulk copy;
//                 only the extent matters to the checker)
#pragma once

#include <string>
#include <vector>

#include "expr/expr.h"

namespace sedspec {

enum class StmtKind : uint8_t {
  kAssignParam,
  kAssignLocal,
  kBufStore,
  kBufFill,
};

struct Stmt {
  StmtKind kind = StmtKind::kAssignParam;
  ParamId param = kInvalidParam;  // target field (assign / buf_*)
  LocalId local = 0;              // target local (assign_local)
  ExprRef value;                  // assign / assign_local / buf_store
  ExprRef index;                  // buf_store / buf_fill
  ExprRef count;                  // buf_fill
  std::string note;               // source-line-like annotation
};

using StmtList = std::vector<Stmt>;

/// Pretty-prints a statement for diagnostics and the spec-inspector example.
std::string to_string(const Stmt& s);

// --- Builders ---------------------------------------------------------------
namespace sb {

Stmt assign(ParamId field, ExprRef value, std::string note = {});
Stmt assign_local(LocalId local, ExprRef value, std::string note = {});
Stmt buf_store(ParamId buffer, ExprRef index, ExprRef value,
               std::string note = {});
Stmt buf_fill(ParamId buffer, ExprRef index, ExprRef count,
              std::string note = {});

}  // namespace sb

}  // namespace sedspec
