#include "cfg/itc_cfg.h"

#include "common/assert.h"

namespace sedspec::cfg {

const ItcNode* ItcCfg::node(FuncAddr addr) const {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : &it->second;
}

size_t ItcCfg::edge_count() const {
  size_t n = 0;
  for (const auto& [addr, node] : nodes_) {
    n += node.succ_seq.size() + node.succ_taken.size() +
         node.succ_not_taken.size();
  }
  return n;
}

void ItcCfgBuilder::feed(const trace::TraceEvent& event) {
  using trace::EventKind;
  switch (event.kind) {
    case EventKind::kPge:
      in_window_ = true;
      window_fresh_ = true;
      prev_.reset();
      pending_tnt_.reset();
      ++cfg_.windows_;
      break;
    case EventKind::kPgd:
      if (prev_.has_value()) {
        ++cfg_.nodes_[*prev_].window_ends;
      }
      in_window_ = false;
      prev_.reset();
      pending_tnt_.reset();
      break;
    case EventKind::kTnt:
      if (!in_window_) {
        break;
      }
      SEDSPEC_REQUIRE_MSG(!pending_tnt_.has_value(),
                          "two TNT bits without an intervening TIP");
      pending_tnt_ = event.taken;
      break;
    case EventKind::kTip: {
      if (!in_window_) {
        break;
      }
      ItcNode& node = cfg_.nodes_[event.addr];
      node.addr = event.addr;
      ++node.visits;
      if (window_fresh_) {
        cfg_.heads_.insert(event.addr);
        window_fresh_ = false;
      }
      if (prev_.has_value()) {
        ItcNode& from = cfg_.nodes_[*prev_];
        if (pending_tnt_.has_value()) {
          auto& edges = *pending_tnt_ ? from.succ_taken : from.succ_not_taken;
          ++edges[event.addr];
        } else {
          ++from.succ_seq[event.addr];
        }
      }
      prev_ = event.addr;
      pending_tnt_.reset();
      break;
    }
  }
}

void ItcCfgBuilder::feed_all(const std::vector<trace::TraceEvent>& events) {
  for (const trace::TraceEvent& e : events) {
    feed(e);
  }
}

ItcCfg ItcCfgBuilder::take() { return std::move(cfg_); }

}  // namespace sedspec::cfg
