
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arena_layout_test.cc" "tests/CMakeFiles/sedspec_tests.dir/arena_layout_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/arena_layout_test.cc.o.d"
  "/root/repo/tests/benchsim_test.cc" "tests/CMakeFiles/sedspec_tests.dir/benchsim_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/benchsim_test.cc.o.d"
  "/root/repo/tests/checker_behavior_test.cc" "tests/CMakeFiles/sedspec_tests.dir/checker_behavior_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/checker_behavior_test.cc.o.d"
  "/root/repo/tests/checker_set_test.cc" "tests/CMakeFiles/sedspec_tests.dir/checker_set_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/checker_set_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/sedspec_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/dataflow_test.cc" "tests/CMakeFiles/sedspec_tests.dir/dataflow_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/dataflow_test.cc.o.d"
  "/root/repo/tests/device_units_test.cc" "tests/CMakeFiles/sedspec_tests.dir/device_units_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/device_units_test.cc.o.d"
  "/root/repo/tests/ehci_pipeline_test.cc" "tests/CMakeFiles/sedspec_tests.dir/ehci_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/ehci_pipeline_test.cc.o.d"
  "/root/repo/tests/esp_pipeline_test.cc" "tests/CMakeFiles/sedspec_tests.dir/esp_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/esp_pipeline_test.cc.o.d"
  "/root/repo/tests/exploit_matrix_test.cc" "tests/CMakeFiles/sedspec_tests.dir/exploit_matrix_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/exploit_matrix_test.cc.o.d"
  "/root/repo/tests/expr_eval_test.cc" "tests/CMakeFiles/sedspec_tests.dir/expr_eval_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/expr_eval_test.cc.o.d"
  "/root/repo/tests/expr_serial_test.cc" "tests/CMakeFiles/sedspec_tests.dir/expr_serial_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/expr_serial_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/sedspec_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/fdc_pipeline_test.cc" "tests/CMakeFiles/sedspec_tests.dir/fdc_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/fdc_pipeline_test.cc.o.d"
  "/root/repo/tests/fuzz_robustness_test.cc" "tests/CMakeFiles/sedspec_tests.dir/fuzz_robustness_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/fuzz_robustness_test.cc.o.d"
  "/root/repo/tests/pcnet_pipeline_test.cc" "tests/CMakeFiles/sedspec_tests.dir/pcnet_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/pcnet_pipeline_test.cc.o.d"
  "/root/repo/tests/program_model_test.cc" "tests/CMakeFiles/sedspec_tests.dir/program_model_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/program_model_test.cc.o.d"
  "/root/repo/tests/qtest_test.cc" "tests/CMakeFiles/sedspec_tests.dir/qtest_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/qtest_test.cc.o.d"
  "/root/repo/tests/sdhci_pipeline_test.cc" "tests/CMakeFiles/sedspec_tests.dir/sdhci_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/sdhci_pipeline_test.cc.o.d"
  "/root/repo/tests/spec_builder_test.cc" "tests/CMakeFiles/sedspec_tests.dir/spec_builder_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/spec_builder_test.cc.o.d"
  "/root/repo/tests/statelog_test.cc" "tests/CMakeFiles/sedspec_tests.dir/statelog_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/statelog_test.cc.o.d"
  "/root/repo/tests/test_main.cc" "tests/CMakeFiles/sedspec_tests.dir/test_main.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/test_main.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/sedspec_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/vdev_test.cc" "tests/CMakeFiles/sedspec_tests.dir/vdev_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/vdev_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/sedspec_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/sedspec_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sedspec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
