#include "checker/checker_set.h"

namespace sedspec::checker {

EsChecker* CheckerSet::attach(const spec::EsCfg& cfg, Device& device,
                              CheckerConfig config) {
  auto checker = std::make_unique<EsChecker>(&cfg, &device, config);
  EsChecker* raw = checker.get();
  checkers_[&device] = std::move(checker);
  device.set_internal_activity_hook([raw] { raw->resync(); });
  return raw;
}

EsChecker* CheckerSet::attach(spec::SnapshotRef snapshot, Device& device,
                              CheckerConfig config) {
  auto checker =
      std::make_unique<EsChecker>(std::move(snapshot), &device, config);
  EsChecker* raw = checker.get();
  checkers_[&device] = std::move(checker);
  device.set_internal_activity_hook([raw] { raw->resync(); });
  return raw;
}

EsChecker* CheckerSet::checker_for(const Device& device) const {
  auto it = checkers_.find(&device);
  return it == checkers_.end() ? nullptr : it->second.get();
}

CheckerStats CheckerSet::aggregate_stats() const {
  CheckerStats total;
  for (const auto& [device, checker] : checkers_) {
    total.merge(checker->stats());
  }
  return total;
}

void CheckerSet::publish_metrics(obs::MetricsRegistry& registry) const {
  for (const auto& [device, checker] : checkers_) {
    checker->publish_metrics(registry);
  }
  publish_checker_stats(registry, "fleet", aggregate_stats());
}

bool CheckerSet::before_access(Device& device, const IoAccess& io) {
  EsChecker* checker = checker_for(device);
  return checker == nullptr || checker->before_access(device, io);
}

void CheckerSet::after_access(Device& device, const IoAccess& io) {
  if (EsChecker* checker = checker_for(device); checker != nullptr) {
    checker->after_access(device, io);
  }
}

}  // namespace sedspec::checker
