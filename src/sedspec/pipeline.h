// End-to-end SEDSpec pipeline facade (paper Fig. 1).
//
// Phase 1 (data collection): run the benign training workload under the
//   IPT-style tracer, build the ITC-CFG, select device-state parameters and
//   the observation plan; re-run the workload with observation points armed
//   to produce the device-state-change log.
// Phase 2 (specification construction): run data-dependency recovery and
//   Algorithm 1 over the log, apply control-flow reduction.
// Phase 3 (runtime protection): deploy an ES-Checker as the bus proxy.
//
// The training workload is a callback that drives the device through benign
// I/O (typically via the guest driver models in src/guest). It runs twice
// (trace pass + observation pass), with a device reset in between, exactly
// like the paper's two collection passes.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cfg/analyzer.h"
#include "checker/checker.h"
#include "dataflow/dataflow.h"
#include "spec/builder.h"
#include "spec/serial.h"
#include "statelog/statelog.h"
#include "trace/encoder.h"
#include "vdev/bus.h"

namespace sedspec::pipeline {

struct CollectionResult {
  cfg::ItcCfg itc_cfg;
  cfg::ParamSelection selection;
  dataflow::RecoveryPlan recovery;
  statelog::DeviceStateLog log;
  size_t trace_bytes = 0;
};

struct CollectOptions {
  /// Fault-injection seam (faultinject layer 2): invoked on the raw packet
  /// buffer between the tracer and the ITC-CFG decoder, where a lossy or
  /// garbling trace transport would sit. The tap may drop, duplicate, or
  /// corrupt packets in place.
  std::function<void(std::vector<uint8_t>&)> packet_tap;
};

/// Phase 1: trace pass + analysis + observation pass.
CollectionResult collect(Device& device,
                         const std::function<void()>& training,
                         const CollectOptions& options);
CollectionResult collect(Device& device,
                         const std::function<void()>& training);

/// Phase 2: Algorithm 1 + reduction over a collection result.
[[nodiscard]] spec::EsCfg construct(Device& device,
                                    const CollectionResult& collection);

/// Phases 1+2 in one call. The device is reset before returning.
[[nodiscard]] spec::EsCfg build_spec(Device& device,
                                     const std::function<void()>& training);

/// One device's phase-1+2 job for build_specs_parallel. The device (and
/// everything its training callback touches) must be private to the job:
/// jobs run concurrently, one per thread.
struct SpecBuildJob {
  Device* device = nullptr;
  std::function<void()> training;
};

/// Runs build_spec for every job concurrently (one thread per job — spec
/// construction for a whole device fleet is the paper's offline phase, and
/// the five evaluation devices build independently). Results are returned
/// in job order. The first exception any job raises is rethrown after all
/// threads have joined.
[[nodiscard]] std::vector<spec::EsCfg> build_specs_parallel(
    const std::vector<SpecBuildJob>& jobs);

/// Phase 3: create a checker and install it as the bus proxy.
[[nodiscard]] std::unique_ptr<checker::EsChecker> deploy(
    const spec::EsCfg& cfg, Device& device, IoBus& bus,
    checker::CheckerConfig config = {});

/// Phase 3 from persisted bytes. On any defect — corrupt envelope,
/// malformed payload, spec/device name mismatch — no checker is installed
/// (the bus proxy is untouched) and `error` says why. This is the
/// trust boundary a real deployment crosses when it loads a specification
/// from storage; it must reject, never abort.
struct DeployOutcome {
  std::unique_ptr<checker::EsChecker> checker;
  /// Owns the deserialized spec the checker points into.
  std::unique_ptr<spec::EsCfg> cfg;
  spec::LoadError error;

  [[nodiscard]] bool ok() const { return checker != nullptr; }
};

[[nodiscard]] DeployOutcome deploy_serialized(
    std::span<const uint8_t> bytes, Device& device, IoBus& bus,
    checker::CheckerConfig config = {});

}  // namespace sedspec::pipeline
