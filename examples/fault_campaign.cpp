// fault_campaign — run the deterministic fault-injection campaign.
//
// Sweeps faults across all four injection layers (spec persistence, trace
// transport, DMA, checker-internal) and all five devices, once per failure
// policy, and prints the outcome distribution. The acceptance bar: zero
// escaped exceptions, zero bus-backstop hits, every fault accounted.
//
// Usage: fault_campaign [seed ...]
//   default seeds: 0xf00d 0xbead 0xcafe 0x5eed
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "faultinject/campaign.h"

using namespace sedspec;

int main(int argc, char** argv) {
  std::vector<uint64_t> seeds;
  for (int i = 1; i < argc; ++i) {
    seeds.push_back(std::strtoull(argv[i], nullptr, 0));
  }
  if (seeds.empty()) {
    seeds = {0xf00d, 0xbead, 0xcafe, 0x5eed};
  }

  bool ok = true;
  for (const uint64_t seed : seeds) {
    for (const auto policy : {checker::FailurePolicy::kFailClosed,
                              checker::FailurePolicy::kFailOpen}) {
      faultinject::CampaignConfig config;
      config.seed = seed;
      config.policy = policy;
      const faultinject::CampaignResult result =
          faultinject::run_campaign(config);
      const faultinject::LayerOutcomes total = result.total();

      std::printf("=== seed 0x%llx, policy %s: %llu faults across %llu "
                  "devices ===\n",
                  static_cast<unsigned long long>(seed),
                  std::string(checker::failure_policy_name(policy)).c_str(),
                  static_cast<unsigned long long>(total.injected),
                  static_cast<unsigned long long>(result.devices_run));
      std::printf("%s", result.describe().c_str());

      bool accounted = true;
      for (const faultinject::LayerOutcomes& o : result.by_layer) {
        accounted = accounted && o.accounted();
      }
      if (total.escaped != 0 || result.proxy_faults != 0 || !accounted) {
        std::printf("FAILED: escapes=%llu backstop=%llu accounted=%d\n",
                    static_cast<unsigned long long>(total.escaped),
                    static_cast<unsigned long long>(result.proxy_faults),
                    accounted ? 1 : 0);
        ok = false;
      }
      std::printf("\n");
    }
  }
  std::printf(ok ? "campaign PASSED\n" : "campaign FAILED\n");
  return ok ? 0 : 1;
}
