#include "program/layout.h"

#include "common/assert.h"

namespace sedspec {

std::string field_kind_name(FieldKind k) {
  switch (k) {
    case FieldKind::kRegister:
      return "register";
    case FieldKind::kBuffer:
      return "buffer";
    case FieldKind::kLength:
      return "length";
    case FieldKind::kIndex:
      return "index";
    case FieldKind::kFuncPtr:
      return "funcptr";
    case FieldKind::kFlag:
      return "flag";
    case FieldKind::kOther:
      return "other";
  }
  return "?";
}

ParamId StateLayout::append(FieldDesc desc, uint32_t align) {
  SEDSPEC_REQUIRE(fields_.size() < kInvalidParam);
  // Natural alignment, like a C struct without packing.
  arena_size_ = (arena_size_ + align - 1) & ~(align - 1);
  desc.offset = arena_size_;
  arena_size_ += desc.size;
  fields_.push_back(std::move(desc));
  return static_cast<ParamId>(fields_.size() - 1);
}

ParamId StateLayout::add_scalar(std::string name, FieldKind kind,
                                IntType type) {
  SEDSPEC_REQUIRE_MSG(!find(name).has_value(), "duplicate field " + name);
  FieldDesc d;
  d.name = std::move(name);
  d.kind = kind;
  d.type = type;
  d.size = bits_of(type) / 8;
  return append(std::move(d), d.size);
}

ParamId StateLayout::add_buffer(std::string name, uint32_t elem_size,
                                uint32_t count) {
  SEDSPEC_REQUIRE_MSG(!find(name).has_value(), "duplicate field " + name);
  SEDSPEC_REQUIRE(elem_size == 1 || elem_size == 2 || elem_size == 4 ||
                  elem_size == 8);
  SEDSPEC_REQUIRE(count > 0);
  FieldDesc d;
  d.name = std::move(name);
  d.kind = FieldKind::kBuffer;
  d.type = unsigned_type_for_size(elem_size);
  d.elem_size = elem_size;
  d.count = count;
  d.size = elem_size * count;
  return append(std::move(d), elem_size);
}

ParamId StateLayout::add_funcptr(std::string name) {
  SEDSPEC_REQUIRE_MSG(!find(name).has_value(), "duplicate field " + name);
  FieldDesc d;
  d.name = std::move(name);
  d.kind = FieldKind::kFuncPtr;
  d.type = IntType::kU64;
  d.size = 8;
  return append(std::move(d), 8);
}

const FieldDesc& StateLayout::field(ParamId id) const {
  SEDSPEC_REQUIRE(id < fields_.size());
  return fields_[id];
}

std::optional<ParamId> StateLayout::find(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) {
      return static_cast<ParamId>(i);
    }
  }
  return std::nullopt;
}

std::optional<ParamId> StateLayout::field_at_offset(uint32_t offset) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    const FieldDesc& f = fields_[i];
    if (offset >= f.offset && offset < f.offset + f.size) {
      return static_cast<ParamId>(i);
    }
  }
  return std::nullopt;
}

}  // namespace sedspec
