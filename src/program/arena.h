// StateArena — a control structure as a byte arena.
//
// Backs both sides of SEDSpec:
//  - a device's live control structure (out-of-bounds buffer stores corrupt
//    adjacent fields within the arena, just like the real C struct; escapes
//    beyond the arena are recorded as kStructEscape incidents and dropped);
//  - the ES-Checker's shadow device state (paper §V-A: "a separate data
//    structure ... initialized with the values from the emulated device
//    control structure upon booting"), where the same out-of-bounds event
//    is reported through EvalDiag and *also* applied within the arena so the
//    shadow models the corruption an exploit would cause (this is what lets
//    the indirect-jump check see a clobbered function pointer).
#pragma once

#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "expr/eval.h"
#include "program/incident.h"
#include "program/layout.h"

namespace sedspec {

class StateArena final : public StateAccess {
 public:
  using IncidentFn = std::function<void(const Incident&)>;

  explicit StateArena(const StateLayout* layout);

  // StateAccess ---------------------------------------------------------
  [[nodiscard]] uint64_t param(ParamId id) const override;
  void set_param(ParamId id, uint64_t raw) override;
  uint64_t buf_load(ParamId id, uint64_t index, EvalDiag* diag) override;
  void buf_store(ParamId id, uint64_t index, uint64_t raw,
                 EvalDiag* diag) override;
  void buf_fill(ParamId id, uint64_t index, uint64_t count,
                EvalDiag* diag) override;
  bool local(LocalId id, uint64_t* out) const override;
  void set_local(LocalId id, uint64_t raw) override;
  [[nodiscard]] uint64_t buf_peek(ParamId id, uint64_t index) const override;

  // Arena management ------------------------------------------------------
  /// Zeroes the arena and clears locals.
  void reset();
  /// Locals live for one I/O round only.
  void clear_locals();
  /// Copies another arena's bytes (same layout required). Used to initialize
  /// the checker's shadow state from the device at boot, and to snapshot.
  void copy_from(const StateArena& other);

  [[nodiscard]] const StateLayout& layout() const { return *layout_; }
  [[nodiscard]] std::span<const uint8_t> bytes() const { return bytes_; }

  /// Direct (bounds-checked against the arena only) byte span of a buffer
  /// field — the device-native path for moving real data in and out.
  [[nodiscard]] std::span<uint8_t> buffer_span(ParamId id);
  [[nodiscard]] std::span<const uint8_t> buffer_span(ParamId id) const;

  /// Writable span for a bulk region previously validated by buf_fill; the
  /// region is clamped to the arena. Devices use this to copy actual data.
  [[nodiscard]] std::span<uint8_t> fill_region(ParamId id, uint64_t index,
                                               uint64_t count);

  /// Installed on device-side arenas: receives ground-truth incidents.
  void set_incident_fn(IncidentFn fn) { incident_fn_ = std::move(fn); }

  /// Convenience typed accessors (device-native reads/writes of own fields;
  /// no instrumentation semantics).
  [[nodiscard]] uint64_t get(ParamId id) const { return param(id); }
  void set(ParamId id, uint64_t raw) { set_param(id, raw); }

  /// Pre-resolved scalar access for the compiled check engine: offset/size
  /// come from this layout's own FieldDesc and are re-verified against
  /// arena_size() when a bytecode program attaches, so the per-access field
  /// lookup is skipped. Bytes are little-endian raw, exactly as param()/
  /// set_param() read and write scalar fields (the caller applies the
  /// field-type truncation set_param() would).
  [[nodiscard]] uint64_t load_scalar(uint32_t offset, uint32_t size) const {
    uint64_t v = 0;
    std::memcpy(&v, bytes_.data() + offset, size);
    return v;
  }
  void store_scalar(uint32_t offset, uint32_t size, uint64_t raw) {
    std::memcpy(bytes_.data() + offset, &raw, size);
  }

 private:
  struct Resolved {
    bool in_bounds = false;     // within the field's own extent
    bool in_arena = false;      // within the whole structure
    int64_t byte_offset = 0;    // signed start offset within the arena
    uint64_t byte_len = 0;
  };

  /// Resolves element `index` (interpreted as signed, so negative indices
  /// reach *earlier* fields, as with a real C pointer) of buffer `id`.
  [[nodiscard]] Resolved resolve(ParamId id, uint64_t index,
                                 uint64_t count) const;

  void report(IncidentKind kind, ParamId field, uint64_t detail,
              const std::string& note) const;

  [[nodiscard]] uint64_t load_raw(uint32_t offset, uint32_t size) const;
  void store_raw(uint32_t offset, uint32_t size, uint64_t raw);

  const StateLayout* layout_;
  std::vector<uint8_t> bytes_;
  std::vector<uint64_t> local_values_;
  std::vector<bool> local_set_;
  IncidentFn incident_fn_;
};

}  // namespace sedspec
