#include "sedspec/enforcement.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "common/assert.h"
#include "common/log.h"
#include "common/rng.h"
#include "obs/flight.h"
#include "sedspec/pipeline.h"

namespace sedspec::enforce {

size_t RunReport::count(checker::Report::Kind kind) const {
  size_t n = 0;
  for (const checker::Report& r : reports) {
    if (r.kind == kind) {
      ++n;
    }
  }
  return n;
}

void publish_device_specs(spec::SpecStore& store,
                          const std::vector<std::string>& devices) {
  // Spec construction needs a throwaway device instance per type (the
  // training run mutates it); the produced ES-CFG is device-instance-
  // independent and is what the store shares across shards.
  std::vector<std::unique_ptr<guest::DeviceWorkload>> workloads;
  std::vector<pipeline::SpecBuildJob> jobs;
  workloads.reserve(devices.size());
  jobs.reserve(devices.size());
  for (const std::string& name : devices) {
    workloads.push_back(guest::make_workload(name));
    guest::DeviceWorkload* w = workloads.back().get();
    jobs.push_back(pipeline::SpecBuildJob{&w->device(), [w] { w->training(); }});
  }
  std::vector<spec::EsCfg> specs = pipeline::build_specs_parallel(jobs);
  for (spec::EsCfg& cfg : specs) {
    const spec::SnapshotRef snap = store.publish(std::move(cfg));
    log_info("enforce") << "published spec '" << snap->device_name
                        << "' v" << snap->version;
  }
}

EnforcementService::EnforcementService(spec::SpecStore* store,
                                       ServiceConfig config)
    : store_(store), config_(config) {
  SEDSPEC_REQUIRE(store != nullptr);
}

namespace {

/// Shadow-mode composite proxy: the candidate checker evaluates every
/// access the active checker does, but only the active verdict gates the
/// bus. Candidate-first ordering plus the candidate's forced monitor-only
/// config means a candidate finding can never turn into a block — the
/// rollout engine's core safety property.
class ShadowPair final : public IoProxy {
 public:
  ShadowPair(checker::EsChecker* active, checker::EsChecker* candidate)
      : active_(active), candidate_(candidate) {}

  bool before_access(Device& device, const IoAccess& io) override {
    candidate_->before_access(device, io);
    const bool allow = active_->before_access(device, io);
    if (!candidate_->last_result().clean() &&
        active_->last_result().clean()) {
      // The candidate flagged a round the active spec passed: the
      // would-be-false-positive signature (an over-tight candidate would
      // break benign I/O if promoted).
      ++would_block_;
    }
    if (!allow) {
      // The active checker vetoed (or quarantined) — its recovery path may
      // have reset the device, so resynchronize the candidate's shadow to
      // keep the two simulations coherent.
      candidate_->resync();
    }
    return allow;
  }

  void after_access(Device& device, const IoAccess& io) override {
    active_->after_access(device, io);
    candidate_->after_access(device, io);
  }

  [[nodiscard]] uint64_t would_block() const { return would_block_; }

 private:
  checker::EsChecker* active_;
  checker::EsChecker* candidate_;
  uint64_t would_block_ = 0;
};

/// Shadow candidates observe, never enforce: monitor-only (no block/halt),
/// fail-open (an internal candidate fault must not quarantine-reset the
/// device the ACTIVE checker is protecting), no rollback checkpointing.
checker::CheckerConfig shadow_config(checker::CheckerConfig base) {
  base.monitor_only = true;
  base.mode = checker::Mode::kEnhancement;
  base.failure_policy = checker::FailurePolicy::kFailOpen;
  base.rollback_on_violation = false;
  if (!base.metrics_label.empty()) {
    base.metrics_label += "~cand";
  }
  return base;
}

}  // namespace

void EnforcementService::run_shard(const ShardSpec& spec, uint32_t shard_id,
                                   checker::ReportQueue& queue,
                                   ShardResult& result) {
  std::unique_ptr<guest::DeviceWorkload> workload =
      guest::make_workload(spec.device);
  IoBus& bus = workload->bus();
  bus.set_access_latency_ns(config_.bus_access_latency_ns);
  bus.set_access_latency_model(config_.latency_model);
  if (config_.bind_bus_owners) {
    bus.bind_owner_thread();
  }

  const std::string vm =
      spec.vm.empty() ? "vm" + std::to_string(shard_id) : spec.vm;
  Rng rng(spec.seed);
  Rng backoff_rng = rng.fork();  // independent jitter stream
  obs::Counter* retry_counter = &obs::metrics().counter(
      "redeploy_retries_total",
      obs::label({{"shard", std::to_string(shard_id)}}));

  const control::PolicyTree* pt = config_.policy;
  uint64_t policy_version = pt == nullptr ? 0 : pt->version();
  auto policy_bits = [&]() {
    return pt == nullptr ? control::PolicyBits{}
                         : pt->effective(vm, spec.device);
  };
  // Enforcement is on unless the shard opted out AND no policy layer
  // overrides the opt-out (tighten-only: the fleet can force it back on,
  // nothing can force it off).
  auto should_protect = [&]() {
    return !spec.unprotected || policy_bits().enforce;
  };

  // Spec distribution with bounded retry: transient fetch failures back
  // off exponentially with jitter; exhaustion leaves the shard on its
  // pinned last-known-good snapshot.
  auto fetch_with_retry = [&](bool count_failure) -> spec::SnapshotRef {
    for (uint32_t attempt = 0;; ++attempt) {
      spec::SnapshotRef out;
      spec::LoadError err;
      if (config_.spec_fetch) {
        err = config_.spec_fetch(spec.device, out);
      } else {
        out = store_->current(spec.device);
      }
      if (err.ok()) {
        return out;
      }
      if (attempt >= config_.redeploy_max_retries) {
        if (count_failure) {
          ++result.redeploy_failures;
          log_warn("enforce")
              << spec.device << "#" << shard_id
              << ": spec fetch failed after " << attempt
              << " retries, staying on last-known-good (" << err.describe()
              << ")";
        }
        return nullptr;
      }
      ++result.stats.redeploy_retries;
      retry_counter->inc();
      const uint64_t cap = std::max<uint64_t>(
          1, std::min(config_.redeploy_backoff_base_us << attempt,
                      config_.redeploy_backoff_max_us));
      const uint64_t jittered = cap / 2 + backoff_rng.below(cap / 2 + 1);
      std::this_thread::sleep_for(std::chrono::microseconds(jittered));
    }
  };

  // Operation index the checker_hook seam reports; advanced by the op
  // loop so mid-run redeploys re-arm with the right position.
  uint64_t hook_op = 0;

  // The live deployment: active checker, optional shadow candidate, and
  // the proxy actually installed on the bus. Swapped as one unit between
  // guest operations.
  struct Deployment {
    std::unique_ptr<checker::EsChecker> active;
    std::unique_ptr<checker::EsChecker> candidate;
    std::unique_ptr<ShadowPair> pair;
  };
  Deployment dep;

  // Folds the outgoing deployment's counters into the result. Called
  // before every swap and once at the end.
  auto accumulate = [&] {
    if (dep.active != nullptr) {
      result.stats.merge(dep.active->stats());
    }
    if (dep.candidate != nullptr) {
      result.shadow_stats.merge(dep.candidate->stats());
      result.shadow_spec_version = dep.candidate->spec_version();
    }
    if (dep.pair != nullptr) {
      result.shadow_would_block += dep.pair->would_block();
    }
  };

  auto candidate_snapshot = [&]() -> spec::SnapshotRef {
    if (!spec.shadow_candidate || config_.candidate_store == nullptr) {
      return nullptr;
    }
    return config_.candidate_store->current(spec.device);
  };

  // (Re)deploys from the given snapshots: fresh checkers wired to the
  // shared report queue, installed as this shard's bus proxy strictly
  // between guest operations. Policy is applied at every deploy, so the
  // effective config always reflects the latest policy write.
  auto deploy = [&](spec::SnapshotRef active_snap,
                    spec::SnapshotRef cand_snap) {
    accumulate();
    checker::CheckerConfig ccfg = spec.checker;
    if (ccfg.metrics_label.empty()) {
      ccfg.metrics_label = spec.device + "#" + std::to_string(shard_id);
    }
    if (pt != nullptr) {
      ccfg = control::apply_policy(policy_bits(), ccfg);
    }
    Deployment next;
    checker::CheckerHooks hooks;
    hooks.report_sink = &queue;
    hooks.shard_id = shard_id;
    if (config_.flight != nullptr) {
      hooks.local_tracer =
          &config_.flight->shard_ring(shard_id % config_.flight->shards());
    }
    next.active = std::make_unique<checker::EsChecker>(
        std::move(active_snap), &workload->device(), ccfg, std::move(hooks));
    if (cand_snap != nullptr) {
      next.candidate = std::make_unique<checker::EsChecker>(
          std::move(cand_snap), &workload->device(), shadow_config(ccfg));
      next.pair = std::make_unique<ShadowPair>(next.active.get(),
                                               next.candidate.get());
      bus.set_proxy(next.pair.get());
    } else {
      bus.set_proxy(next.active.get());
    }
    checker::EsChecker* a = next.active.get();
    checker::EsChecker* c = next.candidate.get();
    workload->device().set_internal_activity_hook([a, c] {
      a->resync();
      if (c != nullptr) {
        c->resync();
      }
    });
    dep = std::move(next);
    // Re-arm seam: checker-local state (fault hooks, flight wiring beyond
    // the recorder ring) dies with the outgoing checker.
    if (spec.checker_hook) {
      spec.checker_hook(hook_op, *dep.active);
    }
  };

  auto undeploy = [&] {
    accumulate();
    bus.set_proxy(nullptr);
    workload->device().set_internal_activity_hook({});
    dep = {};
  };

  bool protecting = should_protect();
  if (protecting) {
    spec::SnapshotRef snap = fetch_with_retry(false);
    SEDSPEC_REQUIRE_MSG(snap != nullptr,
                        "no spec published for this shard's device type");
    deploy(std::move(snap), candidate_snapshot());
  }

  for (uint64_t i = 0; i < spec.ops; ++i) {
    if (spec.op_hook) {
      // Fault seam: a throwing hook models the shard crashing mid-window.
      spec.op_hook(i);
    }
    workload->common_operation(spec.mode, rng);
    ++result.ops;
    hook_op = i + 1;
    if (config_.spec_poll_ops == 0 || (i + 1) % config_.spec_poll_ops != 0) {
      continue;
    }
    // Poll-boundary seam: lets a burst scheduler adjust the live checker
    // at poll cadence even when no redeploy happens this round.
    if (spec.checker_hook && dep.active != nullptr) {
      spec.checker_hook(hook_op, *dep.active);
    }
    // Policy poll: one tighten anywhere in the tree redeploys this shard
    // with the newly-effective (never weaker) config.
    if (pt != nullptr && pt->version() != policy_version) {
      policy_version = pt->version();
      const bool want = should_protect();
      if (want && dep.active == nullptr) {
        spec::SnapshotRef snap = fetch_with_retry(true);
        if (snap != nullptr) {
          deploy(std::move(snap), candidate_snapshot());
          ++result.policy_redeploys;
        }
      } else if (dep.active != nullptr) {
        deploy(dep.active->snapshot(),
               dep.candidate == nullptr ? nullptr : dep.candidate->snapshot());
        ++result.policy_redeploys;
      }
      protecting = dep.active != nullptr;
    }
    if (dep.active == nullptr) {
      continue;
    }
    // Spec poll: on a version change fetch the new snapshot (with retry)
    // and swap checkers between rounds.
    const bool active_stale =
        store_->version_of(spec.device) != dep.active->spec_version();
    const spec::SnapshotRef cand = candidate_snapshot();
    const bool cand_stale =
        (cand == nullptr) != (dep.candidate == nullptr) ||
        (cand != nullptr && dep.candidate != nullptr &&
         cand->version != dep.candidate->spec_version());
    if (!active_stale && !cand_stale) {
      continue;
    }
    spec::SnapshotRef next_active =
        active_stale ? fetch_with_retry(true) : dep.active->snapshot();
    if (next_active == nullptr) {
      continue;  // fetch exhausted: stay on last-known-good this round
    }
    const bool version_changed =
        next_active->version != dep.active->spec_version();
    deploy(std::move(next_active), cand);
    if (version_changed) {
      ++result.redeploys;
      checker::Report r;
      r.kind = checker::Report::Kind::kRedeploy;
      r.shard = shard_id;
      r.value = dep.active->spec_version();
      queue.try_push(r);  // best-effort, counted by the queue either way
    }
  }

  result.ended_protected = dep.active != nullptr;
  if (dep.active != nullptr) {
    result.final_spec_version = dep.active->spec_version();
  }
  undeploy();
  result.bus_accesses = bus.access_count();
  result.bus_owner_violations = bus.owner_violations();
}

RunReport EnforcementService::run(const std::vector<ShardSpec>& shards) {
  RunReport report;
  report.shards.resize(shards.size());
  checker::ReportQueue queue(config_.report_queue_capacity);

  // Single consumer draining concurrently with the producers, so a burst
  // larger than the queue capacity is not automatically a loss.
  std::atomic<bool> producers_done{false};
  // Flight-recorder dumps run HERE, off the check path: the consumer maps
  // incident reports to bundle triggers as it drains (per-epoch dedup in
  // the recorder keeps violation storms from flooding bundles).
  obs::FlightRecorder* flight = config_.flight;
  auto flight_process = [&](size_t from) {
    if (flight == nullptr) {
      return;
    }
    for (size_t k = from; k < report.reports.size(); ++k) {
      const checker::Report& r = report.reports[k];
      obs::FlightTrigger trigger;
      switch (r.kind) {
        case checker::Report::Kind::kViolation:
          trigger = obs::FlightTrigger::kViolation;
          break;
        case checker::Report::Kind::kQuarantine:
          trigger = obs::FlightTrigger::kQuarantine;
          break;
        case checker::Report::Kind::kDegraded:
          // Degraded mode is entered via a contained internal fault —
          // watchdog trips included — so it maps to the watchdog trigger.
          trigger = obs::FlightTrigger::kWatchdog;
          break;
        default:
          continue;
      }
      flight->dump(trigger, r.shard % flight->shards(),
                   checker::report_kind_name(r.kind));
    }
  };
  std::thread consumer([&] {
    size_t flight_seen = 0;
    while (!producers_done.load(std::memory_order_acquire)) {
      if (queue.drain(report.reports) == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      flight_process(flight_seen);
      flight_seen = report.reports.size();
    }
    queue.drain(report.reports);  // final sweep after the last producer
    flight_process(flight_seen);
  });

  std::vector<std::thread> threads;
  threads.reserve(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    threads.emplace_back([&, i] {
      ShardResult& result = report.shards[i];
      result.device = shards[i].device;
      result.shard = static_cast<uint32_t>(i);
      try {
        run_shard(shards[i], static_cast<uint32_t>(i), queue, result);
      } catch (const std::exception& e) {
        result.error = e.what();
      } catch (...) {
        result.error = "unknown shard failure";
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  producers_done.store(true, std::memory_order_release);
  consumer.join();

  for (const ShardResult& s : report.shards) {
    report.fleet.merge(s.stats);
    report.shadow_fleet.merge(s.shadow_stats);
    report.total_ops += s.ops;
    report.total_redeploys += s.redeploys;
    report.total_shadow_would_block += s.shadow_would_block;
  }
  report.reports_pushed = queue.pushed();
  report.reports_dropped = queue.dropped();
  return report;
}

}  // namespace sedspec::enforce
