// Data-dependency recovery (paper §V-D).
//
// NBTD guards may reference variables that are not device-state parameters
// (locals). The paper uses angr to decide, per such variable, whether it
// "can be computed from the device state parameters":
//   - yes -> the computation replaces the variable in the NBTD;
//   - no  -> a sync point is inserted, and at runtime SEDSpec pauses,
//            reads the actual value from the device, and resumes.
//
// Our analyzer answers the same question over the DeviceProgram's statement
// universe with a def-use / reaching-definitions pass:
//   - a local with exactly one defining assign_local statement whose RHS
//     (after recursive inlining, depth-limited) references only device-state
//     parameters, I/O fields, and constants is *computable*;
//   - a local with zero DSOD definitions (it is set natively by the device,
//     e.g. a DMA-descriptor-derived length), multiple conflicting
//     definitions, or a definition chain that bottoms out in a native local
//     is a *sync point*.
#pragma once

#include <map>
#include <set>

#include "expr/expr.h"
#include "program/program.h"

namespace sedspec::dataflow {

using sedspec::DeviceProgram;
using sedspec::ExprRef;
using sedspec::LocalId;
using sedspec::ParamId;
using sedspec::SiteId;

struct RecoveryPlan {
  /// Locals replaceable by a parameter-only computation.
  std::map<LocalId, ExprRef> inline_defs;
  /// Locals that need a runtime sync point.
  std::set<LocalId> sync_points;

  [[nodiscard]] bool is_sync(LocalId id) const {
    return sync_points.contains(id);
  }
};

/// Analyzes every local referenced anywhere in the program.
RecoveryPlan analyze_dependencies(const DeviceProgram& program);

/// Rewrites an expression, substituting inlined local definitions. Locals in
/// `plan.sync_points` are left in place (resolved at runtime via the sync
/// mechanism). Returns the original pointer when nothing changed.
ExprRef rewrite(const ExprRef& expr, const RecoveryPlan& plan);

/// Locals referenced by `expr` (transitively through inline defs already
/// applied — call after rewrite() to get the residual sync-point set).
std::set<LocalId> referenced_locals(const ExprRef& expr);

}  // namespace sedspec::dataflow
