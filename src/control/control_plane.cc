#include "control/control_plane.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/assert.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "spec/serial.h"

namespace sedspec::control {

namespace {

std::string shard_vm(const enforce::ShardSpec& s, size_t index) {
  return s.vm.empty() ? "vm" + std::to_string(index) : s.vm;
}

std::string shard_base_label(const enforce::ShardSpec& s, size_t index) {
  return s.checker.metrics_label.empty()
             ? s.device + "#" + std::to_string(index)
             : s.checker.metrics_label;
}

uint64_t total_violations(const checker::CheckerStats& s) {
  return s.violations_by_strategy[0] + s.violations_by_strategy[1] +
         s.violations_by_strategy[2];
}

/// Confirmation window: the candidate IS active now, so its evidence is
/// the live fleet's — benign traffic blocked maps onto the would-block
/// guardrail (those ARE false positives, no longer hypothetical), and any
/// violation on benign traffic is candidate surplus over a zero baseline.
StageObservation confirm_observation(
    const std::vector<enforce::ShardSpec>& fleet,
    const std::vector<bool>& is_canary, const enforce::RunReport& report) {
  StageObservation o;
  for (size_t i = 0; i < report.shards.size(); ++i) {
    const enforce::ShardResult& s = report.shards[i];
    if (!s.ok()) {
      ++o.shard_failures;
    }
    o.quarantines += s.stats.quarantines;
    o.contained_faults += s.stats.contained_faults;
    if (i < is_canary.size() && is_canary[i]) {
      ++o.shadow_shards;
      o.shadow_rounds += s.stats.rounds;
      o.candidate_violations += total_violations(s.stats);
      o.would_block += s.stats.blocked;
    }
  }
  (void)fleet;
  o.report_drops = report.reports_dropped;
  return o;
}

}  // namespace

ControlPlane::ControlPlane(spec::SpecStore* active,
                           enforce::ServiceConfig service)
    : active_(active), service_(std::move(service)) {
  SEDSPEC_REQUIRE(active != nullptr);
}

spec::SnapshotRef ControlPlane::stage_candidate(spec::EsCfg cfg) {
  return candidate_.publish(std::move(cfg));
}

spec::LoadError ControlPlane::stage_candidate_serialized(
    std::span<const uint8_t> bytes) {
  spec::LoadResult result = spec::load(bytes);
  if (!result.ok()) {
    return result.error;
  }
  candidate_.publish(std::move(*result.cfg));
  return {};
}

void ControlPlane::persist(const RolloutRecord& rec) {
  std::vector<uint8_t> bytes = rec.serialize();
  if (persist_filter) {
    bytes = persist_filter(std::move(bytes));
  }
  journal_.push_back(std::move(bytes));
}

StageObservation ControlPlane::observe_window(
    const std::vector<enforce::ShardSpec>& fleet,
    const std::vector<bool>& is_canary, const enforce::RunReport& report,
    const std::string& window_tag) const {
  (void)window_tag;
  StageObservation o;
  obs::Histogram active_lat;
  obs::Histogram cand_lat;
  for (size_t i = 0; i < report.shards.size(); ++i) {
    const enforce::ShardResult& s = report.shards[i];
    // Failure-domain feed is fleet-wide: a crash or quarantine spike
    // anywhere in the window is evidence against the rollout.
    if (!s.ok()) {
      ++o.shard_failures;
    }
    o.quarantines += s.stats.quarantines;
    o.contained_faults += s.stats.contained_faults + s.shadow_stats.contained_faults;
    if (i >= is_canary.size() || !is_canary[i]) {
      continue;
    }
    ++o.shadow_shards;
    o.shadow_rounds += s.shadow_stats.rounds;
    o.candidate_violations += total_violations(s.shadow_stats);
    o.active_violations += total_violations(s.stats);
    o.would_block += s.shadow_would_block;
    o.candidate_blocked += s.shadow_stats.blocked;
    o.active_check_ns += s.stats.check_ns;
    o.active_rounds += s.stats.rounds;
    o.candidate_check_ns += s.shadow_stats.check_ns;

    // Per-window latency p99s: every window deploys with a unique
    // metrics_label, so these histograms hold exactly this window's
    // samples (a cumulative histogram would smear earlier stages into
    // the verdict). Reconstruct the label the checker registered under.
    checker::CheckerConfig applied = fleet[i].checker;
    if (service_.policy != nullptr) {
      applied = apply_policy(
          service_.policy->effective(shard_vm(fleet[i], i), fleet[i].device),
          applied);
    }
    const std::string strategies = checker::strategy_set_name(applied);
    const obs::Histogram* ah = obs::metrics().find_histogram(
        "checker_check_latency_ns",
        obs::label({{"device", fleet[i].checker.metrics_label},
                    {"strategies", strategies}}));
    const obs::Histogram* ch = obs::metrics().find_histogram(
        "checker_check_latency_ns",
        obs::label({{"device", fleet[i].checker.metrics_label + "~cand"},
                    {"strategies", strategies}}));
    if (ah != nullptr) {
      active_lat.merge(*ah);
    }
    if (ch != nullptr) {
      cand_lat.merge(*ch);
    }
  }
  o.report_drops = report.reports_dropped;
  o.active_latency_p99_ns = active_lat.p99();
  o.candidate_latency_p99_ns = cand_lat.p99();
  return o;
}

RolloutOutcome ControlPlane::run_rollout(
    const std::string& device, std::vector<enforce::ShardSpec> fleet,
    const RolloutConfig& cfg) {
  const uint64_t ro = ++rollout_seq_;
  RolloutOutcome out;
  RolloutRecord& rec = out.record;
  rec.device = device;

  auto rolled_back = [&](std::string reason) {
    rec.state = RolloutState::kRolledBack;
    rec.reason = std::move(reason);
    persist(rec);
    log_warn("control") << "rollout '" << device << "' rolled back: "
                        << rec.reason;
    return std::move(out);
  };

  const spec::SnapshotRef baseline = active_->current(device);
  SEDSPEC_REQUIRE_MSG(baseline != nullptr,
                      "rollout needs an active baseline spec");
  rec.baseline_version = baseline->version;
  rec.baseline_spec = spec::serialize(baseline->cfg);
  rec.state = RolloutState::kStaging;
  persist(rec);

  const spec::SnapshotRef cand = candidate_.current(device);
  if (cand == nullptr) {
    return rolled_back("no candidate staged for '" + device + "'");
  }
  rec.candidate_version = cand->version;

  std::vector<size_t> eligible;
  for (size_t i = 0; i < fleet.size(); ++i) {
    if (fleet[i].device == device) {
      eligible.push_back(i);
    }
  }
  if (eligible.empty()) {
    return rolled_back("no shard in the fleet runs '" + device + "'");
  }

  enforce::ServiceConfig svc = service_;
  svc.candidate_store = &candidate_;

  // One observation window: copy the fleet, flip the canary flags, stamp a
  // unique metric label per shard, run, assemble + filter the observation,
  // and record the verdict.
  auto run_window = [&](const std::vector<bool>& canary, RolloutState state,
                        uint32_t stage, uint32_t attempt) {
    std::vector<enforce::ShardSpec> shards = fleet;
    std::ostringstream tag;
    tag << "ro" << ro;
    if (state == RolloutState::kPromoting) {
      tag << "confirm" << attempt;
    } else {
      tag << "s" << stage << "a" << attempt;
    }
    for (size_t i = 0; i < shards.size(); ++i) {
      shards[i].ops = cfg.observe_ops;
      shards[i].shadow_candidate =
          state == RolloutState::kShadow && i < canary.size() && canary[i];
      shards[i].checker.metrics_label =
          shard_base_label(fleet[i], i) + "@" + tag.str();
    }
    enforce::EnforcementService service(active_, svc);
    const enforce::RunReport report = service.run(shards);
    out.total_ops += report.total_ops;
    WindowRecord w;
    w.state = state;
    w.stage = stage;
    w.attempt = attempt;
    w.observation = state == RolloutState::kShadow
                        ? observe_window(shards, canary, report, tag.str())
                        : confirm_observation(shards, canary, report);
    if (slo_feed) {
      w.observation.slo_breaches = slo_feed();
    }
    if (observe_filter) {
      observe_filter(w.observation);
    }
    w.decision = evaluate_stage(cfg.thresholds, w.observation);
    out.windows.push_back(w);
    return w;
  };

  SEDSPEC_REQUIRE_MSG(!cfg.stage_fractions.empty(),
                      "rollout needs at least one stage");
  for (uint32_t stage = 0; stage < cfg.stage_fractions.size(); ++stage) {
    const double fraction = cfg.stage_fractions[stage];
    const size_t canaries = std::min(
        eligible.size(),
        std::max<size_t>(1, static_cast<size_t>(std::ceil(
                                fraction *
                                static_cast<double>(eligible.size())))));
    std::vector<bool> canary(fleet.size(), false);
    for (size_t k = 0; k < canaries; ++k) {
      canary[eligible[k]] = true;
    }
    rec.state = RolloutState::kShadow;
    rec.stage_index = stage;
    persist(rec);
    log_info("control") << "rollout '" << device << "' v"
                        << rec.candidate_version << " stage " << stage
                        << ": shadowing on " << canaries << "/"
                        << eligible.size() << " shards";

    bool advanced = false;
    for (uint32_t attempt = 0; attempt <= cfg.max_stage_retries; ++attempt) {
      const WindowRecord w =
          run_window(canary, RolloutState::kShadow, stage, attempt);
      if (w.decision.verdict == StageVerdict::kPromote) {
        advanced = true;
        break;
      }
      if (w.decision.verdict == StageVerdict::kRollback) {
        return rolled_back(w.decision.reason);
      }
      // kRetry: window inconclusive, run it again.
    }
    if (!advanced) {
      return rolled_back("stage " + std::to_string(stage) +
                         " still inconclusive after " +
                         std::to_string(cfg.max_stage_retries + 1) +
                         " windows: " + out.windows.back().decision.reason);
    }
  }

  // Every shadow stage passed: make the candidate the active spec. The
  // Promoting record is persisted BEFORE the publish so a crash between
  // the two is recoverable (resume republishes the embedded baseline).
  rec.state = RolloutState::kPromoting;
  rec.stage_index = static_cast<uint32_t>(cfg.stage_fractions.size());
  persist(rec);
  active_->publish(spec::EsCfg(cand->cfg));

  if (cfg.confirm_after_promote) {
    std::vector<bool> canary(fleet.size(), false);
    for (const size_t i : eligible) {
      canary[i] = true;
    }
    WindowRecord w;
    for (uint32_t attempt = 0;; ++attempt) {
      w = run_window(canary, RolloutState::kPromoting, rec.stage_index,
                     attempt);
      if (w.decision.verdict != StageVerdict::kRetry ||
          attempt >= cfg.max_stage_retries) {
        break;
      }
    }
    if (w.decision.verdict != StageVerdict::kPromote) {
      // Auto-rollback of a just-promoted spec: republish the baseline the
      // record carries, exactly what crash recovery would do.
      spec::LoadResult lr = spec::load(rec.baseline_spec);
      SEDSPEC_REQUIRE_MSG(lr.ok(), "baseline spec must reload");
      active_->publish(std::move(*lr.cfg));
      return rolled_back("confirmation failed: " + w.decision.reason);
    }
  }

  rec.state = RolloutState::kActive;
  rec.reason = "promoted after " + std::to_string(out.windows.size()) +
               " clean window(s)";
  persist(rec);
  log_info("control") << "rollout '" << device << "' promoted to v"
                      << active_->version_of(device);
  return std::move(out);
}

ResumeResult ControlPlane::resume(std::span<const uint8_t> record_bytes) {
  ResumeResult r;
  r.load_error = RolloutRecord::load(record_bytes, r.record);
  if (!r.load_error.ok()) {
    // An unreadable record gets no trust at all: whatever the crashed
    // rollout was doing, the active store still holds a published spec, so
    // baseline-only operation is the safe floor.
    r.action = "rollout record rejected (" + r.load_error.describe() +
               "); continuing on the active store as-is";
    return r;
  }
  if (rollout_terminal(r.record.state)) {
    r.action = "record is terminal (" + rollout_state_name(r.record.state) +
               "); nothing to recover";
    return r;
  }
  const std::string crashed_in = rollout_state_name(r.record.state);
  if (r.record.state == RolloutState::kPromoting) {
    // The crash may have landed before or after the candidate publish;
    // republishing the embedded baseline is idempotent-safe either way.
    spec::LoadResult lr = spec::load(r.record.baseline_spec);
    if (lr.ok()) {
      active_->publish(std::move(*lr.cfg));
      r.republished_baseline = true;
    }
  }
  r.record.state = RolloutState::kRolledBack;
  r.record.reason = "aborted by crash recovery (crashed in " + crashed_in +
                    (r.republished_baseline ? "; baseline republished)"
                                            : ")");
  persist(r.record);
  r.action = r.record.reason;
  return r;
}

}  // namespace sedspec::control
