#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.h"
#include "obs/json.h"

namespace sedspec::obs {

namespace detail {
std::atomic<EventTracer*> g_tracer{nullptr};
}  // namespace detail

const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::kIoAccess:
      return "io_access";
    case EventType::kTraversalStep:
      return "traversal_step";
    case EventType::kViolation:
      return "violation";
    case EventType::kQuarantine:
      return "quarantine";
    case EventType::kSelfHeal:
      return "self_heal";
    case EventType::kDmaXfer:
      return "dma_xfer";
    case EventType::kPhaseBegin:
      return "phase_begin";
    case EventType::kPhaseEnd:
      return "phase_end";
    case EventType::kFaultOutcome:
      return "fault_outcome";
    case EventType::kSloBreach:
      return "slo_breach";
  }
  return "?";
}

void EventTracer::AtomicSlot::store(const TraceEvent& ev) {
  ts_ns.store(ev.ts_ns, std::memory_order_relaxed);
  dur_ns.store(ev.dur_ns, std::memory_order_relaxed);
  a.store(ev.a, std::memory_order_relaxed);
  b.store(ev.b, std::memory_order_relaxed);
  name.store(ev.name, std::memory_order_relaxed);
  cat.store(ev.cat, std::memory_order_relaxed);
  detail.store(ev.detail, std::memory_order_relaxed);
  type.store(static_cast<uint8_t>(ev.type), std::memory_order_relaxed);
}

TraceEvent EventTracer::AtomicSlot::load() const {
  TraceEvent ev;
  ev.ts_ns = ts_ns.load(std::memory_order_relaxed);
  ev.dur_ns = dur_ns.load(std::memory_order_relaxed);
  ev.a = a.load(std::memory_order_relaxed);
  ev.b = b.load(std::memory_order_relaxed);
  ev.name = name.load(std::memory_order_relaxed);
  ev.cat = cat.load(std::memory_order_relaxed);
  ev.detail = detail.load(std::memory_order_relaxed);
  ev.type = static_cast<EventType>(type.load(std::memory_order_relaxed));
  return ev;
}

EventTracer::EventTracer(size_t capacity) {
  SEDSPEC_REQUIRE(capacity > 0);
  ring_ = std::make_unique<AtomicSlot[]>(capacity);
  capacity_ = capacity;
  // Id 0 is the empty string so zero-initialized fields render as "".
  strings_.emplace_back("");
  ids_.emplace("", 0);
}

uint32_t EventTracer::intern(std::string_view s) {
  std::lock_guard lock(intern_mu_);
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) {
    return it->second;
  }
  if (strings_.size() >= kMaxStrings) {
    // Bounded table: collapse the overflow into one sentinel entry.
    static constexpr std::string_view kOverflow = "<interned-overflow>";
    auto of = ids_.find(std::string(kOverflow));
    if (of != ids_.end()) {
      return of->second;
    }
    s = kOverflow;
  }
  const auto id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

std::string EventTracer::string_at(uint32_t id) const {
  std::lock_guard lock(intern_mu_);
  SEDSPEC_REQUIRE(id < strings_.size());
  return strings_[id];
}

void EventTracer::record(EventType type, std::string_view name,
                         std::string_view cat, std::string_view detail,
                         uint64_t a, uint64_t b, uint64_t dur_ns) {
  TraceEvent ev;
  ev.ts_ns = now_ns();
  ev.dur_ns = dur_ns;
  ev.a = a;
  ev.b = b;
  ev.name = intern(name);
  ev.cat = intern(cat);
  ev.detail = detail.empty() ? 0 : intern(detail);
  ev.type = type;
  const uint64_t slot = head_.fetch_add(1, std::memory_order_relaxed);
  ring_[slot % capacity_].store(ev);
}

void EventTracer::begin_phase(std::string_view name, std::string_view cat) {
  record(EventType::kPhaseBegin, name, cat);
}

void EventTracer::end_phase(std::string_view name, std::string_view cat) {
  record(EventType::kPhaseEnd, name, cat);
}

size_t EventTracer::size() const {
  return static_cast<size_t>(std::min<uint64_t>(recorded(), capacity_));
}

uint64_t EventTracer::dropped() const {
  const uint64_t n = recorded();
  return n > capacity_ ? n - capacity_ : 0;
}

std::vector<TraceEvent> EventTracer::snapshot() const {
  const uint64_t head = recorded();
  const uint64_t count = std::min<uint64_t>(head, capacity_);
  std::vector<TraceEvent> out;
  out.reserve(count);
  for (uint64_t i = head - count; i < head; ++i) {
    out.push_back(ring_[i % capacity_].load());
  }
  return out;
}

void EventTracer::clear() { head_.store(0, std::memory_order_relaxed); }

std::string EventTracer::to_chrome_json() const {
  const std::vector<TraceEvent> events = snapshot();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  std::lock_guard lock(intern_mu_);
  auto str = [&](uint32_t id) -> const std::string& {
    SEDSPEC_REQUIRE(id < strings_.size());
    return strings_[id];
  };
  for (const TraceEvent& ev : events) {
    char ph = 'i';
    if (ev.type == EventType::kPhaseBegin) {
      ph = 'B';
    } else if (ev.type == EventType::kPhaseEnd) {
      ph = 'E';
    } else if (ev.dur_ns > 0) {
      ph = 'X';
    }
    char head[96];
    std::snprintf(head, sizeof(head), "%s{\"ts\":%.3f,\"pid\":1,\"tid\":1",
                  first ? "\n" : ",\n",
                  static_cast<double>(ev.ts_ns) / 1000.0);
    out << head;
    first = false;
    out << ",\"ph\":\"" << ph << '"';
    if (ph == 'X') {
      char dur[48];
      std::snprintf(dur, sizeof(dur), ",\"dur\":%.3f",
                    static_cast<double>(ev.dur_ns) / 1000.0);
      out << dur;
    } else if (ph == 'i') {
      out << ",\"s\":\"p\"";
    }
    out << ",\"name\":\"" << json_escape(str(ev.name)) << '"';
    out << ",\"cat\":\"" << json_escape(str(ev.cat)) << '"';
    // End markers carry no args in the trace-event format.
    if (ev.type != EventType::kPhaseEnd) {
      out << ",\"args\":{\"type\":\"" << event_type_name(ev.type) << '"';
      if (ev.detail != 0) {
        const char* key =
            ev.type == EventType::kViolation ? "strategy" : "detail";
        out << ",\"" << key << "\":\"" << json_escape(str(ev.detail)) << '"';
      }
      if (ev.a != 0) {
        out << ",\"a\":" << ev.a;
      }
      if (ev.b != 0) {
        out << ",\"b\":" << ev.b;
      }
      out << '}';
    }
    out << '}';
  }
  out << "\n]}\n";
  return out.str();
}

void set_tracer(EventTracer* tracer) {
  detail::g_tracer.store(tracer, std::memory_order_relaxed);
}

PhaseScope::PhaseScope(std::string name, std::string cat)
    : name_(std::move(name)), cat_(std::move(cat)) {
  if (EventTracer* t = tracer()) {
    t->begin_phase(name_, cat_);
  }
  if (timing_enabled()) {
    hist_ = &metrics().histogram("pipeline_phase_ns",
                                 label({{"phase", name_}}));
    start_ = now_ns();
  }
}

PhaseScope::~PhaseScope() {
  if (hist_ != nullptr) {
    hist_->record(now_ns() - start_);
  }
  if (EventTracer* t = tracer()) {
    t->end_phase(name_, cat_);
  }
}

}  // namespace sedspec::obs
