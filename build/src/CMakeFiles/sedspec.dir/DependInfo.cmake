
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchsim/campaign.cc" "src/CMakeFiles/sedspec.dir/benchsim/campaign.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/benchsim/campaign.cc.o.d"
  "/root/repo/src/benchsim/perf.cc" "src/CMakeFiles/sedspec.dir/benchsim/perf.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/benchsim/perf.cc.o.d"
  "/root/repo/src/cfg/analyzer.cc" "src/CMakeFiles/sedspec.dir/cfg/analyzer.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/cfg/analyzer.cc.o.d"
  "/root/repo/src/cfg/itc_cfg.cc" "src/CMakeFiles/sedspec.dir/cfg/itc_cfg.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/cfg/itc_cfg.cc.o.d"
  "/root/repo/src/checker/checker.cc" "src/CMakeFiles/sedspec.dir/checker/checker.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/checker/checker.cc.o.d"
  "/root/repo/src/checker/checker_set.cc" "src/CMakeFiles/sedspec.dir/checker/checker_set.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/checker/checker_set.cc.o.d"
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/sedspec.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/sedspec.dir/common/log.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/common/log.cc.o.d"
  "/root/repo/src/dataflow/dataflow.cc" "src/CMakeFiles/sedspec.dir/dataflow/dataflow.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/dataflow/dataflow.cc.o.d"
  "/root/repo/src/devices/ehci.cc" "src/CMakeFiles/sedspec.dir/devices/ehci.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/devices/ehci.cc.o.d"
  "/root/repo/src/devices/esp_scsi.cc" "src/CMakeFiles/sedspec.dir/devices/esp_scsi.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/devices/esp_scsi.cc.o.d"
  "/root/repo/src/devices/fdc.cc" "src/CMakeFiles/sedspec.dir/devices/fdc.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/devices/fdc.cc.o.d"
  "/root/repo/src/devices/pcnet.cc" "src/CMakeFiles/sedspec.dir/devices/pcnet.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/devices/pcnet.cc.o.d"
  "/root/repo/src/devices/sdhci.cc" "src/CMakeFiles/sedspec.dir/devices/sdhci.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/devices/sdhci.cc.o.d"
  "/root/repo/src/expr/eval.cc" "src/CMakeFiles/sedspec.dir/expr/eval.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/expr/eval.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/sedspec.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/expr/expr.cc.o.d"
  "/root/repo/src/expr/stmt.cc" "src/CMakeFiles/sedspec.dir/expr/stmt.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/expr/stmt.cc.o.d"
  "/root/repo/src/guest/ehci_driver.cc" "src/CMakeFiles/sedspec.dir/guest/ehci_driver.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/guest/ehci_driver.cc.o.d"
  "/root/repo/src/guest/esp_driver.cc" "src/CMakeFiles/sedspec.dir/guest/esp_driver.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/guest/esp_driver.cc.o.d"
  "/root/repo/src/guest/exploits.cc" "src/CMakeFiles/sedspec.dir/guest/exploits.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/guest/exploits.cc.o.d"
  "/root/repo/src/guest/fdc_driver.cc" "src/CMakeFiles/sedspec.dir/guest/fdc_driver.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/guest/fdc_driver.cc.o.d"
  "/root/repo/src/guest/pcnet_driver.cc" "src/CMakeFiles/sedspec.dir/guest/pcnet_driver.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/guest/pcnet_driver.cc.o.d"
  "/root/repo/src/guest/qtest.cc" "src/CMakeFiles/sedspec.dir/guest/qtest.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/guest/qtest.cc.o.d"
  "/root/repo/src/guest/sdhci_driver.cc" "src/CMakeFiles/sedspec.dir/guest/sdhci_driver.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/guest/sdhci_driver.cc.o.d"
  "/root/repo/src/guest/workload.cc" "src/CMakeFiles/sedspec.dir/guest/workload.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/guest/workload.cc.o.d"
  "/root/repo/src/program/arena.cc" "src/CMakeFiles/sedspec.dir/program/arena.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/program/arena.cc.o.d"
  "/root/repo/src/program/layout.cc" "src/CMakeFiles/sedspec.dir/program/layout.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/program/layout.cc.o.d"
  "/root/repo/src/program/program.cc" "src/CMakeFiles/sedspec.dir/program/program.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/program/program.cc.o.d"
  "/root/repo/src/sedspec/pipeline.cc" "src/CMakeFiles/sedspec.dir/sedspec/pipeline.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/sedspec/pipeline.cc.o.d"
  "/root/repo/src/spec/builder.cc" "src/CMakeFiles/sedspec.dir/spec/builder.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/spec/builder.cc.o.d"
  "/root/repo/src/spec/diff.cc" "src/CMakeFiles/sedspec.dir/spec/diff.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/spec/diff.cc.o.d"
  "/root/repo/src/spec/es_cfg.cc" "src/CMakeFiles/sedspec.dir/spec/es_cfg.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/spec/es_cfg.cc.o.d"
  "/root/repo/src/spec/merge.cc" "src/CMakeFiles/sedspec.dir/spec/merge.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/spec/merge.cc.o.d"
  "/root/repo/src/spec/serial.cc" "src/CMakeFiles/sedspec.dir/spec/serial.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/spec/serial.cc.o.d"
  "/root/repo/src/statelog/statelog.cc" "src/CMakeFiles/sedspec.dir/statelog/statelog.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/statelog/statelog.cc.o.d"
  "/root/repo/src/trace/encoder.cc" "src/CMakeFiles/sedspec.dir/trace/encoder.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/trace/encoder.cc.o.d"
  "/root/repo/src/trace/packets.cc" "src/CMakeFiles/sedspec.dir/trace/packets.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/trace/packets.cc.o.d"
  "/root/repo/src/vdev/bus.cc" "src/CMakeFiles/sedspec.dir/vdev/bus.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/vdev/bus.cc.o.d"
  "/root/repo/src/vdev/device.cc" "src/CMakeFiles/sedspec.dir/vdev/device.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/vdev/device.cc.o.d"
  "/root/repo/src/vdev/instr.cc" "src/CMakeFiles/sedspec.dir/vdev/instr.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/vdev/instr.cc.o.d"
  "/root/repo/src/vdev/memory.cc" "src/CMakeFiles/sedspec.dir/vdev/memory.cc.o" "gcc" "src/CMakeFiles/sedspec.dir/vdev/memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
