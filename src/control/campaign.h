// Control-plane fault-injection campaign.
//
// Sweeps seed-driven faults through every control-plane seam — candidate
// corruption, spec-distribution outages and transients, shard crashes
// mid-window, delayed metric feeds, persisted-record damage, and crashes
// mid-promotion — running a full canaried rollout per fault and verifying
// the acceptance bar end to end:
//
//   - every rollout ends in a terminal state (zero stuck rollouts);
//   - every bad rollout ends RolledBack with the prior spec still
//     enforcing (byte-compared, plus a live untrained-access probe);
//   - shadow candidates never block (zero fail-open escapes through the
//     canary machinery);
//   - transient faults are absorbed by retry/backoff, not turned into
//     spurious rollbacks.
#pragma once

#include <cstdint>
#include <string>

#include "faultinject/faultinject.h"

namespace sedspec::control {

struct ControlCampaignConfig {
  uint64_t seed = 0x5edc;
  std::string device = "fdc";
  size_t shards = 4;
  /// Faults per family; the defaults sum past the 1000-fault bar.
  size_t corruption_faults = 400;  // candidate / fetch-outage / record
  size_t crash_faults = 300;       // shard crashes + mid-promotion crashes
  size_t delay_faults = 300;       // metric delays + transient fetch
  /// Benign operations per shard per observation window.
  uint64_t observe_ops = 12;
  uint64_t spec_poll_ops = 8;
};

/// How one injected fault resolved. Every value except kEscaped is an
/// acceptable, *accounted* ending; kEscaped must stay 0.
enum class ControlOutcome : uint8_t {
  kRejectedAtStaging = 0,  // corrupt candidate refused before any shard
  kRolledBack = 1,         // guardrails aborted; baseline still enforcing
  kRecovered = 2,          // crash recovery repaired/rejected the record
  kPromotedClean = 3,      // transient fault absorbed; good candidate won
  kPromotedEquivalent = 4, // garbled-yet-valid candidate proved equivalent
  kEscaped = 5,            // anything off-script — must be 0
};
inline constexpr size_t kControlOutcomeCount = 6;

[[nodiscard]] std::string control_outcome_name(ControlOutcome o);

struct ControlCampaignResult {
  uint64_t injected = 0;
  uint64_t by_kind[faultinject::kControlFaultKinds] = {};
  uint64_t by_outcome[kControlOutcomeCount] = {};
  /// Staging rejections indexed by spec::LoadStatus.
  uint64_t staging_rejections_by_status[8] = {};
  /// Hard invariants — all must stay 0 (see clean()).
  uint64_t shadow_blocks = 0;        // a shadow candidate blocked an access
  uint64_t stuck_rollouts = 0;       // rollout ended non-terminal
  uint64_t liveness_failures = 0;    // untrained-access probe not blocked
  uint64_t baseline_divergence = 0;  // wrong spec active after rollback

  [[nodiscard]] uint64_t escaped() const {
    return by_outcome[static_cast<size_t>(ControlOutcome::kEscaped)];
  }
  /// The campaign acceptance bar.
  [[nodiscard]] bool clean() const {
    return escaped() == 0 && shadow_blocks == 0 && stuck_rollouts == 0 &&
           liveness_failures == 0 && baseline_divergence == 0;
  }
  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] ControlCampaignResult run_control_campaign(
    const ControlCampaignConfig& config = {});

}  // namespace sedspec::control
