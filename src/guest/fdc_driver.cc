#include "guest/fdc_driver.h"

#include "common/assert.h"

namespace sedspec::guest {

namespace {
using sedspec::devices::FdcDevice;
constexpr uint64_t kBase = FdcDevice::kBasePort;
}  // namespace

uint8_t FdcDriver::read_msr() {
  ++io_count_;
  return static_cast<uint8_t>(bus_->read(IoSpace::kPio, kBase + 4, 1));
}

void FdcDriver::write_dor(uint8_t value) {
  ++io_count_;
  bus_->write(IoSpace::kPio, kBase + 2, 1, value);
}

void FdcDriver::write_fifo(uint8_t value) {
  ++io_count_;
  bus_->write(IoSpace::kPio, kBase + 5, 1, value);
}

uint8_t FdcDriver::read_fifo() {
  ++io_count_;
  return static_cast<uint8_t>(bus_->read(IoSpace::kPio, kBase + 5, 1));
}

void FdcDriver::reset() {
  write_dor(0x00);  // enter reset
  write_dor(0x0c);  // leave reset, DMA gate + enable
  (void)read_msr();
}

void FdcDriver::send_command(std::span<const uint8_t> bytes) {
  for (uint8_t b : bytes) {
    (void)read_msr();  // a real driver polls RQM before each byte
    write_fifo(b);
  }
}

std::vector<uint8_t> FdcDriver::read_result(size_t n) {
  std::vector<uint8_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (void)read_msr();
    out.push_back(read_fifo());
  }
  return out;
}

void FdcDriver::specify() {
  const uint8_t cmd[] = {FdcDevice::kCmdSpecify, 0xdf, 0x02};
  send_command(cmd);
}

void FdcDriver::configure() {
  const uint8_t cmd[] = {FdcDevice::kCmdConfigure, 0x00, 0x57, 0x00};
  send_command(cmd);
}

uint8_t FdcDriver::version() {
  const uint8_t cmd[] = {FdcDevice::kCmdVersion};
  send_command(cmd);
  return read_result(1)[0];
}

uint8_t FdcDriver::sense_drive_status() {
  const uint8_t cmd[] = {FdcDevice::kCmdSenseDrive, 0x00};
  send_command(cmd);
  return read_result(1)[0];
}

void FdcDriver::recalibrate() {
  const uint8_t cmd[] = {FdcDevice::kCmdRecalibrate, 0x00};
  send_command(cmd);
  (void)sense_interrupt();
}

void FdcDriver::seek(uint8_t track) {
  const uint8_t cmd[] = {FdcDevice::kCmdSeek, 0x00, track};
  send_command(cmd);
  (void)sense_interrupt();
}

std::pair<uint8_t, uint8_t> FdcDriver::sense_interrupt() {
  const uint8_t cmd[] = {FdcDevice::kCmdSenseInt};
  send_command(cmd);
  auto res = read_result(2);
  return {res[0], res[1]};
}

void FdcDriver::read_sector(uint8_t track, uint8_t head, uint8_t sector,
                            std::span<uint8_t> out) {
  SEDSPEC_REQUIRE(out.size() == FdcDevice::kSectorSize);
  const uint8_t cmd[] = {FdcDevice::kCmdRead,
                         static_cast<uint8_t>(head << 2),
                         track,
                         head,
                         sector,
                         2,     // 512-byte sectors
                         0x24,  // EOT
                         0x1b,  // GPL
                         0xff};
  send_command(cmd);
  for (auto& byte : out) {
    (void)read_msr();
    byte = read_fifo();
  }
  (void)read_result(7);
}

void FdcDriver::write_sector(uint8_t track, uint8_t head, uint8_t sector,
                             std::span<const uint8_t> data) {
  SEDSPEC_REQUIRE(data.size() == FdcDevice::kSectorSize);
  const uint8_t cmd[] = {FdcDevice::kCmdWrite,
                         static_cast<uint8_t>(head << 2),
                         track,
                         head,
                         sector,
                         2,
                         0x24,
                         0x1b,
                         0xff};
  send_command(cmd);
  for (uint8_t byte : data) {
    (void)read_msr();
    write_fifo(byte);
  }
  (void)read_result(7);
}

std::vector<uint8_t> FdcDriver::read_id() {
  const uint8_t cmd[] = {FdcDevice::kCmdReadId};
  send_command(cmd);
  return read_result(7);
}

std::vector<uint8_t> FdcDriver::dumpreg() {
  const uint8_t cmd[] = {FdcDevice::kCmdDumpReg};
  send_command(cmd);
  return read_result(10);
}

void FdcDriver::perpendicular() {
  const uint8_t cmd[] = {FdcDevice::kCmdPerpendicular, 0x00};
  send_command(cmd);
}

}  // namespace sedspec::guest
