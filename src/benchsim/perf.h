// Performance measurement harnesses (paper §VII-C).
//
// measure_storage — iozone-style: read/write throughput and per-operation
// latency over a block-size sweep, through the full bus path (and therefore
// through the ES-Checker when one is deployed). The paper's storage figures
// are normalized to the unprotected device, so only the relative cost of
// the checker matters.
//
// measure_pcnet_bandwidth / measure_pcnet_ping — iperf/ping-style: TCP- and
// UDP-shaped frame streams in both directions (TCP adds reverse ACK
// traffic), and an echo RTT over the loopback path.
#pragma once

#include <cstdint>
#include <string>

#include "guest/workload.h"

namespace sedspec::benchsim {

struct StoragePoint {
  size_t block_bytes = 0;
  double write_mbps = 0;
  double read_mbps = 0;
  double write_latency_us = 0;  // per block operation
  double read_latency_us = 0;
};

/// Measures bulk I/O at one block size on an already-constructed workload
/// (deployed or not). `budget_bytes` bounds the touched range.
StoragePoint measure_storage(guest::DeviceWorkload& workload,
                             size_t block_bytes, size_t budget_bytes);

/// Latency model constants used by the performance benchmarks (see
/// DESIGN.md §1): the VM-exit + KVM->QEMU dispatch cost each trapped
/// register access pays, and the host-backend (disk image syscall / tap
/// write) cost per device backend operation.
inline constexpr uint64_t kVmExitNs = 4'000;
inline constexpr uint64_t kStorageBackendNs = 12'000;
inline constexpr uint64_t kNetBackendNs = 10'000;

/// Applies the latency model to a workload's bus and device.
void apply_latency_model(guest::DeviceWorkload& workload);

struct PcnetBandwidth {
  double tcp_up_mbps = 0;
  double tcp_down_mbps = 0;
  double udp_up_mbps = 0;
  double udp_down_mbps = 0;
};

/// Runs the four iperf-style streams on a fresh PCNet harness.
/// `with_checker` trains and deploys SEDSpec first.
PcnetBandwidth measure_pcnet_bandwidth(bool with_checker, int frames_per_run);

/// Average echo RTT (milliseconds) over `pings` loopback echoes.
double measure_pcnet_ping(bool with_checker, int pings);

}  // namespace sedspec::benchsim
