// Lightweight precondition checking used across the library.
//
// SEDSPEC_REQUIRE is for programmer errors (broken invariants, misuse of an
// API): it throws std::logic_error so tests can assert on misuse without
// aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace sedspec {

[[noreturn]] inline void require_failed(const char* cond, const char* file,
                                        int line, const std::string& msg) {
  throw std::logic_error(std::string("requirement failed: ") + cond + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (": " + msg)));
}

}  // namespace sedspec

#define SEDSPEC_REQUIRE(cond)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::sedspec::require_failed(#cond, __FILE__, __LINE__, "");     \
    }                                                               \
  } while (0)

#define SEDSPEC_REQUIRE_MSG(cond, msg)                              \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::sedspec::require_failed(#cond, __FILE__, __LINE__, (msg));  \
    }                                                               \
  } while (0)
