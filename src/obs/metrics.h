// Metrics substrate: labeled counters, gauges, and log2-bucketed latency
// histograms behind one process-wide registry.
//
// Design constraints (this sits on the guest I/O hot path):
//   - A metric handle is resolved ONCE (registry lookup under a mutex) and
//     then updated with relaxed atomics — an increment is a single
//     fetch_add, a histogram record is three fetch_adds plus a CAS max.
//     Handles are stable for the registry's lifetime (node-owning map).
//   - Wall-clock reads are the expensive part of latency tracking, so they
//     are globally gated: ScopedTimer and every manual timing site check
//     timing_enabled() (one relaxed atomic load) and skip the clock reads
//     entirely when sampling is off — the instrumented hot path then costs
//     a predicted branch, nothing more.
//   - Histograms bucket by log2 (bucket i holds values of bit-width i), so
//     recording needs no search and 65 buckets cover the full uint64 range.
//     Percentile accessors (p50/p90/p99) resolve to the bucket upper edge,
//     clamped to the true observed max — conservative for latencies.
//
// Exporters: Prometheus-style text exposition and a JSON snapshot (parsed
// back by obs::json_parse in tests and the dashboard's self-check).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sedspec::obs {

/// Monotonic nanoseconds on the shared process timebase (common/log.h's
/// monotonic_ns): log lines, metric timings, and trace events all correlate.
[[nodiscard]] uint64_t now_ns();

namespace detail {
/// Storage for the process-wide sampling switch. Exposed so the gate below
/// inlines to one relaxed load — the gate sits on the per-I/O hot path,
/// where an out-of-line call is measurable. Mutate only via
/// set_timing_enabled().
extern std::atomic<bool> g_timing_enabled;
}  // namespace detail

/// Process-wide latency-sampling switch (default off). When off, timing
/// probes skip their clock reads; counters and events are unaffected.
[[nodiscard]] inline bool timing_enabled() {
  return detail::g_timing_enabled.load(std::memory_order_relaxed);
}
void set_timing_enabled(bool enabled);

class Counter {
 public:
  void inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
};

class Histogram {
 public:
  /// Bucket i counts values whose bit-width is i: bucket 0 holds 0, bucket
  /// i (i >= 1) holds [2^(i-1), 2^i - 1]. 65 buckets cover uint64.
  static constexpr size_t kBuckets = 65;

  void record(uint64_t v);

  [[nodiscard]] uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const;

  /// Value at quantile q in [0, 1]: the upper edge of the bucket where the
  /// cumulative count crosses ceil(q * count), clamped to the observed max
  /// (so percentiles never exceed a value that actually occurred). Returns
  /// 0 for an empty histogram.
  [[nodiscard]] uint64_t percentile(double q) const;
  [[nodiscard]] uint64_t p50() const { return percentile(0.50); }
  [[nodiscard]] uint64_t p90() const { return percentile(0.90); }
  [[nodiscard]] uint64_t p99() const { return percentile(0.99); }
  [[nodiscard]] uint64_t p999() const { return percentile(0.999); }

  [[nodiscard]] uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Sums `other`'s buckets/count/sum into this histogram and raises max.
  /// Used to merge per-shard histograms on demand (fleet aggregation);
  /// concurrent record() on either side is race-free but the merged view
  /// is then only approximately a point-in-time snapshot.
  void merge(const Histogram& other);

  [[nodiscard]] static size_t bucket_of(uint64_t v);
  /// Largest value bucket i can hold (2^i - 1; saturates at UINT64_MAX).
  [[nodiscard]] static uint64_t bucket_upper(size_t i);

  /// Point-in-time copy of the full bucket state (relaxed loads). The
  /// time-series collector deltas two of these to recover per-window
  /// quantiles from a cumulative histogram.
  struct State {
    uint64_t buckets[kBuckets] = {};
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
  };
  [[nodiscard]] State state() const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Formats a label set as `k1="v1",k2="v2"` — the canonical label-string
/// form the registry keys on (and Prometheus exposition uses verbatim).
/// Label VALUES are escaped per the exposition format (`\` -> `\\`,
/// `"` -> `\"`, newline -> `\n`), so the canonical string is directly
/// emittable and a value can safely carry any byte.
[[nodiscard]] std::string label(
    std::initializer_list<std::pair<std::string_view, std::string_view>> kv);

/// Thread-safety (audited for the concurrent enforcement layer): lookup-
/// or-create and the exporters serialize on one mutex; returned handles
/// are node-stable and every handle mutation is a relaxed atomic, so any
/// number of shard threads may update metrics concurrently with an
/// exporter snapshot.
class MetricsRegistry {
 public:
  /// Lookup-or-create. The returned reference is stable until the registry
  /// is destroyed; resolve once and keep the handle on hot paths.
  Counter& counter(std::string_view name, std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {});
  Histogram& histogram(std::string_view name, std::string_view labels = {});

  /// Lookup-only (nullptr when the metric was never registered).
  [[nodiscard]] const Counter* find_counter(std::string_view name,
                                            std::string_view labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name,
                                        std::string_view labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(
      std::string_view name, std::string_view labels = {}) const;

  /// Registers help text for a metric family, emitted as `# HELP` in the
  /// Prometheus exposition. Idempotent; last writer wins.
  void set_help(std::string_view name, std::string_view help);

  /// Point-in-time copy of every registered series (one lock, relaxed
  /// value loads). This is the time-series collector's input: stable
  /// (name, labels) identity plus a value copy it can delta against the
  /// previous sample.
  struct Snapshot {
    struct CounterEntry {
      std::string name, labels;
      uint64_t value = 0;
    };
    struct GaugeEntry {
      std::string name, labels;
      int64_t value = 0;
    };
    struct HistogramEntry {
      std::string name, labels;
      Histogram::State state;
    };
    std::vector<CounterEntry> counters;
    std::vector<GaugeEntry> gauges;
    std::vector<HistogramEntry> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Prometheus text exposition: `sedspec_<name>{labels} value` lines with
  /// `# HELP`/`# TYPE` headers emitted once per metric family (all of a
  /// family's samples are contiguous even when several labeled series
  /// exist); histograms export quantile/count/sum series as one summary
  /// family plus a separate `<name>_max` gauge family.
  [[nodiscard]] std::string to_prometheus() const;

  /// JSON snapshot:
  ///   {"counters":[{"name","labels","value"}...],
  ///    "gauges":[...],
  ///    "histograms":[{"name","labels","count","sum","max",
  ///                   "p50","p90","p99"}...]}
  [[nodiscard]] std::string to_json() const;

 private:
  // Key = name + "{" + labels + "}": one flat, deterministically sorted
  // namespace for exporters.
  template <typename T>
  using Family = std::map<std::string, std::unique_ptr<T>>;

  [[nodiscard]] static std::string key_of(std::string_view name,
                                          std::string_view labels);

  mutable std::mutex mu_;
  Family<Counter> counters_;
  Family<Gauge> gauges_;
  Family<Histogram> histograms_;
  std::map<std::string, std::string> help_;  // by family name
};

/// The process-default registry every built-in instrumentation site
/// publishes into.
[[nodiscard]] MetricsRegistry& metrics();

/// RAII latency probe: records elapsed ns into a histogram at scope exit.
/// When timing is disabled (or `hist` is null) the clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(timing_enabled() ? hist : nullptr),
        start_(hist_ != nullptr ? now_ns() : 0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->record(now_ns() - start_);
    }
  }

 private:
  Histogram* hist_;
  uint64_t start_;
};

}  // namespace sedspec::obs
