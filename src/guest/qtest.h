// QTest-style scripted I/O harness.
//
// The paper sources training samples "from the web and QTest" (§IV-C) —
// QEMU's text-protocol device-testing framework. This is a compatible
// in-simulator runner: scripts are line-oriented commands that drive the
// I/O bus, guest memory, and the virtual clock, so training corpora and
// exploit PoCs can live in plain text files (see examples/scripts/).
//
//   # comment
//   outb <port> <val>      outw ... outl ...     PMIO writes
//   inb <port>             inw ... inl ...       PMIO reads
//   writeb <addr> <val>    writew/writel/writeq  MMIO writes
//   readb <addr>           readw/readl/readq     MMIO reads
//   memwrite <addr> <hexbytes>                   guest memory
//   memset <addr> <len> <byte>                   guest memory
//   expect <val>           last in*/read* value must equal <val>
//   clock_step <usecs>     advance the virtual clock
//
// Numbers are decimal or 0x-hex. Parse errors and failed expectations throw
// QtestError with the offending line number.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/vclock.h"
#include "vdev/bus.h"
#include "vdev/memory.h"

namespace sedspec::guest {

class QtestError : public std::runtime_error {
 public:
  QtestError(size_t line, const std::string& message)
      : std::runtime_error("qtest line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  [[nodiscard]] size_t line() const { return line_; }

 private:
  size_t line_;
};

class QtestRunner {
 public:
  struct Result {
    uint64_t commands = 0;
    /// Every value produced by an in*/read* command, in order.
    std::vector<uint64_t> in_values;
  };

  /// `mem` and `clock` may be null if the script uses no memory / clock
  /// commands.
  explicit QtestRunner(sedspec::IoBus* bus,
                       sedspec::GuestMemory* mem = nullptr,
                       sedspec::VirtualClock* clock = nullptr)
      : bus_(bus), mem_(mem), clock_(clock) {}

  Result run(std::string_view script);

 private:
  sedspec::IoBus* bus_;
  sedspec::GuestMemory* mem_;
  sedspec::VirtualClock* clock_;
};

}  // namespace sedspec::guest
