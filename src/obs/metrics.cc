#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <sstream>

#include "common/log.h"
#include "obs/json.h"

namespace sedspec::obs {

namespace detail {
std::atomic<bool> g_timing_enabled{false};
}  // namespace detail

uint64_t now_ns() { return sedspec::monotonic_ns(); }

void set_timing_enabled(bool enabled) {
  detail::g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram

size_t Histogram::bucket_of(uint64_t v) {
  return static_cast<size_t>(std::bit_width(v));
}

uint64_t Histogram::bucket_upper(size_t i) {
  if (i >= 64) {
    return ~uint64_t{0};
  }
  return (uint64_t{1} << i) - 1;
}

void Histogram::record(uint64_t v) {
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < v &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

Histogram::State Histogram::state() const {
  State s;
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = bucket_count(i);
  }
  s.count = count();
  s.sum = sum();
  s.max = max();
  return s;
}

void Histogram::merge(const Histogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  const uint64_t v = other.max();
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < v &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::percentile(double q) const {
  const uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  q = std::min(std::max(q, 0.0), 1.0);
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * n)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += bucket_count(i);
    if (cumulative >= target) {
      return std::min(bucket_upper(i), max());
    }
  }
  return max();
}

// ---------------------------------------------------------------------------
// Registry

namespace {

/// Exposition-format escaping for a label VALUE: backslash, double quote,
/// and newline must be escaped or the emitted line is unparseable (and a
/// crafted device name could forge extra labels).
void append_escaped_label_value(std::string& out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

}  // namespace

std::string label(
    std::initializer_list<std::pair<std::string_view, std::string_view>> kv) {
  std::string out;
  for (const auto& [k, v] : kv) {
    if (!out.empty()) {
      out += ',';
    }
    out += k;
    out += "=\"";
    append_escaped_label_value(out, v);
    out += '"';
  }
  return out;
}

std::string MetricsRegistry::key_of(std::string_view name,
                                    std::string_view labels) {
  std::string key(name);
  key += '{';
  key += labels;
  key += '}';
  return key;
}

namespace {

template <typename T, typename Family>
T& lookup(Family& family, std::mutex& mu, const std::string& key) {
  std::lock_guard lock(mu);
  auto& slot = family[key];
  if (slot == nullptr) {
    slot = std::make_unique<T>();
  }
  return *slot;
}

template <typename Family>
auto find_in(const Family& family, std::mutex& mu, const std::string& key)
    -> decltype(family.begin()->second.get()) {
  std::lock_guard lock(mu);
  auto it = family.find(key);
  return it == family.end() ? nullptr : it->second.get();
}

/// Splits a registry key back into (name, labels) for exporters.
std::pair<std::string_view, std::string_view> split_key(
    const std::string& key) {
  const size_t brace = key.find('{');
  std::string_view name = std::string_view(key).substr(0, brace);
  std::string_view labels =
      std::string_view(key).substr(brace + 1, key.size() - brace - 2);
  return {name, labels};
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view labels) {
  return lookup<Counter>(counters_, mu_, key_of(name, labels));
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view labels) {
  return lookup<Gauge>(gauges_, mu_, key_of(name, labels));
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view labels) {
  return lookup<Histogram>(histograms_, mu_, key_of(name, labels));
}

const Counter* MetricsRegistry::find_counter(std::string_view name,
                                             std::string_view labels) const {
  return find_in(counters_, mu_, key_of(name, labels));
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name,
                                         std::string_view labels) const {
  return find_in(gauges_, mu_, key_of(name, labels));
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name, std::string_view labels) const {
  return find_in(histograms_, mu_, key_of(name, labels));
}

void MetricsRegistry::set_help(std::string_view name, std::string_view help) {
  std::lock_guard lock(mu_);
  help_[std::string(name)] = std::string(help);
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  auto series = [&out](std::string_view name, std::string_view labels,
                       std::string_view extra_label, auto value) {
    out << "sedspec_" << name;
    if (!labels.empty() || !extra_label.empty()) {
      out << '{' << labels;
      if (!labels.empty() && !extra_label.empty()) {
        out << ',';
      }
      out << extra_label << '}';
    }
    out << ' ' << value << '\n';
  };

  // Exposition invariant: every family's `# HELP`/`# TYPE` header appears
  // exactly once, immediately before that family's samples, and all of a
  // family's samples are contiguous. The key map is sorted on
  // `name{labels}` so same-name series are adjacent; the header fires on
  // the first series of each name.
  std::string_view last_name;
  auto family_header = [&](std::string_view name, const char* type) {
    if (name == last_name) {
      return;
    }
    const auto help = help_.find(std::string(name));
    if (help != help_.end()) {
      out << "# HELP sedspec_" << name << ' ' << help->second << '\n';
    }
    out << "# TYPE sedspec_" << name << ' ' << type << '\n';
    last_name = name;
  };

  for (const auto& [key, c] : counters_) {
    const auto [name, labels] = split_key(key);
    family_header(name, "counter");
    series(name, labels, "", c->value());
  }
  last_name = {};
  for (const auto& [key, g] : gauges_) {
    const auto [name, labels] = split_key(key);
    family_header(name, "gauge");
    series(name, labels, "", g->value());
  }
  // Histograms expand into TWO families: the summary family (quantile
  // series plus `_sum`/`_count`, which the exposition format folds into
  // the base family) and a separate `<name>_max` gauge family. Emitting
  // `_max` inline per series would interleave two families — the summary's
  // samples must stay contiguous — so the `_max` series of each name are
  // buffered and emitted as their own grouped family afterwards.
  last_name = {};
  std::vector<std::pair<std::string, uint64_t>> max_series;  // labels, max
  auto flush_max = [&] {
    if (max_series.empty()) {
      return;
    }
    const std::string max_name = std::string(last_name) + "_max";
    out << "# TYPE sedspec_" << max_name << " gauge\n";
    for (const auto& [labels, value] : max_series) {
      series(max_name, labels, "", value);
    }
    max_series.clear();
  };
  for (const auto& [key, h] : histograms_) {
    const auto [name, labels] = split_key(key);
    if (name != last_name) {
      flush_max();
      family_header(name, "summary");
    }
    series(name, labels, "quantile=\"0.5\"", h->p50());
    series(name, labels, "quantile=\"0.9\"", h->p90());
    series(name, labels, "quantile=\"0.99\"", h->p99());
    series(std::string(name) + "_sum", labels, "", h->sum());
    series(std::string(name) + "_count", labels, "", h->count());
    max_series.emplace_back(std::string(labels), h->max());
  }
  flush_max();
  return out.str();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, c] : counters_) {
    const auto [name, labels] = split_key(key);
    snap.counters.push_back(
        {std::string(name), std::string(labels), c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, g] : gauges_) {
    const auto [name, labels] = split_key(key);
    snap.gauges.push_back({std::string(name), std::string(labels), g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, h] : histograms_) {
    const auto [name, labels] = split_key(key);
    snap.histograms.push_back(
        {std::string(name), std::string(labels), h->state()});
  }
  return snap;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": [";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    const auto [name, labels] = split_key(key);
    out << (first ? "" : ",") << "\n    {\"name\": \"" << json_escape(name)
        << "\", \"labels\": \"" << json_escape(labels)
        << "\", \"value\": " << c->value() << "}";
    first = false;
  }
  out << "\n  ],\n  \"gauges\": [";
  first = true;
  for (const auto& [key, g] : gauges_) {
    const auto [name, labels] = split_key(key);
    out << (first ? "" : ",") << "\n    {\"name\": \"" << json_escape(name)
        << "\", \"labels\": \"" << json_escape(labels)
        << "\", \"value\": " << g->value() << "}";
    first = false;
  }
  out << "\n  ],\n  \"histograms\": [";
  first = true;
  for (const auto& [key, h] : histograms_) {
    const auto [name, labels] = split_key(key);
    out << (first ? "" : ",") << "\n    {\"name\": \"" << json_escape(name)
        << "\", \"labels\": \"" << json_escape(labels)
        << "\", \"count\": " << h->count() << ", \"sum\": " << h->sum()
        << ", \"max\": " << h->max() << ", \"p50\": " << h->p50()
        << ", \"p90\": " << h->p90() << ", \"p99\": " << h->p99() << "}";
    first = false;
  }
  out << "\n  ]\n}\n";
  return out.str();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace sedspec::obs
