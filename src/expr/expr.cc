#include "expr/expr.h"

#include <sstream>

namespace sedspec {

bool is_comparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

std::string type_name(IntType t) {
  switch (t) {
    case IntType::kU8:
      return "u8";
    case IntType::kU16:
      return "u16";
    case IntType::kU32:
      return "u32";
    case IntType::kU64:
      return "u64";
    case IntType::kI8:
      return "i8";
    case IntType::kI16:
      return "i16";
    case IntType::kI32:
      return "i32";
    case IntType::kI64:
      return "i64";
  }
  return "?";
}

IntType unsigned_type_for_size(uint32_t size) {
  switch (size) {
    case 1:
      return IntType::kU8;
    case 2:
      return IntType::kU16;
    case 4:
      return IntType::kU32;
    case 8:
      return IntType::kU64;
  }
  SEDSPEC_REQUIRE_MSG(false, "field size must be 1/2/4/8");
  return IntType::kU64;
}

namespace {

const char* bin_op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kAnd:
      return "&";
    case BinaryOp::kOr:
      return "|";
    case BinaryOp::kXor:
      return "^";
    case BinaryOp::kShl:
      return "<<";
    case BinaryOp::kShr:
      return ">>";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kLAnd:
      return "&&";
    case BinaryOp::kLOr:
      return "||";
  }
  return "?";
}

void print(const Expr& e, std::ostringstream& out,
           const std::string* (*param_name)(ParamId)) {
  switch (e.kind) {
    case ExprKind::kConst:
      out << e.const_value;
      break;
    case ExprKind::kParam:
      if (param_name != nullptr && param_name(e.param) != nullptr) {
        out << *param_name(e.param);
      } else {
        out << "p" << e.param;
      }
      break;
    case ExprKind::kLocal:
      out << "local" << e.local;
      break;
    case ExprKind::kIoField:
      switch (e.io_field) {
        case IoField::kAddr:
          out << "io.addr";
          break;
        case IoField::kValue:
          out << "io.value";
          break;
        case IoField::kSize:
          out << "io.size";
          break;
        case IoField::kIsWrite:
          out << "io.is_write";
          break;
        case IoField::kSpace:
          out << "io.space";
          break;
      }
      break;
    case ExprKind::kBufLoad:
      if (param_name != nullptr && param_name(e.param) != nullptr) {
        out << *param_name(e.param);
      } else {
        out << "p" << e.param;
      }
      out << "[";
      print(*e.lhs, out, param_name);
      out << "]";
      break;
    case ExprKind::kUnary:
      out << (e.un_op == UnaryOp::kNeg      ? "-"
              : e.un_op == UnaryOp::kBitNot ? "~"
                                            : "!");
      out << "(";
      print(*e.lhs, out, param_name);
      out << ")";
      break;
    case ExprKind::kBinary:
      out << "(";
      print(*e.lhs, out, param_name);
      out << " " << bin_op_name(e.bin_op) << " ";
      print(*e.rhs, out, param_name);
      out << ")";
      break;
    case ExprKind::kCast:
      out << "(" << type_name(e.type) << ")(";
      print(*e.lhs, out, param_name);
      out << ")";
      break;
  }
}

}  // namespace

std::string to_string(const Expr& e,
                      const std::string* (*param_name)(ParamId)) {
  std::ostringstream out;
  print(e, out, param_name);
  return out.str();
}

void visit(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  if (e.lhs) visit(*e.lhs, fn);
  if (e.rhs) visit(*e.rhs, fn);
}

namespace eb {

namespace {
ExprRef make(Expr e) { return std::make_shared<const Expr>(std::move(e)); }
}  // namespace

ExprRef c(uint64_t value, IntType type) {
  Expr e;
  e.kind = ExprKind::kConst;
  e.type = type;
  e.const_value = truncate_to(type, value);
  return make(std::move(e));
}

ExprRef param(ParamId id, IntType type) {
  Expr e;
  e.kind = ExprKind::kParam;
  e.type = type;
  e.param = id;
  return make(std::move(e));
}

ExprRef local(LocalId id, IntType type) {
  Expr e;
  e.kind = ExprKind::kLocal;
  e.type = type;
  e.local = id;
  return make(std::move(e));
}

ExprRef io(IoField field, IntType type) {
  Expr e;
  e.kind = ExprKind::kIoField;
  e.type = type;
  e.io_field = field;
  return make(std::move(e));
}

ExprRef io_value(IntType type) { return io(IoField::kValue, type); }

ExprRef buf_load(ParamId buffer, ExprRef index, IntType elem_type) {
  Expr e;
  e.kind = ExprKind::kBufLoad;
  e.type = elem_type;
  e.param = buffer;
  e.lhs = std::move(index);
  return make(std::move(e));
}

ExprRef un(UnaryOp op, ExprRef operand, IntType type) {
  Expr e;
  e.kind = ExprKind::kUnary;
  e.type = type;
  e.un_op = op;
  e.lhs = std::move(operand);
  return make(std::move(e));
}

ExprRef bin(BinaryOp op, ExprRef lhs, ExprRef rhs, IntType type) {
  Expr e;
  e.kind = ExprKind::kBinary;
  e.type = type;
  e.bin_op = op;
  e.lhs = std::move(lhs);
  e.rhs = std::move(rhs);
  return make(std::move(e));
}

ExprRef cast(ExprRef operand, IntType type) {
  Expr e;
  e.kind = ExprKind::kCast;
  e.type = type;
  e.lhs = std::move(operand);
  return make(std::move(e));
}

ExprRef add(ExprRef l, ExprRef r, IntType t) {
  return bin(BinaryOp::kAdd, std::move(l), std::move(r), t);
}
ExprRef sub(ExprRef l, ExprRef r, IntType t) {
  return bin(BinaryOp::kSub, std::move(l), std::move(r), t);
}
ExprRef mul(ExprRef l, ExprRef r, IntType t) {
  return bin(BinaryOp::kMul, std::move(l), std::move(r), t);
}
ExprRef band(ExprRef l, ExprRef r, IntType t) {
  return bin(BinaryOp::kAnd, std::move(l), std::move(r), t);
}
ExprRef bor(ExprRef l, ExprRef r, IntType t) {
  return bin(BinaryOp::kOr, std::move(l), std::move(r), t);
}
ExprRef shr(ExprRef l, ExprRef r, IntType t) {
  return bin(BinaryOp::kShr, std::move(l), std::move(r), t);
}
ExprRef shl(ExprRef l, ExprRef r, IntType t) {
  return bin(BinaryOp::kShl, std::move(l), std::move(r), t);
}

ExprRef eq(ExprRef l, ExprRef r) {
  return bin(BinaryOp::kEq, std::move(l), std::move(r), IntType::kU8);
}
ExprRef ne(ExprRef l, ExprRef r) {
  return bin(BinaryOp::kNe, std::move(l), std::move(r), IntType::kU8);
}
ExprRef lt(ExprRef l, ExprRef r) {
  return bin(BinaryOp::kLt, std::move(l), std::move(r), IntType::kU8);
}
ExprRef le(ExprRef l, ExprRef r) {
  return bin(BinaryOp::kLe, std::move(l), std::move(r), IntType::kU8);
}
ExprRef gt(ExprRef l, ExprRef r) {
  return bin(BinaryOp::kGt, std::move(l), std::move(r), IntType::kU8);
}
ExprRef ge(ExprRef l, ExprRef r) {
  return bin(BinaryOp::kGe, std::move(l), std::move(r), IntType::kU8);
}
ExprRef land(ExprRef l, ExprRef r) {
  return bin(BinaryOp::kLAnd, std::move(l), std::move(r), IntType::kU8);
}
ExprRef lor(ExprRef l, ExprRef r) {
  return bin(BinaryOp::kLOr, std::move(l), std::move(r), IntType::kU8);
}
ExprRef lnot(ExprRef v) {
  return un(UnaryOp::kLogicalNot, std::move(v), IntType::kU8);
}

}  // namespace eb

}  // namespace sedspec
