// Figure 4 reproduction: normalized latency of storage devices.
//
// Same iozone-style sweep as Figure 3, reporting per-operation latency
// (baseline normalized to 1; SEDSpec adds < 5% in the paper).
#include <cstdio>
#include <vector>

#include "benchsim/perf.h"
#include "guest/workload.h"
#include "common/log.h"
#include "report.h"

int main() {
  using namespace sedspec;
  set_log_level(LogLevel::kError);
  bench_report::title(
      "Figure 4 — Normalized storage latency (baseline = 1.000)");
  bench_report::MetricSink sink("fig4_storage_latency");

  // Byte-PIO devices (FDC, SDHCI) pay a VM exit per data byte, so their
  // sweep and byte budget are smaller to keep wall time sane; DMA-style
  // devices run the full sweep. The FDC additionally cannot exceed its
  // 2.88 MB medium (as in the paper).
  const std::vector<size_t> kSweepPio = {4u << 10, 16u << 10, 64u << 10,
                                         256u << 10};
  const std::vector<size_t> kSweepDma = {4u << 10, 16u << 10, 64u << 10,
                                         256u << 10, 1u << 20, 4u << 20};
  std::printf("%-10s %-8s | %12s %12s | %12s %12s\n", "Device", "Block",
              "write us/op", "read us/op", "norm write", "norm read");
  bench_report::rule();

  for (const std::string& name : guest::workload_names()) {
    auto probe = guest::make_workload(name);
    if (!probe->is_storage()) {
      continue;
    }
    const bool pio = name == "fdc" || name == "sdhci";
    for (size_t block : pio ? kSweepPio : kSweepDma) {
      if (block >= probe->storage_capacity()) {
        continue;
      }
      const size_t budget = pio ? (64u << 10) : (4u << 20);

      auto base_wl = guest::make_workload(name);
      benchsim::apply_latency_model(*base_wl);
      const auto base = benchsim::measure_storage(*base_wl, block, budget);

      auto sed_wl = guest::make_workload(name);
      sed_wl->build_and_deploy();
      benchsim::apply_latency_model(*sed_wl);
      const auto sed = benchsim::measure_storage(*sed_wl, block, budget);

      std::printf("%-10s %-8s | %12.1f %12.1f | %12.3f %12.3f\n",
                  name.c_str(), bench_report::human_size(block).c_str(),
                  sed.write_latency_us, sed.read_latency_us,
                  sed.write_latency_us / base.write_latency_us,
                  sed.read_latency_us / base.read_latency_us);
      const std::string key =
          name + "/" + bench_report::human_size(block) + "/";
      sink.put(key + "write_us_per_op", sed.write_latency_us);
      sink.put(key + "read_us_per_op", sed.read_latency_us);
      sink.put(key + "norm_write",
               sed.write_latency_us / base.write_latency_us);
      sink.put(key + "norm_read", sed.read_latency_us / base.read_latency_us);
    }
    bench_report::rule();
  }
  std::printf(
      "Shape check: normalized latency stays near 1.0 (paper: < 5%% added\n"
      "latency across block sizes).\n");
  sink.write_json();
  return 0;
}
