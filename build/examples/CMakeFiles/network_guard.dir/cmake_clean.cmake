file(REMOVE_RECURSE
  "CMakeFiles/network_guard.dir/network_guard.cpp.o"
  "CMakeFiles/network_guard.dir/network_guard.cpp.o.d"
  "network_guard"
  "network_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
