// Robustness layer: integrity envelope + structured spec loading, checker
// failure domains (fail-closed quarantine, fail-open degradation +
// self-heal, traversal watchdog), the bus proxy backstop, DMA fault
// absorption, trace-transport fault tolerance, and the full deterministic
// fault-injection campaign.
#include <gtest/gtest.h>

#include "checker/checker_set.h"
#include "common/crc32.h"
#include "faultinject/campaign.h"
#include "faultinject/faultinject.h"
#include "guest/workload.h"
#include "spec/serial.h"
#include "vdev/dma.h"

namespace sedspec {
namespace {

using checker::CheckerConfig;
using checker::CheckerStats;
using checker::EsChecker;
using checker::FailurePolicy;
using checker::Mode;
using guest::DeviceWorkload;
using guest::InteractionMode;
using guest::make_workload;
using guest::workload_names;

// --- Spec integrity envelope -----------------------------------------------

TEST(SpecEnvelope, LoadAcceptsPristineArtifact) {
  auto wl = make_workload("fdc");
  const auto bytes = spec::serialize(
      pipeline::build_spec(wl->device(), [&] { wl->training(); }));
  const spec::LoadResult r = spec::load(bytes);
  ASSERT_TRUE(r.ok()) << r.error.describe();
  EXPECT_EQ(r.cfg->device_name, "fdc");
}

TEST(SpecEnvelope, EachDefectYieldsItsStatus) {
  auto wl = make_workload("fdc");
  const auto bytes = spec::serialize(
      pipeline::build_spec(wl->device(), [&] { wl->training(); }));
  ASSERT_GT(bytes.size(), spec::kSpecEnvelopeSize);

  {
    std::vector<uint8_t> b(bytes.begin(),
                           bytes.begin() + spec::kSpecEnvelopeSize - 1);
    EXPECT_EQ(spec::load(b).error.status, spec::LoadStatus::kTooShort);
  }
  {
    std::vector<uint8_t> b = bytes;
    b[0] ^= 0xff;
    EXPECT_EQ(spec::load(b).error.status, spec::LoadStatus::kBadMagic);
  }
  {
    std::vector<uint8_t> b = bytes;
    b[4] += 1;  // version field
    EXPECT_EQ(spec::load(b).error.status, spec::LoadStatus::kVersionSkew);
  }
  {
    std::vector<uint8_t> b = bytes;
    b.push_back(0);  // trailing garbage
    EXPECT_EQ(spec::load(b).error.status, spec::LoadStatus::kLengthMismatch);
  }
  {
    std::vector<uint8_t> b = bytes;
    b[spec::kSpecEnvelopeSize] ^= 0x01;  // payload bit flip
    EXPECT_EQ(spec::load(b).error.status, spec::LoadStatus::kCrcMismatch);
  }
  {
    // Structural damage under a valid CRC: truncate the payload and reseal.
    std::vector<uint8_t> b = bytes;
    b.resize(b.size() - 3);
    spec::reseal(b);
    EXPECT_EQ(spec::load(b).error.status, spec::LoadStatus::kMalformed);
  }
}

TEST(SpecEnvelope, Crc32MatchesKnownVector) {
  // "123456789" -> 0xcbf43926 (the standard CRC-32 check value).
  const std::vector<uint8_t> check = {'1', '2', '3', '4', '5',
                                      '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xcbf43926u);
}

class FaultInjectSuite : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllDevices, FaultInjectSuite,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// Corruption fuzz: whatever happens to the serialized artifact — random bit
// flips, truncations, resealed payload garbling — load() must never throw,
// and deserialize() must throw DecodeError, never crash or corrupt memory.
TEST_P(FaultInjectSuite, SerializedSpecCorruptionNeverCrashesLoader) {
  auto wl = make_workload(GetParam());
  const auto bytes = spec::serialize(
      pipeline::build_spec(wl->device(), [&] { wl->training(); }));
  Rng rng(0xf00d ^ std::hash<std::string>{}(GetParam()));
  for (int i = 0; i < 400; ++i) {
    std::vector<uint8_t> b = bytes;
    const auto kind = static_cast<faultinject::SpecFaultKind>(
        rng.below(faultinject::kSpecFaultKinds));
    faultinject::corrupt_spec(b, kind, rng);
    // Extra unresealed payload damage on top, sometimes.
    if (rng.chance(0.3) && !b.empty()) {
      b[rng.below(b.size())] ^= static_cast<uint8_t>(rng.next_u64());
    }
    spec::LoadResult r;
    EXPECT_NO_THROW(r = spec::load(b)) << GetParam() << " iteration " << i;
    if (!r.ok()) {
      EXPECT_NE(r.error.status, spec::LoadStatus::kOk);
      EXPECT_THROW((void)spec::deserialize(b), DecodeError);
    }
  }
}

// A corrupt spec must never install a checker; the bus proxy slot and the
// device stay untouched.
TEST_P(FaultInjectSuite, DeploySerializedRejectsCorruptSpecs) {
  auto wl = make_workload(GetParam());
  auto bytes = spec::serialize(
      pipeline::build_spec(wl->device(), [&] { wl->training(); }));
  Rng rng(0xbead);
  faultinject::corrupt_spec(bytes, faultinject::SpecFaultKind::kBitFlip, rng);
  const auto out =
      pipeline::deploy_serialized(bytes, wl->device(), wl->bus(), {});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.checker, nullptr);
  // Benign traffic still works unprotected (no proxy was installed).
  Rng oprng(1);
  EXPECT_NO_THROW(wl->common_operation(InteractionMode::kSequential, oprng));
}

TEST(SpecEnvelope, DeploySerializedRejectsDeviceMismatch) {
  auto fdc = make_workload("fdc");
  const auto bytes = spec::serialize(
      pipeline::build_spec(fdc->device(), [&] { fdc->training(); }));
  auto sdhci = make_workload("sdhci");
  const auto out =
      pipeline::deploy_serialized(bytes, sdhci->device(), sdhci->bus(), {});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error.status, spec::LoadStatus::kDeviceMismatch);
}

// --- Failure domains --------------------------------------------------------

// Fail-closed: an internal checker fault quarantines (resets) the device and
// re-arms protection; subsequent benign I/O is served checked and clean.
TEST_P(FaultInjectSuite, FailClosedQuarantineRecoversDevice) {
  auto wl = make_workload(GetParam());
  CheckerConfig config;
  config.failure_policy = FailurePolicy::kFailClosed;
  wl->build_and_deploy(config);
  EsChecker& ck = *wl->checker();

  faultinject::arm_checker_faults(ck, faultinject::CheckerFaultKind::kThrow,
                                  1, 7);
  Rng rng(11);
  EXPECT_NO_THROW(wl->common_operation(InteractionMode::kSequential, rng));
  faultinject::disarm_checker_faults(ck);

  const CheckerStats& s = ck.stats();
  EXPECT_EQ(s.contained_faults, 1u);
  EXPECT_EQ(s.fail_closed_faults, 1u);
  EXPECT_EQ(s.quarantines, 1u);
  EXPECT_EQ(s.fail_open_faults, 0u);
  EXPECT_FALSE(ck.degraded());
  EXPECT_FALSE(wl->device().halted()) << "quarantine must reset, not strand";

  // Protection is re-armed and the device fully functional.
  const uint64_t blocked_before = s.blocked;
  for (int i = 0; i < 4; ++i) {
    EXPECT_NO_THROW(wl->common_operation(InteractionMode::kSequential, rng));
  }
  EXPECT_EQ(ck.stats().blocked, blocked_before);
  EXPECT_GT(ck.stats().clean_rounds, 0u);
  EXPECT_EQ(s.rounds, s.clean_rounds + s.warnings + s.blocked +
                          s.degraded_rounds);
}

// Fail-open: the fault degrades the checker instead of costing a device
// reset; unprotected rounds are counted, and the periodic self-heal
// re-attaches protection.
TEST_P(FaultInjectSuite, FailOpenDegradesThenSelfHeals) {
  auto wl = make_workload(GetParam());
  CheckerConfig config;
  config.failure_policy = FailurePolicy::kFailOpen;
  config.self_heal_interval = 3;
  wl->build_and_deploy(config);
  EsChecker& ck = *wl->checker();

  faultinject::arm_checker_faults(ck, faultinject::CheckerFaultKind::kThrow,
                                  1, 7);
  Rng rng(13);
  EXPECT_NO_THROW(wl->common_operation(InteractionMode::kSequential, rng));
  faultinject::disarm_checker_faults(ck);

  EXPECT_EQ(ck.stats().contained_faults, 1u);
  EXPECT_EQ(ck.stats().fail_open_faults, 1u);
  EXPECT_EQ(ck.stats().quarantines, 0u);
  EXPECT_GT(ck.stats().degraded_rounds, 0u);

  // Keep driving benign I/O until the self-heal re-attaches.
  for (int i = 0; i < 8 && ck.degraded(); ++i) {
    EXPECT_NO_THROW(wl->common_operation(InteractionMode::kSequential, rng));
  }
  EXPECT_FALSE(ck.degraded());
  EXPECT_GE(ck.stats().self_heals, 1u);
  const CheckerStats& s = ck.stats();
  EXPECT_EQ(s.rounds, s.clean_rounds + s.warnings + s.blocked +
                          s.degraded_rounds);
}

// Mid-round shadow corruption must never escape the proxy; at worst it is a
// spurious violation resolved by the configured policy.
TEST_P(FaultInjectSuite, ShadowCorruptionIsContainedOrFlagged) {
  auto wl = make_workload(GetParam());
  CheckerConfig config;
  config.rollback_on_violation = true;
  wl->build_and_deploy(config);
  EsChecker& ck = *wl->checker();
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    faultinject::arm_checker_faults(
        ck, faultinject::CheckerFaultKind::kShadowCorrupt, 1, 1000 + i);
    EXPECT_NO_THROW(wl->common_operation(InteractionMode::kSequential, rng));
    faultinject::disarm_checker_faults(ck);
    ck.resync();
  }
  EXPECT_FALSE(wl->device().halted());
  EXPECT_EQ(wl->bus().proxy_fault_count(), 0u);
}

// The traversal watchdog: with termination logic suppressed on a cyclic
// spec, the round must end in a contained CheckerFault — not a hang.
TEST(FailureDomains, WatchdogEndsRunawayTraversal) {
  auto wl = make_workload("fdc");
  spec::EsCfg cfg =
      pipeline::build_spec(wl->device(), [&] { wl->training(); });
  // Rewire every entry block into a self-loop.
  for (const auto& [key, entry] : cfg.entry_dispatch) {
    if (entry == kInvalidSite) {
      continue;
    }
    spec::EsBlock& block = cfg.blocks.at(entry);
    block.kind = BlockKind::kPlain;
    block.merged = false;
    block.has_succ = true;
    block.succ = entry;
    block.ends = false;
  }

  CheckerConfig config;
  config.max_steps = 1u << 10;
  config.watchdog_steps = 1u << 12;
  config.rollback_on_violation = true;
  auto checker = pipeline::deploy(cfg, wl->device(), wl->bus(), config);
  // Some rounds end at dispatch without reaching a looped block; arm enough
  // one-shot faults that at least one suppressed round actually loops.
  faultinject::arm_checker_faults(
      *checker, faultinject::CheckerFaultKind::kRunaway, 64, 3);
  Rng rng(19);
  EXPECT_NO_THROW(wl->common_operation(InteractionMode::kSequential, rng));
  EXPECT_GE(checker->stats().contained_faults, 1u);
  EXPECT_GE(checker->stats().quarantines, 1u);  // default fail-closed
  wl->bus().set_proxy(nullptr);
  wl->device().set_internal_activity_hook({});
}

// Without the fault, the same cyclic spec resolves through the ordinary
// violation path (visit bound / budget), not the watchdog.
TEST(FailureDomains, CyclicSpecWithoutFaultIsAViolationNotAFault) {
  auto wl = make_workload("fdc");
  spec::EsCfg cfg =
      pipeline::build_spec(wl->device(), [&] { wl->training(); });
  for (const auto& [key, entry] : cfg.entry_dispatch) {
    if (entry == kInvalidSite) {
      continue;
    }
    spec::EsBlock& block = cfg.blocks.at(entry);
    block.kind = BlockKind::kPlain;
    block.merged = false;
    block.has_succ = true;
    block.succ = entry;
    block.ends = false;
  }

  CheckerConfig config;
  config.max_steps = 1u << 10;
  config.rollback_on_violation = true;
  auto checker = pipeline::deploy(cfg, wl->device(), wl->bus(), config);
  Rng rng(23);
  EXPECT_NO_THROW(wl->common_operation(InteractionMode::kSequential, rng));
  EXPECT_EQ(checker->stats().contained_faults, 0u);
  EXPECT_GT(checker->stats().blocked, 0u);
  wl->bus().set_proxy(nullptr);
  wl->device().set_internal_activity_hook({});
}

// Rollback recovery: after a blocked violation with rollback enabled, the
// device is not halted and keeps serving benign I/O cleanly.
TEST_P(FaultInjectSuite, RollbackRecoveryKeepsDeviceAvailable) {
  auto wl = make_workload(GetParam());
  CheckerConfig config;
  config.rollback_on_violation = true;
  wl->build_and_deploy(config);
  Rng rng(29);
  wl->rare_operation(rng);  // triggers a blocked violation in protection mode
  EXPECT_GT(wl->checker()->stats().blocked, 0u);
  EXPECT_GT(wl->checker()->stats().rollbacks, 0u);
  EXPECT_FALSE(wl->device().halted());
  const uint64_t blocked = wl->checker()->stats().blocked;
  for (int i = 0; i < 4; ++i) {
    EXPECT_NO_THROW(wl->common_operation(InteractionMode::kSequential, rng));
  }
  EXPECT_EQ(wl->checker()->stats().blocked, blocked)
      << "benign traffic after rollback must stay clean";
}

// --- Bus backstop -----------------------------------------------------------

struct ThrowingProxy final : IoProxy {
  bool before_access(Device&, const IoAccess&) override {
    throw std::runtime_error("rogue proxy");
  }
};

TEST(BusBackstop, EscapedProxyExceptionIsAbsorbedAndFailClosed) {
  auto wl = make_workload("fdc");
  ThrowingProxy rogue;
  wl->bus().set_proxy(&rogue);
  Rng rng(31);
  EXPECT_NO_THROW(wl->common_operation(InteractionMode::kSequential, rng));
  EXPECT_GT(wl->bus().proxy_fault_count(), 0u);
  EXPECT_EQ(wl->bus().proxy_fault_count(), wl->bus().blocked_count())
      << "backstopped accesses are blocked (fail-closed last resort)";
  wl->bus().set_proxy(nullptr);
}

TEST(BusBackstop, EsCheckerNeverTriggersBackstop) {
  auto wl = make_workload("fdc");
  wl->build_and_deploy();
  EsChecker& ck = *wl->checker();
  Rng rng(37);
  for (int i = 0; i < 6; ++i) {
    faultinject::arm_checker_faults(ck, faultinject::CheckerFaultKind::kThrow,
                                    1, 100 + i);
    EXPECT_NO_THROW(wl->common_operation(InteractionMode::kSequential, rng));
  }
  faultinject::disarm_checker_faults(ck);
  EXPECT_EQ(wl->bus().proxy_fault_count(), 0u)
      << "the checker must contain its own faults";
  EXPECT_GE(ck.stats().contained_faults, 1u);
}

// --- DMA faults -------------------------------------------------------------

TEST(DmaFaults, FailedAndShortTransfersAreAbsorbed) {
  for (const std::string name : {"pcnet", "usb-ehci", "scsi-esp"}) {
    auto wl = make_workload(name);
    ASSERT_NE(wl->device().dma_engine(), nullptr) << name;
    wl->build_and_deploy(
        CheckerConfig{.rollback_on_violation = true});
    DmaEngine& dma = *wl->device().dma_engine();
    Rng rng(41);
    for (int i = 0; i < 20; ++i) {
      const auto kind = static_cast<faultinject::DmaFaultKind>(i % 2);
      faultinject::arm_dma_faults(wl->device(), kind, 1, 500 + i);
      EXPECT_NO_THROW(
          wl->common_operation(InteractionMode::kSequential, rng))
          << name;
    }
    faultinject::disarm_dma_faults(wl->device());
    EXPECT_GT(dma.faults_injected(), 0u) << name;
    EXPECT_FALSE(wl->device().halted()) << name;
    EXPECT_EQ(wl->bus().proxy_fault_count(), 0u) << name;
  }
}

TEST(DmaFaults, PioOnlyDevicesHaveNoEngine) {
  for (const std::string name : {"fdc", "sdhci"}) {
    auto wl = make_workload(name);
    EXPECT_EQ(wl->device().dma_engine(), nullptr) << name;
    EXPECT_FALSE(faultinject::arm_dma_faults(
        wl->device(), faultinject::DmaFaultKind::kFailTransfer, 1, 1))
        << name;
  }
}

// --- Trace faults -----------------------------------------------------------

TEST_P(FaultInjectSuite, GarbledTraceTransportNeverCrashesPipeline) {
  auto wl = make_workload(GetParam());
  Rng rng(0xcafe);
  for (int i = 0; i < 6; ++i) {
    pipeline::CollectOptions opts;
    const auto kind = static_cast<faultinject::TraceFaultKind>(
        i % faultinject::kTraceFaultKinds);
    opts.packet_tap = [&](std::vector<uint8_t>& packets) {
      faultinject::corrupt_packets(packets, kind, 1 + rng.below(4), rng);
    };
    try {
      const auto collection =
          pipeline::collect(wl->device(), [&] { wl->training(); }, opts);
      (void)pipeline::construct(wl->device(), collection);
    } catch (const std::exception&) {
      // Rejecting a garbled trace is a legal outcome; crashing is not.
    }
    wl->device().reset();
  }
}

// --- Stats plumbing ---------------------------------------------------------

TEST(StatsPlumbing, MergeAndAggregateSumEveryCounter) {
  CheckerStats a;
  a.rounds = 3;
  a.contained_faults = 1;
  a.fail_closed_faults = 1;
  a.quarantines = 1;
  CheckerStats b;
  b.rounds = 2;
  b.degraded_rounds = 2;
  b.fail_open_faults = 1;
  b.contained_faults = 1;
  b.self_heals = 1;
  a.merge(b);
  EXPECT_EQ(a.rounds, 5u);
  EXPECT_EQ(a.contained_faults, 2u);
  EXPECT_EQ(a.fail_closed_faults, 1u);
  EXPECT_EQ(a.fail_open_faults, 1u);
  EXPECT_EQ(a.degraded_rounds, 2u);
  EXPECT_EQ(a.quarantines, 1u);
  EXPECT_EQ(a.self_heals, 1u);

  checker::CheckerSet set;
  auto fdc = make_workload("fdc");
  auto cfg = pipeline::build_spec(fdc->device(), [&] { fdc->training(); });
  EsChecker* ck = set.attach(cfg, fdc->device(), {});
  fdc->bus().set_proxy(&set);
  Rng rng(43);
  fdc->common_operation(InteractionMode::kSequential, rng);
  const CheckerStats agg = set.aggregate_stats();
  EXPECT_EQ(agg.rounds, ck->stats().rounds);
  EXPECT_GT(agg.rounds, 0u);
  fdc->bus().set_proxy(nullptr);
  fdc->device().set_internal_activity_hook({});
}

// --- Campaign ---------------------------------------------------------------

// A compact but full-coverage campaign run (all four layers, all five
// devices, both policies would be ~2x this; the standalone
// examples/fault_campaign binary runs the big sweep). Acceptance: zero
// escapes, zero backstop hits, every fault accounted.
TEST(Campaign, EveryFaultAccountedZeroEscapes) {
  faultinject::CampaignConfig config;
  config.seed = 0xf00d;
  config.spec_faults_per_device = 16;
  config.trace_faults_per_device = 3;
  config.dma_faults_per_device = 8;
  config.checker_faults_per_device = 9;
  config.ops_per_fault = 2;
  const faultinject::CampaignResult result =
      faultinject::run_campaign(config);

  EXPECT_EQ(result.devices_run, workload_names().size());
  const faultinject::LayerOutcomes total = result.total();
  EXPECT_GT(total.injected, 0u);
  EXPECT_EQ(total.escaped, 0u);
  EXPECT_EQ(result.proxy_faults, 0u);
  for (size_t i = 0; i < faultinject::kLayerCount; ++i) {
    EXPECT_TRUE(result.by_layer[i].accounted())
        << faultinject::layer_name(static_cast<faultinject::Layer>(i))
        << " layer lost faults:\n"
        << result.describe();
    // kDma is device-conditional and kControl is driven by the dedicated
    // control-plane campaign (control/campaign.h), not this sweep.
    const auto layer = static_cast<faultinject::Layer>(i);
    if (layer != faultinject::Layer::kDma &&
        layer != faultinject::Layer::kControl) {
      EXPECT_GT(result.by_layer[i].injected, 0u);
    }
  }
  // Layer-specific expectations: spec corruption is overwhelmingly caught
  // at load; checker faults resolve at the containment boundary.
  const auto& spec_o =
      result.by_layer[static_cast<size_t>(faultinject::Layer::kSpec)];
  EXPECT_GT(spec_o.rejected_at_load, 0u);
  const auto& ck_o =
      result.by_layer[static_cast<size_t>(faultinject::Layer::kChecker)];
  EXPECT_GT(ck_o.contained, 0u);
}

TEST(Campaign, DeterministicPerSeed) {
  faultinject::CampaignConfig config;
  config.seed = 0xbead;
  config.devices = {"fdc"};
  config.spec_faults_per_device = 12;
  config.trace_faults_per_device = 2;
  config.dma_faults_per_device = 0;
  config.checker_faults_per_device = 6;
  config.ops_per_fault = 2;
  const auto a = faultinject::run_campaign(config);
  const auto b = faultinject::run_campaign(config);
  EXPECT_EQ(a.describe(), b.describe());
}

TEST(Campaign, FailOpenPolicyProducesDegradedResolutions) {
  faultinject::CampaignConfig config;
  config.seed = 0xcafe;
  config.devices = {"fdc"};
  config.policy = FailurePolicy::kFailOpen;
  config.spec_faults_per_device = 0;
  config.trace_faults_per_device = 0;
  config.dma_faults_per_device = 0;
  config.checker_faults_per_device = 9;
  config.ops_per_fault = 2;
  const auto result = faultinject::run_campaign(config);
  const auto& o =
      result.by_layer[static_cast<size_t>(faultinject::Layer::kChecker)];
  EXPECT_GT(o.fail_open, 0u);
  EXPECT_EQ(o.fail_closed, 0u);
  EXPECT_EQ(o.escaped, 0u);
}

}  // namespace
}  // namespace sedspec
