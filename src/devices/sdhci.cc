#include "devices/sdhci.h"

#include <algorithm>

#include "common/assert.h"

namespace sedspec::devices {

namespace {

using sedspec::eb::add;
using sedspec::eb::band;
using sedspec::eb::bor;
using sedspec::eb::c;
using sedspec::eb::eq;
using sedspec::eb::ge;
using sedspec::eb::gt;
using sedspec::eb::io_value;
using sedspec::eb::param;
using sedspec::eb::shr;
using sedspec::eb::sub;
using sedspec::eb::un;

constexpr IntType U8 = IntType::kU8;
constexpr IntType U16 = IntType::kU16;
constexpr IntType U32 = IntType::kU32;

}  // namespace

SdhciDevice::SdhciDevice(Vulns vulns)
    : SdhciDevice(std::make_unique<Blueprint>([&] {
        Blueprint bp;
        StateLayout layout("SDHCIState");
        bp.blksize = layout.add_scalar("blksize", FieldKind::kLength, U16);
        bp.blkcnt = layout.add_scalar("blkcnt", FieldKind::kLength, U16);
        bp.argument = layout.add_scalar("argument", FieldKind::kRegister, U32);
        bp.trnmod = layout.add_scalar("trnmod", FieldKind::kRegister, U16);
        bp.cmdreg = layout.add_scalar("cmdreg", FieldKind::kRegister, U16);
        bp.response = layout.add_scalar("response", FieldKind::kRegister, U32);
        bp.prnsts = layout.add_scalar("prnsts", FieldKind::kRegister, U32);
        bp.norintsts =
            layout.add_scalar("norintsts", FieldKind::kRegister, U16);
        bp.transfer_active =
            layout.add_scalar("transfer_active", FieldKind::kFlag, U8);
        bp.is_write = layout.add_scalar("is_write", FieldKind::kFlag, U8);
        bp.blocks_left =
            layout.add_scalar("blocks_left", FieldKind::kLength, U16);
        bp.cur_block = layout.add_scalar("cur_block", FieldKind::kIndex, U16);
        bp.irq_fn = layout.add_funcptr("irq_fn");
        bp.fifo_buffer = layout.add_buffer("fifo_buffer", 1, kFifoSize);
        bp.data_count = layout.add_scalar("data_count", FieldKind::kIndex, U32);

        DeviceProgram prog("sdhci", std::move(layout), /*code_base=*/0x500000);
        bp.f_irq = prog.add_function("sdhci_raise_irq");
        bp.l_remaining = prog.add_local("remaining");

        auto P = [&](ParamId p, IntType t) { return param(p, t); };
        ExprRef blksize_masked = band(P(bp.blksize, U16), c(0xfff, U16), U16);

        // --- Plain register writes ------------------------------------
        bp.s_blksize_guard = prog.add_conditional(
            "sdhci_write_blksize.guard",
            eq(P(bp.transfer_active, U8), c(1, U8)));
        bp.s_blksize_ignored =
            prog.add_plain("sdhci_write_blksize.ignored", {});
        bp.s_blksize_set = prog.add_plain(
            "sdhci_write_blksize.set",
            {sb::assign(bp.blksize, io_value(U16), "blksize = value")});
        bp.s_blkcnt_set = prog.add_plain(
            "sdhci_write_blkcnt", {sb::assign(bp.blkcnt, io_value(U16))});
        bp.s_arg_set = prog.add_plain(
            "sdhci_write_arg", {sb::assign(bp.argument, io_value(U32))});
        bp.s_trnmod_set = prog.add_plain(
            "sdhci_write_trnmod", {sb::assign(bp.trnmod, io_value(U16))});

        // --- Command issue ----------------------------------------------
        bp.s_cmd_issue = prog.add_cmd_decision(
            "sdhci_send_command",
            band(shr(io_value(U16), c(8, U16), U16), c(0x3f, U16), U16),
            {sb::assign(bp.cmdreg, io_value(U16), "cmdreg = value")});

        auto respond = [&](sedspec::StmtList extra) {
          sedspec::StmtList out = {
              sb::assign(bp.response, c(0x900, U32), "response = R1 ready"),
              sb::assign(bp.norintsts,
                         bor(P(bp.norintsts, U16), c(kIntCmdDone, U16), U16),
                         "norintsts |= CMD_DONE")};
          out.insert(out.end(), extra.begin(), extra.end());
          return out;
        };

        bp.s_cmd_reset = prog.add_plain(
            "sdhci_cmd_go_idle",
            respond({sb::assign(bp.transfer_active, c(0, U8)),
                     sb::assign(bp.data_count, c(0, U32)),
                     sb::assign(bp.blocks_left, c(0, U16))}));
        bp.s_cmd_simple = prog.add_plain("sdhci_cmd_simple", respond({}));
        bp.s_cmd_setblocklen = prog.add_plain(
            "sdhci_cmd_set_blocklen",
            respond({sb::assign(bp.blksize,
                                band(P(bp.argument, U32), c(0xfff, U32), U32),
                                "blksize = arg & 0xfff")}));

        auto start_xfer = [&](bool write, bool multi) {
          sedspec::StmtList out =
              respond({sb::assign(bp.transfer_active, c(1, U8)),
                       sb::assign(bp.is_write, c(write ? 1 : 0, U8)),
                       sb::assign(bp.cur_block, c(0, U16)),
                       sb::assign(bp.data_count, c(0, U32))});
          if (multi) {
            out.push_back(sb::assign(bp.blocks_left, P(bp.blkcnt, U16),
                                     "blocks_left = blkcnt"));
          } else {
            out.push_back(sb::assign(bp.blocks_left, c(1, U16)));
          }
          if (!write) {
            out.push_back(sb::buf_fill(bp.fifo_buffer, c(0, U32),
                                       sedspec::eb::cast(blksize_masked, U32),
                                       "fifo <- card block"));
          }
          return out;
        };
        bp.s_cmd_read_single =
            prog.add_plain("sdhci_cmd_read_single", start_xfer(false, false));
        bp.s_cmd_read_multi =
            prog.add_plain("sdhci_cmd_read_multi", start_xfer(false, true));
        bp.s_cmd_write_single =
            prog.add_plain("sdhci_cmd_write_single", start_xfer(true, false));
        bp.s_cmd_write_multi =
            prog.add_plain("sdhci_cmd_write_multi", start_xfer(true, true));
        bp.s_cmd_stop = prog.add_plain(
            "sdhci_cmd_stop",
            respond({sb::assign(bp.transfer_active, c(0, U8)),
                     sb::assign(bp.data_count, c(0, U32))}));
        bp.s_cmd_rare = prog.add_plain("sdhci_cmd_rare", respond({}));
        bp.s_cmd_unknown = prog.add_plain("sdhci_cmd_unknown", respond({}));

        bp.s_irq_cmd = prog.add_indirect("sdhci_irq.cmd_done", bp.irq_fn);
        bp.s_cmd_end_simple = prog.add_cmd_end("sdhci_cmd_complete", {});

        // --- BDATA write path (PIO to card) -----------------------------
        bp.s_bdata_w_act = prog.add_conditional(
            "sdhci_write_dataport.active",
            eq(P(bp.transfer_active, U8), c(1, U8)));
        bp.s_bdata_w_dir = prog.add_conditional(
            "sdhci_write_dataport.dir", eq(P(bp.is_write, U8), c(1, U8)));
        bp.s_bdata_store = prog.add_plain(
            "sdhci_write_dataport.store",
            {sb::assign_local(bp.l_remaining,
                              sub(sedspec::eb::cast(blksize_masked, U32),
                                  P(bp.data_count, U32), U32),
                              "remaining = blksize - data_count"),
             sb::buf_store(bp.fifo_buffer, P(bp.data_count, U32),
                           io_value(U8), "fifo_buffer[data_count] = value"),
             sb::assign(bp.data_count,
                        add(P(bp.data_count, U32), c(1, U32), U32),
                        "data_count++")});
        bp.s_bdata_w_blkdone = prog.add_conditional(
            "sdhci_write_block_gap",
            ge(P(bp.data_count, U32), sedspec::eb::cast(blksize_masked, U32)));
        bp.s_blk_written = prog.add_plain(
            "sdhci_block_written", {sb::assign(bp.data_count, c(0, U32))});
        bp.s_blk_w_more = prog.add_conditional(
            "sdhci_write_more_blocks", gt(P(bp.blocks_left, U16), c(1, U16)));
        bp.s_blk_w_next = prog.add_plain(
            "sdhci_write_next_block",
            {sb::assign(bp.blocks_left,
                        sub(P(bp.blocks_left, U16), c(1, U16), U16)),
             sb::assign(bp.cur_block,
                        add(P(bp.cur_block, U16), c(1, U16), U16))});
        bp.s_xfer_w_done = prog.add_plain(
            "sdhci_write_transfer_done",
            {sb::assign(bp.transfer_active, c(0, U8)),
             sb::assign(bp.norintsts,
                        bor(P(bp.norintsts, U16), c(kIntXferDone, U16), U16),
                        "norintsts |= XFER_DONE")});
        bp.s_irq_xfer_w = prog.add_indirect("sdhci_irq.write_done", bp.irq_fn);
        bp.s_cmd_end_xfer_w = prog.add_cmd_end("sdhci_write_cmd_end", {});

        // --- BDATA read path ------------------------------------------
        bp.s_bdata_r_act = prog.add_conditional(
            "sdhci_read_dataport.active",
            eq(P(bp.transfer_active, U8), c(1, U8)));
        bp.s_bdata_r_dir = prog.add_conditional(
            "sdhci_read_dataport.dir", eq(P(bp.is_write, U8), c(0, U8)));
        bp.s_bdata_load = prog.add_plain(
            "sdhci_read_dataport.advance",
            {sb::assign_local(bp.l_remaining,
                              sub(sedspec::eb::cast(blksize_masked, U32),
                                  P(bp.data_count, U32), U32),
                              "remaining = blksize - data_count"),
             sb::assign(bp.data_count,
                        add(P(bp.data_count, U32), c(1, U32), U32),
                        "data_count++")});
        bp.s_bdata_r_blkdone = prog.add_conditional(
            "sdhci_read_block_gap",
            ge(P(bp.data_count, U32), sedspec::eb::cast(blksize_masked, U32)));
        bp.s_blk_read_done = prog.add_plain(
            "sdhci_block_read", {sb::assign(bp.data_count, c(0, U32))});
        bp.s_blk_r_more = prog.add_conditional(
            "sdhci_read_more_blocks", gt(P(bp.blocks_left, U16), c(1, U16)));
        bp.s_blk_r_next = prog.add_plain(
            "sdhci_read_next_block",
            {sb::assign(bp.blocks_left,
                        sub(P(bp.blocks_left, U16), c(1, U16), U16)),
             sb::assign(bp.cur_block,
                        add(P(bp.cur_block, U16), c(1, U16), U16)),
             sb::buf_fill(bp.fifo_buffer, c(0, U32),
                          sedspec::eb::cast(blksize_masked, U32),
                          "fifo <- next card block")});
        bp.s_xfer_r_done = prog.add_plain(
            "sdhci_read_transfer_done",
            {sb::assign(bp.transfer_active, c(0, U8)),
             sb::assign(bp.norintsts,
                        bor(P(bp.norintsts, U16), c(kIntXferDone, U16), U16))});
        bp.s_irq_xfer_r = prog.add_indirect("sdhci_irq.read_done", bp.irq_fn);
        bp.s_cmd_end_xfer_r = prog.add_cmd_end("sdhci_read_cmd_end", {});

        // --- Status reads / interrupt acknowledge -----------------------
        bp.s_resp_read = prog.add_plain("sdhci_read_response", {});
        bp.s_prnsts_read = prog.add_plain("sdhci_read_prnsts", {});
        bp.s_intsts_read = prog.add_plain("sdhci_read_norintsts", {});
        bp.s_intsts_clear = prog.add_plain(
            "sdhci_clear_norintsts",
            {sb::assign(bp.norintsts,
                        band(P(bp.norintsts, U16),
                             un(sedspec::UnaryOp::kBitNot, io_value(U16), U16),
                             U16),
                        "norintsts &= ~value  /* RW1C */")});

        bp.program = std::make_unique<DeviceProgram>(std::move(prog));
        return bp;
      }()),
      vulns) {}

SdhciDevice::SdhciDevice(std::unique_ptr<Blueprint> bp, Vulns vulns)
    : Device(bp->program.get()),
      bp_(std::move(bp)),
      vulns_(vulns),
      card_(kCardSize, 0) {
  ictx().bind_function(bp_->f_irq, [this] { irq_line().pulse(); });
  reset();
}

SdhciDevice::~SdhciDevice() = default;

void SdhciDevice::reset_device() {
  state().set(bp_->blksize, kBlockSize);
  state().set(bp_->prnsts, 0x000a0000);  // card inserted + stable
  state().set(bp_->irq_fn, bp_->f_irq);
}

size_t SdhciDevice::card_offset() const {
  const uint64_t block =
      state().get(bp_->argument) + state().get(bp_->cur_block);
  return static_cast<size_t>(block) * kBlockSize;
}

void SdhciDevice::card_to_fifo() {
  // Native data source for the buf_fill statements: invoked via the block()
  // fill callback, so the extent is governed by the DSOD.
}

void SdhciDevice::block_to_card() {
  backend_delay();  // card/image write
  const size_t offset = card_offset();
  const uint32_t len = std::min<uint32_t>(
      kFifoSize, static_cast<uint32_t>(state().get(bp_->blksize)) & 0xfff);
  auto fifo = state().buffer_span(bp_->fifo_buffer);
  for (uint32_t i = 0; i < len && offset + i < card_.size(); ++i) {
    card_[offset + i] = fifo[i];
  }
}

uint64_t SdhciDevice::io_read(const sedspec::IoAccess& io) {
  IoRound round(ictx(), io);
  switch (io.addr - kBaseAddr) {
    case kRegResp:
      ictx().block(bp_->s_resp_read);
      return state().get(bp_->response);
    case kRegPrnSts:
      ictx().block(bp_->s_prnsts_read);
      return state().get(bp_->prnsts);
    case kRegNorIntSts:
      ictx().block(bp_->s_intsts_read);
      return state().get(bp_->norintsts);
    case kRegBData:
      return bdata_read();
    default:
      return 0;
  }
}

void SdhciDevice::io_write(const sedspec::IoAccess& io) {
  IoRound round(ictx(), io);
  switch (io.addr - kBaseAddr) {
    case kRegBlkSize:
      if (vulns_.cve_2021_3409) {
        // Unpatched: the register is writable at any time.
        ictx().block(bp_->s_blksize_set);
      } else if (ictx().branch(bp_->s_blksize_guard)) {
        ictx().block(bp_->s_blksize_ignored);
      } else {
        ictx().block(bp_->s_blksize_set);
      }
      return;
    case kRegBlkCnt:
      ictx().block(bp_->s_blkcnt_set);
      return;
    case kRegArg:
      ictx().block(bp_->s_arg_set);
      return;
    case kRegTrnMod:
      ictx().block(bp_->s_trnmod_set);
      return;
    case kRegCmd:
      issue_command(static_cast<uint8_t>((io.value >> 8) & 0x3f));
      return;
    case kRegBData:
      bdata_write(io);
      return;
    case kRegNorIntSts:
      ictx().block(bp_->s_intsts_clear);
      return;
    default:
      return;
  }
}

void SdhciDevice::issue_command(uint8_t index) {
  auto& ic = ictx();
  const auto decoded = static_cast<uint8_t>(ic.command(bp_->s_cmd_issue));
  SEDSPEC_REQUIRE(decoded == index);

  auto fill_from_card = [this](std::span<uint8_t> dst) {
    backend_delay();  // card/image read
    const size_t offset = card_offset();
    for (size_t i = 0; i < dst.size() && offset + i < card_.size(); ++i) {
      dst[i] = card_[offset + i];
    }
  };

  switch (index) {
    case kCmdGoIdle:
      ic.block(bp_->s_cmd_reset);
      break;
    case kCmdAllSendCid:
    case kCmdSendRelAddr:
    case kCmdSelect:
    case kCmdSendCsd:
    case kCmdSendStatus:
      ic.block(bp_->s_cmd_simple);
      break;
    case kCmdSetBlockLen:
      ic.block(bp_->s_cmd_setblocklen);
      break;
    case kCmdReadSingle:
      ic.block(bp_->s_cmd_read_single, fill_from_card);
      return;  // transfer continues; command ends at transfer completion
    case kCmdReadMulti:
      ic.block(bp_->s_cmd_read_multi, fill_from_card);
      return;
    case kCmdWriteSingle:
      ic.block(bp_->s_cmd_write_single);
      return;
    case kCmdWriteMulti:
      ic.block(bp_->s_cmd_write_multi);
      return;
    case kCmdStop:
      ic.block(bp_->s_cmd_stop);
      break;
    case kCmdSwitch:
    case kCmdGenCmd:
      ic.block(bp_->s_cmd_rare);
      break;
    default:
      ic.block(bp_->s_cmd_unknown);
      break;
  }
  ic.indirect(bp_->s_irq_cmd);
  ic.command_end(bp_->s_cmd_end_simple);
}

void SdhciDevice::bdata_write(const sedspec::IoAccess& /*io*/) {
  auto& ic = ictx();
  if (!ic.branch(bp_->s_bdata_w_act)) {
    return;  // data port write with no transfer active: ignored
  }
  if (!ic.branch(bp_->s_bdata_w_dir)) {
    return;  // data port write during a read transfer: ignored
  }
  ic.block(bp_->s_bdata_store);
  if (ic.branch(bp_->s_bdata_w_blkdone)) {
    block_to_card();
    ic.block(bp_->s_blk_written);
    if (ic.branch(bp_->s_blk_w_more)) {
      ic.block(bp_->s_blk_w_next);
    } else {
      ic.block(bp_->s_xfer_w_done);
      ic.indirect(bp_->s_irq_xfer_w);
      ic.command_end(bp_->s_cmd_end_xfer_w);
    }
  }
}

uint64_t SdhciDevice::bdata_read() {
  auto& ic = ictx();
  if (!ic.branch(bp_->s_bdata_r_act)) {
    return 0;
  }
  if (!ic.branch(bp_->s_bdata_r_dir)) {
    return 0;
  }
  const uint64_t value =
      state().buf_load(bp_->fifo_buffer, state().get(bp_->data_count), nullptr);
  ic.block(bp_->s_bdata_load);
  if (ic.branch(bp_->s_bdata_r_blkdone)) {
    ic.block(bp_->s_blk_read_done);
    if (ic.branch(bp_->s_blk_r_more)) {
      ic.block(bp_->s_blk_r_next, [this](std::span<uint8_t> dst) {
        backend_delay();
        const size_t offset = card_offset();
        for (size_t i = 0; i < dst.size() && offset + i < card_.size(); ++i) {
          dst[i] = card_[offset + i];
        }
      });
    } else {
      ic.block(bp_->s_xfer_r_done);
      ic.indirect(bp_->s_irq_xfer_r);
      ic.command_end(bp_->s_cmd_end_xfer_r);
    }
  }
  return value;
}

}  // namespace sedspec::devices
