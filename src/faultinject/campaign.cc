#include "faultinject/campaign.h"

#include <iomanip>
#include <memory>
#include <sstream>

#include "common/log.h"
#include "guest/workload.h"
#include "obs/trace.h"
#include "sedspec/pipeline.h"
#include "spec/serial.h"
#include "vdev/dma.h"

namespace sedspec::faultinject {

void LayerOutcomes::add(const LayerOutcomes& other) {
  injected += other.injected;
  rejected_at_load += other.rejected_at_load;
  contained += other.contained;
  fail_closed += other.fail_closed;
  fail_open += other.fail_open;
  flagged += other.flagged;
  absorbed += other.absorbed;
  escaped += other.escaped;
}

bool LayerOutcomes::accounted() const {
  return injected ==
         rejected_at_load + contained + flagged + absorbed + escaped;
}

LayerOutcomes CampaignResult::total() const {
  LayerOutcomes sum;
  for (const LayerOutcomes& o : by_layer) {
    sum.add(o);
  }
  return sum;
}

std::string CampaignResult::describe() const {
  std::ostringstream out;
  out << "layer     injected rejected contained (closed/open) flagged "
         "absorbed escaped\n";
  auto row = [&out](const std::string& name, const LayerOutcomes& o) {
    out << std::left << std::setw(10) << name << std::right << std::setw(8)
        << o.injected << std::setw(9) << o.rejected_at_load << std::setw(10)
        << o.contained << "  (" << o.fail_closed << "/" << o.fail_open << ")"
        << std::setw(9) << o.flagged << std::setw(9) << o.absorbed
        << std::setw(8) << o.escaped << "\n";
  };
  for (size_t i = 0; i < kLayerCount; ++i) {
    row(layer_name(static_cast<Layer>(i)), by_layer[i]);
  }
  row("total", total());
  out << "spec rejections by status:";
  for (size_t i = 0; i < 8; ++i) {
    if (spec_rejections_by_status[i] > 0) {
      out << " " << spec::load_status_name(static_cast<spec::LoadStatus>(i))
          << "=" << spec_rejections_by_status[i];
    }
  }
  out << "\nbus proxy backstop hits: " << proxy_faults << "\n";
  return out.str();
}

namespace {

/// Drives benign guest I/O; returns true if an exception escaped the bus
/// path (the campaign's hard failure condition).
bool run_ops(guest::DeviceWorkload& wl, int ops, Rng& rng) {
  try {
    for (int i = 0; i < ops; ++i) {
      wl.common_operation(guest::InteractionMode::kSequential, rng);
    }
  } catch (...) {
    return true;
  }
  return false;
}

/// Emits one per-fault outcome event to the installed tracer (no-op when
/// tracing is off): name "fault_outcome", category = device, detail =
/// "<layer>:<outcome>".
void emit_fault_outcome(Layer layer, const std::string& device,
                        const char* outcome) {
  if (obs::EventTracer* tr = obs::tracer()) {
    tr->record(obs::EventType::kFaultOutcome, "fault_outcome", device,
               layer_name(layer) + ":" + outcome);
  }
}

/// Classifies one fault's outcome from the checker's counter deltas.
void classify(const checker::CheckerStats& before,
              const checker::CheckerStats& after, LayerOutcomes& o,
              Layer layer, const std::string& device) {
  const char* outcome;
  if (after.contained_faults > before.contained_faults) {
    ++o.contained;
    if (after.fail_closed_faults > before.fail_closed_faults) {
      ++o.fail_closed;
      outcome = "contained_fail_closed";
    } else {
      ++o.fail_open;
      outcome = "contained_fail_open";
    }
  } else if (after.blocked > before.blocked ||
             after.warnings > before.warnings) {
    ++o.flagged;
    outcome = "flagged";
  } else {
    ++o.absorbed;
    outcome = "absorbed";
  }
  emit_fault_outcome(layer, device, outcome);
}

/// Detaches the checker from the workload and restores a clean device.
void undeploy(guest::DeviceWorkload& wl) {
  wl.bus().set_proxy(nullptr);
  wl.device().set_internal_activity_hook({});
  disarm_dma_faults(wl.device());
  wl.device().reset();
}

void run_spec_layer(guest::DeviceWorkload& wl,
                    const std::vector<uint8_t>& base,
                    const CampaignConfig& config,
                    const checker::CheckerConfig& cc, Rng& rng,
                    CampaignResult& result) {
  LayerOutcomes& o = result.by_layer[static_cast<size_t>(Layer::kSpec)];
  for (size_t i = 0; i < config.spec_faults_per_device; ++i) {
    std::vector<uint8_t> corrupted = base;
    const auto kind = static_cast<SpecFaultKind>(i % kSpecFaultKinds);
    corrupt_spec(corrupted, kind, rng);
    ++o.injected;
    auto out = pipeline::deploy_serialized(corrupted, wl.device(), wl.bus(),
                                           cc);
    if (!out.ok()) {
      ++o.rejected_at_load;
      ++result.spec_rejections_by_status[static_cast<size_t>(
          out.error.status)];
      emit_fault_outcome(Layer::kSpec, wl.name(), "rejected_at_load");
      continue;
    }
    // The corruption survived the envelope AND the structural decoder (a
    // resealed garble that landed in value bytes): the checker now runs on
    // a subtly wrong spec. Benign traffic must stay safe regardless.
    const checker::CheckerStats before = out.checker->stats();
    if (run_ops(wl, config.ops_per_fault, rng)) {
      ++o.escaped;
      emit_fault_outcome(Layer::kSpec, wl.name(), "escaped");
    } else {
      classify(before, out.checker->stats(), o, Layer::kSpec, wl.name());
    }
    undeploy(wl);
  }
}

void run_trace_layer(guest::DeviceWorkload& wl, const CampaignConfig& config,
                     const checker::CheckerConfig& cc, Rng& rng,
                     CampaignResult& result) {
  LayerOutcomes& o = result.by_layer[static_cast<size_t>(Layer::kTrace)];
  for (size_t i = 0; i < config.trace_faults_per_device; ++i) {
    const auto kind = static_cast<TraceFaultKind>(i % kTraceFaultKinds);
    ++o.injected;
    pipeline::CollectOptions opts;
    opts.packet_tap = [&](std::vector<uint8_t>& packets) {
      corrupt_packets(packets, kind, 1 + rng.below(3), rng);
    };
    std::unique_ptr<spec::EsCfg> cfg;
    try {
      const pipeline::CollectionResult collection =
          pipeline::collect(wl.device(), [&] { wl.training(); }, opts);
      cfg = std::make_unique<spec::EsCfg>(
          pipeline::construct(wl.device(), collection));
    } catch (const std::exception&) {
      // The pipeline rejected the corrupt trace (decoder or builder); a
      // real deployment re-collects. The fault never reached runtime.
      wl.device().reset();
      ++o.rejected_at_load;
      emit_fault_outcome(Layer::kTrace, wl.name(), "rejected_at_load");
      continue;
    }
    wl.device().reset();
    try {
      auto checker = pipeline::deploy(*cfg, wl.device(), wl.bus(), cc);
      const checker::CheckerStats before = checker->stats();
      if (run_ops(wl, config.ops_per_fault, rng)) {
        ++o.escaped;
        emit_fault_outcome(Layer::kTrace, wl.name(), "escaped");
      } else {
        classify(before, checker->stats(), o, Layer::kTrace, wl.name());
      }
      undeploy(wl);
    } catch (const std::exception&) {
      undeploy(wl);
      ++o.rejected_at_load;
      emit_fault_outcome(Layer::kTrace, wl.name(), "rejected_at_load");
    }
  }
}

void run_dma_layer(guest::DeviceWorkload& wl, const spec::EsCfg& cfg,
                   const CampaignConfig& config,
                   const checker::CheckerConfig& cc, Rng& rng,
                   CampaignResult& result) {
  DmaEngine* dma = wl.device().dma_engine();
  if (dma == nullptr) {
    return;  // PIO/MMIO-only device: the layer does not apply
  }
  LayerOutcomes& o = result.by_layer[static_cast<size_t>(Layer::kDma)];
  auto checker = pipeline::deploy(cfg, wl.device(), wl.bus(), cc);
  size_t injected = 0;
  // Not every benign operation masters the bus, so attempts are bounded
  // separately from the injection target.
  const size_t max_attempts = config.dma_faults_per_device * 8;
  for (size_t attempt = 0;
       attempt < max_attempts && injected < config.dma_faults_per_device;
       ++attempt) {
    const auto kind = static_cast<DmaFaultKind>(attempt % kDmaFaultKinds);
    arm_dma_faults(wl.device(), kind, 1, config.seed ^ (attempt * 0x9e37));
    const uint64_t before_faults = dma->faults_injected();
    const checker::CheckerStats before = checker->stats();
    const bool escaped = run_ops(wl, config.ops_per_fault, rng);
    const bool consumed = dma->faults_injected() > before_faults;
    disarm_dma_faults(wl.device());
    if (!consumed && !escaped) {
      continue;  // the ops never reached the DMA engine; not an injection
    }
    ++injected;
    ++o.injected;
    if (escaped) {
      ++o.escaped;
      emit_fault_outcome(Layer::kDma, wl.name(), "escaped");
    } else {
      classify(before, checker->stats(), o, Layer::kDma, wl.name());
    }
    checker->resync();  // isolate faults from each other
  }
  undeploy(wl);
}

void run_checker_layer(guest::DeviceWorkload& wl, const spec::EsCfg& cfg,
                       const CampaignConfig& config,
                       const checker::CheckerConfig& cc, Rng& rng,
                       CampaignResult& result) {
  LayerOutcomes& o = result.by_layer[static_cast<size_t>(Layer::kChecker)];
  const size_t per_kind = config.checker_faults_per_device / 3;
  const size_t throw_count =
      config.checker_faults_per_device - 2 * per_kind;  // remainder to kThrow

  auto inject = [&](checker::EsChecker& checker, CheckerFaultKind kind,
                    size_t count) {
    // Runaway faults need to land on a round that actually reaches a looped
    // block, so they are armed across several rounds; the others are
    // strictly one-shot.
    const size_t arm = kind == CheckerFaultKind::kRunaway ? 16 : 1;
    for (size_t i = 0; i < count; ++i) {
      arm_checker_faults(checker, kind, arm, rng.next_u64());
      ++o.injected;
      const checker::CheckerStats before = checker.stats();
      if (run_ops(wl, config.ops_per_fault, rng)) {
        ++o.escaped;
        emit_fault_outcome(Layer::kChecker, wl.name(), "escaped");
      } else {
        classify(before, checker.stats(), o, Layer::kChecker, wl.name());
      }
      disarm_checker_faults(checker);
      checker.resync();  // isolate faults from each other
    }
  };

  {
    auto checker = pipeline::deploy(cfg, wl.device(), wl.bus(), cc);
    inject(*checker, CheckerFaultKind::kThrow, throw_count);
    inject(*checker, CheckerFaultKind::kShadowCorrupt, per_kind);
    undeploy(wl);
  }

  // Runaway faults need a spec the traversal can actually loop on: rewire
  // the entry block into a self-loop so that, with the termination checks
  // suppressed, only the watchdog can end the round.
  {
    const std::vector<uint8_t> bytes = spec::serialize(cfg);
    spec::EsCfg loop_cfg = spec::deserialize(bytes);
    for (const auto& [key, entry] : loop_cfg.entry_dispatch) {
      if (entry == sedspec::kInvalidSite) {
        continue;  // trained key whose round ends at dispatch
      }
      spec::EsBlock& block = loop_cfg.blocks.at(entry);
      block.kind = BlockKind::kPlain;
      block.merged = false;
      block.has_succ = true;
      block.succ = entry;
      block.ends = false;
    }
    auto checker = pipeline::deploy(loop_cfg, wl.device(), wl.bus(), cc);
    inject(*checker, CheckerFaultKind::kRunaway, per_kind);
    undeploy(wl);
  }
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config) {
  CampaignResult result;
  const std::vector<std::string> devices =
      config.devices.empty() ? guest::workload_names() : config.devices;

  checker::CheckerConfig cc;
  cc.mode = checker::Mode::kProtection;
  cc.rollback_on_violation = true;  // faults must never strand a device
  cc.failure_policy = config.policy;
  cc.watchdog_steps = config.watchdog_steps;
  cc.max_steps = 1u << 12;  // benign rounds sit far below this
  cc.self_heal_interval = 4;

  Rng rng(config.seed);
  for (const std::string& name : devices) {
    auto wl = guest::make_workload(name);
    log_info("faultinject") << name << ": campaign start (policy "
                            << checker::failure_policy_name(config.policy)
                            << ", seed 0x" << std::hex << config.seed << ")";
    const spec::EsCfg cfg =
        pipeline::build_spec(wl->device(), [&] { wl->training(); });
    const std::vector<uint8_t> bytes = spec::serialize(cfg);

    run_spec_layer(*wl, bytes, config, cc, rng, result);
    run_trace_layer(*wl, config, cc, rng, result);
    run_dma_layer(*wl, cfg, config, cc, rng, result);
    run_checker_layer(*wl, cfg, config, cc, rng, result);

    result.proxy_faults += wl->bus().proxy_fault_count();
    ++result.devices_run;
  }
  return result;
}

}  // namespace sedspec::faultinject
