// SDHCI — SD host controller (after QEMU's hw/sd/sdhci.c), PIO mode.
//
// MMIO register block: BLKSIZE (0x04), BLKCNT (0x06), ARG (0x08), TRNMOD
// (0x0c), CMDREG (0x0e), RESP (0x10), BDATA (0x20, byte data port),
// PRNSTS (0x24), NORINTSTS (0x30). Commands are issued by writing CMDREG;
// the command index is CMDREG >> 8. CMD17/18/24/25 start PIO block
// transfers through the 512-byte fifo_buffer, indexed by data_count and
// bounded by blksize.
//
// CVE-2021-3409: the unpatched controller lets the guest rewrite BLKSIZE
// while a transfer is in flight. The transfer code computes the remaining
// bytes of the current block as (blksize - data_count); shrinking blksize
// below data_count underflows that unsigned expression, and growing blksize
// beyond the 512-byte fifo drives fifo_buffer[data_count] out of bounds.
// The patched variant (QEMU >= 6.0) ignores BLKSIZE writes while
// transfer_active is set.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "program/program.h"
#include "vdev/device.h"

namespace sedspec::devices {

class SdhciDevice final : public sedspec::Device {
 public:
  struct Vulns {
    bool cve_2021_3409 = false;  // BLKSIZE mutable during transfer
  };

  static constexpr uint64_t kBaseAddr = 0x10000000;
  static constexpr uint64_t kMmioSpan = 0x100;
  static constexpr uint32_t kFifoSize = 512;
  static constexpr uint32_t kBlockSize = 512;
  static constexpr size_t kCardSize = 8ull << 20;  // 8 MiB card

  // Register offsets.
  static constexpr uint64_t kRegBlkSize = 0x04;
  static constexpr uint64_t kRegBlkCnt = 0x06;
  static constexpr uint64_t kRegArg = 0x08;
  static constexpr uint64_t kRegTrnMod = 0x0c;
  static constexpr uint64_t kRegCmd = 0x0e;
  static constexpr uint64_t kRegResp = 0x10;
  static constexpr uint64_t kRegBData = 0x20;
  static constexpr uint64_t kRegPrnSts = 0x24;
  static constexpr uint64_t kRegNorIntSts = 0x30;

  // Command indices (written as CMDREG = idx << 8).
  static constexpr uint8_t kCmdGoIdle = 0;
  static constexpr uint8_t kCmdAllSendCid = 2;
  static constexpr uint8_t kCmdSendRelAddr = 3;
  static constexpr uint8_t kCmdSelect = 7;
  static constexpr uint8_t kCmdSendCsd = 9;
  static constexpr uint8_t kCmdStop = 12;
  static constexpr uint8_t kCmdSendStatus = 13;
  static constexpr uint8_t kCmdSetBlockLen = 16;
  static constexpr uint8_t kCmdReadSingle = 17;
  static constexpr uint8_t kCmdReadMulti = 18;
  static constexpr uint8_t kCmdWriteSingle = 24;
  static constexpr uint8_t kCmdWriteMulti = 25;
  static constexpr uint8_t kCmdSwitch = 6;   // rare
  static constexpr uint8_t kCmdGenCmd = 56;  // rare

  // NORINTSTS bits.
  static constexpr uint16_t kIntCmdDone = 0x0001;
  static constexpr uint16_t kIntXferDone = 0x0002;

  SdhciDevice() : SdhciDevice(Vulns{}) {}
  explicit SdhciDevice(Vulns vulns);
  ~SdhciDevice() override;

  uint64_t io_read(const sedspec::IoAccess& io) override;
  void io_write(const sedspec::IoAccess& io) override;

  [[nodiscard]] std::span<uint8_t> card() { return card_; }

  struct Blueprint;
  [[nodiscard]] const Blueprint& blueprint() const { return *bp_; }

 protected:
  void reset_device() override;

 private:
  SdhciDevice(std::unique_ptr<Blueprint> bp, Vulns vulns);

  void issue_command(uint8_t index);
  void bdata_write(const sedspec::IoAccess& io);
  uint64_t bdata_read();
  void block_to_card();
  void card_to_fifo();
  [[nodiscard]] size_t card_offset() const;

  std::unique_ptr<Blueprint> bp_;
  Vulns vulns_;
  std::vector<uint8_t> card_;
};

struct SdhciDevice::Blueprint {
  std::unique_ptr<sedspec::DeviceProgram> program;

  // SDHCIState fields.
  sedspec::ParamId blksize, blkcnt, argument, trnmod, cmdreg;
  sedspec::ParamId response, prnsts, norintsts;
  sedspec::ParamId transfer_active, is_write, blocks_left, cur_block;
  sedspec::ParamId irq_fn;
  sedspec::ParamId fifo_buffer, data_count;

  // Locals.
  sedspec::LocalId l_remaining;  // blksize - data_count (inlined)

  // Sites.
  sedspec::SiteId s_blksize_guard, s_blksize_ignored, s_blksize_set;
  sedspec::SiteId s_blkcnt_set, s_arg_set, s_trnmod_set;
  sedspec::SiteId s_cmd_issue;
  sedspec::SiteId s_cmd_reset, s_cmd_simple, s_cmd_setblocklen;
  sedspec::SiteId s_cmd_read_single, s_cmd_read_multi;
  sedspec::SiteId s_cmd_write_single, s_cmd_write_multi;
  sedspec::SiteId s_cmd_stop, s_cmd_rare, s_cmd_unknown;
  sedspec::SiteId s_irq_cmd;
  sedspec::SiteId s_bdata_w_act, s_bdata_w_dir, s_bdata_store,
      s_bdata_w_blkdone;
  sedspec::SiteId s_blk_written, s_blk_w_more, s_blk_w_next, s_xfer_w_done;
  sedspec::SiteId s_bdata_r_act, s_bdata_r_dir, s_bdata_load,
      s_bdata_r_blkdone;
  sedspec::SiteId s_blk_read_done, s_blk_r_more, s_blk_r_next, s_xfer_r_done;
  sedspec::SiteId s_irq_xfer_w, s_irq_xfer_r;
  sedspec::SiteId s_cmd_end_xfer_w, s_cmd_end_xfer_r, s_cmd_end_simple;
  sedspec::SiteId s_resp_read, s_prnsts_read, s_intsts_read, s_intsts_clear;

  sedspec::FuncAddr f_irq;
};

}  // namespace sedspec::devices
