#include "devices/fdc.h"

#include "common/assert.h"

namespace sedspec::devices {

namespace {

using sedspec::eb::band;
using sedspec::eb::bor;
using sedspec::eb::buf_load;
using sedspec::eb::c;
using sedspec::eb::eq;
using sedspec::eb::io_value;
using sedspec::eb::ne;
using sedspec::eb::param;
using sedspec::eb::sub;

constexpr IntType U8 = IntType::kU8;
constexpr IntType U32 = IntType::kU32;

}  // namespace

FdcDevice::FdcDevice(Vulns vulns)
    : FdcDevice(std::make_unique<Blueprint>([&] {
        Blueprint bp;
        // --- Control structure (FDCtrl) --------------------------------
        StateLayout layout("FDCtrl");
        bp.msr = layout.add_scalar("msr", FieldKind::kRegister, U8);
        bp.dor = layout.add_scalar("dor", FieldKind::kRegister, U8);
        bp.tdr = layout.add_scalar("tdr", FieldKind::kRegister, U8);
        bp.dsr = layout.add_scalar("dsr", FieldKind::kRegister, U8);
        bp.phase = layout.add_scalar("phase", FieldKind::kFlag, U8);
        bp.cur_cmd = layout.add_scalar("cur_cmd", FieldKind::kRegister, U8);
        bp.st0 = layout.add_scalar("st0", FieldKind::kRegister, U8);
        bp.st1 = layout.add_scalar("st1", FieldKind::kRegister, U8);
        bp.st2 = layout.add_scalar("st2", FieldKind::kRegister, U8);
        bp.track = layout.add_scalar("track", FieldKind::kRegister, U8);
        bp.head = layout.add_scalar("head", FieldKind::kRegister, U8);
        bp.sector = layout.add_scalar("sector", FieldKind::kRegister, U8);
        bp.irq_fn = layout.add_funcptr("irq_fn");
        bp.fifo = layout.add_buffer("fifo", 1, kFifoSize);
        bp.data_pos = layout.add_scalar("data_pos", FieldKind::kIndex, U32);
        bp.data_len = layout.add_scalar("data_len", FieldKind::kLength, U32);

        DeviceProgram prog("fdc", std::move(layout), /*code_base=*/0x400000);
        bp.f_irq = prog.add_function("fdctrl_raise_irq");

        auto P8 = [&](ParamId p) { return param(p, U8); };
        auto P32 = [&](ParamId p) { return param(p, U32); };

        // --- Register access sites --------------------------------------
        // DOR write: clearing the reset bit (bit 2 low) resets the device.
        bp.s_dor_write = prog.add_conditional(
            "fdctrl_write_dor",
            eq(band(io_value(U8), c(0x04, U8), U8), c(0, U8)));
        bp.s_dor_reset = prog.add_plain(
            "fdctrl_dor_reset",
            {sb::assign(bp.msr, c(kMsrRqm, U8), "msr = RQM"),
             sb::assign(bp.phase, c(0, U8), "phase = COMMAND"),
             sb::assign(bp.data_pos, c(0, U32), "data_pos = 0"),
             sb::assign(bp.data_len, c(0, U32), "data_len = 0"),
             sb::assign(bp.cur_cmd, c(0, U8), "cur_cmd = 0"),
             sb::assign(bp.dor, io_value(U8), "dor = value")});
        bp.s_dor_set = prog.add_plain(
            "fdctrl_dor_set", {sb::assign(bp.dor, io_value(U8), "dor = value")});

        bp.s_dsr_write = prog.add_conditional(
            "fdctrl_write_dsr",
            ne(band(io_value(U8), c(0x80, U8), U8), c(0, U8)));
        bp.s_dsr_reset = prog.add_plain(
            "fdctrl_dsr_reset",
            {sb::assign(bp.msr, c(kMsrRqm, U8), "msr = RQM"),
             sb::assign(bp.phase, c(0, U8)),
             sb::assign(bp.data_pos, c(0, U32)),
             sb::assign(bp.data_len, c(0, U32)),
             sb::assign(bp.dsr, band(io_value(U8), c(0x7f, U8), U8),
                        "dsr = value & ~SWRESET")});
        bp.s_dsr_set = prog.add_plain(
            "fdctrl_dsr_set", {sb::assign(bp.dsr, io_value(U8))});

        bp.s_tdr_set = prog.add_plain("fdctrl_write_tdr",
                                      {sb::assign(bp.tdr, io_value(U8))});
        bp.s_msr_read = prog.add_plain("fdctrl_read_msr", {});
        bp.s_dir_read = prog.add_plain("fdctrl_read_dir", {});
        bp.s_dor_read = prog.add_plain("fdctrl_read_dor", {});
        bp.s_tdr_read = prog.add_plain("fdctrl_read_tdr", {});

        // --- FIFO write path ---------------------------------------------
        bp.s_fifo_w_phase = prog.add_conditional("fdctrl_write_data.phase",
                                                 eq(P8(bp.phase), c(0, U8)));
        bp.s_fifo_w_cmdq = prog.add_conditional("fdctrl_write_data.cmd_start",
                                                eq(P32(bp.data_pos), c(0, U32)));
        bp.s_cmd_decode = prog.add_cmd_decision(
            "fdctrl_command_decode", io_value(U8),
            {sb::assign(bp.cur_cmd, io_value(U8), "cur_cmd = value"),
             sb::buf_store(bp.fifo, c(0, U32), io_value(U8), "fifo[0] = value"),
             sb::assign(bp.data_pos, c(1, U32), "data_pos = 1"),
             sb::assign(bp.msr, c(kMsrRqm | kMsrBusy, U8),
                        "msr = RQM|BUSY")});
        bp.s_fifo_w_param = prog.add_plain(
            "fdctrl_collect_param",
            {sb::buf_store(bp.fifo, P32(bp.data_pos), io_value(U8),
                           "fifo[data_pos] = value"),
             sb::assign(bp.data_pos, sedspec::eb::add(P32(bp.data_pos),
                                                      c(1, U32), U32),
                        "data_pos++")});
        bp.s_fifo_w_pdone = prog.add_conditional(
            "fdctrl_params_complete", eq(P32(bp.data_pos), P32(bp.data_len)));
        bp.s_exec_dispatch =
            prog.add_cmd_decision("fdctrl_exec_dispatch", P8(bp.cur_cmd));

        bp.s_fifo_w_xferq = prog.add_conditional("fdctrl_write_data.xfer",
                                                 eq(P8(bp.phase), c(2, U8)));
        bp.s_fifo_w_xfer = prog.add_plain(
            "fdctrl_xfer_byte",
            {sb::buf_store(bp.fifo, P32(bp.data_pos), io_value(U8),
                           "fifo[data_pos] = value"),
             sb::assign(bp.data_pos, sedspec::eb::add(P32(bp.data_pos),
                                                      c(1, U32), U32),
                        "data_pos++")});
        bp.s_fifo_w_xdone = prog.add_conditional(
            "fdctrl_xfer_complete", eq(P32(bp.data_pos), P32(bp.data_len)));

        // --- Command setup blocks (after the command byte) ----------------
        auto setup = [&](const char* name, uint32_t len) {
          return prog.add_plain(
              name, {sb::assign(bp.data_len, c(len, U32), "data_len")});
        };
        bp.s_setup_specify = setup("fdctrl_setup_specify", 3);
        bp.s_setup_sensed = setup("fdctrl_setup_sense_drive", 2);
        bp.s_setup_recal = setup("fdctrl_setup_recalibrate", 2);
        bp.s_setup_seek = setup("fdctrl_setup_seek", 3);
        bp.s_setup_configure = setup("fdctrl_setup_configure", 4);
        bp.s_setup_perp = setup("fdctrl_setup_perpendicular", 2);
        bp.s_setup_read = setup("fdctrl_setup_read", 9);
        bp.s_setup_write = setup("fdctrl_setup_write", 9);
        bp.s_setup_dspec = setup("fdctrl_setup_drive_spec", 6);

        // Immediate-result commands.
        bp.s_exec_sensei = prog.add_plain(
            "fdctrl_handle_sense_interrupt",
            {sb::buf_store(bp.fifo, c(0, U32), bor(P8(bp.st0), c(0x20, U8), U8),
                           "fifo[0] = st0|SEEK_END"),
             sb::buf_store(bp.fifo, c(1, U32), P8(bp.track),
                           "fifo[1] = track"),
             sb::assign(bp.data_pos, c(0, U32)),
             sb::assign(bp.data_len, c(2, U32)),
             sb::assign(bp.phase, c(1, U8), "phase = RESULT"),
             sb::assign(bp.msr, c(kMsrRqm | kMsrDio | kMsrBusy, U8))});
        bp.s_exec_version = prog.add_plain(
            "fdctrl_handle_version",
            {sb::buf_store(bp.fifo, c(0, U32), c(0x90, U8), "fifo[0] = 0x90"),
             sb::assign(bp.data_pos, c(0, U32)),
             sb::assign(bp.data_len, c(1, U32)),
             sb::assign(bp.phase, c(1, U8)),
             sb::assign(bp.msr, c(kMsrRqm | kMsrDio | kMsrBusy, U8))});
        bp.s_exec_readid = prog.add_plain(
            "fdctrl_handle_read_id",
            {sb::buf_store(bp.fifo, c(0, U32), P8(bp.st0)),
             sb::buf_store(bp.fifo, c(1, U32), P8(bp.st1)),
             sb::buf_store(bp.fifo, c(2, U32), P8(bp.st2)),
             sb::buf_store(bp.fifo, c(3, U32), P8(bp.track)),
             sb::buf_store(bp.fifo, c(4, U32), P8(bp.head)),
             sb::buf_store(bp.fifo, c(5, U32), P8(bp.sector)),
             sb::buf_store(bp.fifo, c(6, U32), c(2, U8)),
             sb::assign(bp.data_pos, c(0, U32)),
             sb::assign(bp.data_len, c(7, U32)),
             sb::assign(bp.phase, c(1, U8)),
             sb::assign(bp.msr, c(kMsrRqm | kMsrDio | kMsrBusy, U8))});
        bp.s_exec_dumpreg = prog.add_plain(
            "fdctrl_handle_dumpreg",
            {sb::buf_store(bp.fifo, c(0, U32), P8(bp.track)),
             sb::buf_store(bp.fifo, c(1, U32), c(0, U8)),
             sb::buf_store(bp.fifo, c(2, U32), c(0, U8)),
             sb::buf_store(bp.fifo, c(3, U32), c(0, U8)),
             sb::buf_store(bp.fifo, c(4, U32), c(0, U8)),
             sb::buf_store(bp.fifo, c(5, U32), P8(bp.sector)),
             sb::buf_store(bp.fifo, c(6, U32), c(0, U8)),
             sb::buf_store(bp.fifo, c(7, U32), c(0, U8)),
             sb::buf_store(bp.fifo, c(8, U32), c(0, U8)),
             sb::buf_store(bp.fifo, c(9, U32), c(0, U8)),
             sb::assign(bp.data_pos, c(0, U32)),
             sb::assign(bp.data_len, c(10, U32)),
             sb::assign(bp.phase, c(1, U8)),
             sb::assign(bp.msr, c(kMsrRqm | kMsrDio | kMsrBusy, U8))});
        bp.s_exec_invalid = prog.add_plain(
            "fdctrl_unimplemented",
            {sb::buf_store(bp.fifo, c(0, U32), c(0x80, U8), "fifo[0] = 0x80"),
             sb::assign(bp.data_pos, c(0, U32)),
             sb::assign(bp.data_len, c(1, U32)),
             sb::assign(bp.phase, c(1, U8)),
             sb::assign(bp.msr, c(kMsrRqm | kMsrDio | kMsrBusy, U8))});

        // Post-parameter execution blocks.
        bp.s_exec_specify =
            prog.add_plain("fdctrl_handle_specify", {});  // timings ignored
        bp.s_exec_sensed = prog.add_plain(
            "fdctrl_handle_sense_drive_status",
            {sb::buf_store(bp.fifo, c(0, U32),
                           bor(band(P8(bp.dor), c(3, U8), U8), c(0x28, U8), U8),
                           "fifo[0] = drive status"),
             sb::assign(bp.data_pos, c(0, U32)),
             sb::assign(bp.data_len, c(1, U32)),
             sb::assign(bp.phase, c(1, U8)),
             sb::assign(bp.msr, c(kMsrRqm | kMsrDio | kMsrBusy, U8))});
        bp.s_exec_recal = prog.add_plain(
            "fdctrl_handle_recalibrate",
            {sb::assign(bp.track, c(0, U8), "track = 0"),
             sb::assign(bp.st0, c(0x20, U8), "st0 = SEEK_END")});
        bp.s_exec_seek = prog.add_plain(
            "fdctrl_handle_seek",
            {sb::assign(bp.track, buf_load(bp.fifo, c(2, U32), U8),
                        "track = fifo[2]"),
             sb::assign(bp.st0, c(0x20, U8), "st0 = SEEK_END")});
        bp.s_exec_configure = prog.add_plain("fdctrl_handle_configure", {});
        bp.s_exec_read = prog.add_plain(
            "fdctrl_start_read",
            {sb::assign(bp.track, buf_load(bp.fifo, c(2, U32), U8)),
             sb::assign(bp.head, buf_load(bp.fifo, c(3, U32), U8)),
             sb::assign(bp.sector, buf_load(bp.fifo, c(4, U32), U8)),
             sb::assign(bp.st0, c(0x20, U8)),
             sb::assign(bp.st1, c(0, U8)),
             sb::assign(bp.st2, c(0, U8)),
             sb::assign(bp.data_pos, c(0, U32)),
             sb::assign(bp.data_len, c(kSectorSize, U32)),
             sb::assign(bp.phase, c(3, U8), "phase = EXEC_READ"),
             sb::assign(bp.msr, c(kMsrRqm | kMsrDio | kMsrBusy, U8)),
             sb::buf_fill(bp.fifo, c(0, U32), c(kSectorSize, U32),
                          "fifo <- disk sector")});
        bp.s_exec_writesetup = prog.add_plain(
            "fdctrl_start_write",
            {sb::assign(bp.track, buf_load(bp.fifo, c(2, U32), U8)),
             sb::assign(bp.head, buf_load(bp.fifo, c(3, U32), U8)),
             sb::assign(bp.sector, buf_load(bp.fifo, c(4, U32), U8)),
             sb::assign(bp.st0, c(0x20, U8)),
             sb::assign(bp.st1, c(0, U8)),
             sb::assign(bp.st2, c(0, U8)),
             sb::assign(bp.data_pos, c(0, U32)),
             sb::assign(bp.data_len, c(kSectorSize, U32)),
             sb::assign(bp.phase, c(2, U8), "phase = EXEC_WRITE"),
             sb::assign(bp.msr, c(kMsrRqm | kMsrBusy, U8))});
        auto xfer_result = [&](const char* name) {
          return prog.add_plain(
              name, {sb::buf_store(bp.fifo, c(0, U32), P8(bp.st0)),
                     sb::buf_store(bp.fifo, c(1, U32), P8(bp.st1)),
                     sb::buf_store(bp.fifo, c(2, U32), P8(bp.st2)),
                     sb::buf_store(bp.fifo, c(3, U32), P8(bp.track)),
                     sb::buf_store(bp.fifo, c(4, U32), P8(bp.head)),
                     sb::buf_store(bp.fifo, c(5, U32), P8(bp.sector)),
                     sb::buf_store(bp.fifo, c(6, U32), c(2, U8)),
                     sb::assign(bp.data_pos, c(0, U32)),
                     sb::assign(bp.data_len, c(7, U32)),
                     sb::assign(bp.phase, c(1, U8), "phase = RESULT"),
                     sb::assign(bp.msr,
                                c(kMsrRqm | kMsrDio | kMsrBusy, U8))});
        };
        bp.s_exec_writedone = xfer_result("fdctrl_write_complete");
        bp.s_exec_readdone = xfer_result("fdctrl_read_complete");

        // DRIVE SPECIFICATION (CVE-2015-3456). The guard tests the done bit
        // in the last accepted parameter byte.
        bp.s_exec_dspec = prog.add_conditional(
            "fdctrl_handle_drive_specification",
            ne(band(buf_load(bp.fifo,
                             sub(P32(bp.data_pos), c(1, U32), U32), U8),
                    c(0x80, U8), U8),
               c(0, U8)));
        bp.s_dspec_more = prog.add_plain(
            "fdctrl_drive_spec_continue",
            {sb::assign(bp.data_len,
                        sedspec::eb::add(P32(bp.data_len), c(6, U32), U32),
                        "data_len += 6  /* unpatched: unbounded */")});

        // --- FIFO read path ------------------------------------------------
        bp.s_fifo_r_phase3 = prog.add_conditional("fdctrl_read_data.exec",
                                                  eq(P8(bp.phase), c(3, U8)));
        bp.s_fifo_r_data = prog.add_plain(
            "fdctrl_read_data_byte",
            {sb::assign(bp.data_pos, sedspec::eb::add(P32(bp.data_pos),
                                                      c(1, U32), U32),
                        "data_pos++")});
        bp.s_fifo_r_ddone = prog.add_conditional(
            "fdctrl_read_data_complete", eq(P32(bp.data_pos), P32(bp.data_len)));
        bp.s_fifo_r_phase1 = prog.add_conditional("fdctrl_read_data.result",
                                                  eq(P8(bp.phase), c(1, U8)));
        bp.s_fifo_r_res = prog.add_plain(
            "fdctrl_read_result_byte",
            {sb::assign(bp.data_pos, sedspec::eb::add(P32(bp.data_pos),
                                                      c(1, U32), U32),
                        "data_pos++")});
        bp.s_fifo_r_rdone = prog.add_conditional(
            "fdctrl_result_complete", eq(P32(bp.data_pos), P32(bp.data_len)));

        // --- Interrupt call sites and command ends -------------------------
        bp.s_irq_recal = prog.add_indirect("fdctrl_irq.recalibrate", bp.irq_fn);
        bp.s_irq_seek = prog.add_indirect("fdctrl_irq.seek", bp.irq_fn);
        bp.s_irq_read = prog.add_indirect("fdctrl_irq.read_ready", bp.irq_fn);
        bp.s_irq_write = prog.add_indirect("fdctrl_irq.write_ready", bp.irq_fn);
        bp.s_irq_wdone = prog.add_indirect("fdctrl_irq.write_done", bp.irq_fn);
        bp.s_cmd_end_imm = prog.add_cmd_end(
            "fdctrl_command_end",
            {sb::assign(bp.msr, c(kMsrRqm, U8), "msr = RQM"),
             sb::assign(bp.phase, c(0, U8)),
             sb::assign(bp.data_pos, c(0, U32)),
             sb::assign(bp.data_len, c(0, U32))});
        bp.s_cmd_end_res = prog.add_cmd_end(
            "fdctrl_result_end",
            {sb::assign(bp.msr, c(kMsrRqm, U8), "msr = RQM"),
             sb::assign(bp.phase, c(0, U8)),
             sb::assign(bp.data_pos, c(0, U32)),
             sb::assign(bp.data_len, c(0, U32))});

        bp.program = std::make_unique<DeviceProgram>(std::move(prog));
        return bp;
      }()),
      vulns) {}

FdcDevice::FdcDevice(std::unique_ptr<Blueprint> bp, Vulns vulns)
    : Device(bp->program.get()),
      bp_(std::move(bp)),
      vulns_(vulns),
      disk_(kDiskSize, 0) {
  ictx().bind_function(bp_->f_irq, [this] { irq_line().pulse(); });
  reset();
}

FdcDevice::~FdcDevice() = default;

void FdcDevice::reset_device() {
  state().set(bp_->msr, kMsrRqm);
  state().set(bp_->irq_fn, bp_->f_irq);
}

size_t FdcDevice::chs_offset() const {
  const uint64_t track = state().get(bp_->track) % kTracks;
  const uint64_t head = state().get(bp_->head) % kHeads;
  uint64_t sector = state().get(bp_->sector);
  sector = sector == 0 ? 0 : (sector - 1) % kSectorsPerTrack;
  return ((track * kHeads + head) * kSectorsPerTrack + sector) * kSectorSize;
}

uint64_t FdcDevice::io_read(const sedspec::IoAccess& io) {
  IoRound round(ictx(), io);
  switch (io.addr - kBasePort) {
    case 2:
      ictx().block(bp_->s_dor_read);
      return state().get(bp_->dor);
    case 3:
      ictx().block(bp_->s_tdr_read);
      return state().get(bp_->tdr);
    case 4:
      ictx().block(bp_->s_msr_read);
      return state().get(bp_->msr);
    case 5:
      return fifo_read(io);
    case 7:
      ictx().block(bp_->s_dir_read);
      return 0;
    default:
      return 0xff;
  }
}

void FdcDevice::io_write(const sedspec::IoAccess& io) {
  IoRound round(ictx(), io);
  switch (io.addr - kBasePort) {
    case 2:
      if (ictx().branch(bp_->s_dor_write)) {
        ictx().block(bp_->s_dor_reset);
        irq_line().lower();
      } else {
        ictx().block(bp_->s_dor_set);
      }
      return;
    case 3:
      ictx().block(bp_->s_tdr_set);
      return;
    case 4:
      if (ictx().branch(bp_->s_dsr_write)) {
        ictx().block(bp_->s_dsr_reset);
      } else {
        ictx().block(bp_->s_dsr_set);
      }
      return;
    case 5:
      fifo_write(io);
      return;
    default:
      return;  // CCR and reserved offsets: ignored
  }
}

void FdcDevice::run_command(uint8_t cmd) {
  switch (cmd) {
    case kCmdSpecify:
      ictx().block(bp_->s_setup_specify);
      return;
    case kCmdSenseDrive:
      ictx().block(bp_->s_setup_sensed);
      return;
    case kCmdRecalibrate:
      ictx().block(bp_->s_setup_recal);
      return;
    case kCmdSenseInt:
      ictx().block(bp_->s_exec_sensei);
      return;
    case kCmdSeek:
      ictx().block(bp_->s_setup_seek);
      return;
    case kCmdVersion:
      ictx().block(bp_->s_exec_version);
      return;
    case kCmdConfigure:
      ictx().block(bp_->s_setup_configure);
      return;
    case kCmdRead:
      ictx().block(bp_->s_setup_read);
      return;
    case kCmdWrite:
      ictx().block(bp_->s_setup_write);
      return;
    case kCmdReadId:
      ictx().block(bp_->s_exec_readid);
      return;
    case kCmdDumpReg:
      ictx().block(bp_->s_exec_dumpreg);
      return;
    case kCmdPerpendicular:
      ictx().block(bp_->s_setup_perp);
      return;
    case kCmdDriveSpec:
      ictx().block(bp_->s_setup_dspec);
      return;
    default:
      ictx().block(bp_->s_exec_invalid);
      return;
  }
}

void FdcDevice::exec_after_params(uint8_t cmd) {
  auto& ic = ictx();
  switch (cmd) {
    case kCmdSpecify:
      ic.block(bp_->s_exec_specify);
      ic.command_end(bp_->s_cmd_end_imm);
      return;
    case kCmdSenseDrive:
      ic.block(bp_->s_exec_sensed);
      return;  // result phase: command ends after result reads
    case kCmdRecalibrate:
      ic.block(bp_->s_exec_recal);
      ic.indirect(bp_->s_irq_recal);
      ic.command_end(bp_->s_cmd_end_imm);
      return;
    case kCmdSeek:
      ic.block(bp_->s_exec_seek);
      ic.indirect(bp_->s_irq_seek);
      ic.command_end(bp_->s_cmd_end_imm);
      return;
    case kCmdConfigure:
      ic.block(bp_->s_exec_configure);
      ic.command_end(bp_->s_cmd_end_imm);
      return;
    case kCmdPerpendicular:
      ic.command_end(bp_->s_cmd_end_imm);
      return;
    case kCmdRead:
      ic.block(bp_->s_exec_read, [this](std::span<uint8_t> dst) {
        backend_delay();  // disk-image read
        const size_t offset = chs_offset();
        for (size_t i = 0; i < dst.size() && offset + i < disk_.size(); ++i) {
          dst[i] = disk_[offset + i];
        }
      });
      ic.indirect(bp_->s_irq_read);
      return;
    case kCmdWrite:
      ic.block(bp_->s_exec_writesetup);
      ic.indirect(bp_->s_irq_write);
      return;
    case kCmdDriveSpec:
      if (ic.branch(bp_->s_exec_dspec)) {
        ic.command_end(bp_->s_cmd_end_imm);
      } else if (vulns_.cve_2015_3456) {
        // Unpatched: extend the parameter phase indefinitely — data_pos is
        // never reset, so the guest can push it past the FIFO (Venom).
        ic.block(bp_->s_dspec_more);
      } else {
        // Patched: bail out of the command.
        ic.command_end(bp_->s_cmd_end_imm);
      }
      return;
    default:
      // Unexpected dispatch: treat as invalid command result.
      ic.block(bp_->s_exec_invalid);
      return;
  }
}

void FdcDevice::fifo_write(const sedspec::IoAccess& /*io*/) {
  auto& ic = ictx();
  if (ic.branch(bp_->s_fifo_w_phase)) {  // command phase
    if (ic.branch(bp_->s_fifo_w_cmdq)) {  // first byte: the command
      const auto cmd = static_cast<uint8_t>(ic.command(bp_->s_cmd_decode));
      run_command(cmd);
    } else {  // parameter byte
      ic.block(bp_->s_fifo_w_param);
      if (ic.branch(bp_->s_fifo_w_pdone)) {
        const auto cmd =
            static_cast<uint8_t>(ic.command(bp_->s_exec_dispatch));
        exec_after_params(cmd);
      }
    }
  } else if (ic.branch(bp_->s_fifo_w_xferq)) {  // execution (write) phase
    ic.block(bp_->s_fifo_w_xfer);
    if (ic.branch(bp_->s_fifo_w_xdone)) {
      // Commit the sector to the disk image.
      backend_delay();
      const size_t offset = chs_offset();
      auto fifo = state().buffer_span(bp_->fifo);
      for (size_t i = 0; i < kSectorSize && offset + i < disk_.size(); ++i) {
        disk_[offset + i] = fifo[i];
      }
      ictx().block(bp_->s_exec_writedone);
      ictx().indirect(bp_->s_irq_wdone);
    }
  }
  // FIFO writes in other phases are ignored by the controller.
}

uint64_t FdcDevice::fifo_read(const sedspec::IoAccess& io) {
  (void)io;
  auto& ic = ictx();
  uint64_t value = 0;
  if (ic.branch(bp_->s_fifo_r_phase3)) {  // execution (read) phase
    value = state().buf_load(bp_->fifo, state().get(bp_->data_pos), nullptr);
    ic.block(bp_->s_fifo_r_data);
    if (ic.branch(bp_->s_fifo_r_ddone)) {
      ic.block(bp_->s_exec_readdone);
    }
  } else if (ic.branch(bp_->s_fifo_r_phase1)) {  // result phase
    value = state().buf_load(bp_->fifo, state().get(bp_->data_pos), nullptr);
    ic.block(bp_->s_fifo_r_res);
    if (ic.branch(bp_->s_fifo_r_rdone)) {
      ic.command_end(bp_->s_cmd_end_res);
    }
  }
  return value;
}

}  // namespace sedspec::devices
