#include "sedspec/pipeline.h"

#include <exception>
#include <thread>

#include "common/assert.h"
#include "common/log.h"
#include "obs/trace.h"

namespace sedspec::pipeline {

CollectionResult collect(Device& device,
                         const std::function<void()>& training) {
  return collect(device, training, CollectOptions{});
}

CollectionResult collect(Device& device,
                         const std::function<void()>& training,
                         const CollectOptions& options) {
  CollectionResult out;

  // Pass 1: IPT-style trace, filtered to the device's code range with
  // kernel-space tracing disabled (paper §IV-A).
  std::vector<uint8_t> packets;
  {
    obs::PhaseScope phase("trace_pass", device.name());
    trace::TraceFilter filter;
    filter.range_lo = device.program().code_base();
    filter.range_hi = device.program().code_end();
    filter.trace_kernel = false;
    trace::PacketEncoder encoder(filter);

    device.reset();
    device.ictx().set_trace_sink(&encoder);
    training();
    device.ictx().set_trace_sink(nullptr);
    packets = encoder.finish();
  }
  if (options.packet_tap) {
    options.packet_tap(packets);
  }
  out.trace_bytes = packets.size();
  {
    obs::PhaseScope phase("itc_cfg", device.name());
    cfg::ItcCfgBuilder itc_builder;
    itc_builder.feed_all(trace::decode(packets));
    out.itc_cfg = itc_builder.take();

    // CFG analysis: device-state parameter selection + observation plan.
    out.selection = cfg::analyze(out.itc_cfg, device.program());
  }

  {
    // Data-dependency recovery plan over the source.
    obs::PhaseScope phase("dataflow", device.name());
    out.recovery = dataflow::analyze_dependencies(device.program());
  }

  // Pass 2: observation points armed, produce the state-change log.
  {
    obs::PhaseScope phase("observe_pass", device.name());
    statelog::LogRecorder recorder;
    recorder.set_site_filter(&out.selection.observation_sites);
    device.reset();
    device.ictx().set_observer(&recorder);
    training();
    device.ictx().set_observer(nullptr);
    out.log = recorder.take();
  }

  log_info("pipeline") << device.name() << ": collected "
                       << out.log.round_count() << " rounds, "
                       << out.itc_cfg.node_count() << " ITC-CFG nodes, "
                       << out.selection.params.size() << " parameters";
  return out;
}

spec::EsCfg construct(Device& device, const CollectionResult& collection) {
  obs::PhaseScope phase("es_cfg_build", device.name());
  return spec::EsCfgBuilder::build(device.program(), collection.selection,
                                   collection.recovery, collection.log);
}

spec::EsCfg build_spec(Device& device,
                       const std::function<void()>& training) {
  const CollectionResult collection = collect(device, training);
  spec::EsCfg cfg = construct(device, collection);
  device.reset();
  return cfg;
}

std::vector<spec::EsCfg> build_specs_parallel(
    const std::vector<SpecBuildJob>& jobs) {
  std::vector<spec::EsCfg> specs(jobs.size());
  std::vector<std::exception_ptr> errors(jobs.size());
  std::vector<std::thread> threads;
  threads.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        SEDSPEC_REQUIRE(jobs[i].device != nullptr && jobs[i].training);
        specs[i] = build_spec(*jobs[i].device, jobs[i].training);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (const std::exception_ptr& e : errors) {
    if (e != nullptr) {
      std::rethrow_exception(e);
    }
  }
  return specs;
}

std::unique_ptr<checker::EsChecker> deploy(const spec::EsCfg& cfg,
                                           Device& device, IoBus& bus,
                                           checker::CheckerConfig config) {
  auto checker = std::make_unique<checker::EsChecker>(&cfg, &device, config);
  bus.set_proxy(checker.get());
  // Host-side device activity (e.g. wire frame delivery) mutates the
  // control structure outside any guest I/O round; the shadow must pick
  // those changes up before the next checked access.
  checker::EsChecker* raw = checker.get();
  device.set_internal_activity_hook([raw] { raw->resync(); });
  return checker;
}

DeployOutcome deploy_serialized(std::span<const uint8_t> bytes,
                                Device& device, IoBus& bus,
                                checker::CheckerConfig config) {
  DeployOutcome out;
  spec::LoadResult loaded = spec::load(bytes);
  if (!loaded.ok()) {
    out.error = loaded.error;
    log_warn("pipeline") << device.name()
                         << ": rejected spec — " << out.error.describe();
    return out;
  }
  if (loaded.cfg->device_name != device.program().device_name()) {
    out.error.status = spec::LoadStatus::kDeviceMismatch;
    out.error.detail = "spec is for '" + loaded.cfg->device_name +
                       "', device is '" + device.program().device_name() +
                       "'";
    log_warn("pipeline") << device.name()
                         << ": rejected spec — " << out.error.describe();
    return out;
  }
  out.cfg = std::make_unique<spec::EsCfg>(std::move(*loaded.cfg));
  try {
    out.checker = deploy(*out.cfg, device, bus, config);
  } catch (const std::exception& e) {
    // The payload decoded structurally but violates a semantic invariant
    // the checker constructor enforces (dangling site, bad local index…).
    // Untrusted persistence input, so it is a load rejection, not a bug.
    out.cfg.reset();
    bus.set_proxy(nullptr);
    device.set_internal_activity_hook({});
    out.error.status = spec::LoadStatus::kMalformed;
    out.error.detail = e.what();
    log_warn("pipeline") << device.name()
                         << ": rejected spec — " << out.error.describe();
  }
  return out;
}

}  // namespace sedspec::pipeline
