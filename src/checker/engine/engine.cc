#include "checker/engine/engine.h"

#include <atomic>
#include <sstream>

#include "checker/engine/bytecode.h"
#include "checker/engine/interpreter.h"
#include "common/assert.h"
#include "vdev/device.h"

namespace sedspec::checker::engine {

namespace {
// Process-wide backend knob. Relaxed is enough: tests that flip it
// synchronize checker construction themselves, and a torn read is
// impossible for a one-byte enum.
std::atomic<EngineKind> g_default_engine{EngineKind::kBytecode};
}  // namespace

EngineKind default_engine() {
  return g_default_engine.load(std::memory_order_relaxed);
}

void set_default_engine(EngineKind kind) {
  SEDSPEC_REQUIRE_MSG(kind != EngineKind::kDefault,
                      "default engine must be a concrete backend");
  g_default_engine.store(kind, std::memory_order_relaxed);
}

EngineKind resolve_engine(EngineKind requested) {
  return requested == EngineKind::kDefault ? default_engine() : requested;
}

std::unique_ptr<CheckEngine> make_engine(const spec::EsCfg* cfg,
                                         Device* device,
                                         sedspec::StateArena* shadow,
                                         const CheckerConfig* config) {
  SEDSPEC_REQUIRE(cfg != nullptr && device != nullptr && shadow != nullptr &&
                  config != nullptr);
  switch (resolve_engine(config->engine)) {
    case EngineKind::kInterpreter:
      return std::make_unique<InterpreterEngine>(cfg, device, shadow, config);
    case EngineKind::kBytecode:
      return std::make_unique<BytecodeEngine>(cfg, device, shadow, config);
    case EngineKind::kDefault:
      break;  // unreachable: resolve_engine never returns kDefault
  }
  SEDSPEC_REQUIRE_MSG(false, "unresolvable engine kind");
  return nullptr;
}

bool index_is_state_derived(const spec::EsCfg& cfg, const sedspec::ExprRef& e) {
  if (e == nullptr) {
    return false;
  }
  bool has_param = false;
  bool has_sync_local = false;
  sedspec::visit(*e, [&](const sedspec::Expr& n) {
    if (n.kind == sedspec::ExprKind::kParam ||
        n.kind == sedspec::ExprKind::kBufLoad) {
      if (cfg.is_param(n.param)) {
        has_param = true;
      }
    } else if (n.kind == sedspec::ExprKind::kLocal) {
      if (cfg.sync_locals.contains(n.local)) {
        has_sync_local = true;
      }
    }
  });
  return has_param && !has_sync_local;
}

namespace detail {

std::string untrained_io(const IoAccess& io) {
  std::ostringstream detail;
  detail << "untrained I/O access: "
         << (io.space == sedspec::IoSpace::kPio ? "pio" : "mmio") << " 0x"
         << std::hex << io.addr << (io.is_write ? " write" : " read");
  return detail.str();
}

std::string visit_bound(std::string_view block_name, uint64_t visits,
                        uint64_t trained_max) {
  std::ostringstream detail;
  detail << "block '" << block_name << "' visited " << visits
         << " times in one round (trained max " << trained_max << ")";
  return detail.str();
}

std::string cmd_access(std::string_view block_name, uint64_t cmd) {
  std::ostringstream detail;
  detail << "block '" << block_name << "' not accessible under command 0x"
         << std::hex << cmd;
  return detail.str();
}

std::string unresolved_sync(const sedspec::EvalDiag& diag) {
  return "unresolved sync variable: " + diag.describe();
}

std::string guard_diag(const sedspec::EvalDiag& diag) {
  return "in guard: " + diag.describe();
}

std::string untrained_direction(std::string_view block_name, bool taken) {
  return std::string("untrained ") + (taken ? "taken" : "not-taken") +
         " direction at '" + std::string(block_name) + "'";
}

std::string cmd_decode_diag(const sedspec::EvalDiag& diag) {
  return "in command decode: " + diag.describe();
}

std::string untrained_cmd(std::string_view block_name, uint64_t cmd) {
  std::ostringstream detail;
  detail << "untrained command 0x" << std::hex << cmd << " at '" << block_name
         << "'";
  return detail.str();
}

std::string indirect_target(std::string_view block_name, uint64_t target) {
  std::ostringstream detail;
  detail << "indirect call at '" << block_name << "' targets 0x" << std::hex
         << target << ", not a trained legitimate function";
  return detail.str();
}

std::string watchdog_tripped(uint64_t steps) {
  return "traversal watchdog tripped after " + std::to_string(steps) +
         " steps";
}

std::string unmapped_site(SiteId site) {
  return "traversal reached unmapped site " + std::to_string(site);
}

}  // namespace detail

}  // namespace sedspec::checker::engine
