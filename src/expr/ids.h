// Shared identifier types for the device-program model.
//
// ParamId  — index of a field in a device's control-structure layout
//            (src/program/layout.h). The CFG analyzer selects a subset of
//            fields as "device state parameters" (paper §IV-B); statements
//            and guards reference fields by ParamId.
// LocalId  — a non-state variable (temporary, DMA-derived length, config
//            constant). Locals are the subject of data-dependency recovery
//            (paper §V-D): either rewritten in terms of ParamIds or resolved
//            through a sync point at runtime.
// SiteId   — an instrumentation site (basic-block entry / conditional jump /
//            indirect jump) in a device's code. Stable per device.
// FuncAddr — the "address" of a device-internal function; indirect-jump
//            targets are FuncAddr values stored in function-pointer fields.
#pragma once

#include <cstdint>

namespace sedspec {

using ParamId = uint16_t;
using LocalId = uint16_t;
using SiteId = uint16_t;
using FuncAddr = uint64_t;

inline constexpr ParamId kInvalidParam = 0xffff;
inline constexpr SiteId kInvalidSite = 0xffff;

}  // namespace sedspec
