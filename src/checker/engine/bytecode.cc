// BytecodeEngine implementation: spec -> flat bytecode compiler, structural
// verifier, SEBC (de)serializer, and the threaded-code VM.
//
// The compiler and VM are written against one contract: observational
// identity with InterpreterEngine (and therefore expr/eval.cc). Comments
// below call out each place where eval.cc's exact quirk order is load-
// bearing; change nothing here without re-running the differential suite.
#include "checker/engine/bytecode.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/bytes.h"
#include "common/crc32.h"
#include "common/decode.h"
#include "expr/type.h"
#include "obs/trace.h"
#include "vdev/device.h"

namespace sedspec::checker::engine {

bool EdgeSet::contains(uint64_t target) const {
  switch (kind) {
    case kEmpty:
      return false;
    case kBitmap: {
      if (target < base) {
        return false;
      }
      const uint64_t off = target - base;
      const uint64_t word = off >> 6;
      if (word >= words.size()) {
        return false;
      }
      return ((words[word] >> (off & 63)) & 1) != 0;
    }
    default: {  // kSorted (and garbage kinds: empty `sorted` => false)
      const uint64_t* lo = sorted.data();
      size_t n = sorted.size();
      while (n > 1) {
        const size_t half = n / 2;
        lo += (lo[half - 1] < target) ? half : 0;
        n -= half;
      }
      return n == 1 && *lo == target;
    }
  }
}

namespace {

using sedspec::Expr;
using sedspec::ExprKind;
using sedspec::ExprRef;
using sedspec::Stmt;
using sedspec::StmtKind;
using spec::CondDir;
using spec::EsBlock;

/// Conservative over-approximation of "evaluating this expression can record
/// an EvalDiag". Over-approximating is safe (kDiagCheck is a no-op on a
/// clean diag); under-approximating would drop violations.
bool expr_can_diag(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kConst:
    case ExprKind::kParam:
    case ExprKind::kIoField:
      return false;
    case ExprKind::kLocal:    // kMissingLocal
    case ExprKind::kBufLoad:  // kBufferOob (and its index subtree)
      return true;
    case ExprKind::kUnary:
      if (e.un_op == sedspec::UnaryOp::kNeg) {
        return true;  // kIntegerOverflow
      }
      return e.lhs != nullptr && expr_can_diag(*e.lhs);
    case ExprKind::kBinary:
      switch (e.bin_op) {
        case sedspec::BinaryOp::kAdd:
        case sedspec::BinaryOp::kSub:
        case sedspec::BinaryOp::kMul:
        case sedspec::BinaryOp::kDiv:
        case sedspec::BinaryOp::kMod:
        case sedspec::BinaryOp::kShl:
        case sedspec::BinaryOp::kShr:
          return true;
        default:
          return (e.lhs != nullptr && expr_can_diag(*e.lhs)) ||
                 (e.rhs != nullptr && expr_can_diag(*e.rhs));
      }
    case ExprKind::kCast:
      return e.lhs != nullptr && expr_can_diag(*e.lhs);
  }
  return true;
}

/// Eligibility for the kBoundsBatch superinstruction. Batched statements
/// evaluate ALL index/value expressions before the first store, so the
/// expressions must be unaffected by the batch's own (in-bounds) buffer
/// stores and must be unable to raise a diag: scalar params, I/O fields,
/// constants, and diag-free combinators only.
bool batch_expr_ok(const ExprRef& e, const sedspec::StateLayout& layout) {
  if (e == nullptr) {
    return false;
  }
  switch (e->kind) {
    case ExprKind::kConst:
    case ExprKind::kIoField:
      return true;
    case ExprKind::kParam:
      return e->param < layout.field_count() &&
             !layout.field(e->param).is_buffer();
    case ExprKind::kLocal:
    case ExprKind::kBufLoad:
      return false;
    case ExprKind::kUnary:
      return (e->un_op == sedspec::UnaryOp::kBitNot ||
              e->un_op == sedspec::UnaryOp::kLogicalNot) &&
             batch_expr_ok(e->lhs, layout);
    case ExprKind::kCast:
      return batch_expr_ok(e->lhs, layout);
    case ExprKind::kBinary:
      switch (e->bin_op) {
        case sedspec::BinaryOp::kAnd:
        case sedspec::BinaryOp::kOr:
        case sedspec::BinaryOp::kXor:
        case sedspec::BinaryOp::kEq:
        case sedspec::BinaryOp::kNe:
        case sedspec::BinaryOp::kLt:
        case sedspec::BinaryOp::kLe:
        case sedspec::BinaryOp::kGt:
        case sedspec::BinaryOp::kGe:
        case sedspec::BinaryOp::kLAnd:
        case sedspec::BinaryOp::kLOr:
          return batch_expr_ok(e->lhs, layout) && batch_expr_ok(e->rhs, layout);
        default:
          return false;
      }
  }
  return false;
}

class Compiler {
 public:
  Compiler(const spec::EsCfg& cfg, const Device& device,
           const CheckerConfig& config)
      : cfg_(cfg),
        config_(config),
        layout_(device.program().layout()),
        site_count_(device.program().site_count()) {}

  std::shared_ptr<const BytecodeProgram> run() {
    validate();
    p_.device_name = cfg_.device_name;
    build_block_meta();
    build_commands();

    // code[0] is always kEnd: jump target 0 terminates the round, which is
    // what unobserved/ends transition slots encode.
    p_.code.push_back(Insn{.op = static_cast<uint8_t>(Op::kEnd)});
    for (auto it = cfg_.blocks.begin(); it != cfg_.blocks.end(); ++it) {
      block_pc_[it->first] = static_cast<uint32_t>(p_.code.size());
      const auto next = std::next(it);
      next_site_ =
          next == cfg_.blocks.end() ? sedspec::kInvalidSite : next->first;
      compile_block(it->second, meta_idx_.at(it->first));
    }
    apply_fixups();
    build_entries();

    p_.reg_count = next_reg_;
    return std::make_shared<const BytecodeProgram>(std::move(p_));
  }

 private:
  enum FixSlot : uint8_t { kSlotC = 0, kSlotImmLo = 1, kSlotImmHi = 2 };
  struct Fixup {
    size_t insn = 0;
    FixSlot slot = kSlotC;
    SiteId site = sedspec::kInvalidSite;
  };
  struct TableFixup {
    size_t table = 0;
    size_t entry = 0;
    SiteId site = sedspec::kInvalidSite;
  };

  // --- structural validation (parity with InterpreterEngine::build_aux) ---

  void validate() const {
    const auto require_block = [&](SiteId s) {
      SEDSPEC_REQUIRE(s < site_count_ && cfg_.blocks.contains(s));
    };
    const auto require_dir = [&](const CondDir& d) {
      if (d.observed && !d.ends) {
        require_block(d.succ);
      }
    };
    for (const auto& [site, block] : cfg_.blocks) {
      SEDSPEC_REQUIRE(site < site_count_);
    }
    for (const auto& [key, entry] : cfg_.entry_dispatch) {
      if (entry != sedspec::kInvalidSite) {
        require_block(entry);
      }
    }
    for (const auto& [site, block] : cfg_.blocks) {
      if (block.has_succ && !block.ends) {
        require_block(block.succ);
      }
      require_dir(block.taken);
      require_dir(block.not_taken);
      for (const auto& [cmd, dir] : block.cmd_dispatch) {
        require_dir(dir);
      }
    }
  }

  void build_block_meta() {
    SEDSPEC_REQUIRE(cfg_.blocks.size() <= 0xffff);
    for (const auto& [site, block] : cfg_.blocks) {
      meta_idx_[site] = static_cast<uint32_t>(p_.blocks.size());
      BlockMeta meta;
      meta.name = block.name;
      meta.site = site;
      meta.trained_max = block.max_visits_per_round;
      meta.visit_bound =
          std::max<uint64_t>(config_.visit_slack_min,
                             block.max_visits_per_round *
                                 config_.visit_slack_multiplier);
      p_.blocks.push_back(std::move(meta));
    }
  }

  void build_commands() {
    p_.words_per_block =
        static_cast<uint32_t>((p_.blocks.size() + 63) / 64);
    for (const auto& [cmd, info] : cfg_.commands) {  // map order => sorted
      p_.cmd_values.push_back(cmd);
      const size_t row = p_.access_words.size();
      p_.access_words.resize(row + p_.words_per_block, 0);
      for (const SiteId s : info.access) {
        const auto it = meta_idx_.find(s);
        if (it == meta_idx_.end()) {
          continue;  // access entry for a non-block site: never visited
        }
        const uint32_t bit = it->second;
        p_.access_words[row + (bit >> 6)] |= uint64_t{1} << (bit & 63);
      }
    }
  }

  [[nodiscard]] uint32_t access_index_for(uint64_t cmd) const {
    const auto it =
        std::lower_bound(p_.cmd_values.begin(), p_.cmd_values.end(), cmd);
    if (it == p_.cmd_values.end() || *it != cmd) {
      return kNoAccess;
    }
    return static_cast<uint32_t>(it - p_.cmd_values.begin());
  }

  // --- register allocation ------------------------------------------------

  uint16_t alloc_reg() {
    if (!free_regs_.empty()) {
      const uint16_t r = free_regs_.back();
      free_regs_.pop_back();
      return r;
    }
    SEDSPEC_REQUIRE(next_reg_ < 0xffff);
    return static_cast<uint16_t>(next_reg_++);
  }
  void free_reg(uint16_t r) { free_regs_.push_back(r); }

  size_t emit(Insn ins) {
    p_.code.push_back(ins);
    return p_.code.size() - 1;
  }

  uint32_t intern_note(const std::string& note) {
    const auto [it, inserted] =
        note_idx_.try_emplace(note, static_cast<uint32_t>(p_.notes.size()));
    if (inserted) {
      p_.notes.push_back(note);
    }
    return it->second;
  }

  uint32_t intern_const(uint64_t v) {
    const auto [it, inserted] =
        const_idx_.try_emplace(v, static_cast<uint32_t>(p_.consts.size()));
    if (inserted) {
      p_.consts.push_back(v);
    }
    return it->second;
  }

  /// Non-null iff `param` names a valid scalar field whose offset/width fit
  /// the superinstruction encodings. Anything else keeps the generic ops so
  /// the arena's runtime REQUIREs fire identically in both engines.
  const sedspec::FieldDesc* scalar_field(uint16_t param) const {
    if (param >= layout_.field_count()) {
      return nullptr;
    }
    const sedspec::FieldDesc& f =
        layout_.field(static_cast<ParamId>(param));
    if (f.is_buffer() || f.size == 0 || f.size > 8) {
      return nullptr;
    }
    return &f;
  }

  // --- expression compilation --------------------------------------------
  // Free-then-alloc register discipline: operand registers are released
  // before the destination is allocated, so dst may alias an operand. Every
  // VM opcode reads its operands before writing regs[dst].

  uint16_t compile_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kConst: {
        const uint16_t r = alloc_reg();
        emit(Insn{.op = static_cast<uint8_t>(Op::kConst),
                  .t = static_cast<uint8_t>(e.type),
                  .dst = r,
                  .imm = e.const_value});
        return r;
      }
      case ExprKind::kParam: {
        const uint16_t r = alloc_reg();
        // Valid scalar params get the offset-resolved superinstruction; the
        // generic op is kept for ids the arena would reject at runtime so
        // containment behavior stays engine-identical.
        if (const sedspec::FieldDesc* f = scalar_field(e.param)) {
          emit(Insn{.op = static_cast<uint8_t>(Op::kLoadScalar),
                    .t = static_cast<uint8_t>(e.type),
                    .dst = r,
                    .b = static_cast<uint16_t>(f->size),
                    .c = f->offset});
        } else {
          emit(Insn{.op = static_cast<uint8_t>(Op::kLoadParam),
                    .t = static_cast<uint8_t>(e.type),
                    .dst = r,
                    .a = e.param});
        }
        return r;
      }
      case ExprKind::kLocal: {
        const uint16_t r = alloc_reg();
        emit(Insn{.op = static_cast<uint8_t>(Op::kLoadLocal),
                  .t = static_cast<uint8_t>(e.type),
                  .dst = r,
                  .a = e.local});
        return r;
      }
      case ExprKind::kIoField: {
        const uint16_t r = alloc_reg();
        emit(Insn{.op = static_cast<uint8_t>(Op::kLoadIo),
                  .t = static_cast<uint8_t>(e.type),
                  .dst = r,
                  .a = static_cast<uint16_t>(e.io_field)});
        return r;
      }
      case ExprKind::kBufLoad: {
        SEDSPEC_REQUIRE(e.lhs != nullptr);
        const uint16_t ri = compile_expr(*e.lhs);
        free_reg(ri);
        const uint16_t r = alloc_reg();
        emit(Insn{.op = static_cast<uint8_t>(Op::kBufLoad),
                  .t = static_cast<uint8_t>(e.type),
                  .dst = r,
                  .a = ri,
                  .b = e.param});
        return r;
      }
      case ExprKind::kUnary: {
        SEDSPEC_REQUIRE(e.lhs != nullptr);
        const uint16_t rs = compile_expr(*e.lhs);
        free_reg(rs);
        const uint16_t r = alloc_reg();
        Op op = Op::kNeg;
        if (e.un_op == sedspec::UnaryOp::kBitNot) {
          op = Op::kBitNot;
        } else if (e.un_op == sedspec::UnaryOp::kLogicalNot) {
          op = Op::kLogNot;
        }
        emit(Insn{.op = static_cast<uint8_t>(op),
                  .t = static_cast<uint8_t>(e.type),
                  .dst = r,
                  .a = rs,
                  .b = static_cast<uint16_t>(e.lhs->type)});
        return r;
      }
      case ExprKind::kBinary: {
        SEDSPEC_REQUIRE(e.lhs != nullptr && e.rhs != nullptr);
        const uint16_t rl = compile_expr(*e.lhs);
        const uint16_t rr = compile_expr(*e.rhs);
        free_reg(rl);
        free_reg(rr);
        const uint16_t r = alloc_reg();
        // Op::kAdd..kLOr mirrors BinaryOp::kAdd..kLOr exactly.
        const auto op = static_cast<Op>(
            static_cast<uint8_t>(Op::kAdd) +
            (static_cast<uint8_t>(e.bin_op) -
             static_cast<uint8_t>(sedspec::BinaryOp::kAdd)));
        emit(Insn{.op = static_cast<uint8_t>(op),
                  .dst = r,
                  .a = rl,
                  .b = rr,
                  .c = static_cast<uint32_t>(e.type) |
                       (static_cast<uint32_t>(e.lhs->type) << 8) |
                       (static_cast<uint32_t>(e.rhs->type) << 16)});
        return r;
      }
      case ExprKind::kCast: {
        SEDSPEC_REQUIRE(e.lhs != nullptr);
        const uint16_t rs = compile_expr(*e.lhs);
        free_reg(rs);
        const uint16_t r = alloc_reg();
        emit(Insn{.op = static_cast<uint8_t>(Op::kCast),
                  .t = static_cast<uint8_t>(e.type),
                  .dst = r,
                  .a = rs,
                  .b = static_cast<uint16_t>(e.lhs->type)});
        return r;
      }
    }
    SEDSPEC_REQUIRE_MSG(false, "unknown expression kind");
    return 0;
  }

  // --- statement compilation ---------------------------------------------

  void compile_stmt(const Stmt& s, bool bounds, uint32_t meta) {
    bool can_diag = bounds;
    switch (s.kind) {
      case StmtKind::kAssignParam: {
        SEDSPEC_REQUIRE(s.value != nullptr);
        const sedspec::FieldDesc* f = scalar_field(s.param);
        if (f != nullptr && s.value->kind == ExprKind::kConst) {
          // Constant DSOD store: fold the whole statement into one insn with
          // the set_param() truncation applied at compile time.
          emit(Insn{.op = static_cast<uint8_t>(Op::kStoreScalarImm),
                    .t = static_cast<uint8_t>(f->type),
                    .b = static_cast<uint16_t>(f->size),
                    .c = f->offset,
                    .imm = sedspec::truncate_to(f->type,
                                                s.value->const_value)});
          break;  // kConst can never diag
        }
        const uint16_t r = compile_expr(*s.value);
        if (f != nullptr) {
          emit(Insn{.op = static_cast<uint8_t>(Op::kStoreScalar),
                    .t = static_cast<uint8_t>(f->type),
                    .a = r,
                    .b = static_cast<uint16_t>(f->size),
                    .c = f->offset});
        } else {
          emit(Insn{.op = static_cast<uint8_t>(Op::kStoreParam),
                    .a = r,
                    .b = s.param});
        }
        free_reg(r);
        can_diag = can_diag || expr_can_diag(*s.value);
        break;
      }
      case StmtKind::kAssignLocal: {
        SEDSPEC_REQUIRE(s.value != nullptr);
        const uint16_t r = compile_expr(*s.value);
        emit(Insn{.op = static_cast<uint8_t>(Op::kStoreLocal),
                  .a = r,
                  .b = s.local});
        free_reg(r);
        can_diag = can_diag || expr_can_diag(*s.value);
        break;
      }
      case StmtKind::kBufStore: {
        SEDSPEC_REQUIRE(s.index != nullptr && s.value != nullptr);
        const uint16_t ri = compile_expr(*s.index);
        const uint16_t rv = compile_expr(*s.value);
        emit(Insn{.op = static_cast<uint8_t>(Op::kBufStore),
                  .t = bounds ? uint8_t{1} : uint8_t{0},
                  .dst = rv,
                  .a = ri,
                  .b = s.param});
        free_reg(ri);
        free_reg(rv);
        can_diag =
            can_diag || expr_can_diag(*s.index) || expr_can_diag(*s.value);
        break;
      }
      case StmtKind::kBufFill: {
        SEDSPEC_REQUIRE(s.index != nullptr && s.count != nullptr);
        const uint16_t ri = compile_expr(*s.index);
        const uint16_t rc = compile_expr(*s.count);
        emit(Insn{.op = static_cast<uint8_t>(Op::kBufFill),
                  .t = bounds ? uint8_t{1} : uint8_t{0},
                  .dst = rc,
                  .a = ri,
                  .b = s.param});
        free_reg(ri);
        free_reg(rc);
        can_diag =
            can_diag || expr_can_diag(*s.index) || expr_can_diag(*s.count);
        break;
      }
    }
    if (can_diag) {
      emit(Insn{.op = static_cast<uint8_t>(Op::kDiagCheck),
                .b = static_cast<uint16_t>(meta),
                .c = intern_note(s.note)});
    }
  }

  /// True if statement `i` can open (or extend) a kBoundsBatch run.
  [[nodiscard]] bool batch_eligible(const EsBlock& block,
                                    const std::vector<uint8_t>& bounds,
                                    size_t i) const {
    const Stmt& s = block.dsod[i];
    return s.kind == StmtKind::kBufStore && bounds[i] != 0 &&
           s.param < layout_.field_count() &&
           layout_.field(s.param).is_buffer() &&
           batch_expr_ok(s.index, layout_) && batch_expr_ok(s.value, layout_);
  }

  void compile_batch(const EsBlock& block, size_t from, size_t run,
                     uint32_t meta) {
    // Evaluate every index/value first (eligible expressions cannot observe
    // the batch's own in-bounds stores, so hoisting evaluation is sound),
    // keeping all registers live across the batch.
    std::vector<std::pair<uint16_t, uint16_t>> regs;
    regs.reserve(run);
    for (size_t j = from; j < from + run; ++j) {
      const Stmt& s = block.dsod[j];
      const uint16_t ri = compile_expr(*s.index);
      const uint16_t rv = compile_expr(*s.value);
      regs.emplace_back(ri, rv);
    }
    const size_t pool_off = p_.batch_pool.size();
    SEDSPEC_REQUIRE(pool_off + run <= 0xffff);
    for (size_t j = 0; j < run; ++j) {
      const Stmt& s = block.dsod[from + j];
      BatchEntry e;
      e.idx_reg = regs[j].first;
      e.val_reg = regs[j].second;
      e.param = s.param;
      e.limit = layout_.field(s.param).count;
      p_.batch_pool.push_back(e);
    }
    const size_t bidx =
        emit(Insn{.op = static_cast<uint8_t>(Op::kBoundsBatch),
                  .a = static_cast<uint16_t>(pool_off),
                  .b = static_cast<uint16_t>(run)});
    // Slow path: the sequential statements, compiled immediately after the
    // batch (interpreter-exact order and diagnostics).
    p_.code[bidx].c = static_cast<uint32_t>(p_.code.size());
    for (size_t j = from; j < from + run; ++j) {
      compile_stmt(block.dsod[j], true, meta);
    }
    p_.code[bidx].imm = static_cast<uint32_t>(p_.code.size());  // join
    for (const auto& [ri, rv] : regs) {
      free_reg(ri);
      free_reg(rv);
    }
  }

  // --- block compilation --------------------------------------------------

  void compile_block(const EsBlock& block, uint32_t meta) {
    // Sync-local collection, in the interpreter's order: per-statement
    // value/index/count, then guard, then cmd_expr; first occurrence wins.
    std::vector<LocalId> syncs;
    const auto collect = [&](const ExprRef& e) {
      if (e == nullptr) {
        return;
      }
      sedspec::visit(*e, [&](const Expr& n) {
        if (n.kind == ExprKind::kLocal && cfg_.sync_locals.contains(n.local) &&
            std::find(syncs.begin(), syncs.end(), n.local) == syncs.end()) {
          syncs.push_back(n.local);
        }
      });
    };
    std::vector<uint8_t> bounds;
    bounds.reserve(block.dsod.size());
    for (const Stmt& s : block.dsod) {
      collect(s.value);
      collect(s.index);
      collect(s.count);
      bool b = false;
      if (s.kind == StmtKind::kBufStore) {
        b = index_is_state_derived(cfg_, s.index);
      } else if (s.kind == StmtKind::kBufFill) {
        b = index_is_state_derived(cfg_, s.index) ||
            index_is_state_derived(cfg_, s.count);
      }
      bounds.push_back(b ? 1 : 0);
    }
    collect(block.guard);
    collect(block.cmd_expr);

    const size_t sync_off = p_.sync_pool.size();
    SEDSPEC_REQUIRE(sync_off + syncs.size() <= 0xffff);
    p_.sync_pool.insert(p_.sync_pool.end(), syncs.begin(), syncs.end());
    emit(Insn{.op = static_cast<uint8_t>(Op::kProlog),
              .dst = static_cast<uint16_t>(syncs.size()),
              .a = static_cast<uint16_t>(meta),
              .b = static_cast<uint16_t>(sync_off)});

    // DSOD, batching runs of >= 2 eligible bounds-checked buffer stores.
    for (size_t i = 0; i < block.dsod.size();) {
      size_t run = 0;
      while (i + run < block.dsod.size() &&
             batch_eligible(block, bounds, i + run)) {
        ++run;
      }
      if (run >= 2) {
        compile_batch(block, i, run, meta);
        i += run;
        continue;
      }
      compile_stmt(block.dsod[i], bounds[i] != 0, meta);
      ++i;
    }

    // Terminator (NBTD).
    switch (block.kind) {
      case sedspec::BlockKind::kConditional: {
        if (block.merged) {
          emit_jump(block.has_succ ? block.succ : sedspec::kInvalidSite);
          break;
        }
        SEDSPEC_REQUIRE(block.guard != nullptr);
        const uint32_t dirs = dir_flags(block);
        if (try_guard_cmp(block, meta, dirs)) {
          break;
        }
        const uint16_t rg = compile_expr(*block.guard);
        free_reg(rg);
        const size_t idx =
            emit(Insn{.op = static_cast<uint8_t>(Op::kBranch),
                      .t = expr_can_diag(*block.guard) ? kBrCanDiag
                                                       : uint8_t{0},
                      .a = rg,
                      .c = dirs | (meta << 8)});
        add_branch_fixups(idx, block);
        break;
      }
      case sedspec::BlockKind::kCmdDecision: {
        SEDSPEC_REQUIRE(block.cmd_expr != nullptr);
        const uint16_t rc = compile_expr(*block.cmd_expr);
        free_reg(rc);
        const uint32_t ti = build_dispatch_table(block);
        emit(Insn{.op = static_cast<uint8_t>(Op::kCmdDispatch),
                  .t = expr_can_diag(*block.cmd_expr) ? kBrCanDiag
                                                      : uint8_t{0},
                  .a = rc,
                  .b = static_cast<uint16_t>(ti),
                  .c = meta});
        break;
      }
      case sedspec::BlockKind::kIndirect: {
        const uint32_t ei = build_edge_set(block);
        const size_t idx =
            emit(Insn{.op = static_cast<uint8_t>(Op::kIndirect),
                      .a = block.fp_param,
                      .b = static_cast<uint16_t>(ei),
                      .c = meta});
        if (block.has_succ) {
          fixups_.push_back(Fixup{idx, kSlotImmLo, block.succ});
        }
        break;
      }
      case sedspec::BlockKind::kCmdEnd: {
        const size_t idx = emit(Insn{.op = static_cast<uint8_t>(Op::kCmdEnd)});
        if (block.has_succ) {
          fixups_.push_back(Fixup{idx, kSlotImmLo, block.succ});
        }
        break;
      }
      case sedspec::BlockKind::kPlain:
        emit_jump(block.has_succ ? block.succ : sedspec::kInvalidSite);
        break;
    }
  }

  void emit_jump(SiteId target) {
    // Fallthrough elision: a plain jump to the block compiled immediately
    // after this one is a no-op — the next insn IS that block's prolog.
    if (target != sedspec::kInvalidSite && target == next_site_) {
      return;
    }
    const size_t idx = emit(Insn{.op = static_cast<uint8_t>(Op::kJump)});
    fixups_.push_back(Fixup{idx, kSlotC, target});
  }

  [[nodiscard]] static uint32_t dir_flags(const EsBlock& block) {
    uint32_t f = 0;
    if (block.taken.observed) f |= kDirTakenObserved;
    if (block.taken.ends) f |= kDirTakenEnds;
    if (block.not_taken.observed) f |= kDirNotTakenObserved;
    if (block.not_taken.ends) f |= kDirNotTakenEnds;
    return f;
  }

  void add_branch_fixups(size_t idx, const EsBlock& block) {
    if (block.taken.observed && !block.taken.ends) {
      fixups_.push_back(Fixup{idx, kSlotImmLo, block.taken.succ});
    }
    if (block.not_taken.observed && !block.not_taken.ends) {
      fixups_.push_back(Fixup{idx, kSlotImmHi, block.not_taken.succ});
    }
  }

  /// Superinstruction: guard of shape `simple OP simple` where OP is a
  /// comparison and the operands are constants, scalar params, or I/O
  /// fields. None of those can raise a diag, so the fused opcode skips the
  /// whole diag protocol.
  bool try_guard_cmp(const EsBlock& block, uint32_t meta, uint32_t dirs) {
    const Expr& g = *block.guard;
    if (g.kind != ExprKind::kBinary ||
        g.bin_op < sedspec::BinaryOp::kEq ||
        g.bin_op > sedspec::BinaryOp::kGe ||
        g.lhs == nullptr || g.rhs == nullptr) {
      return false;
    }
    const auto spec_of = [&](const Expr& o) -> std::optional<uint16_t> {
      switch (o.kind) {
        case ExprKind::kConst: {
          const uint32_t idx = intern_const(o.const_value);
          if (idx > 0x7ff) {
            return std::nullopt;
          }
          return operand_spec(0, o.type, static_cast<uint16_t>(idx));
        }
        case ExprKind::kParam:
          if (o.param >= layout_.field_count() ||
              layout_.field(o.param).is_buffer() || o.param > 0x7ff) {
            return std::nullopt;
          }
          return operand_spec(1, o.type, o.param);
        case ExprKind::kIoField:
          return operand_spec(2, o.type, static_cast<uint16_t>(o.io_field));
        default:
          return std::nullopt;
      }
    };
    const auto ls = spec_of(*g.lhs);
    const auto rs = spec_of(*g.rhs);
    if (!ls.has_value() || !rs.has_value()) {
      return false;
    }
    const size_t idx =
        emit(Insn{.op = static_cast<uint8_t>(Op::kGuardCmpBranch),
                  .t = static_cast<uint8_t>(g.bin_op),
                  .a = *ls,
                  .b = *rs,
                  .c = dirs | (meta << 8)});
    add_branch_fixups(idx, block);
    return true;
  }

  uint32_t build_dispatch_table(const EsBlock& block) {
    const size_t ti = p_.tables.size();
    SEDSPEC_REQUIRE(ti <= 0xffff);
    DispatchTable table;
    for (const auto& [cmd, dir] : block.cmd_dispatch) {  // map order: sorted
      if (!dir.observed) {
        continue;  // unobserved entry == absent entry (untrained_cmd)
      }
      DispatchEntry e;
      e.cmd = cmd;
      e.access_idx = access_index_for(cmd);
      if (!dir.ends) {
        table_fixups_.push_back(
            TableFixup{ti, table.entries.size(), dir.succ});
      }
      table.entries.push_back(e);
    }
    p_.tables.push_back(std::move(table));
    return static_cast<uint32_t>(ti);
  }

  uint32_t build_edge_set(const EsBlock& block) {
    const size_t ei = p_.edges.size();
    SEDSPEC_REQUIRE(ei <= 0xffff);
    EdgeSet set;
    if (!block.fp_targets.empty()) {
      const uint64_t lo = *block.fp_targets.begin();
      const uint64_t hi = *block.fp_targets.rbegin();
      const uint64_t span = hi - lo;
      if (span < (uint64_t{1} << 16)) {
        set.kind = EdgeSet::kBitmap;
        set.base = lo;
        set.words.assign((span >> 6) + 1, 0);
        for (const uint64_t t : block.fp_targets) {
          const uint64_t off = t - lo;
          set.words[off >> 6] |= uint64_t{1} << (off & 63);
        }
      } else {
        set.kind = EdgeSet::kSorted;
        set.sorted.assign(block.fp_targets.begin(), block.fp_targets.end());
      }
    }
    p_.edges.push_back(std::move(set));
    return static_cast<uint32_t>(ei);
  }

  // --- target resolution --------------------------------------------------

  /// kInvalidSite -> 0 (round end); a compiled block -> its pc; anything
  /// else -> a lazily materialized kTrapUnmapped. The trap replicates the
  /// interpreter byte-for-byte: a trained `succ` that is not a block is
  /// still *walked onto* (ends is not consulted by plain transitions), and
  /// the unmapped site throws only after step/watchdog/budget accounting.
  uint32_t resolve_target(SiteId site) {
    if (site == sedspec::kInvalidSite) {
      return 0;
    }
    if (const auto it = block_pc_.find(site); it != block_pc_.end()) {
      return it->second;
    }
    const auto [it, inserted] = trap_pc_.try_emplace(site, 0);
    if (inserted) {
      it->second = static_cast<uint32_t>(p_.code.size());
      emit(Insn{.op = static_cast<uint8_t>(Op::kTrapUnmapped), .c = site});
    }
    return it->second;
  }

  void apply_fixups() {
    for (const Fixup& f : fixups_) {
      const uint32_t pc = resolve_target(f.site);
      Insn& ins = p_.code[f.insn];
      switch (f.slot) {
        case kSlotC:
          ins.c = pc;
          break;
        case kSlotImmLo:
          ins.imm = (ins.imm & ~uint64_t{0xffffffff}) | pc;
          break;
        case kSlotImmHi:
          ins.imm = (ins.imm & uint64_t{0xffffffff}) |
                    (static_cast<uint64_t>(pc) << 32);
          break;
      }
    }
    for (const TableFixup& f : table_fixups_) {
      p_.tables[f.table].entries[f.entry].pc = resolve_target(f.site);
    }
  }

  void build_entries() {
    std::map<uint64_t, uint32_t> by_addr[4];
    for (const auto& [key, entry] : cfg_.entry_dispatch) {
      const size_t g = ((key.space == sedspec::IoSpace::kMmio) ? 2 : 0) |
                       (key.is_write ? 1 : 0);
      by_addr[g][key.addr] = resolve_target(entry);
    }
    for (size_t g = 0; g < 4; ++g) {
      EntryGroup& group = p_.entry[g];
      if (by_addr[g].empty()) {
        continue;
      }
      const uint64_t lo = by_addr[g].begin()->first;
      const uint64_t hi = by_addr[g].rbegin()->first;
      if (hi - lo < 4096) {
        group.dense = true;
        group.base = lo;
        group.table.assign(hi - lo + 1, kPcMiss);
        for (const auto& [addr, pc] : by_addr[g]) {
          group.table[addr - lo] = pc;
        }
      } else {
        for (const auto& [addr, pc] : by_addr[g]) {
          group.addrs.push_back(addr);
          group.pcs.push_back(pc);
        }
      }
    }
  }

  const spec::EsCfg& cfg_;
  const CheckerConfig& config_;
  const sedspec::StateLayout& layout_;
  const size_t site_count_;

  BytecodeProgram p_;
  std::map<SiteId, uint32_t> meta_idx_;
  std::map<SiteId, uint32_t> block_pc_;
  std::map<SiteId, uint32_t> trap_pc_;
  std::map<std::string, uint32_t> note_idx_;
  std::map<uint64_t, uint32_t> const_idx_;
  std::vector<Fixup> fixups_;
  std::vector<TableFixup> table_fixups_;
  std::vector<uint16_t> free_regs_;
  uint32_t next_reg_ = 0;
  SiteId next_site_ = sedspec::kInvalidSite;  // block after the current one
};

}  // namespace

std::shared_ptr<const BytecodeProgram> compile_program(
    const spec::EsCfg& cfg, const Device& device,
    const CheckerConfig& config) {
  return Compiler(cfg, device, config).run();
}

// ---------------------------------------------------------------------------
// Structural verifier.
//
// Leniency principle: the verifier checks RAW MEMORY SAFETY of execution —
// register indices, pool/table/jump indices, opcode validity (the computed-
// goto table is indexed by op without a bounds check), terminator placement.
// It deliberately does NOT range-check param/local ids: the arena and layout
// already guard those at runtime with the same logic_error the interpreter
// produces, and rejecting at attach time would diverge from the
// interpreter's runtime-containment behavior on malformed specs.
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] bool is_terminator(Op op) {
  switch (op) {
    case Op::kEnd:
    case Op::kJump:
    case Op::kBranch:
    case Op::kGuardCmpBranch:
    case Op::kCmdDispatch:
    case Op::kIndirect:
    case Op::kCmdEnd:
    case Op::kTrapUnmapped:
    case Op::kBoundsBatch:
      return true;
    default:
      return false;
  }
}

}  // namespace

void verify_program(const BytecodeProgram& p, const sedspec::StateLayout& layout,
                    size_t site_count) {
  (void)site_count;  // sites are diagnostic data, not indices
  SEDSPEC_CHECK_DECODE(p.reg_count <= 0x10000, "register count out of range");
  SEDSPEC_CHECK_DECODE(!p.code.empty(), "empty code");
  SEDSPEC_CHECK_DECODE(p.code.size() < kPcMiss, "code too large");
  SEDSPEC_CHECK_DECODE(p.code[0].op == static_cast<uint8_t>(Op::kEnd),
                       "code[0] must be kEnd");
  SEDSPEC_CHECK_DECODE(
      p.words_per_block == (p.blocks.size() + 63) / 64,
      "words_per_block inconsistent with block count");
  SEDSPEC_CHECK_DECODE(
      p.access_words.size() == p.cmd_values.size() * p.words_per_block,
      "access table size inconsistent");
  SEDSPEC_CHECK_DECODE(
      std::is_sorted(p.cmd_values.begin(), p.cmd_values.end()) &&
          std::adjacent_find(p.cmd_values.begin(), p.cmd_values.end()) ==
              p.cmd_values.end(),
      "command values not strictly sorted");

  const auto check_reg = [&](uint16_t r) {
    SEDSPEC_CHECK_DECODE(r < p.reg_count, "register index out of range");
  };
  const auto check_pc = [&](uint32_t pc) {
    SEDSPEC_CHECK_DECODE(pc < p.code.size(), "jump target out of range");
  };

  for (const Insn& ins : p.code) {
    switch (static_cast<Op>(ins.op)) {
      case Op::kEnd:
      case Op::kTrapUnmapped:
        break;
      case Op::kJump:
        check_pc(ins.c);
        break;
      case Op::kProlog:
        SEDSPEC_CHECK_DECODE(ins.a < p.blocks.size(),
                             "prolog block index out of range");
        SEDSPEC_CHECK_DECODE(
            static_cast<size_t>(ins.b) + ins.dst <= p.sync_pool.size(),
            "sync pool slice out of range");
        break;
      case Op::kBranch:
        check_reg(ins.a);
        SEDSPEC_CHECK_DECODE((ins.c >> 8) < p.blocks.size(),
                             "branch block index out of range");
        check_pc(static_cast<uint32_t>(ins.imm));
        check_pc(static_cast<uint32_t>(ins.imm >> 32));
        break;
      case Op::kGuardCmpBranch: {
        SEDSPEC_CHECK_DECODE(
            ins.t >= static_cast<uint8_t>(sedspec::BinaryOp::kEq) &&
                ins.t <= static_cast<uint8_t>(sedspec::BinaryOp::kGe),
            "guard-cmp operator not a comparison");
        for (const uint16_t spec : {ins.a, ins.b}) {
          const unsigned kind = spec >> 14;
          const uint16_t id = spec & 0x7ff;
          SEDSPEC_CHECK_DECODE(kind < 3, "guard-cmp operand kind invalid");
          if (kind == 0) {
            SEDSPEC_CHECK_DECODE(id < p.consts.size(),
                                 "guard-cmp constant index out of range");
          } else if (kind == 2) {
            SEDSPEC_CHECK_DECODE(id <= 4, "guard-cmp io field invalid");
          }
        }
        SEDSPEC_CHECK_DECODE((ins.c >> 8) < p.blocks.size(),
                             "branch block index out of range");
        check_pc(static_cast<uint32_t>(ins.imm));
        check_pc(static_cast<uint32_t>(ins.imm >> 32));
        break;
      }
      case Op::kCmdDispatch:
        check_reg(ins.a);
        SEDSPEC_CHECK_DECODE(ins.b < p.tables.size(),
                             "dispatch table index out of range");
        SEDSPEC_CHECK_DECODE(ins.c < p.blocks.size(),
                             "dispatch block index out of range");
        break;
      case Op::kIndirect:
        SEDSPEC_CHECK_DECODE(ins.b < p.edges.size(),
                             "edge set index out of range");
        SEDSPEC_CHECK_DECODE(ins.c < p.blocks.size(),
                             "indirect block index out of range");
        check_pc(static_cast<uint32_t>(ins.imm));
        break;
      case Op::kCmdEnd:
        check_pc(static_cast<uint32_t>(ins.imm));
        break;
      case Op::kConst:
        check_reg(ins.dst);
        break;
      case Op::kLoadParam:
      case Op::kLoadLocal:
        check_reg(ins.dst);
        break;
      case Op::kLoadIo:
        check_reg(ins.dst);
        SEDSPEC_CHECK_DECODE(ins.a <= 4, "io field out of range");
        break;
      case Op::kBufLoad:
      case Op::kCast:
      case Op::kNeg:
      case Op::kBitNot:
      case Op::kLogNot:
        check_reg(ins.a);
        check_reg(ins.dst);
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kShl:
      case Op::kShr:
      case Op::kEq:
      case Op::kNe:
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe:
      case Op::kLAnd:
      case Op::kLOr:
        check_reg(ins.a);
        check_reg(ins.b);
        check_reg(ins.dst);
        break;
      case Op::kStoreParam:
      case Op::kStoreLocal:
        check_reg(ins.a);
        break;
      case Op::kBufStore:
      case Op::kBufFill:
        check_reg(ins.a);
        check_reg(ins.dst);
        break;
      case Op::kDiagCheck:
        SEDSPEC_CHECK_DECODE(ins.b < p.blocks.size(),
                             "diag block index out of range");
        SEDSPEC_CHECK_DECODE(ins.c < p.notes.size(),
                             "diag note index out of range");
        break;
      case Op::kLoadScalar:
        check_reg(ins.dst);
        SEDSPEC_CHECK_DECODE(
            ins.b >= 1 && ins.b <= 8 &&
                static_cast<uint64_t>(ins.c) + ins.b <= layout.arena_size(),
            "scalar access outside arena");
        break;
      case Op::kStoreScalar:
        check_reg(ins.a);
        SEDSPEC_CHECK_DECODE(
            ins.b >= 1 && ins.b <= 8 &&
                static_cast<uint64_t>(ins.c) + ins.b <= layout.arena_size(),
            "scalar access outside arena");
        break;
      case Op::kStoreScalarImm:
        SEDSPEC_CHECK_DECODE(
            ins.b >= 1 && ins.b <= 8 &&
                static_cast<uint64_t>(ins.c) + ins.b <= layout.arena_size(),
            "scalar access outside arena");
        break;
      case Op::kBoundsBatch: {
        SEDSPEC_CHECK_DECODE(
            static_cast<size_t>(ins.a) + ins.b <= p.batch_pool.size(),
            "batch pool slice out of range");
        check_pc(ins.c);
        check_pc(static_cast<uint32_t>(ins.imm));
        for (uint32_t i = 0; i < ins.b; ++i) {
          const BatchEntry& e = p.batch_pool[ins.a + i];
          check_reg(e.idx_reg);
          check_reg(e.val_reg);
          SEDSPEC_CHECK_DECODE(e.param < layout.field_count(),
                               "batch param out of range");
          SEDSPEC_CHECK_DECODE(layout.field(e.param).is_buffer(),
                               "batch param not a buffer");
          SEDSPEC_CHECK_DECODE(e.limit == layout.field(e.param).count,
                               "batch limit != buffer element count");
        }
        break;
      }
      default:
        SEDSPEC_CHECK_DECODE(false, "unknown opcode");
    }
  }
  SEDSPEC_CHECK_DECODE(is_terminator(static_cast<Op>(p.code.back().op)),
                       "code must end with a terminator");

  for (const DispatchTable& table : p.tables) {
    uint64_t prev = 0;
    bool first = true;
    for (const DispatchEntry& e : table.entries) {
      SEDSPEC_CHECK_DECODE(first || e.cmd > prev,
                           "dispatch table not strictly sorted");
      first = false;
      prev = e.cmd;
      SEDSPEC_CHECK_DECODE(e.pc < p.code.size(),
                           "dispatch target out of range");
      SEDSPEC_CHECK_DECODE(
          e.access_idx == kNoAccess || e.access_idx < p.cmd_values.size(),
          "dispatch access index out of range");
    }
  }
  for (const EdgeSet& set : p.edges) {
    SEDSPEC_CHECK_DECODE(set.kind <= EdgeSet::kSorted, "edge set kind invalid");
  }
  for (const EntryGroup& g : p.entry) {
    SEDSPEC_CHECK_DECODE(g.pcs.size() == g.addrs.size(),
                         "entry group pc/addr size mismatch");
    for (const uint32_t pc : g.table) {
      SEDSPEC_CHECK_DECODE(pc == kPcMiss || pc < p.code.size(),
                           "entry target out of range");
    }
    for (const uint32_t pc : g.pcs) {
      SEDSPEC_CHECK_DECODE(pc == kPcMiss || pc < p.code.size(),
                           "entry target out of range");
    }
  }
}

// ---------------------------------------------------------------------------
// Serialization ("SEBC" envelope, mirroring spec/serial.h's integrity chain).
// ---------------------------------------------------------------------------

std::vector<uint8_t> serialize(const BytecodeProgram& p) {
  ByteWriter w;
  w.str(p.device_name);
  w.u32(p.reg_count);
  w.u32(static_cast<uint32_t>(p.code.size()));
  for (const Insn& ins : p.code) {
    w.u8(ins.op);
    w.u8(ins.t);
    w.u16(ins.dst);
    w.u16(ins.a);
    w.u16(ins.b);
    w.u32(ins.c);
    w.u64(ins.imm);
  }
  w.u32(static_cast<uint32_t>(p.blocks.size()));
  for (const BlockMeta& b : p.blocks) {
    w.str(b.name);
    w.u16(b.site);
    w.u64(b.trained_max);
    w.u64(b.visit_bound);
  }
  w.u32(static_cast<uint32_t>(p.notes.size()));
  for (const std::string& n : p.notes) {
    w.str(n);
  }
  w.u32(static_cast<uint32_t>(p.consts.size()));
  for (const uint64_t v : p.consts) {
    w.u64(v);
  }
  w.u32(static_cast<uint32_t>(p.sync_pool.size()));
  for (const LocalId l : p.sync_pool) {
    w.u16(l);
  }
  w.u32(static_cast<uint32_t>(p.tables.size()));
  for (const DispatchTable& t : p.tables) {
    w.u32(static_cast<uint32_t>(t.entries.size()));
    for (const DispatchEntry& e : t.entries) {
      w.u64(e.cmd);
      w.u32(e.pc);
      w.u32(e.access_idx);
    }
  }
  w.u32(static_cast<uint32_t>(p.edges.size()));
  for (const EdgeSet& s : p.edges) {
    w.u8(s.kind);
    w.u64(s.base);
    w.u32(static_cast<uint32_t>(s.words.size()));
    for (const uint64_t v : s.words) {
      w.u64(v);
    }
    w.u32(static_cast<uint32_t>(s.sorted.size()));
    for (const uint64_t v : s.sorted) {
      w.u64(v);
    }
  }
  w.u32(static_cast<uint32_t>(p.batch_pool.size()));
  for (const BatchEntry& e : p.batch_pool) {
    w.u16(e.idx_reg);
    w.u16(e.val_reg);
    w.u16(e.param);
    w.u32(e.limit);
  }
  w.u32(static_cast<uint32_t>(p.cmd_values.size()));
  for (const uint64_t v : p.cmd_values) {
    w.u64(v);
  }
  w.u32(p.words_per_block);
  w.u32(static_cast<uint32_t>(p.access_words.size()));
  for (const uint64_t v : p.access_words) {
    w.u64(v);
  }
  for (const EntryGroup& g : p.entry) {
    w.u8(g.dense ? 1 : 0);
    w.u64(g.base);
    w.u32(static_cast<uint32_t>(g.table.size()));
    for (const uint32_t v : g.table) {
      w.u32(v);
    }
    w.u32(static_cast<uint32_t>(g.addrs.size()));
    for (const uint64_t v : g.addrs) {
      w.u64(v);
    }
    w.u32(static_cast<uint32_t>(g.pcs.size()));
    for (const uint32_t v : g.pcs) {
      w.u32(v);
    }
  }

  const std::vector<uint8_t>& payload = w.bytes();
  ByteWriter out;
  out.u32(kBytecodeMagic);
  out.u32(kBytecodeFormatVersion);
  out.u32(static_cast<uint32_t>(payload.size()));
  out.u32(crc32(payload));
  std::vector<uint8_t> bytes = out.take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

namespace {

uint32_t get_u32_at(std::span<const uint8_t> bytes, size_t at) {
  uint32_t v = 0;
  std::memcpy(&v, bytes.data() + at, sizeof(v));
  return v;
}

BytecodeProgram decode_payload(ByteReader& r) {
  BytecodeProgram p;
  p.device_name = r.str();
  p.reg_count = r.u32();
  const uint32_t code_count = r.u32();
  for (uint32_t i = 0; i < code_count; ++i) {
    Insn ins;
    ins.op = r.u8();
    ins.t = r.u8();
    ins.dst = r.u16();
    ins.a = r.u16();
    ins.b = r.u16();
    ins.c = r.u32();
    ins.imm = r.u64();
    p.code.push_back(ins);
  }
  const uint32_t block_count = r.u32();
  for (uint32_t i = 0; i < block_count; ++i) {
    BlockMeta b;
    b.name = r.str();
    b.site = r.u16();
    b.trained_max = r.u64();
    b.visit_bound = r.u64();
    p.blocks.push_back(std::move(b));
  }
  const uint32_t note_count = r.u32();
  for (uint32_t i = 0; i < note_count; ++i) {
    p.notes.push_back(r.str());
  }
  const uint32_t const_count = r.u32();
  for (uint32_t i = 0; i < const_count; ++i) {
    p.consts.push_back(r.u64());
  }
  const uint32_t sync_count = r.u32();
  for (uint32_t i = 0; i < sync_count; ++i) {
    p.sync_pool.push_back(r.u16());
  }
  const uint32_t table_count = r.u32();
  for (uint32_t i = 0; i < table_count; ++i) {
    DispatchTable t;
    const uint32_t entry_count = r.u32();
    for (uint32_t j = 0; j < entry_count; ++j) {
      DispatchEntry e;
      e.cmd = r.u64();
      e.pc = r.u32();
      e.access_idx = r.u32();
      t.entries.push_back(e);
    }
    p.tables.push_back(std::move(t));
  }
  const uint32_t edge_count = r.u32();
  for (uint32_t i = 0; i < edge_count; ++i) {
    EdgeSet s;
    s.kind = r.u8();
    SEDSPEC_CHECK_DECODE(s.kind <= EdgeSet::kSorted, "edge set kind invalid");
    s.base = r.u64();
    const uint32_t word_count = r.u32();
    for (uint32_t j = 0; j < word_count; ++j) {
      s.words.push_back(r.u64());
    }
    const uint32_t sorted_count = r.u32();
    for (uint32_t j = 0; j < sorted_count; ++j) {
      s.sorted.push_back(r.u64());
    }
    p.edges.push_back(std::move(s));
  }
  const uint32_t batch_count = r.u32();
  for (uint32_t i = 0; i < batch_count; ++i) {
    BatchEntry e;
    e.idx_reg = r.u16();
    e.val_reg = r.u16();
    e.param = r.u16();
    e.limit = r.u32();
    p.batch_pool.push_back(e);
  }
  const uint32_t cmd_count = r.u32();
  for (uint32_t i = 0; i < cmd_count; ++i) {
    p.cmd_values.push_back(r.u64());
  }
  p.words_per_block = r.u32();
  const uint32_t access_count = r.u32();
  for (uint32_t i = 0; i < access_count; ++i) {
    p.access_words.push_back(r.u64());
  }
  for (EntryGroup& g : p.entry) {
    g.dense = r.u8() != 0;
    g.base = r.u64();
    const uint32_t table_size = r.u32();
    for (uint32_t j = 0; j < table_size; ++j) {
      g.table.push_back(r.u32());
    }
    const uint32_t addr_count = r.u32();
    for (uint32_t j = 0; j < addr_count; ++j) {
      g.addrs.push_back(r.u64());
    }
    const uint32_t pc_count = r.u32();
    for (uint32_t j = 0; j < pc_count; ++j) {
      g.pcs.push_back(r.u32());
    }
  }
  return p;
}

}  // namespace

BytecodeLoadResult load_program(std::span<const uint8_t> bytes) {
  BytecodeLoadResult result;
  if (bytes.size() < 16) {
    result.error = {spec::LoadStatus::kTooShort,
                    "buffer smaller than the SEBC envelope"};
    return result;
  }
  const uint32_t magic = get_u32_at(bytes, 0);
  if (magic != kBytecodeMagic) {
    result.error = {spec::LoadStatus::kBadMagic,
                    "not a bytecode-program artifact"};
    return result;
  }
  const uint32_t version = get_u32_at(bytes, 4);
  if (version != kBytecodeFormatVersion) {
    result.error = {spec::LoadStatus::kVersionSkew,
                    "bytecode format version " + std::to_string(version) +
                        " (expected " +
                        std::to_string(kBytecodeFormatVersion) + ")"};
    return result;
  }
  const uint32_t payload_len = get_u32_at(bytes, 8);
  if (payload_len != bytes.size() - 16) {
    result.error = {spec::LoadStatus::kLengthMismatch,
                    "envelope payload length does not match buffer"};
    return result;
  }
  const std::span<const uint8_t> payload = bytes.subspan(16);
  const uint32_t crc = get_u32_at(bytes, 12);
  if (crc32(payload) != crc) {
    result.error = {spec::LoadStatus::kCrcMismatch,
                    "payload failed CRC32 integrity check"};
    return result;
  }
  try {
    ByteReader r(payload);
    BytecodeProgram p = decode_payload(r);
    SEDSPEC_CHECK_DECODE(r.done(), "trailing bytes after payload");
    result.program = std::make_shared<const BytecodeProgram>(std::move(p));
  } catch (const DecodeError& e) {
    result.error = {spec::LoadStatus::kMalformed, e.what()};
  }
  return result;
}

// ---------------------------------------------------------------------------
// The VM.
// ---------------------------------------------------------------------------

namespace {

using sedspec::EvalDiag;
using sedspec::IntType;
using sedspec::IoField;

/// Raw 64-bit two's-complement pattern of an operand's interpreted value
/// (eval.cc's pattern_of).
inline uint64_t vm_pattern(IntType t, uint64_t raw) {
  return static_cast<uint64_t>(
      static_cast<unsigned __int128>(sedspec::interpret(t, raw)));
}

/// One binary AST node, replicating eval_binary() exactly — including the
/// overflow-recording order, eager &&/||, raw (untruncated) comparison
/// results, and the shift-range rule. Instantiated once per operator so the
/// per-opcode VM labels stay free of a second dispatch.
template <sedspec::BinaryOp OP>
inline void vm_binary(const Insn& ins, uint64_t* regs, EvalDiag& diag) {
  using sedspec::BinaryOp;
  const auto res = static_cast<IntType>(ins.c & 7);
  const auto lt = static_cast<IntType>((ins.c >> 8) & 7);
  const auto rt = static_cast<IntType>((ins.c >> 16) & 7);
  const uint64_t lraw = regs[ins.a];
  const uint64_t rraw = regs[ins.b];
  const __int128 lv = sedspec::interpret(lt, lraw);
  const __int128 rv = sedspec::interpret(rt, rraw);
  const auto arith = [&](__int128 truth) {
    if (!sedspec::representable(res, truth)) {
      diag.record(EvalDiag::Kind::kIntegerOverflow);
      if (diag.kind == EvalDiag::Kind::kIntegerOverflow &&
          diag.note.empty()) {
        diag.type = res;
      }
    }
    return sedspec::wrap_to(res, truth);
  };
  uint64_t out = 0;
  if constexpr (OP == BinaryOp::kAdd) {
    out = arith(lv + rv);
  } else if constexpr (OP == BinaryOp::kSub) {
    out = arith(lv - rv);
  } else if constexpr (OP == BinaryOp::kMul) {
    out = arith(lv * rv);
  } else if constexpr (OP == BinaryOp::kDiv || OP == BinaryOp::kMod) {
    if (rv == 0) {
      diag.record(EvalDiag::Kind::kDivByZero);
      out = 0;
    } else {
      out = arith(OP == BinaryOp::kDiv ? lv / rv : lv % rv);
    }
  } else if constexpr (OP == BinaryOp::kAnd) {
    out = sedspec::truncate_to(res, vm_pattern(lt, lraw) & vm_pattern(rt, rraw));
  } else if constexpr (OP == BinaryOp::kOr) {
    out = sedspec::truncate_to(res, vm_pattern(lt, lraw) | vm_pattern(rt, rraw));
  } else if constexpr (OP == BinaryOp::kXor) {
    out = sedspec::truncate_to(res, vm_pattern(lt, lraw) ^ vm_pattern(rt, rraw));
  } else if constexpr (OP == BinaryOp::kShl) {
    const uint64_t amount = static_cast<uint64_t>(rv) & 63;
    if (rv < 0 || rv >= sedspec::bits_of(res)) {
      diag.record(EvalDiag::Kind::kShiftOutOfRange);
      diag.type = res;
    }
    out = arith(lv * (static_cast<__int128>(1) << amount));
  } else if constexpr (OP == BinaryOp::kShr) {
    const uint64_t amount = static_cast<uint64_t>(rv) & 63;
    if (rv < 0 || rv >= sedspec::bits_of(res)) {
      diag.record(EvalDiag::Kind::kShiftOutOfRange);
      diag.type = res;
    }
    out = sedspec::wrap_to(res, lv >> amount);
  } else if constexpr (OP == BinaryOp::kEq) {
    out = lv == rv ? 1 : 0;
  } else if constexpr (OP == BinaryOp::kNe) {
    out = lv != rv ? 1 : 0;
  } else if constexpr (OP == BinaryOp::kLt) {
    out = lv < rv ? 1 : 0;
  } else if constexpr (OP == BinaryOp::kLe) {
    out = lv <= rv ? 1 : 0;
  } else if constexpr (OP == BinaryOp::kGt) {
    out = lv > rv ? 1 : 0;
  } else if constexpr (OP == BinaryOp::kGe) {
    out = lv >= rv ? 1 : 0;
  } else if constexpr (OP == BinaryOp::kLAnd) {
    out = (lv != 0 && rv != 0) ? 1 : 0;  // eager: both already evaluated
  } else {
    out = (lv != 0 || rv != 0) ? 1 : 0;  // kLOr, also eager
  }
  regs[ins.dst] = out;
}

/// kGuardCmpBranch operand fetch + interpret. Matches an interpreter round
/// that evaluated the operand expression then interpreted it with its
/// declared type (interpret() truncates first, so the compose is exact).
inline __int128 vm_guard_operand(const BytecodeProgram& p,
                                 const sedspec::StateArena& shadow,
                                 const IoAccess& io, uint16_t spec,
                                 const uint32_t* scalar_off,
                                 const uint8_t* scalar_w, size_t scalar_n) {
  const unsigned kind = spec >> 14;
  const auto t = static_cast<IntType>((spec >> 11) & 7);
  const uint16_t id = spec & 0x7ff;
  uint64_t raw = 0;
  if (kind == 0) {
    raw = p.consts[id];
  } else if (kind == 1) {
    // Scalar fields use the attach()-resolved offset/width (bit-identical to
    // param(): a zero-extending little-endian load); anything else — buffer
    // fields or a garbled id — falls back to the containing generic path.
    if (id < scalar_n && scalar_w[id] != 0) {
      raw = shadow.load_scalar(scalar_off[id], scalar_w[id]);
    } else {
      raw = shadow.param(static_cast<ParamId>(id));
    }
  } else {
    switch (static_cast<IoField>(id)) {
      case IoField::kAddr:
        raw = io.addr;
        break;
      case IoField::kValue:
        raw = io.value;
        break;
      case IoField::kSize:
        raw = io.size;
        break;
      case IoField::kIsWrite:
        raw = io.is_write ? 1 : 0;
        break;
      case IoField::kSpace:
        raw = static_cast<uint64_t>(io.space);
        break;
    }
  }
  return sedspec::interpret(t, raw);
}

}  // namespace

// ---------------------------------------------------------------------------
// BytecodeEngine.
// ---------------------------------------------------------------------------

BytecodeEngine::BytecodeEngine(const spec::EsCfg* cfg, Device* device,
                               sedspec::StateArena* shadow,
                               const CheckerConfig* config)
    : program_(compile_program(*cfg, *device, *config)),
      device_(device),
      shadow_(shadow),
      config_(config) {
  attach();
}

BytecodeEngine::BytecodeEngine(std::shared_ptr<const BytecodeProgram> program,
                               Device* device, sedspec::StateArena* shadow,
                               const CheckerConfig* config)
    : program_(std::move(program)),
      device_(device),
      shadow_(shadow),
      config_(config) {
  SEDSPEC_REQUIRE(program_ != nullptr);
  SEDSPEC_REQUIRE_MSG(
      program_->device_name == device_->program().device_name(),
      "bytecode program compiled for a different device");
  attach();
}

void BytecodeEngine::attach() {
  verify_program(*program_, device_->program().layout(),
                 device_->program().site_count());
  regs_.assign(program_->reg_count, 0);
  visits_.assign(program_->blocks.size(), 0);
  visit_epoch_.assign(program_->blocks.size(), 0);
  ic_.assign(program_->tables.size(), ICEntry{});
  // Pre-resolve scalar fields so guard operands skip the virtual param()
  // lookup; entries stay 0 (fallback) for buffers and oversized fields.
  const sedspec::StateLayout& layout = shadow_->layout();
  guard_off_.assign(layout.field_count(), 0);
  guard_w_.assign(layout.field_count(), 0);
  for (size_t i = 0; i < layout.field_count(); ++i) {
    const sedspec::FieldDesc& f = layout.field(static_cast<ParamId>(i));
    if (!f.is_buffer() && f.size >= 1 && f.size <= 8) {
      guard_off_[i] = f.offset;
      guard_w_[i] = static_cast<uint8_t>(f.size);
    }
  }
}

uint32_t BytecodeEngine::access_index_of(uint64_t cmd) const {
  const auto it = std::lower_bound(program_->cmd_values.begin(),
                                   program_->cmd_values.end(), cmd);
  if (it == program_->cmd_values.end() || *it != cmd) {
    return kNoAccess;
  }
  return static_cast<uint32_t>(it - program_->cmd_values.begin());
}

std::optional<uint64_t> BytecodeEngine::active_command() const {
  if (!active_has_) {
    return std::nullopt;
  }
  return active_cmd_;
}

void BytecodeEngine::set_active_command(std::optional<uint64_t> cmd) {
  if (!cmd.has_value()) {
    active_has_ = false;
    active_access_ = kNoAccess;
    return;
  }
  active_has_ = true;
  active_cmd_ = *cmd;
  active_access_ = access_index_of(*cmd);
}

// Threaded-code dispatch on GCC/Clang (computed goto); portable switch
// fallback elsewhere. Both bodies are generated from the same VM_CASE
// blocks below.
#if defined(__GNUC__) || defined(__clang__)
#define SEDSPEC_VM_THREADED 1
#endif

#ifdef SEDSPEC_VM_THREADED
#define VM_CASE(name) op_##name:
#define VM_DISPATCH() goto* kJumpTable[code[pc].op]
#define VM_NEXT() \
  do {            \
    ++pc;         \
    VM_DISPATCH();\
  } while (0)
#define VM_GOTO(target)                    \
  do {                                     \
    pc = static_cast<uint32_t>(target);    \
    VM_DISPATCH();                         \
  } while (0)
#else
#define VM_CASE(name) case Op::name:
#define VM_NEXT() \
  do {            \
    ++pc;         \
    goto vm_next; \
  } while (0)
#define VM_GOTO(target)                    \
  do {                                     \
    pc = static_cast<uint32_t>(target);    \
    goto vm_next;                          \
  } while (0)
#endif

CheckResult BytecodeEngine::check(const IoAccess& io,
                                  const RoundOptions& opts) {
  CheckResult result;
  std::vector<Violation> viols;
  const BytecodeProgram& p = *program_;
  const Insn* code = p.code.data();
  uint64_t* regs = regs_.data();
  const uint32_t* goff = guard_off_.data();
  const uint8_t* gw = guard_w_.data();
  const size_t gn = guard_w_.size();
  const bool cond_on = strategy_enabled(*config_, Strategy::kConditionalJump);
  const bool param_on = strategy_enabled(*config_, Strategy::kParameter);
  const bool ind_on = strategy_enabled(*config_, Strategy::kIndirectJump);
  obs::EventTracer* tr = obs::tracer();
  const bool step_events = tr != nullptr && tr->verbose();
  ++epoch_;
  const uint64_t watchdog =
      std::max(config_->watchdog_steps, config_->max_steps + 1);
  // Invariant: the diag is clean at statement/block boundaries; a contained
  // logic_error mid-statement can leave it dirty, so reset per round.
  diag_ = EvalDiag{};
  uint64_t steps = 0;

  const auto add = [&](Strategy s, SiteId site, std::string detail) {
    viols.push_back(Violation{s, site, std::move(detail)});
  };

  // Entry dispatch (paper §V-A): dense table or branchless lower-bound per
  // (space, direction) group.
  uint32_t pc = kPcMiss;
  {
    const EntryGroup& g =
        p.entry[((io.space == sedspec::IoSpace::kMmio) ? 2 : 0) |
                (io.is_write ? 1 : 0)];
    if (g.dense) {
      if (io.addr >= g.base && io.addr - g.base < g.table.size()) {
        pc = g.table[io.addr - g.base];
      }
    } else if (!g.addrs.empty()) {
      const uint64_t* base = g.addrs.data();
      size_t n = g.addrs.size();
      while (n > 1) {
        const size_t half = n / 2;
        base += (base[half - 1] < io.addr) ? half : 0;
        n -= half;
      }
      if (*base == io.addr) {
        pc = g.pcs[static_cast<size_t>(base - g.addrs.data())];
      }
    }
  }
  if (pc == kPcMiss) {
    if (cond_on) {
      add(Strategy::kConditionalJump, sedspec::kInvalidSite,
          detail::untrained_io(io));
    }
    result.violations = std::move(viols);
    return result;
  }

#ifdef SEDSPEC_VM_THREADED
  static const void* const kJumpTable[] = {
      &&op_kEnd,        &&op_kJump,       &&op_kProlog,   &&op_kBranch,
      &&op_kGuardCmpBranch, &&op_kCmdDispatch, &&op_kIndirect, &&op_kCmdEnd,
      &&op_kTrapUnmapped, &&op_kConst,    &&op_kLoadParam, &&op_kLoadLocal,
      &&op_kLoadIo,     &&op_kBufLoad,    &&op_kCast,     &&op_kNeg,
      &&op_kBitNot,     &&op_kLogNot,     &&op_kAdd,      &&op_kSub,
      &&op_kMul,        &&op_kDiv,        &&op_kMod,      &&op_kAnd,
      &&op_kOr,         &&op_kXor,        &&op_kShl,      &&op_kShr,
      &&op_kEq,         &&op_kNe,         &&op_kLt,       &&op_kLe,
      &&op_kGt,         &&op_kGe,         &&op_kLAnd,     &&op_kLOr,
      &&op_kStoreParam, &&op_kStoreLocal, &&op_kBufStore, &&op_kBufFill,
      &&op_kDiagCheck,  &&op_kBoundsBatch, &&op_kLoadScalar,
      &&op_kStoreScalar, &&op_kStoreScalarImm,
  };
  static_assert(sizeof(kJumpTable) / sizeof(kJumpTable[0]) ==
                static_cast<size_t>(Op::kOpCount));
  VM_DISPATCH();
#else
vm_next:
  switch (static_cast<Op>(code[pc].op)) {
#endif

  VM_CASE(kEnd) { goto vm_done; }

  VM_CASE(kJump) { VM_GOTO(code[pc].c); }

  VM_CASE(kProlog) {
    const Insn& ins = code[pc];
    const BlockMeta& meta = p.blocks[ins.a];
    // Interpreter-exact per-visit order: step accounting, watchdog, budget,
    // step event, visit bound, sync resolution, command-access check.
    ++steps;
    if (steps > watchdog) {
      throw CheckerFault(detail::watchdog_tripped(steps));
    }
    if (steps > config_->max_steps && !opts.suppress_termination) {
      if (cond_on) {
        add(Strategy::kConditionalJump, meta.site,
            std::string(detail::kBudgetExceeded));
      }
      goto vm_done;
    }
    if (step_events) {
      tr->record(obs::EventType::kTraversalStep, "traversal_step",
                 p.device_name, meta.name, meta.site);
    }
    if (visit_epoch_[ins.a] != epoch_) {
      visit_epoch_[ins.a] = epoch_;
      visits_[ins.a] = 0;
    }
    if (++visits_[ins.a] > meta.visit_bound && !opts.suppress_termination) {
      if (cond_on) {
        add(Strategy::kConditionalJump, meta.site,
            detail::visit_bound(meta.name, visits_[ins.a], meta.trained_max));
      }
      goto vm_done;
    }
    for (uint32_t i = 0; i < ins.dst; ++i) {
      const LocalId l = p.sync_pool[ins.b + i];
      if (auto v = device_->resolve_sync(l, io, *shadow_); v.has_value()) {
        shadow_->set_local(l, *v);
      }
    }
    if (active_has_ && cond_on && active_access_ != kNoAccess) {
      const uint64_t word =
          p.access_words[static_cast<size_t>(active_access_) *
                             p.words_per_block +
                         (ins.a >> 6)];
      if (((word >> (ins.a & 63)) & 1) == 0) {
        add(Strategy::kConditionalJump, meta.site,
            detail::cmd_access(meta.name, active_cmd_));
      }
    }
    VM_NEXT();
  }

  VM_CASE(kBranch) {
    const Insn& ins = code[pc];
    const BlockMeta& meta = p.blocks[ins.c >> 8];
    if ((ins.t & kBrCanDiag) != 0 && diag_.any()) {
      if (diag_.kind == EvalDiag::Kind::kMissingLocal) {
        if (cond_on) {
          add(Strategy::kConditionalJump, meta.site,
              std::string(detail::kGuardUnresolvedSync));
        }
      } else if (param_on) {
        add(Strategy::kParameter, meta.site, detail::guard_diag(diag_));
      }
      diag_ = EvalDiag{};
    }
    const bool taken = regs[ins.a] != 0;
    const uint32_t flags = ins.c & 0xff;
    if ((flags & (taken ? kDirTakenObserved : kDirNotTakenObserved)) == 0) {
      if (cond_on) {
        add(Strategy::kConditionalJump, meta.site,
            detail::untrained_direction(meta.name, taken));
      }
      goto vm_done;  // untrained direction: traversal cannot continue
    }
    // `ends` directions were compiled with target 0 (= kEnd).
    VM_GOTO(taken ? static_cast<uint32_t>(ins.imm)
                  : static_cast<uint32_t>(ins.imm >> 32));
  }

  VM_CASE(kGuardCmpBranch) {
    const Insn& ins = code[pc];
    const BlockMeta& meta = p.blocks[ins.c >> 8];
    const __int128 lv =
        vm_guard_operand(p, *shadow_, io, ins.a, goff, gw, gn);
    const __int128 rv =
        vm_guard_operand(p, *shadow_, io, ins.b, goff, gw, gn);
    bool taken = false;
    switch (static_cast<sedspec::BinaryOp>(ins.t)) {
      case sedspec::BinaryOp::kEq:
        taken = lv == rv;
        break;
      case sedspec::BinaryOp::kNe:
        taken = lv != rv;
        break;
      case sedspec::BinaryOp::kLt:
        taken = lv < rv;
        break;
      case sedspec::BinaryOp::kLe:
        taken = lv <= rv;
        break;
      case sedspec::BinaryOp::kGt:
        taken = lv > rv;
        break;
      default:  // kGe (verified)
        taken = lv >= rv;
        break;
    }
    const uint32_t flags = ins.c & 0xff;
    if ((flags & (taken ? kDirTakenObserved : kDirNotTakenObserved)) == 0) {
      if (cond_on) {
        add(Strategy::kConditionalJump, meta.site,
            detail::untrained_direction(meta.name, taken));
      }
      goto vm_done;
    }
    VM_GOTO(taken ? static_cast<uint32_t>(ins.imm)
                  : static_cast<uint32_t>(ins.imm >> 32));
  }

  VM_CASE(kCmdDispatch) {
    const Insn& ins = code[pc];
    const BlockMeta& meta = p.blocks[ins.c];
    if ((ins.t & kBrCanDiag) != 0 && diag_.any()) {
      // Missing-local during command decode is silently dropped (the
      // interpreter still dispatches); other diags report under parameter.
      if (diag_.kind != EvalDiag::Kind::kMissingLocal && param_on) {
        add(Strategy::kParameter, meta.site, detail::cmd_decode_diag(diag_));
      }
      diag_ = EvalDiag{};
    }
    const uint64_t cmd = regs[ins.a];
    const DispatchTable& table = p.tables[ins.b];
    ICEntry& ic = ic_[ins.b];
    const DispatchEntry* e = nullptr;
    if (ic.valid && ic.cmd == cmd) {
      e = &table.entries[ic.entry];  // monomorphic inline-cache hit
    } else if (!table.entries.empty()) {
      const DispatchEntry* data = table.entries.data();
      const DispatchEntry* base = data;
      size_t n = table.entries.size();
      while (n > 1) {
        const size_t half = n / 2;
        base += (base[half - 1].cmd < cmd) ? half : 0;
        n -= half;
      }
      if (base->cmd == cmd) {
        e = base;
        ic.valid = true;
        ic.cmd = cmd;
        ic.entry = static_cast<uint32_t>(base - data);
      }
    }
    if (e == nullptr) {
      if (cond_on) {
        add(Strategy::kConditionalJump, meta.site,
            detail::untrained_cmd(meta.name, cmd));
      }
      goto vm_done;  // untrained command; the latch is NOT set
    }
    active_has_ = true;
    active_cmd_ = cmd;
    active_access_ = e->access_idx;
    VM_GOTO(e->pc);
  }

  VM_CASE(kIndirect) {
    const Insn& ins = code[pc];
    const BlockMeta& meta = p.blocks[ins.c];
    const uint64_t target = shadow_->param(static_cast<ParamId>(ins.a));
    if (ind_on && !p.edges[ins.b].contains(target)) {
      add(Strategy::kIndirectJump, meta.site,
          detail::indirect_target(meta.name, target));
    }
    VM_GOTO(static_cast<uint32_t>(ins.imm));
  }

  VM_CASE(kCmdEnd) {
    active_has_ = false;
    active_access_ = kNoAccess;
    VM_GOTO(static_cast<uint32_t>(code[pc].imm));
  }

  VM_CASE(kTrapUnmapped) {
    // A trained successor that is not a mapped block. The interpreter walks
    // onto it and only then faults — after step/watchdog/budget accounting.
    const Insn& ins = code[pc];
    ++steps;
    if (steps > watchdog) {
      throw CheckerFault(detail::watchdog_tripped(steps));
    }
    if (steps > config_->max_steps && !opts.suppress_termination) {
      if (cond_on) {
        add(Strategy::kConditionalJump, static_cast<SiteId>(ins.c),
            std::string(detail::kBudgetExceeded));
      }
      goto vm_done;
    }
    throw CheckerFault(detail::unmapped_site(static_cast<SiteId>(ins.c)));
  }

  VM_CASE(kConst) {
    const Insn& ins = code[pc];
    regs[ins.dst] = ins.imm;  // raw, untruncated (kConst semantics)
    VM_NEXT();
  }

  VM_CASE(kLoadParam) {
    const Insn& ins = code[pc];
    regs[ins.dst] = sedspec::truncate_to(
        static_cast<IntType>(ins.t & 7),
        shadow_->param(static_cast<ParamId>(ins.a)));
    VM_NEXT();
  }

  VM_CASE(kLoadLocal) {
    const Insn& ins = code[pc];
    uint64_t v = 0;
    if (!shadow_->local(static_cast<LocalId>(ins.a), &v)) {
      diag_.record(EvalDiag::Kind::kMissingLocal);
      diag_.local = static_cast<LocalId>(ins.a);  // unconditional (eval.cc)
      regs[ins.dst] = 0;
    } else {
      regs[ins.dst] =
          sedspec::truncate_to(static_cast<IntType>(ins.t & 7), v);
    }
    VM_NEXT();
  }

  VM_CASE(kLoadIo) {
    const Insn& ins = code[pc];
    const auto t = static_cast<IntType>(ins.t & 7);
    uint64_t out = 0;
    switch (static_cast<IoField>(ins.a)) {
      case IoField::kAddr:
        out = sedspec::truncate_to(t, io.addr);
        break;
      case IoField::kValue:
        out = sedspec::truncate_to(t, io.value);
        break;
      case IoField::kSize:
        out = sedspec::truncate_to(t, io.size);
        break;
      case IoField::kIsWrite:
        out = io.is_write ? 1 : 0;  // raw (eval.cc does not truncate)
        break;
      case IoField::kSpace:
        out = static_cast<uint64_t>(io.space);  // raw
        break;
    }
    regs[ins.dst] = out;
    VM_NEXT();
  }

  VM_CASE(kBufLoad) {
    const Insn& ins = code[pc];
    regs[ins.dst] = sedspec::truncate_to(
        static_cast<IntType>(ins.t & 7),
        shadow_->buf_load(static_cast<ParamId>(ins.b), regs[ins.a], &diag_));
    VM_NEXT();
  }

  VM_CASE(kCast) {
    const Insn& ins = code[pc];
    regs[ins.dst] = sedspec::truncate_to(
        static_cast<IntType>(ins.t & 7),
        vm_pattern(static_cast<IntType>(ins.b & 7), regs[ins.a]));
    VM_NEXT();
  }

  VM_CASE(kNeg) {
    const Insn& ins = code[pc];
    const auto t = static_cast<IntType>(ins.t & 7);
    const __int128 v =
        sedspec::interpret(static_cast<IntType>(ins.b & 7), regs[ins.a]);
    const __int128 truth = -v;
    if (!sedspec::representable(t, truth)) {
      diag_.record(EvalDiag::Kind::kIntegerOverflow);
      diag_.type = t;  // unconditional (eval.cc kNeg)
    }
    regs[ins.dst] = sedspec::wrap_to(t, truth);
    VM_NEXT();
  }

  VM_CASE(kBitNot) {
    const Insn& ins = code[pc];
    regs[ins.dst] = sedspec::truncate_to(
        static_cast<IntType>(ins.t & 7),
        ~vm_pattern(static_cast<IntType>(ins.b & 7), regs[ins.a]));
    VM_NEXT();
  }

  VM_CASE(kLogNot) {
    const Insn& ins = code[pc];
    regs[ins.dst] =
        sedspec::interpret(static_cast<IntType>(ins.b & 7), regs[ins.a]) == 0
            ? 1
            : 0;
    VM_NEXT();
  }

  VM_CASE(kAdd) {
    vm_binary<sedspec::BinaryOp::kAdd>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kSub) {
    vm_binary<sedspec::BinaryOp::kSub>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kMul) {
    vm_binary<sedspec::BinaryOp::kMul>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kDiv) {
    vm_binary<sedspec::BinaryOp::kDiv>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kMod) {
    vm_binary<sedspec::BinaryOp::kMod>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kAnd) {
    vm_binary<sedspec::BinaryOp::kAnd>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kOr) {
    vm_binary<sedspec::BinaryOp::kOr>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kXor) {
    vm_binary<sedspec::BinaryOp::kXor>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kShl) {
    vm_binary<sedspec::BinaryOp::kShl>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kShr) {
    vm_binary<sedspec::BinaryOp::kShr>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kEq) {
    vm_binary<sedspec::BinaryOp::kEq>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kNe) {
    vm_binary<sedspec::BinaryOp::kNe>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kLt) {
    vm_binary<sedspec::BinaryOp::kLt>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kLe) {
    vm_binary<sedspec::BinaryOp::kLe>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kGt) {
    vm_binary<sedspec::BinaryOp::kGt>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kGe) {
    vm_binary<sedspec::BinaryOp::kGe>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kLAnd) {
    vm_binary<sedspec::BinaryOp::kLAnd>(code[pc], regs, diag_);
    VM_NEXT();
  }
  VM_CASE(kLOr) {
    vm_binary<sedspec::BinaryOp::kLOr>(code[pc], regs, diag_);
    VM_NEXT();
  }

  VM_CASE(kStoreParam) {
    const Insn& ins = code[pc];
    shadow_->set_param(static_cast<ParamId>(ins.b), regs[ins.a]);
    VM_NEXT();
  }

  VM_CASE(kStoreLocal) {
    const Insn& ins = code[pc];
    shadow_->set_local(static_cast<LocalId>(ins.b), regs[ins.a]);
    VM_NEXT();
  }

  VM_CASE(kBufStore) {
    const Insn& ins = code[pc];
    shadow_->buf_store(static_cast<ParamId>(ins.b), regs[ins.a],
                       regs[ins.dst], ins.t != 0 ? &diag_ : nullptr);
    VM_NEXT();
  }

  VM_CASE(kBufFill) {
    const Insn& ins = code[pc];
    shadow_->buf_fill(static_cast<ParamId>(ins.b), regs[ins.a],
                      regs[ins.dst], ins.t != 0 ? &diag_ : nullptr);
    VM_NEXT();
  }

  VM_CASE(kDiagCheck) {
    const Insn& ins = code[pc];
    if (diag_.any()) {
      if (diag_.note.empty()) {
        diag_.note = p.notes[ins.c];
      }
      const BlockMeta& meta = p.blocks[ins.b];
      if (diag_.kind == EvalDiag::Kind::kMissingLocal) {
        if (cond_on) {
          add(Strategy::kConditionalJump, meta.site,
              detail::unresolved_sync(diag_));
        }
      } else if (param_on) {
        add(Strategy::kParameter, meta.site, diag_.describe());
      }
      diag_ = EvalDiag{};
    }
    VM_NEXT();
  }

  VM_CASE(kLoadScalar) {
    const Insn& ins = code[pc];
    regs[ins.dst] = sedspec::truncate_to(
        static_cast<IntType>(ins.t & 7), shadow_->load_scalar(ins.c, ins.b));
    VM_NEXT();
  }

  VM_CASE(kStoreScalar) {
    const Insn& ins = code[pc];
    shadow_->store_scalar(
        ins.c, ins.b,
        sedspec::truncate_to(static_cast<IntType>(ins.t & 7), regs[ins.a]));
    VM_NEXT();
  }

  VM_CASE(kStoreScalarImm) {
    const Insn& ins = code[pc];
    shadow_->store_scalar(ins.c, ins.b, ins.imm);
    VM_NEXT();
  }

  VM_CASE(kBoundsBatch) {
    const Insn& ins = code[pc];
    const BatchEntry* entries = p.batch_pool.data() + ins.a;
    uint64_t ok = 1;
    for (uint32_t i = 0; i < ins.b; ++i) {
      // Branchless: unsigned compare, negative indices wrap high. For a
      // limit equal to the buffer's element count this is exactly the
      // arena's in-bounds predicate for single-element stores.
      ok &= regs[entries[i].idx_reg] < entries[i].limit ? uint64_t{1}
                                                        : uint64_t{0};
    }
    if (ok != 0) {
      for (uint32_t i = 0; i < ins.b; ++i) {
        shadow_->buf_store(static_cast<ParamId>(entries[i].param),
                           regs[entries[i].idx_reg],
                           regs[entries[i].val_reg], nullptr);
      }
      VM_GOTO(static_cast<uint32_t>(ins.imm));  // join
    }
    VM_GOTO(ins.c);  // sequential slow path (interpreter-exact diagnostics)
  }

#ifndef SEDSPEC_VM_THREADED
  default:
    goto vm_done;  // unreachable: verify_program rejects unknown opcodes
  }
#endif

vm_done:
  result.violations = std::move(viols);
  result.steps = steps;
  return result;
}

#undef SEDSPEC_VM_THREADED
#undef VM_CASE
#undef VM_DISPATCH
#undef VM_NEXT
#undef VM_GOTO

}  // namespace sedspec::checker::engine
