// DMA engine.
//
// Thin accounting layer between a device and guest memory: all bulk
// transfers go through it so benchmarks can report DMA byte counts and
// tests can assert on transfer activity.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "vdev/memory.h"

namespace sedspec {

class DmaEngine {
 public:
  explicit DmaEngine(GuestMemory* mem)
      : mem_(mem),
        obs_transfers_(&obs::metrics().counter("dma_transfers_total")),
        obs_bytes_(&obs::metrics().counter("dma_bytes_total")) {}

  /// Fault-injection seam (faultinject layer 3): consulted before every
  /// transfer. Returning a DmaFault makes the transfer fail outright
  /// (`fail`) or complete only `short_len` bytes (reads zero-fill the
  /// rest); nullopt leaves the transfer untouched. Devices already handle
  /// `false` returns (they model real DMA to unmapped guest pages), so an
  /// injected fault exercises exactly those paths.
  struct DmaFault {
    bool fail = false;
    uint64_t short_len = 0;  // honored when !fail
  };
  using FaultHook = std::function<std::optional<DmaFault>(
      bool is_read, uint64_t addr, size_t len)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Guest memory -> device buffer. Returns false on an out-of-range guest
  /// address (the span is zero-filled).
  bool from_guest(uint64_t addr, std::span<uint8_t> out) {
    bytes_read_ += out.size();
    ++transfers_;
    note_transfer(/*is_read=*/true, addr, out.size());
    if (fault_hook_) {
      if (auto f = fault_hook_(/*is_read=*/true, addr, out.size())) {
        ++faults_injected_;
        std::fill(out.begin(), out.end(), uint8_t{0});
        if (f->fail) {
          return false;
        }
        const size_t n = std::min<size_t>(f->short_len, out.size());
        return mem_->read(addr, out.subspan(0, n));
      }
    }
    return mem_->read(addr, out);
  }

  /// Device buffer -> guest memory. Returns false on out-of-range address.
  bool to_guest(uint64_t addr, std::span<const uint8_t> data) {
    bytes_written_ += data.size();
    ++transfers_;
    note_transfer(/*is_read=*/false, addr, data.size());
    if (fault_hook_) {
      if (auto f = fault_hook_(/*is_read=*/false, addr, data.size())) {
        ++faults_injected_;
        if (f->fail) {
          return false;
        }
        const size_t n = std::min<size_t>(f->short_len, data.size());
        return mem_->write(addr, data.subspan(0, n));
      }
    }
    return mem_->write(addr, data);
  }

  [[nodiscard]] GuestMemory& memory() { return *mem_; }

  [[nodiscard]] uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] uint64_t transfer_count() const { return transfers_; }
  [[nodiscard]] uint64_t faults_injected() const { return faults_injected_; }
  void reset_stats() {
    bytes_read_ = bytes_written_ = transfers_ = faults_injected_ = 0;
  }

  /// Shard-ownership guard, mirroring IoBus: the engine's plain counters
  /// assume single-threaded use, so the concurrency tests bind each engine
  /// to its shard thread and assert owner_violations() stays zero.
  void bind_owner_thread() {
    owner_token_.store(
        std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1,
        std::memory_order_relaxed);
  }
  void clear_owner_thread() {
    owner_token_.store(0, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t owner_violations() const {
    return owner_violations_.load(std::memory_order_relaxed);
  }

 private:
  void note_transfer(bool is_read, uint64_t addr, size_t len) {
    const uint64_t owner = owner_token_.load(std::memory_order_relaxed);
    if (owner != 0 &&
        owner != (std::hash<std::thread::id>{}(std::this_thread::get_id()) |
                  1)) {
      owner_violations_.fetch_add(1, std::memory_order_relaxed);
    }
    obs_transfers_->inc();
    obs_bytes_->inc(len);
    if (obs::EventTracer* tr = obs::tracer()) {
      tr->record(obs::EventType::kDmaXfer, "dma_xfer", "dma",
                 is_read ? "from_guest" : "to_guest", addr, len);
    }
  }

  GuestMemory* mem_;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t transfers_ = 0;
  uint64_t faults_injected_ = 0;
  std::atomic<uint64_t> owner_token_{0};
  std::atomic<uint64_t> owner_violations_{0};
  FaultHook fault_hook_;
  // Process-wide totals in the default obs registry.
  obs::Counter* obs_transfers_;
  obs::Counter* obs_bytes_;
};

}  // namespace sedspec
