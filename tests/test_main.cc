// Custom gtest main: silence the library's WARN-level diagnostics (checker
// warnings are expected output in many tests) unless SEDSPEC_TEST_VERBOSE
// is set.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/log.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (std::getenv("SEDSPEC_TEST_VERBOSE") == nullptr) {
    sedspec::set_log_level(sedspec::LogLevel::kError);
  }
  return RUN_ALL_TESTS();
}
