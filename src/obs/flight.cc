#include "obs/flight.h"

#include <sstream>

#include "common/assert.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace sedspec::obs {

namespace {
constexpr size_t kTriggerCount = 5;
}  // namespace

const char* flight_trigger_name(FlightTrigger t) {
  switch (t) {
    case FlightTrigger::kViolation:
      return "violation";
    case FlightTrigger::kQuarantine:
      return "quarantine";
    case FlightTrigger::kWatchdog:
      return "watchdog";
    case FlightTrigger::kSloBreach:
      return "slo_breach";
    case FlightTrigger::kManual:
      return "manual";
  }
  return "?";
}

FlightRecorder::FlightRecorder(size_t shards, FlightConfig cfg) : cfg_(cfg) {
  SEDSPEC_REQUIRE(shards > 0);
  SEDSPEC_REQUIRE(cfg_.shard_ring_capacity > 0);
  SEDSPEC_REQUIRE(cfg_.max_bundles > 0);
  rings_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    rings_.push_back(
        std::make_unique<EventTracer>(cfg_.shard_ring_capacity));
    // Shard rings record everything the checker hands them, including
    // per-round I/O events — that is the whole point of a flight ring.
    rings_.back()->set_detail(EventTracer::Detail::kVerbose);
  }
  last_dump_epoch_.assign(shards * kTriggerCount, ~uint64_t{0});
}

void FlightRecorder::set_context_provider(
    std::function<std::string()> provider) {
  std::lock_guard lock(mu_);
  context_provider_ = std::move(provider);
}

void FlightRecorder::set_epoch(uint64_t epoch) {
  epoch_.store(epoch, std::memory_order_relaxed);
}

bool FlightRecorder::dump(FlightTrigger trigger, size_t shard,
                          std::string_view reason) {
  SEDSPEC_REQUIRE(shard < rings_.size());
  const uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  EventTracer& ring = *rings_[shard];

  std::lock_guard lock(mu_);
  const size_t dedup_idx =
      shard * kTriggerCount + static_cast<size_t>(trigger);
  if (last_dump_epoch_[dedup_idx] == epoch) {
    ++suppressed_;
    return false;
  }
  last_dump_epoch_[dedup_idx] = epoch;

  FlightBundle b;
  b.sequence = sequence_++;
  b.ts_ns = now_ns();
  b.trigger = trigger;
  b.shard = shard;
  b.epoch = epoch;
  b.reason = std::string(reason);
  const std::vector<TraceEvent> events = ring.snapshot();
  b.events.reserve(events.size());
  for (const TraceEvent& ev : events) {
    FlightBundle::Event e;
    e.ts_ns = ev.ts_ns;
    e.a = ev.a;
    e.b = ev.b;
    e.type = event_type_name(ev.type);
    e.name = ring.string_at(ev.name);
    e.cat = ring.string_at(ev.cat);
    e.detail = ring.string_at(ev.detail);
    b.events.push_back(std::move(e));
  }
  b.metrics_json = metrics().to_json();
  if (context_provider_) {
    b.context_json = context_provider_();
  }
  bundles_.push_back(std::move(b));
  while (bundles_.size() > cfg_.max_bundles) {
    bundles_.pop_front();
  }
  ++dumps_;
  return true;
}

uint64_t FlightRecorder::dumps() const {
  std::lock_guard lock(mu_);
  return dumps_;
}

uint64_t FlightRecorder::suppressed() const {
  std::lock_guard lock(mu_);
  return suppressed_;
}

std::vector<FlightBundle> FlightRecorder::bundles() const {
  std::lock_guard lock(mu_);
  return {bundles_.begin(), bundles_.end()};
}

std::string FlightBundle::to_json() const {
  std::ostringstream out;
  out << "{\n  \"sequence\": " << sequence << ",\n  \"ts_ns\": " << ts_ns
      << ",\n  \"trigger\": \"" << flight_trigger_name(trigger)
      << "\",\n  \"shard\": " << shard << ",\n  \"epoch\": " << epoch
      << ",\n  \"reason\": \"" << json_escape(reason)
      << "\",\n  \"events\": [";
  bool first = true;
  for (const Event& e : events) {
    out << (first ? "" : ",") << "\n    {\"ts_ns\": " << e.ts_ns
        << ", \"type\": \"" << json_escape(e.type) << "\", \"name\": \""
        << json_escape(e.name) << "\", \"cat\": \"" << json_escape(e.cat)
        << "\", \"detail\": \"" << json_escape(e.detail)
        << "\", \"a\": " << e.a << ", \"b\": " << e.b << "}";
    first = false;
  }
  // metrics_json / context_json are themselves JSON — embed verbatim so
  // the bundle parses back as one document.
  out << "\n  ],\n  \"metrics\": "
      << (metrics_json.empty() ? "{}" : metrics_json)
      << ",\n  \"context\": " << (context_json.empty() ? "{}" : context_json)
      << "\n}\n";
  return out.str();
}

std::string FlightRecorder::to_json() const {
  const std::vector<FlightBundle> all = bundles();
  std::ostringstream out;
  out << "{\n\"dumps\": " << dumps() << ",\n\"suppressed\": " << suppressed()
      << ",\n\"bundles\": [";
  bool first = true;
  for (const FlightBundle& b : all) {
    out << (first ? "" : ",") << "\n" << b.to_json();
    first = false;
  }
  out << "\n]\n}\n";
  return out.str();
}

}  // namespace sedspec::obs
