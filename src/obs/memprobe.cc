#include "obs/memprobe.h"

#include <algorithm>
#include <cstdio>

#if defined(__linux__)
#include <unistd.h>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace sedspec::obs {

namespace {

uint64_t read_rss_bytes() {
#if defined(__linux__)
  // /proc/self/statm: "size resident shared ..." in pages.
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  unsigned long long size = 0;
  unsigned long long resident = 0;
  const int n = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (n != 2) {
    return 0;
  }
  const long page = sysconf(_SC_PAGESIZE);
  return resident * static_cast<uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

uint64_t read_heap_bytes() {
#if defined(__GLIBC__) && __GLIBC__ >= 2 && __GLIBC_MINOR__ >= 33
  const struct mallinfo2 mi = mallinfo2();
  return static_cast<uint64_t>(mi.uordblks) +
         static_cast<uint64_t>(mi.hblkhd);
#else
  return 0;
#endif
}

}  // namespace

MemoryProbe::MemoryProbe(MetricsRegistry& registry)
    : rss_gauge_(registry.gauge("rss_bytes")),
      heap_gauge_(registry.gauge("heap_bytes")) {
  registry.set_help("rss_bytes", "Process resident set size in bytes.");
  registry.set_help("heap_bytes",
                    "Allocator in-use heap bytes (mallinfo2).");
}

void MemoryProbe::sample() {
  rss_bytes_ = read_rss_bytes();
  heap_bytes_ = read_heap_bytes();
  rss_peak_bytes_ = std::max(rss_peak_bytes_, rss_bytes_);
  rss_gauge_.set(static_cast<int64_t>(rss_bytes_));
  heap_gauge_.set(static_cast<int64_t>(heap_bytes_));
}

}  // namespace sedspec::obs
