// Minimal leveled logger.
//
// The library is silent by default (level = kWarn); tests and benchmarks can
// raise or lower the level, and the SEDSPEC_LOG_LEVEL environment variable
// (debug|info|warn|error|off, or 0-4) sets the startup level without a
// recompile. Log output goes to stderr so benchmark stdout stays
// machine-readable. Every line is prefixed with a monotonic
// seconds.microseconds timestamp on the same timebase as the obs trace
// events (monotonic_ns), so long campaign runs correlate with exported
// traces.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace sedspec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Monotonic nanoseconds since the process-wide observability epoch (first
/// use). Shared timebase for log line prefixes, obs metric timings, and
/// trace event timestamps.
[[nodiscard]] uint64_t monotonic_ns();

/// Parses a level name ("debug", "info", "warn"/"warning", "error",
/// "off"/"none"/"silent") or a digit 0-4, case-insensitively. Returns
/// `fallback` on anything else.
[[nodiscard]] LogLevel parse_log_level(std::string_view text,
                                       LogLevel fallback);

/// Returns the process-wide minimum level that is emitted. Initialized from
/// SEDSPEC_LOG_LEVEL on first use (default kWarn).
LogLevel log_level();

/// Sets the process-wide minimum level that is emitted.
void set_log_level(LogLevel level);

/// Emits one formatted line to stderr if `level >= log_level()`.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogStream log_debug(std::string component) {
  return {LogLevel::kDebug, std::move(component)};
}
inline detail::LogStream log_info(std::string component) {
  return {LogLevel::kInfo, std::move(component)};
}
inline detail::LogStream log_warn(std::string component) {
  return {LogLevel::kWarn, std::move(component)};
}
inline detail::LogStream log_error(std::string component) {
  return {LogLevel::kError, std::move(component)};
}

}  // namespace sedspec
