// Flight recorder: always-on per-shard event rings frozen into
// self-contained incident bundles.
//
// Every shard owns a small fixed-cost EventTracer ring (the same lock-free
// slot machinery the global tracer uses) that the checker records into on
// every round — a rolling "last K things this shard did". When something
// goes wrong (violation, quarantine, watchdog trip, SLO breach), dump()
// freezes that shard's ring into a FlightBundle: the resolved events, the
// registry metrics at freeze time, and a caller-supplied context blob
// (the soak driver injects the current TimeSeries window + SLO verdicts).
// The bundle is self-contained JSON — every incident ships with the 2 ms
// of history that preceded it, answering "what was the checker doing just
// before this?" without a verbose global trace.
//
// Cost model: recording into a shard ring is the same fixed-size atomic
// write as the global tracer (no allocation); dump() is the only expensive
// path and runs off the check path (report consumer / collector thread).
// Bundles are bounded (max_bundles, oldest evicted) and per-(shard,
// trigger) dumps are deduplicated within an epoch (the collector bumps the
// epoch each window) so a violation storm produces one bundle per window,
// not thousands.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace sedspec::obs {

enum class FlightTrigger : uint8_t {
  kViolation = 0,
  kQuarantine,
  kWatchdog,
  kSloBreach,
  kManual,
};

[[nodiscard]] const char* flight_trigger_name(FlightTrigger t);

struct FlightConfig {
  /// Per-shard ring depth (events). Fixed cost per shard.
  size_t shard_ring_capacity = 256;
  /// Retained bundles; beyond this the oldest is evicted.
  size_t max_bundles = 16;
};

/// One frozen incident: resolved events + metrics + context, all by value
/// (self-contained — survives the recorder and the rings it came from).
struct FlightBundle {
  uint64_t sequence = 0;  // monotone bundle number
  uint64_t ts_ns = 0;     // freeze time
  FlightTrigger trigger = FlightTrigger::kManual;
  size_t shard = 0;
  uint64_t epoch = 0;     // collector window the incident fell in
  std::string reason;     // trigger-specific detail (device, SLO name, ...)
  /// Shard ring at freeze time, oldest-first, strings resolved.
  struct Event {
    uint64_t ts_ns = 0;
    uint64_t a = 0;
    uint64_t b = 0;
    std::string type;
    std::string name;
    std::string cat;
    std::string detail;
  };
  std::vector<Event> events;
  /// MetricsRegistry::to_json() at freeze time.
  std::string metrics_json;
  /// Caller-supplied window context (JSON object or empty).
  std::string context_json;

  [[nodiscard]] std::string to_json() const;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t shards, FlightConfig cfg = {});

  [[nodiscard]] size_t shards() const { return rings_.size(); }
  /// The ring shard `i`'s checker should record into (attach via
  /// EsChecker::set_local_tracer). Stable for the recorder's lifetime.
  [[nodiscard]] EventTracer& shard_ring(size_t i) { return *rings_[i]; }

  /// Provides the "current window" context embedded in bundles. Called
  /// from whatever thread triggers a dump — must be thread-safe. Expected
  /// to return a JSON object (or empty string for none).
  void set_context_provider(std::function<std::string()> provider);

  /// Bumps the dedup epoch — typically once per collector window. Dumps
  /// for a (shard, trigger) already captured in the current epoch are
  /// suppressed (counted, not recorded).
  void set_epoch(uint64_t epoch);
  [[nodiscard]] uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Freezes shard `shard`'s ring (plus the default registry's metrics and
  /// the context provider's blob) into a bundle. Returns true when a
  /// bundle was recorded, false when deduplicated.
  bool dump(FlightTrigger trigger, size_t shard, std::string_view reason);

  [[nodiscard]] uint64_t dumps() const;
  [[nodiscard]] uint64_t suppressed() const;
  /// Copies of the retained bundles, oldest-first.
  [[nodiscard]] std::vector<FlightBundle> bundles() const;
  [[nodiscard]] std::string to_json() const;

 private:
  FlightConfig cfg_;
  std::vector<std::unique_ptr<EventTracer>> rings_;
  std::atomic<uint64_t> epoch_{0};

  mutable std::mutex mu_;
  std::function<std::string()> context_provider_;
  std::deque<FlightBundle> bundles_;
  /// Last epoch in which (shard, trigger) dumped; index
  /// shard * kTriggerCount + trigger. ~0 = never.
  std::vector<uint64_t> last_dump_epoch_;
  uint64_t sequence_ = 0;
  uint64_t dumps_ = 0;
  uint64_t suppressed_ = 0;
};

}  // namespace sedspec::obs
