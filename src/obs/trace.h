// Event tracing: a fixed-capacity ring buffer of typed runtime events with
// a Chrome trace-event JSON exporter (loadable in Perfetto or
// chrome://tracing).
//
// The tracer is OFF unless installed: instrumentation sites do
// `if (EventTracer* t = obs::tracer())` — a single relaxed atomic pointer
// load — so an uninstrumented run pays one predicted branch per site.
// Recording is lock-free: a relaxed fetch_add claims a slot in a
// preallocated ring, the event is written in place, and wraparound
// overwrites the oldest entries (dropped() counts them). Strings (event
// names, device names, strategy labels) are interned into a bounded table
// once and referenced by id, so an event record is a fixed-size write with
// no allocation.
//
// Threading contract (concurrency layer): record() may be called from any
// number of shard threads concurrently — every ring-slot field is a
// relaxed atomic, so concurrent writers (same slot after wraparound) and a
// concurrent snapshot() are data-race-free. Under contention an individual
// snapshot entry may mix fields from two events (field-level last-writer-
// wins) — acceptable for a lossy trace ring; counts (recorded/dropped) are
// exact. The intern table is mutex-guarded; ids are stable for the
// tracer's lifetime.
//
// Event vocabulary (EventType): guest I/O accesses, ES-CFG traversal steps,
// checker violations/quarantines/self-heals, DMA transfers, pipeline phase
// begin/end pairs, and fault-campaign outcomes. io_access and
// traversal_step are high-frequency and only recorded at Detail::kVerbose.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace sedspec::obs {

enum class EventType : uint8_t {
  kIoAccess = 0,      // one guest PIO/MMIO access (verbose only)
  kTraversalStep,     // one ES-CFG block visit (verbose only)
  kViolation,         // checker violation; detail = strategy label
  kQuarantine,        // fail-closed containment reset a device
  kSelfHeal,          // fail-open degradation healed (resync + re-attach)
  kDmaXfer,           // one DMA engine transfer
  kPhaseBegin,        // pipeline phase opened (Chrome 'B')
  kPhaseEnd,          // pipeline phase closed (Chrome 'E')
  kFaultOutcome,      // fault-injection campaign classified one fault
  kSloBreach,         // SLO engine burn-rate breach; detail = SLO name
};

[[nodiscard]] const char* event_type_name(EventType t);

struct TraceEvent {
  uint64_t ts_ns = 0;   // obs::now_ns() at record time
  uint64_t dur_ns = 0;  // 0 for instants and begin/end markers
  uint64_t a = 0;       // type-specific numeric arg (addr, site, layer, ...)
  uint64_t b = 0;       // type-specific numeric arg (value, bytes, ...)
  uint32_t name = 0;    // interned: event/phase name
  uint32_t cat = 0;     // interned: category (device name, "pipeline", ...)
  uint32_t detail = 0;  // interned: strategy label, direction, outcome, ...
  EventType type = EventType::kIoAccess;
};

class EventTracer {
 public:
  enum class Detail : uint8_t {
    kNormal = 0,   // everything except per-access / per-step events
    kVerbose = 1,  // adds io_access and traversal_step
  };

  explicit EventTracer(size_t capacity = 1 << 16);

  void set_detail(Detail d) {
    detail_.store(static_cast<uint8_t>(d), std::memory_order_relaxed);
  }
  [[nodiscard]] Detail detail() const {
    return static_cast<Detail>(detail_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool verbose() const { return detail() == Detail::kVerbose; }

  /// Interns `s` and returns its stable id. The table is bounded
  /// (kMaxStrings); once full, unseen strings collapse to one overflow id
  /// so a pathological label stream cannot grow memory without bound.
  uint32_t intern(std::string_view s);
  /// By value: the intern table may grow (and relocate) under a concurrent
  /// intern(), so a reference could dangle the moment the lock is dropped.
  [[nodiscard]] std::string string_at(uint32_t id) const;

  void record(EventType type, std::string_view name, std::string_view cat,
              std::string_view detail = {}, uint64_t a = 0, uint64_t b = 0,
              uint64_t dur_ns = 0);

  /// Pipeline-phase markers (Chrome 'B'/'E'; Perfetto renders the span).
  void begin_phase(std::string_view name, std::string_view cat);
  void end_phase(std::string_view name, std::string_view cat);

  [[nodiscard]] size_t capacity() const { return capacity_; }
  /// Events currently held (<= capacity).
  [[nodiscard]] size_t size() const;
  /// Total events ever recorded.
  [[nodiscard]] uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Events lost to wraparound (oldest-first overwrite).
  [[nodiscard]] uint64_t dropped() const;

  /// Copies the retained events oldest-first. Safe against concurrent
  /// recording (no data race), but boundary entries being overwritten at
  /// snapshot time may carry mixed fields; prefer quiescent reads for
  /// exact exports.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]} with ts/dur in
  /// microseconds, phase 'B'/'E' for pipeline phases, 'X' for events
  /// carrying a duration, and instant 'i' otherwise.
  [[nodiscard]] std::string to_chrome_json() const;

  void clear();

 private:
  static constexpr size_t kMaxStrings = 4096;

  /// One ring slot. Every field is a relaxed atomic so two writers that
  /// collide on the slot (ring wraparound) and a concurrent snapshot()
  /// never constitute a data race; a relaxed store compiles to a plain
  /// register move on x86/arm64, so recording costs the same as the old
  /// plain-struct write.
  struct AtomicSlot {
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint32_t> name{0};
    std::atomic<uint32_t> cat{0};
    std::atomic<uint32_t> detail{0};
    std::atomic<uint8_t> type{0};

    void store(const TraceEvent& ev);
    [[nodiscard]] TraceEvent load() const;
  };

  mutable std::mutex intern_mu_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> ids_;

  std::unique_ptr<AtomicSlot[]> ring_;
  size_t capacity_ = 0;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint8_t> detail_{0};
};

namespace detail {
/// Storage for the process-global tracer pointer. Exposed so tracer()
/// inlines to one relaxed load (it gates every instrumented hot-path
/// site). Mutate only via set_tracer().
extern std::atomic<EventTracer*> g_tracer;
}  // namespace detail

/// Process-global tracer the instrumentation sites emit into; null (the
/// default) disables event recording entirely.
[[nodiscard]] inline EventTracer* tracer() {
  return detail::g_tracer.load(std::memory_order_relaxed);
}
void set_tracer(EventTracer* tracer);

/// RAII pipeline-phase probe: emits begin/end events to the installed
/// tracer and records the phase duration into the default registry's
/// `pipeline_phase_ns{phase="<name>"}` histogram (when timing is on).
class PhaseScope {
 public:
  PhaseScope(std::string name, std::string cat);
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope();

 private:
  std::string name_;
  std::string cat_;
  Histogram* hist_ = nullptr;
  uint64_t start_ = 0;
};

}  // namespace sedspec::obs
