// Device-state-change log (paper §IV-B / Fig. 1 ①).
//
// During the data-collection phase the instrumented device records, per I/O
// round: the I/O access itself, every site entered (with its block-type
// auxiliary information), conditional directions, indirect targets, decoded
// commands and command ends, and device-state parameter changes. Algorithm 1
// consumes these logs — "each log ... contains the complete control flow
// data, device state change data, and auxiliary information" — together
// with the device source to build the ES-CFG.
//
// The log has a binary wire format (round-trippable, so collection and
// construction can run in separate processes, as in the paper's offline
// pipeline) and an in-memory round iterator.
#pragma once

#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "expr/io.h"
#include "program/program.h"
#include "vdev/instr.h"

namespace sedspec::statelog {

using sedspec::BlockKind;
using sedspec::FuncAddr;
using sedspec::IoAccess;
using sedspec::ParamId;
using sedspec::SiteId;

enum class EntryKind : uint8_t {
  kRoundStart = 1,
  kSiteEnter,
  kBranch,
  kIndirect,
  kCommand,
  kCommandEnd,
  kParamChange,
  kRoundEnd,
};

struct LogEntry {
  EntryKind kind = EntryKind::kRoundStart;
  IoAccess io;                    // kRoundStart
  SiteId site = 0;                // kSiteEnter/kBranch/kIndirect/kCommand/kCommandEnd
  BlockKind block_kind = BlockKind::kPlain;  // kSiteEnter
  bool taken = false;             // kBranch
  FuncAddr target = 0;            // kIndirect
  uint64_t cmd = 0;               // kCommand
  ParamId param = 0;              // kParamChange
  uint64_t old_value = 0;         // kParamChange
  uint64_t new_value = 0;         // kParamChange

  friend bool operator==(const LogEntry&, const LogEntry&) = default;
};

/// One training run's log: a flat entry sequence plus round boundaries.
class DeviceStateLog {
 public:
  void append(LogEntry entry) { entries_.push_back(std::move(entry)); }

  [[nodiscard]] const std::vector<LogEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] size_t round_count() const;

  /// Views of [begin, end) entry index ranges, one per round.
  struct RoundView {
    std::span<const LogEntry> entries;
    [[nodiscard]] const IoAccess& io() const { return entries.front().io; }
  };
  [[nodiscard]] std::vector<RoundView> rounds() const;

  /// Appends another log's entries (merging training sessions).
  void merge(const DeviceStateLog& other);

  [[nodiscard]] std::vector<uint8_t> serialize() const;
  [[nodiscard]] static DeviceStateLog deserialize(
      std::span<const uint8_t> bytes);

 private:
  std::vector<LogEntry> entries_;
};

/// The StateObserver a device's instrumentation context writes into while
/// observation points are armed.
class LogRecorder final : public sedspec::StateObserver {
 public:
  /// Restricts recording to the observation plan: plain sites outside
  /// `filter` are not logged (the paper only instruments selected
  /// observation points). Non-plain sites (control-flow-relevant) are
  /// always recorded. Pass nullptr to record everything.
  void set_site_filter(const std::set<SiteId>* filter) { filter_ = filter; }

  // StateObserver -----------------------------------------------------------
  void round_start(const IoAccess& io) override;
  void site_enter(SiteId site, BlockKind kind) override;
  void branch(SiteId site, bool taken) override;
  void indirect(SiteId site, FuncAddr target) override;
  void command(SiteId site, uint64_t cmd) override;
  void command_end(SiteId site) override;
  void param_change(ParamId param, uint64_t old_raw, uint64_t new_raw) override;
  void round_end() override;

  [[nodiscard]] DeviceStateLog take() { return std::move(log_); }
  [[nodiscard]] const DeviceStateLog& log() const { return log_; }

 private:
  DeviceStateLog log_;
  const std::set<SiteId>* filter_ = nullptr;
};

/// Human-readable dump (spec-inspector example, debugging).
std::string to_text(const DeviceStateLog& log,
                    const sedspec::DeviceProgram& program);

}  // namespace sedspec::statelog
