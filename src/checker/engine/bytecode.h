// BytecodeEngine: compile-once / execute-many check backend (DESIGN.md §12).
//
// At deploy time the spec::EsCfg and its expr/stmt ASTs are lowered into a
// flat, immutable BytecodeProgram: one contiguous Insn array executed by a
// threaded-code VM (computed-goto dispatch on GCC/Clang, switch fallback),
// plus side tables — block metadata, statement-note and constant pools,
// command dispatch tables (sorted, inline-cached), indirect-jump edge sets
// (dense bitmap or sorted array + branchless binary search), and batched
// parameter-range-check pools over a flat layout.
//
// Design contract: observational identity with InterpreterEngine. Every
// evaluation quirk of expr/eval.cc (overflow/diag recording order, eager
// &&/||, raw kConst, shift-range rules, missing-local attribution) is
// replicated per opcode, and every violation string is produced by the
// shared engine::detail formatters. The differential suite
// (tests/check_engine_test.cc) holds both engines to identical CheckResults
// across devices, the CVE matrix, and fuzzed specs.
//
// Programs are serializable ("SEBC" envelope: magic + version + length +
// crc32, mirroring spec/serial.h) and re-verified against the attached
// device's StateLayout/site count before execution: a truncated or
// bit-flipped program is rejected with a structured error, and a
// verified-but-garbled program may compute wrong results but can never
// execute unsafely (all indices are range-checked at attach, the arena
// clamps escapes, and internal inconsistencies throw CheckerFault into the
// containment layer).
//
// Inline caches (one per command-dispatch table) live in the ENGINE, not
// the program: a program is immutable and shareable, and redeploy
// constructs a fresh engine, so caches are invalidated by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "checker/engine/engine.h"
#include "spec/es_cfg.h"
#include "spec/serial.h"

namespace sedspec::checker::engine {

/// Opcodes. Control ops terminate or redirect the instruction stream; expr
/// ops implement one AST node each (one opcode per BinaryOp — threaded
/// dispatch makes a wide opcode space free); stmt ops mutate the shadow.
enum class Op : uint8_t {
  // Control.
  kEnd = 0,  // round complete (code[0] is always kEnd: jump target 0 = end)
  kJump,     // pc = c
  kProlog,   // block entry: steps/watchdog/budget/visits/syncs/cmd-access
  kBranch,   // conditional NBTD on regs[a]
  kGuardCmpBranch,  // superinstruction: fused simple-operand compare + NBTD
  kCmdDispatch,     // command decode dispatch (sorted table + inline cache)
  kIndirect,        // indirect-jump edge-set membership check
  kCmdEnd,          // active command ends
  kTrapUnmapped,    // dangling trained successor: step accounting, then
                    // CheckerFault — byte-compatible with the interpreter
                    // walking onto an unmapped site

  // Expressions (dst = register index).
  kConst,      // dst = imm (raw, untruncated — kConst semantics)
  kLoadParam,  // dst = truncate(t, shadow.param(a))
  kLoadLocal,  // dst = truncate(t, local a) | missing-local diag
  kLoadIo,     // dst = io field a, type t
  kBufLoad,    // dst = truncate(t, shadow.buf_load(b, regs[a], &diag))
  kCast,       // dst = truncate(t, pattern_of(b, regs[a]))
  kNeg,        // dst = -regs[a] with overflow diag (t = result, b = operand)
  kBitNot,     // dst = truncate(t, ~pattern_of(b, regs[a]))
  kLogNot,     // dst = interpret(b, regs[a]) == 0
  // Binary: dst, a = lhs reg, b = rhs reg, c = res | lhs<<8 | rhs<<16 types.
  kAdd, kSub, kMul, kDiv, kMod, kAnd, kOr, kXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe, kLAnd, kLOr,

  // Statements.
  kStoreParam,   // shadow.set_param(b, regs[a])
  kStoreLocal,   // shadow.set_local(b, regs[a])
  kBufStore,     // shadow.buf_store(b, regs[a], regs[dst], t ? &diag : null)
  kBufFill,      // shadow.buf_fill(b, regs[a], regs[dst], t ? &diag : null)
  kDiagCheck,    // convert a pending stmt diag into a violation, reset
  kBoundsBatch,  // batched param range checks: all-in-bounds fast path

  // Scalar-field superinstructions: the compiler resolves a scalar param's
  // byte offset/width against the layout at compile time (emitted only when
  // the id is a valid scalar — invalid ids keep the generic ops so the
  // arena's runtime containment behavior is engine-identical). The verifier
  // bounds-checks offset+width against the arena, so even a garbled program
  // stays inside arena memory.
  kLoadScalar,      // dst = truncate(t, load_raw(c, b))      (b=width, c=off)
  kStoreScalar,     // store_raw(c, b, truncate(t, regs[a]))  (t=field type)
  kStoreScalarImm,  // store_raw(c, b, imm)  (imm pre-truncated at compile)

  kOpCount,
};

/// One fixed-size instruction. Field meaning is per-opcode (see Op).
struct Insn {
  uint8_t op = 0;     // Op
  uint8_t t = 0;      // type / flags (per-op)
  uint16_t dst = 0;   // destination register / secondary operand
  uint16_t a = 0;     // register / id operand
  uint16_t b = 0;     // register / id / pool-index operand
  uint32_t c = 0;     // packed types / meta index / jump target
  uint64_t imm = 0;   // constant / packed branch targets
};

// kBranch flag bits (Insn::t) and direction bits (low byte of Insn::c; the
// block-meta index lives in the high 24 bits of c).
inline constexpr uint8_t kBrCanDiag = 1;         // guard can raise a diag
inline constexpr uint32_t kDirTakenObserved = 1;
inline constexpr uint32_t kDirTakenEnds = 2;
inline constexpr uint32_t kDirNotTakenObserved = 4;
inline constexpr uint32_t kDirNotTakenEnds = 8;

/// kGuardCmpBranch operand spec (Insn::a / Insn::b):
///   kind(2 bits) << 14 | IntType(3 bits) << 11 | id(11 bits)
/// kind 0 = constant-pool index, 1 = scalar param, 2 = IoField.
inline constexpr uint16_t operand_spec(unsigned kind, sedspec::IntType type,
                                       uint16_t id) {
  return static_cast<uint16_t>((kind << 14) |
                               (static_cast<unsigned>(type) << 11) |
                               (id & 0x7ff));
}

/// Sentinel: the active command has no entry in the command-access table
/// (the access check is skipped, matching commands.find() == end()).
inline constexpr uint32_t kNoAccess = 0xffffffff;

struct BlockMeta {
  std::string name;
  SiteId site = sedspec::kInvalidSite;
  uint64_t trained_max = 0;  // block.max_visits_per_round (for the message)
  uint64_t visit_bound = 0;  // slack-adjusted cap baked in at compile time
};

struct DispatchEntry {
  uint64_t cmd = 0;
  uint32_t pc = 0;  // 0 (= kEnd) when this command ends the round
  uint32_t access_idx = kNoAccess;
};

struct DispatchTable {
  std::vector<DispatchEntry> entries;  // sorted by cmd; observed only
};

/// Trained indirect-jump target set.
struct EdgeSet {
  enum : uint8_t { kEmpty = 0, kBitmap = 1, kSorted = 2 };
  uint8_t kind = kEmpty;
  uint64_t base = 0;            // kBitmap: lowest target
  std::vector<uint64_t> words;  // kBitmap: span/64 words
  std::vector<uint64_t> sorted; // kSorted: ascending targets

  [[nodiscard]] bool contains(uint64_t target) const;
};

/// One statement of a kBoundsBatch: index/value registers already computed,
/// `regs[idx_reg] < limit` (branchless, unsigned — negative indices wrap
/// high) proves the store in-bounds.
struct BatchEntry {
  uint16_t idx_reg = 0;
  uint16_t val_reg = 0;
  uint16_t param = 0;  // buffer field
  uint32_t limit = 0;  // must equal the field's element count (verified)
};

/// Entry dispatch for one (space, is_write) group: dense direct table when
/// the trained address span is small, otherwise sorted addresses +
/// branchless lower-bound.
struct EntryGroup {
  bool dense = false;
  uint64_t base = 0;
  std::vector<uint32_t> table;  // dense: pc per addr-base offset (kPcMiss)
  std::vector<uint64_t> addrs;  // sparse: ascending
  std::vector<uint32_t> pcs;    // sparse: parallel to addrs
};

inline constexpr uint32_t kPcMiss = 0xffffffff;

/// The compiled, immutable program. Shareable across engines (each engine
/// adds its own mutable state: registers, visit counters, inline caches).
struct BytecodeProgram {
  std::string device_name;
  uint32_t reg_count = 0;
  std::vector<Insn> code;  // code[0] is kEnd
  std::vector<BlockMeta> blocks;
  std::vector<std::string> notes;
  std::vector<uint64_t> consts;
  std::vector<sedspec::LocalId> sync_pool;
  std::vector<DispatchTable> tables;
  std::vector<EdgeSet> edges;
  std::vector<BatchEntry> batch_pool;
  // Command access-control table: sorted command values; one bitset row of
  // words_per_block words per command, bit i = block i accessible.
  std::vector<uint64_t> cmd_values;
  std::vector<uint64_t> access_words;
  uint32_t words_per_block = 0;
  EntryGroup entry[4];  // index: (space == kMmio) << 1 | is_write
};

/// Compiles a spec into a program. Throws std::logic_error on structurally
/// malformed specs (unmapped sites, dangling transition targets) — the same
/// behavior (and containment conversion) as InterpreterEngine attach.
[[nodiscard]] std::shared_ptr<const BytecodeProgram> compile_program(
    const spec::EsCfg& cfg, const Device& device, const CheckerConfig& config);

/// Structural/memory-safety verifier: every register, pool index, jump
/// target, param/local/type id is range-checked against the program's own
/// tables and the attached device's layout + site count, and the last
/// instruction must be a terminator. Throws common DecodeError on the first
/// violation. A verified program executes memory-safely even if its results
/// are garbage.
void verify_program(const BytecodeProgram& p, const sedspec::StateLayout& layout,
                    size_t site_count);

inline constexpr uint32_t kBytecodeMagic = 0x43424553;  // "SEBC"
inline constexpr uint32_t kBytecodeFormatVersion = 1;

[[nodiscard]] std::vector<uint8_t> serialize(const BytecodeProgram& p);

struct BytecodeLoadResult {
  std::shared_ptr<const BytecodeProgram> program;
  spec::LoadError error;
  [[nodiscard]] bool ok() const { return program != nullptr; }
};

/// Structured, non-throwing load: integrity envelope first (magic, version,
/// length, crc32), then structural decode. Corrupt input yields a
/// LoadError; the program must still pass verify_program at attach.
[[nodiscard]] BytecodeLoadResult load_program(std::span<const uint8_t> bytes);

class BytecodeEngine final : public CheckEngine {
 public:
  /// Compile-and-attach (the make_engine path).
  BytecodeEngine(const spec::EsCfg* cfg, Device* device,
                 sedspec::StateArena* shadow, const CheckerConfig* config);

  /// Attach a precompiled (possibly deserialized) program. Runs
  /// verify_program against the device before accepting it.
  BytecodeEngine(std::shared_ptr<const BytecodeProgram> program,
                 Device* device, sedspec::StateArena* shadow,
                 const CheckerConfig* config);

  [[nodiscard]] CheckResult check(const IoAccess& io,
                                  const RoundOptions& opts) override;

  [[nodiscard]] std::optional<uint64_t> active_command() const override;
  void set_active_command(std::optional<uint64_t> cmd) override;

  [[nodiscard]] std::string_view name() const override { return "bytecode"; }

  [[nodiscard]] const BytecodeProgram& program() const { return *program_; }

 private:
  struct ICEntry {  // per dispatch table; monomorphic hit skips the search
    uint64_t cmd = 0;
    uint32_t entry = 0;
    bool valid = false;
  };

  void attach();
  [[nodiscard]] uint32_t access_index_of(uint64_t cmd) const;

  std::shared_ptr<const BytecodeProgram> program_;
  Device* device_;
  sedspec::StateArena* shadow_;
  const CheckerConfig* config_;

  // Mutable per-engine state.
  std::vector<uint64_t> regs_;
  std::vector<uint64_t> visits_;
  std::vector<uint64_t> visit_epoch_;
  uint64_t epoch_ = 0;
  sedspec::EvalDiag diag_;  // clean at statement boundaries
  bool active_has_ = false;
  uint64_t active_cmd_ = 0;
  uint32_t active_access_ = kNoAccess;
  std::vector<ICEntry> ic_;  // one per dispatch table

  // Scalar-field fast path for guard operands, resolved from the *trusted*
  // layout (not the program) at attach() time: guard_w_[id] == 0 means "use
  // the generic StateArena::param() path" (buffer, oversized, or garbled id).
  std::vector<uint32_t> guard_off_;
  std::vector<uint8_t> guard_w_;
};

}  // namespace sedspec::checker::engine
