// Packet encoder: the TraceSink a device's instrumentation context writes
// into while the "IPT module" is collecting (paper Fig. 1, phase 1).
#pragma once

#include <vector>

#include "trace/packets.h"
#include "vdev/instr.h"

namespace sedspec::trace {

class PacketEncoder final : public TraceSink {
 public:
  explicit PacketEncoder(TraceFilter filter = {}) : filter_(filter) {}

  // TraceSink ---------------------------------------------------------------
  void pge(FuncAddr addr) override;
  void pgd() override;
  void tip(FuncAddr addr) override;
  void tnt(bool taken) override;

  /// Finishes any pending TNT packet and returns the packet bytes.
  [[nodiscard]] std::vector<uint8_t> finish();

  [[nodiscard]] size_t byte_count() const { return writer_.size(); }
  [[nodiscard]] uint64_t dropped_by_filter() const { return dropped_; }

 private:
  void flush_tnt();

  TraceFilter filter_;
  ByteWriter writer_;
  uint8_t tnt_bits_ = 0;
  uint8_t tnt_count_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace sedspec::trace
