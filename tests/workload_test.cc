// Workload/campaign infrastructure tests.
//
// The crucial invariant: every workload's long-run common-operation
// vocabulary is fully covered by its training mix, so false positives can
// come ONLY from injected rare operations — exactly the paper's claim that
// FPs "are exclusively linked to exceedingly rare device commands".
#include <gtest/gtest.h>

#include "benchsim/campaign.h"
#include "guest/workload.h"

namespace sedspec {
namespace {

using benchsim::run_fp_campaign;
using checker::CheckerConfig;
using checker::Mode;
using guest::DeviceWorkload;
using guest::InteractionMode;
using guest::make_workload;
using guest::workload_names;

class WorkloadSuite : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllDevices, WorkloadSuite,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(WorkloadSuite, CommonOperationsAreFullyTrained) {
  auto wl = make_workload(GetParam());
  CheckerConfig config;
  config.mode = Mode::kEnhancement;
  wl->build_and_deploy(config);
  Rng rng(42);
  VirtualClock clock;
  for (int i = 0; i < 12; ++i) {
    wl->test_case(static_cast<InteractionMode>(i % 3), rng, clock,
                  /*include_rare=*/false);
  }
  EXPECT_EQ(wl->checker()->stats().warnings, 0u)
      << "benign long-run traffic must not trip the spec";
  EXPECT_EQ(wl->checker()->stats().blocked, 0u);
  EXPECT_TRUE(wl->device().incidents().empty());
  EXPECT_GT(wl->checker()->stats().rounds, 1000u);
}

TEST_P(WorkloadSuite, RareOperationsAreFalsePositives) {
  auto wl = make_workload(GetParam());
  CheckerConfig config;
  config.mode = Mode::kEnhancement;
  wl->build_and_deploy(config);
  Rng rng(7);
  VirtualClock clock;
  for (int i = 0; i < 3; ++i) {
    wl->test_case(InteractionMode::kRandom, rng, clock,
                  /*include_rare=*/true);
  }
  EXPECT_GT(wl->checker()->stats().warnings, 0u)
      << "rare-but-legal operations must be flagged (they are untrained)";
  EXPECT_EQ(wl->checker()->stats().blocked, 0u)
      << "enhancement mode only warns for conditional-jump findings";
  // §VI-B: parameter-check anomalies "are directly related to vulnerability
  // exploitation and do not cause false positives" — every FP must come
  // from the conditional-jump strategy.
  EXPECT_EQ(wl->checker()->stats().violations_by_strategy[0], 0u);
  EXPECT_EQ(wl->checker()->stats().violations_by_strategy[1], 0u);
  EXPECT_GT(wl->checker()->stats().violations_by_strategy[2], 0u);
  EXPECT_TRUE(wl->device().incidents().empty());
}

TEST_P(WorkloadSuite, FpCampaignShapeMatchesPaper) {
  auto wl = make_workload(GetParam());
  CheckerConfig config;
  config.mode = Mode::kEnhancement;
  wl->build_and_deploy(config);
  // Short campaign (1 virtual hour) with an exaggerated rare probability to
  // keep the test fast; the FPR must track the injection rate.
  auto result = run_fp_campaign(*wl, /*total_hours=*/1.0,
                                /*rare_prob=*/0.2, /*seed=*/3, {0.5, 1.0});
  EXPECT_GT(result.total_cases, 20u);
  EXPECT_GT(result.flagged_cases, 0u);
  EXPECT_LT(result.fpr(), 0.5);
  ASSERT_EQ(result.snapshots.size(), 2u);
  EXPECT_LE(result.snapshots[0].false_positives,
            result.snapshots[1].false_positives);
}

TEST_P(WorkloadSuite, EffectiveCoverageInPaperRange) {
  auto wl = make_workload(GetParam());
  const double coverage = benchsim::run_effective_coverage(*wl, 11);
  // Paper Table III: 93.5% - 97.3%. Allow a wider but still meaningful band.
  EXPECT_GT(coverage, 0.85) << "spec misses too much legal behavior";
  EXPECT_LT(coverage, 1.0) << "fuzzing must discover the rare paths";
}

TEST_P(WorkloadSuite, StorageRoundTrip) {
  auto wl = make_workload(GetParam());
  if (!wl->is_storage()) {
    GTEST_SKIP() << "network device";
  }
  wl->build_and_deploy();
  std::vector<uint8_t> data(4096);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 11);
  }
  wl->bulk_write(16, data);
  std::vector<uint8_t> back(data.size());
  wl->bulk_read(16, back);
  EXPECT_EQ(back, data);
  EXPECT_EQ(wl->checker()->stats().blocked, 0u);
  EXPECT_EQ(wl->checker()->stats().warnings, 0u);
}

}  // namespace
}  // namespace sedspec
