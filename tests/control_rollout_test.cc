// Rollout state machine primitives (control/rollout.h): the pure stage
// verdict function and the crash-consistent RolloutRecord envelope,
// including exhaustive bit-flip fuzz of the persisted artifact.
#include <gtest/gtest.h>

#include "control/rollout.h"
#include "guest/workload.h"
#include "sedspec/pipeline.h"
#include "spec/serial.h"

namespace sedspec {
namespace {

using control::evaluate_stage;
using control::RolloutRecord;
using control::RolloutState;
using control::RolloutThresholds;
using control::StageObservation;
using control::StageVerdict;

StageObservation clean_window() {
  StageObservation o;
  o.shadow_shards = 2;
  o.shadow_rounds = 64;
  o.active_rounds = 64;
  return o;
}

TEST(EvaluateStage, CleanWindowPromotes) {
  const auto d = evaluate_stage(RolloutThresholds{}, clean_window());
  EXPECT_EQ(d.verdict, StageVerdict::kPromote);
}

TEST(EvaluateStage, ShadowBlockIsAnUnconditionalRollback) {
  StageObservation o = clean_window();
  o.candidate_blocked = 1;
  const auto d = evaluate_stage(RolloutThresholds{}, o);
  EXPECT_EQ(d.verdict, StageVerdict::kRollback);
  EXPECT_NE(d.reason.find("shadow"), std::string::npos);
}

TEST(EvaluateStage, FailureDomainSpikesRollBack) {
  for (auto mutate : {+[](StageObservation& o) { o.shard_failures = 1; },
                      +[](StageObservation& o) { o.quarantines = 1; },
                      +[](StageObservation& o) { o.report_drops = 3; }}) {
    StageObservation o = clean_window();
    mutate(o);
    EXPECT_EQ(evaluate_stage(RolloutThresholds{}, o).verdict,
              StageVerdict::kRollback);
  }
}

TEST(EvaluateStage, IncompleteObservationRetriesNeverPromotes) {
  RolloutThresholds t;
  t.min_shadow_rounds = 32;
  StageObservation o = clean_window();
  o.shadow_rounds = 7;  // metric feed delayed
  const auto d = evaluate_stage(t, o);
  EXPECT_EQ(d.verdict, StageVerdict::kRetry);
}

TEST(EvaluateStage, WouldBlockAndViolationSurplusRollBack) {
  StageObservation o = clean_window();
  o.would_block = 1;
  EXPECT_EQ(evaluate_stage(RolloutThresholds{}, o).verdict,
            StageVerdict::kRollback);

  o = clean_window();
  o.candidate_violations = 3;
  o.active_violations = 1;  // surplus of 2 over a zero-rate threshold
  EXPECT_EQ(evaluate_stage(RolloutThresholds{}, o).verdict,
            StageVerdict::kRollback);

  // Candidate matching the active spec's violations is not a surplus.
  o = clean_window();
  o.candidate_violations = 2;
  o.active_violations = 2;
  EXPECT_EQ(evaluate_stage(RolloutThresholds{}, o).verdict,
            StageVerdict::kPromote);
}

TEST(EvaluateStage, LatencyRatioTripsAndSamplingOffSkips) {
  RolloutThresholds t;
  t.max_latency_ratio = 2.0;

  StageObservation o = clean_window();
  o.active_check_ns = 64 * 100;  // 100 ns/round
  o.candidate_check_ns = 64 * 500;  // 5x the active cost
  EXPECT_EQ(evaluate_stage(t, o).verdict, StageVerdict::kRollback);

  o = clean_window();
  o.active_latency_p99_ns = 200;
  o.candidate_latency_p99_ns = 900;
  EXPECT_EQ(evaluate_stage(t, o).verdict, StageVerdict::kRollback);

  // Timing sampling off: all latency denominators 0 — no verdict from the
  // ratio checks.
  EXPECT_EQ(evaluate_stage(t, clean_window()).verdict,
            StageVerdict::kPromote);
}

class RolloutRecordSuite : public ::testing::Test {
 protected:
  void SetUp() override {
    auto w = guest::make_workload("fdc");
    const spec::EsCfg cfg =
        pipeline::build_spec(w->device(), [&] { w->training(); });
    record_.device = "fdc";
    record_.candidate_version = 7;
    record_.baseline_version = 3;
    record_.state = RolloutState::kPromoting;
    record_.stage_index = 2;
    record_.reason = "all stages clean";
    record_.baseline_spec = spec::serialize(cfg);
    bytes_ = record_.serialize();
  }

  RolloutRecord record_;
  std::vector<uint8_t> bytes_;
};

TEST_F(RolloutRecordSuite, RoundTripPreservesEveryField) {
  RolloutRecord out;
  ASSERT_TRUE(RolloutRecord::load(bytes_, out).ok());
  EXPECT_EQ(out.device, record_.device);
  EXPECT_EQ(out.candidate_version, record_.candidate_version);
  EXPECT_EQ(out.baseline_version, record_.baseline_version);
  EXPECT_EQ(out.state, record_.state);
  EXPECT_EQ(out.stage_index, record_.stage_index);
  EXPECT_EQ(out.reason, record_.reason);
  EXPECT_EQ(out.baseline_spec, record_.baseline_spec);
}

TEST_F(RolloutRecordSuite, EveryBitFlipIsRejected) {
  // The CRC envelope must catch any single-bit corruption of the persisted
  // record — the exact artifact a torn write or bad sector produces.
  RolloutRecord out;
  for (size_t bit = 0; bit < bytes_.size() * 8; ++bit) {
    std::vector<uint8_t> damaged = bytes_;
    damaged[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    const spec::LoadError err = RolloutRecord::load(damaged, out);
    ASSERT_FALSE(err.ok()) << "bit " << bit << " flip was accepted";
  }
}

TEST_F(RolloutRecordSuite, EveryTruncationIsRejected) {
  RolloutRecord out;
  for (size_t len = 0; len < bytes_.size(); ++len) {
    const std::span<const uint8_t> prefix{bytes_.data(), len};
    ASSERT_FALSE(RolloutRecord::load(prefix, out).ok())
        << "prefix of " << len << " bytes was accepted";
  }
}

TEST_F(RolloutRecordSuite, GarbledPayloadUnderValidCrcStillRejected) {
  // Corrupt the nested baseline spec, then reseal the OUTER envelope so
  // the record's own CRC passes: the nested spec's envelope must still
  // reject it — a record whose recovery artifact is damaged is worthless.
  std::vector<uint8_t> damaged = bytes_;
  // The nested spec bytes sit at the record's tail; garble deep inside.
  damaged[damaged.size() - 40] ^= 0xa5;
  spec::reseal(damaged);
  RolloutRecord out;
  const spec::LoadError err = RolloutRecord::load(damaged, out);
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.detail.find("baseline"), std::string::npos) << err.describe();
}

TEST_F(RolloutRecordSuite, OutOfRangeStateTagRejected) {
  RolloutRecord bogus = record_;
  bogus.state = static_cast<RolloutState>(9);
  RolloutRecord out;
  const spec::LoadError err = RolloutRecord::load(bogus.serialize(), out);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status, spec::LoadStatus::kMalformed);
}

TEST_F(RolloutRecordSuite, MismatchedNestedDeviceRejected) {
  auto w = guest::make_workload("sdhci");
  const spec::EsCfg other =
      pipeline::build_spec(w->device(), [&] { w->training(); });
  RolloutRecord bogus = record_;
  bogus.baseline_spec = spec::serialize(other);  // fdc record, sdhci spec
  RolloutRecord out;
  const spec::LoadError err = RolloutRecord::load(bogus.serialize(), out);
  EXPECT_EQ(err.status, spec::LoadStatus::kDeviceMismatch);
}

TEST(RolloutStates, NamesAndTerminality) {
  EXPECT_EQ(control::rollout_state_name(RolloutState::kShadow), "Shadow");
  EXPECT_FALSE(control::rollout_terminal(RolloutState::kStaging));
  EXPECT_FALSE(control::rollout_terminal(RolloutState::kShadow));
  EXPECT_FALSE(control::rollout_terminal(RolloutState::kPromoting));
  EXPECT_TRUE(control::rollout_terminal(RolloutState::kActive));
  EXPECT_TRUE(control::rollout_terminal(RolloutState::kRolledBack));
}

}  // namespace
}  // namespace sedspec
