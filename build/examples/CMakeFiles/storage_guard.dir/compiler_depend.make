# Empty compiler generated dependencies file for storage_guard.
# This may be replaced when dependencies are built.
