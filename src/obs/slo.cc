#include "obs/slo.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace sedspec::obs {

const char* slo_kind_name(SloKind k) {
  switch (k) {
    case SloKind::kHistogramQuantileMax:
      return "histogram_quantile_max";
    case SloKind::kCounterRateMax:
      return "counter_rate_max";
    case SloKind::kGaugeMax:
      return "gauge_max";
    case SloKind::kGaugeGrowthMax:
      return "gauge_growth_max";
  }
  return "?";
}

void SloEngine::add(SloSpec spec) {
  SEDSPEC_REQUIRE(!spec.name.empty());
  SEDSPEC_REQUIRE(!spec.metric.empty());
  SEDSPEC_REQUIRE(spec.fast_windows > 0);
  SEDSPEC_REQUIRE(spec.fast_windows <= spec.slow_windows);
  SEDSPEC_REQUIRE(spec.budget > 0.0);
  specs_.push_back(std::move(spec));
  history_.emplace_back();
}

double SloEngine::observe(const SloSpec& spec, const WindowSample& w,
                          std::string* detail) {
  std::ostringstream d;
  double value = 0.0;
  switch (spec.kind) {
    case SloKind::kHistogramQuantileMax: {
      std::optional<WindowHistogram> merged;
      const WindowHistogram* h = nullptr;
      if (spec.labels.empty()) {
        merged = w.merged_histogram(spec.metric);
        h = merged ? &*merged : nullptr;
      } else {
        h = w.find_histogram(spec.metric, spec.labels);
      }
      if (h != nullptr) {
        value = static_cast<double>(
            window_percentile(h->buckets, h->count, h->max_bound,
                              spec.quantile));
      }
      d << spec.metric << " q" << spec.quantile << " = " << value;
      break;
    }
    case SloKind::kCounterRateMax: {
      if (spec.labels.empty()) {
        const uint64_t delta = w.counter_delta_sum(spec.metric);
        const double seconds =
            static_cast<double>(w.t_end_ns - w.t_start_ns) / 1e9;
        value = seconds > 0.0 ? static_cast<double>(delta) / seconds : 0.0;
      } else if (const WindowCounter* c =
                     w.find_counter(spec.metric, spec.labels)) {
        value = c->rate;
      }
      d << spec.metric << " rate = " << value << "/s";
      break;
    }
    case SloKind::kGaugeMax:
    case SloKind::kGaugeGrowthMax: {
      const bool growth = spec.kind == SloKind::kGaugeGrowthMax;
      int64_t v = 0;
      for (const WindowGauge& g : w.gauges) {
        if (g.name != spec.metric) {
          continue;
        }
        if (!spec.labels.empty() && g.labels != spec.labels) {
          continue;
        }
        v += growth ? g.delta : g.value;
      }
      value = static_cast<double>(v);
      d << spec.metric << (growth ? " growth = " : " = ") << value;
      break;
    }
  }
  if (detail != nullptr) {
    *detail = d.str();
  }
  return value;
}

std::vector<SloVerdict> SloEngine::evaluate(const WindowSample& w) {
  std::vector<SloVerdict> verdicts;
  verdicts.reserve(specs_.size());
  bool any_violating = false;
  for (size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& spec = specs_[i];
    History& hist = history_[i];
    SloVerdict v;
    v.slo = spec.name;
    v.threshold = spec.threshold;
    v.value = observe(spec, w, &v.detail);
    v.violating = v.value > spec.threshold;
    any_violating = any_violating || v.violating;

    hist.violating.push_back(v.violating);
    while (hist.violating.size() > spec.slow_windows) {
      hist.violating.pop_front();
    }
    // Burn rate over a horizon = violating fraction / budget. Horizons
    // shorter than their nominal width (engine warm-up) use the windows
    // seen so far — a violation in window 0 can already burn.
    auto burn_over = [&](size_t horizon) {
      const size_t n = std::min(horizon, hist.violating.size());
      if (n == 0) {
        return 0.0;
      }
      size_t bad = 0;
      for (size_t k = hist.violating.size() - n; k < hist.violating.size();
           ++k) {
        bad += hist.violating[k] ? 1 : 0;
      }
      return static_cast<double>(bad) / static_cast<double>(n) / spec.budget;
    };
    v.fast_burn = burn_over(spec.fast_windows);
    v.slow_burn = burn_over(spec.slow_windows);
    v.breach = v.violating && v.fast_burn >= spec.fast_burn &&
               v.slow_burn >= spec.slow_burn;
    if (v.breach) {
      ++breaches_;
      if (EventTracer* t = tracer()) {
        t->record(EventType::kSloBreach, "slo_breach", "slo", spec.name,
                  /*a=*/static_cast<uint64_t>(v.value),
                  /*b=*/w.index);
      }
    }
    verdicts.push_back(std::move(v));
  }
  if (any_violating) {
    ++violating_windows_;
  }
  last_ = verdicts;
  return verdicts;
}

std::string SloEngine::to_json() const {
  std::ostringstream out;
  out << "{\n  \"slos\": [";
  bool first = true;
  for (const SloSpec& s : specs_) {
    out << (first ? "" : ",") << "\n    {\"name\": \"" << json_escape(s.name)
        << "\", \"kind\": \"" << slo_kind_name(s.kind) << "\", \"metric\": \""
        << json_escape(s.metric) << "\", \"labels\": \""
        << json_escape(s.labels) << "\", \"quantile\": " << s.quantile
        << ", \"threshold\": " << s.threshold
        << ", \"fast_windows\": " << s.fast_windows
        << ", \"slow_windows\": " << s.slow_windows
        << ", \"budget\": " << s.budget << "}";
    first = false;
  }
  out << "\n  ],\n  \"verdicts_last\": [";
  first = true;
  for (const SloVerdict& v : last_) {
    out << (first ? "" : ",") << "\n    {\"slo\": \"" << json_escape(v.slo)
        << "\", \"value\": " << v.value << ", \"threshold\": " << v.threshold
        << ", \"violating\": " << (v.violating ? "true" : "false")
        << ", \"fast_burn\": " << v.fast_burn
        << ", \"slow_burn\": " << v.slow_burn
        << ", \"breach\": " << (v.breach ? "true" : "false")
        << ", \"detail\": \"" << json_escape(v.detail) << "\"}";
    first = false;
  }
  out << "\n  ],\n  \"breaches\": " << breaches_
      << ",\n  \"violating_windows\": " << violating_windows_ << "\n}\n";
  return out.str();
}

}  // namespace sedspec::obs
