#include "trace/packets.h"

#include "common/decode.h"

namespace sedspec::trace {

std::vector<TraceEvent> decode(std::span<const uint8_t> bytes) {
  std::vector<TraceEvent> events;
  ByteReader reader(bytes);
  while (!reader.done()) {
    const uint8_t op = reader.u8();
    switch (op) {
      case kOpPge: {
        TraceEvent e;
        e.kind = EventKind::kPge;
        e.addr = reader.u64();
        events.push_back(e);
        break;
      }
      case kOpPgd: {
        events.push_back(TraceEvent{EventKind::kPgd, 0, false});
        break;
      }
      case kOpTip: {
        TraceEvent e;
        e.kind = EventKind::kTip;
        e.addr = reader.u64();
        events.push_back(e);
        break;
      }
      case kOpTnt: {
        const uint8_t header = reader.u8();
        SEDSPEC_CHECK_DECODE(header != 0, "empty TNT packet");
        // Highest set bit is the stop marker; bits below it are outcomes,
        // LSB = oldest branch.
        int stop = 7;
        while (((header >> stop) & 1u) == 0) {
          --stop;
        }
        for (int i = 0; i < stop; ++i) {
          events.push_back(
              TraceEvent{EventKind::kTnt, 0, ((header >> i) & 1u) != 0});
        }
        break;
      }
      default:
        SEDSPEC_CHECK_DECODE(false, "unknown trace packet opcode");
    }
  }
  return events;
}

}  // namespace sedspec::trace
