// Sanity tests for the measurement harnesses (no latency model: these only
// validate plumbing, not the figures).
#include <gtest/gtest.h>

#include "benchsim/perf.h"
#include "guest/workload.h"
#include "statelog/statelog.h"

namespace sedspec {
namespace {

TEST(Benchsim, StorageMeasurementProducesSaneNumbers) {
  auto wl = guest::make_workload("scsi-esp");
  const auto point = benchsim::measure_storage(*wl, 4096, 16384);
  EXPECT_EQ(point.block_bytes, 4096u);
  EXPECT_GT(point.write_mbps, 0.0);
  EXPECT_GT(point.read_mbps, 0.0);
  EXPECT_GT(point.write_latency_us, 0.0);
  EXPECT_GT(point.read_latency_us, 0.0);
}

TEST(Benchsim, StorageMeasurementRejectsNonStorage) {
  auto wl = guest::make_workload("pcnet");
  EXPECT_THROW((void)benchsim::measure_storage(*wl, 4096, 16384),
               std::logic_error);
}

TEST(Benchsim, PcnetBandwidthAndPingProduceSaneNumbers) {
  const auto bw = benchsim::measure_pcnet_bandwidth(false, 50);
  EXPECT_GT(bw.tcp_up_mbps, 0.0);
  EXPECT_GT(bw.tcp_down_mbps, 0.0);
  EXPECT_GT(bw.udp_up_mbps, 0.0);
  EXPECT_GT(bw.udp_down_mbps, 0.0);
  EXPECT_GT(benchsim::measure_pcnet_ping(false, 10), 0.0);
}

TEST(TextDumps, SpecAndLogRenderWithoutBlowingUp) {
  auto wl = guest::make_workload("fdc");
  const auto collected =
      pipeline::collect(wl->device(), [&] { wl->training(); });
  const auto cfg = pipeline::construct(wl->device(), collected);

  const std::string spec_text = cfg.to_text(wl->device().program());
  EXPECT_NE(spec_text.find("ES-CFG for fdc"), std::string::npos);
  EXPECT_NE(spec_text.find("command access table"), std::string::npos);
  EXPECT_NE(spec_text.find("data_pos"), std::string::npos);

  const std::string log_text =
      statelog::to_text(collected.log, wl->device().program());
  EXPECT_NE(log_text.find("round"), std::string::npos);
  EXPECT_NE(log_text.find("branch"), std::string::npos);
}

}  // namespace
}  // namespace sedspec
