// ControlPlane end-to-end: canaried promotion, shadow-mode safety, metric
// guardrails, crash recovery, retry/backoff on the spec-distribution
// channel, and publish/pin races under the rollout engine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "control/control_plane.h"
#include "guest/exploits.h"
#include "guest/workload.h"
#include "obs/metrics.h"
#include "sedspec/pipeline.h"
#include "spec/serial.h"

namespace sedspec {
namespace {

using control::ControlPlane;
using control::RolloutConfig;
using control::RolloutState;
using control::StageVerdict;

spec::EsCfg build_fdc_spec() {
  auto w = guest::make_workload("fdc");
  return pipeline::build_spec(w->device(), [&] { w->training(); });
}

/// A deliberately over-tight candidate: trained on a tiny slice of the
/// benign mix, so ordinary traffic hits untrained keys and the candidate
/// flags rounds the real baseline passes — the would-be-false-positive
/// signature the shadow stage must catch.
spec::EsCfg build_undertrained_fdc_spec() {
  auto w = guest::make_workload("fdc");
  Rng rng(99);
  return pipeline::build_spec(w->device(), [&] {
    for (int i = 0; i < 2; ++i) {
      w->common_operation(guest::InteractionMode::kSequential, rng);
    }
  });
}

std::vector<enforce::ShardSpec> fdc_fleet(size_t n) {
  std::vector<enforce::ShardSpec> fleet(n);
  for (size_t i = 0; i < n; ++i) {
    fleet[i].device = "fdc";
    fleet[i].seed = 11 + i;
  }
  return fleet;
}

RolloutConfig quick_rollout() {
  RolloutConfig cfg;
  cfg.stage_fractions = {0.5, 1.0};
  cfg.observe_ops = 24;
  cfg.max_stage_retries = 2;
  return cfg;
}

TEST(ControlPlane, GoodCandidatePromotesThroughAllStages) {
  spec::SpecStore active;
  const spec::EsCfg base = build_fdc_spec();
  active.publish(spec::EsCfg(base));

  ControlPlane cp(&active);
  cp.stage_candidate(spec::EsCfg(base));

  const auto out = cp.run_rollout("fdc", fdc_fleet(4), quick_rollout());
  ASSERT_TRUE(out.promoted()) << out.record.reason;
  EXPECT_EQ(active.version_of("fdc"), 2u);  // candidate published
  EXPECT_GT(out.total_ops, 0u);

  // Every window was clean and none saw a shadow block.
  for (const control::WindowRecord& w : out.windows) {
    EXPECT_EQ(w.decision.verdict, StageVerdict::kPromote) << w.decision.reason;
    EXPECT_EQ(w.observation.candidate_blocked, 0u);
  }
  // Stage 0 canaried half the fleet, stage 1 all of it.
  EXPECT_EQ(out.windows[0].observation.shadow_shards, 2u);
  EXPECT_EQ(out.windows[1].observation.shadow_shards, 4u);

  // The journal walked the full state machine, ending terminal.
  std::vector<RolloutState> states;
  for (const auto& bytes : cp.journal()) {
    control::RolloutRecord rec;
    ASSERT_TRUE(control::RolloutRecord::load(bytes, rec).ok());
    states.push_back(rec.state);
  }
  const std::vector<RolloutState> expect{
      RolloutState::kStaging, RolloutState::kShadow, RolloutState::kShadow,
      RolloutState::kPromoting, RolloutState::kActive};
  EXPECT_EQ(states, expect);
}

TEST(ControlPlane, OverTightCandidateRollsBackInShadow) {
  spec::SpecStore active;
  const spec::EsCfg base = build_fdc_spec();
  const std::vector<uint8_t> base_bytes = spec::serialize(base);
  active.publish(spec::EsCfg(base));

  ControlPlane cp(&active);
  cp.stage_candidate(build_undertrained_fdc_spec());

  const auto out = cp.run_rollout("fdc", fdc_fleet(4), quick_rollout());
  ASSERT_FALSE(out.promoted());
  EXPECT_EQ(out.record.state, RolloutState::kRolledBack);
  EXPECT_EQ(out.windows.back().decision.verdict, StageVerdict::kRollback);
  // The candidate flagged benign rounds the baseline passed...
  EXPECT_GT(out.windows.back().observation.would_block, 0u);
  // ...but, being a shadow, never once blocked the I/O itself.
  for (const control::WindowRecord& w : out.windows) {
    EXPECT_EQ(w.observation.candidate_blocked, 0u);
  }
  // Baseline untouched and still the active spec, byte for byte.
  EXPECT_EQ(active.version_of("fdc"), 1u);
  EXPECT_EQ(spec::serialize(active.current("fdc")->cfg), base_bytes);
}

TEST(ControlPlane, ShadowCandidateNeverBlocksBenignTraffic) {
  // Drive the enforcement service directly with an over-tight shadow
  // candidate: the candidate must record findings without ever vetoing.
  spec::SpecStore active;
  active.publish(build_fdc_spec());
  spec::SpecStore candidates;
  candidates.publish(build_undertrained_fdc_spec());

  enforce::ServiceConfig svc;
  svc.candidate_store = &candidates;
  auto fleet = fdc_fleet(2);
  for (auto& s : fleet) {
    s.ops = 200;
    s.shadow_candidate = true;
  }
  enforce::EnforcementService service(&active, svc);
  const enforce::RunReport report = service.run(fleet);
  ASSERT_TRUE(report.ok());

  EXPECT_GT(report.total_shadow_would_block, 0u);  // candidate disagreed...
  EXPECT_EQ(report.shadow_fleet.blocked, 0u);      // ...but never blocked
  EXPECT_EQ(report.fleet.blocked, 0u);             // active spec stayed clean
  EXPECT_GT(report.shadow_fleet.rounds, 0u);
  for (const auto& s : report.shards) {
    EXPECT_EQ(s.shadow_spec_version, 1u);
    EXPECT_EQ(s.ops, 200u);  // every benign op ran to completion
  }
}

TEST(ControlPlane, MetricDelayRetriesThenRollsBackWhenStarved) {
  spec::SpecStore active;
  const spec::EsCfg base = build_fdc_spec();
  active.publish(spec::EsCfg(base));

  ControlPlane cp(&active);
  cp.stage_candidate(spec::EsCfg(base));
  // Starve the feed forever: every window is inconclusive, and the stage
  // must exhaust its retries into a rollback rather than promote blind.
  cp.observe_filter = [](control::StageObservation& o) {
    o.shadow_rounds = 0;
  };
  const auto out = cp.run_rollout("fdc", fdc_fleet(2), quick_rollout());
  EXPECT_EQ(out.record.state, RolloutState::kRolledBack);
  EXPECT_EQ(out.windows.size(), 3u);  // 1 + max_stage_retries windows
  for (const auto& w : out.windows) {
    EXPECT_EQ(w.decision.verdict, StageVerdict::kRetry);
  }
  EXPECT_EQ(active.version_of("fdc"), 1u);
}

TEST(ControlPlane, CrashResumeFromEveryJournalPrefixEndsTerminal) {
  const spec::EsCfg base = build_fdc_spec();
  const std::vector<uint8_t> base_bytes = spec::serialize(base);

  // Run one full promoting rollout to gather a realistic journal.
  spec::SpecStore first_store;
  first_store.publish(spec::EsCfg(base));
  ControlPlane first(&first_store);
  first.stage_candidate(spec::EsCfg(base));
  ASSERT_TRUE(first.run_rollout("fdc", fdc_fleet(2), quick_rollout())
                  .promoted());

  // Crash-restart against every persisted record: whatever instant the
  // crash hit, recovery must end terminal with the baseline enforcing.
  for (const std::vector<uint8_t>& record : first.journal()) {
    spec::SpecStore store;
    store.publish(spec::EsCfg(base));
    ControlPlane cp(&store);
    const control::ResumeResult r = cp.resume(record);
    ASSERT_TRUE(r.load_error.ok());
    EXPECT_TRUE(control::rollout_terminal(r.record.state)) << r.action;

    control::RolloutRecord original;
    ASSERT_TRUE(control::RolloutRecord::load(record, original).ok());
    if (original.state == RolloutState::kPromoting) {
      // The dangerous instant: candidate may or may not have been
      // published. Recovery republishes the embedded baseline.
      EXPECT_TRUE(r.republished_baseline);
      EXPECT_EQ(r.record.state, RolloutState::kRolledBack);
    }
    // Whatever happened, the active spec is the baseline, byte for byte.
    EXPECT_EQ(spec::serialize(store.current("fdc")->cfg), base_bytes);
  }
}

TEST(ControlPlane, TransientFetchFailuresAbsorbedByRetry) {
  spec::SpecStore active;
  const spec::EsCfg base = build_fdc_spec();
  active.publish(spec::EsCfg(base));

  auto failures = std::make_shared<std::atomic<int>>(3);
  enforce::ServiceConfig svc;
  svc.redeploy_backoff_base_us = 5;
  svc.redeploy_backoff_max_us = 50;
  svc.spec_fetch = [failures, &active](const std::string& device,
                                       spec::SnapshotRef& out) {
    if (failures->fetch_sub(1, std::memory_order_relaxed) > 0) {
      spec::LoadError e;
      e.status = spec::LoadStatus::kCrcMismatch;
      e.detail = "transient (injected)";
      return e;
    }
    out = active.current(device);
    return spec::LoadError{};
  };

  const uint64_t retries_before =
      obs::metrics()
          .counter("redeploy_retries_total", obs::label({{"shard", "0"}}))
          .value();

  enforce::EnforcementService service(&active, svc);
  auto fleet = fdc_fleet(1);
  fleet[0].ops = 50;
  const enforce::RunReport report = service.run(fleet);
  ASSERT_TRUE(report.ok()) << report.shards[0].error;

  // All three transient failures were retried through (stat + labeled obs
  // counter), none exhausted the budget, and the shard deployed fine.
  EXPECT_EQ(report.fleet.redeploy_retries, 3u);
  EXPECT_EQ(report.shards[0].redeploy_failures, 0u);
  EXPECT_TRUE(report.shards[0].ended_protected);
  const uint64_t retries_after =
      obs::metrics()
          .counter("redeploy_retries_total", obs::label({{"shard", "0"}}))
          .value();
  EXPECT_EQ(retries_after - retries_before, 3u);
}

TEST(ControlPlane, FetchExhaustionKeepsLastKnownGoodSpec) {
  spec::SpecStore active;
  const spec::EsCfg base = build_fdc_spec();
  active.publish(spec::EsCfg(base));

  // The channel serves the initial deploy, then goes hard-down before the
  // mid-run redeploy triggered at op 60.
  auto served = std::make_shared<std::atomic<int>>(1);
  enforce::ServiceConfig svc;
  svc.spec_poll_ops = 16;
  svc.redeploy_backoff_base_us = 5;
  svc.redeploy_backoff_max_us = 50;
  svc.spec_fetch = [served, &active](const std::string& device,
                                     spec::SnapshotRef& out) {
    if (served->fetch_sub(1, std::memory_order_relaxed) > 0) {
      out = active.current(device);
      return spec::LoadError{};
    }
    spec::LoadError e;
    e.status = spec::LoadStatus::kTooShort;
    e.detail = "channel down (injected)";
    return e;
  };

  auto fleet = fdc_fleet(1);
  fleet[0].ops = 200;
  fleet[0].op_hook = [&active, &base](uint64_t op) {
    if (op == 60) {
      active.publish(spec::EsCfg(base));  // v2 appears mid-run
    }
  };
  enforce::EnforcementService service(&active, svc);
  const enforce::RunReport report = service.run(fleet);
  ASSERT_TRUE(report.ok()) << report.shards[0].error;

  // The redeploy fetch exhausted its retries; the shard stayed pinned on
  // v1 and kept enforcing to the end.
  EXPECT_GE(report.shards[0].redeploy_failures, 1u);
  EXPECT_GT(report.fleet.redeploy_retries, 0u);
  EXPECT_EQ(report.shards[0].final_spec_version, 1u);
  EXPECT_EQ(report.shards[0].redeploys, 0u);
  EXPECT_TRUE(report.shards[0].ended_protected);
  EXPECT_EQ(report.shards[0].ops, 200u);
}

// Publish/pin race: both stores are republished continuously while the
// rollout engine runs shadow windows that pin, poll, and swap snapshots.
// TSan (tsan_concurrency_lane) watches the memory orderings; here we
// assert the engine still lands terminal with coherent results.
TEST(ControlPlaneRaces, PublishPinRaceUnderRolloutEngine) {
  spec::SpecStore active;
  const spec::EsCfg base = build_fdc_spec();
  active.publish(spec::EsCfg(base));

  ControlPlane cp(&active);
  cp.stage_candidate(spec::EsCfg(base));

  std::atomic<bool> stop{false};
  std::thread active_publisher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      active.publish(spec::EsCfg(base));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::thread candidate_publisher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      cp.candidate_store().publish(spec::EsCfg(base));
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  RolloutConfig cfg = quick_rollout();
  cfg.observe_ops = 64;
  const auto out = cp.run_rollout("fdc", fdc_fleet(4), cfg);
  stop.store(true, std::memory_order_release);
  active_publisher.join();
  candidate_publisher.join();

  // Same-content republishes can only produce clean windows: the rollout
  // must end terminal (promoted, given identical bytes) with zero shadow
  // blocks, however the pins and publishes interleaved.
  EXPECT_TRUE(control::rollout_terminal(out.record.state));
  for (const auto& w : out.windows) {
    EXPECT_EQ(w.observation.candidate_blocked, 0u);
  }
  ASSERT_FALSE(cp.journal().empty());
  control::RolloutRecord last;
  ASSERT_TRUE(control::RolloutRecord::load(cp.journal().back(), last).ok());
  EXPECT_TRUE(control::rollout_terminal(last.state));
}

// The acceptance gate from the paper's security table: every CVE exploit
// is still detected/blocked exactly per Table III while a live shadow
// rollout is running in the same process (shared metrics registry, spec
// stores churning, canary checkers deploying).
TEST(ControlPlaneRaces, ExploitMatrixHoldsDuringLiveShadowRollout) {
  struct Outcome {
    std::string cve;
    bool expect_detected;
    bool detected;
  };
  spec::SpecStore active;
  const spec::EsCfg base = build_fdc_spec();
  active.publish(spec::EsCfg(base));

  std::vector<Outcome> outcomes;
  std::atomic<bool> victim_done{false};
  std::thread victim([&] {
    for (const guest::ExploitScenario& sc : guest::exploit_scenarios()) {
      const guest::RunResult r = sc.run(guest::RunMode::kAllStrategies);
      outcomes.push_back({sc.info().cve, sc.info().expect_detected,
                          r.violations[0] + r.violations[1] +
                                  r.violations[2] >
                              0});
    }
    victim_done.store(true, std::memory_order_release);
  });

  uint64_t rollouts = 0;
  do {
    ControlPlane cp(&active);
    cp.stage_candidate(spec::EsCfg(base));
    const auto out = cp.run_rollout("fdc", fdc_fleet(2), quick_rollout());
    EXPECT_TRUE(control::rollout_terminal(out.record.state));
    ++rollouts;
  } while (!victim_done.load(std::memory_order_acquire));
  victim.join();

  EXPECT_GT(rollouts, 0u);
  for (const Outcome& o : outcomes) {
    EXPECT_EQ(o.detected, o.expect_detected)
        << o.cve << " changed detection while a shadow rollout was live";
  }
}

}  // namespace
}  // namespace sedspec
