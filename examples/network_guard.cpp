// network_guard: protect the PCNet NIC of a virtual machine.
//
// Shows SEDSpec on a network device: spec training over loopback and wire
// traffic, live traffic with the checker deployed, and the three PCNet CVE
// exploits replayed against protection mode — each stopped by the strategy
// the paper reports (indirect-jump for CVE-2015-7504, parameter for
// CVE-2015-7512, conditional-jump for the CVE-2016-7909 ring-length DoS).
#include <cstdio>

#include "common/log.h"
#include "guest/exploits.h"
#include "guest/workload.h"

using namespace sedspec;

int main() {
  set_log_level(LogLevel::kOff);

  std::printf("Training + deploying SEDSpec on a (patched) PCNet NIC...\n");
  auto wl = guest::make_workload("pcnet");
  wl->build_and_deploy();
  std::printf("  spec: %zu blocks, %zu state parameters, %zu sync points\n",
              wl->spec().blocks.size(), wl->spec().params.size(),
              wl->spec().sync_locals.size());

  std::printf("\nLive traffic through the checked NIC...\n");
  Rng rng(99);
  VirtualClock clock;
  for (int i = 0; i < 6; ++i) {
    wl->test_case(guest::InteractionMode::kRandom, rng, clock, false);
  }
  std::printf("  %llu I/O rounds checked, %llu warnings, %llu blocked\n",
              (unsigned long long)wl->checker()->stats().rounds,
              (unsigned long long)wl->checker()->stats().warnings,
              (unsigned long long)wl->checker()->stats().blocked);

  std::printf("\nReplaying the PCNet CVE exploits against protection "
              "mode:\n");
  bool all_good = true;
  for (const auto& scenario : guest::exploit_scenarios()) {
    if (scenario.info().device != "pcnet") {
      continue;
    }
    const auto protected_run = scenario.run(guest::RunMode::kAllStrategies);
    const auto unprotected = scenario.run(guest::RunMode::kUnprotected);
    const char* strategy =
        protected_run.violations[0] > 0   ? "parameter check"
        : protected_run.violations[1] > 0 ? "indirect jump check"
        : protected_run.violations[2] > 0 ? "conditional jump check"
                                          : "none";
    std::printf("  %-15s unprotected: %-11s protected: %s (%s)\n",
                scenario.info().cve.c_str(),
                unprotected.compromised ? "compromised" : "?",
                protected_run.compromised ? "COMPROMISED" : "stopped",
                strategy);
    all_good = all_good && unprotected.compromised &&
               !protected_run.compromised && protected_run.blocked;
  }
  std::printf("\n%s\n", all_good ? "all three exploits stopped."
                                 : "UNEXPECTED: an exploit got through!");
  return all_good ? 0 : 1;
}
