// Table II reproduction: false positives over time.
//
// For each device: train + deploy SEDSpec (enhancement mode), then run the
// long-term multi-mode interaction campaign on a virtual clock for 30
// hours, snapshotting cumulative false positives at 10/20/30 hours. All
// traffic is legal; every flagged test case is a false positive, and every
// one traces back to a rare-but-legal operation absent from the training
// mix (paper §VIII: FPs "are exclusively linked to exceedingly rare device
// commands").
#include <cstdio>

#include "benchsim/campaign.h"
#include "guest/workload.h"
#include "common/log.h"
#include "report.h"

namespace {

struct PaperRow {
  const char* device;
  int fp10, fp20, fp30;
};

constexpr PaperRow kPaper[] = {
    {"fdc", 1, 2, 5},      {"usb-ehci", 3, 3, 3}, {"pcnet", 1, 5, 6},
    {"sdhci", 4, 7, 7},    {"scsi-esp", 1, 3, 4},
};

}  // namespace

int main() {
  using namespace sedspec;
  set_log_level(LogLevel::kError);
  bench_report::title("Table II — False Positives Over Time (virtual hours)");
  bench_report::MetricSink sink("table2_false_positives");

  std::printf("%-10s | %8s %8s %8s | %8s %8s %8s | %10s %8s\n", "Device",
              "10h", "20h", "30h", "paper10", "paper20", "paper30", "cases",
              "FPR");
  bench_report::rule();

  uint64_t seed = 5;
  for (const std::string& name : guest::workload_names()) {
    auto wl = guest::make_workload(name);
    checker::CheckerConfig config;
    config.mode = checker::Mode::kEnhancement;
    wl->build_and_deploy(config);
    const auto result = benchsim::run_fp_campaign(
        *wl, /*total_hours=*/30.0, benchsim::default_rare_prob(name),
        seed++, {10.0, 20.0, 30.0});
    const PaperRow* paper = nullptr;
    for (const auto& row : kPaper) {
      if (name == row.device) {
        paper = &row;
      }
    }
    std::printf("%-10s | %8llu %8llu %8llu | %8d %8d %8d | %10llu %7.3f%%\n",
                name.c_str(),
                (unsigned long long)result.snapshots[0].false_positives,
                (unsigned long long)result.snapshots[1].false_positives,
                (unsigned long long)result.snapshots[2].false_positives,
                paper->fp10, paper->fp20, paper->fp30,
                (unsigned long long)result.total_cases, result.fpr() * 100.0);
    sink.put(name + "/fp_10h",
             static_cast<double>(result.snapshots[0].false_positives));
    sink.put(name + "/fp_20h",
             static_cast<double>(result.snapshots[1].false_positives));
    sink.put(name + "/fp_30h",
             static_cast<double>(result.snapshots[2].false_positives));
    sink.put(name + "/fpr_percent", result.fpr() * 100.0);
  }
  bench_report::rule();
  std::printf(
      "Shape check: FP counts stay in the single digits over 30 hours and\n"
      "grow (weakly) with time; FPRs stay in the paper's 0.09%%-0.17%% "
      "band.\n");

  // Per-mode breakdown (the paper runs each interaction mode separately;
  // shorter campaigns here — the per-mode FPRs must all sit in the same
  // band, since rare-command injection is mode-independent).
  std::printf(
      "\nPer-mode false-positive rates (8 virtual hours each; at this scale\n"
      "each campaign expects only ~1 rare operation, so zero cells are\n"
      "ordinary Poisson noise — the point is that no mode is an outlier):\n");
  std::printf("%-10s | %12s %12s %12s\n", "Device", "sequential", "random",
              "random+delay");
  bench_report::rule(56);
  const guest::InteractionMode kModes[] = {
      guest::InteractionMode::kSequential, guest::InteractionMode::kRandom,
      guest::InteractionMode::kRandomWithDelay};
  for (const std::string& name : guest::workload_names()) {
    double fprs[3] = {0, 0, 0};
    for (int m = 0; m < 3; ++m) {
      auto wl = guest::make_workload(name);
      checker::CheckerConfig config;
      config.mode = checker::Mode::kEnhancement;
      wl->build_and_deploy(config);
      const auto r = benchsim::run_fp_campaign(
          *wl, 8.0, benchsim::default_rare_prob(name), seed++, {8.0},
          kModes[m]);
      fprs[m] = r.fpr() * 100.0;
    }
    std::printf("%-10s | %11.3f%% %11.3f%% %11.3f%%\n", name.c_str(), fprs[0],
                fprs[1], fprs[2]);
    sink.put(name + "/mode_fpr/sequential", fprs[0]);
    sink.put(name + "/mode_fpr/random", fprs[1]);
    sink.put(name + "/mode_fpr/random_delay", fprs[2]);
  }
  bench_report::rule(56);
  sink.write_json();
  return 0;
}
