// Long-haul telemetry layer: windowed time-series deltas, the SLO
// burn-rate engine, the flight recorder, Prometheus exposition
// correctness (escaping + family grouping, verified by parsing the text
// back), and histogram merge/quantile edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace sedspec {
namespace {

constexpr uint64_t kMs = 1'000'000;  // ns per ms

// TimeSeries ----------------------------------------------------------------

TEST(ObsTimeSeries, CounterDeltasAndRates) {
  obs::MetricsRegistry reg;
  obs::Counter& ops = reg.counter("ops_total", obs::label({{"shard", "0"}}));

  obs::TimeSeries ts(&reg);
  ops.inc(10);
  const obs::WindowSample& w0 = ts.sample(100 * kMs);
  // First window has no previous timestamp: zero-length, delta vs zero.
  EXPECT_EQ(w0.t_start_ns, w0.t_end_ns);
  const obs::WindowCounter* c0 =
      w0.find_counter("ops_total", obs::label({{"shard", "0"}}));
  ASSERT_NE(c0, nullptr);
  EXPECT_EQ(c0->delta, 10u);
  EXPECT_EQ(c0->rate, 0.0);  // zero-length window, no rate

  ops.inc(50);
  const obs::WindowSample& w1 = ts.sample(200 * kMs);  // 100 ms window
  const obs::WindowCounter* c1 =
      w1.find_counter("ops_total", obs::label({{"shard", "0"}}));
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->delta, 50u);
  EXPECT_DOUBLE_EQ(c1->rate, 500.0);  // 50 / 0.1 s

  // Idle window: delta and rate collapse to zero even though the
  // cumulative counter still reads 60.
  const obs::WindowSample& w2 = ts.sample(300 * kMs);
  const obs::WindowCounter* c2 =
      w2.find_counter("ops_total", obs::label({{"shard", "0"}}));
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c2->delta, 0u);
  EXPECT_EQ(c2->rate, 0.0);
}

TEST(ObsTimeSeries, GaugeValueAndGrowth) {
  obs::MetricsRegistry reg;
  obs::Gauge& rss = reg.gauge("rss_bytes");
  obs::TimeSeries ts(&reg);

  rss.set(1000);
  ts.sample(1 * kMs);
  rss.set(1750);
  const obs::WindowSample& w = ts.sample(2 * kMs);
  const obs::WindowGauge* g = w.find_gauge("rss_bytes", "");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, 1750);
  EXPECT_EQ(g->delta, 750);

  rss.set(1600);  // shrink: growth must go negative, not clamp
  const obs::WindowGauge* g2 = ts.sample(3 * kMs).find_gauge("rss_bytes", "");
  ASSERT_NE(g2, nullptr);
  EXPECT_EQ(g2->delta, -150);
}

TEST(ObsTimeSeries, WindowedHistogramQuantilesIgnoreOldWindows) {
  obs::MetricsRegistry reg;
  obs::Histogram& lat = reg.histogram("check_latency_ns");
  obs::TimeSeries ts(&reg);

  // Window 0: a slow regime (values ~64k).
  for (int i = 0; i < 100; ++i) {
    lat.record(60'000);
  }
  const obs::WindowSample& w0 = ts.sample(100 * kMs);
  const obs::WindowHistogram* h0 = w0.find_histogram("check_latency_ns", "");
  ASSERT_NE(h0, nullptr);
  EXPECT_EQ(h0->count, 100u);
  EXPECT_GE(h0->p99, 60'000u);

  // Window 1: fast regime. The cumulative histogram still holds the slow
  // samples, but the WINDOW p99 must reflect only this window's deltas.
  for (int i = 0; i < 100; ++i) {
    lat.record(100);
  }
  const obs::WindowSample& w1 = ts.sample(200 * kMs);
  const obs::WindowHistogram* h1 = w1.find_histogram("check_latency_ns", "");
  ASSERT_NE(h1, nullptr);
  EXPECT_EQ(h1->count, 100u);
  EXPECT_LT(h1->p99, 1000u);
  // Cumulative p99 over the same registry would still see the slow regime.
  EXPECT_GE(lat.p99(), 60'000u);
}

TEST(ObsTimeSeries, RingEvictsButAggregatesCoverWholeRun) {
  obs::MetricsRegistry reg;
  obs::Counter& ops = reg.counter("ops_total");
  obs::TimeSeriesConfig cfg;
  cfg.window_capacity = 4;
  obs::TimeSeries ts(&reg, cfg);

  for (uint64_t i = 0; i < 10; ++i) {
    ops.inc(i);  // window i has delta i
    ts.sample((i + 1) * 100 * kMs);
  }
  EXPECT_EQ(ts.total_windows(), 10u);
  EXPECT_EQ(ts.size(), 4u);          // ring bounded
  EXPECT_EQ(ts.window(0).index, 6u); // oldest retained
  EXPECT_EQ(ts.latest().index, 9u);

  // Aggregates fold every window ever closed, not just the retained ring.
  const obs::SeriesAggregate* agg = ts.find_aggregate("ops_total{}.delta");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->windows, 10u);
  EXPECT_EQ(agg->min, 0.0);
  EXPECT_EQ(agg->max, 9.0);
  EXPECT_DOUBLE_EQ(agg->sum, 45.0);
  EXPECT_DOUBLE_EQ(agg->mean(), 4.5);
}

TEST(ObsTimeSeries, MergedHistogramSpansShardLabels) {
  obs::MetricsRegistry reg;
  reg.histogram("lat", obs::label({{"shard", "0"}})).record(10);
  reg.histogram("lat", obs::label({{"shard", "1"}})).record(1'000'000);
  obs::TimeSeries ts(&reg);
  const obs::WindowSample& w = ts.sample(kMs);

  std::optional<obs::WindowHistogram> merged = w.merged_histogram("lat");
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->count, 2u);
  EXPECT_GE(merged->p99, 1'000'000u);  // tail from shard 1 visible
  EXPECT_FALSE(w.merged_histogram("no_such_metric").has_value());
}

TEST(ObsTimeSeries, ExportParsesBack) {
  obs::MetricsRegistry reg;
  reg.counter("ops_total", obs::label({{"shard", "0"}})).inc(7);
  reg.gauge("rss_bytes").set(4096);
  reg.histogram("lat").record(123);
  obs::TimeSeries ts(&reg);
  ts.sample(100 * kMs);
  ts.sample(200 * kMs);

  const obs::JsonValue doc = obs::json_parse(ts.to_json());
  ASSERT_TRUE(doc.is_object());
  const obs::JsonValue* windows = doc.find("windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_TRUE(windows->is_array());
  ASSERT_EQ(windows->array.size(), 2u);
  const obs::JsonValue* counters = windows->array[1].find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->array.size(), 1u);
  EXPECT_EQ(counters->array[0].find("name")->str, "ops_total");
  const obs::JsonValue* aggs = doc.find("aggregates");
  ASSERT_NE(aggs, nullptr);
  EXPECT_TRUE(aggs->is_object());
  EXPECT_NE(aggs->find("lat{}.p99"), nullptr);
}

// SLO engine ----------------------------------------------------------------

TEST(ObsSlo, FastSpikeAloneDoesNotBreachSlowHorizon) {
  obs::MetricsRegistry reg;
  obs::Counter& drops = reg.counter("drops_total");
  obs::TimeSeries ts(&reg);

  obs::SloEngine engine;
  obs::SloSpec spec;
  spec.name = "no-drops";
  spec.kind = obs::SloKind::kCounterRateMax;
  spec.metric = "drops_total";
  spec.threshold = 0.0;  // any drop at all violates the window
  spec.fast_windows = 1;
  spec.slow_windows = 4;
  spec.budget = 0.5;  // up to half the slow horizon may violate
  engine.add(spec);

  // Four clean windows warm the slow horizon up.
  uint64_t t = 0;
  for (int i = 0; i < 4; ++i) {
    t += 100 * kMs;
    auto verdicts = engine.evaluate(ts.sample(t));
    EXPECT_FALSE(verdicts[0].violating);
    EXPECT_FALSE(verdicts[0].breach);
  }

  // One violating window: the fast horizon burns (1/1 / 0.5 = 2) but the
  // slow horizon is still within budget (1/4 / 0.5 = 0.5 < 1) — no page.
  drops.inc(5);
  t += 100 * kMs;
  auto v1 = engine.evaluate(ts.sample(t));
  EXPECT_TRUE(v1[0].violating);
  EXPECT_GE(v1[0].fast_burn, 1.0);
  EXPECT_LT(v1[0].slow_burn, 1.0);
  EXPECT_FALSE(v1[0].breach);
  EXPECT_EQ(engine.breaches(), 0u);

  // A second consecutive violating window pushes the slow horizon to
  // 2/4 / 0.5 = 1.0 — now it is a sustained burn and breaches.
  drops.inc(5);
  t += 100 * kMs;
  auto v2 = engine.evaluate(ts.sample(t));
  EXPECT_TRUE(v2[0].breach);
  EXPECT_EQ(engine.breaches(), 1u);
  EXPECT_EQ(engine.violating_windows(), 2u);
}

TEST(ObsSlo, HistogramQuantileObjectiveMergesShards) {
  obs::MetricsRegistry reg;
  obs::TimeSeries ts(&reg);
  obs::Histogram& s0 = reg.histogram("lat", obs::label({{"shard", "0"}}));
  obs::Histogram& s1 = reg.histogram("lat", obs::label({{"shard", "1"}}));

  obs::SloEngine engine;
  obs::SloSpec spec;
  spec.name = "lat-p99";
  spec.kind = obs::SloKind::kHistogramQuantileMax;
  spec.metric = "lat";  // empty labels: merge all shards
  spec.quantile = 0.99;
  spec.threshold = 10'000.0;
  spec.slow_windows = 1;
  engine.add(spec);

  for (int i = 0; i < 50; ++i) {
    s0.record(100);
    s1.record(120);
  }
  auto ok = engine.evaluate(ts.sample(100 * kMs));
  EXPECT_FALSE(ok[0].violating);

  // One shard's tail blows the merged p99 past the objective.
  for (int i = 0; i < 50; ++i) {
    s1.record(5'000'000);
  }
  auto bad = engine.evaluate(ts.sample(200 * kMs));
  EXPECT_TRUE(bad[0].violating);
  EXPECT_GT(bad[0].value, 10'000.0);
  EXPECT_TRUE(bad[0].breach);  // slow_windows=1: sustained by definition
}

TEST(ObsSlo, GaugeGrowthObjectiveAndBreachTraceEvent) {
  obs::MetricsRegistry reg;
  obs::Gauge& rss = reg.gauge("rss_bytes");
  obs::TimeSeries ts(&reg);

  obs::EventTracer tracer(64);
  obs::set_tracer(&tracer);

  obs::SloEngine engine;
  obs::SloSpec spec;
  spec.name = "rss-growth";
  spec.kind = obs::SloKind::kGaugeGrowthMax;
  spec.metric = "rss_bytes";
  spec.threshold = 1000.0;  // bytes per window
  spec.slow_windows = 1;
  engine.add(spec);

  rss.set(10'000);
  engine.evaluate(ts.sample(100 * kMs));
  rss.set(10'500);  // +500: inside the objective
  EXPECT_FALSE(engine.evaluate(ts.sample(200 * kMs))[0].violating);
  rss.set(20'000);  // +9500: leak-like growth
  EXPECT_TRUE(engine.evaluate(ts.sample(300 * kMs))[0].breach);

  // The breach must surface in the trace stream for the flight recorder /
  // control plane to see.
  bool saw_breach = false;
  for (const obs::TraceEvent& e : tracer.snapshot()) {
    if (e.type == obs::EventType::kSloBreach &&
        tracer.string_at(e.detail) == "rss-growth") {
      saw_breach = true;
    }
  }
  EXPECT_TRUE(saw_breach);
  obs::set_tracer(nullptr);
}

// Flight recorder -----------------------------------------------------------

TEST(ObsFlight, DumpFreezesRingAndDedupsWithinEpoch) {
  obs::FlightConfig cfg;
  cfg.shard_ring_capacity = 8;
  cfg.max_bundles = 4;
  obs::FlightRecorder flight(2, cfg);
  flight.set_context_provider([] {
    return std::string("{\"window\": 41}");
  });

  obs::EventTracer& ring = flight.shard_ring(0);
  ring.record(obs::EventType::kViolation, "round", "fdc", "ShadowCheck",
              /*a=*/0x3f2, /*b=*/7);

  flight.set_epoch(41);
  EXPECT_TRUE(flight.dump(obs::FlightTrigger::kViolation, 0, "fdc"));
  // Same (shard, trigger) in the same epoch: a violation storm must not
  // produce a bundle per report.
  EXPECT_FALSE(flight.dump(obs::FlightTrigger::kViolation, 0, "fdc"));
  // Different trigger or different shard still records.
  EXPECT_TRUE(flight.dump(obs::FlightTrigger::kQuarantine, 0, "fdc"));
  EXPECT_TRUE(flight.dump(obs::FlightTrigger::kViolation, 1, "usb-ehci"));
  // Next window reopens the (shard, trigger) slot.
  flight.set_epoch(42);
  EXPECT_TRUE(flight.dump(obs::FlightTrigger::kViolation, 0, "fdc"));

  EXPECT_EQ(flight.dumps(), 4u);
  EXPECT_EQ(flight.suppressed(), 1u);

  std::vector<obs::FlightBundle> bundles = flight.bundles();
  ASSERT_EQ(bundles.size(), 4u);
  const obs::FlightBundle& b = bundles.front();
  EXPECT_EQ(b.trigger, obs::FlightTrigger::kViolation);
  EXPECT_EQ(b.shard, 0u);
  EXPECT_EQ(b.epoch, 41u);
  ASSERT_EQ(b.events.size(), 1u);
  EXPECT_EQ(b.events[0].type, "violation");
  EXPECT_EQ(b.events[0].detail, "ShadowCheck");
  EXPECT_EQ(b.events[0].a, 0x3f2u);
}

TEST(ObsFlight, BundleJsonIsSelfContainedAndParsesBack) {
  obs::FlightRecorder flight(1);
  flight.set_context_provider([] {
    return std::string(
        "{\"window\": 7, \"slo\": {\"name\": \"lat-p99\", \"value\": 123}}");
  });
  flight.shard_ring(0).record(obs::EventType::kQuarantine, "contain", "sdhci",
                              "fail_closed");
  flight.set_epoch(7);
  ASSERT_TRUE(flight.dump(obs::FlightTrigger::kSloBreach, 0, "lat-p99"));

  const obs::JsonValue doc = obs::json_parse(flight.to_json());
  ASSERT_TRUE(doc.is_object());
  const obs::JsonValue* bundles = doc.find("bundles");
  ASSERT_NE(bundles, nullptr);
  ASSERT_EQ(bundles->array.size(), 1u);
  const obs::JsonValue& b = bundles->array[0];
  EXPECT_EQ(b.find("trigger")->str, "slo_breach");
  EXPECT_EQ(b.find("reason")->str, "lat-p99");
  EXPECT_EQ(b.find("epoch")->number, 7.0);
  // Embedded metrics + context are nested JSON, not strings: the bundle
  // must be explorable without a second parse.
  const obs::JsonValue* metrics = b.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(metrics->is_object());
  const obs::JsonValue* ctx = b.find("context");
  ASSERT_NE(ctx, nullptr);
  ASSERT_TRUE(ctx->is_object());
  EXPECT_EQ(ctx->find("slo")->find("name")->str, "lat-p99");
  const obs::JsonValue* events = b.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  EXPECT_EQ(events->array[0].find("type")->str, "quarantine");
}

TEST(ObsFlight, BundleRetentionIsBounded) {
  obs::FlightConfig cfg;
  cfg.max_bundles = 3;
  obs::FlightRecorder flight(1, cfg);
  for (uint64_t epoch = 0; epoch < 10; ++epoch) {
    flight.set_epoch(epoch);
    ASSERT_TRUE(flight.dump(obs::FlightTrigger::kManual, 0, "probe"));
  }
  EXPECT_EQ(flight.dumps(), 10u);
  std::vector<obs::FlightBundle> bundles = flight.bundles();
  ASSERT_EQ(bundles.size(), 3u);  // oldest evicted
  EXPECT_EQ(bundles.front().epoch, 7u);
  EXPECT_EQ(bundles.back().epoch, 9u);
}

// Prometheus exposition -----------------------------------------------------

/// Minimal exposition-format reader: validates overall line structure,
/// unescapes label values, and records family-header order. This is the
/// parse-back check for the emitter — a scrape consumer's view.
struct PromSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;  // unescaped
};

bool prom_parse(const std::string& text, std::vector<PromSample>& samples,
                std::vector<std::string>& type_headers,
                std::vector<std::string>& help_headers) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      type_headers.push_back(line.substr(7, line.find(' ', 7) - 7));
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) {
      help_headers.push_back(line.substr(7, line.find(' ', 7) - 7));
      continue;
    }
    if (line[0] == '#') {
      continue;
    }
    PromSample s;
    size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') {
      s.name += line[i++];
    }
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::string key;
        while (i < line.size() && line[i] != '=') {
          key += line[i++];
        }
        if (i + 1 >= line.size() || line[i + 1] != '"') {
          return false;  // malformed: value must be quoted
        }
        i += 2;  // skip ="
        std::string value;
        bool closed = false;
        while (i < line.size()) {
          const char c = line[i];
          if (c == '\\') {
            if (i + 1 >= line.size()) {
              return false;  // dangling escape
            }
            const char esc = line[i + 1];
            if (esc == '\\') {
              value += '\\';
            } else if (esc == '"') {
              value += '"';
            } else if (esc == 'n') {
              value += '\n';
            } else {
              return false;  // unknown escape
            }
            i += 2;
            continue;
          }
          if (c == '"') {
            closed = true;
            ++i;
            break;
          }
          value += c;
          ++i;
        }
        if (!closed) {
          return false;  // unterminated label value (raw newline leaked?)
        }
        s.labels.emplace_back(std::move(key), std::move(value));
        if (i < line.size() && line[i] == ',') {
          ++i;
        }
      }
      if (i >= line.size() || line[i] != '}') {
        return false;
      }
      ++i;
    }
    if (i >= line.size() || line[i] != ' ') {
      return false;  // a sample line must carry a value
    }
    samples.push_back(std::move(s));
  }
  return true;
}

TEST(ObsPrometheus, LabelValuesAreEscapedAndRoundTrip) {
  obs::MetricsRegistry reg;
  const std::string hostile = "qu\"ote\\slash\nnewline";
  reg.counter("weird_total", obs::label({{"path", hostile}})).inc(3);

  const std::string text = reg.to_prometheus();
  // The raw newline must not survive into the exposition: every sample
  // line must parse on its own.
  std::vector<PromSample> samples;
  std::vector<std::string> types, helps;
  ASSERT_TRUE(prom_parse(text, samples, types, helps)) << text;
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "sedspec_weird_total");
  ASSERT_EQ(samples[0].labels.size(), 1u);
  EXPECT_EQ(samples[0].labels[0].first, "path");
  // Unescaping on the consumer side recovers the original bytes.
  EXPECT_EQ(samples[0].labels[0].second, hostile);
}

TEST(ObsPrometheus, FamilyHeadersEmittedOncePerInterleavedSeries) {
  obs::MetricsRegistry reg;
  // Two families whose labeled series would interleave if the exposition
  // sorted on the full key without family grouping.
  for (const char* shard : {"0", "1", "2"}) {
    reg.counter("checked_total", obs::label({{"shard", shard}})).inc(1);
    reg.histogram("lat_ns", obs::label({{"shard", shard}})).record(100);
  }
  reg.set_help("checked_total", "Rounds checked.");

  std::vector<PromSample> samples;
  std::vector<std::string> types, helps;
  ASSERT_TRUE(prom_parse(reg.to_prometheus(), samples, types, helps));

  auto count_of = [](const std::vector<std::string>& v, const std::string& s) {
    size_t n = 0;
    for (const std::string& x : v) {
      n += x == s ? 1 : 0;
    }
    return n;
  };
  // One TYPE header per family despite three labeled series each.
  EXPECT_EQ(count_of(types, "sedspec_checked_total"), 1u);
  EXPECT_EQ(count_of(types, "sedspec_lat_ns"), 1u);
  EXPECT_EQ(count_of(types, "sedspec_lat_ns_max"), 1u);
  EXPECT_EQ(count_of(helps, "sedspec_checked_total"), 1u);

  // All of a family's samples are contiguous: once a family's name stops
  // appearing, it never reappears later in the stream. A summary family
  // owns its _sum/_count samples (they carry no TYPE of their own), so
  // fold those back onto the base family before checking contiguity.
  auto family_of = [&types](const std::string& name) {
    for (const std::string suffix : {"_sum", "_count"}) {
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        std::string base = name.substr(0, name.size() - suffix.size());
        if (std::find(types.begin(), types.end(), base) != types.end()) {
          return base;
        }
      }
    }
    return name;
  };
  std::vector<std::string> family_order;
  for (const PromSample& s : samples) {
    std::string fam = family_of(s.name);
    if (family_order.empty() || family_order.back() != fam) {
      family_order.push_back(std::move(fam));
    }
  }
  for (size_t i = 0; i < family_order.size(); ++i) {
    for (size_t j = i + 1; j < family_order.size(); ++j) {
      EXPECT_NE(family_order[i], family_order[j])
          << "family " << family_order[i] << " split into non-contiguous runs";
    }
  }
}

// Histogram edges -----------------------------------------------------------

TEST(ObsHistogramEdge, MergeOfEmptyWindowYieldsZeroQuantiles) {
  obs::MetricsRegistry reg;
  reg.histogram("lat", obs::label({{"shard", "0"}}));  // registered, no data
  reg.histogram("lat", obs::label({{"shard", "1"}}));
  obs::TimeSeries ts(&reg);
  const obs::WindowSample& w = ts.sample(kMs);
  std::optional<obs::WindowHistogram> merged = w.merged_histogram("lat");
  ASSERT_TRUE(merged.has_value());  // series exist, just empty
  EXPECT_EQ(merged->count, 0u);
  EXPECT_EQ(merged->p50, 0u);
  EXPECT_EQ(merged->p999, 0u);
}

TEST(ObsHistogramEdge, SingleBucketSaturationCollapsesAllQuantiles) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat");
  for (int i = 0; i < 1000; ++i) {
    h.record(777);  // one bucket, and max pins the real upper bound
  }
  obs::TimeSeries ts(&reg);
  const obs::WindowHistogram* wh =
      ts.sample(kMs).find_histogram("lat", "");
  ASSERT_NE(wh, nullptr);
  // All mass in one bucket: every quantile resolves to the same clamped
  // bound, and the cumulative max (777) tightens the log2 upper edge
  // (1023).
  EXPECT_EQ(wh->p50, 777u);
  EXPECT_EQ(wh->p90, 777u);
  EXPECT_EQ(wh->p99, 777u);
  EXPECT_EQ(wh->p999, 777u);
}

TEST(ObsHistogramEdge, SparseTailOnlyShowsAtP999) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat");
  for (int i = 0; i < 1996; ++i) {
    h.record(100);
  }
  for (int i = 0; i < 4; ++i) {
    h.record(1 << 20);  // 4 of 2000 = 0.2% tail: past the nearest-rank
                        // p99.9 target (1998), invisible to p99 (1980)
  }
  obs::TimeSeries ts(&reg);
  const obs::WindowHistogram* wh =
      ts.sample(kMs).find_histogram("lat", "");
  ASSERT_NE(wh, nullptr);
  EXPECT_LT(wh->p99, 1000u);          // p99 blind to a 0.1% tail
  EXPECT_GE(wh->p999, uint64_t{1} << 20);  // p99.9 sees it
}

TEST(ObsHistogramEdge, TopBucketOverflowSaturatesNotWraps) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat");
  h.record(~uint64_t{0});  // lands in the final log2 bucket
  obs::TimeSeries ts(&reg);
  const obs::WindowHistogram* wh =
      ts.sample(kMs).find_histogram("lat", "");
  ASSERT_NE(wh, nullptr);
  EXPECT_EQ(wh->count, 1u);
  EXPECT_EQ(wh->max_bound, ~uint64_t{0});
  EXPECT_EQ(wh->p999, ~uint64_t{0});
  // window_percentile with an empty delta array stays at zero.
  uint64_t empty[obs::Histogram::kBuckets] = {};
  EXPECT_EQ(obs::window_percentile(empty, 0, 0, 0.999), 0u);
}

}  // namespace
}  // namespace sedspec
