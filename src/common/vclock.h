// Virtual clock for long-duration campaigns.
//
// The paper's false-positive study runs each interaction mode for 10/20/30
// wall-clock hours. We substitute a virtual clock: every simulated test case
// advances it by a realistic duration, and campaigns run until the virtual
// clock reaches the target. FP counts depend on the number and mix of test
// cases, not on real elapsed time, so the substitution preserves the result
// shape (see DESIGN.md §1).
#pragma once

#include <cstdint>

namespace sedspec {

/// Monotonic virtual time in microseconds.
class VirtualClock {
 public:
  using Micros = uint64_t;

  static constexpr Micros kMicrosPerSecond = 1'000'000ULL;
  static constexpr Micros kMicrosPerHour = 3'600ULL * kMicrosPerSecond;

  [[nodiscard]] Micros now() const { return now_; }
  [[nodiscard]] double hours() const {
    return static_cast<double>(now_) / static_cast<double>(kMicrosPerHour);
  }

  void advance(Micros delta) { now_ += delta; }
  void advance_seconds(double seconds) {
    now_ += static_cast<Micros>(seconds * kMicrosPerSecond);
  }

  void reset() { now_ = 0; }

 private:
  Micros now_ = 0;
};

}  // namespace sedspec
