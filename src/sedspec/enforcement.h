// EnforcementService — concurrent multi-VM runtime protection.
//
// The paper evaluates one ES-Checker guarding one emulated device; a real
// hypervisor host runs many VMs, each with its own device instances, all
// protected at once. This layer models that deployment:
//
//   - A shared SpecStore holds the current immutable ES-CFG snapshot per
//     device type (copy-on-write redeploy, see spec/spec_store.h).
//   - Each *shard* is one VM's device: its own DeviceWorkload (device, bus,
//     guest memory, driver model), its own EsChecker + shadow StateArena,
//     driven by its own thread. Nothing mutable is shared between shards —
//     the single-threaded discipline is enforced with IoBus owner binding.
//   - Shards pin the snapshot they deployed; every `spec_poll_ops`
//     operations they poll the store and, on a version change, build a
//     fresh checker from the new snapshot and swap it in *between* guest
//     operations. The old snapshot dies with the old checker.
//   - Violation/containment reports flow through one bounded lock-free
//     ReportQueue (checker/report_queue.h) to a consumer thread; the check
//     hot path never blocks on reporting.
//
// See DESIGN.md §9 for the full concurrency model.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "checker/checker.h"
#include "checker/report_queue.h"
#include "control/policy.h"
#include "guest/workload.h"
#include "spec/spec_store.h"
#include "vdev/bus.h"

namespace sedspec::obs {
class FlightRecorder;
}  // namespace sedspec::obs

namespace sedspec::enforce {

/// One VM's protected device shard.
struct ShardSpec {
  std::string device;  // workload name (guest::workload_names())
  uint64_t ops = 1000;  // benign common operations to drive
  uint64_t seed = 1;    // per-shard deterministic RNG seed
  guest::InteractionMode mode = guest::InteractionMode::kSequential;
  checker::CheckerConfig checker;  // metrics_label defaults to device#shard
  /// VM identity for policy inheritance (tenant → VM → device). Empty
  /// defaults to "vm<shard_id>".
  std::string vm;
  /// The VM owner opted out of enforcement. Honored ONLY while no policy
  /// layer sets the `enforce` bit for this device — the tighten-only
  /// model lets the fleet override this with one write.
  bool unprotected = false;
  /// Canary shard: additionally evaluate the candidate spec (from
  /// ServiceConfig::candidate_store) in shadow mode — monitor-only, its
  /// verdicts are recorded in ShardResult::shadow_* but never block.
  bool shadow_candidate = false;
  /// Fault-injection seam (control-plane campaign): called before every
  /// guest operation with the operation index; throwing models a shard
  /// crash mid-window (captured in ShardResult::error, never escapes).
  std::function<void(uint64_t op)> op_hook;
  /// Live-checker seam (soak/fault-burst harness): invoked with the
  /// currently installed active checker right after every (re)deploy and
  /// at every spec-poll boundary. Redeploys swap checkers — per-checker
  /// state like fault hooks does not survive the swap — so a burst
  /// scheduler uses this to (re)arm whatever checker is live. Runs on the
  /// shard thread, strictly between guest operations.
  std::function<void(uint64_t op, checker::EsChecker& active)> checker_hook;
};

struct ServiceConfig {
  size_t report_queue_capacity = 1024;
  /// Poll the store for a newer spec every N operations (0 = never).
  /// Policy-version polling rides the same cadence.
  uint64_t spec_poll_ops = 64;
  /// Bind each shard's bus (and DMA engine) to its thread and count
  /// cross-thread accesses (tests assert the count stays zero).
  bool bind_bus_owners = true;
  /// Per-access VM-exit cost and how it is paid (see IoBus). Throughput
  /// scaling runs use kSleep so shards overlap their I/O waits.
  uint64_t bus_access_latency_ns = 0;
  IoBus::LatencyModel latency_model = IoBus::LatencyModel::kSpin;

  /// Candidate-spec store for shadow-mode canaries (nullptr = no shadow).
  /// Shards with shadow_candidate pin the candidate snapshot for their
  /// device alongside the active one.
  spec::SpecStore* candidate_store = nullptr;

  /// Tighten-only policy hierarchy (nullptr = no policy layer). Effective
  /// bits are applied to every checker config at deploy time and re-polled
  /// with the spec version, so one policy write redeploys the fleet.
  const control::PolicyTree* policy = nullptr;

  /// Spec distribution seam: how a shard fetches the current snapshot for
  /// a device. Default (unset) reads the store directly and cannot fail;
  /// a control plane (or fault injector) models the distribution channel
  /// here — transient LoadErrors are retried with bounded exponential
  /// backoff + jitter, counted in CheckerStats::redeploy_retries and the
  /// `redeploy_retries_total{shard}` obs counter. A fetch that still
  /// fails after redeploy_max_retries leaves the shard on its pinned
  /// last-known-good snapshot (ShardResult::redeploy_failures).
  using SpecFetcher =
      std::function<spec::LoadError(const std::string& device,
                                    spec::SnapshotRef& out)>;
  SpecFetcher spec_fetch;
  uint32_t redeploy_max_retries = 4;
  uint64_t redeploy_backoff_base_us = 50;
  uint64_t redeploy_backoff_max_us = 2000;

  /// Flight recorder (nullptr = off): each shard's active checker records
  /// its rounds into `flight->shard_ring(shard % shards)`, and the report
  /// consumer freezes an incident bundle when a violation, quarantine, or
  /// degraded-mode report is drained (see obs/flight.h). Must outlive
  /// run().
  obs::FlightRecorder* flight = nullptr;
};

struct ShardResult {
  std::string device;
  uint32_t shard = 0;
  uint64_t ops = 0;        // operations actually driven
  uint64_t redeploys = 0;  // checker swaps after a store version change
  uint64_t redeploy_failures = 0;  // fetch retries exhausted; kept old spec
  uint64_t policy_redeploys = 0;   // checker swaps after a policy write
  uint64_t final_spec_version = 0;
  uint64_t bus_accesses = 0;
  uint64_t bus_owner_violations = 0;
  checker::CheckerStats stats;  // accumulated across redeploy swaps
  /// Shadow-mode candidate accounting (shadow_candidate shards only).
  checker::CheckerStats shadow_stats;
  uint64_t shadow_spec_version = 0;
  /// Rounds where the candidate flagged what the active spec passed — the
  /// would-be-false-positive signal the rollout engine watches.
  uint64_t shadow_would_block = 0;
  /// True when the shard finished with a checker attached (policy may
  /// force this even for unprotected shards).
  bool ended_protected = false;
  std::string error;            // non-empty: the shard thread failed

  [[nodiscard]] bool ok() const { return error.empty(); }
};

struct RunReport {
  std::vector<ShardResult> shards;
  /// Sum of every shard's accumulated CheckerStats.
  checker::CheckerStats fleet;
  /// Sum of every canary shard's shadow-candidate CheckerStats.
  checker::CheckerStats shadow_fleet;
  /// Everything the consumer drained from the report queue, in drain order.
  std::vector<checker::Report> reports;
  uint64_t reports_pushed = 0;
  uint64_t reports_dropped = 0;  // queue-full drops (checker + redeploy)
  uint64_t total_ops = 0;
  uint64_t total_redeploys = 0;
  uint64_t total_shadow_would_block = 0;

  [[nodiscard]] bool ok() const {
    for (const ShardResult& s : shards) {
      if (!s.ok()) {
        return false;
      }
    }
    return !shards.empty();
  }
  [[nodiscard]] size_t count(checker::Report::Kind kind) const;
};

/// Offline fleet provisioning: builds a spec for every named device type
/// (phases 1+2, concurrently via pipeline::build_specs_parallel) and
/// publishes each into `store` (version 1, or prev+1 on republish).
void publish_device_specs(spec::SpecStore& store,
                          const std::vector<std::string>& devices);

class EnforcementService {
 public:
  /// `store` must outlive the service and hold a spec for every device
  /// type the shards name before run() is called.
  EnforcementService(spec::SpecStore* store, ServiceConfig config = {});

  /// Runs every shard on its own thread plus one report-consumer thread;
  /// returns when all shards have finished and the queue is fully drained.
  /// A shard failure is captured in its ShardResult, never thrown.
  [[nodiscard]] RunReport run(const std::vector<ShardSpec>& shards);

  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  void run_shard(const ShardSpec& spec, uint32_t shard_id,
                 checker::ReportQueue& queue, ShardResult& result);

  spec::SpecStore* store_;
  ServiceConfig config_;
};

}  // namespace sedspec::enforce
