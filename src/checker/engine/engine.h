// Pluggable check-engine backend API (DESIGN.md §12).
//
// EsChecker owns everything *around* a traversal round — containment,
// watchdog escalation, shadow resync, reporting, metrics, rollback — but
// the round itself (entry dispatch, block walk, DSOD simulation, NBTD
// transitions, violation production) is delegated to a CheckEngine:
//
//   InterpreterEngine — the original traversal, walking spec::EsCfg blocks
//                       and re-evaluating expr ASTs each round;
//   BytecodeEngine    — compile-once/execute-many: the spec is lowered at
//                       deploy time into a flat bytecode program executed
//                       by a threaded-code VM (checker/engine/bytecode.h).
//
// Both engines must be *observationally identical*: same CheckResult
// (violations in the same order with the same detail strings, same steps
// accounting), same CheckerFault escalations, same shadow-state mutations.
// The differential suite (tests/check_engine_test.cc) enforces this across
// all five devices, the CVE exploit matrix, and fuzzed specifications. To
// keep the detail strings from drifting, BOTH engines format violations
// through the detail::* helpers below — never inline the strings.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "checker/checker.h"
#include "expr/eval.h"

namespace sedspec::checker::engine {

/// Per-round options resolved by EsChecker before delegating (today: the
/// fault-injection seam's termination-suppression flag).
struct RoundOptions {
  bool suppress_termination = false;
};

/// One check backend bound to (spec, device, shadow arena, config). The
/// engine owns per-round traversal state (visit counters, the active
/// command latch) but NOT the shadow arena or the config — those stay with
/// EsChecker so containment and redeploy logic remain engine-agnostic.
class CheckEngine {
 public:
  virtual ~CheckEngine() = default;

  /// Simulates one I/O round. Throws CheckerFault on watchdog trips (and
  /// other internal malfunctions); EsChecker's containment boundary
  /// resolves those. Locals have already been cleared by the caller.
  [[nodiscard]] virtual CheckResult check(const IoAccess& io,
                                          const RoundOptions& opts) = 0;

  /// The command-access latch (Algorithm 1's current command). Exposed so
  /// EsChecker can save/restore it around blocked rounds and reset it on
  /// resync — exactly as the pre-refactor checker manipulated its own
  /// active_cmd_ member.
  [[nodiscard]] virtual std::optional<uint64_t> active_command() const = 0;
  virtual void set_active_command(std::optional<uint64_t> cmd) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Process-wide default backend used when CheckerConfig::engine is
/// EngineKind::kDefault. Ships as kBytecode; tests flip it to run whole
/// subsystems (e.g. the exploit matrix) under a specific engine.
[[nodiscard]] EngineKind default_engine();
void set_default_engine(EngineKind kind);  // must not be kDefault

/// Resolves kDefault through the process-wide knob.
[[nodiscard]] EngineKind resolve_engine(EngineKind requested);

/// Builds the engine selected by `config->engine`. `cfg`/`device`/`shadow`/
/// `config` must outlive the engine. Structural spec validation happens
/// here (std::logic_error on malformed transition targets, matching the
/// historical build_aux() behavior, so deploy_serialized still converts
/// malformed specs into kMalformed load rejections).
[[nodiscard]] std::unique_ptr<CheckEngine> make_engine(
    const spec::EsCfg* cfg, Device* device, sedspec::StateArena* shadow,
    const CheckerConfig* config);

/// Inline: both engines consult this per check round on the hot path.
[[nodiscard]] inline bool strategy_enabled(const CheckerConfig& config,
                                           Strategy s) {
  switch (s) {
    case Strategy::kParameter:
      return config.enable_parameter;
    case Strategy::kIndirectJump:
      return config.enable_indirect;
    case Strategy::kConditionalJump:
      return config.enable_conditional;
  }
  return false;
}

/// True when a buffer index expression is derived from device state (the
/// paper's §VI-A rule deciding which buffer accesses get bounds-validated;
/// non-state indices are the documented CVE-2015-7504 blind spot).
[[nodiscard]] bool index_is_state_derived(const spec::EsCfg& cfg,
                                          const sedspec::ExprRef& e);

// Violation detail strings, shared verbatim by both engines.
namespace detail {

[[nodiscard]] std::string untrained_io(const IoAccess& io);
inline constexpr std::string_view kBudgetExceeded = "traversal budget exceeded";
[[nodiscard]] std::string visit_bound(std::string_view block_name,
                                      uint64_t visits, uint64_t trained_max);
[[nodiscard]] std::string cmd_access(std::string_view block_name,
                                     uint64_t cmd);
[[nodiscard]] std::string unresolved_sync(const sedspec::EvalDiag& diag);
inline constexpr std::string_view kGuardUnresolvedSync =
    "unresolved sync variable in guard";
[[nodiscard]] std::string guard_diag(const sedspec::EvalDiag& diag);
[[nodiscard]] std::string untrained_direction(std::string_view block_name,
                                              bool taken);
[[nodiscard]] std::string cmd_decode_diag(const sedspec::EvalDiag& diag);
[[nodiscard]] std::string untrained_cmd(std::string_view block_name,
                                        uint64_t cmd);
[[nodiscard]] std::string indirect_target(std::string_view block_name,
                                          uint64_t target);
[[nodiscard]] std::string watchdog_tripped(uint64_t steps);
[[nodiscard]] std::string unmapped_site(SiteId site);

}  // namespace detail

}  // namespace sedspec::checker::engine
