#include "guest/esp_driver.h"

#include "common/assert.h"

namespace sedspec::guest {

namespace {
using sedspec::devices::EspScsiDevice;
constexpr uint64_t kBase = EspScsiDevice::kBasePort;
}  // namespace

void EspDriver::out8(uint64_t reg, uint8_t v) {
  ++io_count_;
  bus_->write(IoSpace::kPio, kBase + reg, 1, v);
}

uint8_t EspDriver::in8(uint64_t reg) {
  ++io_count_;
  return static_cast<uint8_t>(bus_->read(IoSpace::kPio, kBase + reg, 1));
}

void EspDriver::bus_reset() {
  out8(EspScsiDevice::kRegCmd, EspScsiDevice::kCmdBusReset);
  (void)in8(EspScsiDevice::kRegIntr);
}

void EspDriver::flush_fifo() {
  out8(EspScsiDevice::kRegCmd, EspScsiDevice::kCmdFlush);
}

void EspDriver::set_transfer_count(uint16_t tc) {
  out8(EspScsiDevice::kRegTclo, static_cast<uint8_t>(tc & 0xff));
  out8(EspScsiDevice::kRegTcmid, static_cast<uint8_t>(tc >> 8));
}

void EspDriver::set_dma_address(uint32_t addr) {
  out8(EspScsiDevice::kRegDma0, static_cast<uint8_t>(addr));
  out8(EspScsiDevice::kRegDma0 + 1, static_cast<uint8_t>(addr >> 8));
  out8(EspScsiDevice::kRegDma0 + 2, static_cast<uint8_t>(addr >> 16));
  out8(EspScsiDevice::kRegDma0 + 3, static_cast<uint8_t>(addr >> 24));
}

void EspDriver::select_fifo(std::span<const uint8_t> cdb) {
  flush_fifo();
  out8(EspScsiDevice::kRegFifo, 0x80);  // IDENTIFY message
  for (uint8_t b : cdb) {
    out8(EspScsiDevice::kRegFifo, b);
  }
  out8(EspScsiDevice::kRegCmd, EspScsiDevice::kCmdSelAtn);
  (void)in8(EspScsiDevice::kRegIntr);
  (void)in8(EspScsiDevice::kRegStatus);
}

void EspDriver::select_dma(std::span<const uint8_t> cdb) {
  flush_fifo();
  mem_->write(kCdbAddr, cdb);
  set_dma_address(static_cast<uint32_t>(kCdbAddr));
  set_transfer_count(static_cast<uint16_t>(cdb.size()));
  out8(EspScsiDevice::kRegCmd, EspScsiDevice::kCmdSelAtnDma);
  (void)in8(EspScsiDevice::kRegIntr);
  (void)in8(EspScsiDevice::kRegStatus);
}

void EspDriver::transfer_dma(uint64_t guest_addr, uint16_t len) {
  set_dma_address(static_cast<uint32_t>(guest_addr));
  set_transfer_count(len);
  out8(EspScsiDevice::kRegCmd, EspScsiDevice::kCmdTiDma);
  (void)in8(EspScsiDevice::kRegIntr);
  (void)in8(EspScsiDevice::kRegStatus);
}

void EspDriver::complete() {
  out8(EspScsiDevice::kRegCmd, EspScsiDevice::kCmdIccs);
  (void)in8(EspScsiDevice::kRegIntr);
  (void)in8(EspScsiDevice::kRegFifo);  // status byte
  (void)in8(EspScsiDevice::kRegFifo);  // message byte
  out8(EspScsiDevice::kRegCmd, EspScsiDevice::kCmdMsgAcc);
}

void EspDriver::test_unit_ready(bool dma_select) {
  const uint8_t cdb[6] = {EspScsiDevice::kScsiTestUnitReady, 0, 0, 0, 0, 0};
  if (dma_select) {
    select_dma(cdb);
  } else {
    select_fifo(cdb);
  }
  complete();
}

std::vector<uint8_t> EspDriver::inquiry(bool dma_select) {
  const uint8_t cdb[6] = {EspScsiDevice::kScsiInquiry, 0, 0, 0, 36, 0};
  if (dma_select) {
    select_dma(cdb);
  } else {
    select_fifo(cdb);
  }
  transfer_dma(kDataAddr, 36);
  complete();
  std::vector<uint8_t> out(36);
  mem_->read(kDataAddr, out);
  return out;
}

std::vector<uint8_t> EspDriver::request_sense() {
  const uint8_t cdb[6] = {EspScsiDevice::kScsiRequestSense, 0, 0, 0, 18, 0};
  select_fifo(cdb);
  transfer_dma(kDataAddr, 18);
  complete();
  std::vector<uint8_t> out(18);
  mem_->read(kDataAddr, out);
  return out;
}

void EspDriver::read_blocks(uint32_t lba, uint8_t blocks,
                            std::span<uint8_t> out) {
  SEDSPEC_REQUIRE(out.size() ==
                  size_t{blocks} * EspScsiDevice::kBlockSize);
  const uint8_t cdb[6] = {EspScsiDevice::kScsiRead6,
                          static_cast<uint8_t>((lba >> 16) & 0x1f),
                          static_cast<uint8_t>(lba >> 8),
                          static_cast<uint8_t>(lba), blocks, 0};
  select_dma(cdb);
  transfer_dma(kDataAddr, static_cast<uint16_t>(out.size()));
  complete();
  mem_->read(kDataAddr, out);
}

void EspDriver::write_blocks(uint32_t lba, uint8_t blocks,
                             std::span<const uint8_t> data) {
  SEDSPEC_REQUIRE(data.size() ==
                  size_t{blocks} * EspScsiDevice::kBlockSize);
  const uint8_t cdb[6] = {EspScsiDevice::kScsiWrite6,
                          static_cast<uint8_t>((lba >> 16) & 0x1f),
                          static_cast<uint8_t>(lba >> 8),
                          static_cast<uint8_t>(lba), blocks, 0};
  mem_->write(kDataAddr, data);
  select_dma(cdb);
  transfer_dma(kDataAddr, static_cast<uint16_t>(data.size()));
  complete();
}

void EspDriver::set_atn() {
  out8(EspScsiDevice::kRegCmd, EspScsiDevice::kCmdSetAtn);
}

}  // namespace sedspec::guest
