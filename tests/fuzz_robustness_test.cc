// Hostile-input robustness: random register accesses (random offsets,
// widths, values — nothing resembling a driver) against every device, in
// four configurations: patched/unpatched x unprotected/protected. The
// devices must never crash, throw, or wedge the harness; ground-truth
// incidents are allowed (that is what unpatched devices do under attack),
// and a deployed checker must keep its bookkeeping consistent throughout.
#include <gtest/gtest.h>

#include "devices/ehci.h"
#include "devices/esp_scsi.h"
#include "devices/fdc.h"
#include "devices/pcnet.h"
#include "devices/sdhci.h"
#include "guest/workload.h"

namespace sedspec {
namespace {

using guest::make_workload;
using guest::workload_names;

struct FuzzTarget {
  std::string name;
  IoSpace space;
  uint64_t base;
  uint64_t span;
};

FuzzTarget target_for(const std::string& name) {
  if (name == "fdc") {
    return {name, IoSpace::kPio, devices::FdcDevice::kBasePort,
            devices::FdcDevice::kPortSpan};
  }
  if (name == "usb-ehci") {
    return {name, IoSpace::kMmio, devices::EhciDevice::kBaseAddr,
            devices::EhciDevice::kMmioSpan};
  }
  if (name == "pcnet") {
    return {name, IoSpace::kPio, devices::PcnetDevice::kBasePort,
            devices::PcnetDevice::kPortSpan};
  }
  if (name == "sdhci") {
    return {name, IoSpace::kMmio, devices::SdhciDevice::kBaseAddr,
            devices::SdhciDevice::kMmioSpan};
  }
  return {name, IoSpace::kPio, devices::EspScsiDevice::kBasePort,
          devices::EspScsiDevice::kPortSpan};
}

void hostile_io(IoBus& bus, const FuzzTarget& t, Rng& rng, int accesses) {
  const uint8_t sizes[] = {1, 2, 4};
  for (int i = 0; i < accesses; ++i) {
    const uint64_t addr = t.base + rng.below(t.span);
    const uint8_t size = sizes[rng.below(3)];
    if (rng.chance(0.6)) {
      bus.write(t.space, addr, size, rng.next_u64());
    } else {
      (void)bus.read(t.space, addr, size);
    }
  }
}

class FuzzRobustness : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllDevices, FuzzRobustness,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(FuzzRobustness, PatchedUnprotectedSurvivesGarbage) {
  auto wl = make_workload(GetParam());
  const FuzzTarget t = target_for(GetParam());
  Rng rng(0xf00d);
  EXPECT_NO_THROW(hostile_io(wl->bus(), t, rng, 5000));
  // The device may be confused, but the harness must still be functional.
  EXPECT_GT(wl->bus().access_count(), 0u);
}

TEST_P(FuzzRobustness, PatchedProtectedSurvivesGarbage) {
  auto wl = make_workload(GetParam());
  checker::CheckerConfig config;
  config.mode = checker::Mode::kEnhancement;
  wl->build_and_deploy(config);
  const FuzzTarget t = target_for(GetParam());
  Rng rng(0xbead);
  EXPECT_NO_THROW(hostile_io(wl->bus(), t, rng, 5000));
  const auto& s = wl->checker()->stats();
  EXPECT_EQ(s.rounds,
            s.clean_rounds + s.warnings + s.blocked + s.degraded_rounds);
}

TEST_P(FuzzRobustness, ProtectionModeHaltsGarbageQuickly) {
  auto wl = make_workload(GetParam());
  wl->build_and_deploy();  // protection mode
  const FuzzTarget t = target_for(GetParam());
  Rng rng(0xcafe);
  EXPECT_NO_THROW(hostile_io(wl->bus(), t, rng, 2000));
  // Garbage that reaches untrained behavior halts the device; everything
  // after bounces off the bus without touching it.
  EXPECT_TRUE(wl->device().halted());
  EXPECT_TRUE(wl->device().incidents().empty())
      << "protection mode must not let garbage corrupt a patched device";
}

// Unpatched devices with every CVE armed, no protection: the garbage may
// well trigger ground-truth incidents — but never a crash.
TEST(FuzzRobustnessArmed, AllVulnerableDevicesSurviveGarbage) {
  Rng rng(0x5eed);
  {
    devices::FdcDevice dev(devices::FdcDevice::Vulns{.cve_2015_3456 = true});
    IoBus bus;
    bus.map(IoSpace::kPio, devices::FdcDevice::kBasePort,
            devices::FdcDevice::kPortSpan, &dev);
    EXPECT_NO_THROW(hostile_io(bus, target_for("fdc"), rng, 5000));
  }
  {
    GuestMemory mem(1 << 20);
    devices::EhciDevice dev(
        &mem, devices::EhciDevice::Vulns{.cve_2020_14364 = true,
                                         .cve_2016_1568 = true});
    IoBus bus;
    bus.map(IoSpace::kMmio, devices::EhciDevice::kBaseAddr,
            devices::EhciDevice::kMmioSpan, &dev);
    EXPECT_NO_THROW(hostile_io(bus, target_for("usb-ehci"), rng, 5000));
  }
  {
    GuestMemory mem(1 << 20);
    devices::PcnetDevice dev(
        &mem, devices::PcnetDevice::Vulns{.cve_2015_7504 = true,
                                          .cve_2015_7512 = true,
                                          .cve_2016_7909 = true});
    IoBus bus;
    bus.map(IoSpace::kPio, devices::PcnetDevice::kBasePort,
            devices::PcnetDevice::kPortSpan, &dev);
    EXPECT_NO_THROW(hostile_io(bus, target_for("pcnet"), rng, 5000));
  }
  {
    devices::SdhciDevice dev(
        devices::SdhciDevice::Vulns{.cve_2021_3409 = true});
    IoBus bus;
    bus.map(IoSpace::kMmio, devices::SdhciDevice::kBaseAddr,
            devices::SdhciDevice::kMmioSpan, &dev);
    EXPECT_NO_THROW(hostile_io(bus, target_for("sdhci"), rng, 5000));
  }
  {
    GuestMemory mem(1 << 20);
    devices::EspScsiDevice dev(
        &mem, devices::EspScsiDevice::Vulns{.cve_2015_5158 = true,
                                            .cve_2016_4439 = true});
    IoBus bus;
    bus.map(IoSpace::kPio, devices::EspScsiDevice::kBasePort,
            devices::EspScsiDevice::kPortSpan, &dev);
    EXPECT_NO_THROW(hostile_io(bus, target_for("scsi-esp"), rng, 5000));
  }
}

}  // namespace
}  // namespace sedspec
