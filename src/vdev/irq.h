// Interrupt line.
//
// Devices raise interrupts toward the guest through an IrqLine; the guest
// driver models attach a sink to observe them. Raise counts feed the
// benchmark harnesses (interrupt rate) and the driver completion logic.
#pragma once

#include <cstdint>
#include <functional>

namespace sedspec {

class IrqLine {
 public:
  using Sink = std::function<void(bool level)>;

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  void raise() { set(true); }
  void lower() { set(false); }

  void set(bool level) {
    if (level && !level_) {
      ++raise_count_;
    }
    level_ = level;
    if (sink_) {
      sink_(level);
    }
  }

  /// Edge-triggered pulse (raise then lower).
  void pulse() {
    raise();
    lower();
  }

  [[nodiscard]] bool level() const { return level_; }
  [[nodiscard]] uint64_t raise_count() const { return raise_count_; }
  void reset_stats() { raise_count_ = 0; }

 private:
  Sink sink_;
  bool level_ = false;
  uint64_t raise_count_ = 0;
};

}  // namespace sedspec
