file(REMOVE_RECURSE
  "CMakeFiles/full_vm.dir/full_vm.cpp.o"
  "CMakeFiles/full_vm.dir/full_vm.cpp.o.d"
  "full_vm"
  "full_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
