// Compiled check engine (DESIGN.md §12): the bytecode engine must be
// observationally identical to the reference interpreter — same violations
// (including detail strings), same traversal step counts, same shadow-state
// bytes, same exceptions — on every device, on hostile input, on the CVE
// exploit matrix, and on fuzzed machine-generated specs. The serialized
// SEBC artifact has the same integrity posture as the spec envelope:
// truncation and corruption yield structured load errors, and a decoded
// program must still pass the verifier before it can attach.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "checker/checker.h"
#include "checker/engine/bytecode.h"
#include "checker/engine/engine.h"
#include "guest/exploits.h"
#include "guest/workload.h"
#include "sedspec/enforcement.h"
#include "sedspec/pipeline.h"
#include "spec/es_cfg.h"

namespace sedspec {
namespace {

using checker::CheckResult;
using checker::CheckerConfig;
using checker::CheckerFault;
using checker::EngineKind;
using checker::engine::BytecodeEngine;
using checker::engine::CheckEngine;
using checker::engine::RoundOptions;
using checker::engine::make_engine;
using namespace eb;  // expr builders: c/param/local/io/bin/un/cast
using namespace sb;  // stmt builders: assign/assign_local/buf_store/buf_fill

// RAII override of the process-wide default engine knob.
class EngineGuard {
 public:
  explicit EngineGuard(EngineKind kind) : prev_(checker::engine::default_engine()) {
    checker::engine::set_default_engine(kind);
  }
  ~EngineGuard() { checker::engine::set_default_engine(prev_); }

 private:
  EngineKind prev_;
};

struct Recorder final : public IoProxy {
  checker::EsChecker* inner = nullptr;
  std::vector<IoAccess> log;
  bool before_access(Device& d, const IoAccess& io) override {
    log.push_back(io);
    return inner->before_access(d, io);
  }
  void after_access(Device& d, const IoAccess& io) override {
    inner->after_access(d, io);
  }
};

// Outcome of one engine round, exceptions included, for exact comparison.
struct RoundOutcome {
  bool threw_fault = false;
  bool threw_logic = false;
  std::string what;
  CheckResult result;
};

RoundOutcome one_round(CheckEngine& eng, StateArena& shadow,
                       const IoAccess& io) {
  RoundOutcome out;
  shadow.clear_locals();
  try {
    out.result = eng.check(io, RoundOptions{});
  } catch (const CheckerFault& f) {
    out.threw_fault = true;
    out.what = f.what();
  } catch (const std::logic_error& e) {
    out.threw_logic = true;
    out.what = e.what();
  }
  return out;
}

void expect_lockstep(const RoundOutcome& a, const RoundOutcome& b,
                     const StateArena& sa, const StateArena& sb,
                     const std::string& ctx) {
  ASSERT_EQ(a.threw_fault, b.threw_fault) << ctx;
  ASSERT_EQ(a.threw_logic, b.threw_logic) << ctx;
  ASSERT_EQ(a.result.steps, b.result.steps) << ctx;
  ASSERT_EQ(a.result.violations.size(), b.result.violations.size()) << ctx;
  for (size_t i = 0; i < a.result.violations.size(); ++i) {
    const checker::Violation& va = a.result.violations[i];
    const checker::Violation& vb = b.result.violations[i];
    ASSERT_EQ(va.strategy, vb.strategy) << ctx << " violation " << i;
    ASSERT_EQ(va.site, vb.site) << ctx << " violation " << i;
    ASSERT_EQ(va.detail, vb.detail) << ctx << " violation " << i;
  }
  const auto ba = sa.bytes();
  const auto bb = sb.bytes();
  ASSERT_EQ(ba.size(), bb.size()) << ctx;
  ASSERT_TRUE(std::equal(ba.begin(), ba.end(), bb.begin()))
      << ctx << ": shadow state diverged";
}

// Replays `stream` through an interpreter and a bytecode engine built from
// the same spec, asserting per-round lockstep.
void run_lockstep(const spec::EsCfg& es, Device& device,
                  const std::vector<IoAccess>& stream,
                  const std::string& ctx) {
  CheckerConfig icfg;
  icfg.engine = EngineKind::kInterpreter;
  CheckerConfig bcfg;
  bcfg.engine = EngineKind::kBytecode;
  StateArena ishadow(&device.program().layout());
  StateArena bshadow(&device.program().layout());
  ishadow.copy_from(device.state());
  bshadow.copy_from(device.state());
  const auto ie = make_engine(&es, &device, &ishadow, &icfg);
  const auto be = make_engine(&es, &device, &bshadow, &bcfg);
  for (size_t i = 0; i < stream.size(); ++i) {
    const RoundOutcome ia = one_round(*ie, ishadow, stream[i]);
    const RoundOutcome ba = one_round(*be, bshadow, stream[i]);
    expect_lockstep(ia, ba, ishadow, bshadow,
                    ctx + " round " + std::to_string(i));
    ASSERT_EQ(ie->active_command(), be->active_command())
        << ctx << " round " << i;
  }
}

// ---------------------------------------------------------------------------
// 1. Every device, benign recorded traffic + hostile random traffic.
// ---------------------------------------------------------------------------

class CheckEngineDifferential : public ::testing::TestWithParam<std::string> {
};

INSTANTIATE_TEST_SUITE_P(AllDevices, CheckEngineDifferential,
                         ::testing::ValuesIn(guest::workload_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST_P(CheckEngineDifferential, BenignStreamLockstep) {
  auto wl = guest::make_workload(GetParam());
  const spec::EsCfg es =
      pipeline::build_spec(wl->device(), [&] { wl->training(); });
  checker::CheckerConfig cfg;
  checker::EsChecker ck(&es, &wl->device(), cfg);
  Recorder rec;
  rec.inner = &ck;
  wl->bus().set_proxy(&rec);
  Rng rng(4242);
  for (int i = 0; i < 80; ++i) {
    wl->common_operation(guest::InteractionMode::kRandom, rng);
  }
  wl->bus().set_proxy(nullptr);
  ASSERT_FALSE(rec.log.empty());
  run_lockstep(es, wl->device(), rec.log, GetParam() + "/benign");
}

TEST_P(CheckEngineDifferential, HostileStreamLockstep) {
  auto wl = guest::make_workload(GetParam());
  const spec::EsCfg es =
      pipeline::build_spec(wl->device(), [&] { wl->training(); });

  // Hostile traffic: addresses clustered around the trained entry keys so
  // plenty of rounds actually traverse the graph with attacker-controlled
  // values, plus pure noise that must miss the dispatch identically.
  std::vector<uint64_t> addrs;
  for (const auto& [key, site] : es.entry_dispatch) {
    addrs.push_back(key.addr);
  }
  ASSERT_FALSE(addrs.empty());
  Rng rng(0xbadc0de);
  std::vector<IoAccess> stream;
  for (int i = 0; i < 600; ++i) {
    IoAccess io;
    io.space = rng.below(2) == 0 ? IoSpace::kPio : IoSpace::kMmio;
    io.addr = rng.below(4) == 0 ? rng.next_u64() % 0x20000000
                                : addrs[rng.below(addrs.size())];
    io.size = static_cast<uint8_t>(1u << rng.below(4));
    io.value = rng.next_u64() >> (8 * rng.below(8));
    io.is_write = rng.below(2) == 0;
    stream.push_back(io);
  }
  run_lockstep(es, wl->device(), stream, GetParam() + "/hostile");
}

// ---------------------------------------------------------------------------
// 2. The eight-CVE exploit matrix: identical verdicts per engine, and both
//    engines still reproduce the paper's Table III expectations.
// ---------------------------------------------------------------------------

TEST(CheckEngineDifferential2, ExploitMatrixIdenticalAcrossEngines) {
  for (const guest::ExploitScenario& scenario : guest::exploit_scenarios()) {
    const auto& info = scenario.info();
    std::optional<guest::ExploitScenario::Matrix> interp;
    std::optional<guest::ExploitScenario::Matrix> byte;
    {
      EngineGuard g(EngineKind::kInterpreter);
      interp = scenario.evaluate();
    }
    {
      EngineGuard g(EngineKind::kBytecode);
      byte = scenario.evaluate();
    }
    EXPECT_EQ(interp->unprotected_compromised, byte->unprotected_compromised)
        << info.cve;
    EXPECT_EQ(interp->parameter, byte->parameter) << info.cve;
    EXPECT_EQ(interp->indirect, byte->indirect) << info.cve;
    EXPECT_EQ(interp->conditional, byte->conditional) << info.cve;
    EXPECT_EQ(interp->detected, byte->detected) << info.cve;
    EXPECT_EQ(interp->protected_compromised, byte->protected_compromised)
        << info.cve;
    // Both engines must also match the paper, not merely each other.
    EXPECT_EQ(byte->detected, info.expect_detected) << info.cve;
    EXPECT_EQ(byte->parameter, info.expect_parameter) << info.cve;
    EXPECT_EQ(byte->indirect, info.expect_indirect) << info.cve;
    EXPECT_EQ(byte->conditional, info.expect_conditional) << info.cve;
  }
}

// ---------------------------------------------------------------------------
// 3. Fuzzed specs: machine-generated ES-CFGs (valid or structurally broken)
//    against the real fdc layout. Both engines must agree on whether the
//    spec is malformed, and — when it builds — on every round's outcome.
// ---------------------------------------------------------------------------

ExprRef rnd_operand(Rng& rng, const StateLayout& layout) {
  const auto t = static_cast<IntType>(rng.below(8));
  switch (rng.below(4)) {
    case 0:
      return c(rng.next_u64() >> (8 * rng.below(8)), t);
    case 1: {
      const auto id = static_cast<ParamId>(rng.below(layout.field_count()));
      return layout.field(id).is_buffer() ? io_value(t) : param(id, t);
    }
    case 2:
      return local(static_cast<LocalId>(rng.below(4)), t);
    default:
      return io(static_cast<IoField>(rng.below(5)), t);
  }
}

ExprRef rnd_expr(Rng& rng, const StateLayout& layout, int depth) {
  if (depth <= 0 || rng.below(3) == 0) {
    return rnd_operand(rng, layout);
  }
  const auto t = static_cast<IntType>(rng.below(8));
  switch (rng.below(6)) {
    case 0:
      return un(static_cast<UnaryOp>(rng.below(3)),
                rnd_expr(rng, layout, depth - 1), t);
    case 1:
      return cast(rnd_expr(rng, layout, depth - 1), t);
    default:
      // Full operator set, division and shifts included, so the diag
      // protocol (div-by-zero, shift-range) is exercised differentially.
      return bin(static_cast<BinaryOp>(rng.below(18)),
                 rnd_expr(rng, layout, depth - 1),
                 rnd_expr(rng, layout, depth - 1), t);
  }
}

spec::EsCfg rnd_cfg(Rng& rng, const StateLayout& layout,
                    const std::string& device_name) {
  spec::EsCfg cfg;
  cfg.device_name = device_name;
  cfg.trained_rounds = 1 + rng.below(4);
  for (size_t i = 0; i < layout.field_count(); ++i) {
    cfg.params.push_back(static_cast<ParamId>(i));
  }
  std::vector<ParamId> buffers;
  for (size_t i = 0; i < layout.field_count(); ++i) {
    if (layout.field(static_cast<ParamId>(i)).is_buffer()) {
      buffers.push_back(static_cast<ParamId>(i));
    }
  }
  const auto nblocks = static_cast<SiteId>(1 + rng.below(6));
  // A successor one past the last block is dangling — a structurally
  // malformed spec both engines must reject the same way.
  const auto rnd_site = [&] {
    return static_cast<SiteId>(rng.below(nblocks + 1));
  };
  for (SiteId s = 0; s < nblocks; ++s) {
    spec::EsBlock b;
    b.site = s;
    b.name = "fuzz" + std::to_string(s);
    b.max_visits_per_round = 1 + rng.below(3);
    StmtList dsod;
    const size_t nstmts = rng.below(4);
    for (size_t i = 0; i < nstmts; ++i) {
      switch (rng.below(4)) {
        case 0: {
          const auto id =
              static_cast<ParamId>(rng.below(layout.field_count()));
          if (!layout.field(id).is_buffer()) {
            dsod.push_back(assign(id, rnd_expr(rng, layout, 2)));
          }
          break;
        }
        case 1:
          dsod.push_back(assign_local(static_cast<LocalId>(rng.below(4)),
                                      rnd_expr(rng, layout, 2)));
          break;
        case 2:
          if (!buffers.empty()) {
            dsod.push_back(buf_store(buffers[rng.below(buffers.size())],
                                     rnd_expr(rng, layout, 1),
                                     rnd_expr(rng, layout, 1)));
          }
          break;
        default:
          if (!buffers.empty()) {
            dsod.push_back(buf_fill(buffers[rng.below(buffers.size())],
                                    rnd_expr(rng, layout, 1),
                                    rnd_expr(rng, layout, 1)));
          }
          break;
      }
    }
    b.dsod = std::move(dsod);
    switch (rng.below(4)) {
      case 0: {
        b.kind = BlockKind::kConditional;
        b.guard = bin(static_cast<BinaryOp>(
                          static_cast<int>(BinaryOp::kEq) + rng.below(6)),
                      rnd_expr(rng, layout, 2), rnd_expr(rng, layout, 2),
                      IntType::kU64);
        b.taken.observed = rng.below(4) != 0;
        b.taken.ends = rng.below(3) == 0;
        b.taken.succ = rnd_site();
        b.not_taken.observed = rng.below(4) != 0;
        b.not_taken.ends = rng.below(3) == 0;
        b.not_taken.succ = rnd_site();
        break;
      }
      case 1: {
        b.kind = BlockKind::kCmdDecision;
        b.cmd_expr = rnd_expr(rng, layout, 1);
        const size_t ncmds = 1 + rng.below(3);
        for (size_t i = 0; i < ncmds; ++i) {
          spec::CondDir d;
          d.observed = true;
          d.ends = rng.below(2) == 0;
          d.succ = rnd_site();
          b.cmd_dispatch[rng.below(8)] = d;
          cfg.commands[rng.below(8)].observed = 1;
        }
        break;
      }
      case 2: {
        b.kind = BlockKind::kIndirect;
        b.fp_param = static_cast<ParamId>(rng.below(layout.field_count()));
        const size_t ntargets = rng.below(4);
        for (size_t i = 0; i < ntargets; ++i) {
          b.fp_targets.insert(rng.next_u64() % 64);
        }
        b.has_succ = rng.below(2) == 0;
        b.succ = rnd_site();
        b.ends = !b.has_succ;
        break;
      }
      default:
        b.kind = rng.below(4) == 0 ? BlockKind::kCmdEnd : BlockKind::kPlain;
        b.has_succ = rng.below(2) == 0;
        b.succ = rnd_site();
        b.ends = !b.has_succ;
        break;
    }
    cfg.blocks[s] = std::move(b);
  }
  const size_t nentries = 1 + rng.below(4);
  for (size_t i = 0; i < nentries; ++i) {
    IoKey key;
    key.space = rng.below(2) == 0 ? IoSpace::kPio : IoSpace::kMmio;
    key.addr = rng.below(8) * 4;
    key.is_write = rng.below(2) == 0;
    cfg.entry_dispatch[key] = rnd_site();
  }
  for (size_t i = 0; i < rng.below(3); ++i) {
    cfg.sync_locals.insert(static_cast<LocalId>(rng.below(4)));
  }
  return cfg;
}

TEST(CheckEngineFuzz, RandomSpecsStayInLockstep) {
  auto wl = guest::make_workload("fdc");
  Device& device = wl->device();
  const StateLayout& layout = device.program().layout();
  Rng rng(0x5edc0de);
  int built = 0;
  int rejected = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const spec::EsCfg es = rnd_cfg(rng, layout, device.name());
    CheckerConfig icfg;
    icfg.engine = EngineKind::kInterpreter;
    CheckerConfig bcfg;
    bcfg.engine = EngineKind::kBytecode;
    StateArena ishadow(&layout);
    StateArena bshadow(&layout);
    ishadow.copy_from(device.state());
    bshadow.copy_from(device.state());
    std::unique_ptr<CheckEngine> ie;
    std::unique_ptr<CheckEngine> be;
    bool ithrew = false;
    bool bthrew = false;
    try {
      ie = make_engine(&es, &device, &ishadow, &icfg);
    } catch (const std::logic_error&) {
      ithrew = true;
    }
    try {
      be = make_engine(&es, &device, &bshadow, &bcfg);
    } catch (const std::logic_error&) {
      bthrew = true;
    }
    ASSERT_EQ(ithrew, bthrew)
        << "iter " << iter << ": engines disagree on spec validity";
    if (ithrew) {
      ++rejected;
      continue;
    }
    ++built;
    std::vector<IoAccess> stream;
    for (int i = 0; i < 120; ++i) {
      IoAccess io;
      io.space = rng.below(2) == 0 ? IoSpace::kPio : IoSpace::kMmio;
      io.addr = rng.below(8) * 4;
      io.size = static_cast<uint8_t>(1u << rng.below(4));
      io.value = rng.next_u64() >> (8 * rng.below(8));
      io.is_write = rng.below(2) == 0;
      stream.push_back(io);
    }
    for (size_t i = 0; i < stream.size(); ++i) {
      const RoundOutcome ia = one_round(*ie, ishadow, stream[i]);
      const RoundOutcome ba = one_round(*be, bshadow, stream[i]);
      expect_lockstep(ia, ba, ishadow, bshadow,
                      "fuzz iter " + std::to_string(iter) + " round " +
                          std::to_string(i));
    }
  }
  // The generator must exercise both paths or the test proves less than
  // it claims.
  EXPECT_GT(built, 5);
  EXPECT_GT(rejected, 5);
}

// ---------------------------------------------------------------------------
// 4. SEBC serialization: round-trip fidelity and corruption containment.
// ---------------------------------------------------------------------------

class CheckEngineSerial : public ::testing::Test {
 protected:
  void SetUp() override {
    wl_ = guest::make_workload("fdc");
    es_ = pipeline::build_spec(wl_->device(), [&] { wl_->training(); });
    cfg_.engine = EngineKind::kBytecode;
    program_ = checker::engine::compile_program(es_, wl_->device(), cfg_);
    bytes_ = checker::engine::serialize(*program_);
  }

  std::unique_ptr<guest::DeviceWorkload> wl_;
  spec::EsCfg es_;
  CheckerConfig cfg_;
  std::shared_ptr<const checker::engine::BytecodeProgram> program_;
  std::vector<uint8_t> bytes_;
};

TEST_F(CheckEngineSerial, RoundTripRunsIdenticallyToFreshCompile) {
  const auto loaded = checker::engine::load_program(bytes_);
  ASSERT_TRUE(loaded.ok()) << loaded.error.describe();
  ASSERT_EQ(loaded.program->code.size(), program_->code.size());
  ASSERT_EQ(loaded.program->reg_count, program_->reg_count);
  ASSERT_EQ(loaded.program->device_name, program_->device_name);

  // A precompiled engine from the deserialized program must stay in
  // lockstep with one compiled directly from the spec.
  StateArena sa(&wl_->device().program().layout());
  StateArena sb(&wl_->device().program().layout());
  sa.copy_from(wl_->device().state());
  sb.copy_from(wl_->device().state());
  BytecodeEngine fresh(&es_, &wl_->device(), &sa, &cfg_);
  BytecodeEngine canned(loaded.program, &wl_->device(), &sb, &cfg_);
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    IoAccess io;
    io.space = IoSpace::kPio;
    io.addr = rng.below(8);
    io.size = 1;
    io.value = rng.next_u64() & 0xff;
    io.is_write = rng.below(2) == 0;
    const RoundOutcome a = one_round(fresh, sa, io);
    const RoundOutcome b = one_round(canned, sb, io);
    expect_lockstep(a, b, sa, sb, "roundtrip round " + std::to_string(i));
  }
}

TEST_F(CheckEngineSerial, TruncationYieldsStructuredError) {
  const std::vector<size_t> cuts = {0,  1,  3,  7,  8,  15,
                                    16, bytes_.size() / 2, bytes_.size() - 1};
  for (const size_t cut : cuts) {
    std::vector<uint8_t> t(bytes_.begin(),
                           bytes_.begin() + static_cast<ptrdiff_t>(cut));
    const auto r = checker::engine::load_program(t);
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_NE(r.error.status, spec::LoadStatus::kOk) << "cut=" << cut;
  }
}

TEST_F(CheckEngineSerial, PayloadBitFlipsCaughtByCrc) {
  Rng rng(0xc5c);
  for (int i = 0; i < 32; ++i) {
    std::vector<uint8_t> t = bytes_;
    // Skip the 16-byte envelope: a payload flip must be a CRC mismatch.
    const size_t at = 16 + rng.below(t.size() - 16);
    t[at] ^= static_cast<uint8_t>(1u << rng.below(8));
    const auto r = checker::engine::load_program(t);
    ASSERT_FALSE(r.ok()) << "flip at " << at;
    EXPECT_EQ(r.error.status, spec::LoadStatus::kCrcMismatch)
        << "flip at " << at;
  }
}

TEST_F(CheckEngineSerial, BadMagicAndVersionSkewRejected) {
  std::vector<uint8_t> bad_magic = bytes_;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(checker::engine::load_program(bad_magic).error.status,
            spec::LoadStatus::kBadMagic);
  std::vector<uint8_t> skew = bytes_;
  skew[4] ^= 0x04;  // format version word
  EXPECT_EQ(checker::engine::load_program(skew).error.status,
            spec::LoadStatus::kVersionSkew);
}

TEST_F(CheckEngineSerial, VerifierRejectsCorruptDecodedPrograms) {
  const StateLayout& layout = wl_->device().program().layout();
  const size_t sites = wl_->device().program().site_count();
  const auto expect_reject = [&](auto mutate, const char* what) {
    checker::engine::BytecodeProgram p = *program_;
    mutate(p);
    EXPECT_THROW(checker::engine::verify_program(p, layout, sites),
                 DecodeError)
        << what;
  };
  expect_reject(
      [](auto& p) { p.code[0].op = 0xff; }, "unknown opcode");
  expect_reject(
      [](auto& p) { p.reg_count = 0; p.code[1].dst = 40000; },
      "register out of range");
  expect_reject(
      [](auto& p) { p.code.clear(); }, "empty code");
  expect_reject(
      [&](auto& p) {
        // Find a scalar superinstruction and point it past the arena.
        for (auto& ins : p.code) {
          if (ins.op == static_cast<uint8_t>(
                            checker::engine::Op::kStoreScalarImm) ||
              ins.op == static_cast<uint8_t>(
                            checker::engine::Op::kLoadScalar) ||
              ins.op == static_cast<uint8_t>(
                            checker::engine::Op::kStoreScalar)) {
            ins.c = 0x7fffffff;
            break;
          }
        }
      },
      "scalar access outside arena");
}

// A verified-then-garbled program must never corrupt memory: flip fields
// the verifier does NOT pin (param ids inside the generic ops' range, IC
// seeds, visit bounds) and confirm the engine still contains the damage as
// checker-level outcomes (violations / CheckerFault / logic_error), never
// UB. Run under ASan/UBSan this is the memory-safety half of the claim.
TEST_F(CheckEngineSerial, GarbledButVerifiableProgramsRunSafely) {
  const StateLayout& layout = wl_->device().program().layout();
  const size_t sites = wl_->device().program().site_count();
  Rng rng(0xfeedface);
  int ran = 0;
  for (int iter = 0; iter < 200; ++iter) {
    checker::engine::BytecodeProgram p = *program_;
    // Garble a handful of operand fields (not opcodes) at random.
    for (int i = 0; i < 4; ++i) {
      auto& ins = p.code[rng.below(p.code.size())];
      switch (rng.below(4)) {
        case 0: ins.a ^= static_cast<uint16_t>(rng.next_u64()); break;
        case 1: ins.b ^= static_cast<uint16_t>(rng.next_u64()); break;
        case 2: ins.imm ^= rng.next_u64(); break;
        default: ins.t ^= static_cast<uint8_t>(rng.next_u64()); break;
      }
    }
    try {
      checker::engine::verify_program(p, layout, sites);
    } catch (const DecodeError&) {
      continue;  // verifier caught it: that is also a pass
    }
    ++ran;
    StateArena shadow(&layout);
    shadow.copy_from(wl_->device().state());
    BytecodeEngine eng(
        std::make_shared<checker::engine::BytecodeProgram>(std::move(p)),
        &wl_->device(), &shadow, &cfg_);
    for (int r = 0; r < 40; ++r) {
      IoAccess io;
      io.space = IoSpace::kPio;
      io.addr = rng.below(8);
      io.size = 1;
      io.value = rng.next_u64() & 0xff;
      io.is_write = rng.below(2) == 0;
      (void)one_round(eng, shadow, io);  // must not crash; outcome may vary
    }
  }
  EXPECT_GT(ran, 20) << "garbling never survived the verifier; the "
                        "safety claim was not exercised";
}

TEST_F(CheckEngineSerial, PrecompiledEngineRejectsWrongDevice) {
  auto other = guest::make_workload("sdhci");
  StateArena shadow(&other->device().program().layout());
  shadow.copy_from(other->device().state());
  EXPECT_THROW(
      BytecodeEngine(program_, &other->device(), &shadow, &cfg_),
      std::logic_error);
}

// ---------------------------------------------------------------------------
// 5. Concurrency: a mixed fleet (bytecode and interpreter shards side by
//    side) stays clean under the full enforcement service. Runs in the
//    TSan lane via the Concurrency* filter.
// ---------------------------------------------------------------------------

TEST(ConcurrencyCheckEngine, MixedEngineFleetStaysClean) {
  spec::SpecStore store;
  enforce::publish_device_specs(store, guest::workload_names());

  enforce::ServiceConfig config;
  config.spec_poll_ops = 8;
  enforce::EnforcementService service(&store, config);

  const std::vector<std::string>& names = guest::workload_names();
  std::vector<enforce::ShardSpec> shards(8);
  for (size_t i = 0; i < shards.size(); ++i) {
    shards[i].device = names[i % names.size()];
    shards[i].ops = 50;
    shards[i].seed = 7000 + i;
    shards[i].mode = guest::InteractionMode::kSequential;
    shards[i].checker.engine =
        (i % 2 == 0) ? EngineKind::kBytecode : EngineKind::kInterpreter;
  }

  const enforce::RunReport report = service.run(shards);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.shards.size(), shards.size());
  for (const enforce::ShardResult& s : report.shards) {
    EXPECT_EQ(s.stats.violations_by_strategy[0], 0u) << s.device;
    EXPECT_EQ(s.stats.violations_by_strategy[1], 0u) << s.device;
    EXPECT_EQ(s.stats.violations_by_strategy[2], 0u) << s.device;
    EXPECT_EQ(s.stats.blocked, 0u) << s.device;
    EXPECT_EQ(s.bus_owner_violations, 0u) << s.device;
  }
}

}  // namespace
}  // namespace sedspec
