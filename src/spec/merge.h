// Execution-specification merging — the paper's false-positive remedy
// (§VIII): "distributing SEDSpec among device developers and testers ...
// enables the utilization of extensive test cases to formulate precise
// execution specifications". Each party trains on its own workloads; the
// union of the resulting ES-CFGs covers the union of the observed
// behaviors, so commands rare at one site but common at another stop being
// false positives.
//
// Merging is a union over trained facts: entry dispatches, branch
// directions, successors, indirect targets, command dispatches and access
// vectors, visit bounds (max), and sync points. Two specs over the same
// device program can only conflict if one of them was built from an
// inconsistent log — that raises spec::BuildError.
#pragma once

#include "spec/es_cfg.h"

namespace sedspec::spec {

[[nodiscard]] EsCfg merge(const EsCfg& a, const EsCfg& b);

}  // namespace sedspec::spec
