// The I/O interaction unit.
//
// One IoAccess is one guest-initiated register access (PMIO or MMIO) — the
// granularity at which KVM exits to the emulator and at which SEDSpec runs
// one ES-CFG traversal round (paper §V-A: "for each I/O interaction round").
#pragma once

#include <cstdint>

namespace sedspec {

enum class IoSpace : uint8_t { kPio = 0, kMmio = 1 };

struct IoAccess {
  IoSpace space = IoSpace::kPio;
  uint64_t addr = 0;   // port number (PMIO) or physical address (MMIO)
  uint8_t size = 1;    // access width in bytes: 1, 2, 4, or 8
  uint64_t value = 0;  // data written (writes) or returned (reads)
  bool is_write = false;

  friend bool operator==(const IoAccess&, const IoAccess&) = default;
};

/// Key identifying the *kind* of access for ES-CFG entry-block dispatch:
/// same space/addr/direction => same first block (paper §V-A: the entry
/// block "parses the target address/port of the I/O request").
struct IoKey {
  IoSpace space = IoSpace::kPio;
  uint64_t addr = 0;
  bool is_write = false;

  friend bool operator==(const IoKey&, const IoKey&) = default;
  friend auto operator<=>(const IoKey&, const IoKey&) = default;
};

inline IoKey key_of(const IoAccess& io) {
  return IoKey{io.space, io.addr, io.is_write};
}

}  // namespace sedspec
