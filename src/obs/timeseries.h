// Time-series collection: windowed deltas over the cumulative
// MetricsRegistry.
//
// The registry's counters and histograms are monotone cumulative — good
// for cheap hot-path updates, useless for answering "what was the p99
// *during the last 100 ms*". TimeSeries closes that gap: the caller ticks
// sample(now_ns) at whatever cadence it likes (the collector never reads a
// clock itself — intervals are caller-driven, so tests and the soak
// harness replay deterministic timelines), and each tick deltas the
// current registry snapshot against the previous one into a WindowSample:
//   - counters  -> per-window delta + rate (delta / window seconds)
//   - gauges    -> point-in-time value + delta vs previous window
//   - histograms-> per-window bucket deltas, from which true windowed
//                  p50/p90/p99/p99.9 are resolved (same log2 upper-edge
//                  rule as Histogram::percentile, clamped to the highest
//                  nonempty delta bucket's upper edge since the cumulative
//                  max can't be windowed)
//
// Memory is bounded for arbitrarily long runs: a ring of the most recent
// `window_capacity` WindowSamples plus streaming min/max/sum aggregates
// per tracked series value (e.g. "check_latency_ns{device=\"fdc\"}.p99")
// covering the WHOLE run, not just the retained ring.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace sedspec::obs {

struct TimeSeriesConfig {
  /// Ring depth: how many recent windows stay addressable.
  size_t window_capacity = 64;
};

/// Per-window view of one cumulative histogram series.
struct WindowHistogram {
  std::string name;
  std::string labels;
  uint64_t buckets[Histogram::kBuckets] = {};  // per-window bucket deltas
  uint64_t count = 0;                          // events in this window
  uint64_t sum = 0;
  /// Upper edge of the highest nonempty delta bucket — the tightest bound
  /// on the window max recoverable from bucket deltas.
  uint64_t max_bound = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
};

struct WindowCounter {
  std::string name;
  std::string labels;
  uint64_t delta = 0;  // increments during this window
  double rate = 0.0;   // delta / window length in seconds (0 if zero-length)
};

struct WindowGauge {
  std::string name;
  std::string labels;
  int64_t value = 0;  // value at window end
  int64_t delta = 0;  // value change across the window (growth detection)
};

struct WindowSample {
  uint64_t index = 0;       // 0-based window number since collector start
  uint64_t t_start_ns = 0;  // previous sample's timestamp
  uint64_t t_end_ns = 0;    // this sample's timestamp
  std::vector<WindowCounter> counters;
  std::vector<WindowGauge> gauges;
  std::vector<WindowHistogram> histograms;

  [[nodiscard]] const WindowCounter* find_counter(
      std::string_view name, std::string_view labels) const;
  [[nodiscard]] const WindowGauge* find_gauge(std::string_view name,
                                              std::string_view labels) const;
  [[nodiscard]] const WindowHistogram* find_histogram(
      std::string_view name, std::string_view labels) const;

  /// Sums every counter series named `name` (any labels) — the fleet-wide
  /// delta for per-shard-labeled counters.
  [[nodiscard]] uint64_t counter_delta_sum(std::string_view name) const;
  /// Merges the bucket deltas of every histogram series named `name` into
  /// one WindowHistogram with recomputed quantiles. Returns nullopt when no
  /// series of that name recorded in this window's snapshot.
  [[nodiscard]] std::optional<WindowHistogram> merged_histogram(
      std::string_view name) const;
};

/// Whole-run streaming aggregate of one tracked per-window value.
struct SeriesAggregate {
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  uint64_t windows = 0;

  [[nodiscard]] double mean() const {
    return windows == 0 ? 0.0 : sum / static_cast<double>(windows);
  }
};

class TimeSeries {
 public:
  explicit TimeSeries(const MetricsRegistry* registry,
                      TimeSeriesConfig cfg = {});

  /// Takes a registry snapshot at caller-supplied time `now_ns`, deltas it
  /// against the previous snapshot, appends the WindowSample to the ring
  /// (evicting the oldest beyond capacity), and folds per-window values
  /// into the whole-run aggregates. Returns the freshly closed window.
  /// Single-threaded by design: one collector thread ticks; shard threads
  /// only touch the registry.
  const WindowSample& sample(uint64_t now_ns);

  [[nodiscard]] uint64_t total_windows() const { return next_index_; }
  /// Windows currently retained (<= window_capacity).
  [[nodiscard]] size_t size() const { return ring_.size(); }
  /// Retained window i, oldest-first (0 = oldest retained).
  [[nodiscard]] const WindowSample& window(size_t i) const { return ring_[i]; }
  [[nodiscard]] const WindowSample& latest() const { return ring_.back(); }

  /// Whole-run aggregates keyed `name{labels}.<field>` where <field> is
  /// one of rate/delta (counters), value (gauges), p50/p90/p99/p999/count
  /// (histograms).
  [[nodiscard]] const std::map<std::string, SeriesAggregate>& aggregates()
      const {
    return aggregates_;
  }
  [[nodiscard]] const SeriesAggregate* find_aggregate(
      std::string_view key) const;

  /// Full export: {"windows":[...], "aggregates":{...}} — each window
  /// carries timestamps plus its counter/gauge/histogram views (histogram
  /// buckets are elided; quantiles + count/sum are kept).
  [[nodiscard]] std::string to_json() const;

 private:
  void fold_aggregates(const WindowSample& w);

  const MetricsRegistry* registry_;
  TimeSeriesConfig cfg_;
  bool have_base_ = false;
  uint64_t base_ns_ = 0;
  MetricsRegistry::Snapshot base_;
  uint64_t next_index_ = 0;
  std::deque<WindowSample> ring_;
  std::map<std::string, SeriesAggregate> aggregates_;
};

/// Quantiles from a per-window bucket-delta array: same cumulative-count
/// crossing rule as Histogram::percentile, clamped to `max_bound`.
[[nodiscard]] uint64_t window_percentile(
    const uint64_t (&buckets)[Histogram::kBuckets], uint64_t count,
    uint64_t max_bound, double q);

}  // namespace sedspec::obs
