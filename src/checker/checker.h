// ES-Checker: runtime protection (paper §VI, Fig. 1 ③).
//
// Installed as the bus proxy, the checker simulates each I/O interaction on
// the execution specification *before* the emulated device executes it: it
// traverses the ES-CFG from the entry block, interpreting DSOD on a shadow
// device state (a StateArena mirroring the control structure layout, so
// simulated out-of-bounds stores corrupt adjacent shadow fields exactly as
// the exploit would corrupt the real struct) and following NBTD transitions.
//
// Three check strategies (§VI-A):
//   Parameter check     — UBSan-style integer overflow on every evaluated
//                         expression, and buffer-bounds validation whenever
//                         a *device-state-derived* index reads or writes a
//                         state buffer. (Indices derived from non-state
//                         temporaries are exactly the paper's CVE-2015-7504
//                         blind spot and are not bounds-checked.)
//   Indirect-jump check — at indirect blocks, the function-pointer field's
//                         shadow value must be a trained legitimate target.
//   Conditional-jump    — untrained branch directions, untrained commands,
//                         untrained I/O access kinds, command-access-table
//                         violations, and per-round block-visit counts
//                         beyond the trained bound (the concrete form we
//                         give "branches never traversed under normal
//                         operations" for loop-shaped control flow, which
//                         is how the CVE-2016-7909 infinite loop is caught).
//
// Two working modes (§VI-B):
//   kProtection  — any violation blocks the access and halts the device;
//   kEnhancement — only parameter-check violations block; the other two
//                  strategies alert warnings and execution continues (the
//                  shadow state is resynchronized from the device after a
//                  warning round so one warning does not cascade).
//
// Failure domain (robustness layer): the checker sits in front of every
// I/O access, so an *internal* checker fault — corrupt deployed spec,
// traversal bug, shadow-state divergence, a tripped traversal watchdog —
// must not take the VMM down with it. before_access/after_access form a
// containment boundary: any exception raised inside the checking path is
// caught, counted in CheckerStats, and resolved by the configured
// FailurePolicy. No exception ever escapes the proxy interface.
//
// Check backends (DESIGN.md §12): the traversal round itself is delegated
// to a pluggable engine::CheckEngine — the tree-walking interpreter or the
// compiled bytecode VM — selected by CheckerConfig::engine. Everything in
// this header is engine-agnostic.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "program/arena.h"
#include "spec/es_cfg.h"
#include "spec/spec_store.h"
#include "vdev/bus.h"

namespace sedspec::obs {
class EventTracer;
}  // namespace sedspec::obs

namespace sedspec::checker {

namespace engine {
class CheckEngine;
}  // namespace engine

using sedspec::Device;
using sedspec::IoAccess;
using sedspec::SiteId;

enum class Strategy : uint8_t {
  kParameter = 0,
  kIndirectJump = 1,
  kConditionalJump = 2,
};

[[nodiscard]] std::string_view strategy_name(Strategy s);

/// Alert severity per strategy (paper §VIII future work: "classify the
/// alert levels based on different check strategies"). Parameter-check
/// findings are "directly related to vulnerability exploitation and do not
/// cause false positives" (§VI-B) — critical; indirect-jump findings mean a
/// corrupted code pointer — high; conditional-jump findings may be
/// rare-command false positives — warning.
enum class Severity : uint8_t { kCritical = 0, kHigh = 1, kWarning = 2 };

[[nodiscard]] Severity severity_of(Strategy s);
[[nodiscard]] std::string_view severity_name(Severity s);

enum class Mode : uint8_t { kProtection, kEnhancement };

/// Which check backend a checker deploys (see checker/engine/engine.h).
/// kDefault resolves through engine::default_engine() at construction.
enum class EngineKind : uint8_t {
  kDefault = 0,
  kInterpreter = 1,
  kBytecode = 2,
};

[[nodiscard]] std::string_view engine_kind_name(EngineKind k);

/// How a contained internal checker fault degrades the deployment.
///   kFailClosed — block the access, quarantine the device (reset it to
///                 power-on state), resynchronize the shadow from it, and
///                 re-arm the checker. Availability costs a device reset;
///                 protection never lapses.
///   kFailOpen   — let the access through unprotected, raise a degraded-
///                 mode alert, and periodically attempt a self-heal
///                 (shadow resync + re-attach). The device stays fully
///                 available; protection lapses until the re-attach sticks.
enum class FailurePolicy : uint8_t { kFailClosed = 0, kFailOpen = 1 };

[[nodiscard]] std::string_view failure_policy_name(FailurePolicy p);

/// Internal checker malfunction (tripped watchdog, injected fault, ...).
/// Raised inside the checking path and resolved by the containment layer;
/// never crosses before_access/after_access.
class CheckerFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Violation {
  Strategy strategy = Strategy::kParameter;
  SiteId site = sedspec::kInvalidSite;  // block where detected
  std::string detail;

  [[nodiscard]] Severity severity() const { return severity_of(strategy); }
};

/// One enforcement outcome as shipped off the hot check path (through a
/// bounded MPSC queue, see report_queue.h). Deliberately a fixed-size POD —
/// no strings, no allocation — so emitting a report never blocks or
/// allocates inside before_access. The consumer resolves `shard` back to a
/// device/VM.
struct Report {
  enum class Kind : uint8_t {
    kViolation = 0,  // one Violation; `strategy`/`site` are meaningful
    kBlocked,        // the round was vetoed (protection/parameter block)
    kQuarantine,     // fail-closed containment reset the device
    kSelfHeal,       // fail-open degradation healed (resync + re-attach)
    kDegraded,       // fail-open containment entered degraded mode
    kRedeploy,       // shard swapped to a new spec snapshot; value=version
  };

  Kind kind = Kind::kViolation;
  Strategy strategy = Strategy::kParameter;  // kViolation only
  uint32_t shard = 0;                        // producer shard id
  SiteId site = sedspec::kInvalidSite;       // kViolation only
  uint64_t seq = 0;    // per-shard emission sequence (gap = lost report)
  uint64_t value = 0;  // kind-specific (spec version on kRedeploy)
};

[[nodiscard]] std::string_view report_kind_name(Report::Kind k);

/// Where the checker ships reports. Implementations must be safe to call
/// from many shard threads concurrently and must never block: offer()
/// either accepts the report or returns false (bounded queue full). The
/// SINK is the single source of truth for drop accounting (ReportQueue
/// counts its own rejections and attributes them per shard); the caller
/// only counts offers made (CheckerStats.reports_offered), so drops are
/// derivable as offered - emitted without double-booking.
class ReportSink {
 public:
  virtual ~ReportSink() = default;
  virtual bool offer(const Report& r) = 0;
};

struct CheckResult {
  std::vector<Violation> violations;
  bool blocked = false;  // the access was vetoed
  bool halted = false;   // the device was halted (protection mode)
  uint64_t steps = 0;    // ES-CFG blocks traversed

  [[nodiscard]] bool clean() const { return violations.empty(); }
  [[nodiscard]] bool any(Strategy s) const;
};

struct CheckerConfig {
  Mode mode = Mode::kProtection;

  // Per-strategy switches (the paper's case studies "activate only one
  // check strategy for each experiment").
  bool enable_parameter = true;
  bool enable_indirect = true;
  bool enable_conditional = true;

  /// Check backend. kDefault resolves through the process-wide
  /// engine::default_engine() knob (ships as kBytecode).
  EngineKind engine = EngineKind::kDefault;

  /// Per-round visit bound = max(slack_min, trained_max * slack_multiplier).
  uint64_t visit_slack_multiplier = 8;
  uint64_t visit_slack_min = 64;
  /// Absolute traversal budget per round.
  uint64_t max_steps = 1u << 20;
  /// Resynchronize the shadow state from the device after a warning round
  /// (enhancement mode) so a single warning does not cascade.
  bool resync_after_warning = true;
  /// Record violations but never block or halt (evaluation aid: lets a
  /// whole exploit run to completion while counting what each strategy
  /// would have reported round by round).
  bool monitor_only = false;
  /// Rollback recovery (paper §VIII future work: "using rollback to restore
  /// the virtual machine state to a previous point before the
  /// exploitation"): instead of halting on a blocked access, restore the
  /// device's control structure from the last clean checkpoint and keep the
  /// device available. Costs one arena copy per clean round.
  bool rollback_on_violation = false;

  /// Resolution policy for contained internal faults (see FailurePolicy).
  FailurePolicy failure_policy = FailurePolicy::kFailClosed;
  /// Hard traversal backstop: if one round walks more steps than this, the
  /// round is aborted with a CheckerFault into the containment layer. Set
  /// above max_steps — it only fires when the ordinary budget check itself
  /// is broken (spec corruption, internal bug, injected fault).
  uint64_t watchdog_steps = 1u << 22;
  /// Fail-open only: degraded rounds served unprotected between self-heal
  /// (shadow resync + re-attach) attempts.
  uint64_t self_heal_interval = 16;

  /// Metric-label override for the `device=` dimension (latency histogram
  /// and publish_metrics gauges). Empty (default) uses the spec's device
  /// name; the enforcement service sets per-shard labels ("fdc#3") so two
  /// shards of the same device type export distinct series.
  std::string metrics_label;
};

/// Bookkeeping invariant:
///   rounds == clean_rounds + warnings + blocked + degraded_rounds
/// Contained faults resolve into `blocked` (fail-closed) or
/// `degraded_rounds` (fail-open), so the invariant survives faults.
///
/// When adding a field: update merge(), publish_checker_stats(), the
/// field-by-field merge test, and the sizeof static_asserts guarding them
/// (checker.cc and checker_set_test.cc).
struct CheckerStats {
  uint64_t rounds = 0;
  uint64_t clean_rounds = 0;
  uint64_t blocked = 0;
  uint64_t warnings = 0;
  uint64_t violations_by_strategy[3] = {0, 0, 0};
  uint64_t rollbacks = 0;
  uint64_t total_steps = 0;

  // Failure-domain counters.
  uint64_t contained_faults = 0;    // internal faults caught at the boundary
  uint64_t fail_closed_faults = 0;  // ... resolved by quarantine/block
  uint64_t fail_open_faults = 0;    // ... resolved by unprotected passthrough
  uint64_t degraded_rounds = 0;     // rounds served without protection
  uint64_t quarantines = 0;         // device quarantine/reset cycles
  uint64_t self_heals = 0;          // successful re-attach after degradation

  // Observability: nanoseconds spent inside guarded checking (accumulated
  // only while obs::timing_enabled(); otherwise stays 0).
  uint64_t check_ns = 0;

  // Report-queue accounting (concurrency layer): offers the attached
  // ReportSink accepted and total offers attempted. The check path never
  // blocks on a full queue — the QUEUE counts its rejections (single
  // source of truth; see ReportQueue::dropped); per-checker drops are
  // reports_offered - reports_emitted.
  uint64_t reports_emitted = 0;
  uint64_t reports_offered = 0;

  // Redeploy robustness (control plane): transient spec-fetch failures
  // retried with backoff during shard spec polling. Incremented by the
  // enforcement shard loop, not the checker itself — it lives here so fleet
  // aggregation and publish_checker_stats carry it for free.
  uint64_t redeploy_retries = 0;

  /// Sums another checker's counters into this one (fleet aggregation).
  void merge(const CheckerStats& other);
};

/// Canonical name for the enabled-strategy set of a config: "all", "none",
/// a single strategy ("parameter" / "indirect" / "conditional"), or
/// "mixed". Used as the `strategies` metric label on check-latency
/// histograms, so single-strategy deployments yield per-strategy
/// percentiles.
[[nodiscard]] std::string strategy_set_name(const CheckerConfig& config);

/// Publishes every CheckerStats field as a `checker_*` gauge labeled
/// `device="<label>"` into `registry` (snapshot semantics: gauges are
/// overwritten each call).
void publish_checker_stats(obs::MetricsRegistry& registry,
                           const std::string& device_label,
                           const CheckerStats& stats);

/// Fault-injection seam (faultinject layer 4): consulted once per checked
/// round with the shadow arena (so a hook can corrupt shadow state
/// mid-round). The returned flags model internal checker bugs.
struct InternalFault {
  bool throw_in_traversal = false;  // forced traversal exception
  bool suppress_termination = false;  // break budget/visit-bound checks;
                                      // only the watchdog can stop the round
};
using FaultHook = std::function<InternalFault(sedspec::StateArena& shadow)>;

/// Everything a deployment attaches to a checker, in one struct: the report
/// sink (+ producer shard id), the per-shard flight-recorder ring, and the
/// fault-injection hook. Accepted at construction and via attach(); the
/// legacy per-field setters delegate here. All pointers are borrowed and
/// must outlive the checker; value-initialized CheckerHooks{} detaches
/// everything.
struct CheckerHooks {
  /// Violation/containment report destination (nullptr = detached). See
  /// ReportSink for the drop-accounting contract.
  ReportSink* report_sink = nullptr;
  /// Producer shard id stamped into every emitted Report.
  uint32_t shard_id = 0;
  /// Per-shard flight-recorder ring (see obs/flight.h): when set, every
  /// checked round records a fixed-cost kIoAccess event (a = address,
  /// b = traversal steps) and violation/quarantine/self-heal events into
  /// it, giving incident bundles the last-K-rounds context.
  obs::EventTracer* local_tracer = nullptr;
  /// Consulted once per checked round (see InternalFault).
  FaultHook fault_hook;
};

class EsChecker final : public sedspec::IoProxy {
 public:
  /// Attaches to `device`: the shadow state is initialized from the
  /// device's control structure (paper §V-A: "initialized with the values
  /// from the emulated device control structure upon booting").
  EsChecker(const spec::EsCfg* cfg, Device* device, CheckerConfig config = {},
            CheckerHooks hooks = {});

  /// Snapshot-pinning attach (concurrency layer): the checker keeps the
  /// SpecStore snapshot alive for its own lifetime, so a concurrent
  /// publish() of a newer version can never free a graph this checker is
  /// traversing. Redeploy = construct a new checker from the new snapshot
  /// and swap proxies between rounds.
  EsChecker(spec::SnapshotRef snapshot, Device* device,
            CheckerConfig config = {}, CheckerHooks hooks = {});

  ~EsChecker() override;

  // IoProxy -------------------------------------------------------------
  // Containment boundary: no exception raised by the checking path escapes
  // either hook; internal faults resolve via config().failure_policy.
  bool before_access(Device& device, const IoAccess& io) override;
  void after_access(Device& device, const IoAccess& io) override;

  /// Core traversal: simulates one I/O round, returns every violation.
  /// Does not apply the mode policy (before_access does). NOT a containment
  /// boundary — internal faults (watchdog, injected) propagate to the
  /// caller; use the proxy hooks for contained checking.
  [[nodiscard]] CheckResult check(const IoAccess& io);

  /// Re-copies the shadow state from the device (used after reset).
  void resync();

  [[nodiscard]] const CheckerStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Publishes this checker's stats into `registry` (gauges labeled with
  /// the device name; see publish_checker_stats).
  void publish_metrics(obs::MetricsRegistry& registry) const;

  [[nodiscard]] const CheckResult& last_result() const { return last_; }
  [[nodiscard]] sedspec::StateArena& shadow() { return shadow_; }
  [[nodiscard]] const CheckerConfig& config() const { return config_; }
  void set_mode(Mode mode) { config_.mode = mode; }

  /// The resolved check backend this deployment runs (never kDefault).
  [[nodiscard]] EngineKind engine_kind() const { return engine_kind_; }
  /// The live engine (differential tests / diagnostics).
  [[nodiscard]] engine::CheckEngine& engine() { return *engine_; }

  /// True while the checker serves rounds unprotected after a fail-open
  /// containment, waiting for the next self-heal attempt.
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Version of the pinned snapshot (0 when constructed from a raw EsCfg).
  [[nodiscard]] uint64_t spec_version() const {
    return snapshot_ == nullptr ? 0 : snapshot_->version;
  }
  [[nodiscard]] const spec::SnapshotRef& snapshot() const {
    return snapshot_;
  }

  /// Replaces ALL attachments at once (the redesigned attachment API).
  /// attach(CheckerHooks{}) detaches everything.
  void attach(CheckerHooks hooks) { hooks_ = std::move(hooks); }
  [[nodiscard]] const CheckerHooks& hooks() const { return hooks_; }

  // Legacy per-field setters: thin wrappers over attach()'s hooks struct,
  // kept so call sites can migrate incrementally.
  void set_report_sink(ReportSink* sink, uint32_t shard_id = 0) {
    hooks_.report_sink = sink;
    hooks_.shard_id = shard_id;
  }
  void set_local_tracer(obs::EventTracer* tracer) {
    hooks_.local_tracer = tracer;
  }
  [[nodiscard]] obs::EventTracer* local_tracer() const {
    return hooks_.local_tracer;
  }
  void set_fault_hook(FaultHook hook) {
    hooks_.fault_hook = std::move(hook);
  }

  // Back-compat aliases (the fault seam predates namespace-scope hooks).
  using InternalFault = checker::InternalFault;
  using FaultHook = checker::FaultHook;

  /// Label used for the `device=` metric dimension (config override or the
  /// spec's device name).
  [[nodiscard]] const std::string& metrics_label() const;

 private:
  [[nodiscard]] bool strategy_enabled(Strategy s) const;
  void emit_report(Report::Kind kind, Strategy strategy, SiteId site,
                   uint64_t value = 0);
  bool guarded_before_access(Device& device, const IoAccess& io);
  bool contain_fault(Device& device, const std::string& what,
                     bool count_round);

  const spec::EsCfg* cfg_;
  spec::SnapshotRef snapshot_;  // pins cfg_ when store-deployed
  Device* device_;
  CheckerConfig config_;
  CheckerHooks hooks_;
  uint64_t report_seq_ = 0;
  sedspec::StateArena shadow_;
  CheckerStats stats_;
  CheckResult last_;
  bool pending_resync_ = false;
  bool degraded_ = false;
  uint64_t degraded_rounds_since_heal_ = 0;
  // Resolved once at construction; recording is relaxed-atomic only.
  obs::Histogram* latency_hist_ = nullptr;
  // Live cumulative violation counter (checker_violations_total{device=})
  // — unlike the publish_metrics gauges this updates on the hot path, so
  // the time-series/SLO layer can window violation rates without polling
  // every checker.
  obs::Counter* violations_counter_ = nullptr;

  EngineKind engine_kind_ = EngineKind::kInterpreter;
  std::unique_ptr<engine::CheckEngine> engine_;
  std::unique_ptr<sedspec::StateArena> checkpoint_;  // rollback mode only
};

}  // namespace sedspec::checker
