// SDHCI end-to-end: benign traffic clean; CVE-2021-3409 detected by the
// parameter check (unsigned underflow of blksize - data_count, plus the
// fifo_buffer overflow on the grow variant) and by no other strategy, as
// Table III reports.
#include <gtest/gtest.h>

#include "checker/checker.h"
#include "devices/sdhci.h"
#include "guest/sdhci_driver.h"
#include "sedspec/pipeline.h"
#include "vdev/bus.h"

namespace sedspec {
namespace {

using checker::CheckerConfig;
using checker::EsChecker;
using checker::Mode;
using checker::Strategy;
using devices::SdhciDevice;
using guest::SdhciDriver;

void benign_training(SdhciDriver& drv) {
  drv.init_card();
  std::vector<uint8_t> block(SdhciDevice::kBlockSize);
  std::vector<uint8_t> multi(4 * SdhciDevice::kBlockSize);
  for (uint32_t b = 0; b < 4; ++b) {
    for (size_t i = 0; i < block.size(); ++i) {
      block[i] = static_cast<uint8_t>(b * 3 + i);
    }
    drv.write_block(b, block);
    std::vector<uint8_t> back(SdhciDevice::kBlockSize);
    drv.read_block(b, back);
    ASSERT_EQ(back, block);
  }
  for (size_t i = 0; i < multi.size(); ++i) {
    multi[i] = static_cast<uint8_t>(i * 7);
  }
  drv.write_blocks(8, 4, multi);
  std::vector<uint8_t> back(multi.size());
  drv.read_blocks(8, 4, back);
  ASSERT_EQ(back, multi);
  // Benign driver quirk: redundant BLKSIZE reprogram mid-transfer.
  drv.write_block_with_reprogram(2, block);
  std::vector<uint8_t> quirk_back(SdhciDevice::kBlockSize);
  drv.read_block_with_reprogram(2, quirk_back);
  ASSERT_EQ(quirk_back, block);
}

struct Harness {
  SdhciDevice device;
  IoBus bus;
  SdhciDriver driver;
  spec::EsCfg cfg;
  std::unique_ptr<EsChecker> checker;

  explicit Harness(SdhciDevice::Vulns vulns = {}, CheckerConfig config = {})
      : device(vulns), driver(&bus) {
    bus.map(IoSpace::kMmio, SdhciDevice::kBaseAddr, SdhciDevice::kMmioSpan,
            &device);
    cfg = pipeline::build_spec(device, [this] {
      SdhciDriver train(&bus);
      benign_training(train);
    });
    checker = pipeline::deploy(cfg, device, bus, config);
  }
};

// CVE-2021-3409 shrink variant: start a write transfer, push some bytes,
// shrink BLKSIZE below data_count, keep pushing.
void exploit_shrink(SdhciDriver& drv) {
  drv.w16(SdhciDevice::kRegBlkCnt, 1);
  drv.w32(SdhciDevice::kRegArg, 1);
  drv.w16(SdhciDevice::kRegCmd,
          static_cast<uint16_t>(SdhciDevice::kCmdWriteSingle) << 8);
  for (int i = 0; i < 64; ++i) {
    drv.w8(SdhciDevice::kRegBData, 0x41);
  }
  drv.w16(SdhciDevice::kRegBlkSize, 16);  // 16 < data_count: underflow
  drv.w8(SdhciDevice::kRegBData, 0x42);  // (blksize - data_count) wraps here
}

// Grow variant: raise BLKSIZE past the 512-byte fifo mid-transfer.
void exploit_grow(SdhciDriver& drv) {
  drv.w16(SdhciDevice::kRegBlkCnt, 1);
  drv.w32(SdhciDevice::kRegArg, 1);
  drv.w16(SdhciDevice::kRegCmd,
          static_cast<uint16_t>(SdhciDevice::kCmdWriteSingle) << 8);
  drv.w16(SdhciDevice::kRegBlkSize, 0x800);  // > fifo size
  for (int i = 0; i < 0x700; ++i) {
    drv.w8(SdhciDevice::kRegBData, 0x41);
  }
}

TEST(SdhciPipeline, BenignWorkloadIsClean) {
  Harness h;
  benign_training(h.driver);
  EXPECT_EQ(h.checker->stats().blocked, 0u);
  EXPECT_EQ(h.checker->stats().warnings, 0u);
  EXPECT_TRUE(h.device.incidents().empty());
}

TEST(SdhciPipeline, UnprotectedShrinkCorruptsDevice) {
  SdhciDevice device(SdhciDevice::Vulns{.cve_2021_3409 = true});
  IoBus bus;
  bus.map(IoSpace::kMmio, SdhciDevice::kBaseAddr, SdhciDevice::kMmioSpan,
          &device);
  SdhciDriver drv(&bus);
  drv.init_card();
  exploit_grow(drv);
  EXPECT_TRUE(device.has_incident(IncidentKind::kOobWrite));
}

TEST(SdhciPipeline, ShrinkDetectedByParameterCheckAlone) {
  CheckerConfig config;
  config.enable_indirect = false;
  config.enable_conditional = false;
  Harness h(SdhciDevice::Vulns{.cve_2021_3409 = true}, config);
  exploit_shrink(h.driver);
  EXPECT_GT(h.checker->stats().violations_by_strategy[0], 0u);
  EXPECT_TRUE(h.device.halted());
}

TEST(SdhciPipeline, GrowDetectedByParameterCheckAlone) {
  CheckerConfig config;
  config.enable_indirect = false;
  config.enable_conditional = false;
  Harness h(SdhciDevice::Vulns{.cve_2021_3409 = true}, config);
  exploit_grow(h.driver);
  EXPECT_GT(h.checker->stats().violations_by_strategy[0], 0u);
  EXPECT_TRUE(h.device.halted());
  EXPECT_FALSE(h.device.has_incident(IncidentKind::kOobWrite));
}

TEST(SdhciPipeline, ShrinkNotDetectedByOtherStrategies) {
  CheckerConfig config;
  config.enable_parameter = false;
  Harness h(SdhciDevice::Vulns{.cve_2021_3409 = true}, config);
  exploit_shrink(h.driver);
  EXPECT_EQ(h.checker->stats().violations_by_strategy[1], 0u);
  EXPECT_EQ(h.checker->stats().violations_by_strategy[2], 0u);
  EXPECT_FALSE(h.device.halted());
}

TEST(SdhciPipeline, RareCommandIsAFalsePositive) {
  CheckerConfig config;
  config.mode = Mode::kEnhancement;
  Harness h({}, config);
  h.driver.switch_function();  // CMD6: legal, untrained
  EXPECT_GT(h.checker->stats().warnings, 0u);
  EXPECT_FALSE(h.device.halted());
  // Normal operation continues.
  std::vector<uint8_t> block(SdhciDevice::kBlockSize, 0x5a);
  h.driver.write_block(3, block);
  std::vector<uint8_t> back(SdhciDevice::kBlockSize);
  h.driver.read_block(3, back);
  EXPECT_EQ(back, block);
}

}  // namespace
}  // namespace sedspec
