// Deterministic random number generation for workloads and fuzzing.
//
// Every randomized component in the repository (training-sample generators,
// long-run workloads, the benign fuzzer, exploit jitter) draws from an Rng
// seeded explicitly, so all experiments are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace sedspec {

/// xoshiro256** with a SplitMix64 seeding stage. Not cryptographic; fast and
/// statistically solid for simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  uint32_t next_u32() { return static_cast<uint32_t>(next_u64() >> 32); }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) {
    SEDSPEC_REQUIRE(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = next_u64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform in [lo, hi] inclusive.
  uint64_t range(uint64_t lo, uint64_t hi) {
    SEDSPEC_REQUIRE(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return static_cast<double>(next_u64() >> 11) *
               (1.0 / 9007199254740992.0) <
           p;
  }

  /// Picks an index weighted by `weights` (all non-negative, sum > 0).
  size_t weighted(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) {
      SEDSPEC_REQUIRE(w >= 0);
      total += w;
    }
    SEDSPEC_REQUIRE(total > 0);
    double r = static_cast<double>(next_u64() >> 11) *
               (1.0 / 9007199254740992.0) * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      if (r < weights[i]) return i;
      r -= weights[i];
    }
    return weights.size() - 1;
  }

  /// Derives an independent child stream (for per-device sub-generators).
  Rng fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
};

}  // namespace sedspec
