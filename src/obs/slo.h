// SLO engine: declarative objectives over TimeSeries windows with
// multi-window burn-rate alerting.
//
// An SloSpec names one metric condition evaluated per window — a windowed
// histogram quantile bound (`check_latency_ns p99 < 500us`), a counter
// rate bound (`report_queue_dropped_total rate == 0`), a gauge level, or a
// gauge growth bound (`rss_bytes growth < X/window`). Each window either
// meets or violates the condition; a single bad window is weather, not an
// incident.
//
// Breach detection follows the SRE multi-window burn-rate rule: the
// violating-window fraction over a short `fast_windows` horizon AND a long
// `slow_windows` horizon must BOTH exceed their burn thresholds (fraction
// relative to the error `budget`). The fast window makes alerts prompt;
// the slow window keeps a transient spike from paging. A breach is
// recorded as an EventType::kSloBreach trace event and counted, so the
// control plane (StageObservation::slo_breaches) and the flight recorder
// can both act on it.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "obs/timeseries.h"

namespace sedspec::obs {

enum class SloKind : uint8_t {
  /// Windowed quantile of a histogram must stay <= threshold.
  kHistogramQuantileMax = 0,
  /// Per-window counter rate (delta/sec) must stay <= threshold.
  kCounterRateMax,
  /// Gauge value at window end must stay <= threshold.
  kGaugeMax,
  /// Gauge growth across one window must stay <= threshold.
  kGaugeGrowthMax,
};

[[nodiscard]] const char* slo_kind_name(SloKind k);

struct SloSpec {
  std::string name;    // objective name (trace detail, verdict key)
  SloKind kind = SloKind::kHistogramQuantileMax;
  std::string metric;  // registry metric family name
  /// Canonical label string selecting one series; empty = merge ALL series
  /// of the family (histograms: bucket-merge; counters: delta sum; gauges:
  /// value/delta sum).
  std::string labels;
  double quantile = 0.99;  // kHistogramQuantileMax only
  double threshold = 0.0;  // compare: observed <= threshold is healthy
  /// Burn-rate horizons, in windows. fast <= slow.
  size_t fast_windows = 1;
  size_t slow_windows = 12;
  /// Error budget: tolerated violating-window fraction. burn = fraction /
  /// budget; a burn of 1.0 is exactly on budget.
  double budget = 0.01;
  double fast_burn = 1.0;  // breach when fast burn >= this ...
  double slow_burn = 1.0;  // ... AND slow burn >= this
};

struct SloVerdict {
  std::string slo;         // SloSpec::name
  double value = 0.0;      // observed value this window
  double threshold = 0.0;
  bool violating = false;  // this window alone exceeded the threshold
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  bool breach = false;     // multi-window burn-rate alert fired
  std::string detail;      // human-readable "<metric> <field> = <value>"
};

class SloEngine {
 public:
  void add(SloSpec spec);
  [[nodiscard]] const std::vector<SloSpec>& specs() const { return specs_; }

  /// Evaluates every SLO against one closed window. Emits a kSloBreach
  /// trace event (to the global tracer, when installed) per breaching SLO.
  /// Single-threaded, same collector thread as TimeSeries::sample.
  std::vector<SloVerdict> evaluate(const WindowSample& w);

  /// Total breaches across all evaluations (what ControlPlane::slo_feed
  /// and the soak gate read).
  [[nodiscard]] uint64_t breaches() const { return breaches_; }
  /// Total violating windows (any SLO) across all evaluations.
  [[nodiscard]] uint64_t violating_windows() const {
    return violating_windows_;
  }

  /// {"slos":[{spec...}],"verdicts_last":[...],"breaches":N}
  [[nodiscard]] std::string to_json() const;

 private:
  struct History {
    std::deque<bool> violating;  // most recent slow_windows flags
  };

  [[nodiscard]] static double observe(const SloSpec& spec,
                                      const WindowSample& w,
                                      std::string* detail);

  std::vector<SloSpec> specs_;
  std::vector<History> history_;  // parallel to specs_
  std::vector<SloVerdict> last_;
  uint64_t breaches_ = 0;
  uint64_t violating_windows_ = 0;
};

}  // namespace sedspec::obs
