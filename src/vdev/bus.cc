#include "vdev/bus.h"

#include <chrono>
#include <functional>
#include <thread>

#include "common/assert.h"
#include "obs/trace.h"

namespace sedspec {

namespace {
uint64_t this_thread_token() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1;
}
}  // namespace

void spin_wait_ns(uint64_t ns) {
  if (ns == 0) {
    return;
  }
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < until) {
    // busy wait: models fixed hardware/hypervisor path latency
  }
}

IoBus::IoBus()
    : obs_accesses_(&obs::metrics().counter("bus_accesses_total")),
      obs_blocked_(&obs::metrics().counter("bus_blocked_total")),
      obs_proxy_faults_(&obs::metrics().counter("bus_proxy_faults_total")) {}

void IoBus::exit_cost() const {
  if (access_latency_ns_ == 0) {
    return;
  }
  if (latency_model_ == LatencyModel::kSleep) {
    // Model the trapped vCPU blocking (not burning) its core during the
    // exit. Actual sleep duration is at the mercy of timer slack —
    // throughput runs care about overlap, not the exact figure.
    std::this_thread::sleep_for(std::chrono::nanoseconds(access_latency_ns_));
    return;
  }
  spin_wait_ns(access_latency_ns_);
}

void IoBus::bind_owner_thread() {
  owner_token_.store(this_thread_token(), std::memory_order_relaxed);
}

void IoBus::check_owner() {
  const uint64_t owner = owner_token_.load(std::memory_order_relaxed);
  if (owner != 0 && owner != this_thread_token()) {
    owner_violations_.fetch_add(1, std::memory_order_relaxed);
  }
}

void IoBus::trace_access_slow(obs::EventTracer& tr, const Device& dev,
                              const IoAccess& io) const {
  if (!tr.verbose()) {
    return;
  }
  tr.record(obs::EventType::kIoAccess, "io_access", dev.name(),
            io.is_write ? "write" : "read", io.addr, io.value);
}

void IoProxy::after_access(Device& /*device*/, const IoAccess& /*io*/) {}

bool IoBus::proxy_allows(Device& dev, const IoAccess& io) {
  try {
    return proxy_->before_access(dev, io);
  } catch (...) {
    // Contract violation (proxies must contain their own faults): last-
    // resort fail-closed — block the access rather than crash the VMM or
    // let an unchecked access through.
    ++proxy_faults_;
    obs_proxy_faults_->inc();
    return false;
  }
}

void IoBus::proxy_done(Device& dev, const IoAccess& io) {
  try {
    proxy_->after_access(dev, io);
  } catch (...) {
    ++proxy_faults_;
    obs_proxy_faults_->inc();
  }
}

void IoBus::map(IoSpace space, uint64_t base, uint64_t len, Device* device) {
  SEDSPEC_REQUIRE(device != nullptr && len > 0);
  for (const Mapping& m : mappings_) {
    if (m.space == space && base < m.base + m.len && m.base < base + len) {
      SEDSPEC_REQUIRE_MSG(false, "overlapping I/O mapping");
    }
  }
  mappings_.push_back(Mapping{space, base, len, device});
}

Device* IoBus::device_at(IoSpace space, uint64_t addr) const {
  for (const Mapping& m : mappings_) {
    if (m.space == space && addr >= m.base && addr < m.base + m.len) {
      return m.device;
    }
  }
  return nullptr;
}

uint64_t IoBus::read(IoSpace space, uint64_t addr, uint8_t size) {
  check_owner();
  note_access();
  exit_cost();
  Device* dev = device_at(space, addr);
  if (dev == nullptr) {
    return ~uint64_t{0} >> (64 - 8 * size);
  }
  if (dev->halted()) {
    note_blocked();
    return 0;
  }
  IoAccess io;
  io.space = space;
  io.addr = addr;
  io.size = size;
  io.is_write = false;
  if (proxy_ != nullptr && !proxy_allows(*dev, io)) {
    note_blocked();
    return 0;
  }
  const uint64_t value = dev->io_read(io);
  IoAccess done = io;
  done.value = value;
  trace_access(*dev, done);
  if (proxy_ != nullptr) {
    proxy_done(*dev, done);
  }
  return value;
}

void IoBus::write(IoSpace space, uint64_t addr, uint8_t size, uint64_t value) {
  check_owner();
  note_access();
  exit_cost();
  Device* dev = device_at(space, addr);
  if (dev == nullptr) {
    return;
  }
  if (dev->halted()) {
    note_blocked();
    return;
  }
  IoAccess io;
  io.space = space;
  io.addr = addr;
  io.size = size;
  io.value = value;
  io.is_write = true;
  if (proxy_ != nullptr && !proxy_allows(*dev, io)) {
    note_blocked();
    return;
  }
  dev->io_write(io);
  trace_access(*dev, io);
  if (proxy_ != nullptr) {
    proxy_done(*dev, io);
  }
}

}  // namespace sedspec
