// Tests for the paper's §VIII extension features:
//  - specification merging (the false-positive remedy: "distributing
//    SEDSpec among device developers and testers"),
//  - rollback recovery ("using rollback to restore the ... state to a
//    previous point before the exploitation"),
//  - alert severity classification per check strategy.
#include <gtest/gtest.h>

#include "checker/checker.h"
#include "devices/fdc.h"
#include "guest/fdc_driver.h"
#include "sedspec/pipeline.h"
#include "spec/diff.h"
#include "spec/merge.h"
#include "vdev/bus.h"

namespace sedspec {
namespace {

using checker::CheckerConfig;
using checker::Mode;
using checker::Severity;
using checker::Strategy;
using devices::FdcDevice;
using guest::FdcDriver;

void base_training(IoBus& bus) {
  FdcDriver drv(&bus);
  drv.reset();
  drv.specify();
  drv.recalibrate();
  std::vector<uint8_t> sector(512, 0x42);
  drv.write_sector(0, 0, 1, sector);
  std::vector<uint8_t> back(512);
  drv.read_sector(0, 0, 1, back);
}

TEST(SpecMerge, UnionRemovesFalsePositives) {
  FdcDevice device;
  IoBus bus;
  bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan, &device);

  // Site A (a cloud operator) trains the common mix only.
  spec::EsCfg site_a = pipeline::build_spec(device, [&] { base_training(bus); });
  // Site B (the device's test team) also exercises the rare commands.
  spec::EsCfg site_b = pipeline::build_spec(device, [&] {
    base_training(bus);
    FdcDriver drv(&bus);
    (void)drv.read_id();
    (void)drv.dumpreg();
  });

  // Under site A's spec alone, READ ID is a false positive.
  {
    CheckerConfig config;
    config.mode = Mode::kEnhancement;
    device.reset();
    auto checker = pipeline::deploy(site_a, device, bus, config);
    FdcDriver drv(&bus);
    (void)drv.read_id();
    EXPECT_GT(checker->stats().warnings, 0u);
    bus.set_proxy(nullptr);
  }

  // The merged specification accepts both sites' behaviors.
  const spec::EsCfg merged = spec::merge(site_a, site_b);
  EXPECT_GE(merged.commands.size(), site_a.commands.size());
  EXPECT_GE(merged.blocks.size(), site_a.blocks.size());
  {
    CheckerConfig config;
    config.mode = Mode::kEnhancement;
    device.reset();
    auto checker = pipeline::deploy(merged, device, bus, config);
    FdcDriver drv(&bus);
    (void)drv.read_id();
    (void)drv.dumpreg();
    std::vector<uint8_t> sector(512, 0x17);
    drv.write_sector(1, 0, 2, sector);
    EXPECT_EQ(checker->stats().warnings, 0u);
    EXPECT_EQ(checker->stats().blocked, 0u);
    bus.set_proxy(nullptr);
  }
}

TEST(SpecMerge, MergeIsIdempotentOnEqualSpecs) {
  FdcDevice device;
  IoBus bus;
  bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan, &device);
  spec::EsCfg cfg = pipeline::build_spec(device, [&] { base_training(bus); });
  const spec::EsCfg merged = spec::merge(cfg, cfg);
  EXPECT_EQ(merged.blocks.size(), cfg.blocks.size());
  EXPECT_EQ(merged.entry_dispatch.size(), cfg.entry_dispatch.size());
  EXPECT_EQ(spec::edge_keys(merged), spec::edge_keys(cfg));
}

TEST(SpecDiff, ReportsWhatTheOtherCorpusAdds) {
  FdcDevice device;
  IoBus bus;
  bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan, &device);
  spec::EsCfg site_a = pipeline::build_spec(device, [&] { base_training(bus); });
  spec::EsCfg site_b = pipeline::build_spec(device, [&] {
    base_training(bus);
    FdcDriver drv(&bus);
    (void)drv.read_id();
  });
  const spec::SpecDiff d = spec::diff(site_a, site_b);
  EXPECT_TRUE(d.only_a.empty());  // b is a strict superset
  EXPECT_FALSE(d.only_b.empty());
  EXPECT_GT(d.common, 0u);
  EXPECT_FALSE(d.identical());
  EXPECT_NE(spec::to_text(d).find("+B"), std::string::npos);

  // Merging makes the diff one-sided-empty against both inputs.
  const spec::EsCfg merged = spec::merge(site_a, site_b);
  EXPECT_TRUE(spec::diff(site_b, merged).only_a.empty());
  EXPECT_TRUE(spec::diff(merged, site_b).only_b.empty());
  EXPECT_TRUE(spec::diff(site_a, site_a).identical());
}

TEST(SpecMerge, DifferentDevicesRejected) {
  FdcDevice device;
  IoBus bus;
  bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan, &device);
  spec::EsCfg cfg = pipeline::build_spec(device, [&] { base_training(bus); });
  spec::EsCfg other = cfg;
  other.device_name = "not-fdc";
  EXPECT_THROW((void)spec::merge(cfg, other), spec::BuildError);
}

TEST(RollbackRecovery, VenomRolledBackDeviceStaysAvailable) {
  FdcDevice device(FdcDevice::Vulns{.cve_2015_3456 = true});
  IoBus bus;
  bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan, &device);
  spec::EsCfg cfg = pipeline::build_spec(device, [&] { base_training(bus); });
  CheckerConfig config;
  config.rollback_on_violation = true;
  auto checker = pipeline::deploy(cfg, device, bus, config);

  FdcDriver drv(&bus);
  drv.reset();
  // Venom attempt: blocked and rolled back, not halted.
  drv.write_fifo(FdcDevice::kCmdDriveSpec);
  for (int i = 0; i < 700; ++i) {
    drv.write_fifo(0x01);
  }
  EXPECT_GT(checker->stats().blocked, 0u);
  EXPECT_GT(checker->stats().rollbacks, 0u);
  EXPECT_FALSE(device.halted());
  EXPECT_TRUE(device.incidents().empty());

  // The device is still fully functional for the benign tenant.
  std::vector<uint8_t> sector(512, 0x5a);
  drv.write_sector(0, 0, 3, sector);
  std::vector<uint8_t> back(512);
  drv.read_sector(0, 0, 3, back);
  EXPECT_EQ(back, sector);
}

TEST(Severity, StrategiesMapToPaperAlertLevels) {
  EXPECT_EQ(checker::severity_of(Strategy::kParameter), Severity::kCritical);
  EXPECT_EQ(checker::severity_of(Strategy::kIndirectJump), Severity::kHigh);
  EXPECT_EQ(checker::severity_of(Strategy::kConditionalJump),
            Severity::kWarning);
  checker::Violation v;
  v.strategy = Strategy::kIndirectJump;
  EXPECT_EQ(v.severity(), Severity::kHigh);
  EXPECT_EQ(checker::severity_name(Severity::kCritical), "critical");
}

}  // namespace
}  // namespace sedspec
