// Expression AST.
//
// The statement-level "source code" of an emulated device (src/program) is
// written in this small expression language: references to device-state
// fields (Param), non-state variables (Local), the current I/O access
// (IoField), constants, casts, buffer element loads, and arithmetic /
// comparison operators with declared result types.
//
// Two consumers interpret the same AST:
//  - the device's instrumentation context executes it with native C
//    (wrapping) semantics — this *is* the device's behavior for the
//    state-relevant slice of its code;
//  - the ES-Checker evaluates it with checked semantics (UBSan-style
//    overflow detection, buffer bounds), which implements the paper's
//    parameter check strategy.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "expr/ids.h"
#include "expr/type.h"

namespace sedspec {

enum class ExprKind : uint8_t {
  kConst,
  kParam,    // scalar device-state field
  kLocal,    // non-state variable (dataflow-recovery subject)
  kIoField,  // field of the current IoAccess
  kBufLoad,  // buffer-field element load: buf[index]
  kUnary,
  kBinary,
  kCast,
};

enum class IoField : uint8_t { kAddr, kValue, kSize, kIsWrite, kSpace };

enum class UnaryOp : uint8_t { kNeg, kBitNot, kLogicalNot };

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLAnd,
  kLOr,
};

[[nodiscard]] bool is_comparison(BinaryOp op);

struct Expr;
using ExprRef = std::shared_ptr<const Expr>;

struct Expr {
  ExprKind kind = ExprKind::kConst;
  IntType type = IntType::kU64;  // declared result type

  // kConst
  uint64_t const_value = 0;
  // kParam / kBufLoad (the buffer field)
  ParamId param = kInvalidParam;
  // kLocal
  LocalId local = 0;
  // kIoField
  IoField io_field = IoField::kValue;
  // kUnary / kBinary
  UnaryOp un_op = UnaryOp::kNeg;
  BinaryOp bin_op = BinaryOp::kAdd;
  ExprRef lhs;  // also: cast operand, buf-load index, unary operand
  ExprRef rhs;
};

/// Pretty-prints an expression (param/local names resolved by callbacks that
/// may be null, in which case numeric ids are printed).
std::string to_string(const Expr& e,
                      const std::string* (*param_name)(ParamId) = nullptr);

// --- Builders -------------------------------------------------------------
// Terse factory helpers; device programs are written with these.
namespace eb {

ExprRef c(uint64_t value, IntType type = IntType::kU64);
ExprRef param(ParamId id, IntType type);
ExprRef local(LocalId id, IntType type);
ExprRef io(IoField field, IntType type = IntType::kU64);
ExprRef io_value(IntType type = IntType::kU64);
ExprRef buf_load(ParamId buffer, ExprRef index, IntType elem_type);
ExprRef un(UnaryOp op, ExprRef operand, IntType type);
ExprRef bin(BinaryOp op, ExprRef lhs, ExprRef rhs, IntType type);
ExprRef cast(ExprRef operand, IntType type);

ExprRef add(ExprRef l, ExprRef r, IntType t);
ExprRef sub(ExprRef l, ExprRef r, IntType t);
ExprRef mul(ExprRef l, ExprRef r, IntType t);
ExprRef band(ExprRef l, ExprRef r, IntType t);
ExprRef bor(ExprRef l, ExprRef r, IntType t);
ExprRef shr(ExprRef l, ExprRef r, IntType t);
ExprRef shl(ExprRef l, ExprRef r, IntType t);

// Comparisons produce kU8 booleans.
ExprRef eq(ExprRef l, ExprRef r);
ExprRef ne(ExprRef l, ExprRef r);
ExprRef lt(ExprRef l, ExprRef r);
ExprRef le(ExprRef l, ExprRef r);
ExprRef gt(ExprRef l, ExprRef r);
ExprRef ge(ExprRef l, ExprRef r);
ExprRef land(ExprRef l, ExprRef r);
ExprRef lor(ExprRef l, ExprRef r);
ExprRef lnot(ExprRef v);

}  // namespace eb

/// Calls `fn(node)` for every node of the expression tree (pre-order).
void visit(const Expr& e, const std::function<void(const Expr&)>& fn);

}  // namespace sedspec
