// ControlPlane — canaried spec rollout for an enforcement fleet.
//
// Drives the state machine in rollout.h against a live shard fleet: stage a
// candidate ES-CFG, shadow it on a growing fraction of shards (candidate
// verdicts recorded, never blocking), watch the per-window observability
// feed, and either promote the candidate into the active SpecStore or roll
// back with the baseline still enforcing. Every transition persists a
// CRC-enveloped RolloutRecord carrying the serialized baseline spec, so a
// control plane restarted mid-rollout can always restore enforcement to
// the last-known-good spec (resume()).
//
// Fault seams (used by the control-plane campaign, campaign.h):
//   - ServiceConfig::spec_fetch   — corrupt/fail spec distribution
//   - ShardSpec::op_hook          — crash shards mid-window
//   - observe_filter              — delay/blind the metric feed
//   - persist_filter              — corrupt the persisted rollout record
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "control/rollout.h"
#include "sedspec/enforcement.h"
#include "spec/spec_store.h"

namespace sedspec::control {

/// One observation window as the engine ran it (audit trail).
struct WindowRecord {
  RolloutState state = RolloutState::kShadow;  // kShadow or kPromoting
  uint32_t stage = 0;
  uint32_t attempt = 0;
  StageObservation observation;
  StageDecision decision;
};

struct RolloutOutcome {
  RolloutRecord record;      // terminal state (Active or RolledBack)
  std::vector<WindowRecord> windows;
  uint64_t total_ops = 0;    // guest operations driven across all windows

  [[nodiscard]] bool promoted() const {
    return record.state == RolloutState::kActive;
  }
};

/// What resume() did with a persisted record after a (simulated) crash.
struct ResumeResult {
  spec::LoadError load_error;  // !ok(): record rejected, baseline kept
  RolloutRecord record;        // repaired terminal record (when loadable)
  bool republished_baseline = false;  // crash interrupted Promoting
  std::string action;          // human-readable recovery summary
};

class ControlPlane {
 public:
  /// `active` is the fleet's live SpecStore (must outlive the plane). The
  /// candidate store is owned here: staged candidates are invisible to
  /// non-canary shards until Promoting publishes into `active`.
  explicit ControlPlane(spec::SpecStore* active,
                        enforce::ServiceConfig service = {});

  /// Stages a candidate spec for its device. Any previously staged
  /// candidate for the same device is superseded (store republish).
  spec::SnapshotRef stage_candidate(spec::EsCfg cfg);

  /// Stages a serialized candidate, validating the full envelope first —
  /// a corrupt candidate dies here (LoadError) and never reaches a shard.
  [[nodiscard]] spec::LoadError stage_candidate_serialized(
      std::span<const uint8_t> bytes);

  /// Runs the staged rollout for `device` over the given fleet. Shards
  /// whose .device matches are canary-eligible; the engine flips their
  /// shadow_candidate flag per stage (ceil(fraction * eligible), >= 1).
  /// Other shards run alongside untouched (mixed-fleet realism) but their
  /// crashes/quarantines still feed the failure-domain guardrails.
  [[nodiscard]] RolloutOutcome run_rollout(
      const std::string& device, std::vector<enforce::ShardSpec> fleet,
      const RolloutConfig& cfg);

  /// Crash recovery over a persisted record:
  ///   - unloadable record        → LoadError; baseline keeps enforcing
  ///   - terminal (Active/RolledBack) → no-op
  ///   - Staging/Shadow           → abort to RolledBack (active store was
  ///                                never touched, nothing to restore)
  ///   - Promoting                → republish the embedded baseline spec,
  ///                                then RolledBack
  [[nodiscard]] ResumeResult resume(std::span<const uint8_t> record_bytes);

  [[nodiscard]] spec::SpecStore& candidate_store() { return candidate_; }
  [[nodiscard]] const enforce::ServiceConfig& service_config() const {
    return service_;
  }

  /// Every serialized RolloutRecord in persistence order — the journal a
  /// crash test replays from (last entry = what survived the crash).
  [[nodiscard]] const std::vector<std::vector<uint8_t>>& journal() const {
    return journal_;
  }

  /// SLO feed: invoked once per observation window, AFTER the window's
  /// enforcement run and before the verdict. Returns the number of SLO
  /// burn-rate breaches attributable to that window (typically
  /// obs::SloEngine::breaches() deltas from a collector ticking alongside
  /// the fleet); the count lands in StageObservation::slo_breaches, where
  /// RolloutThresholds::max_slo_breaches can fail the rollout on it.
  /// Unset = no SLO feed (slo_breaches stays 0).
  std::function<uint64_t()> slo_feed;

  /// Fault seam: rewrites an assembled StageObservation before the verdict
  /// (models a delayed or lossy metric feed).
  std::function<void(StageObservation&)> observe_filter;
  /// Fault seam: rewrites record bytes on their way to the journal (models
  /// torn/corrupt persistence; resume() must reject the damage).
  std::function<std::vector<uint8_t>(std::vector<uint8_t>)> persist_filter;

 private:
  void persist(const RolloutRecord& rec);
  [[nodiscard]] StageObservation observe_window(
      const std::vector<enforce::ShardSpec>& fleet,
      const std::vector<bool>& is_canary, const enforce::RunReport& report,
      const std::string& window_tag) const;

  spec::SpecStore* active_;
  spec::SpecStore candidate_;
  enforce::ServiceConfig service_;
  std::vector<std::vector<uint8_t>> journal_;
  uint64_t rollout_seq_ = 0;  // unique per-window metric labels
};

}  // namespace sedspec::control
