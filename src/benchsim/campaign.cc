#include "benchsim/campaign.h"

#include <algorithm>

#include "common/assert.h"
#include "common/vclock.h"
#include "spec/builder.h"

namespace sedspec::benchsim {

using guest::DeviceWorkload;
using guest::InteractionMode;

FpCampaignResult run_fp_campaign(DeviceWorkload& workload, double total_hours,
                                 double rare_prob, uint64_t seed,
                                 const std::vector<double>& snapshot_hours,
                                 std::optional<InteractionMode> only_mode) {
  SEDSPEC_REQUIRE_MSG(workload.deployed(),
                      "deploy the checker before running the campaign");
  checker::EsChecker* checker = workload.checker();
  Rng rng(seed);
  VirtualClock clock;
  FpCampaignResult result;
  size_t next_snapshot = 0;
  std::vector<double> marks = snapshot_hours;
  std::sort(marks.begin(), marks.end());

  const InteractionMode modes[] = {InteractionMode::kSequential,
                                   InteractionMode::kRandom,
                                   InteractionMode::kRandomWithDelay};
  uint64_t mode_cursor = 0;
  uint64_t fps = 0;
  while (clock.hours() < total_hours) {
    const InteractionMode mode =
        only_mode.value_or(modes[mode_cursor++ % 3]);
    const bool rare = rng.chance(rare_prob);
    const uint64_t warnings_before = checker->stats().warnings;
    const uint64_t blocked_before = checker->stats().blocked;
    workload.test_case(mode, rng, clock, rare);
    ++result.total_cases;
    const bool flagged = checker->stats().warnings != warnings_before ||
                         checker->stats().blocked != blocked_before;
    if (flagged) {
      ++result.flagged_cases;
      ++fps;
    }
    while (next_snapshot < marks.size() &&
           clock.hours() >= marks[next_snapshot]) {
      result.snapshots.push_back(FpSnapshot{marks[next_snapshot], fps});
      ++next_snapshot;
    }
  }
  while (next_snapshot < marks.size()) {
    result.snapshots.push_back(FpSnapshot{marks[next_snapshot], fps});
    ++next_snapshot;
  }
  result.total_rounds = checker->stats().rounds;
  return result;
}

double default_rare_prob(const std::string& device_name) {
  // Calibrated to the paper's per-device false-positive rates (Table III:
  // FDC 0.14%, USB EHCI 0.10%, PCNet 0.11%, SDHCI 0.09%, SCSI 0.17%).
  if (device_name == "fdc") return 0.0014;
  if (device_name == "usb-ehci") return 0.0010;
  if (device_name == "pcnet") return 0.0011;
  if (device_name == "sdhci") return 0.0009;
  if (device_name == "scsi-esp") return 0.0017;
  return 0.001;
}

double run_effective_coverage(DeviceWorkload& workload, uint64_t seed) {
  SEDSPEC_REQUIRE_MSG(!workload.deployed(),
                      "coverage runs on an undeployed workload");
  // Spec from the training mix.
  spec::EsCfg trained = pipeline::build_spec(
      workload.device(), [&] { workload.training(); });

  // One virtual hour of benign fuzzing over the full legal vocabulary
  // (paper: "we employ fuzzing to approximate the coverage path of
  // legitimate behavior by running it on a device for one hour").
  auto fuzz = [&] {
    Rng rng(seed);
    VirtualClock clock;
    workload.training();  // the fuzz pool includes the common behaviors
    while (clock.hours() < 1.0) {
      workload.fuzz_case(rng);
      // Coverage converges quickly ("approximately after one hour of
      // testing", §VII-B1); each fuzz batch stands for a few minutes of
      // wall-clock fuzzing.
      clock.advance_seconds(static_cast<double>(rng.range(180, 360)));
    }
  };
  const pipeline::CollectionResult collected =
      pipeline::collect(workload.device(), fuzz);
  const spec::EsCfg fuzzed = pipeline::construct(workload.device(), collected);

  const auto spec_edges = spec::edge_keys(trained);
  const auto fuzz_edges = spec::edge_keys(fuzzed);
  if (fuzz_edges.empty()) {
    return 0.0;
  }
  size_t covered = 0;
  for (const auto& e : fuzz_edges) {
    if (spec_edges.contains(e)) {
      ++covered;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(fuzz_edges.size());
}

}  // namespace sedspec::benchsim
