// Unit tests for data-dependency recovery (the angr substitute): local
// variables with a single parameter-only definition are inlined; natively
// set, conflicting, or cyclic locals become sync points.
#include <gtest/gtest.h>

#include "dataflow/dataflow.h"

namespace sedspec {
namespace {

struct ProgramEnv {
  StateLayout layout{"S"};
  ParamId a, b;
  std::unique_ptr<DeviceProgram> program;
  LocalId computable, native, conflicting, chained, cyclic;

  ProgramEnv() {
    a = layout.add_scalar("a", FieldKind::kRegister, IntType::kU32);
    b = layout.add_scalar("b", FieldKind::kLength, IntType::kU32);
    program =
        std::make_unique<DeviceProgram>("test", std::move(layout), 0x1000);
    computable = program->add_local("computable");
    native = program->add_local("native");
    conflicting = program->add_local("conflicting");
    chained = program->add_local("chained");
    cyclic = program->add_local("cyclic");

    using namespace eb;
    const IntType U32 = IntType::kU32;
    // computable = a - b          (single def, params only -> inline)
    // chained    = computable + 1 (inline through the chain)
    // conflicting: two different defs -> sync
    // cyclic     = cyclic + 1     -> sync
    // native     : referenced in a guard but never defined -> sync
    program->add_plain(
        "defs",
        {sb::assign_local(computable, sub(param(a, U32), param(b, U32), U32)),
         sb::assign_local(chained,
                          add(local(computable, U32), c(1, U32), U32)),
         sb::assign_local(conflicting, param(a, U32)),
         sb::assign_local(cyclic, add(local(cyclic, U32), c(1, U32), U32))});
    program->add_plain("conflict2",
                       {sb::assign_local(conflicting, param(b, U32))});
    program->add_conditional("use_native",
                             gt(local(native, U32), c(0, U32)));
    program->add_conditional("use_chained",
                             gt(local(chained, U32), c(0, U32)));
    program->add_conditional("use_conflicting",
                             gt(local(conflicting, U32), c(0, U32)));
  }
};

TEST(Dataflow, SingleParamOnlyDefIsInlined) {
  ProgramEnv env;
  const auto plan = dataflow::analyze_dependencies(*env.program);
  ASSERT_TRUE(plan.inline_defs.contains(env.computable));
  EXPECT_FALSE(plan.is_sync(env.computable));
}

TEST(Dataflow, ChainedDefsInlineTransitively) {
  ProgramEnv env;
  const auto plan = dataflow::analyze_dependencies(*env.program);
  ASSERT_TRUE(plan.inline_defs.contains(env.chained));
  // The inlined expression must no longer reference any local.
  EXPECT_TRUE(
      dataflow::referenced_locals(plan.inline_defs.at(env.chained)).empty());
}

TEST(Dataflow, NativeLocalIsSyncPoint) {
  ProgramEnv env;
  const auto plan = dataflow::analyze_dependencies(*env.program);
  EXPECT_TRUE(plan.is_sync(env.native));
}

TEST(Dataflow, ConflictingDefsAreSyncPoints) {
  ProgramEnv env;
  const auto plan = dataflow::analyze_dependencies(*env.program);
  EXPECT_TRUE(plan.is_sync(env.conflicting));
}

TEST(Dataflow, CyclicDefIsSyncPoint) {
  ProgramEnv env;
  const auto plan = dataflow::analyze_dependencies(*env.program);
  EXPECT_TRUE(plan.is_sync(env.cyclic));
}

TEST(Dataflow, RewriteSubstitutesInlineDefsOnly) {
  ProgramEnv env;
  const auto plan = dataflow::analyze_dependencies(*env.program);
  using namespace eb;
  const IntType U32 = IntType::kU32;
  auto guard = gt(local(env.chained, U32), local(env.native, U32));
  const ExprRef rewritten = dataflow::rewrite(guard, plan);
  const auto residual = dataflow::referenced_locals(rewritten);
  EXPECT_FALSE(residual.contains(env.chained));
  EXPECT_TRUE(residual.contains(env.native));
}

TEST(Dataflow, RewriteReturnsSamePointerWhenUnchanged) {
  ProgramEnv env;
  const auto plan = dataflow::analyze_dependencies(*env.program);
  auto expr = eb::param(env.a, IntType::kU32);
  EXPECT_EQ(dataflow::rewrite(expr, plan), expr);
}

}  // namespace
}  // namespace sedspec
