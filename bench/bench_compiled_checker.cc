// bench_compiled_checker — interpreter vs. compiled bytecode engine, measured
// as bare per-check latency on a recorded I/O stream (paper §VII setup, but
// isolating the *engine* from the EsChecker wrapper).
//
// Methodology: run each device's random workload once with a live checker and
// record the exact IoAccess stream the checker saw. Then, per engine, replay
// that stream against a bare CheckEngine (public make_engine API) over a
// shadow arena seeded from the device state. Each measured repetition loops
// the stream until a minimum check count is reached (so short streams —
// pcnet's ~500 accesses — still produce stable numbers), timing the whole
// pass with two clock reads total. Best-of-N repetitions is reported, which
// discards scheduler noise rather than averaging it in.
//
// The replay is validated differentially as it runs: both engines must
// produce the same violation and traversal-step totals, or the bench fails.
//
// Usage: bench_compiled_checker [--smoke]
//   full mode additionally enforces the acceptance bars (every speedup
//   > 1.0, overall bytecode mean < 100 ns); --smoke shrinks the workload
//   and repetition counts for the seconds-long ctest fixture and skips the
//   perf bars (a loaded CI machine must not flake the suite on noise).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "checker/checker.h"
#include "checker/engine/engine.h"
#include "guest/workload.h"
#include "report.h"
#include "sedspec/pipeline.h"
#include "spec/es_cfg.h"

using namespace sedspec;
using Clock = std::chrono::steady_clock;

namespace {

constexpr uint64_t kSeed = 777;

struct Params {
  int guest_ops = 300;       // workload operations recorded per device
  int reps = 9;              // best-of-N repetitions
  uint64_t min_checks = 120000;  // checks per repetition (stream looped)
  bool enforce_bars = true;
};

struct Recorder final : public IoProxy {
  checker::EsChecker* inner = nullptr;
  std::vector<IoAccess> log;
  bool before_access(Device& d, const IoAccess& io) override {
    log.push_back(io);
    return inner->before_access(d, io);
  }
  void after_access(Device& d, const IoAccess& io) override {
    inner->after_access(d, io);
  }
};

struct EngineRun {
  double best_ns = 0;    // best-of-reps ns per check
  uint64_t violations = 0;  // per stream pass (identical across reps)
  uint64_t steps = 0;
};

EngineRun replay(const spec::EsCfg& es, Device& device,
                 const std::vector<IoAccess>& stream,
                 checker::EngineKind kind, const Params& prm) {
  checker::CheckerConfig ecfg;
  ecfg.engine = kind;
  StateArena shadow(&device.program().layout());
  shadow.copy_from(device.state());
  const auto eng =
      checker::engine::make_engine(&es, &device, &shadow, &ecfg);
  const checker::engine::RoundOptions opts;

  const uint64_t passes =
      (prm.min_checks + stream.size() - 1) / stream.size();
  EngineRun out;
  out.best_ns = 1e18;
  for (int rep = 0; rep < prm.reps; ++rep) {
    uint64_t viols = 0;
    uint64_t steps = 0;
    const auto t0 = Clock::now();
    for (uint64_t pass = 0; pass < passes; ++pass) {
      // Each pass re-seeds the shadow exactly like a deploy-time resync.
      shadow.copy_from(device.state());
      eng->set_active_command(std::nullopt);
      for (const IoAccess& io : stream) {
        shadow.clear_locals();
        const checker::CheckResult r = eng->check(io, opts);
        viols += r.violations.size();
        steps += r.steps;
      }
    }
    const auto t1 = Clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        (static_cast<double>(passes) * static_cast<double>(stream.size()));
    if (ns < out.best_ns) {
      out.best_ns = ns;
    }
    out.violations = viols / passes;
    out.steps = steps / passes;
  }
  return out;
}

std::string sanitize(std::string name) {
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  Params prm;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      prm.guest_ops = 40;
      prm.reps = 3;
      prm.min_checks = 6000;
      prm.enforce_bars = false;
    }
  }

  bench_report::MetricSink sink("compiled_checker");
  bool ok = true;
  double sum_interp = 0;
  double sum_byte = 0;
  int devices = 0;

  std::printf("%-10s %12s %12s %8s %10s %8s\n", "device", "interp_ns",
              "bytecode_ns", "speedup", "accesses", "diff");
  for (const std::string& dev : guest::workload_names()) {
    // Record the stream a live checked run actually sees.
    auto wl = guest::make_workload(dev);
    const spec::EsCfg es =
        pipeline::build_spec(wl->device(), [&] { wl->training(); });
    checker::CheckerConfig cfg;
    checker::EsChecker ck(&es, &wl->device(), cfg);
    Recorder rec;
    rec.inner = &ck;
    wl->bus().set_proxy(&rec);
    Rng rng(kSeed);
    for (int i = 0; i < prm.guest_ops; ++i) {
      wl->common_operation(guest::InteractionMode::kRandom, rng);
    }
    wl->bus().set_proxy(nullptr);
    if (rec.log.empty()) {
      std::fprintf(stderr, "FAIL: %s recorded no accesses\n", dev.c_str());
      return 1;
    }

    const EngineRun ir = replay(es, wl->device(), rec.log,
                                checker::EngineKind::kInterpreter, prm);
    const EngineRun br = replay(es, wl->device(), rec.log,
                                checker::EngineKind::kBytecode, prm);
    const bool same =
        ir.violations == br.violations && ir.steps == br.steps;
    const double speedup = ir.best_ns / br.best_ns;
    std::printf("%-10s %12.1f %12.1f %7.2fx %10zu %8s\n", dev.c_str(),
                ir.best_ns, br.best_ns, speedup, rec.log.size(),
                same ? "ok" : "MISMATCH");
    if (!same) {
      std::fprintf(stderr,
                   "FAIL: %s engines diverged (interp %llu viols/%llu steps, "
                   "bytecode %llu viols/%llu steps)\n",
                   dev.c_str(),
                   static_cast<unsigned long long>(ir.violations),
                   static_cast<unsigned long long>(ir.steps),
                   static_cast<unsigned long long>(br.violations),
                   static_cast<unsigned long long>(br.steps));
      ok = false;
    }
    const std::string tag = sanitize(dev);
    sink.put("check_ns_interpreter_" + tag, ir.best_ns);
    sink.put("check_ns_bytecode_" + tag, br.best_ns);
    sink.put("speedup_" + tag, speedup);
    sum_interp += ir.best_ns;
    sum_byte += br.best_ns;
    ++devices;
    if (prm.enforce_bars && speedup <= 1.0) {
      std::fprintf(stderr, "FAIL: %s speedup %.3f <= 1.0\n", dev.c_str(),
                   speedup);
      ok = false;
    }
  }

  const double overall_interp = sum_interp / devices;
  const double overall_byte = sum_byte / devices;
  sink.put("overall_check_ns_interpreter", overall_interp);
  sink.put("overall_check_ns_bytecode", overall_byte);
  sink.put("overall_speedup", overall_interp / overall_byte);
  std::printf("%-10s %12.1f %12.1f %7.2fx\n", "overall", overall_interp,
              overall_byte, overall_interp / overall_byte);
  if (prm.enforce_bars && overall_byte >= 100.0) {
    std::fprintf(stderr, "FAIL: overall bytecode %.1f ns >= 100 ns bar\n",
                 overall_byte);
    ok = false;
  }
  sink.write_json();
  return ok ? 0 : 1;
}
