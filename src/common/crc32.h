// CRC32 (IEEE 802.3, polynomial 0xEDB88320, reflected).
//
// Integrity check for persisted artifacts: the ES-CFG envelope stores a
// CRC32 over its payload so a bit-flipped or truncated specification is
// rejected at load time instead of being deployed as a checker.
#pragma once

#include <cstdint>
#include <span>

namespace sedspec {

/// One-shot CRC32 of `data`. `seed` chains incremental computations
/// (pass a previous call's return value to continue).
[[nodiscard]] uint32_t crc32(std::span<const uint8_t> data,
                             uint32_t seed = 0);

}  // namespace sedspec
