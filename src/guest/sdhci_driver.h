// Guest-side SD host controller driver model.
//
// Issues the canonical SD init sequence and PIO block transfers, including
// the "defensive reprogram" quirk some drivers exhibit (rewriting BLKSIZE
// with the same value mid-transfer) — harmless on real hardware and part of
// the benign training mix so the corresponding edge is in the spec.
#pragma once

#include <cstdint>
#include <span>

#include "devices/sdhci.h"
#include "vdev/bus.h"

namespace sedspec::guest {

class SdhciDriver {
 public:
  explicit SdhciDriver(sedspec::IoBus* bus) : bus_(bus) {}

  void w16(uint64_t reg, uint16_t v);
  void w32(uint64_t reg, uint32_t v);
  void w8(uint64_t reg, uint8_t v);
  [[nodiscard]] uint32_t r32(uint64_t reg);
  [[nodiscard]] uint16_t r16(uint64_t reg);
  [[nodiscard]] uint8_t r8(uint64_t reg);

  /// CMD0/2/3/7 init handshake + SET_BLOCKLEN(512).
  void init_card();

  void command(uint8_t index, uint32_t arg);
  void ack_interrupts();

  void read_block(uint32_t block, std::span<uint8_t> out);
  void write_block(uint32_t block, std::span<const uint8_t> data);
  void read_blocks(uint32_t block, uint16_t count, std::span<uint8_t> out);
  void write_blocks(uint32_t block, uint16_t count,
                    std::span<const uint8_t> data);

  /// Same as write_block but rewrites BLKSIZE (same value) mid-transfer —
  /// the benign driver quirk that trains the mid-transfer BLKSIZE edge.
  void write_block_with_reprogram(uint32_t block,
                                  std::span<const uint8_t> data);
  void read_block_with_reprogram(uint32_t block, std::span<uint8_t> out);

  // Rare-but-legal commands (FP source).
  void switch_function();
  void gen_cmd();

  [[nodiscard]] uint64_t io_count() const { return io_count_; }

 private:
  sedspec::IoBus* bus_;
  uint64_t io_count_ = 0;
};

}  // namespace sedspec::guest
