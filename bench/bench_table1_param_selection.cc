// Table I reproduction: selection of device state parameters.
//
// Runs phase 1 of the pipeline (IPT-style trace of the benign training mix
// + CFG analysis) for each of the five devices and prints the selected
// device-state parameters grouped by the selection rule that admitted them
// (Rule 1: physical registers; Rule 2: buffers / counting-indexing
// variables / function pointers), mirroring the paper's Table I taxonomy.
#include <cstdio>
#include <map>

#include "cfg/analyzer.h"
#include "guest/workload.h"
#include "report.h"
#include "sedspec/pipeline.h"

int main() {
  using namespace sedspec;
  bench_report::title(
      "Table I — Selection of Device State Parameters (per device)");
  bench_report::MetricSink sink("table1_param_selection");

  for (const std::string& name : guest::workload_names()) {
    auto wl = guest::make_workload(name);
    const pipeline::CollectionResult collected =
        pipeline::collect(wl->device(), [&] { wl->training(); });
    const auto& layout = wl->device().program().layout();

    std::printf("%s (control structure %s, %zu fields, ITC-CFG: %zu nodes, "
                "%zu edges)\n",
                name.c_str(), layout.struct_name().c_str(),
                layout.field_count(), collected.itc_cfg.node_count(),
                collected.itc_cfg.edge_count());
    std::map<std::string, std::vector<std::string>> by_rule;
    for (const auto& sel : collected.selection.params) {
      by_rule[cfg::selection_rule_name(sel.rule)].push_back(
          layout.field(sel.param).name);
    }
    for (const auto& [rule, fields] : by_rule) {
      std::printf("  %-28s:", rule.c_str());
      for (const auto& f : fields) {
        std::printf(" %s", f.c_str());
      }
      std::printf("\n");
      sink.put(name + "/" + rule, static_cast<double>(fields.size()));
    }
    std::printf("  observation points: %zu of %zu sites\n\n",
                collected.selection.observation_sites.size(),
                wl->device().program().site_count());
    sink.put(name + "/params_selected",
             static_cast<double>(collected.selection.params.size()));
    sink.put(name + "/observation_points",
             static_cast<double>(collected.selection.observation_sites.size()));
    sink.put(name + "/itc_cfg_nodes",
             static_cast<double>(collected.itc_cfg.node_count()));
  }
  sink.write_json();
  return 0;
}
