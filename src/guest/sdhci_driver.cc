#include "guest/sdhci_driver.h"

#include "common/assert.h"

namespace sedspec::guest {

namespace {
using sedspec::devices::SdhciDevice;
constexpr uint64_t kBase = SdhciDevice::kBaseAddr;
}  // namespace

void SdhciDriver::w16(uint64_t reg, uint16_t v) {
  ++io_count_;
  bus_->write(IoSpace::kMmio, kBase + reg, 2, v);
}
void SdhciDriver::w32(uint64_t reg, uint32_t v) {
  ++io_count_;
  bus_->write(IoSpace::kMmio, kBase + reg, 4, v);
}
void SdhciDriver::w8(uint64_t reg, uint8_t v) {
  ++io_count_;
  bus_->write(IoSpace::kMmio, kBase + reg, 1, v);
}
uint32_t SdhciDriver::r32(uint64_t reg) {
  ++io_count_;
  return static_cast<uint32_t>(bus_->read(IoSpace::kMmio, kBase + reg, 4));
}
uint16_t SdhciDriver::r16(uint64_t reg) {
  ++io_count_;
  return static_cast<uint16_t>(bus_->read(IoSpace::kMmio, kBase + reg, 2));
}
uint8_t SdhciDriver::r8(uint64_t reg) {
  ++io_count_;
  return static_cast<uint8_t>(bus_->read(IoSpace::kMmio, kBase + reg, 1));
}

void SdhciDriver::command(uint8_t index, uint32_t arg) {
  w32(SdhciDevice::kRegArg, arg);
  w16(SdhciDevice::kRegCmd, static_cast<uint16_t>(index) << 8);
  (void)r32(SdhciDevice::kRegResp);
  ack_interrupts();
}

void SdhciDriver::ack_interrupts() {
  const uint16_t sts = r16(SdhciDevice::kRegNorIntSts);
  if (sts != 0) {
    w16(SdhciDevice::kRegNorIntSts, sts);
  }
}

void SdhciDriver::init_card() {
  command(SdhciDevice::kCmdGoIdle, 0);
  command(SdhciDevice::kCmdAllSendCid, 0);
  command(SdhciDevice::kCmdSendRelAddr, 0);
  command(SdhciDevice::kCmdSelect, 0x1234 << 16);
  w16(SdhciDevice::kRegBlkSize, SdhciDevice::kBlockSize);
  command(SdhciDevice::kCmdSetBlockLen, SdhciDevice::kBlockSize);
}

void SdhciDriver::read_block(uint32_t block, std::span<uint8_t> out) {
  SEDSPEC_REQUIRE(out.size() == SdhciDevice::kBlockSize);
  w16(SdhciDevice::kRegBlkCnt, 1);
  w32(SdhciDevice::kRegArg, block);
  w16(SdhciDevice::kRegCmd,
      static_cast<uint16_t>(SdhciDevice::kCmdReadSingle) << 8);
  for (auto& byte : out) {
    byte = r8(SdhciDevice::kRegBData);
  }
  ack_interrupts();
}

void SdhciDriver::write_block(uint32_t block, std::span<const uint8_t> data) {
  SEDSPEC_REQUIRE(data.size() == SdhciDevice::kBlockSize);
  w16(SdhciDevice::kRegBlkCnt, 1);
  w32(SdhciDevice::kRegArg, block);
  w16(SdhciDevice::kRegCmd,
      static_cast<uint16_t>(SdhciDevice::kCmdWriteSingle) << 8);
  for (uint8_t byte : data) {
    w8(SdhciDevice::kRegBData, byte);
  }
  ack_interrupts();
}

void SdhciDriver::read_blocks(uint32_t block, uint16_t count,
                              std::span<uint8_t> out) {
  SEDSPEC_REQUIRE(out.size() == size_t{count} * SdhciDevice::kBlockSize);
  w16(SdhciDevice::kRegBlkCnt, count);
  w32(SdhciDevice::kRegArg, block);
  w16(SdhciDevice::kRegCmd,
      static_cast<uint16_t>(SdhciDevice::kCmdReadMulti) << 8);
  for (auto& byte : out) {
    byte = r8(SdhciDevice::kRegBData);
  }
  ack_interrupts();
}

void SdhciDriver::write_blocks(uint32_t block, uint16_t count,
                               std::span<const uint8_t> data) {
  SEDSPEC_REQUIRE(data.size() == size_t{count} * SdhciDevice::kBlockSize);
  w16(SdhciDevice::kRegBlkCnt, count);
  w32(SdhciDevice::kRegArg, block);
  w16(SdhciDevice::kRegCmd,
      static_cast<uint16_t>(SdhciDevice::kCmdWriteMulti) << 8);
  for (uint8_t byte : data) {
    w8(SdhciDevice::kRegBData, byte);
  }
  ack_interrupts();
}

void SdhciDriver::write_block_with_reprogram(uint32_t block,
                                             std::span<const uint8_t> data) {
  SEDSPEC_REQUIRE(data.size() == SdhciDevice::kBlockSize);
  w16(SdhciDevice::kRegBlkCnt, 1);
  w32(SdhciDevice::kRegArg, block);
  w16(SdhciDevice::kRegCmd,
      static_cast<uint16_t>(SdhciDevice::kCmdWriteSingle) << 8);
  for (size_t i = 0; i < data.size(); ++i) {
    if (i == data.size() / 2) {
      w16(SdhciDevice::kRegBlkSize, SdhciDevice::kBlockSize);  // same value
    }
    w8(SdhciDevice::kRegBData, data[i]);
  }
  ack_interrupts();
}

void SdhciDriver::read_block_with_reprogram(uint32_t block,
                                            std::span<uint8_t> out) {
  SEDSPEC_REQUIRE(out.size() == SdhciDevice::kBlockSize);
  w16(SdhciDevice::kRegBlkCnt, 1);
  w32(SdhciDevice::kRegArg, block);
  w16(SdhciDevice::kRegCmd,
      static_cast<uint16_t>(SdhciDevice::kCmdReadSingle) << 8);
  for (size_t i = 0; i < out.size(); ++i) {
    if (i == out.size() / 2) {
      w16(SdhciDevice::kRegBlkSize, SdhciDevice::kBlockSize);
    }
    out[i] = r8(SdhciDevice::kRegBData);
  }
  ack_interrupts();
}

void SdhciDriver::switch_function() {
  command(SdhciDevice::kCmdSwitch, 0x00fffff1);
}

void SdhciDriver::gen_cmd() { command(SdhciDevice::kCmdGenCmd, 0); }

}  // namespace sedspec::guest
