// Instrumentation context — the device-side execution engine.
//
// Devices drive their state-relevant logic through this context:
//
//   IoRound round(ictx, io);             // one I/O interaction round
//   ictx.block(SITE_A);                  // execute SITE_A's DSOD
//   if (ictx.branch(SITE_B)) { ... }     // evaluate SITE_B's NBTD guard
//   uint64_t cmd = ictx.command(SITE_C); // command-decision block
//   ictx.indirect(SITE_D);               // call through a fp field
//   ictx.command_end(SITE_E);
//
// Execution is native (unchecked, wrapping) — the context *is* the compiled
// device binary for the state-relevant slice of the code. When a TraceSink
// is attached it emits IPT-style packets (paper §IV-A); when a StateObserver
// is attached it emits the device-state-change log (paper §IV-B). Both are
// normally detached, so production runs pay only a couple of null checks —
// mirroring how IPT tracing is enabled only during data collection.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "expr/eval.h"
#include "expr/io.h"
#include "program/arena.h"
#include "program/program.h"

namespace sedspec {

/// Receives IPT-style packets. Implemented by trace::PacketEncoder.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void pge(FuncAddr addr) = 0;      // trace-on at I/O entry
  virtual void pgd() = 0;                   // trace-off at I/O exit
  virtual void tip(FuncAddr addr) = 0;      // taken-indirect/target packet
  virtual void tnt(bool taken) = 0;         // conditional direction
};

/// Receives the device-state-change log. Implemented by
/// statelog::LogRecorder.
class StateObserver {
 public:
  virtual ~StateObserver() = default;
  virtual void round_start(const IoAccess& io) = 0;
  virtual void site_enter(SiteId site, BlockKind kind) = 0;
  virtual void branch(SiteId site, bool taken) = 0;
  virtual void indirect(SiteId site, FuncAddr target) = 0;
  virtual void command(SiteId site, uint64_t cmd) = 0;
  virtual void command_end(SiteId site) = 0;
  virtual void param_change(ParamId param, uint64_t old_raw,
                            uint64_t new_raw) = 0;
  virtual void round_end() = 0;
};

class InstrumentationContext {
 public:
  InstrumentationContext(const DeviceProgram* program, StateArena* arena,
                         std::function<void(const Incident&)> incident_fn);

  // --- Wiring -------------------------------------------------------------
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }
  void set_observer(StateObserver* observer) { observer_ = observer; }
  [[nodiscard]] bool observed() const { return observer_ != nullptr; }

  /// Registers the runnable body for a program function address.
  void bind_function(FuncAddr addr, std::function<void()> fn);

  // --- Round management (prefer the IoRound RAII guard) -------------------
  void begin_round(const IoAccess& io);
  void end_round();
  [[nodiscard]] const IoAccess& io() const;

  // --- Site execution ------------------------------------------------------
  /// Executes the site's DSOD. For sites containing a buf_fill, `fill` is
  /// invoked with the (clamped) destination region so the device can copy
  /// real data.
  void block(SiteId site);
  void block(SiteId site, const std::function<void(std::span<uint8_t>)>& fill);

  /// Executes DSOD, evaluates the NBTD guard, emits TNT, returns direction.
  [[nodiscard]] bool branch(SiteId site);

  /// Executes DSOD, then calls through the site's function-pointer field.
  /// An address not in the function table records a kHijackedCall incident
  /// (real QEMU: arbitrary code execution) and the call is skipped.
  void indirect(SiteId site);

  /// Command-decision block: executes DSOD, decodes and returns the command.
  [[nodiscard]] uint64_t command(SiteId site);

  /// Command-end block.
  void command_end(SiteId site);

  /// Sets a local variable (native computation outside the DSOD language,
  /// e.g. a DMA-derived length).
  void set_local(LocalId id, uint64_t value);

  /// Loop watchdog: increments `counter`; at `limit` records a kRunawayLoop
  /// incident and returns true (the device loop must then bail out). This
  /// stands in for the unbounded CPU burn an infinite-loop bug causes in a
  /// real hypervisor (e.g. CVE-2016-7909).
  [[nodiscard]] bool watchdog(uint32_t& counter, uint32_t limit,
                              const char* note);

  [[nodiscard]] const DeviceProgram& program() const { return *program_; }
  [[nodiscard]] StateArena& arena() { return *arena_; }

 private:
  void exec_dsod(const SiteDesc& site,
                 const std::function<void(std::span<uint8_t>)>* fill);
  void enter_site(const SiteDesc& site);
  void snapshot_scalars();
  void diff_scalars();

  const DeviceProgram* program_;
  StateArena* arena_;
  std::function<void(const Incident&)> incident_fn_;
  TraceSink* trace_ = nullptr;
  StateObserver* observer_ = nullptr;
  std::map<FuncAddr, std::function<void()>> functions_;
  std::optional<IoAccess> io_;
  // Scalar snapshot for observer param-change diffing.
  std::vector<uint64_t> scalar_snapshot_;
};

/// RAII guard for one I/O interaction round.
class IoRound {
 public:
  IoRound(InstrumentationContext& ictx, const IoAccess& io) : ictx_(ictx) {
    ictx_.begin_round(io);
  }
  IoRound(const IoRound&) = delete;
  IoRound& operator=(const IoRound&) = delete;
  ~IoRound() { ictx_.end_round(); }

 private:
  InstrumentationContext& ictx_;
};

}  // namespace sedspec
