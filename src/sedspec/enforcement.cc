#include "sedspec/enforcement.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "common/assert.h"
#include "common/log.h"
#include "common/rng.h"
#include "sedspec/pipeline.h"

namespace sedspec::enforce {

size_t RunReport::count(checker::Report::Kind kind) const {
  size_t n = 0;
  for (const checker::Report& r : reports) {
    if (r.kind == kind) {
      ++n;
    }
  }
  return n;
}

void publish_device_specs(spec::SpecStore& store,
                          const std::vector<std::string>& devices) {
  // Spec construction needs a throwaway device instance per type (the
  // training run mutates it); the produced ES-CFG is device-instance-
  // independent and is what the store shares across shards.
  std::vector<std::unique_ptr<guest::DeviceWorkload>> workloads;
  std::vector<pipeline::SpecBuildJob> jobs;
  workloads.reserve(devices.size());
  jobs.reserve(devices.size());
  for (const std::string& name : devices) {
    workloads.push_back(guest::make_workload(name));
    guest::DeviceWorkload* w = workloads.back().get();
    jobs.push_back(pipeline::SpecBuildJob{&w->device(), [w] { w->training(); }});
  }
  std::vector<spec::EsCfg> specs = pipeline::build_specs_parallel(jobs);
  for (spec::EsCfg& cfg : specs) {
    const spec::SnapshotRef snap = store.publish(std::move(cfg));
    log_info("enforce") << "published spec '" << snap->device_name
                        << "' v" << snap->version;
  }
}

EnforcementService::EnforcementService(spec::SpecStore* store,
                                       ServiceConfig config)
    : store_(store), config_(config) {
  SEDSPEC_REQUIRE(store != nullptr);
}

void EnforcementService::run_shard(const ShardSpec& spec, uint32_t shard_id,
                                   checker::ReportQueue& queue,
                                   ShardResult& result) {
  std::unique_ptr<guest::DeviceWorkload> workload =
      guest::make_workload(spec.device);
  IoBus& bus = workload->bus();
  bus.set_access_latency_ns(config_.bus_access_latency_ns);
  bus.set_access_latency_model(config_.latency_model);
  if (config_.bind_bus_owners) {
    bus.bind_owner_thread();
  }

  spec::SnapshotRef snap = store_->current(spec.device);
  SEDSPEC_REQUIRE_MSG(snap != nullptr,
                      "no spec published for this shard's device type");

  checker::CheckerConfig ccfg = spec.checker;
  if (ccfg.metrics_label.empty()) {
    ccfg.metrics_label = spec.device + "#" + std::to_string(shard_id);
  }

  // (Re)deploy: a fresh checker pinning `s`, wired to the shared report
  // queue and installed as this shard's bus proxy. The previous checker —
  // and with it the previous snapshot pin — is released by the caller's
  // unique_ptr assignment, strictly between guest operations.
  auto deploy_from = [&](spec::SnapshotRef s) {
    auto ck = std::make_unique<checker::EsChecker>(std::move(s),
                                                   &workload->device(), ccfg);
    ck->set_report_sink(&queue, shard_id);
    bus.set_proxy(ck.get());
    checker::EsChecker* raw = ck.get();
    workload->device().set_internal_activity_hook([raw] { raw->resync(); });
    return ck;
  };
  std::unique_ptr<checker::EsChecker> ck = deploy_from(std::move(snap));

  Rng rng(spec.seed);
  for (uint64_t i = 0; i < spec.ops; ++i) {
    workload->common_operation(spec.mode, rng);
    ++result.ops;
    if (config_.spec_poll_ops != 0 && (i + 1) % config_.spec_poll_ops == 0 &&
        store_->version_of(spec.device) != ck->spec_version()) {
      result.stats.merge(ck->stats());
      ck = deploy_from(store_->current(spec.device));
      ++result.redeploys;
      checker::Report r;
      r.kind = checker::Report::Kind::kRedeploy;
      r.shard = shard_id;
      r.value = ck->spec_version();
      queue.try_push(r);  // best-effort, counted by the queue either way
    }
  }

  result.final_spec_version = ck->spec_version();
  result.stats.merge(ck->stats());
  result.bus_accesses = bus.access_count();
  result.bus_owner_violations = bus.owner_violations();
}

RunReport EnforcementService::run(const std::vector<ShardSpec>& shards) {
  RunReport report;
  report.shards.resize(shards.size());
  checker::ReportQueue queue(config_.report_queue_capacity);

  // Single consumer draining concurrently with the producers, so a burst
  // larger than the queue capacity is not automatically a loss.
  std::atomic<bool> producers_done{false};
  std::thread consumer([&] {
    while (!producers_done.load(std::memory_order_acquire)) {
      if (queue.drain(report.reports) == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    queue.drain(report.reports);  // final sweep after the last producer
  });

  std::vector<std::thread> threads;
  threads.reserve(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    threads.emplace_back([&, i] {
      ShardResult& result = report.shards[i];
      result.device = shards[i].device;
      result.shard = static_cast<uint32_t>(i);
      try {
        run_shard(shards[i], static_cast<uint32_t>(i), queue, result);
      } catch (const std::exception& e) {
        result.error = e.what();
      } catch (...) {
        result.error = "unknown shard failure";
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  producers_done.store(true, std::memory_order_release);
  consumer.join();

  for (const ShardResult& s : report.shards) {
    report.fleet.merge(s.stats);
    report.total_ops += s.ops;
    report.total_redeploys += s.redeploys;
  }
  report.reports_pushed = queue.pushed();
  report.reports_dropped = queue.dropped();
  return report;
}

}  // namespace sedspec::enforce
