// Unit tests for the virtualization substrate: guest memory, DMA, IRQ
// lines, the I/O bus (dispatch, proxy veto, halted devices), and the
// instrumentation context's trace/observe plumbing.
#include <gtest/gtest.h>

#include <chrono>

#include "statelog/statelog.h"
#include "trace/encoder.h"
#include "vdev/bus.h"
#include "vdev/device.h"
#include "vdev/dma.h"
#include "vdev/memory.h"

namespace sedspec {
namespace {

TEST(GuestMemory, InBoundsRoundTrip) {
  GuestMemory mem(4096);
  mem.w32(100, 0xdeadbeef);
  EXPECT_EQ(mem.r32(100), 0xdeadbeefu);
  mem.w64(200, 0x1122334455667788ULL);
  EXPECT_EQ(mem.r64(200), 0x1122334455667788ULL);
}

TEST(GuestMemory, OutOfRangeIsSoft) {
  GuestMemory mem(64);
  EXPECT_EQ(mem.r32(62), 0u);  // crosses the end: zero-filled
  mem.w32(62, 0x41414141);     // crosses the end: dropped
  EXPECT_EQ(mem.r16(62), 0u);  // in bounds, but the write never landed
  EXPECT_EQ(mem.fault_count(), 2u);
}

TEST(Dma, TransfersAndCounts) {
  GuestMemory mem(4096);
  DmaEngine dma(&mem);
  std::vector<uint8_t> out = {1, 2, 3, 4};
  EXPECT_TRUE(dma.to_guest(64, out));
  std::vector<uint8_t> in(4);
  EXPECT_TRUE(dma.from_guest(64, in));
  EXPECT_EQ(in, out);
  EXPECT_EQ(dma.bytes_written(), 4u);
  EXPECT_EQ(dma.bytes_read(), 4u);
  EXPECT_EQ(dma.transfer_count(), 2u);
}

TEST(Irq, EdgeCountingAndSink) {
  IrqLine irq;
  int pulses = 0;
  irq.set_sink([&](bool level) { pulses += level ? 1 : 0; });
  irq.pulse();
  irq.pulse();
  irq.raise();
  irq.raise();  // already high: no new edge, but the sink still fires
  EXPECT_EQ(irq.raise_count(), 3u);
  EXPECT_EQ(pulses, 4);
  EXPECT_TRUE(irq.level());
  irq.lower();
  EXPECT_FALSE(irq.level());
}

// A trivial device: one register that counts accesses.
struct CounterDevice final : Device {
  static std::unique_ptr<DeviceProgram> make_program() {
    StateLayout layout("Counter");
    auto reg = layout.add_scalar("reg", FieldKind::kRegister, IntType::kU32);
    auto program =
        std::make_unique<DeviceProgram>("counter", std::move(layout), 0x9000);
    site_touch = program->add_plain(
        "touch", {sb::assign(reg, eb::io_value(IntType::kU32))});
    param_reg = reg;
    return program;
  }

  CounterDevice() : CounterDevice(make_program()) {}
  explicit CounterDevice(std::unique_ptr<DeviceProgram> p)
      : Device(p.get()), program_storage(std::move(p)) {
    reset();
  }
  void reset_device() override {}
  uint64_t io_read(const IoAccess& io) override {
    IoRound round(ictx(), io);
    ++reads;
    return state().get(param_reg);
  }
  void io_write(const IoAccess& io) override {
    IoRound round(ictx(), io);
    ictx().block(site_touch);
    ++writes;
  }

  static inline SiteId site_touch = 0;
  static inline ParamId param_reg = 0;
  std::unique_ptr<DeviceProgram> program_storage;
  int reads = 0;
  int writes = 0;
};

TEST(IoBus, DispatchAndUnmapped) {
  CounterDevice dev;
  IoBus bus;
  bus.map(IoSpace::kPio, 0x100, 8, &dev);
  bus.write(IoSpace::kPio, 0x104, 4, 55);
  EXPECT_EQ(bus.read(IoSpace::kPio, 0x104, 4), 55u);
  EXPECT_EQ(dev.writes, 1);
  // Unmapped: float high, no dispatch.
  EXPECT_EQ(bus.read(IoSpace::kPio, 0x900, 2), 0xffffu);
  bus.write(IoSpace::kMmio, 0x100, 4, 1);  // wrong space: ignored
  EXPECT_EQ(dev.writes, 1);
}

TEST(IoBus, OverlappingMappingRejected) {
  CounterDevice a;
  CounterDevice b;
  IoBus bus;
  bus.map(IoSpace::kPio, 0x100, 8, &a);
  EXPECT_THROW(bus.map(IoSpace::kPio, 0x104, 8, &b), std::logic_error);
}

struct VetoProxy final : IoProxy {
  bool allow = true;
  int before = 0;
  int after = 0;
  bool before_access(Device&, const IoAccess&) override {
    ++before;
    return allow;
  }
  void after_access(Device&, const IoAccess&) override { ++after; }
};

TEST(IoBus, ProxyVetoBlocksAccess) {
  CounterDevice dev;
  IoBus bus;
  bus.map(IoSpace::kPio, 0x100, 8, &dev);
  VetoProxy proxy;
  bus.set_proxy(&proxy);
  bus.write(IoSpace::kPio, 0x100, 4, 7);
  EXPECT_EQ(dev.writes, 1);
  EXPECT_EQ(proxy.after, 1);
  proxy.allow = false;
  bus.write(IoSpace::kPio, 0x100, 4, 9);
  EXPECT_EQ(dev.writes, 1);  // vetoed
  EXPECT_EQ(bus.blocked_count(), 1u);
  EXPECT_EQ(proxy.after, 1);  // no after_access for vetoed rounds
}

TEST(IoBus, HaltedDeviceRefusesAccess) {
  CounterDevice dev;
  IoBus bus;
  bus.map(IoSpace::kPio, 0x100, 8, &dev);
  dev.set_halted(true);
  EXPECT_EQ(bus.read(IoSpace::kPio, 0x100, 4), 0u);
  EXPECT_EQ(dev.reads, 0);
  EXPECT_EQ(bus.blocked_count(), 1u);
}

TEST(Instrumentation, TraceAndObserveStreams) {
  CounterDevice dev;
  trace::PacketEncoder enc;
  statelog::LogRecorder rec;
  dev.ictx().set_trace_sink(&enc);
  dev.ictx().set_observer(&rec);
  IoAccess io;
  io.addr = 0x100;
  io.value = 3;
  io.is_write = true;
  dev.io_write(io);
  dev.ictx().set_trace_sink(nullptr);
  dev.ictx().set_observer(nullptr);

  const auto events = trace::decode(enc.finish());
  ASSERT_GE(events.size(), 3u);  // PGE, TIP, PGD
  EXPECT_EQ(events.front().kind, trace::EventKind::kPge);
  EXPECT_EQ(events.back().kind, trace::EventKind::kPgd);

  const auto log = rec.take();
  EXPECT_EQ(log.round_count(), 1u);
  bool saw_param_change = false;
  for (const auto& e : log.entries()) {
    if (e.kind == statelog::EntryKind::kParamChange) {
      saw_param_change = true;
      EXPECT_EQ(e.new_value, 3u);
    }
  }
  EXPECT_TRUE(saw_param_change);
}

TEST(Instrumentation, NestedRoundRejected) {
  CounterDevice dev;
  IoAccess io;
  dev.ictx().begin_round(io);
  EXPECT_THROW(dev.ictx().begin_round(io), std::logic_error);
  dev.ictx().end_round();
}

TEST(Instrumentation, WatchdogRecordsIncident) {
  CounterDevice dev;
  IoAccess io;
  IoRound round(dev.ictx(), io);
  uint32_t counter = 0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(dev.ictx().watchdog(counter, 5, "test loop"));
  }
  EXPECT_TRUE(dev.ictx().watchdog(counter, 5, "test loop"));
  EXPECT_TRUE(dev.has_incident(IncidentKind::kRunawayLoop));
}


TEST(LatencyModel, BusAndBackendWaitsAreMeasurable) {
  CounterDevice dev;
  IoBus bus;
  bus.map(IoSpace::kPio, 0x100, 8, &dev);
  bus.set_access_latency_ns(200'000);  // 0.2 ms per access
  const auto start = std::chrono::steady_clock::now();
  (void)bus.read(IoSpace::kPio, 0x100, 4);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(secs, 0.0002);
  // Zero latency (the default) must not wait at all.
  spin_wait_ns(0);
}

}  // namespace
}  // namespace sedspec
