// Expression/statement evaluation.
//
// One evaluator serves both sides of SEDSpec:
//  - devices execute statements with `checked = false` — native C wrapping
//    semantics, mirroring the compiled emulated-device binary;
//  - the ES-Checker evaluates with `checked = true`, which turns arithmetic
//    that leaves the declared type's range, out-of-range shifts, division by
//    zero, and buffer-bound violations into EvalDiag records — the raw
//    material of the parameter check strategy (paper §VI-A).
#pragma once

#include <cstdint>
#include <string>

#include "expr/expr.h"
#include "expr/io.h"
#include "expr/stmt.h"

namespace sedspec {

/// First anomaly observed while evaluating; evaluation continues (with
/// wrapped values) so a whole statement list can run to completion.
struct EvalDiag {
  enum class Kind : uint8_t {
    kNone = 0,
    kIntegerOverflow,  // arithmetic result not representable in declared type
    kBufferOob,        // buffer index outside the field's extent
    kDivByZero,
    kShiftOutOfRange,
    kMissingLocal,  // local not resolvable (sync point required but absent)
  };

  Kind kind = Kind::kNone;
  IntType type = IntType::kU64;  // kIntegerOverflow: the declared type
  ParamId buffer = kInvalidParam;  // kBufferOob: which buffer field
  uint64_t index = 0;              // kBufferOob: offending element index
  bool oob_is_write = false;       // kBufferOob: store (true) or load (false)
  LocalId local = 0;               // kMissingLocal
  std::string note;                // originating statement annotation

  [[nodiscard]] bool any() const { return kind != Kind::kNone; }

  /// Records `k` only if no anomaly has been recorded yet.
  void record(Kind k) {
    if (kind == Kind::kNone) kind = k;
  }

  [[nodiscard]] std::string describe() const;
};

/// Mutable state behind evaluation: scalar fields, buffer fields, locals.
/// Implemented by program::StateArena (device side and checker shadow side,
/// with different out-of-bounds policies).
class StateAccess {
 public:
  virtual ~StateAccess() = default;

  [[nodiscard]] virtual uint64_t param(ParamId id) const = 0;
  virtual void set_param(ParamId id, uint64_t raw) = 0;

  /// Loads one buffer element. Out-of-bounds behavior is policy-defined:
  /// the checker records kBufferOob in `diag`; the device clamps/ignores and
  /// records a ground-truth incident.
  virtual uint64_t buf_load(ParamId id, uint64_t index, EvalDiag* diag) = 0;
  virtual void buf_store(ParamId id, uint64_t index, uint64_t raw,
                         EvalDiag* diag) = 0;
  /// Bulk store of `count` elements starting at `index` (data contents are
  /// supplied natively by the device; the shadow side fills zeroes).
  virtual void buf_fill(ParamId id, uint64_t index, uint64_t count,
                        EvalDiag* diag) = 0;

  /// Returns false if the local has no value (needs a sync point).
  virtual bool local(LocalId id, uint64_t* out) const = 0;
  virtual void set_local(LocalId id, uint64_t raw) = 0;

  /// Side-effect-free buffer element read (out-of-range reads return 0).
  /// Used by sync-point resolvers, which only get a const view.
  [[nodiscard]] virtual uint64_t buf_peek(ParamId id,
                                          uint64_t index) const = 0;
};

/// Evaluation context threading state, the current I/O access, the checking
/// policy, and the diagnostic accumulator through an evaluation.
struct EvalCtx {
  StateAccess* state = nullptr;
  const IoAccess* io = nullptr;
  bool checked = false;
  EvalDiag* diag = nullptr;  // required when checked
};

/// Evaluates `e`, returning the raw bit pattern truncated to e.type.
[[nodiscard]] uint64_t eval_expr(const Expr& e, EvalCtx& ctx);

/// Executes one statement against ctx.state.
void exec_stmt(const Stmt& s, EvalCtx& ctx);

}  // namespace sedspec
