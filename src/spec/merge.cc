#include "spec/merge.h"

#include <algorithm>

#include "spec/builder.h"

namespace sedspec::spec {

namespace {

void merge_dir(const std::string& what, CondDir* into, const CondDir& from) {
  if (!from.observed) {
    return;
  }
  if (!into->observed) {
    *into = from;
    return;
  }
  if (into->ends != from.ends ||
      (!into->ends && into->succ != from.succ)) {
    throw BuildError("conflicting trained direction while merging: " + what);
  }
}

void merge_block(EsBlock* into, const EsBlock& from) {
  merge_dir(from.name + "/taken", &into->taken, from.taken);
  merge_dir(from.name + "/not-taken", &into->not_taken, from.not_taken);
  if (from.has_succ) {
    if (into->ends || (into->has_succ && into->succ != from.succ)) {
      throw BuildError("conflicting successor while merging: " + from.name);
    }
    into->has_succ = true;
    into->succ = from.succ;
  }
  if (from.ends) {
    if (into->has_succ && !into->merged) {
      throw BuildError("conflicting round end while merging: " + from.name);
    }
    into->ends = true;
  }
  for (const auto& [cmd, dir] : from.cmd_dispatch) {
    merge_dir(from.name + "/cmd", &into->cmd_dispatch[cmd], dir);
  }
  into->fp_targets.insert(from.fp_targets.begin(), from.fp_targets.end());
  into->max_visits_per_round =
      std::max(into->max_visits_per_round, from.max_visits_per_round);
  // A conditional merged (both directions converge) in only one input stays
  // conditional: the union must accept both inputs' behaviors, and the
  // unmerged form is the more permissive representation of the directions.
  if (into->merged && !from.merged) {
    into->merged = false;
    into->has_succ = false;
    into->ends = false;
  }
}

}  // namespace

EsCfg merge(const EsCfg& a, const EsCfg& b) {
  if (a.device_name != b.device_name) {
    throw BuildError("merging specifications of different devices");
  }
  EsCfg out = a;
  out.trained_rounds += b.trained_rounds;
  out.blocks_before_reduction += b.blocks_before_reduction;
  out.merged_conditionals += b.merged_conditionals;
  out.spliced_blocks += b.spliced_blocks;

  for (ParamId p : b.params) {
    if (!out.is_param(p)) {
      out.params.push_back(p);
    }
  }
  std::sort(out.params.begin(), out.params.end());

  for (const auto& [key, site] : b.entry_dispatch) {
    auto [it, inserted] = out.entry_dispatch.emplace(key, site);
    if (!inserted && it->second != site) {
      // One side saw no instrumented block for this key; keep the real one.
      if (it->second == kInvalidSite) {
        it->second = site;
      } else if (site != kInvalidSite) {
        throw BuildError("conflicting entry block while merging");
      }
    }
  }

  for (const auto& [site, block] : b.blocks) {
    auto it = out.blocks.find(site);
    if (it == out.blocks.end()) {
      out.blocks.emplace(site, block);
    } else {
      merge_block(&it->second, block);
    }
  }

  for (const auto& [cmd, info] : b.commands) {
    CmdInfo& into = out.commands[cmd];
    into.access.insert(info.access.begin(), info.access.end());
    into.observed += info.observed;
  }

  out.sync_locals.insert(b.sync_locals.begin(), b.sync_locals.end());
  return out;
}

}  // namespace sedspec::spec
