// Uniform per-device workload harnesses.
//
// Each DeviceWorkload owns one emulated device (plus bus / guest memory /
// driver model) and exposes the three behaviors the paper's evaluation
// needs:
//   - training()   — the benign training mix (phase 1 input). Deterministic
//                    and comprehensive over the device's *common* operation
//                    vocabulary; rare-but-legal operations are deliberately
//                    excluded (they are the false-positive source).
//   - test_case()  — one long-run interaction batch in a given mode
//                    (sequential / random / random-with-delay, §VII-B1),
//                    optionally containing a rare-but-legal operation.
//                    Advances the virtual clock by a realistic duration.
//   - fuzz_case()  — one benign fuzzing batch over the FULL legal
//                    vocabulary (common + rare), used to approximate the
//                    legitimate-behavior path set for the effective-
//                    coverage metric (§VII-B1).
//
// build_and_deploy() runs the full SEDSpec pipeline on the device and
// installs the checker as the bus proxy.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "checker/checker.h"
#include "common/rng.h"
#include "common/vclock.h"
#include "sedspec/pipeline.h"
#include "spec/es_cfg.h"
#include "vdev/bus.h"
#include "vdev/device.h"

namespace sedspec::guest {

enum class InteractionMode { kSequential, kRandom, kRandomWithDelay };

[[nodiscard]] std::string interaction_mode_name(InteractionMode mode);

class DeviceWorkload {
 public:
  virtual ~DeviceWorkload() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual Device& device() = 0;
  [[nodiscard]] virtual IoBus& bus() = 0;

  /// Benign training mix (no rare operations).
  virtual void training() = 0;
  /// One rare-but-legal operation (the FP source).
  virtual void rare_operation(Rng& rng) = 0;
  /// One common benign operation in the given mode.
  virtual void common_operation(InteractionMode mode, Rng& rng) = 0;

  /// Operations per test case. Byte-PIO devices (FDC, SDHCI) issue ~1000
  /// register accesses per operation, so they use fewer operations per case
  /// — the paper's "thousands to tens of thousands of I/O sequences" per
  /// test case holds either way.
  [[nodiscard]] virtual std::pair<int, int> ops_per_case() const {
    return {40, 200};
  }

  /// Virtual-time envelope of one test case in seconds (how much virtual
  /// clock a case consumes beyond per-op delays). Devices whose guests
  /// issue shorter, denser test cases (SD cards, NICs) use a smaller
  /// envelope, i.e. more cases per campaign hour.
  [[nodiscard]] virtual std::pair<int, int> case_envelope_seconds() const {
    return {20, 60};
  }

  /// Bulk storage I/O for the iozone-style benchmarks (storage devices
  /// only; default implementations abort). `offset` and sizes are in
  /// 512-byte blocks under the hood; `data.size()` must be a multiple of
  /// the device's transfer granule.
  [[nodiscard]] virtual bool is_storage() const { return false; }
  virtual void bulk_write(uint32_t block, std::span<const uint8_t> data);
  virtual void bulk_read(uint32_t block, std::span<uint8_t> data);
  /// Largest supported byte offset for bulk I/O (FDC: the 2.88 MB medium).
  [[nodiscard]] virtual uint64_t storage_capacity() const { return 0; }

  /// One long-run test case: `ops` common operations (+ optionally a rare
  /// one at a random position), advancing `clock` by a realistic duration.
  void test_case(InteractionMode mode, Rng& rng, VirtualClock& clock,
                 bool include_rare);

  /// One benign fuzzing batch over the full legal vocabulary.
  void fuzz_case(Rng& rng);

  /// Runs the SEDSpec pipeline on this device and deploys the checker.
  void build_and_deploy(checker::CheckerConfig config = {});

  [[nodiscard]] const spec::EsCfg& spec() const { return cfg_; }
  [[nodiscard]] checker::EsChecker* checker() { return checker_.get(); }
  [[nodiscard]] bool deployed() const { return checker_ != nullptr; }

 protected:
  spec::EsCfg cfg_;
  std::unique_ptr<checker::EsChecker> checker_;
};

/// The paper's five devices. `patched` selects the fixed code (true, the
/// default for FP/performance runs) or leaves all the device's CVEs armed.
[[nodiscard]] std::unique_ptr<DeviceWorkload> make_workload(
    const std::string& device_name);

[[nodiscard]] const std::vector<std::string>& workload_names();

}  // namespace sedspec::guest
