// Figure 3 reproduction: normalized throughput of storage devices.
//
// iozone-style block-size sweep over the four storage devices (FDC, USB
// EHCI, SDHCI, SCSI). For each block size, bulk read/write throughput is
// measured through the bus path without SEDSpec (normalized to 1) and with
// the ES-Checker deployed. The paper reports < 5% loss; the FDC only has a
// 2.88 MB medium, so its sweep stops below that limit.
#include <cstdio>
#include <vector>

#include "benchsim/perf.h"
#include "guest/workload.h"
#include "common/log.h"
#include "report.h"

int main() {
  using namespace sedspec;
  set_log_level(LogLevel::kError);
  bench_report::title(
      "Figure 3 — Normalized storage throughput (baseline = 1.000)");
  bench_report::MetricSink sink("fig3_storage_throughput");

  // Byte-PIO devices (FDC, SDHCI) pay a VM exit per data byte, so their
  // sweep and byte budget are smaller to keep wall time sane; DMA-style
  // devices run the full sweep. The FDC additionally cannot exceed its
  // 2.88 MB medium (as in the paper).
  const std::vector<size_t> kSweepPio = {4u << 10, 16u << 10, 64u << 10,
                                         256u << 10};
  const std::vector<size_t> kSweepDma = {4u << 10, 16u << 10, 64u << 10,
                                         256u << 10, 1u << 20, 4u << 20};
  std::printf("%-10s %-8s | %12s %12s | %12s %12s\n", "Device", "Block",
              "write MB/s", "read MB/s", "norm write", "norm read");
  bench_report::rule();

  for (const std::string& name : guest::workload_names()) {
    auto probe = guest::make_workload(name);
    if (!probe->is_storage()) {
      continue;
    }
    const bool pio = name == "fdc" || name == "sdhci";
    for (size_t block : pio ? kSweepPio : kSweepDma) {
      if (block >= probe->storage_capacity()) {
        continue;  // FDC: blocks beyond the 2.88 MB medium are skipped
      }
      const size_t budget = pio ? (64u << 10) : (4u << 20);

      auto base_wl = guest::make_workload(name);
      benchsim::apply_latency_model(*base_wl);
      const auto base =
          benchsim::measure_storage(*base_wl, block, budget);

      auto sed_wl = guest::make_workload(name);
      sed_wl->build_and_deploy();
      benchsim::apply_latency_model(*sed_wl);
      const auto sed = benchsim::measure_storage(*sed_wl, block, budget);

      std::printf("%-10s %-8s | %12.1f %12.1f | %12.3f %12.3f\n",
                  name.c_str(), bench_report::human_size(block).c_str(),
                  sed.write_mbps, sed.read_mbps,
                  sed.write_mbps / base.write_mbps,
                  sed.read_mbps / base.read_mbps);
      const std::string key =
          name + "/" + bench_report::human_size(block) + "/";
      sink.put(key + "write_mbps", sed.write_mbps);
      sink.put(key + "read_mbps", sed.read_mbps);
      sink.put(key + "norm_write", sed.write_mbps / base.write_mbps);
      sink.put(key + "norm_read", sed.read_mbps / base.read_mbps);
    }
    bench_report::rule();
  }
  std::printf(
      "Shape check: normalized throughput stays near 1.0 (the paper reports\n"
      "less than 5%% loss across block sizes).\n");
  sink.write_json();
  return 0;
}
