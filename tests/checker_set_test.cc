// CheckerSet: one VM, several protected devices on the same bus. A
// compromise attempt against one device is contained without disturbing
// the others.
#include <gtest/gtest.h>

#include "checker/checker_set.h"
#include "devices/esp_scsi.h"
#include "devices/fdc.h"
#include "guest/esp_driver.h"
#include "guest/fdc_driver.h"
#include "sedspec/pipeline.h"

namespace sedspec {
namespace {

using checker::CheckerSet;
using devices::EspScsiDevice;
using devices::FdcDevice;

struct VmEnv {
  GuestMemory mem{1 << 20};
  FdcDevice fdc{FdcDevice::Vulns{.cve_2015_3456 = true}};
  EspScsiDevice esp{&mem};
  IoBus bus;
  spec::EsCfg fdc_cfg;
  spec::EsCfg esp_cfg;
  CheckerSet set;

  VmEnv() {
    bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan, &fdc);
    bus.map(IoSpace::kPio, EspScsiDevice::kBasePort,
            EspScsiDevice::kPortSpan, &esp);
    fdc_cfg = pipeline::build_spec(fdc, [&] {
      guest::FdcDriver drv(&bus);
      drv.reset();
      std::vector<uint8_t> sector(512, 0x42);
      drv.write_sector(0, 0, 1, sector);
      std::vector<uint8_t> back(512);
      drv.read_sector(0, 0, 1, back);
    });
    esp_cfg = pipeline::build_spec(esp, [&] {
      guest::EspDriver drv(&bus, &mem);
      drv.bus_reset();
      std::vector<uint8_t> block(512, 0x17);
      drv.write_blocks(0, 1, block);
      std::vector<uint8_t> back(512);
      drv.read_blocks(0, 1, back);
    });
    set.attach(fdc_cfg, fdc);
    set.attach(esp_cfg, esp);
    bus.set_proxy(&set);
  }
};

TEST(CheckerSet, RoutesPerDeviceAndStaysCleanOnBenignTraffic) {
  VmEnv vm;
  EXPECT_EQ(vm.set.size(), 2u);
  guest::FdcDriver fdc_drv(&vm.bus);
  guest::EspDriver esp_drv(&vm.bus, &vm.mem);
  std::vector<uint8_t> sector(512, 0x5a);
  fdc_drv.write_sector(0, 0, 1, sector);
  std::vector<uint8_t> block(512, 0x3c);
  esp_drv.write_blocks(0, 1, block);
  EXPECT_EQ(vm.set.checker_for(vm.fdc)->stats().blocked, 0u);
  EXPECT_EQ(vm.set.checker_for(vm.esp)->stats().blocked, 0u);
  EXPECT_GT(vm.set.checker_for(vm.fdc)->stats().rounds, 0u);
  EXPECT_GT(vm.set.checker_for(vm.esp)->stats().rounds, 0u);
}

TEST(CheckerSet, CompromiseOfOneDeviceLeavesOthersRunning) {
  VmEnv vm;
  guest::FdcDriver fdc_drv(&vm.bus);
  // Venom against the FDC...
  fdc_drv.write_fifo(FdcDevice::kCmdDriveSpec);
  for (int i = 0; i < 700; ++i) {
    fdc_drv.write_fifo(0x01);
  }
  EXPECT_TRUE(vm.fdc.halted());
  EXPECT_TRUE(vm.fdc.incidents().empty());
  // ...while the SCSI disk keeps serving the tenant.
  guest::EspDriver esp_drv(&vm.bus, &vm.mem);
  std::vector<uint8_t> block(512, 0x77);
  esp_drv.write_blocks(2, 1, block);
  std::vector<uint8_t> back(512);
  esp_drv.read_blocks(2, 1, back);
  EXPECT_EQ(back, block);
  EXPECT_FALSE(vm.esp.halted());
  EXPECT_EQ(vm.set.checker_for(vm.esp)->stats().blocked, 0u);
}

TEST(CheckerSet, UncheckedDevicePassesThrough) {
  GuestMemory mem(1 << 20);
  FdcDevice fdc;
  IoBus bus;
  bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan, &fdc);
  CheckerSet set;  // empty: nothing attached
  bus.set_proxy(&set);
  guest::FdcDriver drv(&bus);
  drv.reset();
  EXPECT_EQ(drv.version(), 0x90);
  EXPECT_EQ(set.checker_for(fdc), nullptr);
}

}  // namespace
}  // namespace sedspec
