#include "checker/checker.h"

#include "checker/engine/engine.h"
#include "common/log.h"
#include "obs/trace.h"

namespace sedspec::checker {

std::string_view strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kParameter:
      return "parameter check";
    case Strategy::kIndirectJump:
      return "indirect jump check";
    case Strategy::kConditionalJump:
      return "conditional jump check";
  }
  return "?";
}

Severity severity_of(Strategy s) {
  switch (s) {
    case Strategy::kParameter:
      return Severity::kCritical;
    case Strategy::kIndirectJump:
      return Severity::kHigh;
    case Strategy::kConditionalJump:
      return Severity::kWarning;
  }
  return Severity::kWarning;
}

std::string_view failure_policy_name(FailurePolicy p) {
  switch (p) {
    case FailurePolicy::kFailClosed:
      return "fail-closed";
    case FailurePolicy::kFailOpen:
      return "fail-open";
  }
  return "?";
}

std::string_view engine_kind_name(EngineKind k) {
  switch (k) {
    case EngineKind::kDefault:
      return "default";
    case EngineKind::kInterpreter:
      return "interpreter";
    case EngineKind::kBytecode:
      return "bytecode";
  }
  return "?";
}

// Tripwire: a new CheckerStats counter that is not summed below would
// silently vanish from fleet aggregation. If this assert fires, extend
// merge(), publish_checker_stats(), and the field-by-field merge test
// (checker_set_test.cc), then bump the expected size.
static_assert(sizeof(CheckerStats) == 19 * sizeof(uint64_t),
              "CheckerStats changed: update merge()/publish_checker_stats()/"
              "the merge unit test, then this assert");

void CheckerStats::merge(const CheckerStats& other) {
  rounds += other.rounds;
  clean_rounds += other.clean_rounds;
  blocked += other.blocked;
  warnings += other.warnings;
  for (int i = 0; i < 3; ++i) {
    violations_by_strategy[i] += other.violations_by_strategy[i];
  }
  rollbacks += other.rollbacks;
  total_steps += other.total_steps;
  contained_faults += other.contained_faults;
  fail_closed_faults += other.fail_closed_faults;
  fail_open_faults += other.fail_open_faults;
  degraded_rounds += other.degraded_rounds;
  quarantines += other.quarantines;
  self_heals += other.self_heals;
  check_ns += other.check_ns;
  reports_emitted += other.reports_emitted;
  reports_offered += other.reports_offered;
  redeploy_retries += other.redeploy_retries;
}

std::string_view report_kind_name(Report::Kind k) {
  switch (k) {
    case Report::Kind::kViolation:
      return "violation";
    case Report::Kind::kBlocked:
      return "blocked";
    case Report::Kind::kQuarantine:
      return "quarantine";
    case Report::Kind::kSelfHeal:
      return "self_heal";
    case Report::Kind::kDegraded:
      return "degraded";
    case Report::Kind::kRedeploy:
      return "redeploy";
  }
  return "?";
}

std::string strategy_set_name(const CheckerConfig& config) {
  const int enabled = (config.enable_parameter ? 1 : 0) +
                      (config.enable_indirect ? 1 : 0) +
                      (config.enable_conditional ? 1 : 0);
  if (enabled == 3) {
    return "all";
  }
  if (enabled == 0) {
    return "none";
  }
  if (enabled == 1) {
    if (config.enable_parameter) {
      return "parameter";
    }
    if (config.enable_indirect) {
      return "indirect";
    }
    return "conditional";
  }
  return "mixed";
}

void publish_checker_stats(obs::MetricsRegistry& registry,
                           const std::string& device_label,
                           const CheckerStats& stats) {
  const std::string labels = obs::label({{"device", device_label}});
  auto set = [&](std::string_view name, uint64_t value) {
    registry.gauge(name, labels).set(static_cast<int64_t>(value));
  };
  set("checker_rounds", stats.rounds);
  set("checker_clean_rounds", stats.clean_rounds);
  set("checker_blocked", stats.blocked);
  set("checker_warnings", stats.warnings);
  set("checker_violations_parameter", stats.violations_by_strategy[0]);
  set("checker_violations_indirect", stats.violations_by_strategy[1]);
  set("checker_violations_conditional", stats.violations_by_strategy[2]);
  set("checker_rollbacks", stats.rollbacks);
  set("checker_total_steps", stats.total_steps);
  set("checker_contained_faults", stats.contained_faults);
  set("checker_fail_closed_faults", stats.fail_closed_faults);
  set("checker_fail_open_faults", stats.fail_open_faults);
  set("checker_degraded_rounds", stats.degraded_rounds);
  set("checker_quarantines", stats.quarantines);
  set("checker_self_heals", stats.self_heals);
  set("checker_check_ns", stats.check_ns);
  set("checker_reports_emitted", stats.reports_emitted);
  set("checker_reports_offered", stats.reports_offered);
  set("checker_redeploy_retries", stats.redeploy_retries);
}

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kCritical:
      return "critical";
    case Severity::kHigh:
      return "high";
    case Severity::kWarning:
      return "warning";
  }
  return "?";
}

bool CheckResult::any(Strategy s) const {
  for (const Violation& v : violations) {
    if (v.strategy == s) {
      return true;
    }
  }
  return false;
}

EsChecker::EsChecker(const spec::EsCfg* cfg, Device* device,
                     CheckerConfig config, CheckerHooks hooks)
    : cfg_(cfg),
      device_(device),
      config_(std::move(config)),
      hooks_(std::move(hooks)),
      shadow_(&device->program().layout()) {
  SEDSPEC_REQUIRE(cfg != nullptr && device != nullptr);
  SEDSPEC_REQUIRE_MSG(cfg->device_name == device->program().device_name(),
                      "specification/device mismatch");
  shadow_.copy_from(device->state());
  latency_hist_ = &obs::metrics().histogram(
      "checker_check_latency_ns",
      obs::label({{"device", metrics_label()},
                  {"strategies", strategy_set_name(config_)}}));
  violations_counter_ = &obs::metrics().counter(
      "checker_violations_total", obs::label({{"device", metrics_label()}}));
  engine_kind_ = engine::resolve_engine(config_.engine);
  engine_ = engine::make_engine(cfg_, device_, &shadow_, &config_);
  if (config_.rollback_on_violation) {
    checkpoint_ = std::make_unique<sedspec::StateArena>(
        &device->program().layout());
    checkpoint_->copy_from(device->state());
  }
}

namespace {
/// Delegation helper: validates the snapshot before the raw-cfg constructor
/// dereferences it.
const spec::EsCfg* cfg_of(const spec::SnapshotRef& snapshot) {
  SEDSPEC_REQUIRE_MSG(snapshot != nullptr,
                      "checker attached to a null spec snapshot");
  return &snapshot->cfg;
}
}  // namespace

EsChecker::EsChecker(spec::SnapshotRef snapshot, Device* device,
                     CheckerConfig config, CheckerHooks hooks)
    : EsChecker(cfg_of(snapshot), device, std::move(config),
                std::move(hooks)) {
  snapshot_ = std::move(snapshot);
}

EsChecker::~EsChecker() = default;

const std::string& EsChecker::metrics_label() const {
  return config_.metrics_label.empty() ? cfg_->device_name
                                       : config_.metrics_label;
}

void EsChecker::emit_report(Report::Kind kind, Strategy strategy, SiteId site,
                            uint64_t value) {
  if (hooks_.report_sink == nullptr) {
    return;
  }
  Report r;
  r.kind = kind;
  r.strategy = strategy;
  r.shard = hooks_.shard_id;
  r.site = site;
  r.seq = report_seq_++;
  r.value = value;
  // offer() must never block (bounded queue, try-push): a full queue drops
  // the report and the check path keeps its latency bound. The sink counts
  // its own rejections (single source of truth, attributed per shard); we
  // only track offered vs accepted so drops stay derivable per checker.
  ++stats_.reports_offered;
  if (hooks_.report_sink->offer(r)) {
    ++stats_.reports_emitted;
  }
}

void EsChecker::resync() {
  shadow_.copy_from(device_->state());
  engine_->set_active_command(std::nullopt);
}

bool EsChecker::strategy_enabled(Strategy s) const {
  return engine::strategy_enabled(config_, s);
}

CheckResult EsChecker::check(const IoAccess& io) {
  shadow_.clear_locals();
  engine::RoundOptions opts;
  // Fault-injection seam: model an internal checker malfunction this round.
  if (hooks_.fault_hook) {
    const InternalFault fault = hooks_.fault_hook(shadow_);
    if (fault.throw_in_traversal) {
      throw CheckerFault("injected traversal fault");
    }
    opts.suppress_termination = fault.suppress_termination;
  }
  return engine_->check(io, opts);
}

bool EsChecker::before_access(Device& device, const IoAccess& io) {
  if (degraded_) {
    // Fail-open degraded mode: serve unprotected rounds until the next
    // self-heal attempt, then resync the shadow and re-attach.
    if (degraded_rounds_since_heal_ + 1 >= config_.self_heal_interval) {
      resync();
      degraded_ = false;
      degraded_rounds_since_heal_ = 0;
      ++stats_.self_heals;
      emit_report(Report::Kind::kSelfHeal, Strategy::kParameter,
                  sedspec::kInvalidSite);
      if (obs::EventTracer* tr = obs::tracer()) {
        tr->record(obs::EventType::kSelfHeal, "self_heal", cfg_->device_name);
      }
      if (hooks_.local_tracer != nullptr) {
        hooks_.local_tracer->record(obs::EventType::kSelfHeal, "self_heal",
                                    cfg_->device_name);
      }
      // Fall through: this round is checked again.
    } else {
      ++degraded_rounds_since_heal_;
      ++stats_.rounds;
      ++stats_.degraded_rounds;
      pending_resync_ = true;  // track whatever the device does unchecked
      return true;
    }
  }
  try {
    return guarded_before_access(device, io);
  } catch (const std::exception& e) {
    return contain_fault(device, e.what(), /*count_round=*/true);
  } catch (...) {
    return contain_fault(device, "unknown checker fault",
                         /*count_round=*/true);
  }
}

bool EsChecker::contain_fault(Device& device, const std::string& what,
                              bool count_round) {
  if (count_round) {
    ++stats_.rounds;
  }
  ++stats_.contained_faults;
  log_warn("checker") << cfg_->device_name << ": contained internal fault ("
                      << failure_policy_name(config_.failure_policy)
                      << ") — " << what;
  if (config_.failure_policy == FailurePolicy::kFailClosed) {
    // Quarantine: power-cycle the device to a known-good state, rebuild the
    // shadow from it, and re-arm. Protection never lapses; availability
    // costs one device reset.
    ++stats_.fail_closed_faults;
    ++stats_.quarantines;
    emit_report(Report::Kind::kQuarantine, Strategy::kParameter,
                sedspec::kInvalidSite);
    if (count_round) {
      ++stats_.blocked;
    }
    if (obs::EventTracer* tr = obs::tracer()) {
      tr->record(obs::EventType::kQuarantine, "quarantine", cfg_->device_name,
                 failure_policy_name(config_.failure_policy));
    }
    if (hooks_.local_tracer != nullptr) {
      hooks_.local_tracer->record(obs::EventType::kQuarantine, "quarantine",
                                  cfg_->device_name,
                                  failure_policy_name(config_.failure_policy));
    }
    device.reset();
    resync();
    if (checkpoint_ != nullptr) {
      checkpoint_->copy_from(device.state());
    }
    pending_resync_ = false;
    last_ = {};
    last_.blocked = true;
    return false;
  }
  // Fail-open: the access proceeds unprotected; alert and schedule a
  // self-heal.
  ++stats_.fail_open_faults;
  emit_report(Report::Kind::kDegraded, Strategy::kParameter,
              sedspec::kInvalidSite);
  if (count_round) {
    ++stats_.degraded_rounds;
  }
  degraded_ = true;
  degraded_rounds_since_heal_ = 0;
  pending_resync_ = true;
  last_ = {};
  return true;
}

bool EsChecker::guarded_before_access(Device& device, const IoAccess& io) {
  const std::optional<uint64_t> saved_cmd = engine_->active_command();
  // Latency probe: gated on the global timing switch so the untimed hot
  // path pays one relaxed load, no clock reads.
  const bool timed = obs::timing_enabled();
  const uint64_t t0 = timed ? obs::now_ns() : 0;
  last_ = check(io);
  if (timed) {
    const uint64_t dt = obs::now_ns() - t0;
    stats_.check_ns += dt;
    latency_hist_->record(dt);
  }
  ++stats_.rounds;
  stats_.total_steps += last_.steps;
  // Flight-recorder ring: one fixed-cost event per checked round so an
  // incident bundle carries the last-K rounds of context (address + step
  // count identify what the guest was driving).
  if (hooks_.local_tracer != nullptr) {
    hooks_.local_tracer->record(obs::EventType::kIoAccess,
                                io.is_write ? "io_write" : "io_read",
                                cfg_->device_name, {}, io.addr, last_.steps);
  }
  for (const Violation& v : last_.violations) {
    ++stats_.violations_by_strategy[static_cast<int>(v.strategy)];
  }
  if (!last_.violations.empty()) {
    violations_counter_->inc(last_.violations.size());
    for (const Violation& v : last_.violations) {
      emit_report(Report::Kind::kViolation, v.strategy, v.site);
    }
    if (obs::EventTracer* tr = obs::tracer()) {
      for (const Violation& v : last_.violations) {
        tr->record(obs::EventType::kViolation, "violation", cfg_->device_name,
                   strategy_name(v.strategy), v.site);
      }
    }
    if (hooks_.local_tracer != nullptr) {
      for (const Violation& v : last_.violations) {
        hooks_.local_tracer->record(obs::EventType::kViolation, "violation",
                                    cfg_->device_name,
                                    strategy_name(v.strategy), v.site);
      }
    }
  }
  if (last_.clean()) {
    ++stats_.clean_rounds;
    return true;
  }

  if (config_.monitor_only) {
    ++stats_.warnings;
    // Keep the shadow aligned with whatever the device actually does.
    pending_resync_ = true;
    return true;
  }

  bool block_access = false;
  if (config_.mode == Mode::kProtection) {
    block_access = true;
  } else {
    // Enhancement mode: only the parameter check halts execution.
    block_access = last_.any(Strategy::kParameter);
  }

  if (block_access) {
    ++stats_.blocked;
    last_.blocked = true;
    emit_report(Report::Kind::kBlocked,
                last_.violations.front().strategy,
                last_.violations.front().site);
    if (config_.rollback_on_violation && checkpoint_ != nullptr) {
      // Rollback recovery: restore the control structure to the last clean
      // checkpoint; the device stays available.
      device.state().copy_from(*checkpoint_);
      ++stats_.rollbacks;
    } else if (config_.mode == Mode::kProtection) {
      device.set_halted(true);
      last_.halted = true;
    }
    // The device will not execute this access: discard the speculative
    // shadow mutations by resynchronizing from the (possibly rolled-back)
    // device.
    shadow_.copy_from(device.state());
    if (config_.rollback_on_violation) {
      // The checkpoint predates the current command.
      engine_->set_active_command(std::nullopt);
    } else {
      engine_->set_active_command(saved_cmd);
    }
    log_warn("checker") << cfg_->device_name << ": blocked I/O — "
                        << last_.violations.front().detail;
    return false;
  }

  ++stats_.warnings;
  for (const Violation& v : last_.violations) {
    log_warn("checker") << cfg_->device_name << ": warning ("
                        << strategy_name(v.strategy) << ") — " << v.detail;
  }
  // The device executes the access; pick up its authoritative state
  // afterwards so the warning does not cascade into follow-on divergence.
  pending_resync_ = config_.resync_after_warning;
  return true;
}

void EsChecker::publish_metrics(obs::MetricsRegistry& registry) const {
  publish_checker_stats(registry, metrics_label(), stats_);
}

void EsChecker::after_access(Device& device, const IoAccess& /*io*/) {
  try {
    if (checkpoint_ != nullptr && last_.clean() && !degraded_) {
      checkpoint_->copy_from(device.state());
    }
    if (pending_resync_) {
      shadow_.copy_from(device.state());
      // The warned-about round may have left command tracking stale; drop it
      // so one warning cannot cascade into access-table false positives.
      engine_->set_active_command(std::nullopt);
      pending_resync_ = false;
    }
  } catch (const std::exception& e) {
    // The round was already counted in before_access.
    contain_fault(device, e.what(), /*count_round=*/false);
  } catch (...) {
    contain_fault(device, "unknown checker fault", /*count_round=*/false);
  }
}

}  // namespace sedspec::checker
