// ES-CFG persistence.
//
// An execution specification is generated offline (phases 1-2 of the paper)
// and deployed into the hypervisor for runtime protection (phase 3), so it
// must round-trip through a byte format. Expressions and statements are
// serialized structurally; the format is versioned and fail-fast.
#pragma once

#include <span>
#include <vector>

#include "common/bytes.h"
#include "spec/es_cfg.h"

namespace sedspec::spec {

/// Serializes an expression tree (nullptr allowed).
void write_expr(sedspec::ByteWriter& w, const ExprRef& e);
[[nodiscard]] ExprRef read_expr(sedspec::ByteReader& r);

void write_stmt(sedspec::ByteWriter& w, const sedspec::Stmt& s);
[[nodiscard]] sedspec::Stmt read_stmt(sedspec::ByteReader& r);

[[nodiscard]] std::vector<uint8_t> serialize(const EsCfg& cfg);
[[nodiscard]] EsCfg deserialize(std::span<const uint8_t> bytes);

}  // namespace sedspec::spec
