#include "statelog/statelog.h"

#include <sstream>

#include "common/assert.h"

namespace sedspec::statelog {

size_t DeviceStateLog::round_count() const {
  size_t n = 0;
  for (const LogEntry& e : entries_) {
    if (e.kind == EntryKind::kRoundStart) {
      ++n;
    }
  }
  return n;
}

std::vector<DeviceStateLog::RoundView> DeviceStateLog::rounds() const {
  std::vector<RoundView> out;
  size_t begin = 0;
  bool open = false;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].kind == EntryKind::kRoundStart) {
      SEDSPEC_REQUIRE_MSG(!open, "nested round in state log");
      begin = i;
      open = true;
    } else if (entries_[i].kind == EntryKind::kRoundEnd) {
      SEDSPEC_REQUIRE_MSG(open, "round end without start");
      out.push_back(RoundView{
          std::span<const LogEntry>(entries_.data() + begin, i - begin + 1)});
      open = false;
    }
  }
  SEDSPEC_REQUIRE_MSG(!open, "unterminated round in state log");
  return out;
}

void DeviceStateLog::merge(const DeviceStateLog& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

std::vector<uint8_t> DeviceStateLog::serialize() const {
  sedspec::ByteWriter w;
  w.u32(0x5345444cu);  // "SEDL"
  w.u64(entries_.size());
  for (const LogEntry& e : entries_) {
    w.u8(static_cast<uint8_t>(e.kind));
    switch (e.kind) {
      case EntryKind::kRoundStart:
        w.u8(static_cast<uint8_t>(e.io.space));
        w.u64(e.io.addr);
        w.u8(e.io.size);
        w.u64(e.io.value);
        w.u8(e.io.is_write ? 1 : 0);
        break;
      case EntryKind::kSiteEnter:
        w.u16(e.site);
        w.u8(static_cast<uint8_t>(e.block_kind));
        break;
      case EntryKind::kBranch:
        w.u16(e.site);
        w.u8(e.taken ? 1 : 0);
        break;
      case EntryKind::kIndirect:
        w.u16(e.site);
        w.u64(e.target);
        break;
      case EntryKind::kCommand:
        w.u16(e.site);
        w.u64(e.cmd);
        break;
      case EntryKind::kCommandEnd:
        w.u16(e.site);
        break;
      case EntryKind::kParamChange:
        w.u16(e.param);
        w.u64(e.old_value);
        w.u64(e.new_value);
        break;
      case EntryKind::kRoundEnd:
        break;
    }
  }
  return w.take();
}

DeviceStateLog DeviceStateLog::deserialize(std::span<const uint8_t> bytes) {
  sedspec::ByteReader r(bytes);
  SEDSPEC_CHECK_DECODE(r.u32() == 0x5345444cu, "bad state log magic");
  const uint64_t n = r.u64();
  DeviceStateLog log;
  for (uint64_t i = 0; i < n; ++i) {
    LogEntry e;
    e.kind = static_cast<EntryKind>(r.u8());
    switch (e.kind) {
      case EntryKind::kRoundStart:
        e.io.space = static_cast<sedspec::IoSpace>(r.u8());
        e.io.addr = r.u64();
        e.io.size = r.u8();
        e.io.value = r.u64();
        e.io.is_write = r.u8() != 0;
        break;
      case EntryKind::kSiteEnter:
        e.site = r.u16();
        e.block_kind = static_cast<BlockKind>(r.u8());
        break;
      case EntryKind::kBranch:
        e.site = r.u16();
        e.taken = r.u8() != 0;
        break;
      case EntryKind::kIndirect:
        e.site = r.u16();
        e.target = r.u64();
        break;
      case EntryKind::kCommand:
        e.site = r.u16();
        e.cmd = r.u64();
        break;
      case EntryKind::kCommandEnd:
        e.site = r.u16();
        break;
      case EntryKind::kParamChange:
        e.param = r.u16();
        e.old_value = r.u64();
        e.new_value = r.u64();
        break;
      case EntryKind::kRoundEnd:
        break;
      default:
        SEDSPEC_CHECK_DECODE(false, "unknown state log entry kind");
    }
    log.append(std::move(e));
  }
  return log;
}

void LogRecorder::round_start(const IoAccess& io) {
  LogEntry e;
  e.kind = EntryKind::kRoundStart;
  e.io = io;
  log_.append(std::move(e));
}

void LogRecorder::site_enter(SiteId site, BlockKind kind) {
  if (filter_ != nullptr && kind == BlockKind::kPlain &&
      !filter_->contains(site)) {
    return;  // outside the observation plan
  }
  LogEntry e;
  e.kind = EntryKind::kSiteEnter;
  e.site = site;
  e.block_kind = kind;
  log_.append(std::move(e));
}

void LogRecorder::branch(SiteId site, bool taken) {
  LogEntry e;
  e.kind = EntryKind::kBranch;
  e.site = site;
  e.taken = taken;
  log_.append(std::move(e));
}

void LogRecorder::indirect(SiteId site, FuncAddr target) {
  LogEntry e;
  e.kind = EntryKind::kIndirect;
  e.site = site;
  e.target = target;
  log_.append(std::move(e));
}

void LogRecorder::command(SiteId site, uint64_t cmd) {
  LogEntry e;
  e.kind = EntryKind::kCommand;
  e.site = site;
  e.cmd = cmd;
  log_.append(std::move(e));
}

void LogRecorder::command_end(SiteId site) {
  LogEntry e;
  e.kind = EntryKind::kCommandEnd;
  e.site = site;
  log_.append(std::move(e));
}

void LogRecorder::param_change(ParamId param, uint64_t old_raw,
                               uint64_t new_raw) {
  LogEntry e;
  e.kind = EntryKind::kParamChange;
  e.param = param;
  e.old_value = old_raw;
  e.new_value = new_raw;
  log_.append(std::move(e));
}

void LogRecorder::round_end() {
  LogEntry e;
  e.kind = EntryKind::kRoundEnd;
  log_.append(std::move(e));
}

std::string to_text(const DeviceStateLog& log,
                    const sedspec::DeviceProgram& program) {
  std::ostringstream out;
  for (const LogEntry& e : log.entries()) {
    switch (e.kind) {
      case EntryKind::kRoundStart:
        out << "round " << (e.io.is_write ? "write" : "read") << " "
            << (e.io.space == sedspec::IoSpace::kPio ? "pio" : "mmio")
            << " 0x" << std::hex << e.io.addr << std::dec << " value 0x"
            << std::hex << e.io.value << std::dec << "\n";
        break;
      case EntryKind::kSiteEnter:
        out << "  site " << program.site(e.site).name << " ["
            << block_kind_name(e.block_kind) << "]\n";
        break;
      case EntryKind::kBranch:
        out << "  branch " << program.site(e.site).name << " -> "
            << (e.taken ? "taken" : "not-taken") << "\n";
        break;
      case EntryKind::kIndirect:
        out << "  indirect " << program.site(e.site).name << " -> 0x"
            << std::hex << e.target << std::dec << "\n";
        break;
      case EntryKind::kCommand:
        out << "  command 0x" << std::hex << e.cmd << std::dec << "\n";
        break;
      case EntryKind::kCommandEnd:
        out << "  command-end\n";
        break;
      case EntryKind::kParamChange:
        out << "  " << program.layout().field(e.param).name << ": "
            << e.old_value << " -> " << e.new_value << "\n";
        break;
      case EntryKind::kRoundEnd:
        out << "round-end\n";
        break;
    }
  }
  return out.str();
}

}  // namespace sedspec::statelog
