// Quickstart: protect one emulated device with SEDSpec in four steps.
//
//   1. Stand up an emulated device on an I/O bus (here: the floppy disk
//      controller, the device behind the Venom CVE).
//   2. Run a benign training workload through the pipeline — SEDSpec traces
//      the control flow, selects the device-state parameters, and builds
//      the execution specification (ES-CFG).
//   3. Deploy the ES-Checker as the bus proxy.
//   4. Watch it: benign traffic passes untouched; the Venom exploit is
//      blocked before the device executes the out-of-bounds write.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "common/log.h"
#include "devices/fdc.h"
#include "guest/fdc_driver.h"
#include "sedspec/pipeline.h"
#include "vdev/bus.h"

using namespace sedspec;

int main() {
  set_log_level(LogLevel::kOff);

  // 1. An (unpatched, QEMU 2.3-era) floppy controller on a PMIO bus.
  devices::FdcDevice fdc(devices::FdcDevice::Vulns{.cve_2015_3456 = true});
  IoBus bus;
  bus.map(IoSpace::kPio, devices::FdcDevice::kBasePort,
          devices::FdcDevice::kPortSpan, &fdc);

  // 2. Train an execution specification on benign driver activity.
  std::printf("[1/3] training the execution specification...\n");
  spec::EsCfg cfg = pipeline::build_spec(fdc, [&] {
    guest::FdcDriver driver(&bus);
    driver.reset();
    driver.specify();
    driver.recalibrate();
    std::vector<uint8_t> sector(512, 0x42);
    for (uint8_t track = 0; track < 3; ++track) {
      driver.seek(track);
      driver.write_sector(track, 0, 1, sector);
      std::vector<uint8_t> back(512);
      driver.read_sector(track, 0, 1, back);
    }
  });
  std::printf("      ES-CFG: %zu blocks, %zu commands, %zu state "
              "parameters, %llu training rounds\n",
              cfg.blocks.size(), cfg.commands.size(), cfg.params.size(),
              (unsigned long long)cfg.trained_rounds);

  // 3. Deploy the checker (protection mode: violations halt the device).
  auto checker = pipeline::deploy(cfg, fdc, bus);

  // 4a. Benign traffic is untouched.
  std::printf("[2/3] benign guest traffic...\n");
  guest::FdcDriver driver(&bus);
  std::vector<uint8_t> sector(512, 0x17);
  driver.write_sector(1, 0, 1, sector);
  std::vector<uint8_t> back(512);
  driver.read_sector(1, 0, 1, back);
  std::printf("      round trip ok, %llu I/O rounds checked, %llu blocked\n",
              (unsigned long long)checker->stats().rounds,
              (unsigned long long)checker->stats().blocked);

  // 4b. The Venom exploit: DRIVE SPECIFICATION followed by an endless
  // parameter flood that pushes data_pos past the 512-byte FIFO.
  std::printf("[3/3] replaying CVE-2015-3456 (Venom)...\n");
  driver.write_fifo(devices::FdcDevice::kCmdDriveSpec);
  for (int i = 0; i < 700; ++i) {
    driver.write_fifo(0x01);
  }
  if (fdc.halted() && fdc.incidents().empty()) {
    std::printf("      BLOCKED: device halted before any corruption "
                "(violations: parameter=%llu conditional=%llu)\n",
                (unsigned long long)
                    checker->stats().violations_by_strategy[0],
                (unsigned long long)
                    checker->stats().violations_by_strategy[2]);
  } else {
    std::printf("      UNEXPECTED: exploit was not stopped\n");
    return 1;
  }
  std::printf("\nquickstart complete.\n");
  return 0;
}
