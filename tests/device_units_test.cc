// Register-level unit tests for the five emulated devices themselves
// (independent of SEDSpec): reset semantics, register read-back, command
// protocols, data paths, and interrupt behavior.
#include <gtest/gtest.h>

#include "devices/ehci.h"
#include "devices/esp_scsi.h"
#include "devices/fdc.h"
#include "devices/pcnet.h"
#include "devices/sdhci.h"
#include "guest/ehci_driver.h"
#include "guest/esp_driver.h"
#include "guest/fdc_driver.h"
#include "guest/pcnet_driver.h"
#include "guest/sdhci_driver.h"

namespace sedspec {
namespace {

using namespace devices;

// --- FDC ---------------------------------------------------------------

struct FdcEnv {
  FdcDevice dev;
  IoBus bus;
  guest::FdcDriver drv{&bus};
  FdcEnv() {
    bus.map(IoSpace::kPio, FdcDevice::kBasePort, FdcDevice::kPortSpan, &dev);
    drv.reset();
  }
};

TEST(FdcDeviceUnit, ResetSetsRqm) {
  FdcEnv env;
  EXPECT_EQ(env.drv.read_msr() & FdcDevice::kMsrRqm, FdcDevice::kMsrRqm);
}

TEST(FdcDeviceUnit, VersionCommandReturns82078Id) {
  FdcEnv env;
  EXPECT_EQ(env.drv.version(), 0x90);
}

TEST(FdcDeviceUnit, SeekUpdatesTrackAndRaisesIrq) {
  FdcEnv env;
  const uint64_t irqs = env.dev.irq_line().raise_count();
  env.drv.seek(7);
  EXPECT_GT(env.dev.irq_line().raise_count(), irqs);
  const auto [st0, track] = env.drv.sense_interrupt();
  EXPECT_EQ(st0 & 0x20, 0x20);  // SEEK END
  EXPECT_EQ(track, 7);
}

TEST(FdcDeviceUnit, SectorDataPersistsOnDisk) {
  FdcEnv env;
  std::vector<uint8_t> sector(512);
  for (size_t i = 0; i < sector.size(); ++i) {
    sector[i] = static_cast<uint8_t>(i ^ 0x5a);
  }
  env.drv.write_sector(3, 1, 5, sector);
  // The bytes landed at the CHS offset in the disk image.
  const size_t offset =
      ((3 * 2 + 1) * FdcDevice::kSectorsPerTrack + 4) * 512;
  EXPECT_EQ(env.dev.disk()[offset], sector[0]);
  EXPECT_EQ(env.dev.disk()[offset + 511], sector[511]);
  std::vector<uint8_t> back(512);
  env.drv.read_sector(3, 1, 5, back);
  EXPECT_EQ(back, sector);
}

TEST(FdcDeviceUnit, DorResetClearsCommandState) {
  FdcEnv env;
  // Begin a command, then yank DOR reset mid-way.
  env.drv.write_fifo(FdcDevice::kCmdSeek);
  env.drv.write_dor(0x00);
  env.drv.write_dor(0x0c);
  // Controller is back to accepting commands.
  EXPECT_EQ(env.drv.version(), 0x90);
}

TEST(FdcDeviceUnit, SenseDriveStatusReflectsDriveSelect) {
  FdcEnv env;
  const uint8_t st3 = env.drv.sense_drive_status();
  EXPECT_EQ(st3 & 0x28, 0x28);  // track0 + two-side bits in our model
}

// --- SDHCI ---------------------------------------------------------------

struct SdhciEnv {
  SdhciDevice dev;
  IoBus bus;
  guest::SdhciDriver drv{&bus};
  SdhciEnv() {
    bus.map(IoSpace::kMmio, SdhciDevice::kBaseAddr, SdhciDevice::kMmioSpan,
            &dev);
    drv.init_card();
  }
};

TEST(SdhciDeviceUnit, InterruptStatusIsWriteOneToClear) {
  SdhciEnv env;
  env.drv.command(SdhciDevice::kCmdSendStatus, 0);
  // command() already acks; issue one more and inspect manually.
  env.drv.w32(SdhciDevice::kRegArg, 0);
  env.drv.w16(SdhciDevice::kRegCmd,
              static_cast<uint16_t>(SdhciDevice::kCmdSendStatus) << 8);
  uint16_t sts = env.drv.r16(SdhciDevice::kRegNorIntSts);
  EXPECT_EQ(sts & SdhciDevice::kIntCmdDone, SdhciDevice::kIntCmdDone);
  env.drv.w16(SdhciDevice::kRegNorIntSts, SdhciDevice::kIntCmdDone);
  sts = env.drv.r16(SdhciDevice::kRegNorIntSts);
  EXPECT_EQ(sts & SdhciDevice::kIntCmdDone, 0);
}

TEST(SdhciDeviceUnit, MultiBlockTransferAdvancesCardOffset) {
  SdhciEnv env;
  std::vector<uint8_t> data(3 * 512);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i / 512 + 1);
  }
  env.drv.write_blocks(10, 3, data);
  EXPECT_EQ(env.dev.card()[10 * 512], 1);
  EXPECT_EQ(env.dev.card()[11 * 512], 2);
  EXPECT_EQ(env.dev.card()[12 * 512], 3);
}

TEST(SdhciDeviceUnit, TransferCompletionSetsXferDone) {
  SdhciEnv env;
  std::vector<uint8_t> block(512, 0x3e);
  env.drv.w16(SdhciDevice::kRegBlkCnt, 1);
  env.drv.w32(SdhciDevice::kRegArg, 4);
  env.drv.w16(SdhciDevice::kRegCmd,
              static_cast<uint16_t>(SdhciDevice::kCmdWriteSingle) << 8);
  for (uint8_t b : block) {
    env.drv.w8(SdhciDevice::kRegBData, b);
  }
  const uint16_t sts = env.drv.r16(SdhciDevice::kRegNorIntSts);
  EXPECT_EQ(sts & SdhciDevice::kIntXferDone, SdhciDevice::kIntXferDone);
}

TEST(SdhciDeviceUnit, PatchedBlksizeIgnoredMidTransfer) {
  SdhciEnv env;  // patched device
  env.drv.w16(SdhciDevice::kRegBlkCnt, 1);
  env.drv.w32(SdhciDevice::kRegArg, 0);
  env.drv.w16(SdhciDevice::kRegCmd,
              static_cast<uint16_t>(SdhciDevice::kCmdWriteSingle) << 8);
  env.drv.w8(SdhciDevice::kRegBData, 1);
  env.drv.w16(SdhciDevice::kRegBlkSize, 16);  // must be ignored
  EXPECT_EQ(env.dev.state().get(env.dev.blueprint().blksize), 512u);
  EXPECT_TRUE(env.dev.incidents().empty());
}

// --- PCNet ---------------------------------------------------------------

struct PcnetEnv {
  GuestMemory mem{1 << 20};
  PcnetDevice dev{&mem};
  IoBus bus;
  guest::PcnetDriver drv{&bus, &mem};
  PcnetEnv() {
    bus.map(IoSpace::kPio, PcnetDevice::kBasePort, PcnetDevice::kPortSpan,
            &dev);
  }
};

TEST(PcnetDeviceUnit, CsrReadBack) {
  PcnetEnv env;
  env.drv.wcsr(15, 0x0004);
  EXPECT_EQ(env.drv.rcsr(15), 0x0004);
  env.drv.wcsr(76, 0xfff0);
  EXPECT_EQ(env.drv.rcsr(76), 0xfff0);
}

TEST(PcnetDeviceUnit, InitReadsInitBlockAndSetsIdon) {
  PcnetEnv env;
  env.drv.setup({.tx_ring_len = 8, .rx_ring_len = 8});
  const uint16_t csr0 = env.drv.rcsr(0);
  EXPECT_EQ(csr0 & PcnetDevice::kCsr0Idon, PcnetDevice::kCsr0Idon);
  EXPECT_EQ(csr0 & PcnetDevice::kCsr0Rxon, PcnetDevice::kCsr0Rxon);
  EXPECT_EQ(csr0 & PcnetDevice::kCsr0Txon, PcnetDevice::kCsr0Txon);
}

TEST(PcnetDeviceUnit, WireTransmitLandsInTxLog) {
  PcnetEnv env;
  env.drv.setup({.tx_ring_len = 8, .rx_ring_len = 8, .loopback = false});
  std::vector<uint8_t> frame(100, 0x7c);
  env.drv.send(frame, 1);
  ASSERT_EQ(env.dev.tx_log().size(), 1u);
  EXPECT_EQ(env.dev.tx_log().front(), frame);
}

TEST(PcnetDeviceUnit, ChainedDescriptorsReassembleFrame) {
  PcnetEnv env;
  env.drv.setup({.tx_ring_len = 8, .rx_ring_len = 8, .loopback = false});
  std::vector<uint8_t> frame(900);
  for (size_t i = 0; i < frame.size(); ++i) {
    frame[i] = static_cast<uint8_t>(i);
  }
  env.drv.send(frame, 3);
  ASSERT_EQ(env.dev.tx_log().size(), 1u);
  EXPECT_EQ(env.dev.tx_log().front(), frame);
}

TEST(PcnetDeviceUnit, LoopbackDeliversWithFcs) {
  PcnetEnv env;
  env.drv.setup({.tx_ring_len = 8,
                 .rx_ring_len = 8,
                 .loopback = true,
                 .append_fcs = true});
  std::vector<uint8_t> frame(64, 0x2d);
  env.drv.send(frame, 1);
  auto rx = env.drv.poll_rx();
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(rx->size(), frame.size() + 4);  // +FCS
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), rx->begin()));
}

TEST(PcnetDeviceUnit, ReceiveWithoutRxonRejected) {
  PcnetEnv env;  // never initialized/started
  EXPECT_FALSE(env.dev.receive_frame(std::vector<uint8_t>(64, 1)));
}

TEST(PcnetDeviceUnit, RxDropWhenNoBuffersSetsMiss) {
  PcnetEnv env;
  env.drv.setup({.tx_ring_len = 8, .rx_ring_len = 8, .loopback = false});
  env.drv.revoke_rx_buffers();
  EXPECT_FALSE(env.dev.receive_frame(std::vector<uint8_t>(64, 0)));
  EXPECT_EQ(env.drv.rcsr(0) & PcnetDevice::kCsr0Miss, PcnetDevice::kCsr0Miss);
}

TEST(PcnetDeviceUnit, SoftResetStops) {
  PcnetEnv env;
  env.drv.setup({.tx_ring_len = 8, .rx_ring_len = 8});
  env.drv.soft_reset();
  EXPECT_EQ(env.drv.rcsr(0) & PcnetDevice::kCsr0Stop, PcnetDevice::kCsr0Stop);
}

// --- ESP SCSI ---------------------------------------------------------------

struct EspEnv {
  GuestMemory mem{1 << 20};
  EspScsiDevice dev{&mem};
  IoBus bus;
  guest::EspDriver drv{&bus, &mem};
  EspEnv() {
    bus.map(IoSpace::kPio, EspScsiDevice::kBasePort, EspScsiDevice::kPortSpan,
            &dev);
    drv.bus_reset();
  }
};

TEST(EspDeviceUnit, InquiryReturnsCannedIdentity) {
  EspEnv env;
  const auto data = env.drv.inquiry(true);
  ASSERT_EQ(data.size(), 36u);
  EXPECT_EQ(data[0], 0);  // direct-access device
  const std::string vendor(reinterpret_cast<const char*>(&data[8]), 7);
  EXPECT_EQ(vendor, "SEDSPEC");
}

TEST(EspDeviceUnit, FifoReadDrainsWrites) {
  EspEnv env;
  env.drv.flush_fifo();
  env.drv.out8(EspScsiDevice::kRegFifo, 0x11);
  env.drv.out8(EspScsiDevice::kRegFifo, 0x22);
  EXPECT_EQ(env.drv.in8(EspScsiDevice::kRegFifo), 0x11);
  EXPECT_EQ(env.drv.in8(EspScsiDevice::kRegFifo), 0x22);
  EXPECT_EQ(env.drv.in8(EspScsiDevice::kRegFifo), 0);  // empty
}

TEST(EspDeviceUnit, InterruptRegisterClearsOnRead) {
  EspEnv env;
  env.drv.test_unit_ready(true);
  env.drv.out8(EspScsiDevice::kRegCmd, EspScsiDevice::kCmdBusReset);
  EXPECT_NE(env.drv.in8(EspScsiDevice::kRegIntr), 0);
  EXPECT_EQ(env.drv.in8(EspScsiDevice::kRegIntr), 0);
}

TEST(EspDeviceUnit, Read6WriteBoundaryAddressing) {
  EspEnv env;
  std::vector<uint8_t> data(2 * 512);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 3);
  }
  env.drv.write_blocks(100, 2, data);
  EXPECT_EQ(env.dev.disk()[100 * 512], data[0]);
  EXPECT_EQ(env.dev.disk()[101 * 512 + 511], data[1023]);
  std::vector<uint8_t> back(data.size());
  env.drv.read_blocks(100, 2, back);
  EXPECT_EQ(back, data);
}

TEST(EspDeviceUnit, PatchedFifoBoundStopsFlood) {
  EspEnv env;  // patched
  env.drv.flush_fifo();
  for (int i = 0; i < 40; ++i) {
    env.drv.out8(EspScsiDevice::kRegFifo, 0x41);
  }
  EXPECT_TRUE(env.dev.incidents().empty());
  EXPECT_EQ(env.dev.state().get(env.dev.blueprint().ti_wptr),
            EspScsiDevice::kTiBufSize);
}

// --- USB EHCI ---------------------------------------------------------------

struct EhciEnv {
  GuestMemory mem{1 << 20};
  EhciDevice dev{&mem};
  IoBus bus;
  guest::EhciDriver drv{&bus, &mem};
  EhciEnv() {
    bus.map(IoSpace::kMmio, EhciDevice::kBaseAddr, EhciDevice::kMmioSpan,
            &dev);
    drv.start_controller();
  }
};

TEST(EhciDeviceUnit, RunClearsHalted) {
  EhciEnv env;
  EXPECT_EQ(env.drv.r32(EhciDevice::kRegUsbSts) & 0x1000u, 0u);
  env.drv.w32(EhciDevice::kRegUsbCmd, 0);  // stop
  EXPECT_EQ(env.drv.r32(EhciDevice::kRegUsbSts) & 0x1000u, 0x1000u);
}

TEST(EhciDeviceUnit, PortStatusShowsConnectedDevice) {
  EhciEnv env;
  EXPECT_EQ(env.drv.r32(EhciDevice::kRegPortSc) & 0x1u, 0x1u);  // connected
}

TEST(EhciDeviceUnit, ControlTransferRoundTrip) {
  EhciEnv env;
  std::vector<uint8_t> block(512);
  for (size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<uint8_t>(255 - (i & 0xff));
  }
  env.drv.write_block(20, block);
  EXPECT_EQ(env.dev.storage()[20 * 512], block[0]);
  std::vector<uint8_t> back(512);
  env.drv.read_block(20, back);
  EXPECT_EQ(back, block);
}

TEST(EhciDeviceUnit, ShortInPacketClampsToRemaining) {
  EhciEnv env;
  std::vector<uint8_t> data(64, 0x6f);
  env.drv.write_block_short(2, data);
  std::vector<uint8_t> back(64);
  env.drv.read_block_short(2, back);
  EXPECT_EQ(back, data);
}

TEST(EhciDeviceUnit, PatchedSetupStallsOversizedWlength) {
  EhciEnv env;  // patched
  env.drv.setup_packet(0x40, 0xa0, 0, 0xf000);
  // Stalled: no data stage accepted.
  EXPECT_EQ(env.dev.state().get(env.dev.blueprint().setup_state), 0u);
  EXPECT_EQ(static_cast<int32_t>(
                env.dev.state().get(env.dev.blueprint().setup_len)),
            0);
  env.drv.token(EhciDevice::kPidOut, 4096, 0x10000);
  EXPECT_TRUE(env.dev.incidents().empty());
}

TEST(EhciDeviceUnit, TokenCompletionSetsUsbint) {
  EhciEnv env;
  const uint64_t irqs = env.dev.irq_line().raise_count();
  env.drv.interrupt_poll();
  EXPECT_GT(env.dev.irq_line().raise_count(), irqs);
}

}  // namespace
}  // namespace sedspec
