// google-benchmark reporter that mirrors each run into a MetricSink while
// delegating console output to the stock ConsoleReporter, so the human-
// readable output stays what `RunSpecifiedBenchmarks()` prints.
//
// Used by the two ablation benches: call run_with_capture(argc, argv,
// &sink) after Initialize(), then sink.write_json() after Shutdown() to
// get BENCH_<name>.json with one entry per benchmark (value = adjusted
// real time in the benchmark's reported time unit) plus one entry per
// user counter.
#pragma once

#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "report.h"

namespace bench_report {

class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  // OO_None matches the library's own defaults for piped output (color and
  // tabular counters are opt-in flags there), keeping redirected stdout
  // byte-identical to a run without the capture reporter.
  explicit JsonCaptureReporter(MetricSink* sink)
      : benchmark::ConsoleReporter(OO_None), sink_(sink) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      sink_->put(run.benchmark_name(), run.GetAdjustedRealTime());
      for (const auto& [name, counter] : run.counters) {
        sink_->put(run.benchmark_name() + "/" + name,
                   static_cast<double>(counter.value));
      }
    }
  }

 private:
  MetricSink* sink_;
};

/// True when the command line asks for a non-console format
/// (--benchmark_format=json/csv). Must be checked BEFORE
/// benchmark::Initialize(), which strips recognized flags from argv.
inline bool format_flag_present(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_format", 0) == 0) {
      return true;
    }
  }
  return false;
}

/// Runs the registered benchmarks, capturing results into `sink`. When the
/// caller asked for a non-console format, an explicit display reporter
/// would override that flag, so capture is skipped and the library renders
/// the requested format untouched (the sidecar is then empty — format
/// overrides are a manual-inspection path).
inline void run_with_capture(bool format_overridden, MetricSink* sink) {
  if (format_overridden) {
    benchmark::RunSpecifiedBenchmarks();
    return;
  }
  JsonCaptureReporter reporter(sink);
  benchmark::RunSpecifiedBenchmarks(&reporter);
}

}  // namespace bench_report
