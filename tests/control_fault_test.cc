// Control-plane fault campaign (control/campaign.h): the acceptance gate
// for the fleet control plane. ControlPlaneFaultLane runs the full
// 1000-fault sweep (also wired as the `control_plane_fault_lane` ctest
// entry, which runs under SEDSPEC_SANITIZE builds); the smaller suite
// checks per-family accounting cheaply.
#include <gtest/gtest.h>

#include "control/campaign.h"

namespace sedspec {
namespace {

using control::ControlCampaignConfig;
using control::ControlCampaignResult;
using control::ControlOutcome;
using control::run_control_campaign;

uint64_t outcome_count(const ControlCampaignResult& r, ControlOutcome o) {
  return r.by_outcome[static_cast<size_t>(o)];
}

TEST(ControlCampaign, SmallSweepAccountsEveryFault) {
  ControlCampaignConfig cfg;
  cfg.seed = 0xc0de;
  cfg.corruption_faults = 24;
  cfg.crash_faults = 18;
  cfg.delay_faults = 18;
  const ControlCampaignResult r = run_control_campaign(cfg);

  EXPECT_EQ(r.injected, 60u);
  EXPECT_TRUE(r.clean()) << r.describe();

  // Every fault kind was exercised and every fault landed in an outcome.
  uint64_t kinds = 0;
  for (const uint64_t n : r.by_kind) {
    EXPECT_GT(n, 0u);
    kinds += n;
  }
  uint64_t outcomes = 0;
  for (const uint64_t n : r.by_outcome) {
    outcomes += n;
  }
  EXPECT_EQ(kinds, r.injected);
  EXPECT_EQ(outcomes, r.injected);

  // Family expectations: corruption is mostly refused at staging, hard
  // faults roll back, transients promote, recovery recovers.
  EXPECT_GT(outcome_count(r, ControlOutcome::kRejectedAtStaging), 0u);
  EXPECT_GT(outcome_count(r, ControlOutcome::kRolledBack), 0u);
  EXPECT_GT(outcome_count(r, ControlOutcome::kRecovered), 0u);
  EXPECT_GT(outcome_count(r, ControlOutcome::kPromotedClean), 0u);
}

TEST(ControlCampaign, DeterministicPerSeed) {
  ControlCampaignConfig cfg;
  cfg.seed = 0xfeed;
  cfg.corruption_faults = 12;
  cfg.crash_faults = 6;
  cfg.delay_faults = 6;
  const auto a = run_control_campaign(cfg);
  const auto b = run_control_campaign(cfg);
  EXPECT_EQ(a.describe(), b.describe());
}

// The PR acceptance bar: >= 1000 injected faults across the corruption /
// crash / delay families; every bad rollout ends RolledBack with the
// prior spec still enforcing (byte-compared AND probed live); zero
// fail-open escapes; zero stuck rollouts; shadow candidates never block.
TEST(ControlPlaneFaultLane, ThousandFaultsZeroEscapes) {
  const ControlCampaignResult r = run_control_campaign({});

  EXPECT_GE(r.injected, 1000u);
  EXPECT_EQ(r.escaped(), 0u) << r.describe();
  EXPECT_EQ(r.shadow_blocks, 0u) << r.describe();
  EXPECT_EQ(r.stuck_rollouts, 0u) << r.describe();
  EXPECT_EQ(r.liveness_failures, 0u) << r.describe();
  EXPECT_EQ(r.baseline_divergence, 0u) << r.describe();
  EXPECT_TRUE(r.clean());

  // The sweep covered all three fault families meaningfully.
  using faultinject::ControlFaultKind;
  auto kind_count = [&](ControlFaultKind k) {
    return r.by_kind[static_cast<size_t>(k)];
  };
  EXPECT_GT(kind_count(ControlFaultKind::kCorruptCandidate), 100u);
  EXPECT_GT(kind_count(ControlFaultKind::kFetchOutage), 50u);
  EXPECT_GT(kind_count(ControlFaultKind::kRecordCorrupt), 50u);
  EXPECT_GT(kind_count(ControlFaultKind::kShardCrash), 100u);
  EXPECT_GT(kind_count(ControlFaultKind::kCrashPromoting), 50u);
  EXPECT_GT(kind_count(ControlFaultKind::kMetricDelay), 100u);
  EXPECT_GT(kind_count(ControlFaultKind::kFetchTransient), 50u);
}

}  // namespace
}  // namespace sedspec
