// USB EHCI — enhanced host controller with an attached USB storage device
// (after QEMU's hw/usb/hcd-ehci.c + the USB core in hw/usb/core.c, whose
// USBDevice struct carries the CVE-2020-14364 state).
//
// MMIO register block: USBCMD (0x00, RUN bit 0, DOORBELL bit 6), USBSTS
// (0x04), ASYNCLISTADDR (0x18), PORTSC (0x44). The guest queues one
// simplified qTD {u32 token = pid | (len << 16), u32 buffer} in guest
// memory, points ASYNCLISTADDR at it and rings the doorbell; the controller
// processes SETUP/IN/OUT tokens against the attached device's control
// endpoint. A vendor protocol on the control endpoint exposes block
// storage: SETUP {bmRequestType dir, bRequest 0xA0 write / 0xA1 read,
// wValue block number, wLength bytes} followed by IN/OUT data stages and a
// zero-length status stage.
//
// Vulnerabilities:
//  - CVE-2020-14364: the unpatched SETUP handler stores wLength into
//    setup_len without bounding it by sizeof(data_buf); later OUT/IN stages
//    index data_buf with setup_index up to setup_len, writing past the
//    4096-byte buffer over setup_state/setup_len/setup_index (the attacker
//    can make setup_index negative — the paper's second out-of-bounds
//    instance) and the irq handler pointer. Parameter check catches both
//    out-of-bounds instances; the indirect-jump check catches the clobbered
//    pointer at the completion interrupt. Patched: setup_len bounded.
//  - CVE-2016-1568 (the paper's known miss): a premature status stage frees
//    the in-flight packet, and the unpatched cleanup path forgets to clear
//    the pointer; a later idle IN poll (a perfectly trained operation)
//    touches the freed packet. No device-state parameter transitions are
//    involved, so SEDSpec cannot see it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "program/program.h"
#include "vdev/device.h"
#include "vdev/dma.h"

namespace sedspec::devices {

class EhciDevice final : public sedspec::Device {
 public:
  struct Vulns {
    bool cve_2020_14364 = false;  // unchecked setup_len
    bool cve_2016_1568 = false;   // stale freed-packet pointer
  };

  static constexpr uint64_t kBaseAddr = 0x20000000;
  static constexpr uint64_t kMmioSpan = 0x100;
  static constexpr uint64_t kRegUsbCmd = 0x00;
  static constexpr uint64_t kRegUsbSts = 0x04;
  static constexpr uint64_t kRegAsyncListAddr = 0x18;
  static constexpr uint64_t kRegPortSc = 0x44;

  static constexpr uint32_t kCmdRun = 0x01;
  static constexpr uint32_t kCmdDoorbell = 0x40;

  static constexpr uint32_t kPidOut = 0;
  static constexpr uint32_t kPidIn = 1;
  static constexpr uint32_t kPidSetup = 2;

  static constexpr uint32_t kSetupBufSize = 8;
  static constexpr uint32_t kDataBufSize = 4096;
  static constexpr uint32_t kBlockSize = 512;
  static constexpr size_t kStorageSize = 8ull << 20;

  // Vendor storage protocol.
  static constexpr uint8_t kReqWrite = 0xa0;
  static constexpr uint8_t kReqRead = 0xa1;

  EhciDevice(sedspec::GuestMemory* mem, Vulns vulns);
  explicit EhciDevice(sedspec::GuestMemory* mem) : EhciDevice(mem, Vulns{}) {}
  ~EhciDevice() override;

  uint64_t io_read(const sedspec::IoAccess& io) override;
  void io_write(const sedspec::IoAccess& io) override;
  std::optional<uint64_t> resolve_sync(
      sedspec::LocalId local, const sedspec::IoAccess& io,
      const sedspec::StateAccess& view) override;
  sedspec::DmaEngine* dma_engine() override { return &dma_; }

  [[nodiscard]] std::span<uint8_t> storage() { return storage_; }

  struct Blueprint;
  [[nodiscard]] const Blueprint& blueprint() const { return *bp_; }

 protected:
  void reset_device() override;

 private:
  EhciDevice(std::unique_ptr<Blueprint> bp, sedspec::GuestMemory* mem,
             Vulns vulns);

  void usbcmd_write(const sedspec::IoAccess& io);
  void process_qtd();
  void do_setup(uint64_t buf_addr);
  void do_in(uint32_t len, uint64_t buf_addr);
  void do_out(uint32_t len, uint64_t buf_addr);
  [[nodiscard]] uint64_t qtd_addr(const sedspec::StateAccess& view) const;

  std::unique_ptr<Blueprint> bp_;
  Vulns vulns_;
  sedspec::DmaEngine dma_;
  std::vector<uint8_t> storage_;

  // Native packet lifetime state (heap objects in real QEMU; not part of
  // the control structure, hence invisible to SEDSpec — the CVE-2016-1568
  // surface).
  enum class PacketState { kNone, kLive, kFreed };
  PacketState packet_ = PacketState::kNone;
  bool storage_loaded_ = false;  // lazy data_buf fill for read requests
};

struct EhciDevice::Blueprint {
  std::unique_ptr<sedspec::DeviceProgram> program;

  // EHCI + USBDevice fields. setup_state/len/index sit AFTER data_buf, as
  // in the real USBDevice struct — the overflow path of CVE-2020-14364.
  sedspec::ParamId usbcmd, usbsts, asynclistaddr, portsc;
  sedspec::ParamId setup_buf, data_buf;
  sedspec::ParamId setup_state;  // 0 idle, 1 data, 2 status-pending
  sedspec::ParamId setup_len, setup_index;  // i32, like USBDevice
  sedspec::ParamId irq_fn;

  // Sync locals (qTD / setup-packet derived).
  sedspec::LocalId l_pid, l_len, l_s0, l_s6, l_s7;

  // Sites.
  sedspec::SiteId s_usbcmd_set, s_doorbellq, s_runq, s_run, s_halt;
  sedspec::SiteId s_sts_read, s_sts_clear, s_portsc_read, s_portsc_set;
  sedspec::SiteId s_async_set;
  sedspec::SiteId s_pid_setupq, s_do_setup, s_setup_boundq, s_setup_stall,
      s_setup_done, s_irq_setup;
  sedspec::SiteId s_pid_inq, s_in_activeq, s_in_clampq, s_in_clamped,
      s_in_full, s_in_doneq, s_in_complete, s_irq_in, s_in_idle, s_irq_poll;
  sedspec::SiteId s_pid_outq, s_out_zeroq, s_status_out, s_irq_status;
  sedspec::SiteId s_out_activeq, s_out_clampq, s_out_clamped, s_out_full,
      s_out_doneq, s_out_complete, s_irq_out, s_out_idle;
  sedspec::SiteId s_bad_pid;

  sedspec::FuncAddr f_irq;
};

}  // namespace sedspec::devices
