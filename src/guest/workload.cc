#include "guest/workload.h"

#include <algorithm>
#include <tuple>

#include "common/assert.h"
#include "devices/ehci.h"
#include "devices/esp_scsi.h"
#include "devices/fdc.h"
#include "devices/pcnet.h"
#include "devices/sdhci.h"
#include "guest/ehci_driver.h"
#include "guest/esp_driver.h"
#include "guest/fdc_driver.h"
#include "guest/pcnet_driver.h"
#include "guest/sdhci_driver.h"

namespace sedspec::guest {

std::string interaction_mode_name(InteractionMode mode) {
  switch (mode) {
    case InteractionMode::kSequential:
      return "sequential";
    case InteractionMode::kRandom:
      return "random";
    case InteractionMode::kRandomWithDelay:
      return "random+delay";
  }
  return "?";
}

void DeviceWorkload::test_case(InteractionMode mode, Rng& rng,
                               VirtualClock& clock, bool include_rare) {
  const auto [ops_lo, ops_hi] = ops_per_case();
  const auto ops = static_cast<int>(
      rng.range(static_cast<uint64_t>(ops_lo), static_cast<uint64_t>(ops_hi)));
  const int rare_at = include_rare ? static_cast<int>(rng.below(ops)) : -1;
  for (int i = 0; i < ops; ++i) {
    if (i == rare_at) {
      rare_operation(rng);
    }
    common_operation(mode, rng);
    if (mode == InteractionMode::kRandomWithDelay) {
      clock.advance(rng.range(1'000, 20'000));  // 1-20 ms between ops
    }
  }
  // Per-case envelope (device setup, guest-side processing, idle gaps).
  const auto [env_lo, env_hi] = case_envelope_seconds();
  clock.advance_seconds(static_cast<double>(
      rng.range(static_cast<uint64_t>(env_lo), static_cast<uint64_t>(env_hi))));
}

void DeviceWorkload::fuzz_case(Rng& rng) {
  const auto ops = static_cast<int>(
      rng.range(4, static_cast<uint64_t>(std::max(6, ops_per_case().second / 8))));
  for (int i = 0; i < ops; ++i) {
    if (rng.chance(0.25)) {
      rare_operation(rng);
    } else {
      common_operation(InteractionMode::kRandom, rng);
    }
  }
}

void DeviceWorkload::bulk_write(uint32_t /*block*/,
                                std::span<const uint8_t> /*data*/) {
  SEDSPEC_REQUIRE_MSG(false, "bulk I/O on a non-storage workload");
}

void DeviceWorkload::bulk_read(uint32_t /*block*/,
                               std::span<uint8_t> /*data*/) {
  SEDSPEC_REQUIRE_MSG(false, "bulk I/O on a non-storage workload");
}

void DeviceWorkload::build_and_deploy(checker::CheckerConfig config) {
  cfg_ = pipeline::build_spec(device(), [this] { training(); });
  checker_ = pipeline::deploy(cfg_, device(), bus(), config);
}

namespace {

std::vector<uint8_t> pattern(size_t n, uint64_t seed) {
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(seed * 31 + i * 7);
  }
  return out;
}

// --- FDC ---------------------------------------------------------------

class FdcWorkload final : public DeviceWorkload {
 public:
  FdcWorkload() : driver_(&bus_) {
    bus_.map(IoSpace::kPio, devices::FdcDevice::kBasePort,
             devices::FdcDevice::kPortSpan, &device_);
  }

  const std::string& name() const override {
    static const std::string kName = "fdc";
    return kName;
  }
  Device& device() override { return device_; }
  IoBus& bus() override { return bus_; }

  void training() override {
    FdcDriver drv(&bus_);
    drv.reset();
    drv.specify();
    drv.configure();
    (void)drv.version();
    drv.recalibrate();
    (void)drv.sense_drive_status();
    std::vector<uint8_t> sector(devices::FdcDevice::kSectorSize);
    for (uint8_t track : {0, 1, 5, 20}) {
      drv.seek(track);
      for (uint8_t sec : {1, 2, 9}) {
        for (size_t i = 0; i < sector.size(); ++i) {
          sector[i] = static_cast<uint8_t>(track + sec + i);
        }
        drv.write_sector(track, 0, sec, sector);
        std::vector<uint8_t> back(sector.size());
        drv.read_sector(track, 0, sec, back);
      }
      drv.write_sector(track, 1, 1, sector);
      std::vector<uint8_t> back(sector.size());
      drv.read_sector(track, 1, 1, back);
    }
  }

  void rare_operation(Rng& rng) override {
    switch (rng.below(3)) {
      case 0:
        (void)driver_.read_id();
        break;
      case 1:
        (void)driver_.dumpreg();
        break;
      default:
        driver_.perpendicular();
        break;
    }
  }

  void common_operation(InteractionMode mode, Rng& rng) override {
    uint8_t track;
    uint8_t head;
    uint8_t sector;
    if (mode == InteractionMode::kSequential) {
      track = static_cast<uint8_t>(cursor_ / 72);
      head = static_cast<uint8_t>((cursor_ / 36) % 2);
      sector = static_cast<uint8_t>(cursor_ % 36 + 1);
      cursor_ = (cursor_ + 1) % (80 * 72);
    } else {
      track = static_cast<uint8_t>(rng.below(80));
      head = static_cast<uint8_t>(rng.below(2));
      sector = static_cast<uint8_t>(rng.range(1, 36));
    }
    switch (rng.below(5)) {
      case 0:
        driver_.seek(track);
        break;
      case 1:
        (void)driver_.sense_drive_status();
        break;
      default: {
        std::vector<uint8_t> data = pattern(512, rng.next_u64());
        if (rng.chance(0.5)) {
          driver_.write_sector(track, head, sector, data);
        } else {
          driver_.read_sector(track, head, sector, data);
        }
        break;
      }
    }
  }

  std::pair<int, int> ops_per_case() const override { return {4, 16}; }
  bool is_storage() const override { return true; }
  uint64_t storage_capacity() const override {
    return devices::FdcDevice::kDiskSize;
  }
  void bulk_write(uint32_t block, std::span<const uint8_t> data) override {
    for (size_t off = 0; off < data.size(); off += 512, ++block) {
      const auto [t, h, s] = chs(block);
      driver_.write_sector(t, h, s, data.subspan(off, 512));
    }
  }
  void bulk_read(uint32_t block, std::span<uint8_t> data) override {
    for (size_t off = 0; off < data.size(); off += 512, ++block) {
      const auto [t, h, s] = chs(block);
      driver_.read_sector(t, h, s, data.subspan(off, 512));
    }
  }

 private:
  static std::tuple<uint8_t, uint8_t, uint8_t> chs(uint32_t block) {
    block %= 80 * 72;
    return {static_cast<uint8_t>(block / 72),
            static_cast<uint8_t>((block / 36) % 2),
            static_cast<uint8_t>(block % 36 + 1)};
  }

  devices::FdcDevice device_;
  IoBus bus_;
  FdcDriver driver_;
  uint32_t cursor_ = 0;
};

// --- SDHCI ---------------------------------------------------------------

class SdhciWorkload final : public DeviceWorkload {
 public:
  SdhciWorkload() : driver_(&bus_) {
    bus_.map(IoSpace::kMmio, devices::SdhciDevice::kBaseAddr,
             devices::SdhciDevice::kMmioSpan, &device_);
  }

  const std::string& name() const override {
    static const std::string kName = "sdhci";
    return kName;
  }
  Device& device() override { return device_; }
  IoBus& bus() override { return bus_; }

  void training() override {
    SdhciDriver drv(&bus_);
    drv.init_card();
    std::vector<uint8_t> block(512, 0x42);
    for (uint32_t b = 0; b < 4; ++b) {
      drv.write_block(b, block);
      std::vector<uint8_t> back(512);
      drv.read_block(b, back);
    }
    std::vector<uint8_t> multi(4 * 512, 0x24);
    drv.write_blocks(16, 4, multi);
    std::vector<uint8_t> back(multi.size());
    drv.read_blocks(16, 4, back);
    drv.write_block_with_reprogram(2, block);
    std::vector<uint8_t> b2(512);
    drv.read_block_with_reprogram(2, b2);
    drv.command(devices::SdhciDevice::kCmdSendStatus, 0);
    drv.command(devices::SdhciDevice::kCmdStop, 0);
  }

  void rare_operation(Rng& rng) override {
    if (rng.chance(0.5)) {
      driver_.switch_function();
    } else {
      driver_.gen_cmd();
    }
  }

  void common_operation(InteractionMode mode, Rng& rng) override {
    uint32_t block;
    if (mode == InteractionMode::kSequential) {
      block = cursor_;
      cursor_ = (cursor_ + 1) % 1024;
    } else {
      block = static_cast<uint32_t>(rng.below(1024));
    }
    const auto count = static_cast<uint16_t>(rng.range(1, 3));
    std::vector<uint8_t> data =
        pattern(size_t{count} * 512, rng.next_u64());
    switch (rng.below(6)) {
      case 0:
        driver_.command(devices::SdhciDevice::kCmdSendStatus, 0);
        break;
      case 1:
        driver_.write_block_with_reprogram(block, {data.data(), 512});
        break;
      case 2:
        driver_.write_blocks(block, count, data);
        break;
      case 3:
        driver_.read_blocks(block, count, data);
        break;
      case 4:
        driver_.write_block(block, {data.data(), 512});
        break;
      default:
        driver_.read_block(block, {data.data(), 512});
        break;
    }
  }

  std::pair<int, int> ops_per_case() const override { return {4, 16}; }
  std::pair<int, int> case_envelope_seconds() const override {
    return {8, 20};
  }
  bool is_storage() const override { return true; }
  uint64_t storage_capacity() const override {
    return devices::SdhciDevice::kCardSize;
  }
  void bulk_write(uint32_t block, std::span<const uint8_t> data) override {
    // Multi-block transfers in bursts of up to 8 blocks.
    for (size_t off = 0; off < data.size();) {
      const auto blocks = static_cast<uint16_t>(
          std::min<size_t>(8, (data.size() - off) / 512));
      driver_.write_blocks(block, blocks, data.subspan(off, blocks * 512u));
      off += blocks * 512u;
      block += blocks;
    }
  }
  void bulk_read(uint32_t block, std::span<uint8_t> data) override {
    for (size_t off = 0; off < data.size();) {
      const auto blocks = static_cast<uint16_t>(
          std::min<size_t>(8, (data.size() - off) / 512));
      driver_.read_blocks(block, blocks, data.subspan(off, blocks * 512u));
      off += blocks * 512u;
      block += blocks;
    }
  }

 private:
  devices::SdhciDevice device_;
  IoBus bus_;
  SdhciDriver driver_;
  uint32_t cursor_ = 0;
};

// --- PCNet ---------------------------------------------------------------

class PcnetWorkload final : public DeviceWorkload {
 public:
  PcnetWorkload() : mem_(1 << 20), device_(&mem_), driver_(&bus_, &mem_) {
    bus_.map(IoSpace::kPio, devices::PcnetDevice::kBasePort,
             devices::PcnetDevice::kPortSpan, &device_);
  }

  const std::string& name() const override {
    static const std::string kName = "pcnet";
    return kName;
  }
  Device& device() override { return device_; }
  IoBus& bus() override { return bus_; }

  void training() override {
    PcnetDriver drv(&bus_, &mem_);
    drv.setup({.tx_ring_len = 16,
               .rx_ring_len = 16,
               .loopback = true,
               .append_fcs = true});
    for (int chunks : {1, 2, 3}) {
      for (size_t size : {60u, 300u, 1514u}) {
        drv.send(pattern(size, size + chunks), chunks);
        (void)drv.poll_rx();
        drv.ack_irq();
      }
    }
    drv.revoke_rx_buffers();
    drv.send(pattern(128, 9), 1);
    drv.ack_irq();
    drv.post_rx_buffers();
    drv.setup({.tx_ring_len = 4,
               .rx_ring_len = 4,
               .loopback = true,
               .append_fcs = false});
    for (int i = 0; i < 10; ++i) {
      drv.send(pattern(200 + 10 * static_cast<size_t>(i), i), 1);
      (void)drv.poll_rx();
      drv.ack_irq();
    }
    drv.setup({.tx_ring_len = 16,
               .rx_ring_len = 16,
               .loopback = false,
               .append_fcs = false});
    for (int i = 0; i < 6; ++i) {
      drv.send(pattern(400 + 100 * static_cast<size_t>(i), i), (i % 3) + 1);
      drv.ack_irq();
    }
    for (int i = 0; i < 6; ++i) {
      (void)device_.receive_frame(pattern(256 + 64 * static_cast<size_t>(i), i));
      (void)drv.poll_rx();
      drv.ack_irq();
    }
    (void)drv.rcsr(4);
    (void)drv.rcsr(76);
    loopback_ = false;
  }

  std::pair<int, int> case_envelope_seconds() const override {
    return {10, 25};
  }

  void rare_operation(Rng& /*rng*/) override { driver_.write_rare_csr(); }

  void common_operation(InteractionMode mode, Rng& rng) override {
    const size_t size =
        mode == InteractionMode::kSequential ? 512 : rng.range(60, 1514);
    const int chunks = static_cast<int>(rng.range(1, 3));
    switch (rng.below(4)) {
      case 0: {  // loopback round trip
        ensure_mode(true);
        driver_.send(pattern(size, rng.next_u64()), chunks);
        (void)driver_.poll_rx();
        driver_.ack_irq();
        break;
      }
      case 1: {  // wire transmit
        ensure_mode(false);
        driver_.send(pattern(size, rng.next_u64()), chunks);
        driver_.ack_irq();
        device_.clear_tx_log();
        break;
      }
      case 2: {  // wire receive
        ensure_mode(false);
        (void)device_.receive_frame(pattern(size, rng.next_u64()));
        (void)driver_.poll_rx();
        driver_.ack_irq();
        break;
      }
      default:
        (void)driver_.rcsr(0);
        (void)driver_.rcsr(4);
        break;
    }
  }

 private:
  void ensure_mode(bool loopback) {
    if (configured_ && loopback_ == loopback) {
      return;
    }
    driver_.setup({.tx_ring_len = 16,
                   .rx_ring_len = 16,
                   .loopback = loopback,
                   .append_fcs = loopback});
    configured_ = true;
    loopback_ = loopback;
  }

  GuestMemory mem_;
  devices::PcnetDevice device_;
  IoBus bus_;
  PcnetDriver driver_;
  bool configured_ = false;
  bool loopback_ = false;
};

// --- USB EHCI ---------------------------------------------------------------

class EhciWorkload final : public DeviceWorkload {
 public:
  EhciWorkload() : mem_(1 << 20), device_(&mem_), driver_(&bus_, &mem_) {
    bus_.map(IoSpace::kMmio, devices::EhciDevice::kBaseAddr,
             devices::EhciDevice::kMmioSpan, &device_);
  }

  const std::string& name() const override {
    static const std::string kName = "usb-ehci";
    return kName;
  }
  Device& device() override { return device_; }
  IoBus& bus() override { return bus_; }

  void training() override {
    EhciDriver drv(&bus_, &mem_);
    drv.start_controller();
    drv.interrupt_poll();
    std::vector<uint8_t> block(512, 0x66);
    for (uint16_t b = 0; b < 4; ++b) {
      drv.write_block(b, block);
      std::vector<uint8_t> back(512);
      drv.read_block(b, back);
    }
    std::vector<uint8_t> big(2048, 0x5b);
    drv.write_block(8, big, 512);
    std::vector<uint8_t> big_back(2048);
    drv.read_block(8, big_back, 256);
    std::vector<uint8_t> small(128, 0x21);
    drv.write_block_short(12, small);
    std::vector<uint8_t> small_back(128);
    drv.read_block_short(12, small_back);
    drv.interrupt_poll();
  }

  void rare_operation(Rng& /*rng*/) override {
    // A port-reset sequence: legal guest behavior the training mix lacks.
    driver_.w32(devices::EhciDevice::kRegPortSc, 0x1105);
  }

  void common_operation(InteractionMode mode, Rng& rng) override {
    const uint16_t block = static_cast<uint16_t>(
        mode == InteractionMode::kSequential ? (cursor_++ % 1024)
                                             : rng.below(1024));
    const size_t size = 512u << rng.below(3);  // 512 / 1024 / 2048
    const uint32_t chunk = 256u << rng.below(3);
    std::vector<uint8_t> data = pattern(size, rng.next_u64());
    switch (rng.below(5)) {
      case 0:
        driver_.interrupt_poll();
        break;
      case 1:
        driver_.write_block_short(block, {data.data(), 128});
        break;
      case 2:
        driver_.read_block_short(block, {data.data(), 128});
        break;
      case 3:
        driver_.write_block(block, data, chunk);
        break;
      default:
        driver_.read_block(block, data, chunk);
        break;
    }
  }

  bool is_storage() const override { return true; }
  uint64_t storage_capacity() const override {
    return devices::EhciDevice::kStorageSize;
  }
  void bulk_write(uint32_t block, std::span<const uint8_t> data) override {
    for (size_t off = 0; off < data.size();) {
      const size_t n = std::min<size_t>(2048, data.size() - off);
      driver_.write_block(static_cast<uint16_t>(block), data.subspan(off, n),
                          512);
      off += n;
      block += static_cast<uint32_t>(n / 512);
    }
  }
  void bulk_read(uint32_t block, std::span<uint8_t> data) override {
    for (size_t off = 0; off < data.size();) {
      const size_t n = std::min<size_t>(2048, data.size() - off);
      driver_.read_block(static_cast<uint16_t>(block), data.subspan(off, n),
                         512);
      off += n;
      block += static_cast<uint32_t>(n / 512);
    }
  }

 private:
  GuestMemory mem_;
  devices::EhciDevice device_;
  IoBus bus_;
  EhciDriver driver_;
  uint32_t cursor_ = 0;
};

// --- ESP SCSI ---------------------------------------------------------------

class EspWorkload final : public DeviceWorkload {
 public:
  EspWorkload() : mem_(1 << 20), device_(&mem_), driver_(&bus_, &mem_) {
    bus_.map(IoSpace::kPio, devices::EspScsiDevice::kBasePort,
             devices::EspScsiDevice::kPortSpan, &device_);
  }

  const std::string& name() const override {
    static const std::string kName = "scsi-esp";
    return kName;
  }
  Device& device() override { return device_; }
  IoBus& bus() override { return bus_; }

  void training() override {
    EspDriver drv(&bus_, &mem_);
    drv.bus_reset();
    drv.test_unit_ready(false);
    drv.test_unit_ready(true);
    (void)drv.inquiry(false);
    (void)drv.inquiry(true);
    (void)drv.request_sense();
    std::vector<uint8_t> block(512, 0x2a);
    for (uint32_t lba = 0; lba < 4; ++lba) {
      drv.write_blocks(lba, 1, block);
      std::vector<uint8_t> back(512);
      drv.read_blocks(lba, 1, back);
    }
    std::vector<uint8_t> multi(4 * 512, 0x3c);
    drv.write_blocks(8, 4, multi);
    std::vector<uint8_t> back(multi.size());
    drv.read_blocks(8, 4, back);
  }

  void rare_operation(Rng& /*rng*/) override { driver_.set_atn(); }

  void common_operation(InteractionMode mode, Rng& rng) override {
    const uint32_t lba = static_cast<uint32_t>(
        mode == InteractionMode::kSequential ? (cursor_++ % 2048)
                                             : rng.below(2048));
    const auto blocks = static_cast<uint8_t>(rng.range(1, 4));
    std::vector<uint8_t> data =
        pattern(size_t{blocks} * 512, rng.next_u64());
    switch (rng.below(6)) {
      case 0:
        driver_.test_unit_ready(rng.chance(0.5));
        break;
      case 1:
        (void)driver_.inquiry(rng.chance(0.5));
        break;
      case 2:
        (void)driver_.request_sense();
        break;
      case 3:
        driver_.write_blocks(lba, blocks, data);
        break;
      default:
        driver_.read_blocks(lba, blocks, data);
        break;
    }
  }

  bool is_storage() const override { return true; }
  uint64_t storage_capacity() const override {
    return devices::EspScsiDevice::kDiskSize;
  }
  void bulk_write(uint32_t block, std::span<const uint8_t> data) override {
    for (size_t off = 0; off < data.size();) {
      const auto blocks = static_cast<uint8_t>(
          std::min<size_t>(4, (data.size() - off) / 512));
      driver_.write_blocks(block, blocks, data.subspan(off, blocks * 512u));
      off += blocks * 512u;
      block += blocks;
    }
  }
  void bulk_read(uint32_t block, std::span<uint8_t> data) override {
    for (size_t off = 0; off < data.size();) {
      const auto blocks = static_cast<uint8_t>(
          std::min<size_t>(4, (data.size() - off) / 512));
      driver_.read_blocks(block, blocks, data.subspan(off, blocks * 512u));
      off += blocks * 512u;
      block += blocks;
    }
  }

 private:
  GuestMemory mem_;
  devices::EspScsiDevice device_;
  IoBus bus_;
  EspDriver driver_;
  uint32_t cursor_ = 0;
};

}  // namespace

std::unique_ptr<DeviceWorkload> make_workload(const std::string& device_name) {
  if (device_name == "fdc") return std::make_unique<FdcWorkload>();
  if (device_name == "usb-ehci") return std::make_unique<EhciWorkload>();
  if (device_name == "pcnet") return std::make_unique<PcnetWorkload>();
  if (device_name == "sdhci") return std::make_unique<SdhciWorkload>();
  if (device_name == "scsi-esp") return std::make_unique<EspWorkload>();
  SEDSPEC_REQUIRE_MSG(false, "unknown device workload: " + device_name);
  return nullptr;
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> kNames = {
      "fdc", "usb-ehci", "pcnet", "sdhci", "scsi-esp"};
  return kNames;
}

}  // namespace sedspec::guest
