// ReportQueue — bounded, lock-free MPSC/MPMC channel for checker reports.
//
// Shard threads sit on the guest I/O hot path; shipping a violation report
// must never block them or take a lock. This is the classic Vyukov bounded
// MPMC array queue: each cell carries a sequence number, producers claim a
// slot with one CAS on the enqueue cursor, consumers with one CAS on the
// dequeue cursor, and the per-cell sequence (release-published) tells each
// side when the slot is safe to touch. No node allocation, no spinning on
// a full queue.
//
// Overflow policy: try_push on a full queue returns false immediately — the
// report is DROPPED, never the access. The queue is the SINGLE source of
// truth for drop accounting: each rejection ticks dropped() and the
// per-shard process counter `report_queue_dropped_total{shard=<r.shard>}`
// (handle cached per shard, resolved lazily once). Emitting checkers only
// count offers attempted vs accepted (CheckerStats::reports_offered /
// reports_emitted), so conservation holds without double-booking:
//   sum(offered) - sum(emitted) == dropped().
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "checker/checker.h"

namespace sedspec::checker {

class ReportQueue final : public ReportSink {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit ReportQueue(size_t capacity);
  ReportQueue(const ReportQueue&) = delete;
  ReportQueue& operator=(const ReportQueue&) = delete;

  /// Lock-free try-push; false when full, ticking dropped() and the
  /// per-shard `report_queue_dropped_total` counter (attributed via
  /// `r.shard`). Safe from any number of producer threads concurrently
  /// with consumers.
  bool try_push(const Report& r);

  /// ReportSink for EsChecker::set_report_sink.
  bool offer(const Report& r) override { return try_push(r); }

  /// Lock-free try-pop; false when empty.
  bool try_pop(Report& out);

  /// Pops up to `max` reports into `out` (appended). Returns the number
  /// drained. A convenience loop over try_pop for the consumer thread.
  size_t drain(std::vector<Report>& out, size_t max = SIZE_MAX);

  [[nodiscard]] size_t capacity() const { return mask_ + 1; }
  [[nodiscard]] uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t popped() const {
    return popped_.load(std::memory_order_relaxed);
  }
  /// Instantaneous occupancy (approximate under concurrency).
  [[nodiscard]] size_t size_approx() const;

 private:
  struct Cell {
    std::atomic<size_t> seq{0};
    Report item;
  };

  /// Drop-path per-shard counter attribution. The counter handle is
  /// resolved lazily on a shard's first drop (registry lookup under its
  /// mutex) and cached in a fixed slot array; shard ids beyond the array
  /// collapse into one overflow-labeled series so attribution stays
  /// bounded. Only the (already slow) reject path pays for this.
  obs::Counter& drop_counter_for(uint32_t shard);

  static constexpr size_t kDropCounterSlots = 64;
  std::atomic<obs::Counter*> drop_counters_[kDropCounterSlots] = {};
  std::atomic<obs::Counter*> drop_counter_overflow_{nullptr};

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  // Cursors on separate cache lines: producers hammer enqueue_, the
  // consumer hammers dequeue_; sharing a line would false-share every push
  // against every pop.
  alignas(64) std::atomic<size_t> enqueue_{0};
  alignas(64) std::atomic<size_t> dequeue_{0};
  alignas(64) std::atomic<uint64_t> pushed_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> popped_{0};
};

}  // namespace sedspec::checker
