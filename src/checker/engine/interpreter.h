// InterpreterEngine: the original ES-Checker traversal, extracted verbatim
// from EsChecker behind the CheckEngine interface. It walks spec::EsCfg
// blocks and re-evaluates expr/stmt ASTs on every round — the reference
// semantics the BytecodeEngine must reproduce bit-for-bit (same violations,
// same detail strings, same shadow mutations, same CheckerFault
// escalations). Treat any change here as a change to the differential
// contract in tests/check_engine_test.cc.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "checker/engine/engine.h"
#include "spec/es_cfg.h"

namespace sedspec::checker::engine {

class InterpreterEngine final : public CheckEngine {
 public:
  /// Validates every transition target (std::logic_error on malformed
  /// specs, matching historical build_aux() behavior).
  InterpreterEngine(const spec::EsCfg* cfg, Device* device,
                    sedspec::StateArena* shadow, const CheckerConfig* config);

  [[nodiscard]] CheckResult check(const IoAccess& io,
                                  const RoundOptions& opts) override;

  [[nodiscard]] std::optional<uint64_t> active_command() const override {
    return active_cmd_;
  }
  void set_active_command(std::optional<uint64_t> cmd) override {
    active_cmd_ = cmd;
  }

  [[nodiscard]] std::string_view name() const override {
    return "interpreter";
  }

 private:
  /// Per-block derived data resolved once at attach: spec lookups and the
  /// sync-local set are precomputed so the per-round loop touches only
  /// flat vectors.
  struct BlockAux {
    const spec::EsBlock* block = nullptr;
    std::vector<sedspec::LocalId> syncs;  // sync locals read by this block
    std::vector<uint8_t> stmt_bounds;     // 1 = bounds-check this DSOD stmt
    uint64_t visit_bound = 0;             // slack-adjusted per-round cap
  };

  struct Traversal;

  void build_aux();
  void resolve_syncs(const BlockAux& aux, const IoAccess& io);
  void exec_dsod(const BlockAux& aux, Traversal& t);

  const spec::EsCfg* cfg_;
  Device* device_;
  sedspec::StateArena* shadow_;
  const CheckerConfig* config_;

  std::vector<BlockAux> aux_;  // indexed by SiteId
  std::vector<std::pair<sedspec::IoKey, SiteId>> entries_;
  // Per-round visit counters, epoch-reset so clearing is O(1) per round.
  std::vector<uint64_t> visits_;
  std::vector<uint64_t> visit_epoch_;
  uint64_t epoch_ = 0;
  std::optional<uint64_t> active_cmd_;
};

}  // namespace sedspec::checker::engine
