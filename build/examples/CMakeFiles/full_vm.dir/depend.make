# Empty dependencies file for full_vm.
# This may be replaced when dependencies are built.
