// Minimal zero-dependency JSON support for the observability layer.
//
// The obs exporters *emit* JSON (metrics snapshots, Chrome trace events);
// this parser exists so the emitting side can be verified end-to-end — the
// obs tests and `examples/obs_dashboard --check` parse the exported bytes
// back and assert on their structure instead of trusting the writer.
//
// Exported documents are small (snapshots, not telemetry streams), so the
// parser favors simplicity over speed: one recursive-descent pass into an
// owning tree. Malformed input throws sedspec::DecodeError, the same
// recoverable error type every other untrusted-bytes decoder in the repo
// uses.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/decode.h"

namespace sedspec::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  /// Insertion order preserved (duplicate keys kept as-is).
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws sedspec::DecodeError on malformed input.
[[nodiscard]] JsonValue json_parse(std::string_view text);

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace sedspec::obs
