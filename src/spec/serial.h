// ES-CFG persistence.
//
// An execution specification is generated offline (phases 1-2 of the paper)
// and deployed into the hypervisor for runtime protection (phase 3), so it
// must round-trip through a byte format — and survive that trip through
// hostile storage. The byte stream carries an integrity envelope:
//
//   u32 magic ("SESC")  u32 format version  u32 payload length
//   u32 crc32(payload)  payload...
//
// so a bit-flipped, truncated, or version-skewed specification is rejected
// at load time with a structured LoadError instead of being deployed (or
// aborting the VMM). Expressions and statements are serialized structurally
// inside the payload; every enum tag is range-validated on decode.
//
// Two load APIs:
//   load()        — returns LoadResult{cfg | LoadError}; never throws on
//                   corrupt input. The deploy-time entry point.
//   deserialize() — fail-fast convenience: throws DecodeError on any
//                   malformed input. For pipelines that already sit inside
//                   a containment domain.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "spec/es_cfg.h"

namespace sedspec::spec {

/// Why a serialized specification was rejected.
enum class LoadStatus : uint8_t {
  kOk = 0,
  kTooShort,        // buffer smaller than the envelope
  kBadMagic,        // not an ES-CFG artifact
  kVersionSkew,     // produced by an incompatible format version
  kLengthMismatch,  // envelope payload length != bytes present
  kCrcMismatch,     // payload failed the CRC32 integrity check
  kMalformed,       // envelope intact but payload structurally invalid
  kDeviceMismatch,  // spec names a different device (deploy-time check)
};

[[nodiscard]] std::string load_status_name(LoadStatus s);

struct LoadError {
  LoadStatus status = LoadStatus::kOk;
  std::string detail;

  [[nodiscard]] bool ok() const { return status == LoadStatus::kOk; }
  [[nodiscard]] std::string describe() const;
};

struct LoadResult {
  std::optional<EsCfg> cfg;
  LoadError error;

  [[nodiscard]] bool ok() const { return cfg.has_value(); }
};

/// Current on-disk format version (bumped when the payload layout changes).
inline constexpr uint32_t kSpecFormatVersion = 2;

/// Envelope size in bytes (magic + version + length + crc).
inline constexpr size_t kSpecEnvelopeSize = 16;

/// Serializes an expression tree (nullptr allowed).
void write_expr(sedspec::ByteWriter& w, const ExprRef& e);
[[nodiscard]] ExprRef read_expr(sedspec::ByteReader& r);

void write_stmt(sedspec::ByteWriter& w, const sedspec::Stmt& s);
[[nodiscard]] sedspec::Stmt read_stmt(sedspec::ByteReader& r);

[[nodiscard]] std::vector<uint8_t> serialize(const EsCfg& cfg);
[[nodiscard]] EsCfg deserialize(std::span<const uint8_t> bytes);

/// Structured, non-throwing load: validates the integrity envelope, then
/// decodes the payload. Corrupt input yields a LoadError, never an abort.
[[nodiscard]] LoadResult load(std::span<const uint8_t> bytes);

/// Recomputes the envelope's length and CRC fields over the current payload
/// bytes (fault-injection / tooling helper: corrupt the payload, reseal the
/// envelope, and the structural decoder — not the CRC — is what gets
/// exercised). No-op on buffers smaller than the envelope.
void reseal(std::vector<uint8_t>& bytes);

}  // namespace sedspec::spec
