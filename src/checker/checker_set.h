// CheckerSet — protect every emulated device of a VM at once.
//
// An IoBus has a single proxy slot; a real deployment protects many devices
// (the paper evaluates five specifications side by side). CheckerSet is a
// proxy that routes each access to the ES-Checker attached to the target
// device; devices without a checker pass through unchecked.
#pragma once

#include <map>
#include <memory>

#include "checker/checker.h"

namespace sedspec::checker {

class CheckerSet final : public sedspec::IoProxy {
 public:
  /// Creates, attaches, and takes ownership of a checker for `device`.
  EsChecker* attach(const spec::EsCfg& cfg, Device& device,
                    CheckerConfig config = {});

  /// Snapshot-pinning attach: the checker keeps the SpecStore snapshot
  /// alive, so a concurrent publish() of a newer version never invalidates
  /// this set's traversals. Re-attaching the same device replaces (and
  /// destroys) its previous checker — the redeploy path.
  EsChecker* attach(spec::SnapshotRef snapshot, Device& device,
                    CheckerConfig config = {});

  [[nodiscard]] EsChecker* checker_for(const Device& device) const;
  [[nodiscard]] size_t size() const { return checkers_.size(); }

  /// Fleet-wide view: sums every attached checker's counters (containment
  /// events, degraded rounds, quarantines, self-heals, ... included).
  [[nodiscard]] CheckerStats aggregate_stats() const;

  /// Publishes every attached checker's stats into `registry` (gauges
  /// labeled per device) plus the fleet aggregate under device="fleet".
  void publish_metrics(obs::MetricsRegistry& registry) const;

  // IoProxy ---------------------------------------------------------------
  bool before_access(Device& device, const IoAccess& io) override;
  void after_access(Device& device, const IoAccess& io) override;

 private:
  std::map<const Device*, std::unique_ptr<EsChecker>> checkers_;
};

}  // namespace sedspec::checker
