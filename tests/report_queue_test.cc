// ReportQueue: bounded lock-free report channel. Deterministic overflow
// policy (drop the report, never block the check path), FIFO order through
// the single-consumer path, and no lost or duplicated reports under
// concurrent producers.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "checker/report_queue.h"
#include "common/rng.h"
#include "guest/workload.h"

namespace sedspec {
namespace {

using checker::Report;
using checker::ReportQueue;

Report make_report(uint32_t shard, uint64_t seq) {
  Report r;
  r.kind = Report::Kind::kViolation;
  r.shard = shard;
  r.seq = seq;
  return r;
}

TEST(ReportQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ReportQueue(1).capacity(), 2u);
  EXPECT_EQ(ReportQueue(64).capacity(), 64u);
  EXPECT_EQ(ReportQueue(65).capacity(), 128u);
}

TEST(ReportQueue, OverflowDropsDeterministicallyAndKeepsFifoOrder) {
  ReportQueue q(64);
  // Seeded burst from one producer, no consumer: exactly `capacity`
  // accepted, the rest dropped, nothing blocks.
  for (uint64_t i = 0; i < 200; ++i) {
    q.try_push(make_report(0, i));
  }
  EXPECT_EQ(q.pushed(), 64u);
  EXPECT_EQ(q.dropped(), 136u);

  std::vector<Report> out;
  EXPECT_EQ(q.drain(out), 64u);
  ASSERT_EQ(out.size(), 64u);
  for (uint64_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].seq, i) << "FIFO order broken at slot " << i;
  }
  // Empty again: pops fail, drains return zero.
  Report r;
  EXPECT_FALSE(q.try_pop(r));
  EXPECT_EQ(q.size_approx(), 0u);
}

TEST(ReportQueue, ConcurrentProducersWithLiveConsumerLoseNothing) {
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 5000;
  ReportQueue q(256);

  std::vector<Report> drained;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (q.drain(drained) == 0) {
        std::this_thread::yield();
      }
    }
    q.drain(drained);
  });

  std::vector<std::thread> producers;
  std::vector<uint64_t> accepted(kProducers, 0);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        if (q.try_push(make_report(static_cast<uint32_t>(p), i))) {
          ++accepted[p];
        }
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  // Conservation: every accepted push is drained exactly once, and each
  // producer's accepted reports arrive in its emission order.
  uint64_t total_accepted = 0;
  for (uint64_t a : accepted) {
    total_accepted += a;
  }
  EXPECT_EQ(q.pushed(), total_accepted);
  EXPECT_EQ(q.pushed() + q.dropped(), kProducers * kPerProducer);
  EXPECT_EQ(drained.size(), total_accepted);
  EXPECT_EQ(q.popped(), total_accepted);

  std::vector<uint64_t> last_seq(kProducers, 0);
  std::vector<uint64_t> seen(kProducers, 0);
  for (const Report& r : drained) {
    ASSERT_LT(r.shard, static_cast<uint32_t>(kProducers));
    if (seen[r.shard] > 0) {
      EXPECT_GT(r.seq, last_seq[r.shard])
          << "per-producer order broken for producer " << r.shard;
    }
    last_seq[r.shard] = r.seq;
    ++seen[r.shard];
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(seen[p], accepted[p]);
  }
}

// Checker integration under overflow: with a deliberately tiny queue and
// no consumer, a burst of violating rounds overflows it. The QUEUE is the
// single source of truth for drops (satellite: no double-booking); the
// checker tracks offers vs acceptances, and conservation must hold:
//   offered == emitted + queue drops,   emitted == queue pushed.
TEST(ReportQueue, DropConservationUnderOverflow) {
  auto wl = guest::make_workload("fdc");
  checker::CheckerConfig config;
  config.monitor_only = true;  // violations warn; the device keeps running
  wl->build_and_deploy(config);

  ReportQueue tiny(2);
  wl->checker()->set_report_sink(&tiny, /*shard_id=*/7);
  const obs::Counter& shard_drops =
      obs::metrics().counter("report_queue_dropped_total",
                             obs::label({{"shard", "7"}}));
  const uint64_t shard_drops_before = shard_drops.value();

  Rng rng(43);
  for (int i = 0; i < 10; ++i) {
    wl->rare_operation(rng);  // each rare op trips >= 1 violation report
  }

  const checker::CheckerStats& stats = wl->checker()->stats();
  EXPECT_EQ(stats.reports_emitted, tiny.capacity());
  EXPECT_GT(stats.reports_offered, stats.reports_emitted);
  EXPECT_EQ(stats.reports_emitted, tiny.pushed());
  // Conservation: every offer either landed in the queue or is accounted
  // as a queue drop — exactly once.
  EXPECT_EQ(stats.reports_offered - stats.reports_emitted, tiny.dropped());
  // The queue attributed every drop to the emitting shard's counter.
  EXPECT_EQ(shard_drops.value() - shard_drops_before, tiny.dropped());

  std::vector<Report> out;
  tiny.drain(out);
  ASSERT_EQ(out.size(), tiny.capacity());
  for (const Report& r : out) {
    EXPECT_EQ(r.shard, 7u);
    EXPECT_EQ(r.kind, Report::Kind::kViolation);
  }
}

}  // namespace
}  // namespace sedspec
