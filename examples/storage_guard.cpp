// storage_guard: protect a whole bank of emulated storage controllers.
//
// The scenario the paper's introduction motivates: a multi-tenant host
// exposes several storage devices (USB mass storage over EHCI, an SD card
// over SDHCI, a SCSI disk). This example trains an execution specification
// per device, deploys checkers in ENHANCEMENT mode (availability first:
// only parameter-check findings block), runs a mixed I/O load, and prints a
// per-device protection report — including what happens when a tenant gets
// exploity (the CVE-2021-3409 BLKSIZE attack against the SD controller).
#include <cstdio>
#include <memory>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "common/vclock.h"
#include "devices/sdhci.h"
#include "guest/sdhci_driver.h"
#include "guest/workload.h"
#include "sedspec/pipeline.h"

using namespace sedspec;

int main() {
  set_log_level(LogLevel::kOff);

  std::printf("Bringing up the storage bank with SEDSpec enhancement mode\n");
  std::vector<std::unique_ptr<guest::DeviceWorkload>> bank;
  for (const char* name : {"usb-ehci", "sdhci", "scsi-esp"}) {
    auto wl = guest::make_workload(name);
    checker::CheckerConfig config;
    config.mode = checker::Mode::kEnhancement;
    wl->build_and_deploy(config);
    std::printf("  %-9s spec: %3zu blocks, %2zu state params, "
                "%zu sync points\n",
                wl->name().c_str(), wl->spec().blocks.size(),
                wl->spec().params.size(), wl->spec().sync_locals.size());
    bank.push_back(std::move(wl));
  }

  std::printf("\nMixed tenant I/O (reads, writes, metadata ops)...\n");
  Rng rng(2026);
  VirtualClock clock;
  for (int round = 0; round < 8; ++round) {
    for (auto& wl : bank) {
      wl->test_case(guest::InteractionMode::kRandom, rng, clock,
                    /*include_rare=*/round == 5);
    }
  }
  for (auto& wl : bank) {
    const auto& s = wl->checker()->stats();
    std::printf("  %-9s %7llu rounds checked, %llu warnings, %llu blocked\n",
                wl->name().c_str(), (unsigned long long)s.rounds,
                (unsigned long long)s.warnings, (unsigned long long)s.blocked);
  }
  std::printf("  (warnings trace back to rare-but-legal commands; nothing "
              "was blocked)\n");

  std::printf("\nA hostile tenant attacks the SD controller "
              "(CVE-2021-3409)...\n");
  devices::SdhciDevice sd(devices::SdhciDevice::Vulns{.cve_2021_3409 = true});
  IoBus bus;
  bus.map(IoSpace::kMmio, devices::SdhciDevice::kBaseAddr,
          devices::SdhciDevice::kMmioSpan, &sd);
  spec::EsCfg cfg = pipeline::build_spec(sd, [&] {
    guest::SdhciDriver drv(&bus);
    drv.init_card();
    std::vector<uint8_t> block(512, 0x42);
    drv.write_block(0, block);
    std::vector<uint8_t> back(512);
    drv.read_block(0, back);
    drv.write_block_with_reprogram(1, block);
  });
  checker::CheckerConfig enh;
  enh.mode = checker::Mode::kEnhancement;
  auto checker = pipeline::deploy(cfg, sd, bus, enh);

  guest::SdhciDriver attacker(&bus);
  attacker.init_card();
  attacker.w16(devices::SdhciDevice::kRegBlkCnt, 1);
  attacker.w32(devices::SdhciDevice::kRegArg, 1);
  attacker.w16(devices::SdhciDevice::kRegCmd,
               static_cast<uint16_t>(devices::SdhciDevice::kCmdWriteSingle)
                   << 8);
  for (int i = 0; i < 64; ++i) {
    attacker.w8(devices::SdhciDevice::kRegBData, 0x41);
  }
  attacker.w16(devices::SdhciDevice::kRegBlkSize, 16);  // shrink mid-transfer
  attacker.w8(devices::SdhciDevice::kRegBData, 0x42);   // underflow here

  std::printf("  parameter-check violations: %llu, access blocked: %s, "
              "device corrupted: %s\n",
              (unsigned long long)checker->stats().violations_by_strategy[0],
              checker->stats().blocked > 0 ? "yes" : "no",
              sd.incidents().empty() ? "no" : "yes");
  std::printf("  even in availability-first enhancement mode, the parameter "
              "check stops the exploit.\n");
  return checker->stats().blocked > 0 && sd.incidents().empty() ? 0 : 1;
}
