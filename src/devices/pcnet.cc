#include "devices/pcnet.h"

#include <algorithm>

#include "common/assert.h"

namespace sedspec::devices {

namespace {

using sedspec::eb::add;
using sedspec::eb::band;
using sedspec::eb::bor;
using sedspec::eb::c;
using sedspec::eb::cast;
using sedspec::eb::eq;
using sedspec::eb::ge;
using sedspec::eb::gt;
using sedspec::eb::io_value;
using sedspec::eb::le;
using sedspec::eb::local;
using sedspec::eb::ne;
using sedspec::eb::param;
using sedspec::eb::sub;
using sedspec::eb::un;

constexpr IntType U8 = IntType::kU8;
constexpr IntType U16 = IntType::kU16;
constexpr IntType U32 = IntType::kU32;

/// The wire-side frame-delivery event (not guest I/O; never checked).
constexpr sedspec::IoAccess rx_event(uint64_t len) {
  sedspec::IoAccess io;
  io.space = sedspec::IoSpace::kMmio;
  io.addr = 0xfeed0000;
  io.size = 4;
  io.value = len;
  io.is_write = true;
  return io;
}

}  // namespace

struct PcnetDevice::RxSites {
  sedspec::SiteId begin, clampq, clamp, scanq, ownq, deliver, d_adv, d_wrapq,
      d_wrap, adv, wrapq, wrap_do, drop;
  sedspec::LocalId l_own;
};

PcnetDevice::PcnetDevice(sedspec::GuestMemory* mem, Vulns vulns)
    : PcnetDevice(std::make_unique<Blueprint>([&] {
        Blueprint bp;
        StateLayout layout("PCNetState");
        bp.rap = layout.add_scalar("rap", FieldKind::kRegister, U16);
        bp.csr0 = layout.add_scalar("csr0", FieldKind::kRegister, U16);
        bp.csr1 = layout.add_scalar("csr1", FieldKind::kRegister, U16);
        bp.csr2 = layout.add_scalar("csr2", FieldKind::kRegister, U16);
        bp.csr3 = layout.add_scalar("csr3", FieldKind::kRegister, U16);
        bp.csr4 = layout.add_scalar("csr4", FieldKind::kRegister, U16);
        bp.csr15 = layout.add_scalar("csr15", FieldKind::kRegister, U16);
        bp.csr76 = layout.add_scalar("csr76", FieldKind::kRegister, U16);
        bp.csr78 = layout.add_scalar("csr78", FieldKind::kRegister, U16);
        bp.rdra = layout.add_scalar("rdra", FieldKind::kRegister, U32);
        bp.tdra = layout.add_scalar("tdra", FieldKind::kRegister, U32);
        bp.rcvrc = layout.add_scalar("rcvrc", FieldKind::kIndex, U16);
        bp.xmtrc = layout.add_scalar("xmtrc", FieldKind::kIndex, U16);
        bp.rx_scan = layout.add_scalar("rx_scan", FieldKind::kOther, U32);
        bp.xmit_pos = layout.add_scalar("xmit_pos", FieldKind::kIndex, U32);
        bp.buffer = layout.add_buffer("buffer", 1, kBufferSize);
        bp.irq_fn = layout.add_funcptr("irq_fn");  // adjacent to buffer

        DeviceProgram prog("pcnet", std::move(layout), /*code_base=*/0x600000);
        bp.f_irq = prog.add_function("pcnet_update_irq");
        bp.l_init_rdra = prog.add_local("init_rdra");
        bp.l_init_tdra = prog.add_local("init_tdra");
        bp.l_tx_own = prog.add_local("tx_desc_own");
        bp.l_tx_len = prog.add_local("tx_desc_len");
        bp.l_tx_enp = prog.add_local("tx_desc_enp");
        bp.l_fcs_pos = prog.add_local("fcs_pos");
        bp.l_rx_own = prog.add_local("rx_desc_own");
        bp.l_erx_own = prog.add_local("erx_desc_own");
        bp.l_ext_len = prog.add_local("ext_frame_len");

        auto P16 = [&](ParamId p) { return param(p, U16); };
        auto P32 = [&](ParamId p) { return param(p, U32); };
        ExprRef rx_ring_len =
            sub(c(0x10000, U32), cast(P16(bp.csr76), U32), U32);
        ExprRef tx_ring_len =
            sub(c(0x10000, U32), cast(P16(bp.csr78), U32), U32);

        // --- Register access ----------------------------------------------
        bp.s_rap_set = prog.add_plain(
            "pcnet_aprom_rap_write",
            {sb::assign(bp.rap, band(io_value(U16), c(0x7f, U16), U16),
                        "rap = value & 0x7f")});
        bp.s_rap_read = prog.add_plain("pcnet_rap_read", {});
        bp.s_reset = prog.add_plain(
            "pcnet_s_reset",
            {sb::assign(bp.csr0, c(kCsr0Stop, U16), "csr0 = STOP"),
             sb::assign(bp.xmit_pos, c(0, U32))});
        bp.s_csr_read = prog.add_plain("pcnet_csr_read", {});
        bp.s_bdp_write = prog.add_plain("pcnet_bcr_write", {});
        bp.s_bdp_read = prog.add_plain("pcnet_bcr_read", {});

        // --- CSR write dispatch chain --------------------------------------
        auto is_rap = [&](const char* name, uint16_t n) {
          return prog.add_conditional(name, eq(P16(bp.rap), c(n, U16)));
        };
        bp.s_w_is0 = is_rap("pcnet_csr_write.is0", 0);
        bp.s_w_is1 = is_rap("pcnet_csr_write.is1", 1);
        bp.s_w_is2 = is_rap("pcnet_csr_write.is2", 2);
        bp.s_w_is3 = is_rap("pcnet_csr_write.is3", 3);
        bp.s_w_is4 = is_rap("pcnet_csr_write.is4", 4);
        bp.s_w_is15 = is_rap("pcnet_csr_write.is15", 15);
        bp.s_w_is76 = is_rap("pcnet_csr_write.is76", 76);
        bp.s_w_is78 = is_rap("pcnet_csr_write.is78", 78);
        auto setter = [&](const char* name, ParamId p) {
          return prog.add_plain(name, {sb::assign(p, io_value(U16))});
        };
        bp.s_csr1_set = setter("pcnet_csr1_write", bp.csr1);
        bp.s_csr2_set = setter("pcnet_csr2_write", bp.csr2);
        bp.s_csr3_set = setter("pcnet_csr3_write", bp.csr3);
        bp.s_csr4_set = setter("pcnet_csr4_write", bp.csr4);
        bp.s_csr15_set = setter("pcnet_csr15_write", bp.csr15);
        bp.s_csr76_set = setter("pcnet_csr76_write", bp.csr76);
        bp.s_csr78_set = setter("pcnet_csr78_write", bp.csr78);
        bp.s_csr_other_w = prog.add_plain("pcnet_csr_write.other", {});

        // --- CSR0 control path ---------------------------------------------
        bp.s_csr0_ack = prog.add_plain(
            "pcnet_csr0_ack",
            {sb::assign(bp.csr0,
                        band(P16(bp.csr0),
                             un(sedspec::UnaryOp::kBitNot,
                                band(io_value(U16), c(0x7f00, U16), U16), U16),
                             U16),
                        "csr0 &= ~(value & 0x7f00)  /* W1C status bits */")});
        bp.s_csr0_stopq = prog.add_conditional(
            "pcnet_csr0.stop",
            ne(band(io_value(U16), c(kCsr0Stop, U16), U16), c(0, U16)));
        bp.s_csr0_stop = prog.add_plain(
            "pcnet_stop", {sb::assign(bp.csr0, c(kCsr0Stop, U16)),
                           sb::assign(bp.xmit_pos, c(0, U32))});
        bp.s_csr0_initq = prog.add_conditional(
            "pcnet_csr0.init",
            ne(band(io_value(U16), c(kCsr0Init, U16), U16), c(0, U16)));
        bp.s_init = prog.add_plain(
            "pcnet_init",
            {sb::assign(bp.rdra, local(bp.l_init_rdra, U32),
                        "rdra = init_block.rdra"),
             sb::assign(bp.tdra, local(bp.l_init_tdra, U32),
                        "tdra = init_block.tdra"),
             sb::assign(bp.rcvrc, c(0, U16)), sb::assign(bp.xmtrc, c(0, U16)),
             sb::assign(bp.xmit_pos, c(0, U32)),
             sb::assign(bp.csr0,
                        bor(P16(bp.csr0), c(kCsr0Idon | kCsr0Init, U16), U16),
                        "csr0 |= IDON|INIT")});
        bp.s_irq_init = prog.add_indirect("pcnet_irq.init_done", bp.irq_fn);
        bp.s_csr0_strtq = prog.add_conditional(
            "pcnet_csr0.strt",
            ne(band(io_value(U16), c(kCsr0Strt, U16), U16), c(0, U16)));
        bp.s_strt = prog.add_plain(
            "pcnet_start",
            {sb::assign(bp.csr0,
                        bor(P16(bp.csr0),
                            c(kCsr0Strt | kCsr0Txon | kCsr0Rxon, U16), U16),
                        "csr0 |= STRT|TXON|RXON")});
        bp.s_csr0_tdmdq = prog.add_conditional(
            "pcnet_csr0.tdmd",
            ne(band(io_value(U16), c(kCsr0Tdmd, U16), U16), c(0, U16)));

        // --- Transmit path ---------------------------------------------------
        bp.s_tx_start = prog.add_plain(
            "pcnet_transmit.start",
            {sb::assign(bp.csr0,
                        band(P16(bp.csr0),
                             un(sedspec::UnaryOp::kBitNot, c(kCsr0Tdmd, U16),
                                U16),
                             U16),
                        "csr0 &= ~TDMD")});
        bp.s_tx_desc = prog.add_conditional(
            "pcnet_transmit.desc_owned",
            eq(local(bp.l_tx_own, U32), c(1, U32)));
        bp.s_tx_boundq = prog.add_conditional(  // patched only
            "pcnet_transmit.bound",
            le(add(P32(bp.xmit_pos), local(bp.l_tx_len, U32), U32),
               c(kBufferSize, U32)));
        bp.s_tx_trunc = prog.add_plain(
            "pcnet_transmit.truncate", {sb::assign(bp.xmit_pos, c(0, U32))});
        bp.s_tx_append = prog.add_plain(
            "pcnet_transmit.append",
            {sb::buf_fill(bp.buffer, P32(bp.xmit_pos),
                          local(bp.l_tx_len, U32),
                          "buffer[xmit_pos ..] <- tx descriptor payload"),
             sb::assign(bp.xmit_pos,
                        add(P32(bp.xmit_pos), local(bp.l_tx_len, U32), U32),
                        "xmit_pos += len")});
        bp.s_tx_enpq = prog.add_conditional(
            "pcnet_transmit.enp", eq(local(bp.l_tx_enp, U32), c(1, U32)));
        // Ring cursors are int-sized in the real device; advance in u32 and
        // narrow silently so the checker does not flag the u16 wrap.
        auto advance16 = [&](ParamId p) {
          return cast(add(cast(P16(p), U32), c(1, U32), U32), U16);
        };
        bp.s_tx_adv = prog.add_plain(
            "pcnet_transmit.advance",
            {sb::assign(bp.xmtrc, advance16(bp.xmtrc), "xmtrc++")});
        bp.s_tx_wrapq = prog.add_conditional(
            "pcnet_transmit.wrap", ge(cast(P16(bp.xmtrc), U32), tx_ring_len));
        bp.s_tx_wrap_do = prog.add_plain("pcnet_transmit.wrap_reset",
                                         {sb::assign(bp.xmtrc, c(0, U16))});
        bp.s_tx_done = prog.add_plain("pcnet_transmit.done", {});

        bp.s_tx_loopq = prog.add_conditional(
            "pcnet_transmit.loopback",
            ne(band(P16(bp.csr15), c(kModeLoop, U16), U16), c(0, U16)));
        bp.s_fcsq = prog.add_conditional(
            "pcnet_loopback.fcs_enabled",
            eq(band(P16(bp.csr15), c(kModeDxmtfcs, U16), U16), c(0, U16)));
        bp.s_fcs_boundq = prog.add_conditional(  // patched only
            "pcnet_loopback.fcs_bound",
            le(add(local(bp.l_fcs_pos, U32), c(4, U32), U32),
               c(kBufferSize, U32)));
        bp.s_fcs = prog.add_plain(
            "pcnet_loopback.append_crc",
            {sb::buf_store(bp.buffer, local(bp.l_fcs_pos, U32), c(0xb1, U8),
                           "*(uint32_t *)&buf[size] = crc  /* temp ptr */"),
             sb::buf_store(bp.buffer,
                           add(local(bp.l_fcs_pos, U32), c(1, U32), U32),
                           c(0x05, U8)),
             sb::buf_store(bp.buffer,
                           add(local(bp.l_fcs_pos, U32), c(2, U32), U32),
                           c(0x44, U8)),
             sb::buf_store(bp.buffer,
                           add(local(bp.l_fcs_pos, U32), c(3, U32), U32),
                           c(0x21, U8))});
        bp.s_fcs_skip = prog.add_plain("pcnet_loopback.fcs_skipped", {});
        bp.s_tx_sent = prog.add_plain(
            "pcnet_transmit.sent",
            {sb::assign(bp.xmit_pos, c(0, U32)),
             sb::assign(bp.csr0, bor(P16(bp.csr0), c(kCsr0Tint, U16), U16),
                        "csr0 |= TINT")});
        bp.s_irq_tx = prog.add_indirect("pcnet_irq.tx", bp.irq_fn);

        // --- Receive chains ---------------------------------------------------
        struct ChainIds {
          sedspec::SiteId begin, clampq, clamp, scanq, ownq, deliver, d_adv,
              d_wrapq, d_wrap, adv, wrapq, wrap_do, drop;
        };
        auto make_rx_chain = [&](const std::string& prefix,
                                 sedspec::LocalId l_own) {
          ChainIds ids;
          ids.begin = prog.add_plain(
              prefix + ".begin",
              {sb::assign(bp.rx_scan, rx_ring_len,
                          "rx_scan = 0x10000 - csr76  /* ring length */")});
          ids.clampq = prog.add_conditional(  // patched only
              prefix + ".clampq", gt(P32(bp.rx_scan), c(kMaxRing, U32)));
          ids.clamp = prog.add_plain(
              prefix + ".clamp", {sb::assign(bp.rx_scan, c(kMaxRing, U32))});
          ids.scanq = prog.add_conditional(prefix + ".scan_more",
                                           gt(P32(bp.rx_scan), c(0, U32)));
          ids.ownq = prog.add_conditional(prefix + ".desc_owned",
                                          eq(local(l_own, U32), c(1, U32)));
          ids.deliver = prog.add_plain(
              prefix + ".deliver",
              {sb::assign(bp.csr0, bor(P16(bp.csr0), c(kCsr0Rint, U16), U16),
                          "csr0 |= RINT")});
          auto rc_advance =
              cast(add(cast(P16(bp.rcvrc), U32), c(1, U32), U32), U16);
          ids.d_adv = prog.add_plain(prefix + ".deliver_advance",
                                     {sb::assign(bp.rcvrc, rc_advance)});
          ids.d_wrapq = prog.add_conditional(
              prefix + ".deliver_wrap",
              ge(cast(P16(bp.rcvrc), U32), rx_ring_len));
          ids.d_wrap = prog.add_plain(prefix + ".deliver_wrap_reset",
                                      {sb::assign(bp.rcvrc, c(0, U16))});
          ids.adv = prog.add_plain(
              prefix + ".scan_advance",
              {sb::assign(bp.rcvrc, rc_advance),
               sb::assign(bp.rx_scan, sub(P32(bp.rx_scan), c(1, U32), U32),
                          "rx_scan--")});
          ids.wrapq = prog.add_conditional(
              prefix + ".scan_wrap", ge(cast(P16(bp.rcvrc), U32), rx_ring_len));
          ids.wrap_do = prog.add_plain(prefix + ".scan_wrap_reset",
                                       {sb::assign(bp.rcvrc, c(0, U16))});
          ids.drop = prog.add_plain(
              prefix + ".drop",
              {sb::assign(bp.csr0, bor(P16(bp.csr0), c(kCsr0Miss, U16), U16),
                          "csr0 |= MISS")});
          return ids;
        };

        const ChainIds lb = make_rx_chain("pcnet_loopback_rx", bp.l_rx_own);
        bp.s_rx_begin = lb.begin;
        bp.s_rx_clampq = lb.clampq;
        bp.s_rx_clamp = lb.clamp;
        bp.s_rx_scanq = lb.scanq;
        bp.s_rx_ownq = lb.ownq;
        bp.s_rx_deliver = lb.deliver;
        bp.s_rxd_adv = lb.d_adv;
        bp.s_rxd_wrapq = lb.d_wrapq;
        bp.s_rxd_wrap = lb.d_wrap;
        bp.s_rx_adv = lb.adv;
        bp.s_rx_wrapq = lb.wrapq;
        bp.s_rx_wrap_do = lb.wrap_do;
        bp.s_rx_drop = lb.drop;
        bp.s_lb_done = prog.add_plain(
            "pcnet_loopback.done",
            {sb::assign(bp.xmit_pos, c(0, U32)),
             sb::assign(bp.csr0, bor(P16(bp.csr0), c(kCsr0Tint, U16), U16))});

        bp.s_erx_copy = prog.add_plain(
            "pcnet_receive.copy",
            {sb::buf_fill(bp.buffer, c(0, U32), local(bp.l_ext_len, U32),
                          "buffer <- wire frame"),
             sb::assign(bp.xmit_pos, local(bp.l_ext_len, U32),
                        "frame length in buffer")});
        const ChainIds erx = make_rx_chain("pcnet_receive", bp.l_erx_own);
        bp.s_erx_begin = erx.begin;
        bp.s_erx_clampq = erx.clampq;
        bp.s_erx_clamp = erx.clamp;
        bp.s_erx_scanq = erx.scanq;
        bp.s_erx_ownq = erx.ownq;
        bp.s_erx_deliver = erx.deliver;
        bp.s_erxd_adv = erx.d_adv;
        bp.s_erxd_wrapq = erx.d_wrapq;
        bp.s_erxd_wrap = erx.d_wrap;
        bp.s_erx_adv = erx.adv;
        bp.s_erx_wrapq = erx.wrapq;
        bp.s_erx_wrap_do = erx.wrap_do;
        bp.s_erx_drop = erx.drop;
        bp.s_erx_done = prog.add_plain("pcnet_receive.done",
                                       {sb::assign(bp.xmit_pos, c(0, U32))});
        bp.s_irq_rx = prog.add_indirect("pcnet_irq.rx", bp.irq_fn);

        bp.program = std::make_unique<DeviceProgram>(std::move(prog));
        return bp;
      }()),
                  mem, vulns) {}

PcnetDevice::PcnetDevice(std::unique_ptr<Blueprint> bp,
                         sedspec::GuestMemory* mem, Vulns vulns)
    : Device(bp->program.get()), bp_(std::move(bp)), vulns_(vulns), dma_(mem) {
  ictx().bind_function(bp_->f_irq, [this] { irq_line().pulse(); });
  reset();
}

PcnetDevice::~PcnetDevice() = default;

void PcnetDevice::reset_device() {
  state().set(bp_->csr0, kCsr0Stop);
  state().set(bp_->irq_fn, bp_->f_irq);
  // Ring lengths default to 1 (csr76/78 = 0xffff) like the real chip.
  state().set(bp_->csr76, 0xffff);
  state().set(bp_->csr78, 0xffff);
}

uint64_t PcnetDevice::tx_desc_addr(const sedspec::StateAccess& view) const {
  return view.param(bp_->tdra) +
         uint64_t{kDescSize} * (view.param(bp_->xmtrc) & 0xffff);
}

uint64_t PcnetDevice::rx_desc_addr(const sedspec::StateAccess& view) const {
  return view.param(bp_->rdra) +
         uint64_t{kDescSize} * (view.param(bp_->rcvrc) & 0xffff);
}

std::optional<uint64_t> PcnetDevice::resolve_sync(
    sedspec::LocalId id, const sedspec::IoAccess& /*io*/,
    const sedspec::StateAccess& view) {
  const sedspec::GuestMemory& mem = dma_.memory();
  if (id == bp_->l_init_rdra || id == bp_->l_init_tdra) {
    const uint64_t addr = (view.param(bp_->csr2) << 16) | view.param(bp_->csr1);
    return mem.r32(addr + (id == bp_->l_init_rdra ? 0 : 4));
  }
  if (id == bp_->l_tx_own || id == bp_->l_tx_len || id == bp_->l_tx_enp) {
    const uint64_t desc = tx_desc_addr(view);
    if (id == bp_->l_tx_len) {
      return mem.r32(desc + 8);
    }
    const uint32_t flags = mem.r32(desc + 4);
    if (id == bp_->l_tx_own) {
      return (flags & kDescOwn) ? 1 : 0;
    }
    return (flags & kDescEnp) ? 1 : 0;
  }
  if (id == bp_->l_fcs_pos) {
    return view.param(bp_->xmit_pos);
  }
  if (id == bp_->l_rx_own || id == bp_->l_erx_own) {
    const uint32_t flags = mem.r32(rx_desc_addr(view) + 4);
    return (flags & kDescOwn) ? 1 : 0;
  }
  return std::nullopt;  // l_ext_len: wire-side only, never checked
}

uint64_t PcnetDevice::io_read(const sedspec::IoAccess& io) {
  IoRound round(ictx(), io);
  switch (io.addr - kBasePort) {
    case kRegRdp: {
      ictx().block(bp_->s_csr_read);
      return csr_read_value(static_cast<uint16_t>(state().get(bp_->rap)));
    }
    case kRegRap:
      ictx().block(bp_->s_rap_read);
      return state().get(bp_->rap);
    case kRegReset:
      ictx().block(bp_->s_reset);
      return 0;
    case kRegBdp:
      ictx().block(bp_->s_bdp_read);
      return 0;
    default:
      return 0xffff;
  }
}

uint16_t PcnetDevice::csr_read_value(uint16_t rap) const {
  switch (rap) {
    case 0:
      return static_cast<uint16_t>(state().get(bp_->csr0));
    case 1:
      return static_cast<uint16_t>(state().get(bp_->csr1));
    case 2:
      return static_cast<uint16_t>(state().get(bp_->csr2));
    case 3:
      return static_cast<uint16_t>(state().get(bp_->csr3));
    case 4:
      return static_cast<uint16_t>(state().get(bp_->csr4));
    case 15:
      return static_cast<uint16_t>(state().get(bp_->csr15));
    case 76:
      return static_cast<uint16_t>(state().get(bp_->csr76));
    case 78:
      return static_cast<uint16_t>(state().get(bp_->csr78));
    default:
      return 0;
  }
}

void PcnetDevice::io_write(const sedspec::IoAccess& io) {
  IoRound round(ictx(), io);
  switch (io.addr - kBasePort) {
    case kRegRdp:
      csr_write(static_cast<uint16_t>(state().get(bp_->rap)), io);
      return;
    case kRegRap:
      ictx().block(bp_->s_rap_set);
      return;
    case kRegBdp:
      ictx().block(bp_->s_bdp_write);
      return;
    default:
      return;
  }
}

void PcnetDevice::csr_write(uint16_t rap, const sedspec::IoAccess& /*io*/) {
  auto& ic = ictx();
  if (ic.branch(bp_->s_w_is0)) {
    // CSR0: control/status.
    ic.block(bp_->s_csr0_ack);
    if (ic.branch(bp_->s_csr0_stopq)) {
      ic.block(bp_->s_csr0_stop);
      return;
    }
    if (ic.branch(bp_->s_csr0_initq)) {
      const uint64_t iaddr =
          (state().get(bp_->csr2) << 16) | state().get(bp_->csr1);
      ic.set_local(bp_->l_init_rdra, dma_.memory().r32(iaddr));
      ic.set_local(bp_->l_init_tdra, dma_.memory().r32(iaddr + 4));
      ic.block(bp_->s_init);
      ic.indirect(bp_->s_irq_init);
    }
    if (ic.branch(bp_->s_csr0_strtq)) {
      ic.block(bp_->s_strt);
    }
    if (ic.branch(bp_->s_csr0_tdmdq)) {
      do_transmit();
    }
    return;
  }
  if (ic.branch(bp_->s_w_is1)) {
    ic.block(bp_->s_csr1_set);
    return;
  }
  if (ic.branch(bp_->s_w_is2)) {
    ic.block(bp_->s_csr2_set);
    return;
  }
  if (ic.branch(bp_->s_w_is3)) {
    ic.block(bp_->s_csr3_set);
    return;
  }
  if (ic.branch(bp_->s_w_is4)) {
    ic.block(bp_->s_csr4_set);
    return;
  }
  if (ic.branch(bp_->s_w_is15)) {
    ic.block(bp_->s_csr15_set);
    return;
  }
  if (ic.branch(bp_->s_w_is76)) {
    ic.block(bp_->s_csr76_set);
    return;
  }
  if (ic.branch(bp_->s_w_is78)) {
    ic.block(bp_->s_csr78_set);
    return;
  }
  ic.block(bp_->s_csr_other_w);
  (void)rap;
}

void PcnetDevice::do_transmit() {
  auto& ic = ictx();
  ic.block(bp_->s_tx_start);
  uint32_t watchdog_counter = 0;
  for (;;) {
    const uint64_t desc = tx_desc_addr(state());
    const uint32_t flags = dma_.memory().r32(desc + 4);
    const uint32_t len = dma_.memory().r32(desc + 8);
    ic.set_local(bp_->l_tx_own, (flags & kDescOwn) ? 1 : 0);
    ic.set_local(bp_->l_tx_len, len);
    ic.set_local(bp_->l_tx_enp, (flags & kDescEnp) ? 1 : 0);
    if (!ic.branch(bp_->s_tx_desc)) {
      ic.block(bp_->s_tx_done);
      return;
    }
    // Patched devices bound the append (CVE-2015-7512 fix).
    if (!vulns_.cve_2015_7512) {
      if (!ic.branch(bp_->s_tx_boundq)) {
        ic.block(bp_->s_tx_trunc);
        ic.block(bp_->s_tx_done);
        return;
      }
    }
    const uint64_t payload = dma_.memory().r32(desc);
    ic.block(bp_->s_tx_append, [&](std::span<uint8_t> dst) {
      dma_.from_guest(payload, dst);
    });
    dma_.memory().w32(desc + 4, flags & ~kDescOwn);  // return to guest

    if (ic.branch(bp_->s_tx_enpq)) {
      // Frame complete.
      if (ic.branch(bp_->s_tx_loopq)) {
        uint32_t frame_len =
            static_cast<uint32_t>(state().get(bp_->xmit_pos));
        if (ic.branch(bp_->s_fcsq)) {
          ic.set_local(bp_->l_fcs_pos, state().get(bp_->xmit_pos));
          if (!vulns_.cve_2015_7504) {
            if (ic.branch(bp_->s_fcs_boundq)) {
              append_fcs();
            } else {
              ic.block(bp_->s_fcs_skip);
            }
          } else {
            append_fcs();  // unpatched: no bound check
          }
          frame_len += 4;
        }
        RxSites sites{bp_->s_rx_begin, bp_->s_rx_clampq, bp_->s_rx_clamp,
                      bp_->s_rx_scanq, bp_->s_rx_ownq,   bp_->s_rx_deliver,
                      bp_->s_rxd_adv,  bp_->s_rxd_wrapq, bp_->s_rxd_wrap,
                      bp_->s_rx_adv,   bp_->s_rx_wrapq,  bp_->s_rx_wrap_do,
                      bp_->s_rx_drop,  bp_->l_rx_own};
        rx_deliver(sites, std::min(frame_len, kBufferSize + 8));
        ic.block(bp_->s_lb_done);
      } else {
        // Frame goes to the wire.
        const auto len_out =
            static_cast<uint32_t>(state().get(bp_->xmit_pos));
        backend_delay();  // tap/wire write
        auto buf = state().buffer_span(bp_->buffer);
        tx_log_.emplace_back(
            buf.begin(), buf.begin() + std::min<size_t>(len_out, buf.size()));
        ic.block(bp_->s_tx_sent);
      }
      ic.indirect(bp_->s_irq_tx);
    }

    ic.block(bp_->s_tx_adv);
    if (ic.branch(bp_->s_tx_wrapq)) {
      ic.block(bp_->s_tx_wrap_do);
    }
    if (ic.watchdog(watchdog_counter, 4096, "pcnet transmit ring")) {
      return;
    }
  }
}

void PcnetDevice::append_fcs() {
  // The DSOD carries the store statements (through the fcs_pos temporary,
  // set by the caller); the CRC bytes themselves are in the statements.
  ictx().block(bp_->s_fcs);
}

void PcnetDevice::rx_deliver(const RxSites& sites, uint32_t len) {
  auto& ic = ictx();
  ic.block(sites.begin);
  if (!vulns_.cve_2016_7909) {
    if (ic.branch(sites.clampq)) {
      ic.block(sites.clamp);
    }
  }
  uint32_t watchdog_counter = 0;
  for (;;) {
    if (!ic.branch(sites.scanq)) {
      ic.block(sites.drop);
      return;
    }
    const uint64_t desc = rx_desc_addr(state());
    const uint32_t flags = dma_.memory().r32(desc + 4);
    ic.set_local(sites.l_own, (flags & kDescOwn) ? 1 : 0);
    if (ic.branch(sites.ownq)) {
      // Deliver into the guest buffer.
      const uint64_t guest_buf = dma_.memory().r32(desc);
      const uint32_t buf_len = dma_.memory().r32(desc + 8);
      const uint32_t n = std::min(len, buf_len);
      auto src = state().buffer_span(bp_->buffer);
      dma_.to_guest(guest_buf,
                    std::span<const uint8_t>(
                        src.data(), std::min<size_t>(n, src.size())));
      dma_.memory().w32(desc + 4, flags & ~kDescOwn);
      dma_.memory().w32(desc + 12, n);  // msg_len
      ic.block(sites.deliver);
      ic.block(sites.d_adv);
      if (ic.branch(sites.d_wrapq)) {
        ic.block(sites.d_wrap);
      }
      return;
    }
    ic.block(sites.adv);
    if (ic.branch(sites.wrapq)) {
      ic.block(sites.wrap_do);
    }
    if (ic.watchdog(watchdog_counter, 20000, "pcnet rx descriptor scan")) {
      return;
    }
  }
}

bool PcnetDevice::receive_frame(std::span<const uint8_t> frame) {
  if ((state().get(bp_->csr0) & kCsr0Rxon) == 0 || halted()) {
    return false;
  }
  backend_delay();  // tap/wire read
  const sedspec::IoAccess io = rx_event(frame.size());
  IoRound round(ictx(), io);
  auto& ic = ictx();
  ic.set_local(bp_->l_ext_len, frame.size());
  ic.block(bp_->s_erx_copy, [&](std::span<uint8_t> dst) {
    const size_t n = std::min(dst.size(), frame.size());
    std::copy_n(frame.begin(), n, dst.begin());
  });
  const uint16_t rint_before = state().get(bp_->csr0) & kCsr0Rint;
  RxSites sites{bp_->s_erx_begin, bp_->s_erx_clampq, bp_->s_erx_clamp,
                bp_->s_erx_scanq, bp_->s_erx_ownq,   bp_->s_erx_deliver,
                bp_->s_erxd_adv,  bp_->s_erxd_wrapq, bp_->s_erxd_wrap,
                bp_->s_erx_adv,   bp_->s_erx_wrapq,  bp_->s_erx_wrap_do,
                bp_->s_erx_drop,  bp_->l_erx_own};
  rx_deliver(sites, static_cast<uint32_t>(
                        std::min<size_t>(frame.size(), kBufferSize)));
  ic.block(bp_->s_erx_done);
  ic.indirect(bp_->s_irq_rx);
  const bool delivered =
      rint_before == 0 && (state().get(bp_->csr0) & kCsr0Rint) != 0;
  notify_internal_activity();
  return delivered;
}

}  // namespace sedspec::devices
