// ES-Checker behavior tests: deployment from a serialized specification,
// mode policies, shadow-state consistency (the core soundness invariant:
// after clean rounds the shadow equals the device's control structure
// byte-for-byte), per-strategy statistics, and configuration knobs.
#include <gtest/gtest.h>

#include "guest/workload.h"
#include "spec/serial.h"

namespace sedspec {
namespace {

using checker::CheckerConfig;
using checker::EsChecker;
using checker::Mode;
using guest::DeviceWorkload;
using guest::InteractionMode;
using guest::make_workload;
using guest::workload_names;

class CheckerSuite : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllDevices, CheckerSuite,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// The paper's correctness requirement in its purest form: the ES-Checker's
// shadow device state must track every SCALAR control-structure field
// exactly across arbitrary benign traffic — otherwise the spec could
// neither predict behavior nor stay FP-free. (Buffer *contents* are data,
// not control: bulk DMA payloads are deliberately not mirrored.)
TEST_P(CheckerSuite, ShadowStateMirrorsDeviceAfterCleanRounds) {
  auto wl = make_workload(GetParam());
  wl->build_and_deploy();
  const auto& layout = wl->device().program().layout();
  Rng rng(17);
  VirtualClock clock;
  for (int i = 0; i < 6; ++i) {
    wl->test_case(static_cast<InteractionMode>(i % 3), rng, clock, false);
    ASSERT_EQ(wl->checker()->stats().blocked, 0u);
    for (size_t f = 0; f < layout.field_count(); ++f) {
      const auto id = static_cast<ParamId>(f);
      if (layout.field(id).is_buffer()) {
        continue;
      }
      EXPECT_EQ(wl->checker()->shadow().param(id),
                wl->device().state().param(id))
          << GetParam() << ": shadow diverged on field "
          << layout.field(id).name << " after case " << i;
    }
  }
}

TEST_P(CheckerSuite, DeploymentFromSerializedSpecBehavesIdentically) {
  auto wl = make_workload(GetParam());
  wl->build_and_deploy();
  // Serialize the trained spec, reload it, and swap the deployment.
  const auto bytes = spec::serialize(wl->spec());
  const spec::EsCfg restored = spec::deserialize(bytes);
  EXPECT_EQ(spec::serialize(restored), bytes);  // byte-stable round trip

  auto wl2 = make_workload(GetParam());
  spec::EsCfg trained =
      pipeline::build_spec(wl2->device(), [&] { wl2->training(); });
  const spec::EsCfg reloaded = spec::deserialize(spec::serialize(trained));
  auto checker = pipeline::deploy(reloaded, wl2->device(), wl2->bus());
  Rng rng(23);
  VirtualClock clock;
  // Benign traffic against the reloaded spec stays clean.
  wl2->training();
  EXPECT_EQ(checker->stats().blocked, 0u);
  EXPECT_EQ(checker->stats().warnings, 0u);
}

TEST_P(CheckerSuite, StatsBookkeepingIsConsistent) {
  auto wl = make_workload(GetParam());
  CheckerConfig config;
  config.mode = Mode::kEnhancement;
  wl->build_and_deploy(config);
  Rng rng(31);
  VirtualClock clock;
  wl->test_case(InteractionMode::kRandom, rng, clock, true);
  const auto& s = wl->checker()->stats();
  EXPECT_EQ(s.rounds,
            s.clean_rounds + s.warnings + s.blocked + s.degraded_rounds);
  EXPECT_GT(s.total_steps, 0u);
}

TEST_P(CheckerSuite, MonitorModeNeverBlocks) {
  auto wl = make_workload(GetParam());
  CheckerConfig config;
  config.monitor_only = true;
  wl->build_and_deploy(config);
  Rng rng(41);
  VirtualClock clock;
  for (int i = 0; i < 3; ++i) {
    wl->test_case(InteractionMode::kRandom, rng, clock, true);
  }
  EXPECT_EQ(wl->checker()->stats().blocked, 0u);
  EXPECT_FALSE(wl->device().halted());
  EXPECT_GT(wl->checker()->stats().warnings, 0u);  // rare ops noted
}

TEST_P(CheckerSuite, ProtectionModeHaltsOnRareOperation) {
  auto wl = make_workload(GetParam());
  wl->build_and_deploy();  // protection mode default
  Rng rng(43);
  wl->rare_operation(rng);
  EXPECT_GT(wl->checker()->stats().blocked, 0u);
  EXPECT_TRUE(wl->device().halted());
}

TEST(CheckerConfigKnobs, SpecDeviceMismatchRejected) {
  auto fdc = make_workload("fdc");
  spec::EsCfg cfg =
      pipeline::build_spec(fdc->device(), [&] { fdc->training(); });
  auto sdhci = make_workload("sdhci");
  EXPECT_THROW(EsChecker(&cfg, &sdhci->device(), {}), std::logic_error);
}

TEST(CheckerConfigKnobs, TraversalBudgetGuard) {
  // A pathologically small max_steps turns a normal round into a
  // conditional-jump finding rather than a hang.
  auto wl = make_workload("fdc");
  CheckerConfig config;
  config.max_steps = 1;
  config.mode = Mode::kEnhancement;
  wl->build_and_deploy(config);
  Rng rng(47);
  VirtualClock clock;
  wl->test_case(InteractionMode::kSequential, rng, clock, false);
  EXPECT_GT(wl->checker()->stats().violations_by_strategy[2], 0u);
  EXPECT_FALSE(wl->device().halted());
}

TEST(CheckerConfigKnobs, ResyncAfterWarningPreventsCascades) {
  // With resync disabled, a single rare-command warning may cascade into
  // follow-on divergence warnings; with it enabled (default), exactly the
  // rare rounds warn. This documents why the knob exists.
  auto count_warnings = [](bool resync) {
    auto wl = make_workload("fdc");
    CheckerConfig config;
    config.mode = Mode::kEnhancement;
    config.resync_after_warning = resync;
    wl->build_and_deploy(config);
    Rng rng(53);
    wl->rare_operation(rng);
    // Benign traffic afterwards.
    VirtualClock clock;
    wl->test_case(InteractionMode::kSequential, rng, clock, false);
    return wl->checker()->stats().warnings;
  };
  const uint64_t with_resync = count_warnings(true);
  const uint64_t without_resync = count_warnings(false);
  EXPECT_GT(with_resync, 0u);
  EXPECT_GE(without_resync, with_resync);
}

}  // namespace
}  // namespace sedspec
