#include "control/policy.h"

namespace sedspec::control {

void PolicyBits::tighten(const PolicyBits& other) {
  enforce |= other.enforce;
  force_protection |= other.force_protection;
  force_fail_closed |= other.force_fail_closed;
  require_parameter |= other.require_parameter;
  require_indirect |= other.require_indirect;
  require_conditional |= other.require_conditional;
  forbid_monitor_only |= other.forbid_monitor_only;
}

bool PolicyBits::covers(const PolicyBits& other) const {
  PolicyBits merged = *this;
  merged.tighten(other);
  return merged == *this;
}

bool PolicyBits::any() const {
  return enforce || force_protection || force_fail_closed ||
         require_parameter || require_indirect || require_conditional ||
         forbid_monitor_only;
}

void Policy::tighten(const Policy& other) {
  fleet.tighten(other.fleet);
  for (const auto& [device, bits] : other.per_device) {
    per_device[device].tighten(bits);
  }
}

PolicyBits Policy::effective(const std::string& device) const {
  PolicyBits bits = fleet;
  auto it = per_device.find(device);
  if (it != per_device.end()) {
    bits.tighten(it->second);
  }
  return bits;
}

checker::CheckerConfig apply_policy(const PolicyBits& bits,
                                    checker::CheckerConfig base) {
  if (bits.force_protection) {
    base.mode = checker::Mode::kProtection;
  }
  if (bits.force_fail_closed) {
    base.failure_policy = checker::FailurePolicy::kFailClosed;
  }
  base.enable_parameter |= bits.require_parameter;
  base.enable_indirect |= bits.require_indirect;
  base.enable_conditional |= bits.require_conditional;
  if (bits.forbid_monitor_only) {
    base.monitor_only = false;
  }
  return base;
}

bool is_tightening_of(const checker::CheckerConfig& tightened,
                      const checker::CheckerConfig& base) {
  // Protection > Enhancement; fail-closed > fail-open; enabled > disabled;
  // blocking > monitor-only. Everything else (budgets, labels) is not
  // policy-governed and may differ freely.
  if (base.mode == checker::Mode::kProtection &&
      tightened.mode != checker::Mode::kProtection) {
    return false;
  }
  if (base.failure_policy == checker::FailurePolicy::kFailClosed &&
      tightened.failure_policy != checker::FailurePolicy::kFailClosed) {
    return false;
  }
  if ((base.enable_parameter && !tightened.enable_parameter) ||
      (base.enable_indirect && !tightened.enable_indirect) ||
      (base.enable_conditional && !tightened.enable_conditional)) {
    return false;
  }
  if (!base.monitor_only && tightened.monitor_only) {
    return false;
  }
  return true;
}

void PolicyTree::tighten_tenant(const Policy& p) {
  std::lock_guard lock(mu_);
  tenant_.tighten(p);
  ++version_;
}

void PolicyTree::tighten_vm(const std::string& vm, const Policy& p) {
  std::lock_guard lock(mu_);
  vms_[vm].tighten(p);
  ++version_;
}

PolicyBits PolicyTree::effective(const std::string& vm,
                                 const std::string& device) const {
  std::lock_guard lock(mu_);
  PolicyBits bits = tenant_.effective(device);
  auto it = vms_.find(vm);
  if (it != vms_.end()) {
    bits.tighten(it->second.effective(device));
  }
  return bits;
}

uint64_t PolicyTree::version() const {
  std::lock_guard lock(mu_);
  return version_;
}

std::vector<std::string> PolicyTree::vm_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(vms_.size());
  for (const auto& [name, policy] : vms_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace sedspec::control
