#!/usr/bin/env python3
"""Benchmark regression gate.

Diffs freshly produced ``BENCH_<name>.json`` sidecars (written by the bench
binaries via bench_report::MetricSink) against the committed baselines in
``bench/baselines/`` and fails on a >10% regression.

Every baseline file gates its bench: a missing fresh sidecar or a metric
that disappeared is itself a failure (a bench silently dropping a metric is
how regressions hide). Direction is inferred from the metric name —
latency/time metrics regress upward, throughput/scaling metrics regress
downward — and can be overridden per metric by an optional ``"gate"``
section in the baseline file:

    {
      "bench": "rollout",
      "metrics": { "time_to_full_promotion_ms": 419.2, ... },
      "gate": {
        "time_to_full_promotion_ms": {"tolerance": 1.0},
        "rollout_guest_ops": {"direction": "exact"},
        "check_latency_mean_ns_steady": {"direction": "skip"}
      }
    }

``direction`` is one of ``lower`` (lower is better), ``higher``, ``exact``
(any change beyond tolerance fails in either direction), or ``skip``
(informational only). ``tolerance`` is a fraction; the default is 0.10
(the 10% bar). Raw wall-time metrics are machine-dependent, so committed
baselines should carry a generous per-metric tolerance for them while
keeping deterministic counts and dimensionless ratios on the tight bar.

Exit status: 0 when every gated metric holds, 1 on any regression or
missing artifact, 2 on usage errors.
"""

import argparse
import json
import math
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.10

# Name-based direction inference, first match wins. Benches overwhelmingly
# name metrics with their unit; anything unrecognized is skipped loudly so
# a typo'd gate entry can't silently pass.
LOWER_IS_BETTER = ("latency", "_ns", "_ms", "time_", "dropped", "failures")
HIGHER_IS_BETTER = ("_per_s", "scaling_", "speedup", "throughput",
                    "bandwidth", "_ops")


def infer_direction(name: str) -> str:
    lowered = name.lower()
    for marker in LOWER_IS_BETTER:
        if marker in lowered:
            return "lower"
    for marker in HIGHER_IS_BETTER:
        if marker in lowered:
            return "higher"
    return "skip"


def load_metrics(path: Path):
    with path.open() as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError(f"{path}: no 'metrics' object")
    gate = doc.get("gate", {})
    if not isinstance(gate, dict):
        raise ValueError(f"{path}: 'gate' must be an object")
    series = doc.get("series", {})
    if not isinstance(series, dict):
        raise ValueError(f"{path}: 'series' must be an object")
    series_gate = doc.get("series_gate", {})
    if not isinstance(series_gate, dict):
        raise ValueError(f"{path}: 'series_gate' must be an object")
    return metrics, gate, series, series_gate


def series_stats(values):
    """Envelope statistics for one per-window series.

    Window counts are machine-dependent (the collector ticks wall time),
    so series are compared by envelope — max and median — never pointwise.
    """
    if not values:
        return {}
    ordered = sorted(float(v) for v in values)
    return {
        "max": ordered[-1],
        "median": ordered[len(ordered) // 2],
    }


def check_metric(name, base, cur, direction, tolerance, failures, rows):
    if direction == "skip":
        rows.append((name, base, cur, "-", "info"))
        return
    if base == 0:
        # A zero baseline has no meaningful relative delta; only an exact
        # gate can hold it (0 -> 0), anything else is a change.
        delta = math.inf if cur != 0 else 0.0
    else:
        delta = (cur - base) / abs(base)
    if direction == "lower":
        regressed = delta > tolerance
    elif direction == "higher":
        regressed = -delta > tolerance
    else:  # exact
        regressed = abs(delta) > tolerance
    shown = f"{delta:+.1%}" if math.isfinite(delta) else "inf"
    rows.append((name, base, cur, shown, "FAIL" if regressed else "ok"))
    if regressed:
        failures.append(
            f"{name}: {base:g} -> {cur:g} ({shown}, direction={direction}, "
            f"tolerance={tolerance:.0%})")


def gate_bench(baseline_path: Path, current_dir: Path, tolerance: float):
    failures = []
    rows = []
    base_metrics, gate, base_series, series_gate = load_metrics(baseline_path)
    current_path = current_dir / baseline_path.name
    if not current_path.is_file():
        return [f"{baseline_path.name}: no fresh sidecar in {current_dir} "
                "(bench not run or stopped emitting it)"], rows
    cur_metrics, _, cur_series, _ = load_metrics(current_path)

    for name in sorted(base_metrics):
        if name not in cur_metrics:
            failures.append(f"{name}: present in baseline, missing from "
                            f"{current_path.name}")
            continue
        overrides = gate.get(name, {})
        direction = overrides.get("direction", infer_direction(name))
        if direction not in ("lower", "higher", "exact", "skip"):
            raise ValueError(f"{baseline_path}: bad direction {direction!r} "
                             f"for {name}")
        check_metric(name, float(base_metrics[name]),
                     float(cur_metrics[name]), direction,
                     float(overrides.get("tolerance", tolerance)),
                     failures, rows)

    # Per-window series: gate the envelope (max, median) of each baseline
    # series against the fresh run's envelope. A series the bench stopped
    # emitting is a failure for the same reason a vanished metric is.
    for name in sorted(base_series):
        if name not in cur_series:
            failures.append(f"series {name}: present in baseline, missing "
                            f"from {current_path.name}")
            continue
        base_stats = series_stats(base_series[name])
        cur_stats = series_stats(cur_series[name])
        if not base_stats:
            continue  # empty baseline series gates nothing
        if not cur_stats:
            failures.append(f"series {name}: baseline has "
                            f"{len(base_series[name])} windows, current is "
                            "empty")
            continue
        overrides = series_gate.get(name, {})
        direction = overrides.get("direction", infer_direction(name))
        if direction not in ("lower", "higher", "exact", "skip"):
            raise ValueError(f"{baseline_path}: bad direction {direction!r} "
                             f"for series {name}")
        for stat in ("max", "median"):
            check_metric(f"{name}.{stat}", base_stats[stat], cur_stats[stat],
                         direction,
                         float(overrides.get("tolerance", tolerance)),
                         failures, rows)
    return failures, rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", type=Path, required=True,
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--current-dir", type=Path, required=True,
                        help="directory holding freshly produced sidecars")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="default regression tolerance (fraction)")
    args = parser.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"bench_gate: no BENCH_*.json baselines in "
              f"{args.baseline_dir}", file=sys.stderr)
        return 2

    all_failures = []
    for baseline in baselines:
        failures, rows = gate_bench(baseline, args.current_dir,
                                    args.tolerance)
        print(f"== {baseline.name} ==")
        for name, base, cur, delta, verdict in rows:
            print(f"  {verdict:>4}  {name:<44} {base:>14g} -> {cur:<14g} "
                  f"{delta}")
        for failure in failures:
            print(f"  FAIL  {failure}")
        all_failures.extend(failures)

    if all_failures:
        print(f"\nbench_gate: {len(all_failures)} regression(s)",
              file=sys.stderr)
        return 1
    print("\nbench_gate: all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
