#include "devices/esp_scsi.h"

#include <algorithm>

#include "common/assert.h"

namespace sedspec::devices {

namespace {

using sedspec::eb::add;
using sedspec::eb::band;
using sedspec::eb::bor;
using sedspec::eb::c;
using sedspec::eb::cast;
using sedspec::eb::eq;
using sedspec::eb::gt;
using sedspec::eb::io_value;
using sedspec::eb::le;
using sedspec::eb::local;
using sedspec::eb::lt;
using sedspec::eb::param;
using sedspec::eb::shl;
using sedspec::eb::sub;

constexpr IntType U8 = IntType::kU8;
constexpr IntType U16 = IntType::kU16;
constexpr IntType U32 = IntType::kU32;

// SCSI opcodes are disambiguated from controller commands in the command
// access table by a 0x100 offset.
constexpr uint64_t kCdbCmdBase = 0x100;

}  // namespace

EspScsiDevice::EspScsiDevice(sedspec::GuestMemory* mem, Vulns vulns)
    : EspScsiDevice(std::make_unique<Blueprint>([&] {
        Blueprint bp;
        StateLayout layout("ESPState");
        bp.tclo = layout.add_scalar("tclo", FieldKind::kRegister, U8);
        bp.tcmid = layout.add_scalar("tcmid", FieldKind::kRegister, U8);
        bp.status = layout.add_scalar("status", FieldKind::kRegister, U8);
        bp.intr = layout.add_scalar("intr", FieldKind::kRegister, U8);
        bp.seq_reg = layout.add_scalar("seq_reg", FieldKind::kRegister, U8);
        bp.cmd_reg = layout.add_scalar("cmd_reg", FieldKind::kRegister, U8);
        bp.phase = layout.add_scalar("phase", FieldKind::kFlag, U8);
        bp.selected = layout.add_scalar("selected", FieldKind::kFlag, U8);
        bp.dmaddr = layout.add_scalar("dmaddr", FieldKind::kRegister, U32);
        bp.irq_fn = layout.add_funcptr("irq_fn");
        bp.cmdbuf = layout.add_buffer("cmdbuf", 1, kCmdBufSize);
        bp.cmdlen = layout.add_scalar("cmdlen", FieldKind::kLength, U32);
        bp.ti_buf = layout.add_buffer("ti_buf", 1, kTiBufSize);
        bp.ti_rptr = layout.add_scalar("ti_rptr", FieldKind::kIndex, U32);
        bp.ti_wptr = layout.add_scalar("ti_wptr", FieldKind::kIndex, U32);
        bp.ti_size = layout.add_scalar("ti_size", FieldKind::kLength, U32);

        DeviceProgram prog("scsi-esp", std::move(layout),
                           /*code_base=*/0x700000);
        bp.f_irq = prog.add_function("esp_raise_irq");
        bp.l_ti_ptr = prog.add_local("ti_store_ptr");
        bp.l_dmalen = prog.add_local("get_cmd_dmalen");
        bp.l_cdb0 = prog.add_local("cdb_opcode");

        auto P8 = [&](ParamId p) { return param(p, U8); };
        auto P32 = [&](ParamId p) { return param(p, U32); };

        // --- Transfer count and DMA latch ---------------------------------
        bp.s_tclo_set =
            prog.add_plain("esp_write_tclo", {sb::assign(bp.tclo, io_value(U8))});
        bp.s_tcmid_set = prog.add_plain("esp_write_tcmid",
                                        {sb::assign(bp.tcmid, io_value(U8))});
        auto dma_byte = [&](const char* name, uint32_t shift, uint32_t mask) {
          return prog.add_plain(
              name, {sb::assign(bp.dmaddr,
                                bor(band(P32(bp.dmaddr), c(mask, U32), U32),
                                    shl(cast(io_value(U8), U32),
                                        c(shift, U32), U32),
                                    U32))});
        };
        bp.s_dma0 = dma_byte("esp_write_dmaddr0", 0, 0xffffff00u);
        bp.s_dma1 = dma_byte("esp_write_dmaddr1", 8, 0xffff00ffu);
        bp.s_dma2 = dma_byte("esp_write_dmaddr2", 16, 0xff00ffffu);
        bp.s_dma3 = dma_byte("esp_write_dmaddr3", 24, 0x00ffffffu);

        // --- FIFO ----------------------------------------------------------
        bp.s_fifo_boundq = prog.add_conditional(  // patched only
            "esp_fifo_write.bound", lt(P32(bp.ti_wptr), c(kTiBufSize, U32)));
        bp.s_fifo_overrun = prog.add_plain("esp_fifo_write.overrun", {});
        bp.s_fifo_store = prog.add_plain(
            "esp_fifo_write.store",
            {sb::buf_store(bp.ti_buf, local(bp.l_ti_ptr, U32), io_value(U8),
                           "*p++ = val  /* temp ptr into ti_buf */"),
             sb::assign(bp.ti_wptr, add(P32(bp.ti_wptr), c(1, U32), U32)),
             sb::assign(bp.ti_size, add(P32(bp.ti_size), c(1, U32), U32))});
        bp.s_fifo_r_emptyq = prog.add_conditional(
            "esp_fifo_read.available", lt(P32(bp.ti_rptr), P32(bp.ti_wptr)));
        bp.s_fifo_pop = prog.add_plain(
            "esp_fifo_read.pop",
            {sb::assign(bp.ti_rptr, add(P32(bp.ti_rptr), c(1, U32), U32))});
        bp.s_fifo_r_empty = prog.add_plain("esp_fifo_read.empty", {});

        // --- Status registers ----------------------------------------------
        bp.s_status_read = prog.add_plain("esp_read_status", {});
        bp.s_intr_read = prog.add_plain(
            "esp_read_intr", {sb::assign(bp.intr, c(0, U8),
                                         "intr = 0  /* read clears */")});
        bp.s_seq_read = prog.add_plain("esp_read_seq", {});

        // --- Controller command decode --------------------------------------
        bp.s_cmd_latch = prog.add_cmd_decision(
            "esp_reg_write.cmd", io_value(U8),
            {sb::assign(bp.cmd_reg, io_value(U8))});
        bp.s_cmd_flush = prog.add_plain(
            "esp_cmd_flush", {sb::assign(bp.ti_wptr, c(0, U32)),
                              sb::assign(bp.ti_rptr, c(0, U32)),
                              sb::assign(bp.ti_size, c(0, U32))});
        bp.s_cmd_busreset = prog.add_plain(
            "esp_cmd_bus_reset",
            {sb::assign(bp.phase, c(kPhaseIdle, U8)),
             sb::assign(bp.selected, c(0, U8)),
             sb::assign(bp.intr, c(0x80, U8), "intr = RESET")});
        bp.s_irq_reset = prog.add_indirect("esp_irq.bus_reset", bp.irq_fn);

        // A select with an empty FIFO has no message/CDB to latch; guard it
        // (otherwise the ti_wptr - 1 copy length underflows).
        bp.s_seln_emptyq = prog.add_conditional(
            "esp_select_with_atn.have_msg",
            gt(P32(bp.ti_wptr), c(0, U32)));
        bp.s_seln_noop = prog.add_plain("esp_select_with_atn.empty", {});
        bp.s_select_n = prog.add_plain(
            "esp_select_with_atn",
            {sb::assign(bp.selected, c(1, U8)),
             sb::buf_fill(bp.cmdbuf, c(0, U32),
                          sub(P32(bp.ti_wptr), c(1, U32), U32),
                          "cmdbuf <- fifo[1..]  /* skip identify msg */"),
             sb::assign(bp.cmdlen, sub(P32(bp.ti_wptr), c(1, U32), U32)),
             sb::assign(bp.intr, c(0x18, U8), "intr = BUS SERVICE|FC")});
        bp.s_getcmd_boundq = prog.add_conditional(  // patched only
            "esp_get_cmd.bound",
            le(local(bp.l_dmalen, U32), c(kCmdBufSize, U32)));
        bp.s_getcmd_fail = prog.add_plain(
            "esp_get_cmd.reject", {sb::assign(bp.intr, c(0x20, U8))});
        bp.s_select_dma_go = prog.add_plain(
            "esp_select_with_atn_dma",
            {sb::assign(bp.selected, c(1, U8)),
             sb::buf_fill(bp.cmdbuf, c(0, U32), local(bp.l_dmalen, U32),
                          "memcpy(cmdbuf, dma, dmalen)  /* temp length */"),
             sb::assign(bp.cmdlen, local(bp.l_dmalen, U32)),
             sb::assign(bp.intr, c(0x18, U8))});
        bp.s_irq_sel = prog.add_indirect("esp_irq.select", bp.irq_fn);

        bp.s_cdb_group = prog.add_cmd_decision(
            "esp_do_busid_cmd.opcode",
            add(cast(local(bp.l_cdb0, U8), U16), c(kCdbCmdBase, U16), U16));
        auto cdb_exec = [&](const char* name, uint8_t phase) {
          return prog.add_plain(
              name, {sb::assign(bp.phase, c(phase, U8)),
                     sb::assign(bp.status, c(phase, U8), "status = phase")});
        };
        bp.s_cdb_tur = cdb_exec("scsi_test_unit_ready", kPhaseStatus);
        bp.s_cdb_sense = cdb_exec("scsi_request_sense", kPhaseDataIn);
        bp.s_cdb_read = cdb_exec("scsi_read6", kPhaseDataIn);
        bp.s_cdb_write = cdb_exec("scsi_write6", kPhaseDataOut);
        bp.s_cdb_inquiry = cdb_exec("scsi_inquiry", kPhaseDataIn);
        bp.s_cdb_unknown = cdb_exec("scsi_unknown_opcode", kPhaseStatus);
        bp.s_irq_exec = prog.add_indirect("esp_irq.command", bp.irq_fn);

        bp.s_cmd_ti = prog.add_plain("esp_cmd_transfer_info", {});
        bp.s_dmati_dirq = prog.add_conditional(
            "esp_do_dma.data_in", eq(P8(bp.phase), c(kPhaseDataIn, U8)));
        auto dmati_done = [&](const char* name) {
          return prog.add_plain(
              name, {sb::assign(bp.phase, c(kPhaseStatus, U8)),
                     sb::assign(bp.status, c(kPhaseStatus, U8)),
                     sb::assign(bp.tclo, c(0, U8)),
                     sb::assign(bp.tcmid, c(0, U8)),
                     sb::assign(bp.intr, c(0x08, U8), "intr = FC")});
        };
        bp.s_dmati_in = dmati_done("esp_do_dma.in_done");
        bp.s_dmati_outq = prog.add_conditional(
            "esp_do_dma.data_out", eq(P8(bp.phase), c(kPhaseDataOut, U8)));
        bp.s_dmati_out = dmati_done("esp_do_dma.out_done");
        bp.s_dmati_bad = prog.add_plain("esp_do_dma.bad_phase", {});
        bp.s_irq_xfer = prog.add_indirect("esp_irq.transfer", bp.irq_fn);

        bp.s_cmd_iccs = prog.add_plain(
            "esp_cmd_iccs",
            {sb::buf_store(bp.ti_buf, P32(bp.ti_wptr), c(0, U8),
                           "push status GOOD"),
             sb::buf_store(bp.ti_buf, add(P32(bp.ti_wptr), c(1, U32), U32),
                           c(0, U8), "push message COMMAND COMPLETE"),
             sb::assign(bp.ti_wptr, add(P32(bp.ti_wptr), c(2, U32), U32)),
             sb::assign(bp.ti_size, add(P32(bp.ti_size), c(2, U32), U32)),
             sb::assign(bp.intr, c(0x08, U8))});
        bp.s_irq_iccs = prog.add_indirect("esp_irq.iccs", bp.irq_fn);
        bp.s_cmd_msgacc = prog.add_plain(
            "esp_cmd_message_accepted",
            {sb::assign(bp.selected, c(0, U8)),
             sb::assign(bp.phase, c(kPhaseIdle, U8)),
             sb::assign(bp.intr, c(0, U8))});
        bp.s_cmd_end = prog.add_cmd_end("esp_command_complete", {});
        bp.s_cmd_setatn = prog.add_plain("esp_cmd_set_atn", {});
        bp.s_cmd_unknown = prog.add_plain("esp_cmd_unknown", {});

        bp.program = std::make_unique<DeviceProgram>(std::move(prog));
        return bp;
      }()),
                    mem, vulns) {}

EspScsiDevice::EspScsiDevice(std::unique_ptr<Blueprint> bp,
                             sedspec::GuestMemory* mem, Vulns vulns)
    : Device(bp->program.get()),
      bp_(std::move(bp)),
      vulns_(vulns),
      dma_(mem),
      disk_(kDiskSize, 0) {
  ictx().bind_function(bp_->f_irq, [this] { irq_line().pulse(); });
  // Canned INQUIRY payload: direct-access device, "SEDSPEC ESP DISK".
  inquiry_data_.assign(36, 0);
  inquiry_data_[4] = 31;
  const char* vendor = "SEDSPEC ESP DISK";
  for (size_t i = 0; vendor[i] != '\0' && 8 + i < inquiry_data_.size(); ++i) {
    inquiry_data_[8 + i] = static_cast<uint8_t>(vendor[i]);
  }
  reset();
}

EspScsiDevice::~EspScsiDevice() = default;

void EspScsiDevice::reset_device() {
  state().set(bp_->irq_fn, bp_->f_irq);
  last_select_dma_ = false;
  xfer_lba_ = 0;
  xfer_len_ = 0;
}

std::optional<uint64_t> EspScsiDevice::resolve_sync(
    sedspec::LocalId id, const sedspec::IoAccess& io,
    const sedspec::StateAccess& view) {
  if (id == bp_->l_ti_ptr) {
    return view.param(bp_->ti_wptr);
  }
  if (id == bp_->l_dmalen) {
    return view.param(bp_->tclo) | (view.param(bp_->tcmid) << 8);
  }
  if (id == bp_->l_cdb0) {
    // The CDB source depends on the select variant of the round being
    // simulated (the checker runs before the device executes, so a cached
    // device-side flag would be one round stale).
    const bool dma_select = io.is_write && io.addr == kBasePort + kRegCmd &&
                            (io.value & 0xff) == kCmdSelAtnDma;
    if (dma_select) {
      return dma_.memory().r8(view.param(bp_->dmaddr));
    }
    return view.buf_peek(bp_->ti_buf, 1);  // after the identify message
  }
  return std::nullopt;
}

uint64_t EspScsiDevice::io_read(const sedspec::IoAccess& io) {
  IoRound round(ictx(), io);
  switch (io.addr - kBasePort) {
    case kRegFifo:
      return fifo_read();
    case kRegStatus:
      ictx().block(bp_->s_status_read);
      return state().get(bp_->status);
    case kRegIntr: {
      const uint64_t value = state().get(bp_->intr);
      ictx().block(bp_->s_intr_read);
      return value;
    }
    case kRegSeq:
      ictx().block(bp_->s_seq_read);
      return state().get(bp_->seq_reg);
    default:
      return 0;
  }
}

void EspScsiDevice::io_write(const sedspec::IoAccess& io) {
  IoRound round(ictx(), io);
  switch (io.addr - kBasePort) {
    case kRegTclo:
      ictx().block(bp_->s_tclo_set);
      return;
    case kRegTcmid:
      ictx().block(bp_->s_tcmid_set);
      return;
    case kRegFifo:
      fifo_write(io);
      return;
    case kRegCmd:
      command_write(io);
      return;
    case kRegDma0:
      ictx().block(bp_->s_dma0);
      return;
    case kRegDma0 + 1:
      ictx().block(bp_->s_dma1);
      return;
    case kRegDma0 + 2:
      ictx().block(bp_->s_dma2);
      return;
    case kRegDma0 + 3:
      ictx().block(bp_->s_dma3);
      return;
    default:
      return;
  }
}

void EspScsiDevice::fifo_write(const sedspec::IoAccess& /*io*/) {
  auto& ic = ictx();
  ic.set_local(bp_->l_ti_ptr, state().get(bp_->ti_wptr));
  if (!vulns_.cve_2016_4439) {
    if (!ic.branch(bp_->s_fifo_boundq)) {
      ic.block(bp_->s_fifo_overrun);
      return;
    }
  }
  ic.block(bp_->s_fifo_store);
}

uint64_t EspScsiDevice::fifo_read() {
  auto& ic = ictx();
  if (!ic.branch(bp_->s_fifo_r_emptyq)) {
    ic.block(bp_->s_fifo_r_empty);
    return 0;
  }
  const uint64_t value =
      state().buf_load(bp_->ti_buf, state().get(bp_->ti_rptr), nullptr);
  ic.block(bp_->s_fifo_pop);
  return value;
}

void EspScsiDevice::execute_cdb() {
  auto& ic = ictx();
  auto cmdbuf = state().buffer_span(bp_->cmdbuf);
  const uint8_t opcode = cmdbuf[0];
  ic.set_local(bp_->l_cdb0, opcode);
  const uint64_t decoded = ic.command(bp_->s_cdb_group);
  SEDSPEC_REQUIRE(decoded == kCdbCmdBase + opcode);
  switch (opcode) {
    case kScsiTestUnitReady:
      ic.block(bp_->s_cdb_tur);
      break;
    case kScsiRequestSense:
      xfer_len_ = 18;
      ic.block(bp_->s_cdb_sense);
      break;
    case kScsiRead6:
      xfer_lba_ = (uint64_t{cmdbuf[1] & 0x1fu} << 16) |
                  (uint64_t{cmdbuf[2]} << 8) | cmdbuf[3];
      xfer_len_ = (cmdbuf[4] == 0 ? 256u : cmdbuf[4]) * kBlockSize;
      ic.block(bp_->s_cdb_read);
      break;
    case kScsiWrite6:
      xfer_lba_ = (uint64_t{cmdbuf[1] & 0x1fu} << 16) |
                  (uint64_t{cmdbuf[2]} << 8) | cmdbuf[3];
      xfer_len_ = (cmdbuf[4] == 0 ? 256u : cmdbuf[4]) * kBlockSize;
      ic.block(bp_->s_cdb_write);
      break;
    case kScsiInquiry:
      xfer_len_ = static_cast<uint32_t>(inquiry_data_.size());
      ic.block(bp_->s_cdb_inquiry);
      break;
    default:
      ic.block(bp_->s_cdb_unknown);
      break;
  }
  ic.indirect(bp_->s_irq_exec);
}

void EspScsiDevice::dma_transfer_info() {
  backend_delay();  // disk-image I/O behind the SCSI layer
  const uint32_t tc = static_cast<uint32_t>(state().get(bp_->tclo)) |
                      (static_cast<uint32_t>(state().get(bp_->tcmid)) << 8);
  const uint64_t addr = state().get(bp_->dmaddr);
  const uint8_t opcode = state().buffer_span(bp_->cmdbuf)[0];
  const uint32_t n = std::min(tc, xfer_len_);
  if (state().get(bp_->phase) == kPhaseDataIn) {
    std::vector<uint8_t> data(n, 0);
    if (opcode == kScsiRead6) {
      const uint64_t off = xfer_lba_ * kBlockSize;
      for (uint32_t i = 0; i < n && off + i < disk_.size(); ++i) {
        data[i] = disk_[off + i];
      }
    } else if (opcode == kScsiInquiry) {
      std::copy_n(inquiry_data_.begin(),
                  std::min<size_t>(n, inquiry_data_.size()), data.begin());
    }  // REQUEST SENSE: zeroed "no sense" payload
    dma_.to_guest(addr, data);
  } else {
    std::vector<uint8_t> data(n, 0);
    dma_.from_guest(addr, data);
    const uint64_t off = xfer_lba_ * kBlockSize;
    for (uint32_t i = 0; i < n && off + i < disk_.size(); ++i) {
      disk_[off + i] = data[i];
    }
  }
}

void EspScsiDevice::command_write(const sedspec::IoAccess& io) {
  auto& ic = ictx();
  const auto cmd = static_cast<uint8_t>(ic.command(bp_->s_cmd_latch));
  SEDSPEC_REQUIRE(cmd == (io.value & 0xff));
  switch (cmd) {
    case kCmdFlush:
      ic.block(bp_->s_cmd_flush);
      return;
    case kCmdBusReset:
      ic.block(bp_->s_cmd_busreset);
      ic.indirect(bp_->s_irq_reset);
      return;
    case kCmdSelAtn: {
      last_select_dma_ = false;
      if (!ic.branch(bp_->s_seln_emptyq)) {
        ic.block(bp_->s_seln_noop);
        return;
      }
      auto ti = state().buffer_span(bp_->ti_buf);
      ic.block(bp_->s_select_n, [&](std::span<uint8_t> dst) {
        for (size_t i = 0; i < dst.size() && i + 1 < ti.size(); ++i) {
          dst[i] = ti[i + 1];  // skip the identify message byte
        }
      });
      ic.indirect(bp_->s_irq_sel);
      execute_cdb();
      return;
    }
    case kCmdSelAtnDma: {
      last_select_dma_ = true;
      const uint32_t dmalen =
          static_cast<uint32_t>(state().get(bp_->tclo)) |
          (static_cast<uint32_t>(state().get(bp_->tcmid)) << 8);
      ic.set_local(bp_->l_dmalen, dmalen);
      if (!vulns_.cve_2015_5158) {
        if (!ic.branch(bp_->s_getcmd_boundq)) {
          ic.block(bp_->s_getcmd_fail);
          return;
        }
      }
      const uint64_t addr = state().get(bp_->dmaddr);
      ic.block(bp_->s_select_dma_go, [&](std::span<uint8_t> dst) {
        dma_.from_guest(addr, dst);
      });
      ic.indirect(bp_->s_irq_sel);
      execute_cdb();
      return;
    }
    case kCmdTiDma:
      if (ic.branch(bp_->s_dmati_dirq)) {
        dma_transfer_info();
        ic.block(bp_->s_dmati_in);
        ic.indirect(bp_->s_irq_xfer);
      } else if (ic.branch(bp_->s_dmati_outq)) {
        dma_transfer_info();
        ic.block(bp_->s_dmati_out);
        ic.indirect(bp_->s_irq_xfer);
      } else {
        ic.block(bp_->s_dmati_bad);
      }
      return;
    case kCmdTi:
      ic.block(bp_->s_cmd_ti);
      return;
    case kCmdIccs:
      ic.block(bp_->s_cmd_iccs);
      ic.indirect(bp_->s_irq_iccs);
      return;
    case kCmdMsgAcc:
      ic.block(bp_->s_cmd_msgacc);
      ic.command_end(bp_->s_cmd_end);
      return;
    case kCmdSetAtn:
      ic.block(bp_->s_cmd_setatn);
      return;
    default:
      ic.block(bp_->s_cmd_unknown);
      return;
  }
}

}  // namespace sedspec::devices
