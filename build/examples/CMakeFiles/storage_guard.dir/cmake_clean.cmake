file(REMOVE_RECURSE
  "CMakeFiles/storage_guard.dir/storage_guard.cpp.o"
  "CMakeFiles/storage_guard.dir/storage_guard.cpp.o.d"
  "storage_guard"
  "storage_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
