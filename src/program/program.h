// DeviceProgram — the analyzable "source code" of an emulated device.
//
// The paper's pipeline consumes the device's C source through LLVM analysis
// passes: it finds the statements that manipulate control-structure fields,
// the guard expressions at conditional jumps, and the function-pointer
// call sites. A DeviceProgram is exactly that extraction (see DESIGN.md §1,
// "LLVM source analysis" substitution): a table of instrumentation sites,
// each with
//   - a block kind (paper §V-A: entry/exit/plain/conditional/command
//     decision/command end; entry and exit are synthesized per I/O round),
//   - its DSOD statement list (device-state operations),
//   - for conditional sites, the NBTD guard expression,
//   - for indirect sites, the function-pointer field being invoked,
//   - for command-decision sites, the expression that decodes the command,
//   - a synthetic code address (used by the IPT-style tracer for TIP packets
//     and address-range filtering).
//
// The same table drives the live device: its instrumentation context
// executes each site's DSOD with native (wrapping) semantics. This mirrors
// the paper's setup — one source, compiled into the running binary and
// analyzed offline — and guarantees the two views cannot drift.
//
// Vulnerability injection: a device builds its program for a given
// "QEMU version" (VulnerabilityConfig); unpatched versions contain the
// buggy statements/guards of the CVE being studied, patched versions the
// fixed ones, exactly like checking out a different QEMU tag.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "expr/stmt.h"
#include "program/layout.h"

namespace sedspec {

enum class BlockKind : uint8_t {
  kPlain = 0,
  kConditional,  // has an NBTD guard; emits taken/not-taken
  kIndirect,     // invokes a function-pointer field
  kCmdDecision,  // decodes the current device command
  kCmdEnd,       // current command completed
};

[[nodiscard]] std::string block_kind_name(BlockKind k);

struct SiteDesc {
  SiteId id = kInvalidSite;
  std::string name;  // source-location-like label, e.g. "fdc_write_data"
  BlockKind kind = BlockKind::kPlain;
  StmtList dsod;
  ExprRef guard;                  // kConditional only
  ParamId fp_param = kInvalidParam;  // kIndirect only
  ExprRef cmd_expr;               // kCmdDecision only
  FuncAddr addr = 0;              // synthetic code address of the block
};

class DeviceProgram {
 public:
  /// `code_base` anchors the device's synthetic code range; every site gets
  /// an address inside [code_base, code_base + 16 * site_count).
  DeviceProgram(std::string device_name, StateLayout layout,
                FuncAddr code_base);

  // --- Construction (used by each device's *_program.cc) -----------------
  SiteId add_plain(std::string name, StmtList dsod);
  SiteId add_conditional(std::string name, ExprRef guard, StmtList dsod = {});
  SiteId add_indirect(std::string name, ParamId fp_param, StmtList dsod = {});
  SiteId add_cmd_decision(std::string name, ExprRef cmd_expr,
                          StmtList dsod = {});
  SiteId add_cmd_end(std::string name, StmtList dsod = {});

  /// Registers a legitimate indirect-call target; returns its address.
  /// The runnable body lives in the device's function table
  /// (vdev::InstrumentationContext); the program only knows the addresses,
  /// which is what the indirect-jump check validates against.
  FuncAddr add_function(std::string name);

  /// Names a local variable (for diagnostics and the dataflow analyzer).
  LocalId add_local(std::string name);

  // --- Queries ------------------------------------------------------------
  [[nodiscard]] const std::string& device_name() const { return name_; }
  [[nodiscard]] const StateLayout& layout() const { return layout_; }
  [[nodiscard]] const SiteDesc& site(SiteId id) const;
  [[nodiscard]] size_t site_count() const { return sites_.size(); }
  [[nodiscard]] std::optional<SiteId> site_by_addr(FuncAddr addr) const;
  [[nodiscard]] std::optional<SiteId> site_by_name(
      const std::string& name) const;

  [[nodiscard]] FuncAddr code_base() const { return code_base_; }
  [[nodiscard]] FuncAddr code_end() const { return next_addr_; }

  [[nodiscard]] const std::map<FuncAddr, std::string>& functions() const {
    return functions_;
  }
  [[nodiscard]] bool is_function(FuncAddr addr) const {
    return functions_.contains(addr);
  }

  [[nodiscard]] const std::string& local_name(LocalId id) const;
  [[nodiscard]] size_t local_count() const { return local_names_.size(); }

 private:
  SiteId add_site(SiteDesc desc);

  std::string name_;
  StateLayout layout_;
  FuncAddr code_base_;
  FuncAddr next_addr_;
  std::vector<SiteDesc> sites_;
  std::map<FuncAddr, std::string> functions_;
  std::vector<std::string> local_names_;
};

}  // namespace sedspec
