# Empty compiler generated dependencies file for sedspec_tests.
# This may be replaced when dependencies are built.
