#include "guest/ehci_driver.h"

#include <algorithm>

#include "common/assert.h"

namespace sedspec::guest {

namespace {
using sedspec::devices::EhciDevice;
constexpr uint64_t kBase = EhciDevice::kBaseAddr;
}  // namespace

void EhciDriver::w32(uint64_t reg, uint32_t v) {
  ++io_count_;
  bus_->write(IoSpace::kMmio, kBase + reg, 4, v);
}

uint32_t EhciDriver::r32(uint64_t reg) {
  ++io_count_;
  return static_cast<uint32_t>(bus_->read(IoSpace::kMmio, kBase + reg, 4));
}

void EhciDriver::start_controller() {
  w32(EhciDevice::kRegUsbCmd, EhciDevice::kCmdRun);
  (void)r32(EhciDevice::kRegUsbSts);
  (void)r32(EhciDevice::kRegPortSc);
}

void EhciDriver::token(uint32_t pid, uint32_t len, uint64_t buf_addr) {
  mem_->w32(kQtdAddr, (pid & 3) | (len << 16));
  mem_->w32(kQtdAddr + 4, static_cast<uint32_t>(buf_addr));
  w32(EhciDevice::kRegAsyncListAddr, static_cast<uint32_t>(kQtdAddr));
  w32(EhciDevice::kRegUsbCmd,
      EhciDevice::kCmdRun | EhciDevice::kCmdDoorbell);
  const uint32_t sts = r32(EhciDevice::kRegUsbSts);
  if (sts & 1) {
    w32(EhciDevice::kRegUsbSts, 1);  // ack USBINT
  }
}

void EhciDriver::setup_packet(uint8_t bm_request_type, uint8_t b_request,
                              uint16_t w_value, uint16_t w_length) {
  uint8_t pkt[8] = {};
  pkt[0] = bm_request_type;
  pkt[1] = b_request;
  pkt[2] = static_cast<uint8_t>(w_value);
  pkt[3] = static_cast<uint8_t>(w_value >> 8);
  pkt[6] = static_cast<uint8_t>(w_length);
  pkt[7] = static_cast<uint8_t>(w_length >> 8);
  mem_->write(kSetupAddr, pkt);
  token(EhciDevice::kPidSetup, 8, kSetupAddr);
}

void EhciDriver::interrupt_poll() {
  token(EhciDevice::kPidIn, 8, kDataAddr);
}

void EhciDriver::status_out() { token(EhciDevice::kPidOut, 0, kDataAddr); }

void EhciDriver::read_block(uint16_t block, std::span<uint8_t> out,
                            uint32_t chunk) {
  setup_packet(0x80 | 0x40, EhciDevice::kReqRead, block,
               static_cast<uint16_t>(out.size()));
  size_t off = 0;
  while (off < out.size()) {
    const auto n =
        static_cast<uint32_t>(std::min<size_t>(chunk, out.size() - off));
    token(EhciDevice::kPidIn, n, kDataAddr + off);
    off += n;
  }
  status_out();
  mem_->read(kDataAddr, out);
}

void EhciDriver::read_block_short(uint16_t block, std::span<uint8_t> out) {
  setup_packet(0x80 | 0x40, EhciDevice::kReqRead, block,
               static_cast<uint16_t>(out.size()));
  // Request more than remains: the device clamps (short packet).
  token(EhciDevice::kPidIn, static_cast<uint32_t>(out.size() + 64), kDataAddr);
  status_out();
  mem_->read(kDataAddr, out);
}

void EhciDriver::write_block_short(uint16_t block,
                                   std::span<const uint8_t> data) {
  setup_packet(0x40, EhciDevice::kReqWrite, block,
               static_cast<uint16_t>(data.size()));
  mem_->write(kDataAddr, data);
  // One oversized OUT: the device clamps to the declared length.
  token(EhciDevice::kPidOut, static_cast<uint32_t>(data.size() + 32),
        kDataAddr);
  status_out();
}

void EhciDriver::write_block(uint16_t block, std::span<const uint8_t> data,
                             uint32_t chunk) {
  setup_packet(0x40, EhciDevice::kReqWrite, block,
               static_cast<uint16_t>(data.size()));
  mem_->write(kDataAddr, data);
  size_t off = 0;
  while (off < data.size()) {
    const auto n =
        static_cast<uint32_t>(std::min<size_t>(chunk, data.size() - off));
    token(EhciDevice::kPidOut, n, kDataAddr + off);
    off += n;
  }
  status_out();
}

}  // namespace sedspec::guest
