// ESP SCSI — NCR53C9x-style SCSI controller with an attached disk (after
// QEMU's hw/scsi/esp.c).
//
// PMIO byte registers at 0x230: TCLO (+0), TCMID (+1), FIFO (+2), CMD (+3),
// STATUS (+4, read), INTR (+5, read), SEQ (+6, read), and a board DMA
// address latch (+8..+11). The guest selects a target with ATN (0x42:
// CDB from the FIFO; 0xc2: DMA select — the CDB is fetched from guest
// memory with the transfer-count registers giving its length), transfers
// data with DMA TRANSFER INFO (0x90), completes with ICCS (0x11) and
// MESSAGE ACCEPTED (0x12).
//
// Vulnerabilities:
//  - CVE-2015-5158: the DMA select's CDB fetch trusts the transfer count —
//    get_cmd copies dmalen bytes into the 16-byte cmdbuf. The length
//    reaches the copy through a temporary (LLVM temp chain), so SEDSpec's
//    parameter check is blind; the exploit's oversized CDB carries an
//    untrained opcode, so the conditional-jump check flags the command
//    decode. Patched: dmalen bounded by the cmdbuf size.
//  - CVE-2016-4439: the FIFO write path stores through a temporary pointer
//    (ti_buf[ti_wptr++] with no bound); flooding the FIFO runs past the
//    16-byte ti_buf into the adjacent cursor fields. The store index is a
//    non-state temporary (parameter check blind, like CVE-2015-7504); the
//    public PoC then issues a bare TRANSFER INFO (0x10), a command no
//    benign driver uses, which the conditional-jump check flags. Patched:
//    bound check before the FIFO store.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "program/program.h"
#include "vdev/device.h"
#include "vdev/dma.h"

namespace sedspec::devices {

class EspScsiDevice final : public sedspec::Device {
 public:
  struct Vulns {
    bool cve_2015_5158 = false;  // unchecked DMA CDB length
    bool cve_2016_4439 = false;  // unchecked FIFO write pointer
  };

  static constexpr uint64_t kBasePort = 0x230;
  static constexpr uint64_t kPortSpan = 0x10;
  static constexpr uint64_t kRegTclo = 0x0;
  static constexpr uint64_t kRegTcmid = 0x1;
  static constexpr uint64_t kRegFifo = 0x2;
  static constexpr uint64_t kRegCmd = 0x3;
  static constexpr uint64_t kRegStatus = 0x4;
  static constexpr uint64_t kRegIntr = 0x5;
  static constexpr uint64_t kRegSeq = 0x6;
  static constexpr uint64_t kRegDma0 = 0x8;  // .. +3

  static constexpr uint32_t kTiBufSize = 16;
  static constexpr uint32_t kCmdBufSize = 16;
  static constexpr uint32_t kBlockSize = 512;
  static constexpr size_t kDiskSize = 8ull << 20;

  // Controller commands.
  static constexpr uint8_t kCmdFlush = 0x01;
  static constexpr uint8_t kCmdBusReset = 0x03;
  static constexpr uint8_t kCmdTi = 0x10;      // bare TI: not in training
  static constexpr uint8_t kCmdIccs = 0x11;
  static constexpr uint8_t kCmdMsgAcc = 0x12;
  static constexpr uint8_t kCmdSetAtn = 0x1a;  // rare-but-legal (FP source)
  static constexpr uint8_t kCmdSelAtn = 0x42;
  static constexpr uint8_t kCmdSelAtnDma = 0xc2;
  static constexpr uint8_t kCmdTiDma = 0x90;

  // SCSI opcodes (trained set).
  static constexpr uint8_t kScsiTestUnitReady = 0x00;
  static constexpr uint8_t kScsiRequestSense = 0x03;
  static constexpr uint8_t kScsiRead6 = 0x08;
  static constexpr uint8_t kScsiWrite6 = 0x0a;
  static constexpr uint8_t kScsiInquiry = 0x12;

  // Bus phases.
  static constexpr uint8_t kPhaseIdle = 0;
  static constexpr uint8_t kPhaseDataIn = 2;
  static constexpr uint8_t kPhaseDataOut = 3;
  static constexpr uint8_t kPhaseStatus = 4;

  EspScsiDevice(sedspec::GuestMemory* mem, Vulns vulns);
  explicit EspScsiDevice(sedspec::GuestMemory* mem)
      : EspScsiDevice(mem, Vulns{}) {}
  ~EspScsiDevice() override;

  uint64_t io_read(const sedspec::IoAccess& io) override;
  void io_write(const sedspec::IoAccess& io) override;
  std::optional<uint64_t> resolve_sync(
      sedspec::LocalId local, const sedspec::IoAccess& io,
      const sedspec::StateAccess& view) override;
  sedspec::DmaEngine* dma_engine() override { return &dma_; }

  [[nodiscard]] std::span<uint8_t> disk() { return disk_; }

  struct Blueprint;
  [[nodiscard]] const Blueprint& blueprint() const { return *bp_; }

 protected:
  void reset_device() override;

 private:
  EspScsiDevice(std::unique_ptr<Blueprint> bp, sedspec::GuestMemory* mem,
                Vulns vulns);

  void fifo_write(const sedspec::IoAccess& io);
  uint64_t fifo_read();
  void command_write(const sedspec::IoAccess& io);
  void execute_cdb();
  void dma_transfer_info();

  std::unique_ptr<Blueprint> bp_;
  Vulns vulns_;
  sedspec::DmaEngine dma_;
  std::vector<uint8_t> disk_;
  bool last_select_dma_ = false;
  // Pending data transfer derived from the current CDB (native bookkeeping,
  // like QEMU's async request state).
  uint64_t xfer_lba_ = 0;
  uint32_t xfer_len_ = 0;
  std::vector<uint8_t> inquiry_data_;
};

struct EspScsiDevice::Blueprint {
  std::unique_ptr<sedspec::DeviceProgram> program;

  // ESPState fields.
  sedspec::ParamId tclo, tcmid, status, intr, seq_reg, cmd_reg;
  sedspec::ParamId phase, selected, dmaddr;
  sedspec::ParamId irq_fn;  // before the buffers: FIFO overflow misses it
  sedspec::ParamId cmdbuf, cmdlen;
  sedspec::ParamId ti_buf, ti_rptr, ti_wptr, ti_size;

  // Locals.
  sedspec::LocalId l_ti_ptr;   // sync: FIFO store temp pointer
  sedspec::LocalId l_dmalen;   // sync: CDB fetch length temp
  sedspec::LocalId l_cdb0;     // sync: CDB opcode (may come via DMA)

  // Sites.
  sedspec::SiteId s_tclo_set, s_tcmid_set, s_dma0, s_dma1, s_dma2, s_dma3;
  sedspec::SiteId s_fifo_boundq, s_fifo_overrun, s_fifo_store;
  sedspec::SiteId s_fifo_r_emptyq, s_fifo_pop, s_fifo_r_empty;
  sedspec::SiteId s_status_read, s_intr_read, s_seq_read;
  sedspec::SiteId s_cmd_latch;
  sedspec::SiteId s_cmd_flush, s_cmd_busreset, s_irq_reset;
  sedspec::SiteId s_seln_emptyq, s_seln_noop;
  sedspec::SiteId s_select_n, s_getcmd_boundq, s_getcmd_fail, s_select_dma_go,
      s_irq_sel;
  sedspec::SiteId s_cdb_group;
  sedspec::SiteId s_cdb_tur, s_cdb_sense, s_cdb_read, s_cdb_write,
      s_cdb_inquiry, s_cdb_unknown, s_irq_exec;
  sedspec::SiteId s_cmd_ti, s_dmati_dirq, s_dmati_in, s_dmati_outq,
      s_dmati_out, s_dmati_bad, s_irq_xfer;
  sedspec::SiteId s_cmd_iccs, s_irq_iccs, s_cmd_msgacc, s_cmd_setatn,
      s_cmd_unknown;
  sedspec::SiteId s_cmd_end;

  sedspec::FuncAddr f_irq;
};

}  // namespace sedspec::devices
