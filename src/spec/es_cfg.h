// ES-CFG: the Execution Specification Control Flow Graph (paper §V).
//
// The execution specification of an emulated device: basic blocks carrying
// DSOD (device-state operations) and NBTD (guarded transitions), an entry
// dispatch keyed by the I/O access kind, per-command access-control vectors
// (the cmd_act table of Algorithm 1), trained indirect-jump target sets,
// trained per-round visit bounds, and the sync-point set from data-
// dependency recovery.
//
// An ES-CFG is built ONLY from device-state-change logs of benign training
// runs (src/spec/builder.h); branch directions, commands, I/O keys, and
// indirect targets never observed during training are simply absent — the
// ES-Checker treats encountering them at runtime as a violation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "expr/io.h"
#include "expr/stmt.h"
#include "program/program.h"

namespace sedspec::spec {

using sedspec::BlockKind;
using sedspec::ExprRef;
using sedspec::FuncAddr;
using sedspec::IoKey;
using sedspec::LocalId;
using sedspec::ParamId;
using sedspec::SiteId;
using sedspec::StmtList;

/// One direction of a conditional block's NBTD.
struct CondDir {
  bool observed = false;
  bool ends = false;            // this direction terminates the I/O round
  SiteId succ = sedspec::kInvalidSite;  // valid iff observed && !ends
};

struct EsBlock {
  SiteId site = sedspec::kInvalidSite;
  BlockKind kind = BlockKind::kPlain;
  std::string name;  // source label, for diagnostics

  /// DSOD filtered to selected device-state parameters, with computable
  /// locals inlined by data-dependency recovery.
  StmtList dsod;

  // NBTD (kConditional).
  ExprRef guard;  // rewritten
  CondDir taken;
  CondDir not_taken;

  // kCmdDecision: decodes the current device command.
  ExprRef cmd_expr;  // rewritten
  /// Per-command trained successor at THIS decision block (a device may
  /// have several decision blocks, e.g. command-byte latch and post-
  /// parameter execution dispatch).
  std::map<uint64_t, CondDir> cmd_dispatch;

  // kPlain / kIndirect / kCmdEnd transition.
  bool has_succ = false;
  SiteId succ = sedspec::kInvalidSite;
  bool ends = false;  // block observed terminating the round

  // kIndirect.
  ParamId fp_param = sedspec::kInvalidParam;
  std::set<FuncAddr> fp_targets;  // trained legitimate targets

  /// Maximum times this block was visited within a single training round.
  /// The checker allows a slack multiple of this before flagging a runaway
  /// loop (conditional-jump strategy; see checker/checker.h).
  uint64_t max_visits_per_round = 0;

  /// True if this conditional block was merged into a plain block during
  /// control-flow reduction (§V-C: both directions reach the same block).
  bool merged = false;
};

/// Entry in the command access control table (Algorithm 1's cmd_act).
struct CmdInfo {
  std::set<SiteId> access;  // blocks reachable while this command is active
  uint64_t observed = 0;    // training occurrences
};

class EsCfg {
 public:
  std::string device_name;

  /// Selected device-state parameters (layout order).
  std::vector<ParamId> params;

  /// I/O kind -> first basic block.
  std::map<IoKey, SiteId> entry_dispatch;

  std::map<SiteId, EsBlock> blocks;

  /// Command access control table.
  std::map<uint64_t, CmdInfo> commands;

  /// Locals that require runtime sync (paper §V-D).
  std::set<LocalId> sync_locals;

  uint64_t trained_rounds = 0;

  // Control-flow reduction statistics (ablation bench).
  uint64_t blocks_before_reduction = 0;
  uint64_t merged_conditionals = 0;
  uint64_t spliced_blocks = 0;

  [[nodiscard]] const EsBlock* block(SiteId site) const {
    auto it = blocks.find(site);
    return it == blocks.end() ? nullptr : &it->second;
  }
  [[nodiscard]] bool is_param(ParamId id) const;

  /// Total trained edges (for the effective-coverage metric, Table III).
  [[nodiscard]] uint64_t edge_count() const;

  /// Human-readable dump (examples/spec_inspector).
  [[nodiscard]] std::string to_text(
      const sedspec::DeviceProgram& program) const;
};

/// Canonical string keys for every trained edge of the ES-CFG (entry
/// dispatches, conditional directions, sequential successors, command
/// dispatches, indirect targets). Two ES-CFGs over the same DeviceProgram
/// can be compared edge-wise — the basis of the effective-coverage metric
/// (paper §VII-B1: covered paths relative to all legitimate-behavior
/// paths).
[[nodiscard]] std::set<std::string> edge_keys(const EsCfg& cfg);

}  // namespace sedspec::spec
