// Binary (de)serialization primitives.
//
// Used by the trace-packet encoder (src/trace), the device-state-change log
// (src/statelog), and ES-CFG persistence (src/spec). Everything is encoded
// little-endian with explicit widths; variable-length payloads are
// length-prefixed. ByteReader is fail-fast: reading past the end throws
// DecodeError — persisted bytes are untrusted input, not API arguments, so
// a truncated buffer is a recoverable input error rather than misuse.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/decode.h"

namespace sedspec {

class ByteWriter {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) { append(&v, sizeof(v)); }
  void u32(uint32_t v) { append(&v, sizeof(v)); }
  void u64(uint64_t v) { append(&v, sizeof(v)); }
  void i64(int64_t v) { append(&v, sizeof(v)); }

  void varbytes(std::span<const uint8_t> data) {
    u32(static_cast<uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void str(const std::string& s) {
    varbytes({reinterpret_cast<const uint8_t*>(s.data()), s.size()});
  }

  [[nodiscard]] const std::vector<uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] size_t size() const { return buf_.size(); }

 private:
  void append(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t u8() { return read<uint8_t>(); }
  uint16_t u16() { return read<uint16_t>(); }
  uint32_t u32() { return read<uint32_t>(); }
  uint64_t u64() { return read<uint64_t>(); }
  int64_t i64() { return read<int64_t>(); }

  std::vector<uint8_t> varbytes() {
    const uint32_t n = u32();
    SEDSPEC_CHECK_DECODE(pos_ + n <= data_.size(), "varbytes past end");
    std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                             data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string str() {
    auto raw = varbytes();
    return {raw.begin(), raw.end()};
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T read() {
    SEDSPEC_CHECK_DECODE(pos_ + sizeof(T) <= data_.size(), "read past end");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// Hex dump helper for diagnostics ("deadbeef" style, two chars per byte).
std::string to_hex(std::span<const uint8_t> data);

}  // namespace sedspec
