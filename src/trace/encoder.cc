#include "trace/encoder.h"

namespace sedspec::trace {

void PacketEncoder::flush_tnt() {
  if (tnt_count_ == 0) {
    return;
  }
  // Stop-bit encoding: highest set bit terminates, outcomes below it.
  const uint8_t header =
      static_cast<uint8_t>((1u << tnt_count_) | tnt_bits_);
  writer_.u8(kOpTnt);
  writer_.u8(header);
  tnt_bits_ = 0;
  tnt_count_ = 0;
}

void PacketEncoder::pge(FuncAddr addr) {
  flush_tnt();
  writer_.u8(kOpPge);
  writer_.u64(addr);
}

void PacketEncoder::pgd() {
  flush_tnt();
  writer_.u8(kOpPgd);
}

void PacketEncoder::tip(FuncAddr addr) {
  if (!filter_.pass(addr)) {
    ++dropped_;
    return;
  }
  flush_tnt();
  writer_.u8(kOpTip);
  writer_.u64(addr);
}

void PacketEncoder::tnt(bool taken) {
  tnt_bits_ |= static_cast<uint8_t>(taken ? (1u << tnt_count_) : 0u);
  ++tnt_count_;
  if (tnt_count_ == 6) {
    flush_tnt();
  }
}

std::vector<uint8_t> PacketEncoder::finish() {
  flush_tnt();
  return writer_.take();
}

}  // namespace sedspec::trace
