#include "faultinject/faultinject.h"

#include <memory>
#include <sstream>

#include "spec/serial.h"
#include "trace/packets.h"
#include "vdev/dma.h"

namespace sedspec::faultinject {

std::string layer_name(Layer layer) {
  switch (layer) {
    case Layer::kSpec:
      return "spec";
    case Layer::kTrace:
      return "trace";
    case Layer::kDma:
      return "dma";
    case Layer::kChecker:
      return "checker";
    case Layer::kControl:
      return "control";
  }
  return "?";
}

std::string control_fault_name(ControlFaultKind kind) {
  switch (kind) {
    case ControlFaultKind::kCorruptCandidate:
      return "corrupt-candidate";
    case ControlFaultKind::kFetchOutage:
      return "fetch-outage";
    case ControlFaultKind::kFetchTransient:
      return "fetch-transient";
    case ControlFaultKind::kShardCrash:
      return "shard-crash";
    case ControlFaultKind::kMetricDelay:
      return "metric-delay";
    case ControlFaultKind::kRecordCorrupt:
      return "record-corrupt";
    case ControlFaultKind::kCrashPromoting:
      return "crash-promoting";
  }
  return "?";
}

namespace {

void put_u32_le(std::vector<uint8_t>& bytes, size_t at, uint32_t v) {
  bytes[at] = static_cast<uint8_t>(v);
  bytes[at + 1] = static_cast<uint8_t>(v >> 8);
  bytes[at + 2] = static_cast<uint8_t>(v >> 16);
  bytes[at + 3] = static_cast<uint8_t>(v >> 24);
}

}  // namespace

std::string corrupt_spec(std::vector<uint8_t>& bytes, SpecFaultKind kind,
                         Rng& rng) {
  std::ostringstream desc;
  if (bytes.empty()) {
    return "empty artifact (no fault applied)";
  }
  switch (kind) {
    case SpecFaultKind::kBitFlip: {
      const size_t at = rng.below(bytes.size());
      const uint8_t bit = static_cast<uint8_t>(1u << rng.below(8));
      bytes[at] ^= bit;
      desc << "bit flip at byte " << at;
      break;
    }
    case SpecFaultKind::kTruncate: {
      const size_t cut = rng.below(bytes.size());
      bytes.resize(cut);
      desc << "truncated to " << cut << " bytes";
      break;
    }
    case SpecFaultKind::kVersionSkew: {
      if (bytes.size() < spec::kSpecEnvelopeSize) {
        bytes.clear();
        desc << "artifact smaller than envelope; cleared";
        break;
      }
      // Future or past format version; the CRC covers only the payload, so
      // the skew is what the loader must catch.
      const uint32_t skewed =
          spec::kSpecFormatVersion +
          (rng.chance(0.5) ? static_cast<uint32_t>(rng.range(1, 5))
                           : static_cast<uint32_t>(-rng.range(1, 2)));
      put_u32_le(bytes, 4, skewed);
      desc << "format version skewed to " << skewed;
      break;
    }
    case SpecFaultKind::kPayloadGarble: {
      if (bytes.size() <= spec::kSpecEnvelopeSize) {
        bytes.clear();
        desc << "no payload to garble; cleared";
        break;
      }
      const size_t flips = 1 + rng.below(8);
      for (size_t i = 0; i < flips; ++i) {
        const size_t at = spec::kSpecEnvelopeSize +
                          rng.below(bytes.size() - spec::kSpecEnvelopeSize);
        bytes[at] ^= static_cast<uint8_t>(1u << rng.below(8));
      }
      // Reseal: the envelope validates, so the *structural* decoder is what
      // stands between this corruption and the checker.
      spec::reseal(bytes);
      desc << "payload garbled (" << flips << " bit flips, envelope resealed)";
      break;
    }
  }
  return desc.str();
}

namespace {

struct PacketSpan {
  size_t offset = 0;
  size_t len = 0;
};

std::vector<PacketSpan> scan_packets(const std::vector<uint8_t>& bytes) {
  std::vector<PacketSpan> out;
  size_t off = 0;
  while (off < bytes.size()) {
    size_t len = 0;
    switch (bytes[off]) {
      case trace::kOpPge:
      case trace::kOpTip:
        len = 9;
        break;
      case trace::kOpPgd:
        len = 1;
        break;
      case trace::kOpTnt:
        len = 2;
        break;
      default:
        return out;  // already-corrupt tail: stop scanning
    }
    if (off + len > bytes.size()) {
      return out;
    }
    out.push_back(PacketSpan{off, len});
    off += len;
  }
  return out;
}

}  // namespace

size_t corrupt_packets(std::vector<uint8_t>& bytes, TraceFaultKind kind,
                       size_t count, Rng& rng) {
  size_t applied = 0;
  for (size_t i = 0; i < count; ++i) {
    const std::vector<PacketSpan> packets = scan_packets(bytes);
    if (packets.empty()) {
      break;
    }
    const PacketSpan p = packets[rng.below(packets.size())];
    switch (kind) {
      case TraceFaultKind::kDropPacket:
        bytes.erase(bytes.begin() + static_cast<ptrdiff_t>(p.offset),
                    bytes.begin() + static_cast<ptrdiff_t>(p.offset + p.len));
        break;
      case TraceFaultKind::kDuplicatePacket: {
        const std::vector<uint8_t> copy(
            bytes.begin() + static_cast<ptrdiff_t>(p.offset),
            bytes.begin() + static_cast<ptrdiff_t>(p.offset + p.len));
        bytes.insert(bytes.begin() + static_cast<ptrdiff_t>(p.offset + p.len),
                     copy.begin(), copy.end());
        break;
      }
      case TraceFaultKind::kGarbleByte:
        bytes[p.offset + rng.below(p.len)] ^=
            static_cast<uint8_t>(1u << rng.below(8));
        break;
    }
    ++applied;
  }
  return applied;
}

bool arm_dma_faults(Device& device, DmaFaultKind kind, size_t count,
                    uint64_t seed) {
  DmaEngine* dma = device.dma_engine();
  if (dma == nullptr) {
    return false;
  }
  auto remaining = std::make_shared<size_t>(count);
  auto rng = std::make_shared<Rng>(seed);
  dma->set_fault_hook(
      [remaining, rng, kind](bool /*is_read*/, uint64_t /*addr*/,
                             size_t len) -> std::optional<DmaEngine::DmaFault> {
        if (*remaining == 0) {
          return std::nullopt;
        }
        --*remaining;
        DmaEngine::DmaFault fault;
        if (kind == DmaFaultKind::kFailTransfer) {
          fault.fail = true;
        } else {
          fault.short_len = len == 0 ? 0 : rng->below(len);
        }
        return fault;
      });
  return true;
}

void disarm_dma_faults(Device& device) {
  if (DmaEngine* dma = device.dma_engine(); dma != nullptr) {
    dma->set_fault_hook(nullptr);
  }
}

void arm_checker_faults(checker::EsChecker& checker, CheckerFaultKind kind,
                        size_t count, uint64_t seed) {
  auto remaining = std::make_shared<size_t>(count);
  auto rng = std::make_shared<Rng>(seed);
  // attach() replaces the whole hook set; start from the current hooks so
  // arming a fault never silently detaches a report sink or flight ring.
  checker::CheckerHooks hooks = checker.hooks();
  hooks.fault_hook =
      [remaining, rng,
       kind](StateArena& shadow) -> checker::InternalFault {
        checker::InternalFault fault;
        if (*remaining == 0) {
          return fault;
        }
        --*remaining;
        switch (kind) {
          case CheckerFaultKind::kThrow:
            fault.throw_in_traversal = true;
            break;
          case CheckerFaultKind::kShadowCorrupt: {
            // Overwrite one random scalar field of the shadow state — the
            // simulation diverges from the device mid-round.
            const StateLayout& layout = shadow.layout();
            const size_t n = layout.field_count();
            for (size_t tries = 0; tries < n; ++tries) {
              const auto id = static_cast<ParamId>(rng->below(n));
              if (!layout.field(id).is_buffer()) {
                shadow.set_param(id, rng->next_u64());
                break;
              }
            }
            break;
          }
          case CheckerFaultKind::kRunaway:
            fault.suppress_termination = true;
            break;
        }
        return fault;
      };
  checker.attach(std::move(hooks));
}

void disarm_checker_faults(checker::EsChecker& checker) {
  checker::CheckerHooks hooks = checker.hooks();
  hooks.fault_hook = nullptr;
  checker.attach(std::move(hooks));
}

}  // namespace sedspec::faultinject
