#include "spec/serial.h"

#include "common/crc32.h"
#include "common/decode.h"

namespace sedspec::spec {

namespace {

constexpr uint32_t kMagic = 0x53455343u;  // "SESC"

/// Corrupt payloads could otherwise nest unary/cast chains deep enough to
/// overflow the stack; no legitimate device expression comes close.
constexpr int kMaxExprDepth = 256;

void put_u32_at(std::vector<uint8_t>& bytes, size_t pos, uint32_t v) {
  bytes[pos + 0] = static_cast<uint8_t>(v);
  bytes[pos + 1] = static_cast<uint8_t>(v >> 8);
  bytes[pos + 2] = static_cast<uint8_t>(v >> 16);
  bytes[pos + 3] = static_cast<uint8_t>(v >> 24);
}

uint32_t get_u32_at(std::span<const uint8_t> bytes, size_t pos) {
  return static_cast<uint32_t>(bytes[pos]) |
         (static_cast<uint32_t>(bytes[pos + 1]) << 8) |
         (static_cast<uint32_t>(bytes[pos + 2]) << 16) |
         (static_cast<uint32_t>(bytes[pos + 3]) << 24);
}

template <typename Enum>
Enum decode_enum(uint8_t raw, Enum max, const char* what) {
  SEDSPEC_CHECK_DECODE(raw <= static_cast<uint8_t>(max), what);
  return static_cast<Enum>(raw);
}

ExprRef read_expr_at(sedspec::ByteReader& r, int depth);

}  // namespace

std::string load_status_name(LoadStatus s) {
  switch (s) {
    case LoadStatus::kOk:
      return "ok";
    case LoadStatus::kTooShort:
      return "too short";
    case LoadStatus::kBadMagic:
      return "bad magic";
    case LoadStatus::kVersionSkew:
      return "version skew";
    case LoadStatus::kLengthMismatch:
      return "length mismatch";
    case LoadStatus::kCrcMismatch:
      return "crc mismatch";
    case LoadStatus::kMalformed:
      return "malformed payload";
    case LoadStatus::kDeviceMismatch:
      return "device mismatch";
  }
  return "?";
}

std::string LoadError::describe() const {
  std::string out = load_status_name(status);
  if (!detail.empty()) {
    out += ": " + detail;
  }
  return out;
}

void write_expr(sedspec::ByteWriter& w, const ExprRef& e) {
  if (e == nullptr) {
    w.u8(0xff);
    return;
  }
  w.u8(static_cast<uint8_t>(e->kind));
  w.u8(static_cast<uint8_t>(e->type));
  switch (e->kind) {
    case sedspec::ExprKind::kConst:
      w.u64(e->const_value);
      break;
    case sedspec::ExprKind::kParam:
      w.u16(e->param);
      break;
    case sedspec::ExprKind::kLocal:
      w.u16(e->local);
      break;
    case sedspec::ExprKind::kIoField:
      w.u8(static_cast<uint8_t>(e->io_field));
      break;
    case sedspec::ExprKind::kBufLoad:
      w.u16(e->param);
      write_expr(w, e->lhs);
      break;
    case sedspec::ExprKind::kUnary:
      w.u8(static_cast<uint8_t>(e->un_op));
      write_expr(w, e->lhs);
      break;
    case sedspec::ExprKind::kBinary:
      w.u8(static_cast<uint8_t>(e->bin_op));
      write_expr(w, e->lhs);
      write_expr(w, e->rhs);
      break;
    case sedspec::ExprKind::kCast:
      write_expr(w, e->lhs);
      break;
  }
}

namespace {

ExprRef read_expr_at(sedspec::ByteReader& r, int depth) {
  SEDSPEC_CHECK_DECODE(depth < kMaxExprDepth, "expression nests too deep");
  const uint8_t tag = r.u8();
  if (tag == 0xff) {
    return nullptr;
  }
  sedspec::Expr e;
  e.kind = decode_enum(tag, sedspec::ExprKind::kCast, "bad expression tag");
  e.type = decode_enum(r.u8(), sedspec::IntType::kI64, "bad expression type");
  switch (e.kind) {
    case sedspec::ExprKind::kConst:
      e.const_value = r.u64();
      break;
    case sedspec::ExprKind::kParam:
      e.param = r.u16();
      break;
    case sedspec::ExprKind::kLocal:
      e.local = r.u16();
      break;
    case sedspec::ExprKind::kIoField:
      e.io_field =
          decode_enum(r.u8(), sedspec::IoField::kSpace, "bad I/O field tag");
      break;
    case sedspec::ExprKind::kBufLoad:
      e.param = r.u16();
      e.lhs = read_expr_at(r, depth + 1);
      break;
    case sedspec::ExprKind::kUnary:
      e.un_op = decode_enum(r.u8(), sedspec::UnaryOp::kLogicalNot,
                            "bad unary operator");
      e.lhs = read_expr_at(r, depth + 1);
      break;
    case sedspec::ExprKind::kBinary:
      e.bin_op =
          decode_enum(r.u8(), sedspec::BinaryOp::kLOr, "bad binary operator");
      e.lhs = read_expr_at(r, depth + 1);
      e.rhs = read_expr_at(r, depth + 1);
      break;
    case sedspec::ExprKind::kCast:
      e.lhs = read_expr_at(r, depth + 1);
      break;
  }
  return std::make_shared<const sedspec::Expr>(std::move(e));
}

}  // namespace

ExprRef read_expr(sedspec::ByteReader& r) { return read_expr_at(r, 0); }

void write_stmt(sedspec::ByteWriter& w, const sedspec::Stmt& s) {
  w.u8(static_cast<uint8_t>(s.kind));
  w.u16(s.param);
  w.u16(s.local);
  write_expr(w, s.value);
  write_expr(w, s.index);
  write_expr(w, s.count);
  w.str(s.note);
}

sedspec::Stmt read_stmt(sedspec::ByteReader& r) {
  sedspec::Stmt s;
  s.kind =
      decode_enum(r.u8(), sedspec::StmtKind::kBufFill, "bad statement kind");
  s.param = r.u16();
  s.local = r.u16();
  s.value = read_expr(r);
  s.index = read_expr(r);
  s.count = read_expr(r);
  s.note = r.str();
  return s;
}

namespace {

void write_cond_dir(sedspec::ByteWriter& w, const CondDir& d) {
  w.u8(d.observed ? 1 : 0);
  w.u8(d.ends ? 1 : 0);
  w.u16(d.succ);
}

CondDir read_cond_dir(sedspec::ByteReader& r) {
  CondDir d;
  d.observed = r.u8() != 0;
  d.ends = r.u8() != 0;
  d.succ = r.u16();
  return d;
}

void write_payload(sedspec::ByteWriter& w, const EsCfg& cfg) {
  w.str(cfg.device_name);
  w.u64(cfg.trained_rounds);
  w.u64(cfg.blocks_before_reduction);
  w.u64(cfg.merged_conditionals);
  w.u64(cfg.spliced_blocks);

  w.u32(static_cast<uint32_t>(cfg.params.size()));
  for (ParamId p : cfg.params) {
    w.u16(p);
  }

  w.u32(static_cast<uint32_t>(cfg.entry_dispatch.size()));
  for (const auto& [key, site] : cfg.entry_dispatch) {
    w.u8(static_cast<uint8_t>(key.space));
    w.u64(key.addr);
    w.u8(key.is_write ? 1 : 0);
    w.u16(site);
  }

  w.u32(static_cast<uint32_t>(cfg.blocks.size()));
  for (const auto& [site, b] : cfg.blocks) {
    w.u16(site);
    w.u8(static_cast<uint8_t>(b.kind));
    w.str(b.name);
    w.u32(static_cast<uint32_t>(b.dsod.size()));
    for (const auto& s : b.dsod) {
      write_stmt(w, s);
    }
    write_expr(w, b.guard);
    write_expr(w, b.cmd_expr);
    write_cond_dir(w, b.taken);
    write_cond_dir(w, b.not_taken);
    w.u8(b.has_succ ? 1 : 0);
    w.u16(b.succ);
    w.u8(b.ends ? 1 : 0);
    w.u16(b.fp_param);
    w.u32(static_cast<uint32_t>(b.fp_targets.size()));
    for (FuncAddr t : b.fp_targets) {
      w.u64(t);
    }
    w.u64(b.max_visits_per_round);
    w.u8(b.merged ? 1 : 0);
    w.u32(static_cast<uint32_t>(b.cmd_dispatch.size()));
    for (const auto& [cmd, d] : b.cmd_dispatch) {
      w.u64(cmd);
      write_cond_dir(w, d);
    }
  }

  w.u32(static_cast<uint32_t>(cfg.commands.size()));
  for (const auto& [cmd, ci] : cfg.commands) {
    w.u64(cmd);
    w.u32(static_cast<uint32_t>(ci.access.size()));
    for (SiteId s : ci.access) {
      w.u16(s);
    }
    w.u64(ci.observed);
  }

  w.u32(static_cast<uint32_t>(cfg.sync_locals.size()));
  for (LocalId l : cfg.sync_locals) {
    w.u16(l);
  }
}

EsCfg read_payload(std::span<const uint8_t> payload) {
  sedspec::ByteReader r(payload);
  EsCfg cfg;
  cfg.device_name = r.str();
  cfg.trained_rounds = r.u64();
  cfg.blocks_before_reduction = r.u64();
  cfg.merged_conditionals = r.u64();
  cfg.spliced_blocks = r.u64();

  const uint32_t n_params = r.u32();
  for (uint32_t i = 0; i < n_params; ++i) {
    cfg.params.push_back(r.u16());
  }

  const uint32_t n_entries = r.u32();
  for (uint32_t i = 0; i < n_entries; ++i) {
    IoKey key;
    key.space =
        decode_enum(r.u8(), sedspec::IoSpace::kMmio, "bad I/O space tag");
    key.addr = r.u64();
    key.is_write = r.u8() != 0;
    cfg.entry_dispatch[key] = r.u16();
  }

  const uint32_t n_blocks = r.u32();
  for (uint32_t i = 0; i < n_blocks; ++i) {
    const SiteId site = r.u16();
    EsBlock b;
    b.site = site;
    b.kind = decode_enum(r.u8(), BlockKind::kCmdEnd, "bad block kind");
    b.name = r.str();
    const uint32_t n_stmts = r.u32();
    for (uint32_t j = 0; j < n_stmts; ++j) {
      b.dsod.push_back(read_stmt(r));
    }
    b.guard = read_expr(r);
    b.cmd_expr = read_expr(r);
    b.taken = read_cond_dir(r);
    b.not_taken = read_cond_dir(r);
    b.has_succ = r.u8() != 0;
    b.succ = r.u16();
    b.ends = r.u8() != 0;
    b.fp_param = r.u16();
    const uint32_t n_targets = r.u32();
    for (uint32_t j = 0; j < n_targets; ++j) {
      b.fp_targets.insert(r.u64());
    }
    b.max_visits_per_round = r.u64();
    b.merged = r.u8() != 0;
    const uint32_t n_dispatch = r.u32();
    for (uint32_t j = 0; j < n_dispatch; ++j) {
      const uint64_t cmd = r.u64();
      b.cmd_dispatch[cmd] = read_cond_dir(r);
    }
    cfg.blocks.emplace(site, std::move(b));
  }

  const uint32_t n_cmds = r.u32();
  for (uint32_t i = 0; i < n_cmds; ++i) {
    const uint64_t cmd = r.u64();
    CmdInfo ci;
    const uint32_t n_access = r.u32();
    for (uint32_t j = 0; j < n_access; ++j) {
      ci.access.insert(r.u16());
    }
    ci.observed = r.u64();
    cfg.commands.emplace(cmd, std::move(ci));
  }

  const uint32_t n_sync = r.u32();
  for (uint32_t i = 0; i < n_sync; ++i) {
    cfg.sync_locals.insert(r.u16());
  }
  SEDSPEC_CHECK_DECODE(r.done(), "trailing bytes after ES-CFG");
  return cfg;
}

}  // namespace

std::vector<uint8_t> serialize(const EsCfg& cfg) {
  sedspec::ByteWriter w;
  w.u32(kMagic);
  w.u32(kSpecFormatVersion);
  w.u32(0);  // payload length, patched below
  w.u32(0);  // payload crc32, patched below
  write_payload(w, cfg);
  std::vector<uint8_t> bytes = w.take();
  reseal(bytes);
  return bytes;
}

void reseal(std::vector<uint8_t>& bytes) {
  if (bytes.size() < kSpecEnvelopeSize) {
    return;
  }
  const std::span<const uint8_t> payload{bytes.data() + kSpecEnvelopeSize,
                                         bytes.size() - kSpecEnvelopeSize};
  put_u32_at(bytes, 8, static_cast<uint32_t>(payload.size()));
  put_u32_at(bytes, 12, crc32(payload));
}

LoadResult load(std::span<const uint8_t> bytes) {
  LoadResult out;
  auto fail = [&out](LoadStatus status, std::string detail) -> LoadResult& {
    out.error.status = status;
    out.error.detail = std::move(detail);
    return out;
  };

  if (bytes.size() < kSpecEnvelopeSize) {
    return fail(LoadStatus::kTooShort,
                std::to_string(bytes.size()) + " bytes, envelope needs " +
                    std::to_string(kSpecEnvelopeSize));
  }
  if (get_u32_at(bytes, 0) != kMagic) {
    return fail(LoadStatus::kBadMagic, "not an ES-CFG artifact");
  }
  const uint32_t version = get_u32_at(bytes, 4);
  if (version != kSpecFormatVersion) {
    return fail(LoadStatus::kVersionSkew,
                "format v" + std::to_string(version) + ", expected v" +
                    std::to_string(kSpecFormatVersion));
  }
  const std::span<const uint8_t> payload = bytes.subspan(kSpecEnvelopeSize);
  if (get_u32_at(bytes, 8) != payload.size()) {
    return fail(LoadStatus::kLengthMismatch,
                "envelope claims " + std::to_string(get_u32_at(bytes, 8)) +
                    " payload bytes, " + std::to_string(payload.size()) +
                    " present");
  }
  if (get_u32_at(bytes, 12) != crc32(payload)) {
    return fail(LoadStatus::kCrcMismatch, "payload integrity check failed");
  }
  try {
    out.cfg = read_payload(payload);
  } catch (const sedspec::DecodeError& e) {
    return fail(LoadStatus::kMalformed, e.what());
  }
  return out;
}

EsCfg deserialize(std::span<const uint8_t> bytes) {
  LoadResult r = load(bytes);
  SEDSPEC_CHECK_DECODE(r.ok(), r.error.describe());
  return std::move(*r.cfg);
}

}  // namespace sedspec::spec
