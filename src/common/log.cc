#include "common/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace sedspec {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> g_level{[] {
    const char* env = std::getenv("SEDSPEC_LOG_LEVEL");
    return env != nullptr ? parse_log_level(env, LogLevel::kWarn)
                          : LogLevel::kWarn;
  }()};
  return g_level;
}

}  // namespace

uint64_t monotonic_ns() {
  // The epoch is captured on first use; all obs timestamps and log prefixes
  // share it, so they correlate within one process.
  static const auto t0 = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

LogLevel parse_log_level(std::string_view text, LogLevel fallback) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") {
    return LogLevel::kDebug;
  }
  if (lower == "info" || lower == "1") {
    return LogLevel::kInfo;
  }
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarn;
  }
  if (lower == "error" || lower == "3") {
    return LogLevel::kError;
  }
  if (lower == "off" || lower == "none" || lower == "silent" ||
      lower == "4") {
    return LogLevel::kOff;
  }
  return fallback;
}

LogLevel log_level() { return level_ref().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_ref().store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < log_level()) {
    return;
  }
  const uint64_t ns = monotonic_ns();
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%llu.%06llu",
                static_cast<unsigned long long>(ns / 1000000000ull),
                static_cast<unsigned long long>((ns / 1000ull) % 1000000ull));
  std::cerr << "[" << stamp << "] [" << level_name(level) << "] " << component
            << ": " << message << "\n";
}

}  // namespace sedspec
