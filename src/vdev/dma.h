// DMA engine.
//
// Thin accounting layer between a device and guest memory: all bulk
// transfers go through it so benchmarks can report DMA byte counts and
// tests can assert on transfer activity.
#pragma once

#include <cstdint>
#include <span>

#include "vdev/memory.h"

namespace sedspec {

class DmaEngine {
 public:
  explicit DmaEngine(GuestMemory* mem) : mem_(mem) {}

  /// Guest memory -> device buffer. Returns false on an out-of-range guest
  /// address (the span is zero-filled).
  bool from_guest(uint64_t addr, std::span<uint8_t> out) {
    bytes_read_ += out.size();
    ++transfers_;
    return mem_->read(addr, out);
  }

  /// Device buffer -> guest memory. Returns false on out-of-range address.
  bool to_guest(uint64_t addr, std::span<const uint8_t> data) {
    bytes_written_ += data.size();
    ++transfers_;
    return mem_->write(addr, data);
  }

  [[nodiscard]] GuestMemory& memory() { return *mem_; }

  [[nodiscard]] uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] uint64_t transfer_count() const { return transfers_; }
  void reset_stats() { bytes_read_ = bytes_written_ = transfers_ = 0; }

 private:
  GuestMemory* mem_;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t transfers_ = 0;
};

}  // namespace sedspec
