// Guest physical memory.
//
// A flat RAM image shared by the guest-side driver models (which place DMA
// descriptors and data buffers in it) and the devices (which access it
// through the DmaEngine). Out-of-range accesses never fault the host: reads
// return zeroes and writes are dropped, with a counter — a device given a
// hostile DMA address must not crash the harness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sedspec {

class GuestMemory {
 public:
  explicit GuestMemory(size_t size) : ram_(size, 0) {}

  [[nodiscard]] size_t size() const { return ram_.size(); }

  /// Returns false (and zero-fills `out`) if the range is out of bounds.
  bool read(uint64_t addr, std::span<uint8_t> out) const;
  /// Returns false (and drops the data) if the range is out of bounds.
  bool write(uint64_t addr, std::span<const uint8_t> data);

  [[nodiscard]] uint8_t r8(uint64_t addr) const { return rn<uint8_t>(addr); }
  [[nodiscard]] uint16_t r16(uint64_t addr) const { return rn<uint16_t>(addr); }
  [[nodiscard]] uint32_t r32(uint64_t addr) const { return rn<uint32_t>(addr); }
  [[nodiscard]] uint64_t r64(uint64_t addr) const { return rn<uint64_t>(addr); }

  void w8(uint64_t addr, uint8_t v) { wn(addr, v); }
  void w16(uint64_t addr, uint16_t v) { wn(addr, v); }
  void w32(uint64_t addr, uint32_t v) { wn(addr, v); }
  void w64(uint64_t addr, uint64_t v) { wn(addr, v); }

  void fill(uint64_t addr, size_t len, uint8_t byte);

  /// Count of dropped/zero-filled out-of-range accesses.
  [[nodiscard]] uint64_t fault_count() const { return faults_; }

 private:
  template <typename T>
  [[nodiscard]] T rn(uint64_t addr) const {
    T v{};
    read(addr, {reinterpret_cast<uint8_t*>(&v), sizeof(T)});
    return v;
  }

  template <typename T>
  void wn(uint64_t addr, T v) {
    write(addr, {reinterpret_cast<const uint8_t*>(&v), sizeof(T)});
  }

  std::vector<uint8_t> ram_;
  mutable uint64_t faults_ = 0;
};

}  // namespace sedspec
