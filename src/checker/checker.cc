#include "checker/checker.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"
#include "expr/eval.h"
#include "obs/trace.h"

namespace sedspec::checker {

using sedspec::EvalCtx;
using sedspec::EvalDiag;
using sedspec::ExprRef;
using sedspec::Stmt;
using sedspec::StmtKind;
using spec::CondDir;
using spec::EsBlock;

std::string strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kParameter:
      return "parameter check";
    case Strategy::kIndirectJump:
      return "indirect jump check";
    case Strategy::kConditionalJump:
      return "conditional jump check";
  }
  return "?";
}

Severity severity_of(Strategy s) {
  switch (s) {
    case Strategy::kParameter:
      return Severity::kCritical;
    case Strategy::kIndirectJump:
      return Severity::kHigh;
    case Strategy::kConditionalJump:
      return Severity::kWarning;
  }
  return Severity::kWarning;
}

std::string failure_policy_name(FailurePolicy p) {
  switch (p) {
    case FailurePolicy::kFailClosed:
      return "fail-closed";
    case FailurePolicy::kFailOpen:
      return "fail-open";
  }
  return "?";
}

// Tripwire: a new CheckerStats counter that is not summed below would
// silently vanish from fleet aggregation. If this assert fires, extend
// merge(), publish_checker_stats(), and the field-by-field merge test
// (checker_set_test.cc), then bump the expected size.
static_assert(sizeof(CheckerStats) == 19 * sizeof(uint64_t),
              "CheckerStats changed: update merge()/publish_checker_stats()/"
              "the merge unit test, then this assert");

void CheckerStats::merge(const CheckerStats& other) {
  rounds += other.rounds;
  clean_rounds += other.clean_rounds;
  blocked += other.blocked;
  warnings += other.warnings;
  for (int i = 0; i < 3; ++i) {
    violations_by_strategy[i] += other.violations_by_strategy[i];
  }
  rollbacks += other.rollbacks;
  total_steps += other.total_steps;
  contained_faults += other.contained_faults;
  fail_closed_faults += other.fail_closed_faults;
  fail_open_faults += other.fail_open_faults;
  degraded_rounds += other.degraded_rounds;
  quarantines += other.quarantines;
  self_heals += other.self_heals;
  check_ns += other.check_ns;
  reports_emitted += other.reports_emitted;
  reports_offered += other.reports_offered;
  redeploy_retries += other.redeploy_retries;
}

std::string report_kind_name(Report::Kind k) {
  switch (k) {
    case Report::Kind::kViolation:
      return "violation";
    case Report::Kind::kBlocked:
      return "blocked";
    case Report::Kind::kQuarantine:
      return "quarantine";
    case Report::Kind::kSelfHeal:
      return "self_heal";
    case Report::Kind::kDegraded:
      return "degraded";
    case Report::Kind::kRedeploy:
      return "redeploy";
  }
  return "?";
}

std::string strategy_set_name(const CheckerConfig& config) {
  const int enabled = (config.enable_parameter ? 1 : 0) +
                      (config.enable_indirect ? 1 : 0) +
                      (config.enable_conditional ? 1 : 0);
  if (enabled == 3) {
    return "all";
  }
  if (enabled == 0) {
    return "none";
  }
  if (enabled == 1) {
    if (config.enable_parameter) {
      return "parameter";
    }
    if (config.enable_indirect) {
      return "indirect";
    }
    return "conditional";
  }
  return "mixed";
}

void publish_checker_stats(obs::MetricsRegistry& registry,
                           const std::string& device_label,
                           const CheckerStats& stats) {
  const std::string labels = obs::label({{"device", device_label}});
  auto set = [&](std::string_view name, uint64_t value) {
    registry.gauge(name, labels).set(static_cast<int64_t>(value));
  };
  set("checker_rounds", stats.rounds);
  set("checker_clean_rounds", stats.clean_rounds);
  set("checker_blocked", stats.blocked);
  set("checker_warnings", stats.warnings);
  set("checker_violations_parameter", stats.violations_by_strategy[0]);
  set("checker_violations_indirect", stats.violations_by_strategy[1]);
  set("checker_violations_conditional", stats.violations_by_strategy[2]);
  set("checker_rollbacks", stats.rollbacks);
  set("checker_total_steps", stats.total_steps);
  set("checker_contained_faults", stats.contained_faults);
  set("checker_fail_closed_faults", stats.fail_closed_faults);
  set("checker_fail_open_faults", stats.fail_open_faults);
  set("checker_degraded_rounds", stats.degraded_rounds);
  set("checker_quarantines", stats.quarantines);
  set("checker_self_heals", stats.self_heals);
  set("checker_check_ns", stats.check_ns);
  set("checker_reports_emitted", stats.reports_emitted);
  set("checker_reports_offered", stats.reports_offered);
  set("checker_redeploy_retries", stats.redeploy_retries);
}

std::string severity_name(Severity s) {
  switch (s) {
    case Severity::kCritical:
      return "critical";
    case Severity::kHigh:
      return "high";
    case Severity::kWarning:
      return "warning";
  }
  return "?";
}

bool CheckResult::any(Strategy s) const {
  for (const Violation& v : violations) {
    if (v.strategy == s) {
      return true;
    }
  }
  return false;
}

EsChecker::EsChecker(const spec::EsCfg* cfg, Device* device,
                     CheckerConfig config)
    : cfg_(cfg),
      device_(device),
      config_(config),
      shadow_(&device->program().layout()) {
  SEDSPEC_REQUIRE(cfg != nullptr && device != nullptr);
  SEDSPEC_REQUIRE_MSG(cfg->device_name == device->program().device_name(),
                      "specification/device mismatch");
  shadow_.copy_from(device->state());
  latency_hist_ = &obs::metrics().histogram(
      "checker_check_latency_ns",
      obs::label({{"device", metrics_label()},
                  {"strategies", strategy_set_name(config_)}}));
  violations_counter_ = &obs::metrics().counter(
      "checker_violations_total", obs::label({{"device", metrics_label()}}));
  build_aux();
  if (config_.rollback_on_violation) {
    checkpoint_ = std::make_unique<sedspec::StateArena>(
        &device->program().layout());
    checkpoint_->copy_from(device->state());
  }
}

namespace {
/// Delegation helper: validates the snapshot before the raw-cfg constructor
/// dereferences it.
const spec::EsCfg* cfg_of(const spec::SnapshotRef& snapshot) {
  SEDSPEC_REQUIRE_MSG(snapshot != nullptr,
                      "checker attached to a null spec snapshot");
  return &snapshot->cfg;
}
}  // namespace

EsChecker::EsChecker(spec::SnapshotRef snapshot, Device* device,
                     CheckerConfig config)
    : EsChecker(cfg_of(snapshot), device, std::move(config)) {
  snapshot_ = std::move(snapshot);
}

const std::string& EsChecker::metrics_label() const {
  return config_.metrics_label.empty() ? cfg_->device_name
                                       : config_.metrics_label;
}

void EsChecker::set_report_sink(ReportSink* sink, uint32_t shard_id) {
  report_sink_ = sink;
  shard_id_ = shard_id;
}

void EsChecker::emit_report(Report::Kind kind, Strategy strategy, SiteId site,
                            uint64_t value) {
  if (report_sink_ == nullptr) {
    return;
  }
  Report r;
  r.kind = kind;
  r.strategy = strategy;
  r.shard = shard_id_;
  r.site = site;
  r.seq = report_seq_++;
  r.value = value;
  // offer() must never block (bounded queue, try-push): a full queue drops
  // the report and the check path keeps its latency bound. The sink counts
  // its own rejections (single source of truth, attributed per shard); we
  // only track offered vs accepted so drops stay derivable per checker.
  ++stats_.reports_offered;
  if (report_sink_->offer(r)) {
    ++stats_.reports_emitted;
  }
}

void EsChecker::resync() {
  shadow_.copy_from(device_->state());
  active_cmd_.reset();
}

bool EsChecker::strategy_enabled(Strategy s) const {
  switch (s) {
    case Strategy::kParameter:
      return config_.enable_parameter;
    case Strategy::kIndirectJump:
      return config_.enable_indirect;
    case Strategy::kConditionalJump:
      return config_.enable_conditional;
  }
  return false;
}

bool EsChecker::index_is_state_derived(const ExprRef& e) const {
  if (e == nullptr) {
    return false;
  }
  bool has_param = false;
  bool has_sync_local = false;
  sedspec::visit(*e, [&](const sedspec::Expr& n) {
    if (n.kind == sedspec::ExprKind::kParam ||
        n.kind == sedspec::ExprKind::kBufLoad) {
      if (cfg_->is_param(n.param)) {
        has_param = true;
      }
    } else if (n.kind == sedspec::ExprKind::kLocal) {
      if (cfg_->sync_locals.contains(n.local)) {
        has_sync_local = true;
      }
    }
  });
  return has_param && !has_sync_local;
}

void EsChecker::build_aux() {
  const size_t site_count = device_->program().site_count();
  aux_.assign(site_count, BlockAux{});
  visits_.assign(site_count, 0);
  visit_epoch_.assign(site_count, 0);

  auto collect_syncs = [&](const ExprRef& e, std::vector<LocalId>* out) {
    if (e == nullptr) {
      return;
    }
    sedspec::visit(*e, [&](const sedspec::Expr& n) {
      if (n.kind == sedspec::ExprKind::kLocal &&
          cfg_->sync_locals.contains(n.local) &&
          std::find(out->begin(), out->end(), n.local) == out->end()) {
        out->push_back(n.local);
      }
    });
  };

  for (const auto& [site, block] : cfg_->blocks) {
    SEDSPEC_REQUIRE(site < site_count);
    BlockAux& aux = aux_[site];
    aux.block = &block;
    aux.visit_bound =
        std::max<uint64_t>(config_.visit_slack_min,
                           block.max_visits_per_round *
                               config_.visit_slack_multiplier);
    for (const Stmt& s : block.dsod) {
      collect_syncs(s.value, &aux.syncs);
      collect_syncs(s.index, &aux.syncs);
      collect_syncs(s.count, &aux.syncs);
      // The paper's parameter check bounds-validates a buffer access only
      // when "a device state index parameter is used" (§VI-A). A store
      // through a non-state temporary is applied to the shadow (modeling
      // the corruption) but not flagged — that is the documented
      // CVE-2015-7504 blind spot covered by the indirect-jump check.
      bool bounds = false;
      if (s.kind == StmtKind::kBufStore) {
        bounds = index_is_state_derived(s.index);
      } else if (s.kind == StmtKind::kBufFill) {
        bounds = index_is_state_derived(s.index) ||
                 index_is_state_derived(s.count);
      }
      aux.stmt_bounds.push_back(bounds ? 1 : 0);
    }
    collect_syncs(block.guard, &aux.syncs);
    collect_syncs(block.cmd_expr, &aux.syncs);
  }

  // Specs arrive from untrusted persistence: every transition target must
  // resolve to a real block, or traversal would land on a null aux entry.
  // SEDSPEC_REQUIRE throws logic_error, which deploy_serialized converts
  // into a kMalformed load rejection.
  const auto require_block = [&](SiteId site) {
    SEDSPEC_REQUIRE(site < site_count && aux_[site].block != nullptr);
  };
  const auto require_dir = [&](const spec::CondDir& d) {
    if (d.observed && !d.ends) {
      require_block(d.succ);
    }
  };
  for (const auto& [key, entry] : cfg_->entry_dispatch) {
    if (entry != sedspec::kInvalidSite) {
      require_block(entry);
    }
  }
  for (const auto& [site, block] : cfg_->blocks) {
    if (block.has_succ && !block.ends) {
      require_block(block.succ);
    }
    require_dir(block.taken);
    require_dir(block.not_taken);
    for (const auto& [cmd, dir] : block.cmd_dispatch) {
      require_dir(dir);
    }
  }

  entries_.assign(cfg_->entry_dispatch.begin(), cfg_->entry_dispatch.end());
}

void EsChecker::resolve_syncs(const BlockAux& aux, const IoAccess& io) {
  // Sync points (paper §V-D): pause the simulation, read the variable's
  // current value from the device (against the shadow state, so loop-
  // carried locals resolve per encounter), then resume.
  for (sedspec::LocalId l : aux.syncs) {
    if (auto v = device_->resolve_sync(l, io, shadow_); v.has_value()) {
      shadow_.set_local(l, *v);
    }
  }
}

struct EsChecker::Traversal {
  const IoAccess* io = nullptr;
  std::vector<Violation> violations;
  SiteId current = sedspec::kInvalidSite;
  bool stop = false;  // successor unknown: traversal cannot continue
  uint64_t steps = 0;

  void add(Strategy s, SiteId site, std::string detail) {
    violations.push_back(Violation{s, site, std::move(detail)});
  }
};

void EsChecker::exec_dsod(const BlockAux& aux, Traversal& t) {
  const EsBlock& block = *aux.block;
  for (size_t i = 0; i < block.dsod.size(); ++i) {
    const Stmt& s = block.dsod[i];
    EvalDiag diag;
    EvalCtx ctx;
    ctx.state = &shadow_;
    ctx.io = t.io;
    ctx.checked = true;
    ctx.diag = &diag;
    switch (s.kind) {
      case StmtKind::kAssignParam: {
        const uint64_t v = eval_expr(*s.value, ctx);
        shadow_.set_param(s.param, v);
        break;
      }
      case StmtKind::kAssignLocal: {
        const uint64_t v = eval_expr(*s.value, ctx);
        shadow_.set_local(s.local, v);
        break;
      }
      case StmtKind::kBufStore: {
        const uint64_t idx = eval_expr(*s.index, ctx);
        const uint64_t val = eval_expr(*s.value, ctx);
        shadow_.buf_store(s.param, idx, val,
                          aux.stmt_bounds[i] != 0 ? &diag : nullptr);
        break;
      }
      case StmtKind::kBufFill: {
        const uint64_t idx = eval_expr(*s.index, ctx);
        const uint64_t count = eval_expr(*s.count, ctx);
        shadow_.buf_fill(s.param, idx, count,
                         aux.stmt_bounds[i] != 0 ? &diag : nullptr);
        break;
      }
    }
    if (!diag.any()) {
      continue;
    }
    if (diag.note.empty()) {
      diag.note = s.note;
    }
    if (diag.kind == EvalDiag::Kind::kMissingLocal) {
      // The simulation could not resolve a sync variable: the spec cannot
      // follow this path. Reported under the conditional-jump strategy.
      if (strategy_enabled(Strategy::kConditionalJump)) {
        t.add(Strategy::kConditionalJump, block.site,
              "unresolved sync variable: " + diag.describe());
      }
    } else if (strategy_enabled(Strategy::kParameter)) {
      t.add(Strategy::kParameter, block.site, diag.describe());
    }
  }
}

CheckResult EsChecker::check(const IoAccess& io) {
  CheckResult result;
  Traversal t;
  t.io = &io;

  // Per-step events are high-frequency; only a verbose tracer records them.
  obs::EventTracer* tr = obs::tracer();
  const bool step_events = tr != nullptr && tr->verbose();

  shadow_.clear_locals();
  ++epoch_;

  // Fault-injection seam: model an internal checker malfunction this round.
  InternalFault fault;
  if (fault_hook_) {
    fault = fault_hook_(shadow_);
    if (fault.throw_in_traversal) {
      throw CheckerFault("injected traversal fault");
    }
  }
  // The watchdog must sit strictly above the policy budget, or it would
  // preempt the ordinary (violation-producing) budget check.
  const uint64_t watchdog =
      std::max(config_.watchdog_steps, config_.max_steps + 1);

  // Entry dispatch (paper §V-A: the entry block parses the target
  // address/port of the I/O request).
  const sedspec::IoKey key = sedspec::key_of(io);
  SiteId entry = sedspec::kInvalidSite;
  bool have_entry = false;
  for (const auto& [k, site] : entries_) {
    if (k == key) {
      entry = site;
      have_entry = true;
      break;
    }
  }
  if (!have_entry) {
    if (strategy_enabled(Strategy::kConditionalJump)) {
      std::ostringstream detail;
      detail << "untrained I/O access: "
             << (io.space == sedspec::IoSpace::kPio ? "pio" : "mmio") << " 0x"
             << std::hex << io.addr << (io.is_write ? " write" : " read");
      t.add(Strategy::kConditionalJump, sedspec::kInvalidSite, detail.str());
    }
    result.violations = std::move(t.violations);
    return result;
  }
  t.current = entry;

  while (!t.stop && t.current != sedspec::kInvalidSite) {
    ++t.steps;
    if (t.steps > watchdog) {
      // Hard backstop: the ordinary budget check below should have ended
      // this round long ago. Reaching here means the termination logic
      // itself is broken — escalate into the containment domain.
      throw CheckerFault("traversal watchdog tripped after " +
                         std::to_string(t.steps) + " steps");
    }
    if (t.steps > config_.max_steps && !fault.suppress_termination) {
      if (strategy_enabled(Strategy::kConditionalJump)) {
        t.add(Strategy::kConditionalJump, t.current,
              "traversal budget exceeded");
      }
      break;
    }
    const BlockAux& aux = aux_[t.current];
    if (aux.block == nullptr) {
      // Belt and braces under build_aux()'s load-time validation: never
      // dereference an unmapped site, contain it instead.
      throw CheckerFault("traversal reached unmapped site " +
                         std::to_string(t.current));
    }
    const EsBlock& block = *aux.block;
    if (step_events) {
      tr->record(obs::EventType::kTraversalStep, "traversal_step",
                 cfg_->device_name, block.name, t.current);
    }

    // Per-round visit bound (trained loop shape).
    if (visit_epoch_[t.current] != epoch_) {
      visit_epoch_[t.current] = epoch_;
      visits_[t.current] = 0;
    }
    if (++visits_[t.current] > aux.visit_bound &&
        !fault.suppress_termination) {
      if (strategy_enabled(Strategy::kConditionalJump)) {
        std::ostringstream detail;
        detail << "block '" << block.name << "' visited "
               << visits_[t.current] << " times in one round (trained max "
               << block.max_visits_per_round << ")";
        t.add(Strategy::kConditionalJump, t.current, detail.str());
      }
      break;
    }

    if (!aux.syncs.empty()) {
      resolve_syncs(aux, io);
    }

    // Command access control table.
    if (active_cmd_.has_value() &&
        strategy_enabled(Strategy::kConditionalJump)) {
      const auto cmd_it = cfg_->commands.find(*active_cmd_);
      if (cmd_it != cfg_->commands.end() &&
          !cmd_it->second.access.contains(t.current)) {
        std::ostringstream detail;
        detail << "block '" << block.name
               << "' not accessible under command 0x" << std::hex
               << *active_cmd_;
        t.add(Strategy::kConditionalJump, t.current, detail.str());
      }
    }

    exec_dsod(aux, t);

    // Transition.
    switch (block.kind) {
      case sedspec::BlockKind::kConditional: {
        if (block.merged) {
          t.current = block.has_succ ? block.succ : sedspec::kInvalidSite;
          break;
        }
        EvalDiag diag;
        EvalCtx ctx;
        ctx.state = &shadow_;
        ctx.io = t.io;
        ctx.checked = true;
        ctx.diag = &diag;
        const bool taken = eval_expr(*block.guard, ctx) != 0;
        if (diag.any()) {
          if (diag.kind == EvalDiag::Kind::kMissingLocal) {
            if (strategy_enabled(Strategy::kConditionalJump)) {
              t.add(Strategy::kConditionalJump, block.site,
                    "unresolved sync variable in guard");
            }
          } else if (strategy_enabled(Strategy::kParameter)) {
            t.add(Strategy::kParameter, block.site,
                  "in guard: " + diag.describe());
          }
        }
        const CondDir& dir = taken ? block.taken : block.not_taken;
        if (!dir.observed) {
          if (strategy_enabled(Strategy::kConditionalJump)) {
            t.add(Strategy::kConditionalJump, block.site,
                  std::string("untrained ") + (taken ? "taken" : "not-taken") +
                      " direction at '" + block.name + "'");
          }
          t.stop = true;
        } else if (dir.ends) {
          t.current = sedspec::kInvalidSite;
        } else {
          t.current = dir.succ;
        }
        break;
      }
      case sedspec::BlockKind::kCmdDecision: {
        EvalDiag diag;
        EvalCtx ctx;
        ctx.state = &shadow_;
        ctx.io = t.io;
        ctx.checked = true;
        ctx.diag = &diag;
        const uint64_t cmd = eval_expr(*block.cmd_expr, ctx);
        if (diag.any() && diag.kind != EvalDiag::Kind::kMissingLocal &&
            strategy_enabled(Strategy::kParameter)) {
          t.add(Strategy::kParameter, block.site,
                "in command decode: " + diag.describe());
        }
        const auto disp = block.cmd_dispatch.find(cmd);
        if (disp == block.cmd_dispatch.end() || !disp->second.observed) {
          if (strategy_enabled(Strategy::kConditionalJump)) {
            std::ostringstream detail;
            detail << "untrained command 0x" << std::hex << cmd << " at '"
                   << block.name << "'";
            t.add(Strategy::kConditionalJump, block.site, detail.str());
          }
          t.stop = true;
          break;
        }
        active_cmd_ = cmd;
        t.current =
            disp->second.ends ? sedspec::kInvalidSite : disp->second.succ;
        break;
      }
      case sedspec::BlockKind::kIndirect: {
        const uint64_t target = shadow_.param(block.fp_param);
        if (strategy_enabled(Strategy::kIndirectJump) &&
            !block.fp_targets.contains(target)) {
          std::ostringstream detail;
          detail << "indirect call at '" << block.name << "' targets 0x"
                 << std::hex << target
                 << ", not a trained legitimate function";
          t.add(Strategy::kIndirectJump, block.site, detail.str());
        }
        t.current = block.has_succ ? block.succ : sedspec::kInvalidSite;
        if (!block.has_succ && !block.ends) {
          t.stop = true;
        }
        break;
      }
      case sedspec::BlockKind::kCmdEnd:
        active_cmd_.reset();
        t.current = block.has_succ ? block.succ : sedspec::kInvalidSite;
        break;
      case sedspec::BlockKind::kPlain:
        t.current = block.has_succ ? block.succ : sedspec::kInvalidSite;
        break;
    }
  }

  result.violations = std::move(t.violations);
  result.steps = t.steps;
  return result;
}

bool EsChecker::before_access(Device& device, const IoAccess& io) {
  if (degraded_) {
    // Fail-open degraded mode: serve unprotected rounds until the next
    // self-heal attempt, then resync the shadow and re-attach.
    if (degraded_rounds_since_heal_ + 1 >= config_.self_heal_interval) {
      resync();
      degraded_ = false;
      degraded_rounds_since_heal_ = 0;
      ++stats_.self_heals;
      emit_report(Report::Kind::kSelfHeal, Strategy::kParameter,
                  sedspec::kInvalidSite);
      if (obs::EventTracer* tr = obs::tracer()) {
        tr->record(obs::EventType::kSelfHeal, "self_heal", cfg_->device_name);
      }
      if (local_tracer_ != nullptr) {
        local_tracer_->record(obs::EventType::kSelfHeal, "self_heal",
                              cfg_->device_name);
      }
      // Fall through: this round is checked again.
    } else {
      ++degraded_rounds_since_heal_;
      ++stats_.rounds;
      ++stats_.degraded_rounds;
      pending_resync_ = true;  // track whatever the device does unchecked
      return true;
    }
  }
  try {
    return guarded_before_access(device, io);
  } catch (const std::exception& e) {
    return contain_fault(device, e.what(), /*count_round=*/true);
  } catch (...) {
    return contain_fault(device, "unknown checker fault",
                         /*count_round=*/true);
  }
}

bool EsChecker::contain_fault(Device& device, const std::string& what,
                              bool count_round) {
  if (count_round) {
    ++stats_.rounds;
  }
  ++stats_.contained_faults;
  log_warn("checker") << cfg_->device_name << ": contained internal fault ("
                      << failure_policy_name(config_.failure_policy)
                      << ") — " << what;
  if (config_.failure_policy == FailurePolicy::kFailClosed) {
    // Quarantine: power-cycle the device to a known-good state, rebuild the
    // shadow from it, and re-arm. Protection never lapses; availability
    // costs one device reset.
    ++stats_.fail_closed_faults;
    ++stats_.quarantines;
    emit_report(Report::Kind::kQuarantine, Strategy::kParameter,
                sedspec::kInvalidSite);
    if (count_round) {
      ++stats_.blocked;
    }
    if (obs::EventTracer* tr = obs::tracer()) {
      tr->record(obs::EventType::kQuarantine, "quarantine", cfg_->device_name,
                 failure_policy_name(config_.failure_policy));
    }
    if (local_tracer_ != nullptr) {
      local_tracer_->record(obs::EventType::kQuarantine, "quarantine",
                            cfg_->device_name,
                            failure_policy_name(config_.failure_policy));
    }
    device.reset();
    resync();
    if (checkpoint_ != nullptr) {
      checkpoint_->copy_from(device.state());
    }
    pending_resync_ = false;
    last_ = {};
    last_.blocked = true;
    return false;
  }
  // Fail-open: the access proceeds unprotected; alert and schedule a
  // self-heal.
  ++stats_.fail_open_faults;
  emit_report(Report::Kind::kDegraded, Strategy::kParameter,
              sedspec::kInvalidSite);
  if (count_round) {
    ++stats_.degraded_rounds;
  }
  degraded_ = true;
  degraded_rounds_since_heal_ = 0;
  pending_resync_ = true;
  last_ = {};
  return true;
}

bool EsChecker::guarded_before_access(Device& device, const IoAccess& io) {
  const std::optional<uint64_t> saved_cmd = active_cmd_;
  // Latency probe: gated on the global timing switch so the untimed hot
  // path pays one relaxed load, no clock reads.
  const bool timed = obs::timing_enabled();
  const uint64_t t0 = timed ? obs::now_ns() : 0;
  last_ = check(io);
  if (timed) {
    const uint64_t dt = obs::now_ns() - t0;
    stats_.check_ns += dt;
    latency_hist_->record(dt);
  }
  ++stats_.rounds;
  stats_.total_steps += last_.steps;
  // Flight-recorder ring: one fixed-cost event per checked round so an
  // incident bundle carries the last-K rounds of context (address + step
  // count identify what the guest was driving).
  if (local_tracer_ != nullptr) {
    local_tracer_->record(obs::EventType::kIoAccess,
                          io.is_write ? "io_write" : "io_read",
                          cfg_->device_name, {}, io.addr, last_.steps);
  }
  for (const Violation& v : last_.violations) {
    ++stats_.violations_by_strategy[static_cast<int>(v.strategy)];
  }
  if (!last_.violations.empty()) {
    violations_counter_->inc(last_.violations.size());
    for (const Violation& v : last_.violations) {
      emit_report(Report::Kind::kViolation, v.strategy, v.site);
    }
    if (obs::EventTracer* tr = obs::tracer()) {
      for (const Violation& v : last_.violations) {
        tr->record(obs::EventType::kViolation, "violation", cfg_->device_name,
                   strategy_name(v.strategy), v.site);
      }
    }
    if (local_tracer_ != nullptr) {
      for (const Violation& v : last_.violations) {
        local_tracer_->record(obs::EventType::kViolation, "violation",
                              cfg_->device_name, strategy_name(v.strategy),
                              v.site);
      }
    }
  }
  if (last_.clean()) {
    ++stats_.clean_rounds;
    return true;
  }

  if (config_.monitor_only) {
    ++stats_.warnings;
    // Keep the shadow aligned with whatever the device actually does.
    pending_resync_ = true;
    return true;
  }

  bool block_access = false;
  if (config_.mode == Mode::kProtection) {
    block_access = true;
  } else {
    // Enhancement mode: only the parameter check halts execution.
    block_access = last_.any(Strategy::kParameter);
  }

  if (block_access) {
    ++stats_.blocked;
    last_.blocked = true;
    emit_report(Report::Kind::kBlocked,
                last_.violations.front().strategy,
                last_.violations.front().site);
    if (config_.rollback_on_violation && checkpoint_ != nullptr) {
      // Rollback recovery: restore the control structure to the last clean
      // checkpoint; the device stays available.
      device.state().copy_from(*checkpoint_);
      ++stats_.rollbacks;
    } else if (config_.mode == Mode::kProtection) {
      device.set_halted(true);
      last_.halted = true;
    }
    // The device will not execute this access: discard the speculative
    // shadow mutations by resynchronizing from the (possibly rolled-back)
    // device.
    shadow_.copy_from(device.state());
    if (config_.rollback_on_violation) {
      active_cmd_.reset();  // the checkpoint predates the current command
    } else {
      active_cmd_ = saved_cmd;
    }
    log_warn("checker") << cfg_->device_name << ": blocked I/O — "
                        << last_.violations.front().detail;
    return false;
  }

  ++stats_.warnings;
  for (const Violation& v : last_.violations) {
    log_warn("checker") << cfg_->device_name << ": warning ("
                        << strategy_name(v.strategy) << ") — " << v.detail;
  }
  // The device executes the access; pick up its authoritative state
  // afterwards so the warning does not cascade into follow-on divergence.
  pending_resync_ = config_.resync_after_warning;
  return true;
}

void EsChecker::publish_metrics(obs::MetricsRegistry& registry) const {
  publish_checker_stats(registry, metrics_label(), stats_);
}

void EsChecker::after_access(Device& device, const IoAccess& /*io*/) {
  try {
    if (checkpoint_ != nullptr && last_.clean() && !degraded_) {
      checkpoint_->copy_from(device.state());
    }
    if (pending_resync_) {
      shadow_.copy_from(device.state());
      // The warned-about round may have left command tracking stale; drop it
      // so one warning cannot cascade into access-table false positives.
      active_cmd_.reset();
      pending_resync_ = false;
    }
  } catch (const std::exception& e) {
    // The round was already counted in before_access.
    contain_fault(device, e.what(), /*count_round=*/false);
  } catch (...) {
    contain_fault(device, "unknown checker fault", /*count_round=*/false);
  }
}

}  // namespace sedspec::checker
