// Tighten-only enforcement policy (fleet control plane).
//
// A fleet operator needs "new CVE just dropped, enforce the parameter check
// on every fdc NOW" to be one write that no tenant- or VM-level setting can
// undo. The model follows the DEXCR aspect discipline (admin-enforced bits
// OR'd over per-process settings): every policy field is a *requirement*
// bit whose unset state means "no constraint from this layer", and layers
// compose by OR — tenant → VM → device, each lower layer can only ADD
// enforcement, never remove what an upper layer demanded.
//
// Application is equally monotone: apply_policy() maps effective bits onto
// a checker::CheckerConfig and can only move the config toward stronger
// enforcement (protection mode, fail-closed, more strategies enabled,
// monitor-only stripped). is_tightening_of() is the checkable algebraic
// contract the tests (and the rollout engine's invariant sweep) rely on.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "checker/checker.h"

namespace sedspec::control {

/// One layer's requirement bits. Default-constructed = "no constraints".
struct PolicyBits {
  /// Per-device enable mask bit: enforcement is mandatory — a shard asking
  /// to run unprotected (ShardSpec::unprotected) still gets a checker.
  bool enforce = false;
  /// Force Mode::kProtection (violations block + halt, not just warn).
  bool force_protection = false;
  /// Force FailurePolicy::kFailClosed for contained internal faults.
  bool force_fail_closed = false;
  /// Force-enable individual check strategies.
  bool require_parameter = false;
  bool require_indirect = false;
  bool require_conditional = false;
  /// Strip monitor_only: verdicts must actually block.
  bool forbid_monitor_only = false;

  /// OR-composition: after this call every requirement `other` makes is
  /// also made here. Commutative, associative, idempotent.
  void tighten(const PolicyBits& other);

  /// True when this layer demands everything `other` demands (bitwise >=).
  [[nodiscard]] bool covers(const PolicyBits& other) const;

  [[nodiscard]] bool any() const;
  friend bool operator==(const PolicyBits&, const PolicyBits&) = default;
};

/// One scope's policy: fleet-wide bits plus per-device-type overlays.
/// effective(device) = fleet | per_device[device] — a device overlay can
/// only add to what the scope already demands for every device.
struct Policy {
  PolicyBits fleet;
  std::map<std::string, PolicyBits> per_device;

  void tighten(const Policy& other);
  [[nodiscard]] PolicyBits effective(const std::string& device) const;
};

/// Applies effective requirement bits to a checker config. Monotone: the
/// result is always a tightening of `base` (never weaker), and applying the
/// same bits twice is a no-op.
[[nodiscard]] checker::CheckerConfig apply_policy(
    const PolicyBits& bits, checker::CheckerConfig base);

/// True when `tightened` enforces at least as strongly as `base` on every
/// axis the policy model governs. The algebraic contract of apply_policy.
[[nodiscard]] bool is_tightening_of(const checker::CheckerConfig& tightened,
                                    const checker::CheckerConfig& base);

/// The live, concurrently-readable policy hierarchy: one tenant (fleet)
/// layer plus per-VM overlays, inherited tenant → VM → device. Writers
/// (the control plane) tighten layers; readers (shard threads, at checker
/// deploy/redeploy time) snapshot effective bits. Every successful tighten
/// bumps version() so shards can poll for "a policy write happened" the
/// same way they poll the SpecStore — a fleet-wide policy change is one
/// write here, picked up by every shard at its next poll.
class PolicyTree {
 public:
  PolicyTree() = default;
  PolicyTree(const PolicyTree&) = delete;
  PolicyTree& operator=(const PolicyTree&) = delete;

  /// Tightens the tenant (fleet-wide) layer. One write reaches every VM.
  void tighten_tenant(const Policy& p);
  /// Tightens one VM's overlay (created on first use).
  void tighten_vm(const std::string& vm, const Policy& p);

  /// Effective bits for a device on a VM: tenant | vm overlay, each
  /// resolved through its per-device overlay. Unknown VM = tenant only.
  [[nodiscard]] PolicyBits effective(const std::string& vm,
                                     const std::string& device) const;

  /// Monotonic write counter (0 = never written). Cheap to poll.
  [[nodiscard]] uint64_t version() const;

  [[nodiscard]] std::vector<std::string> vm_names() const;

 private:
  mutable std::mutex mu_;
  Policy tenant_;
  std::map<std::string, Policy> vms_;
  uint64_t version_ = 0;
};

}  // namespace sedspec::control
