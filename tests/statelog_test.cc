// Unit tests for the device-state-change log: recorder behavior, round
// iteration, binary round-trip, and the observation-plan site filter.
#include <gtest/gtest.h>

#include "statelog/statelog.h"

namespace sedspec {
namespace {

using statelog::DeviceStateLog;
using statelog::EntryKind;
using statelog::LogRecorder;

IoAccess sample_io() {
  IoAccess io;
  io.space = IoSpace::kMmio;
  io.addr = 0x1000;
  io.size = 4;
  io.value = 0xabcd;
  io.is_write = true;
  return io;
}

TEST(StateLog, RecorderCapturesRoundStructure) {
  LogRecorder rec;
  rec.round_start(sample_io());
  rec.site_enter(3, BlockKind::kPlain);
  rec.branch(4, true);
  rec.indirect(5, 0x4000);
  rec.command(6, 0x42);
  rec.param_change(2, 1, 7);
  rec.command_end(7);
  rec.round_end();

  const DeviceStateLog log = rec.take();
  EXPECT_EQ(log.round_count(), 1u);
  const auto rounds = log.rounds();
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].io(), sample_io());
  EXPECT_EQ(rounds[0].entries.size(), 8u);
}

TEST(StateLog, BinaryRoundTrip) {
  LogRecorder rec;
  for (int round = 0; round < 3; ++round) {
    rec.round_start(sample_io());
    rec.site_enter(static_cast<SiteId>(round), BlockKind::kConditional);
    rec.branch(static_cast<SiteId>(round), round % 2 == 0);
    rec.param_change(1, round, round + 1);
    rec.round_end();
  }
  const DeviceStateLog log = rec.take();
  const auto bytes = log.serialize();
  const DeviceStateLog restored = DeviceStateLog::deserialize(bytes);
  EXPECT_EQ(restored.entries(), log.entries());
}

TEST(StateLog, DeserializeRejectsBadMagic) {
  std::vector<uint8_t> junk = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_THROW((void)DeviceStateLog::deserialize(junk), sedspec::DecodeError);
}

TEST(StateLog, SiteFilterDropsUnplannedPlainSites) {
  std::set<SiteId> plan = {1};
  LogRecorder rec;
  rec.set_site_filter(&plan);
  rec.round_start(sample_io());
  rec.site_enter(1, BlockKind::kPlain);        // in plan: kept
  rec.site_enter(2, BlockKind::kPlain);        // not in plan: dropped
  rec.site_enter(3, BlockKind::kConditional);  // control flow: always kept
  rec.round_end();
  const DeviceStateLog log = rec.take();
  int sites = 0;
  for (const auto& e : log.entries()) {
    if (e.kind == EntryKind::kSiteEnter) {
      EXPECT_NE(e.site, 2);
      ++sites;
    }
  }
  EXPECT_EQ(sites, 2);
}

TEST(StateLog, MergeConcatenates) {
  LogRecorder a;
  a.round_start(sample_io());
  a.round_end();
  LogRecorder b;
  b.round_start(sample_io());
  b.round_end();
  DeviceStateLog merged = a.take();
  merged.merge(b.log());
  EXPECT_EQ(merged.round_count(), 2u);
}

TEST(StateLog, MalformedRoundStructureThrows) {
  DeviceStateLog log;
  statelog::LogEntry start;
  start.kind = EntryKind::kRoundStart;
  start.io = sample_io();
  log.append(start);
  log.append(start);  // nested round
  EXPECT_THROW((void)log.rounds(), std::logic_error);
}

}  // namespace
}  // namespace sedspec
