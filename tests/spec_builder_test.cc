// Unit tests for Algorithm 1 and control-flow reduction on synthetic
// programs and hand-crafted device-state-change logs — exercising the
// merge/splice rewrites and the authoring-error diagnostics that the real
// five devices (by design) never trigger.
#include <gtest/gtest.h>

#include "cfg/analyzer.h"
#include "dataflow/dataflow.h"
#include "spec/builder.h"
#include "statelog/statelog.h"

namespace sedspec {
namespace {

using statelog::DeviceStateLog;
using statelog::EntryKind;
using statelog::LogEntry;

struct LogMaker {
  DeviceStateLog log;
  IoAccess io;

  LogMaker() {
    io.space = IoSpace::kPio;
    io.addr = 0x100;
    io.is_write = true;
  }

  void start() {
    LogEntry e;
    e.kind = EntryKind::kRoundStart;
    e.io = io;
    log.append(e);
  }
  void site(SiteId s, BlockKind k = BlockKind::kPlain) {
    LogEntry e;
    e.kind = EntryKind::kSiteEnter;
    e.site = s;
    e.block_kind = k;
    log.append(e);
  }
  void branch(SiteId s, bool taken) {
    site(s, BlockKind::kConditional);
    LogEntry e;
    e.kind = EntryKind::kBranch;
    e.site = s;
    e.taken = taken;
    log.append(e);
  }
  void end() {
    LogEntry e;
    e.kind = EntryKind::kRoundEnd;
    log.append(e);
  }
};

struct SyntheticProgram {
  StateLayout layout{"S"};
  ParamId p;
  std::unique_ptr<DeviceProgram> program;
  SiteId s_cond, s_left, s_right, s_join, s_empty, s_tail;

  SyntheticProgram() {
    p = layout.add_scalar("p", FieldKind::kRegister, IntType::kU32);
    program =
        std::make_unique<DeviceProgram>("synth", std::move(layout), 0x1000);
    using namespace eb;
    const IntType U32 = IntType::kU32;
    s_cond = program->add_conditional("cond", gt(param(p, U32), c(1, U32)));
    s_left = program->add_plain("left", {sb::assign(p, c(1, U32))});
    s_right = program->add_plain("right", {sb::assign(p, c(2, U32))});
    // Joins carry no state-relevant statements: splice candidate.
    s_empty = program->add_plain("empty_join", {});
    s_tail = program->add_plain("tail", {sb::assign(p, c(3, U32))});
    s_join = s_empty;
  }

  spec::EsCfg build(const DeviceStateLog& log) {
    const auto selection = cfg::analyze_static(*program);
    const auto recovery = dataflow::analyze_dependencies(*program);
    return spec::EsCfgBuilder::build(*program, selection, recovery, log);
  }
};

TEST(SpecBuilder, MergesConvergentConditional) {
  SyntheticProgram sp;
  LogMaker lm;
  // taken:    cond -> left  -> empty -> tail
  lm.start();
  lm.branch(sp.s_cond, true);
  lm.site(sp.s_left);
  lm.site(sp.s_empty);
  lm.site(sp.s_tail);
  lm.end();
  // not-taken: cond -> right -> empty -> tail ... hmm, different successors.
  lm.start();
  lm.branch(sp.s_cond, true);
  lm.site(sp.s_left);
  lm.site(sp.s_empty);
  lm.site(sp.s_tail);
  lm.end();
  // A second conditional shape where both directions go to the SAME block:
  lm.start();
  lm.branch(sp.s_cond, false);
  lm.site(sp.s_left);
  lm.site(sp.s_empty);
  lm.site(sp.s_tail);
  lm.end();

  const spec::EsCfg cfg = sp.build(lm.log);
  const auto* cond = cfg.block(sp.s_cond);
  ASSERT_NE(cond, nullptr);
  // Both directions observed with the same successor: merged, NBTD dropped
  // (paper §V-C).
  EXPECT_TRUE(cond->merged);
  EXPECT_TRUE(cond->has_succ);
  EXPECT_EQ(cfg.merged_conditionals, 1u);
}

TEST(SpecBuilder, SplicesEmptyBlocks) {
  SyntheticProgram sp;
  LogMaker lm;
  lm.start();
  lm.branch(sp.s_cond, true);
  lm.site(sp.s_left);
  lm.site(sp.s_empty);  // no state-relevant statements, unique successor
  lm.site(sp.s_tail);
  lm.end();

  const spec::EsCfg cfg = sp.build(lm.log);
  EXPECT_EQ(cfg.block(sp.s_empty), nullptr);
  EXPECT_EQ(cfg.spliced_blocks, 1u);
  const auto* left = cfg.block(sp.s_left);
  ASSERT_NE(left, nullptr);
  ASSERT_TRUE(left->has_succ);
  EXPECT_EQ(left->succ, sp.s_tail);  // rewired around the spliced block
}

TEST(SpecBuilder, SingleObservedDirectionStaysPartial) {
  SyntheticProgram sp;
  LogMaker lm;
  lm.start();
  lm.branch(sp.s_cond, true);
  lm.site(sp.s_left);
  lm.end();

  const spec::EsCfg cfg = sp.build(lm.log);
  const auto* cond = cfg.block(sp.s_cond);
  ASSERT_NE(cond, nullptr);
  EXPECT_FALSE(cond->merged);
  EXPECT_TRUE(cond->taken.observed);
  EXPECT_FALSE(cond->not_taken.observed);
}

TEST(SpecBuilder, InconsistentPlainSuccessorIsAnAuthoringError) {
  SyntheticProgram sp;
  LogMaker lm;
  lm.start();
  lm.site(sp.s_left);
  lm.site(sp.s_tail);
  lm.end();
  lm.start();
  lm.site(sp.s_left);
  lm.site(sp.s_right);  // same plain block, different successor
  lm.end();
  EXPECT_THROW((void)sp.build(lm.log), spec::BuildError);
}

TEST(SpecBuilder, BlockBothEndingAndContinuingIsAnError) {
  SyntheticProgram sp;
  LogMaker lm;
  lm.start();
  lm.site(sp.s_left);
  lm.end();  // left ends the round...
  lm.start();
  lm.site(sp.s_left);
  lm.site(sp.s_tail);  // ...and later continues
  lm.end();
  EXPECT_THROW((void)sp.build(lm.log), spec::BuildError);
}

TEST(SpecBuilder, ConflictingEntryBlockIsAnError) {
  SyntheticProgram sp;
  LogMaker lm;
  lm.start();
  lm.site(sp.s_left);
  lm.end();
  lm.start();
  lm.site(sp.s_right);  // same I/O key, different first block
  lm.end();
  EXPECT_THROW((void)sp.build(lm.log), spec::BuildError);
}

TEST(SpecBuilder, VisitBoundsTrackPerRoundMaximum) {
  SyntheticProgram sp;
  LogMaker lm;
  // A loop: cond(taken) -> left -> tail -> cond ... , exited via the
  // not-taken direction into right, which ends the round.
  lm.start();
  for (int i = 0; i < 5; ++i) {
    lm.branch(sp.s_cond, true);
    lm.site(sp.s_left);
    lm.site(sp.s_tail);
  }
  lm.branch(sp.s_cond, false);
  lm.site(sp.s_right);
  lm.end();
  const spec::EsCfg cfg = sp.build(lm.log);
  EXPECT_EQ(cfg.block(sp.s_tail)->max_visits_per_round, 5u);
  EXPECT_EQ(cfg.block(sp.s_cond)->max_visits_per_round, 6u);
}

TEST(SpecBuilder, EmptyRoundRecordsEmptyEntry) {
  SyntheticProgram sp;
  LogMaker lm;
  lm.start();
  lm.end();
  const spec::EsCfg cfg = sp.build(lm.log);
  const auto it = cfg.entry_dispatch.find(key_of(lm.io));
  ASSERT_NE(it, cfg.entry_dispatch.end());
  EXPECT_EQ(it->second, kInvalidSite);
}

TEST(Analyzer, StaticSelectionAppliesRules) {
  StateLayout layout("S");
  const ParamId reg =
      layout.add_scalar("reg", FieldKind::kRegister, IntType::kU32);
  const ParamId buf = layout.add_buffer("buf", 1, 8);
  const ParamId idx =
      layout.add_scalar("idx", FieldKind::kIndex, IntType::kU32);
  const ParamId flag =
      layout.add_scalar("flag", FieldKind::kFlag, IntType::kU8);
  const ParamId untouched =
      layout.add_scalar("untouched", FieldKind::kRegister, IntType::kU32);
  const ParamId fp = layout.add_funcptr("fp");
  DeviceProgram program("synth2", std::move(layout), 0x2000);
  using namespace eb;
  const IntType U32 = IntType::kU32;
  program.add_conditional("c1", eq(param(flag, IntType::kU8), c(1, IntType::kU8)));
  program.add_plain("p1", {sb::buf_store(buf, param(idx, U32), c(0, IntType::kU8)),
                           sb::assign(reg, c(2, U32))});
  program.add_indirect("i1", fp);

  const auto sel = cfg::analyze_static(program);
  EXPECT_TRUE(sel.is_selected(reg));    // Rule 1
  EXPECT_TRUE(sel.is_selected(buf));    // Rule 2: buffer
  EXPECT_TRUE(sel.is_selected(idx));    // Rule 2: indexing
  EXPECT_TRUE(sel.is_selected(fp));     // Rule 2: function pointer
  EXPECT_TRUE(sel.is_selected(flag));   // control-flow dependency
  EXPECT_FALSE(sel.is_selected(untouched));
}

TEST(Analyzer, ObservedReachabilityFiltersSelection) {
  StateLayout layout("S");
  const ParamId reg =
      layout.add_scalar("reg", FieldKind::kRegister, IntType::kU32);
  DeviceProgram program("synth3", std::move(layout), 0x3000);
  const SiteId touched = program.add_plain(
      "touched", {sb::assign(reg, eb::c(1, IntType::kU32))});
  (void)program.add_plain("unreached",
                          {sb::assign(reg, eb::c(2, IntType::kU32))});

  // An ITC-CFG where only `touched` was ever observed.
  cfg::ItcCfgBuilder builder;
  builder.feed(trace::TraceEvent{trace::EventKind::kPge, 0x3000, false});
  builder.feed(trace::TraceEvent{trace::EventKind::kTip,
                                 program.site(touched).addr, false});
  builder.feed(trace::TraceEvent{trace::EventKind::kPgd, 0, false});
  const auto graph = builder.take();

  const auto sel = cfg::analyze(graph, program);
  EXPECT_TRUE(sel.observation_sites.contains(touched));
  EXPECT_EQ(sel.observation_sites.size(), 1u);
}

}  // namespace
}  // namespace sedspec
